module refrint

go 1.23

// The analysis framework is vendored from the Go toolchain's own copy
// (see third_party/golang.org/x/tools/README.md): the build stays
// offline and the lint suite runs the exact framework go vet ships.
require golang.org/x/tools v0.29.0

replace golang.org/x/tools => ./third_party/golang.org/x/tools
