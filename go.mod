module refrint

go 1.23
