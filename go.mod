module refrint

go 1.22
