#!/usr/bin/env sh
# Metrics/observability smoke test: boots a real refrint-serve (with the
# debug listener on), runs a tiny sweep, and asserts end to end that
#   - /metrics is well-formed: the new histogram families are present, their
#     bucket counts are cumulative, and +Inf matches _count;
#   - /v1/sweeps/{id}/trace returns a monotonic timeline ending terminal;
#   - X-Request-Id round-trips into the job's trace;
#   - pprof/expvar answer on -debug-addr and are NOT on the public listener.
# CI runs this next to sse-smoke.sh; locally: scripts/metrics-smoke.sh
set -eu

port="${METRICS_SMOKE_PORT:-18090}"
dbgport="${METRICS_SMOKE_DEBUG_PORT:-18091}"
base="http://127.0.0.1:$port"
dbg="http://127.0.0.1:$dbgport"
tmp="$(mktemp -d)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "metrics-smoke: FAIL: $1" >&2
    [ -f "$2" ] && { echo "--- $2 ---" >&2; cat "$2" >&2; }
    [ -f "$tmp/serve.log" ] && { echo "--- serve.log ---" >&2; cat "$tmp/serve.log" >&2; }
    exit 1
}

go build -o "$tmp/refrint-serve" ./cmd/refrint-serve
"$tmp/refrint-serve" -addr "127.0.0.1:$port" -debug-addr "127.0.0.1:$dbgport" \
    -log-format json >"$tmp/serve.log" 2>&1 &
pid=$!

up=""
for _ in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || fail "server never came up on $base" /dev/null

# Run one sweep to completion so the scheduler and execution histograms have
# observations, stamping a known request ID.
job=$(curl -sf -X POST "$base/v1/sweeps" -H 'X-Request-Id: smoke-trace-1' \
    -d '{"apps":["FFT"],"retention_times_us":[50],"policies":["R.valid"],"effort_scale":0.05,"workers":2}')
id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$id" ] || fail "no job id in response: $job" /dev/null

finished=""
for _ in $(seq 1 150); do
    state=$(curl -sf "$base/v1/sweeps/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1)
    if [ "$state" = "done" ]; then finished=1; break; fi
    case "$state" in failed|cancelled) fail "job ended $state" /dev/null ;; esac
    sleep 0.2
done
[ -n "$finished" ] || fail "job never completed" /dev/null

# --- /metrics: histogram families present and cumulative -------------------
curl -sf "$base/metrics" >"$tmp/metrics.txt" || fail "GET /metrics failed" /dev/null
for fam in refrint_http_request_seconds refrint_sched_wait_seconds refrint_exec_seconds; do
    grep -q "^# TYPE $fam histogram\$" "$tmp/metrics.txt" \
        || fail "missing histogram TYPE for $fam" "$tmp/metrics.txt"
    grep -q "^${fam}_bucket{.*le=\"+Inf\"}" "$tmp/metrics.txt" \
        || fail "$fam has no +Inf bucket" "$tmp/metrics.txt"
done
grep -q '^refrint_build_info{' "$tmp/metrics.txt" || fail "missing refrint_build_info" "$tmp/metrics.txt"

# Bucket counts must never decrease as le grows, per series, and +Inf must
# equal the series' _count.  Portable awk: the sample value is the last
# whitespace-separated token even when label values contain spaces.
awk '
    /_bucket\{/ && /le="/ {
        cnt = $NF + 0
        key = $0
        sub(/,?le="[^"]*"\} [0-9]+$/, "", key)
        if (key in prev && cnt < prev[key]) {
            print "non-cumulative bucket: " $0
            exit 1
        }
        prev[key] = cnt
        inf[key] = cnt
        next
    }
    /_count\{/ {
        cnt = $NF + 0
        key = $0
        sub(/\} [0-9]+$/, "", key)
        sub(/_count\{/, "_bucket{", key)
        if (key in inf && inf[key] != cnt) {
            print "+Inf bucket != _count: " $0 " (buckets say " inf[key] ")"
            exit 1
        }
    }
' "$tmp/metrics.txt" >"$tmp/awk.err" || fail "histogram lint: $(cat "$tmp/awk.err")" "$tmp/metrics.txt"

# The scrape above flowed through the middleware: the next scrape must show
# the /metrics route itself.
curl -sf "$base/metrics" | grep -q 'refrint_http_request_seconds_count{route="GET /metrics"' \
    || fail "HTTP histogram did not record the /metrics route" "$tmp/metrics.txt"

# --- /trace: monotonic timeline, terminal tail, request ID -----------------
curl -sf "$base/v1/sweeps/$id/trace" >"$tmp/trace.json" || fail "GET trace failed" /dev/null
grep -q '"trace_id": *"smoke-trace-1"' "$tmp/trace.json" \
    || fail "trace did not carry the X-Request-Id" "$tmp/trace.json"
for phase in received validated admitted queued executing done; do
    grep -q "\"phase\": *\"$phase\"" "$tmp/trace.json" \
        || fail "trace missing phase $phase" "$tmp/trace.json"
done
# Timestamps in span order never decrease (the trailing Z/offset is stripped
# so a fractionless second still sorts before the same second with a
# fraction), and no span duration is negative.
grep -o '"at": *"[^"]*"' "$tmp/trace.json" | sed 's/.*"at": *"//;s/Z"$//;s/"$//' >"$tmp/ats.txt"
sort -C "$tmp/ats.txt" || fail "trace timeline is not monotonic" "$tmp/trace.json"
if grep -q '"seconds": *-' "$tmp/trace.json"; then
    fail "trace has a negative span duration" "$tmp/trace.json"
fi

# --- debug listener: private yes, public no --------------------------------
curl -sf "$dbg/debug/pprof/" >/dev/null || fail "pprof index not served on -debug-addr" /dev/null
curl -sf "$dbg/debug/vars" | grep -q '"memstats"' || fail "expvar not served on -debug-addr" /dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/debug/pprof/")
[ "$code" = "404" ] || fail "public listener serves /debug/pprof/ (code $code), must 404" /dev/null

echo "metrics-smoke: OK ($id traced, histograms cumulative, debug listener isolated)"
