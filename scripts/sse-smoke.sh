#!/usr/bin/env sh
# SSE smoke test: boots a real refrint-serve, runs a tiny sweep, and asserts
# the /events streams behave end to end — state event, terminal event, stream
# close, terminal-snapshot replay on reconnect, and a live firehose.  CI runs
# this next to the fuzz and bench smokes; locally: scripts/sse-smoke.sh
set -eu

port="${SSE_SMOKE_PORT:-18080}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "sse-smoke: FAIL: $1" >&2
    [ -f "$2" ] && { echo "--- $2 ---" >&2; cat "$2" >&2; }
    [ -f "$tmp/serve.log" ] && { echo "--- serve.log ---" >&2; cat "$tmp/serve.log" >&2; }
    exit 1
}

go build -o "$tmp/refrint-serve" ./cmd/refrint-serve
"$tmp/refrint-serve" -addr "127.0.0.1:$port" -event-heartbeat 1s >"$tmp/serve.log" 2>&1 &
pid=$!

up=""
for _ in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || fail "server never came up on $base" /dev/null

# Firehose first, so it observes the whole job lifecycle below.
curl -sN --max-time 60 "$base/v1/events" >"$tmp/firehose.txt" &
fhpid=$!

job=$(curl -sf -X POST "$base/v1/sweeps" \
    -d '{"apps":["FFT"],"retention_times_us":[50],"policies":["R.valid"],"effort_scale":0.05,"workers":2}')
id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$id" ] || fail "no job id in response: $job" /dev/null

# curl -N streams until the server closes at the terminal event; if the
# stream never closed, --max-time would trip and curl would exit non-zero.
curl -sN --max-time 120 "$base/v1/sweeps/$id/events" >"$tmp/events.txt" \
    || fail "job stream did not close by itself" "$tmp/events.txt"
grep -q '^event: state' "$tmp/events.txt" || fail "missing state event" "$tmp/events.txt"
grep -q '^event: done'  "$tmp/events.txt" || fail "missing terminal done event" "$tmp/events.txt"
n=$(grep -c '^event: \(done\|failed\|cancelled\)' "$tmp/events.txt")
[ "$n" -eq 1 ] || fail "want exactly 1 terminal event, got $n" "$tmp/events.txt"

# Reconnecting after the job finished still gets closure (snapshot replay).
curl -sN --max-time 30 -H 'Last-Event-ID: 1' "$base/v1/sweeps/$id/events" >"$tmp/replay.txt" \
    || fail "replay stream did not close by itself" "$tmp/replay.txt"
grep -q '^event: done' "$tmp/replay.txt" || fail "replay missing terminal event" "$tmp/replay.txt"

# The firehose saw the same lifecycle end-to-end.
kill "$fhpid" 2>/dev/null || true
wait "$fhpid" 2>/dev/null || true
grep -q '^event: done' "$tmp/firehose.txt" || fail "firehose missed the job's terminal event" "$tmp/firehose.txt"

echo "sse-smoke: OK ($id streamed, replayed, and closed cleanly)"
