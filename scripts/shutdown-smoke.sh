#!/usr/bin/env sh
# Shutdown smoke test: boots a real refrint-serve, parks a long sweep on a
# worker, sends SIGTERM and asserts the graceful-drain contract — new
# submissions get 503 with Retry-After, /healthz flips to "closing" (503),
# and the process exits cleanly once -drain-timeout expires.  CI runs this
# next to the SSE and metrics smokes; locally: scripts/shutdown-smoke.sh
set -eu

port="${SHUTDOWN_SMOKE_PORT:-18085}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "shutdown-smoke: FAIL: $1" >&2
    [ -f "$tmp/serve.log" ] && { echo "--- serve.log ---" >&2; cat "$tmp/serve.log" >&2; }
    exit 1
}

go build -o "$tmp/refrint-serve" ./cmd/refrint-serve
"$tmp/refrint-serve" -addr "127.0.0.1:$port" -drain-timeout 3s >"$tmp/serve.log" 2>&1 &
pid=$!

up=""
for _ in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || fail "server never came up on $base"

# A full-effort sweep occupies a worker far longer than the drain window, so
# the drain below is observable and the incomplete-drain abort path runs.
job=$(curl -sf -X POST "$base/v1/sweeps" -d '{"apps":["FFT"],"effort_scale":1.0}')
printf '%s' "$job" | grep -q '"id"' || fail "long sweep not admitted: $job"

kill -TERM "$pid"
sleep 0.5 # let the drain begin; it holds the server up for ~3s more

code=$(curl -s -o "$tmp/reject.json" -w '%{http_code}' -X POST "$base/v1/sweeps" \
    -d '{"apps":["FFT"],"effort_scale":0.05}' || true)
[ "$code" = "503" ] || fail "draining submission got HTTP $code, want 503"
curl -s -D "$tmp/reject.hdr" -o /dev/null -X POST "$base/v1/sweeps" \
    -d '{"apps":["FFT"],"effort_scale":0.05}' || true
grep -qi '^retry-after:' "$tmp/reject.hdr" || fail "draining 503 carried no Retry-After"

code=$(curl -s -o "$tmp/healthz.json" -w '%{http_code}' "$base/healthz" || true)
[ "$code" = "503" ] || fail "draining healthz got HTTP $code, want 503"
grep -q '"status": *"closing"' "$tmp/healthz.json" || fail "draining healthz not closing"

# The process must exit on its own: drain window (3s) + hard stop, well
# within this budget.
down=""
for _ in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then down=1; break; fi
    sleep 0.2
done
[ -n "$down" ] || fail "server still alive 20s after SIGTERM"
wait "$pid" 2>/dev/null && status=0 || status=$?
pid=""
[ "$status" -eq 0 ] || fail "server exited with status $status"
grep -q "draining" "$tmp/serve.log" || fail "no drain log line"

echo "shutdown-smoke: OK (drained, rejected new work with 503, exited cleanly)"
