#!/usr/bin/env sh
# Chaos smoke test: boots real refrint-serve binaries with -fault-spec and
# asserts the containment story end to end — a panicking simulation fails
# only its job (reason "panic", healthz stays ok), a dead disk degrades the
# store without failing sweeps, and timeout_ms fails a job with a deadline
# reason while the worker lives on.  CI runs this next to the SSE and metrics
# smokes; locally: scripts/chaos-smoke.sh
set -eu

port="${CHAOS_SMOKE_PORT:-18084}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "chaos-smoke: FAIL: $1" >&2
    [ -f "$tmp/serve.log" ] && { echo "--- serve.log ---" >&2; cat "$tmp/serve.log" >&2; }
    exit 1
}

boot() {
    "$tmp/refrint-serve" -addr "127.0.0.1:$port" "$@" >"$tmp/serve.log" 2>&1 &
    pid=$!
    up=""
    for _ in $(seq 1 50); do
        if curl -s "$base/healthz" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.2
    done
    [ -n "$up" ] || fail "server never came up on $base"
}

stop() {
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    pid=""
}

# submit POSTs a tiny sweep (extra JSON fields spliced in via $1) and prints
# the job id.
submit() {
    extra="${1:-}"
    body="{\"apps\":[\"FFT\"],\"retention_times_us\":[50],\"policies\":[\"R.valid\"],\"effort_scale\":0.05,\"workers\":2$extra}"
    resp=$(curl -s -X POST "$base/v1/sweeps" -d "$body")
    printf '%s' "$resp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1
}

# wait_state polls a job until it reaches the wanted terminal state.
wait_state() {
    id="$1"; want="$2"
    for _ in $(seq 1 150); do
        state=$(curl -s "$base/v1/sweeps/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1)
        [ "$state" = "$want" ] && return 0
        case "$state" in done|failed|cancelled) fail "job $id: state $state, want $want";; esac
        sleep 0.2
    done
    fail "job $id never reached $want (last: ${state:-none})"
}

go build -o "$tmp/refrint-serve" ./cmd/refrint-serve

# --- Phase 1: every simulation panics; the service must not care. ---
boot -fault-spec 'sim.run:panic'
id=$(submit) && [ -n "$id" ] || fail "no job id (panic phase)"
wait_state "$id" failed
curl -s "$base/v1/sweeps/$id" | grep -q '"reason": *"panic"' \
    || fail "panicking job missing reason=panic"
curl -s "$base/healthz" | grep -q '"status": *"ok"' \
    || fail "healthz not ok after contained panics"
curl -s "$base/metrics" | grep '^refrint_panics_total{site="sim"}' | grep -qv ' 0$' \
    || fail "refrint_panics_total{site=sim} not incremented"
stop

# --- Phase 2: the disk is dead; sweeps still succeed, store degrades. ---
boot -fault-spec 'store.put:error' -data-dir "$tmp/data"
id=$(submit) && [ -n "$id" ] || fail "no job id (degraded phase)"
wait_state "$id" done
curl -s "$base/healthz" | grep -q '"status": *"degraded"' \
    || fail "healthz not degraded with a dead disk"
curl -s "$base/metrics" | grep -q '^refrint_store_degraded 1$' \
    || fail "refrint_store_degraded != 1"
stop

# --- Phase 3: timeout_ms fails the job with a deadline, worker survives. ---
boot -job-timeout 10s
id=$(submit ',"timeout_ms":1') && [ -n "$id" ] || fail "no job id (deadline phase)"
wait_state "$id" failed
curl -s "$base/v1/sweeps/$id" | grep -q '"reason": *"deadline exceeded"' \
    || fail "timed-out job missing reason=deadline exceeded"
# The worker slot is free again: a follow-up sweep is admitted and finishes.
id=$(submit) && [ -n "$id" ] || fail "no follow-up job id after timeout"
wait_state "$id" done
stop

echo "chaos-smoke: OK (panic contained, store degraded gracefully, deadline enforced)"
