#!/usr/bin/env sh
# Runs the hot-path benchmark suite the CI perf gate compares against
# bench/baseline.txt.  Usage: scripts/bench.sh [output-file]
#
# BENCH_COUNT / BENCH_PATTERN can override the defaults, e.g. a quick local
# check with BENCH_COUNT=1.
set -eu

out="${1:-}"
count="${BENCH_COUNT:-5}"
pattern="${BENCH_PATTERN:-BenchmarkRun|BenchmarkAccessSteadyState|BenchmarkProbe|BenchmarkSentryInterruptProcessing|BenchmarkPeriodicSweepProcessing|BenchmarkDemandTouch|BenchmarkSubmitDequeue|BenchmarkProgressCallback|BenchmarkHistogramObserve}"

run() {
    go test -run '^$' -bench "$pattern" -benchmem -count "$count" \
        ./internal/cache ./internal/sim ./internal/core ./internal/sched ./internal/server
}

# No pipe around `run`: POSIX sh has no pipefail, and `run | tee` would
# let a failing benchmark suite exit 0 through tee.
if [ -n "$out" ]; then
    run > "$out"
    cat "$out"
else
    run
fi
