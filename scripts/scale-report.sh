#!/usr/bin/env sh
# Runs the service-level scaling study: the quick sweep workload across a
# series of worker-pool sizes, reporting sims/sec, speedup, and parallel
# efficiency at each point.  Usage: scripts/scale-report.sh [output.json]
#
# Environment overrides (all optional):
#   SCALE_WORKERS  comma-separated worker counts (default: powers of two
#                  up to NumCPU, chosen by refrint-scale itself)
#   SCALE_REPEAT   runs per point, best time kept (default 3; CI smoke uses 1)
#   SCALE_EFFORT   workload length multiplier (default 0.25)
#
# The committed trajectory lives in BENCH_<pr>.json at the repo root; run
# `make scale-report` on a quiet machine to regenerate it.
set -eu

out="${1:-}"
repeat="${SCALE_REPEAT:-3}"
effort="${SCALE_EFFORT:-0.25}"

set -- -repeat "$repeat" -effort "$effort"
if [ -n "${SCALE_WORKERS:-}" ]; then
    set -- "$@" -workers "$SCALE_WORKERS"
fi
if [ -n "$out" ]; then
    set -- "$@" -out "$out"
fi

go run ./cmd/refrint-scale "$@"
