package refrint

import (
	"context"
	"encoding/json"
	"testing"
)

// TestSweepRequestJSONRoundTrip verifies the wire form: a request survives
// JSON encode/decode and still resolves to the same canonical sweep key.
func TestSweepRequestJSONRoundTrip(t *testing.T) {
	req := SweepRequest{
		Preset:           "scaled",
		Apps:             []string{"FFT", "LU"},
		RetentionTimesUS: []float64{50, 100},
		Policies:         []string{"P.all", "R.WB(32,32)"},
		EffortScale:      0.5,
		Seed:             9,
		Workers:          3,
	}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded SweepRequest
	if err := json.Unmarshal(payload, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	k1, err := req.Key()
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	k2, err := decoded.Key()
	if err != nil {
		t.Fatalf("decoded key: %v", err)
	}
	if k1 != k2 {
		t.Fatalf("JSON round trip changed key: %q vs %q", k1, k2)
	}
}

// TestRequestFromOptionsInverts verifies Options -> Request -> Options
// preserves the canonical key, for defaults and for a customized sweep.
func TestRequestFromOptionsInverts(t *testing.T) {
	for _, opts := range []SweepOptions{DefaultSweep(), QuickSweep()} {
		req := RequestFromOptions(opts)
		back, err := req.Options()
		if err != nil {
			t.Fatalf("RequestFromOptions(%+v).Options(): %v", opts, err)
		}
		if back.Key() != opts.Key() {
			t.Fatalf("round trip changed key: %q vs %q", back.Key(), opts.Key())
		}
	}
}

// TestSweepKeySemantics pins what the cache key must and must not depend on.
func TestSweepKeySemantics(t *testing.T) {
	base := DefaultSweep()

	zero := SweepOptions{}
	if zero.Key() != base.Key() {
		t.Errorf("zero-value options key %q differs from explicit defaults %q", zero.Key(), base.Key())
	}

	workers := base
	workers.Workers = 1
	if workers.Key() != base.Key() {
		t.Errorf("worker count changed the key: results are worker-independent")
	}

	seeded := base
	seeded.Seed = 2
	if seeded.Key() == base.Key() {
		t.Errorf("seed change did not change the key")
	}

	effort := base
	effort.EffortScale = 0.5
	if effort.Key() == base.Key() {
		t.Errorf("effort change did not change the key")
	}

	apps := base
	apps.Apps = []string{"FFT"}
	if apps.Key() == base.Key() {
		t.Errorf("app selection change did not change the key")
	}

	// Permuting the request must not change the key: overlapping sweeps
	// share cache and store slots regardless of field order.
	permuted := base
	permuted.Apps = append([]string(nil), base.Apps...)
	for i, j := 0, len(permuted.Apps)-1; i < j; i, j = i+1, j-1 {
		permuted.Apps[i], permuted.Apps[j] = permuted.Apps[j], permuted.Apps[i]
	}
	permuted.RetentionTimesUS = []float64{200, 50, 100}
	if permuted.Key() != base.Key() {
		t.Errorf("permuted options key %q differs from %q", permuted.Key(), base.Key())
	}
}

// TestSweepCellKey covers the public cell-key helper: baselines are keyed
// retention-free, every axis moves the hash, and worker count never does.
func TestSweepCellKey(t *testing.T) {
	opts := QuickSweep()

	k, err := SweepCellKey(opts, "FFT", "R.WB(32,32)", Retention50us)
	if err != nil {
		t.Fatalf("SweepCellKey: %v", err)
	}
	if k.App != "FFT" || k.RetentionUS != Retention50us || k.ConfigHash == "" {
		t.Fatalf("cell key fields wrong: %+v", k)
	}

	if _, err := SweepCellKey(opts, "FFT", "Q.bogus", Retention50us); err == nil {
		t.Error("bogus policy label accepted")
	}

	sram, err := SweepCellKey(opts, "FFT", "SRAM", Retention100us)
	if err != nil {
		t.Fatalf("SRAM cell key: %v", err)
	}
	if sram.RetentionUS != 0 {
		t.Errorf("baseline cell keyed with retention %g, want 0 (retention-free)", sram.RetentionUS)
	}

	other, _ := SweepCellKey(opts, "LU", "R.WB(32,32)", Retention50us)
	if other.Hash() == k.Hash() {
		t.Error("different app produced the same cell hash")
	}
	fast := opts
	fast.Workers = 64
	same, _ := SweepCellKey(fast, "FFT", "R.WB(32,32)", Retention50us)
	if same.Hash() != k.Hash() {
		t.Error("worker count changed a cell hash")
	}
}

// TestSweepRequestValidation rejects requests the service must never run.
func TestSweepRequestValidation(t *testing.T) {
	bad := []SweepRequest{
		{Preset: "galactic"},
		{Apps: []string{"NotAnApp"}},
		{RetentionTimesUS: []float64{0}},
		{RetentionTimesUS: []float64{-50}},
		{Policies: []string{"X.all"}},
		{Policies: []string{"SRAM"}},
		{EffortScale: -0.25},
	}
	for _, req := range bad {
		if _, err := req.Options(); err == nil {
			t.Errorf("request %+v validated, want error", req)
		}
	}
}

// TestRunSweepContextCancelled verifies the public context entry point
// surfaces cancellation.
func TestRunSweepContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSweepContext(ctx, QuickSweep(), nil)
	if err != context.Canceled {
		t.Fatalf("RunSweepContext on cancelled ctx = %v, want context.Canceled", err)
	}
}
