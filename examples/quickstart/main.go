// Quickstart: simulate one application on the full-SRAM baseline and on the
// Refrint WB(32,32) eDRAM hierarchy, and compare memory energy and execution
// time — the paper's headline comparison, on one benchmark.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"refrint"
)

func main() {
	const app = "LU"

	baseline, err := refrint.Simulate(refrint.SimRequest{
		App:    app,
		Policy: "SRAM",
		// Shorten the run so the example finishes in a few seconds.
		EffortScale: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	refrintRun, err := refrint.Simulate(refrint.SimRequest{
		App:         app,
		Policy:      "R.WB(32,32)",
		RetentionUS: refrint.Retention50us,
		EffortScale: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Application            : %s (16 threads)\n", app)
	fmt.Printf("Full-SRAM hierarchy    : %.3g J memory energy, %d cycles\n",
		baseline.Energy.MemoryHierarchy(), baseline.Cycles)
	fmt.Printf("Refrint R.WB(32,32)    : %.3g J memory energy, %d cycles\n",
		refrintRun.Energy.MemoryHierarchy(), refrintRun.Cycles)

	memRatio := refrintRun.Energy.MemoryHierarchy() / baseline.Energy.MemoryHierarchy()
	timeRatio := float64(refrintRun.Cycles) / float64(baseline.Cycles)
	fmt.Printf("\nRefrint uses %.0f%% of the SRAM memory-hierarchy energy", 100*memRatio)
	fmt.Printf(" with a %.1f%% slowdown.\n", 100*(timeRatio-1))
	fmt.Printf("Refresh breakdown      : %d line refreshes from %d sentry interrupts, %d policy writebacks, %d policy invalidations\n",
		refrintRun.Stats.TotalOnChipRefreshes(),
		refrintRun.Stats.SentryInterrupts,
		refrintRun.Stats.PolicyWritebacks,
		refrintRun.Stats.PolicyInvalidates)
}
