// Policy sweep: evaluate all fourteen refresh policies of Table 5.4 on a
// single application at one retention time, and print a ranking by memory
// energy — a one-application slice of Figures 6.1 and 6.4.
//
// Run with:
//
//	go run ./examples/policysweep [-app Radix] [-retention 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"refrint"
)

func main() {
	app := flag.String("app", "Radix", "application to sweep")
	retention := flag.Float64("retention", refrint.Retention50us, "retention time in microseconds")
	flag.Parse()

	baseline, err := refrint.Simulate(refrint.SimRequest{
		App: *app, Policy: "SRAM", EffortScale: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		policy    string
		memRatio  float64
		timeRatio float64
		refreshes int64
	}
	var rows []row
	for _, policy := range refrint.Policies() {
		res, err := refrint.Simulate(refrint.SimRequest{
			App:         *app,
			Policy:      policy.String(),
			RetentionUS: *retention,
			EffortScale: 0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			policy:    policy.String(),
			memRatio:  res.Energy.MemoryHierarchy() / baseline.Energy.MemoryHierarchy(),
			timeRatio: float64(res.Cycles) / float64(baseline.Cycles),
			refreshes: res.Stats.TotalOnChipRefreshes(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].memRatio < rows[j].memRatio })

	fmt.Printf("Application %s at %g us retention (normalized to full-SRAM)\n\n", *app, *retention)
	fmt.Printf("%-14s %12s %12s %14s\n", "policy", "memory", "time", "refreshes")
	for _, r := range rows {
		fmt.Printf("%-14s %11.1f%% %11.1f%% %14d\n", r.policy, 100*r.memRatio, 100*r.timeRatio, r.refreshes)
	}
	fmt.Println("\nLower memory % is better; the paper's proposal is the R.* family,")
	fmt.Println("with R.WB(n,m) trading a little execution time for the lowest energy.")
}
