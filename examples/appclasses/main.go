// Application classes: reproduce the Class 1 / Class 2 / Class 3 binning of
// Table 6.1 and show how each class responds to the data-based refresh
// policies, confirming the model of Figure 3.1: Class 1 benefits from
// WB(n,m) even with small budgets, Class 2 needs large budgets or Valid, and
// Class 3 does best with Valid.
//
// Run with:
//
//	go run ./examples/appclasses
package main

import (
	"fmt"
	"log"

	"refrint"
)

// One representative application per class keeps the example fast; swap in
// any of the eleven applications of Table 5.3.
var representatives = map[string]string{
	"Class 1 (large footprint, high visibility)": "FFT",
	"Class 2 (small footprint, high visibility)": "LU",
	"Class 3 (small footprint, low visibility)":  "Blackscholes",
}

func main() {
	policies := []string{"R.valid", "R.WB(4,4)", "R.WB(32,32)"}

	fmt.Println("Memory-hierarchy energy normalized to the full-SRAM baseline (lower is better)")
	fmt.Printf("%-46s %-14s %10s %10s\n", "class", "app", "", "")
	fmt.Printf("%-46s %-14s", "", "")
	for _, p := range policies {
		fmt.Printf(" %12s", p)
	}
	fmt.Println()

	for class, app := range representatives {
		baseline, err := refrint.Simulate(refrint.SimRequest{App: app, Policy: "SRAM", EffortScale: 0.25})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-46s %-14s", class, app)
		for _, p := range policies {
			res, err := refrint.Simulate(refrint.SimRequest{
				App: app, Policy: p, RetentionUS: refrint.Retention50us, EffortScale: 0.25,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %11.1f%%", 100*res.Energy.MemoryHierarchy()/baseline.Energy.MemoryHierarchy())
		}
		fmt.Println()
	}

	fmt.Println("\nExpected pattern (Section 3.3 of the paper):")
	fmt.Println("  Class 1: WB policies win even with small (n,m) - stale streaming data is evicted early.")
	fmt.Println("  Class 2: Valid and WB with large (n,m) are close - the working set is reused from the L3.")
	fmt.Println("  Class 3: Valid is best - the L3 sees so little traffic that evicting anything only adds misses.")
}
