// Custom workload: define a synthetic application through the public API
// (rather than using one of the Table 5.3 presets) and evaluate how the
// refresh policies behave on it.  The example builds a "producer/consumer"
// style workload with a moderate footprint and very heavy sharing, which
// lands in Class 2 of Figure 3.1.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"refrint"
)

func main() {
	custom := refrint.WorkloadParams{
		Name:               "producer-consumer",
		Suite:              "custom",
		Input:              "synthetic",
		FootprintLines:     48 * 1024, // ~18% of the 256K-line full-size LLC
		SharedFraction:     0.60,      // heavy producer/consumer sharing
		WriteFraction:      0.45,
		Locality:           0.90,
		WorkingWindow:      1024,
		ComputePerMemOp:    6,
		MemOpsPerThread:    120_000,
		InstrFetchFraction: 0.04,
		CodeLines:          128,
	}

	baseline, err := refrint.Simulate(refrint.SimRequest{
		Workload: &custom,
		Policy:   "SRAM",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Custom workload %q: %d memory operations, %d cycles on full-SRAM\n\n",
		custom.Name, baseline.Stats.MemOps, baseline.Cycles)
	fmt.Printf("%-14s %14s %14s %16s %16s\n", "policy", "memory energy", "exec. time", "L3 refreshes", "DRAM accesses")

	for _, label := range []string{"P.all", "P.valid", "R.valid", "R.dirty", "R.WB(8,8)", "R.WB(32,32)"} {
		res, err := refrint.Simulate(refrint.SimRequest{
			Workload:    &custom,
			Policy:      label,
			RetentionUS: refrint.Retention50us,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %13.1f%% %13.1f%% %16d %16d\n",
			label,
			100*res.Energy.MemoryHierarchy()/baseline.Energy.MemoryHierarchy(),
			100*float64(res.Cycles)/float64(baseline.Cycles),
			res.Stats.Level(refrintL3()).Refreshes,
			res.Stats.DRAMAccesses())
	}

	fmt.Println("\nBecause the workload shares data heavily, the L3 sees plenty of writeback traffic")
	fmt.Println("(high visibility), so state-based policies can tell live lines from dead ones.")
}

// refrintL3 returns the stats level constant for the L3 without importing the
// internal stats package directly in the example.
func refrintL3() refrint.StatsLevel { return refrint.StatsL3 }
