package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// drainPayloads pops everything worker idx can reach (own queues + steals)
// and returns the payloads in dequeue order.
func drainPayloads(s *Scheduler, idx int) []any {
	var out []any
	for {
		it := s.tryNext(idx)
		if it == nil {
			return out
		}
		out = append(out, it.payload)
		s.done(it)
	}
}

// keyHomedTo fabricates a key whose home is the wanted worker index.
func keyHomedTo(t *testing.T, want, workers int) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if Home(k, workers) == want {
			return k
		}
	}
	t.Fatalf("no key homed to worker %d of %d", want, workers)
	return ""
}

// TestPriorityOrdering pins that a single worker serves more urgent classes
// first: interactive before batch before background, FIFO within a class.
func TestPriorityOrdering(t *testing.T) {
	s := New(Config{Workers: 1})
	submit := func(name string, c Class) {
		if _, ok := s.Submit(name, "tenant", c, name); !ok {
			t.Fatalf("submit %s rejected", name)
		}
	}
	submit("g1", Background)
	submit("g2", Background)
	submit("b1", Batch)
	submit("b2", Batch)
	submit("i1", Interactive)
	submit("i2", Interactive)

	got := drainPayloads(s, 0)
	want := []any{"i1", "i2", "b1", "b2", "g1", "g2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order = %v, want %v", got, want)
	}
}

// TestWeightedSharesAcrossClasses pins the weighted-round-robin cycle: with
// every class backlogged and weights {3,2,1}, each cycle serves 3
// interactive, 2 batch and 1 background item, most urgent first.
func TestWeightedSharesAcrossClasses(t *testing.T) {
	s := New(Config{Workers: 1, Weights: [NumClasses]int{3, 2, 1}})
	for i := 0; i < 6; i++ {
		for c := Class(0); c < NumClasses; c++ {
			if _, ok := s.Submit(fmt.Sprintf("k%d-%d", c, i), "tenant", c, c); !ok {
				t.Fatalf("submit %v #%d rejected", c, i)
			}
		}
	}
	got := drainPayloads(s, 0)
	want := []any{
		// Two full weighted cycles while every class is backlogged...
		Interactive, Interactive, Interactive, Batch, Batch, Background,
		Interactive, Interactive, Interactive, Batch, Batch, Background,
		// ...then interactive is empty and the leftovers drain by weight.
		Batch, Batch, Background, Background, Background, Background,
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order = %v, want %v", got, want)
	}
}

// TestFairShareAcrossClients pins round-robin between clients flooding one
// class: a tenant with more queued work cannot starve a smaller one.
func TestFairShareAcrossClients(t *testing.T) {
	s := New(Config{Workers: 1})
	for i := 1; i <= 4; i++ {
		if _, ok := s.Submit(fmt.Sprintf("a%d", i), "alice", Batch, fmt.Sprintf("a%d", i)); !ok {
			t.Fatalf("submit a%d rejected", i)
		}
	}
	for i := 1; i <= 2; i++ {
		if _, ok := s.Submit(fmt.Sprintf("b%d", i), "bob", Batch, fmt.Sprintf("b%d", i)); !ok {
			t.Fatalf("submit b%d rejected", i)
		}
	}
	got := drainPayloads(s, 0)
	want := []any{"a1", "b1", "a2", "b2", "a3", "a4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order = %v, want %v", got, want)
	}
}

// TestWorkStealingDrainsImbalance homes every item to worker 0 and verifies
// worker 1 steals rather than idling, most urgent classes first, and that
// the steal counter records it.
func TestWorkStealingDrainsImbalance(t *testing.T) {
	s := New(Config{Workers: 2})
	key := keyHomedTo(t, 0, 2)
	for i := 0; i < 3; i++ {
		if _, ok := s.Submit(key, "tenant", Background, fmt.Sprintf("g%d", i)); !ok {
			t.Fatalf("submit g%d rejected", i)
		}
	}
	if _, ok := s.Submit(key, "tenant", Interactive, "i0"); !ok {
		t.Fatal("submit i0 rejected")
	}

	it := s.tryNext(1) // worker 1 owns nothing: this must steal
	if it == nil {
		t.Fatal("worker 1 found nothing to steal")
	}
	if it.payload != "i0" {
		t.Fatalf("steal took %v, want the most urgent item i0", it.payload)
	}
	if st := s.Stats(); st.Steals != 1 || st.Busy != 1 {
		t.Fatalf("stats after steal = %+v, want Steals 1 Busy 1", st)
	}
	s.done(it)

	rest := drainPayloads(s, 1)
	if len(rest) != 3 {
		t.Fatalf("worker 1 drained %d more items, want 3", len(rest))
	}
	if st := s.Stats(); st.Steals != 4 {
		t.Errorf("steals = %d, want 4 (every dequeue by worker 1 was a steal)", st.Steals)
	}
	if q := s.Queued(); q != 0 {
		t.Errorf("queued = %d after drain, want 0", q)
	}
}

// TestStealOverridesLessUrgentLocalWork pins that priority is global, not
// per-worker: a worker holding only background work steals a sibling's
// queued interactive item instead of serving its own queue.
func TestStealOverridesLessUrgentLocalWork(t *testing.T) {
	s := New(Config{Workers: 2})
	k0 := keyHomedTo(t, 0, 2)
	k1 := keyHomedTo(t, 1, 2)
	if _, ok := s.Submit(k0, "tenant", Background, "local-bg"); !ok {
		t.Fatal("submit local-bg rejected")
	}
	if _, ok := s.Submit(k1, "tenant", Interactive, "remote-i"); !ok {
		t.Fatal("submit remote-i rejected")
	}
	it := s.tryNext(0)
	if it.payload != "remote-i" {
		t.Fatalf("worker 0 dequeued %v, want the sibling's interactive item", it.payload)
	}
	if st := s.Stats(); st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}
	s.done(it)
	it = s.tryNext(0)
	if it.payload != "local-bg" {
		t.Fatalf("worker 0 then dequeued %v, want its own background item", it.payload)
	}
	s.done(it)
}

// TestNoIdleWorkerWhileQueued is the live integration check: items homed to
// one worker keep every started worker busy via stealing.
func TestNoIdleWorkerWhileQueued(t *testing.T) {
	s := New(Config{Workers: 2})
	started := make(chan any, 8)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	s.Start(func(p any) {
		defer wg.Done()
		started <- p
		<-release
	})

	key := keyHomedTo(t, 0, 2)
	for i := 0; i < 4; i++ {
		if _, ok := s.Submit(key, "tenant", Batch, i); !ok {
			t.Fatalf("submit %d rejected", i)
		}
	}
	// Both workers must pick up work even though all of it is homed to
	// worker 0.
	<-started
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Busy == 2 {
			if st.Queued[Batch] != 2 {
				t.Fatalf("queued[batch] = %d with both workers busy, want 2", st.Queued[Batch])
			}
			if st.Steals < 1 {
				t.Fatalf("steals = %d with both workers busy on one-homed load, want >= 1", st.Steals)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never both busy: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	s.Close()
	if st := s.Stats(); st.Busy != 0 || st.Queued[Batch] != 0 {
		t.Fatalf("stats after drain = %+v, want idle and empty", st)
	}
	if n := len(started); n != 2 {
		t.Fatalf("%d extra starts buffered, want 2 (4 items total)", n)
	}
}

// TestCancelFreesCapacityImmediately is the slot-leak regression at the
// scheduler level: fill a class, cancel everything, and the next submission
// must be accepted with no dequeue in between.
func TestCancelFreesCapacityImmediately(t *testing.T) {
	s := New(Config{Workers: 1, Depth: [NumClasses]int{4, 2, 4}})
	var handles []Handle
	for i := 0; i < 2; i++ {
		h, ok := s.Submit(fmt.Sprintf("k%d", i), "tenant", Batch, i)
		if !ok {
			t.Fatalf("submit %d rejected", i)
		}
		handles = append(handles, h)
	}
	if _, ok := s.Submit("k-over", "tenant", Batch, 99); ok {
		t.Fatal("submit beyond depth accepted")
	}
	for i, h := range handles {
		if !s.Cancel(h) {
			t.Fatalf("cancel %d reported false", i)
		}
	}
	if q := s.Queued(); q != 0 {
		t.Fatalf("queued = %d after cancelling all, want 0", q)
	}
	// Capacity is free NOW — no worker ever popped anything.
	for i := 0; i < 2; i++ {
		if _, ok := s.Submit(fmt.Sprintf("n%d", i), "tenant", Batch, i); !ok {
			t.Fatalf("post-cancel submit %d rejected: slot leaked", i)
		}
	}
	// The cancelled items were really removed: only live items dequeue.
	got := drainPayloads(s, 0)
	if fmt.Sprint(got) != fmt.Sprint([]any{0, 1}) {
		t.Fatalf("drained %v, want the two fresh items", got)
	}
}

// TestStealDoesNotStarveLowerClasses pins the multi-worker no-starvation
// guarantee: a worker facing a sustained remote interactive backlog still
// serves its local background item once its interactive credits are spent —
// stolen work pays credits exactly like home work.
func TestStealDoesNotStarveLowerClasses(t *testing.T) {
	s := New(Config{Workers: 2, Weights: [NumClasses]int{2, 1, 1}, Depth: [NumClasses]int{64, 64, 64}})
	k0 := keyHomedTo(t, 0, 2)
	k1 := keyHomedTo(t, 1, 2)
	if _, ok := s.Submit(k0, "tenant", Background, "bg"); !ok {
		t.Fatal("submit bg rejected")
	}
	for i := 0; i < 10; i++ {
		if _, ok := s.Submit(k1, "flood", Interactive, fmt.Sprintf("i%d", i)); !ok {
			t.Fatalf("submit i%d rejected", i)
		}
	}
	// Worker 0 drains alone: it steals interactive work from worker 1, but
	// after spending its 2 interactive credits the background item is due.
	var got []any
	for j := 0; j < 3; j++ {
		it := s.tryNext(0)
		got = append(got, it.payload)
		s.done(it)
	}
	want := []any{"i0", "i1", "bg"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order = %v, want %v (background must not starve)", got, want)
	}
}

// TestDrainedClientsLeaveNoTrace pins that client labels — arbitrary wire
// input — do not accumulate state: once a client's FIFO drains (by dequeue
// or by cancellation), its map entry is gone and the struct is recycled.
func TestDrainedClientsLeaveNoTrace(t *testing.T) {
	s := New(Config{Workers: 1, Depth: [NumClasses]int{4096, 4096, 4096}})
	for i := 0; i < 1000; i++ {
		h, ok := s.Submit("k", fmt.Sprintf("client-%d", i), Batch, i)
		if !ok {
			t.Fatalf("submit %d rejected", i)
		}
		if i%2 == 0 {
			if !s.Cancel(h) {
				t.Fatalf("cancel %d failed", i)
			}
		}
	}
	for {
		it := s.tryNext(0)
		if it == nil {
			break
		}
		s.done(it)
	}
	cq := &s.workers[0].classes[Batch]
	if n := len(cq.clients); n != 0 {
		t.Fatalf("%d drained client queues still mapped, want 0", n)
	}
	if n := len(cq.ring); n != 0 {
		t.Fatalf("%d drained client queues still in ring, want 0", n)
	}
	// Recycled structs serve new clients.
	if _, ok := s.Submit("k", "fresh", Batch, "x"); !ok {
		t.Fatal("post-drain submit rejected")
	}
	if got := drainPayloads(s, 0); fmt.Sprint(got) != fmt.Sprint([]any{"x"}) {
		t.Fatalf("drained %v, want [x]", got)
	}
}

// TestCancelStaleHandle pins handle invalidation: cancelling twice, or
// cancelling a dequeued item, reports false and touches nothing.
func TestCancelStaleHandle(t *testing.T) {
	s := New(Config{Workers: 1})
	h, ok := s.Submit("k", "tenant", Batch, "x")
	if !ok {
		t.Fatal("submit rejected")
	}
	if !s.Cancel(h) {
		t.Fatal("first cancel reported false")
	}
	if s.Cancel(h) {
		t.Fatal("second cancel succeeded on a stale handle")
	}
	h2, _ := s.Submit("k2", "tenant", Batch, "y")
	it := s.tryNext(0)
	if it == nil || it.payload != "y" {
		t.Fatalf("dequeued %v, want y", it)
	}
	if s.Cancel(h2) {
		t.Fatal("cancel succeeded on a running item")
	}
	s.done(it)
	if s.Cancel(h2) {
		t.Fatal("cancel succeeded on a finished (recycled) item")
	}
}

// TestPromote pins class moves: a promoted item dequeues with its new class
// and the handle returned by Promote stays cancellable.
func TestPromote(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, ok := s.Submit("a", "tenant", Background, "a"); !ok {
		t.Fatal("submit a rejected")
	}
	hb, ok := s.Submit("b", "tenant", Background, "b")
	if !ok {
		t.Fatal("submit b rejected")
	}
	hb2, ok := s.Promote(hb, Interactive)
	if !ok {
		t.Fatal("promote reported false")
	}
	if st := s.Stats(); st.Queued[Interactive] != 1 || st.Queued[Background] != 1 {
		t.Fatalf("queued after promote = %v", st.Queued)
	}
	it := s.tryNext(0)
	if it.payload != "b" {
		t.Fatalf("dequeued %v first, want the promoted b", it.payload)
	}
	s.done(it)
	if _, ok := s.Promote(hb2, Background); ok {
		t.Fatal("promote succeeded on a finished item")
	}
	if got := drainPayloads(s, 0); fmt.Sprint(got) != fmt.Sprint([]any{"a"}) {
		t.Fatalf("remaining = %v, want [a]", got)
	}
}

// TestPromoteRespectsDepth pins the DoS guard: promotion into a full class
// is declined (leaving the item queued at its original class), so repeated
// submit-then-promote cycles cannot grow a class beyond its bound.
func TestPromoteRespectsDepth(t *testing.T) {
	s := New(Config{Workers: 1, Depth: [NumClasses]int{1, 4, 4}})
	if _, ok := s.Submit("i", "tenant", Interactive, "i"); !ok {
		t.Fatal("interactive fill rejected")
	}
	hg, ok := s.Submit("g", "tenant", Background, "g")
	if !ok {
		t.Fatal("background submit rejected")
	}
	if _, ok := s.Promote(hg, Interactive); ok {
		t.Fatal("promotion into a full class succeeded")
	}
	if st := s.Stats(); st.Queued[Interactive] != 1 || st.Queued[Background] != 1 {
		t.Fatalf("queued after declined promotion = %v, want [1 0 1]", st.Queued)
	}
	// The handle stays valid: once capacity exists, the promotion works.
	it := s.tryNext(0) // dequeues the interactive item
	s.done(it)
	hg2, ok := s.Promote(hg, Interactive)
	if !ok {
		t.Fatal("promotion with capacity free reported false")
	}
	if !s.Cancel(hg2) {
		t.Fatal("promoted handle not cancellable")
	}
}

// TestPromoteWaitAttribution pins the latency accounting across a
// promotion: wait accrued in the original class is charged there, and the
// new class only sees post-promotion wait.
func TestPromoteWaitAttribution(t *testing.T) {
	now := time.Unix(0, 0)
	s := New(Config{Workers: 1, Now: func() time.Time { return now }})
	h, ok := s.Submit("k", "tenant", Background, "x")
	if !ok {
		t.Fatal("submit rejected")
	}
	now = now.Add(10 * time.Second)
	if _, ok := s.Promote(h, Interactive); !ok {
		t.Fatal("promote failed")
	}
	now = now.Add(1 * time.Second)
	it := s.tryNext(0)
	s.done(it)
	st := s.Stats()
	if st.WaitSum[Background] != 10*time.Second || st.WaitCount[Background] != 0 {
		t.Fatalf("background wait = %v/%d, want 10s/0 (pre-promotion time)", st.WaitSum[Background], st.WaitCount[Background])
	}
	if st.WaitSum[Interactive] != 1*time.Second || st.WaitCount[Interactive] != 1 {
		t.Fatalf("interactive wait = %v/%d, want 1s/1 (post-promotion only)", st.WaitSum[Interactive], st.WaitCount[Interactive])
	}
}

// TestCloseDrainsQueued verifies Close lets workers finish everything queued
// before returning, and that submissions after Close are rejected.
func TestCloseDrainsQueued(t *testing.T) {
	s := New(Config{Workers: 1})
	var mu sync.Mutex
	var ran []any
	gate := make(chan struct{})
	s.Start(func(p any) {
		<-gate
		mu.Lock()
		ran = append(ran, p)
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		if _, ok := s.Submit(fmt.Sprintf("k%d", i), "tenant", Batch, i); !ok {
			t.Fatalf("submit %d rejected", i)
		}
	}
	close(gate)
	s.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 3 {
		t.Fatalf("Close returned with %d of 3 items run", len(ran))
	}
	if _, ok := s.Submit("late", "tenant", Batch, 9); ok {
		t.Fatal("submit after Close accepted")
	}
}

// TestWaitLatencyAccounting verifies the scheduling-latency counters using
// an injected clock.
func TestWaitLatencyAccounting(t *testing.T) {
	now := time.Unix(0, 0)
	s := New(Config{Workers: 1, Now: func() time.Time { return now }})
	if _, ok := s.Submit("k", "tenant", Interactive, "x"); !ok {
		t.Fatal("submit rejected")
	}
	now = now.Add(250 * time.Millisecond)
	it := s.tryNext(0)
	s.done(it)
	st := s.Stats()
	if st.WaitCount[Interactive] != 1 || st.WaitSum[Interactive] != 250*time.Millisecond {
		t.Fatalf("wait accounting = count %v sum %v, want 1 / 250ms",
			st.WaitCount[Interactive], st.WaitSum[Interactive])
	}
}

// TestParseClass pins the wire labels.
func TestParseClass(t *testing.T) {
	for _, c := range []Class{Interactive, Batch, Background} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("turbo"); err == nil {
		t.Error("ParseClass(turbo) succeeded")
	}
	if _, err := ParseClass(""); err == nil {
		t.Error("ParseClass of empty string succeeded (callers pick defaults)")
	}
}
