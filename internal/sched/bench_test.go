package sched

import "testing"

// BenchmarkSubmitDequeue measures the scheduler hot path: one submission
// (inline key hash, free-list item, client FIFO append) plus its dequeue
// (weighted class pick, client round-robin, latency accounting) and release.
// The benchmem gate in scripts/bench.sh pins this at 0 allocs/op.
func BenchmarkSubmitDequeue(b *testing.B) {
	s := New(Config{Workers: 4, Depth: [NumClasses]int{1 << 16, 1 << 16, 1 << 16}})
	payload := &struct{ n int }{}
	keys := [8]string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	clients := [4]string{"c0", "c1", "c2", "c3"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Submit(keys[i%8], clients[i%4], Class(i%NumClasses), payload); !ok {
			b.Fatal("submit rejected")
		}
		it := s.tryNext(i % 4)
		if it == nil {
			b.Fatal("dequeue found nothing")
		}
		s.done(it)
	}
}
