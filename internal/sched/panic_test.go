package sched

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWorkerSurvivesPanic verifies a panicking run callback loses only its
// item: the recovered value reaches OnPanic with a stack, and the same
// worker pool keeps serving subsequent submissions.
func TestWorkerSurvivesPanic(t *testing.T) {
	var mu sync.Mutex
	var panics []any
	var stacks [][]byte
	ran := make(chan string, 8)

	s := New(Config{
		Workers: 1,
		OnPanic: func(payload, recovered any, stack []byte) {
			mu.Lock()
			panics = append(panics, recovered)
			stacks = append(stacks, stack)
			mu.Unlock()
			ran <- "panicked:" + payload.(string)
		},
	})
	s.Start(func(payload any) {
		p := payload.(string)
		if strings.HasPrefix(p, "boom") {
			panic("callback bug: " + p)
		}
		ran <- p
	})
	defer s.Close()

	for _, p := range []string{"boom-1", "ok-1", "boom-2", "ok-2"} {
		if _, ok := s.Submit("k", "c", Interactive, p); !ok {
			t.Fatalf("Submit(%q) rejected", p)
		}
	}

	got := map[string]bool{}
	for i := 0; i < 4; i++ {
		select {
		case p := <-ran:
			got[p] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("worker stopped serving after a panic; saw %v", got)
		}
	}
	for _, want := range []string{"ok-1", "ok-2", "panicked:boom-1", "panicked:boom-2"} {
		if !got[want] {
			t.Errorf("missing %q in %v", want, got)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(panics) != 2 {
		t.Fatalf("OnPanic called %d times, want 2", len(panics))
	}
	for i, st := range stacks {
		if len(st) == 0 {
			t.Errorf("panic %d: empty stack", i)
		}
	}
}

// TestWorkerSurvivesPanicWithoutHook pins the no-hook behavior: the panic is
// discarded but the worker still survives.
func TestWorkerSurvivesPanicWithoutHook(t *testing.T) {
	ran := make(chan string, 2)
	s := New(Config{Workers: 1})
	s.Start(func(payload any) {
		if payload.(string) == "boom" {
			panic("dropped")
		}
		ran <- payload.(string)
	})
	defer s.Close()

	if _, ok := s.Submit("k", "c", Interactive, "boom"); !ok {
		t.Fatal("Submit rejected")
	}
	if _, ok := s.Submit("k", "c", Interactive, "after"); !ok {
		t.Fatal("Submit rejected")
	}
	select {
	case p := <-ran:
		if p != "after" {
			t.Fatalf("ran %q, want %q", p, "after")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not survive the unhooked panic")
	}
}

// TestAgingTickerSurvivesPanickingOnAge verifies a panicking OnAge callback
// reaches OnPanic and the ticker keeps scanning afterwards.
func TestAgingTickerSurvivesPanickingOnAge(t *testing.T) {
	panicked := make(chan struct{}, 8)
	block := make(chan struct{})
	s := New(Config{
		Workers:     1,
		AgeAfter:    5 * time.Millisecond,
		AgeInterval: 5 * time.Millisecond,
		OnAge:       func(payload any, from, to Class) { panic("aging callback bug") },
		OnPanic:     func(payload, recovered any, stack []byte) { panicked <- struct{}{} },
	})
	s.Start(func(payload any) {
		if payload == "blocker" {
			<-block
		}
	})
	defer s.Close()
	defer close(block)

	// Park the lone worker on a blocking item so queued work can age instead
	// of being dequeued immediately.
	if _, ok := s.Submit("kb", "c", Interactive, "blocker"); !ok {
		t.Fatal("Submit(blocker) rejected")
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Busy == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocker")
		}
		time.Sleep(time.Millisecond)
	}

	if _, ok := s.Submit("k1", "c", Background, "ages"); !ok {
		t.Fatal("Submit rejected")
	}
	// The item ages twice (Background into Batch, then Batch into
	// Interactive); each hop's OnAge panics and each panic must reach
	// OnPanic — the second event proves the ticker survived the first.
	for i := 0; i < 2; i++ {
		select {
		case <-panicked:
		case <-time.After(10 * time.Second):
			t.Fatalf("aging ticker died after OnAge panic (saw %d of 2 events)", i)
		}
	}
}
