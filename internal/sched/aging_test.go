package sched

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is an injectable Config.Now for aging tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestAgingPromotesOverdueItems pins the core aging behavior: a background
// item queued past AgeAfter moves into batch (and batch into interactive),
// young items stay put, and the per-transition counters record the hops.
func TestAgingPromotesOverdueItems(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Workers: 1, AgeAfter: time.Minute, Now: clk.now})

	if _, ok := s.Submit("g", "tenant", Background, "old-bg"); !ok {
		t.Fatal("submit old-bg rejected")
	}
	if _, ok := s.Submit("b", "tenant", Batch, "old-batch"); !ok {
		t.Fatal("submit old-batch rejected")
	}
	clk.advance(time.Minute)
	if _, ok := s.Submit("g2", "tenant", Background, "young-bg"); !ok {
		t.Fatal("submit young-bg rejected")
	}

	if n := s.AgeOnce(); n != 2 {
		t.Fatalf("AgeOnce aged %d items, want 2", n)
	}
	st := s.Stats()
	if st.Aged[Background][Batch] != 1 || st.Aged[Batch][Interactive] != 1 {
		t.Fatalf("Aged = %v, want one background->batch and one batch->interactive", st.Aged)
	}
	if st.Queued != [NumClasses]int{1, 1, 1} {
		t.Fatalf("Queued = %v, want [1 1 1]", st.Queued)
	}
	// The aged batch item is now the only interactive one and dequeues first.
	got := drainPayloads(s, 0)
	want := []any{"old-batch", "old-bg", "young-bg"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order = %v, want %v", got, want)
	}
}

// TestAgingNeedsFullPeriodPerHop pins that the wait clock restarts on every
// hop: background reaches interactive only after two full AgeAfter periods.
func TestAgingNeedsFullPeriodPerHop(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Workers: 1, AgeAfter: time.Minute, Now: clk.now})
	if _, ok := s.Submit("g", "tenant", Background, "bg"); !ok {
		t.Fatal("submit rejected")
	}
	clk.advance(time.Minute)
	s.AgeOnce()
	if q := s.Stats().Queued; q != [NumClasses]int{0, 1, 0} {
		t.Fatalf("after one period Queued = %v, want item in batch", q)
	}
	s.AgeOnce() // same instant: the clock restarted, nothing more ages
	if q := s.Stats().Queued; q != [NumClasses]int{0, 1, 0} {
		t.Fatalf("item double-hopped within one period: Queued = %v", q)
	}
	clk.advance(time.Minute)
	s.AgeOnce()
	if q := s.Stats().Queued; q != [NumClasses]int{1, 0, 0} {
		t.Fatalf("after two periods Queued = %v, want item in interactive", q)
	}
}

// TestAgingPreservesFIFOAndFairShare submits interleaved items of two
// clients into background, ages them all, and verifies the batch-class
// dequeue order still alternates clients with each client's items in
// submission order.
func TestAgingPreservesFIFOAndFairShare(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Workers: 1, AgeAfter: time.Minute, Now: clk.now})
	for i := 1; i <= 3; i++ {
		if _, ok := s.Submit(fmt.Sprintf("a%d", i), "alice", Background, fmt.Sprintf("a%d", i)); !ok {
			t.Fatalf("submit a%d rejected", i)
		}
		if _, ok := s.Submit(fmt.Sprintf("b%d", i), "bob", Background, fmt.Sprintf("b%d", i)); !ok {
			t.Fatalf("submit b%d rejected", i)
		}
	}
	clk.advance(2 * time.Minute)
	if n := s.AgeOnce(); n != 6 {
		t.Fatalf("AgeOnce aged %d items, want 6", n)
	}
	if q := s.Stats().Queued; q != [NumClasses]int{0, 6, 0} {
		t.Fatalf("Queued = %v, want all 6 in batch", q)
	}
	got := drainPayloads(s, 0)
	want := []any{"a1", "b1", "a2", "b2", "a3", "b3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order = %v, want %v", got, want)
	}
}

// TestAgingRespectsDepthBound fills the batch class to its bound and
// verifies overdue background items wait (no overflow, no lost items) until
// capacity frees, then age on the next scan.
func TestAgingRespectsDepthBound(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{
		Workers:  1,
		AgeAfter: time.Minute,
		Depth:    [NumClasses]int{4, 2, 4},
		Now:      clk.now,
	})
	for i := 0; i < 2; i++ {
		if _, ok := s.Submit(fmt.Sprintf("b%d", i), "tenant", Batch, fmt.Sprintf("b%d", i)); !ok {
			t.Fatalf("submit b%d rejected", i)
		}
	}
	if _, ok := s.Submit("g", "tenant", Background, "bg"); !ok {
		t.Fatal("submit bg rejected")
	}
	clk.advance(time.Minute)
	// Batch is full (its own two items aged into interactive would free it —
	// but interactive has room, so they hop out and the background item can
	// follow into batch, all within the same scan's capacity accounting).
	if n := s.AgeOnce(); n != 3 {
		t.Fatalf("AgeOnce aged %d items, want 3", n)
	}
	if q := s.Stats().Queued; q != [NumClasses]int{2, 1, 0} {
		t.Fatalf("Queued = %v, want [2 1 0]", q)
	}

	// Now actually wedge the target: fill interactive AND batch, and verify
	// an overdue background item stays put without overflowing the bound.
	s2 := New(Config{
		Workers:  1,
		AgeAfter: time.Minute,
		Depth:    [NumClasses]int{1, 1, 4},
		Now:      clk.now,
	})
	if _, ok := s2.Submit("i", "tenant", Interactive, "i"); !ok {
		t.Fatal("submit i rejected")
	}
	if _, ok := s2.Submit("b", "tenant", Batch, "b"); !ok {
		t.Fatal("submit b rejected")
	}
	if _, ok := s2.Submit("g", "tenant", Background, "g"); !ok {
		t.Fatal("submit g rejected")
	}
	clk.advance(time.Minute)
	if n := s2.AgeOnce(); n != 0 {
		t.Fatalf("AgeOnce aged %d items into full classes, want 0", n)
	}
	if q := s2.Stats().Queued; q != [NumClasses]int{1, 1, 1} {
		t.Fatalf("Queued = %v, want untouched [1 1 1]", q)
	}
	// Drain the interactive item: batch can now age up, freeing batch for
	// the background item on the following scan.
	it := s2.tryNext(0)
	if it == nil || it.payload != "i" {
		t.Fatalf("dequeued %v, want i", it)
	}
	s2.done(it)
	clk.advance(time.Minute)
	if n := s2.AgeOnce(); n != 2 {
		t.Fatalf("AgeOnce aged %d items after capacity freed, want 2", n)
	}
	if q := s2.Stats().Queued; q != [NumClasses]int{1, 1, 0} {
		t.Fatalf("Queued = %v, want [1 1 0]", q)
	}
}

// TestAgingKeepsHandlesValid pins that aging moves the item in place: a
// Handle taken at submit time still cancels the item after it aged, and the
// cancellation frees the slot in the class the item aged into.
func TestAgingKeepsHandlesValid(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Workers: 1, AgeAfter: time.Minute, Now: clk.now})
	h, ok := s.Submit("g", "tenant", Background, "bg")
	if !ok {
		t.Fatal("submit rejected")
	}
	clk.advance(time.Minute)
	s.AgeOnce()
	if !s.StillQueued(h) {
		t.Fatal("handle went stale across aging")
	}
	if !s.Cancel(h) {
		t.Fatal("Cancel failed on aged item")
	}
	if q := s.Stats().Queued; q != [NumClasses]int{0, 0, 0} {
		t.Fatalf("Queued = %v after cancel, want all empty", q)
	}
	if free := s.Free(Batch); free != 16 {
		t.Fatalf("batch Free = %d after cancelling aged item, want full depth 16", free)
	}
}

// TestAgingOnAgeCallback verifies the callback fires once per hop with the
// payload and both classes, outside the scheduler mutex (it calls back in).
func TestAgingOnAgeCallback(t *testing.T) {
	clk := newFakeClock()
	type hop struct {
		payload  any
		from, to Class
	}
	var hops []hop
	var s *Scheduler
	s = New(Config{
		Workers:  1,
		AgeAfter: time.Minute,
		Now:      clk.now,
		OnAge: func(payload any, from, to Class) {
			s.Stats() // must not deadlock: callback runs outside the mutex
			hops = append(hops, hop{payload, from, to})
		},
	})
	if _, ok := s.Submit("g", "tenant", Background, "bg"); !ok {
		t.Fatal("submit rejected")
	}
	clk.advance(time.Minute)
	s.AgeOnce()
	if len(hops) != 1 || hops[0] != (hop{"bg", Background, Batch}) {
		t.Fatalf("hops = %v, want one bg background->batch", hops)
	}
}

// TestAgingDisabledByDefault pins that a zero AgeAfter never ages anything.
func TestAgingDisabledByDefault(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Workers: 1, Now: clk.now})
	if _, ok := s.Submit("g", "tenant", Background, "bg"); !ok {
		t.Fatal("submit rejected")
	}
	clk.advance(24 * time.Hour)
	if n := s.AgeOnce(); n != 0 {
		t.Fatalf("AgeOnce aged %d items with aging disabled, want 0", n)
	}
	if q := s.Stats().Queued; q != [NumClasses]int{0, 0, 1} {
		t.Fatalf("Queued = %v, want item still in background", q)
	}
}
