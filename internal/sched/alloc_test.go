//go:build !race

// The race runtime instruments allocation accounting, so the AllocsPerRun
// assertions here only run in the plain test suite (the tier-1 gate).
package sched

import "testing"

// TestSubmitDequeueZeroAllocs pins the hot-path contract that replaced the
// old pool's per-submission fnv.New32a heap allocation: once the item free
// list, client queues and rings are warm, a full submit / cancel / dequeue /
// finish cycle allocates nothing.
func TestSubmitDequeueZeroAllocs(t *testing.T) {
	s := New(Config{Workers: 2, Depth: [NumClasses]int{64, 64, 64}})
	payload := &struct{ n int }{}
	keys := [4]string{"key-a", "key-b", "key-c", "key-d"}
	clients := [2]string{"alice", "bob"}

	cycle := func() {
		for i, k := range keys {
			if _, ok := s.Submit(k, clients[i%2], Class(i%NumClasses), payload); !ok {
				t.Fatal("warm submit rejected")
			}
		}
		h, ok := s.Submit(keys[0], clients[0], Background, payload)
		if !ok {
			t.Fatal("warm cancel-target submit rejected")
		}
		if !s.Cancel(h) {
			t.Fatal("warm cancel failed")
		}
		for drained := 0; drained < len(keys); drained++ {
			it := s.tryNext(drained % 2)
			if it == nil {
				t.Fatal("warm dequeue found nothing")
			}
			s.done(it)
		}
	}
	for i := 0; i < 64; i++ {
		cycle() // grow rings, client maps and the free list to steady state
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Errorf("warm submit/cancel/dequeue cycle allocates %.2f objects, want 0", avg)
	}
}
