// Package sched is the priority-aware work-stealing scheduler behind the
// sweep service.  It replaces a fixed key-hash sharded channel pool with a
// design built for large heterogeneous experiment campaigns:
//
//   - Three priority classes (Interactive > Batch > Background), each a set
//     of FIFO queues, dequeued by weighted round-robin so low classes cannot
//     starve but an interactive submission starts ahead of queued batch work.
//   - Weighted fair share across submitting clients inside a class: each
//     client has its own FIFO and active clients are served round-robin, so
//     one tenant flooding a class cannot monopolize it.
//   - Work stealing: a submission is homed to a worker by key hash (repeated
//     submissions of one sweep land on one worker), but each dequeue picks
//     its class by weighted round-robin over every queue the worker can
//     reach — its own and all siblings' — then serves its own queue of that
//     class, stealing from the most loaded sibling only when it has none.
//     Urgent work anywhere beats less urgent local work, exhausted credits
//     still let lower classes through (no starvation), and no worker idles
//     while any queue holds work.
//   - First-class cancellation: Cancel removes a queued item immediately and
//     frees its bounded-capacity slot at cancel time, so a queue full of dead
//     work can never reject live submissions.
//
// The hot submit/dequeue path performs no heap allocations in steady state:
// items come from a free list, client queues are reusable ring buffers, and
// key hashing is an inline FNV-1a (no hash.Hash construction).  All state is
// guarded by one mutex; items are heavyweight (whole parameter sweeps), so
// scheduling cost is noise next to execution cost — the mutex buys simple
// invariants: exact per-class/per-client/per-worker live counts, and a
// condition variable that guarantees a waiting worker is woken whenever work
// exists.
package sched

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Class is a scheduling priority class.  Lower values are more urgent.
type Class int

// The three priority classes, most to least urgent.
const (
	Interactive Class = iota
	Batch
	Background
)

// NumClasses is the number of priority classes.
const NumClasses = 3

// String returns the wire label of the class.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Background:
		return "background"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass maps a wire label to a Class.  The empty string is not accepted
// here; callers pick their own default.
func ParseClass(s string) (Class, error) {
	switch s {
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "background":
		return Background, nil
	}
	return 0, fmt.Errorf("sched: unknown priority class %q (want interactive, batch or background)", s)
}

// DefaultWeights are the weighted-round-robin dequeue weights per class when
// Config.Weights is unset: with all classes backlogged, one full cycle serves
// 16 interactive, 4 batch and 1 background item.
var DefaultWeights = [NumClasses]int{16, 4, 1}

// Config tunes a Scheduler.  The zero value is usable.
type Config struct {
	// Workers is the number of worker goroutines Start spawns (default 2).
	Workers int
	// Depth bounds the queued (not yet running) items per class (default 16
	// each).  Submit reports false when the item's class is full.
	Depth [NumClasses]int
	// Weights are the weighted-round-robin dequeue shares per class
	// (default DefaultWeights; minimum 1 each).
	Weights [NumClasses]int
	// AgeAfter, where positive, turns on queue-wait aging: an item queued
	// longer than AgeAfter ages one class up (Background into Batch, Batch
	// into Interactive) in place — same client FIFO slot in the target
	// class, same Handle — so sustained urgent floods cannot starve queued
	// low-priority work forever.  Aging respects the target class's Depth
	// bound (a full class defers aging to a later scan) and restarts the
	// item's wait clock, so a second hop needs another full AgeAfter.
	AgeAfter time.Duration
	// AgeInterval is how often the aging scan runs in Start's ticker
	// (default AgeAfter/4, clamped to [10ms, 1s]).  Tests drive scans
	// directly through AgeOnce instead.
	AgeInterval time.Duration
	// OnAge, when set, is invoked once per aged item — outside the
	// scheduler mutex, so callbacks may call back into the scheduler or
	// take their own locks.
	OnAge func(payload any, from, to Class)
	// OnPanic, when set, receives every panic recovered from a run
	// callback, an OnDequeue hook or an aging-scan callback.  Worker goroutines always recover: a
	// panicking callback loses its item, never the worker (and with it the
	// process).  With OnPanic unset the recovered value is discarded, so
	// owners that need the signal (the server logs it and fails the job)
	// must install the hook.  Called outside the scheduler mutex.
	OnPanic func(payload any, recovered any, stack []byte)
	// OnDequeue, when set, is invoked by the worker that popped an item,
	// after the scheduler mutex is released and before run executes it,
	// with the class the item was dequeued from and the time it spent
	// queued in that class (the clock restarts on Promote and aging, like
	// the WaitSum accounting).  This surfaces the queue-phase timestamps to
	// the owner for tracing and latency histograms; callbacks may take
	// their own locks.
	OnDequeue func(payload any, class Class, wait time.Duration)
	// Now is the clock used for scheduling-latency accounting (default
	// time.Now; injectable for tests).
	Now func() time.Time
}

// Handle identifies one queued submission for Cancel/Promote.  The zero
// value is inert: Cancel and Promote on it report false.  A handle stays
// valid for the lifetime of its item; once the item finishes (or is
// cancelled) the handle goes stale and all operations on it report false,
// even after the scheduler recycles the item's memory.
type Handle struct {
	it  *item
	gen uint32
}

// Item lifecycle states.
const (
	itemQueued uint8 = iota
	itemCancelled
	itemTaken
)

// item is one queued submission.  Items are pooled: gen increments on every
// release so stale Handles cannot touch a recycled item.
type item struct {
	payload any
	client  string
	class   Class
	home    int
	at      time.Time
	wait    time.Duration // queue wait measured at dequeue, for OnDequeue
	state   uint8
	gen     uint32
	next    *item // free list link
}

// clientQueue is one client's FIFO within a class: a reusable ring buffer.
type clientQueue struct {
	name   string
	buf    []*item
	head   int
	n      int
	live   int // queued items not yet cancelled
	inRing bool
}

func (q *clientQueue) push(it *item) {
	if q.n == len(q.buf) {
		grown := make([]*item, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = it
	q.n++
}

func (q *clientQueue) front() *item { return q.buf[q.head] }
func (q *clientQueue) back() *item  { return q.buf[(q.head+q.n-1)%len(q.buf)] }

func (q *clientQueue) popFront() *item {
	it := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return it
}

func (q *clientQueue) popBack() *item {
	i := (q.head + q.n - 1) % len(q.buf)
	it := q.buf[i]
	q.buf[i] = nil
	q.n--
	return it
}

// classQueue is one priority class on one worker: per-client FIFOs served
// round-robin via the active-client ring.
type classQueue struct {
	clients map[string]*clientQueue
	ring    []*clientQueue // clients with buffered items, in arrival order
	next    int            // round-robin cursor into ring
	live    int            // queued items not yet cancelled, all clients
}

// worker is the per-worker scheduling state (queues + dequeue credits).
// Workers are identified by index; the goroutines themselves live in Start.
type worker struct {
	classes [NumClasses]classQueue
	credits [NumClasses]int
	live    int // queued items not yet cancelled, all classes
}

// Scheduler dispatches submitted items to worker goroutines.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	workers []*worker
	queued  [NumClasses]int // live queued items per class, all workers
	busy    int             // workers currently running an item
	closed  bool
	quit    chan struct{}  // closed by Close; stops the aging ticker
	free    *item          // free list of recycled items
	cqFree  []*clientQueue // free list of recycled client FIFOs
	wg      sync.WaitGroup

	steals    int64
	waitSum   [NumClasses]time.Duration
	waitCount [NumClasses]int64
	aged      [NumClasses][NumClasses]int64 // [from][to] queue-wait promotions
}

// New builds a scheduler.  Call Start to spawn the workers (tests drive the
// queues directly instead) and Close to stop them.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	for c := 0; c < NumClasses; c++ {
		if cfg.Depth[c] <= 0 {
			cfg.Depth[c] = 16
		}
		if cfg.Weights[c] <= 0 {
			cfg.Weights[c] = DefaultWeights[c]
		}
	}
	if cfg.AgeAfter > 0 && cfg.AgeInterval <= 0 {
		cfg.AgeInterval = min(max(cfg.AgeAfter/4, 10*time.Millisecond), time.Second)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Scheduler{cfg: cfg, quit: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		w := &worker{credits: cfg.Weights}
		for c := range w.classes {
			w.classes[c].clients = make(map[string]*clientQueue)
		}
		s.workers[i] = w
	}
	return s
}

// Home returns the worker index a key is homed to.  Exported so tests can
// construct deterministic placements.
func Home(key string, workers int) int {
	return int(fnv32a(key) % uint32(workers))
}

// fnv32a is an inline FNV-1a over the key: hashing on the submit path must
// not construct a hash.Hash (one heap allocation per submission).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Submit enqueues payload under the given sweep key, client label and class.
// It reports false when the class's queue is full or the scheduler is
// closed.  The returned Handle cancels or promotes the item while it is
// still queued.
//
//refrint:alloc-free
func (s *Scheduler) Submit(key, client string, class Class, payload any) (Handle, bool) {
	if class < 0 || class >= NumClasses {
		return Handle{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.queued[class] >= s.cfg.Depth[class] {
		return Handle{}, false
	}
	it := s.newItemLocked()
	it.payload = payload
	it.client = client
	it.class = class
	it.home = Home(key, len(s.workers))
	it.at = s.cfg.Now()
	it.state = itemQueued
	s.enqueueLocked(it)
	s.cond.Signal()
	return Handle{it: it, gen: it.gen}, true
}

// StillQueued reports whether the handle's item is still waiting in a queue
// — i.e. whether Cancel or Promote on it could still take effect.
func (s *Scheduler) StillQueued(h Handle) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.it != nil && h.it.gen == h.gen && h.it.state == itemQueued
}

// Cancel removes a queued item, freeing its class capacity immediately — the
// structural fix for cancelled work camping on bounded queue slots.  It
// reports false when the handle is stale or the item already started.
func (s *Scheduler) Cancel(h Handle) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.it == nil || h.it.gen != h.gen || h.it.state != itemQueued {
		return false
	}
	s.cancelLocked(h.it)
	return true
}

// Promote moves a still-queued item to another class (in either direction),
// keeping its fair-share position (same client FIFO).  The target class's
// depth bound is enforced like Submit's: a full class declines the
// promotion (reporting false with the item untouched), so repeated
// submit-then-promote cycles cannot grow a class beyond its bound.  The
// item's wait so far is charged to the class it is leaving and its clock
// restarts, so per-class latency metrics reflect time actually spent in
// each class.  It returns the handle now identifying the item and reports
// false when the item is no longer queued or the target class is full.
func (s *Scheduler) Promote(h Handle, to Class) (Handle, bool) {
	if to < 0 || to >= NumClasses {
		return h, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	it := h.it
	if it == nil || it.gen != h.gen || it.state != itemQueued {
		return h, false
	}
	if it.class == to {
		return h, true
	}
	if s.queued[to] >= s.cfg.Depth[to] {
		return h, false
	}
	// Capture before cancelLocked: edge-trimming may recycle it.
	payload, client, home, at, from := it.payload, it.client, it.home, it.at, it.class
	s.cancelLocked(it)
	now := s.cfg.Now()
	s.waitSum[from] += now.Sub(at)
	nit := s.newItemLocked()
	nit.payload = payload
	nit.client = client
	nit.class = to
	nit.home = home
	nit.at = now
	nit.state = itemQueued
	s.enqueueLocked(nit)
	return Handle{it: nit, gen: nit.gen}, true
}

// Start spawns the worker goroutines; run is invoked once per dequeued
// payload, behind a recover guard (see Config.OnPanic) so a panicking
// callback can never kill a worker.  Items submitted before Start simply
// wait.  With AgeAfter set it also spawns the aging ticker, which stops when
// Close is called.
func (s *Scheduler) Start(run func(payload any)) {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func(idx int) {
			defer s.wg.Done()
			for {
				it := s.next(idx)
				if it == nil {
					return
				}
				s.dispatchGuarded(run, it)
				s.done(it)
			}
		}(i)
	}
	if s.cfg.AgeAfter > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// The aging scan calls the external OnAge hook; guard it like
			// run so a buggy callback cannot kill the ticker goroutine.
			age := func(any) { s.AgeOnce() }
			t := time.NewTicker(s.cfg.AgeInterval)
			defer t.Stop()
			for {
				select {
				case <-s.quit:
					return
				case <-t.C:
					s.runGuarded(age, nil)
				}
			}
		}()
	}
}

// dispatchGuarded runs one dequeued item — the OnDequeue hook and then run —
// inside a single panic guard: a panic in either loses only this item (run
// does not execute after a panicking OnDequeue; the caller still reaches
// done(it) to release the slot), never the worker.
func (s *Scheduler) dispatchGuarded(run func(payload any), it *item) {
	defer func() {
		if r := recover(); r != nil && s.cfg.OnPanic != nil {
			s.cfg.OnPanic(it.payload, r, debug.Stack())
		}
	}()
	if s.cfg.OnDequeue != nil {
		s.cfg.OnDequeue(it.payload, it.class, it.wait)
	}
	run(it.payload)
}

// runGuarded invokes run(payload) with panic containment: a recovered panic
// is handed to Config.OnPanic (when set) with the panicking goroutine's
// stack, and the caller's goroutine survives.  Deliberately not a closure
// over any loop body — callers on hot paths stay allocation-free.
func (s *Scheduler) runGuarded(run func(payload any), payload any) {
	defer func() {
		if r := recover(); r != nil && s.cfg.OnPanic != nil {
			s.cfg.OnPanic(payload, r, debug.Stack())
		}
	}()
	run(payload)
}

// Close rejects further submissions, lets the workers drain every queued
// item (each still passes through run, which observes its cancelled context)
// and waits for them to exit.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.quit)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Stats is a snapshot of the scheduler's counters.
type Stats struct {
	// Workers and Busy count worker goroutines (total / currently running
	// an item).
	Workers, Busy int
	// Queued counts live queued items per class.
	Queued [NumClasses]int
	// Steals counts dequeues where an idle worker took an item homed to a
	// sibling.
	Steals int64
	// WaitSum and WaitCount accumulate queue-wait latency per class.
	// WaitCount counts dequeues; WaitSum also includes the time promoted
	// items spent in a class before Promote moved them out of it.
	WaitSum   [NumClasses]time.Duration
	WaitCount [NumClasses]int64
	// Aged counts queue-wait aging promotions, indexed [from][to].
	Aged [NumClasses][NumClasses]int64
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:   len(s.workers),
		Busy:      s.busy,
		Queued:    s.queued,
		Steals:    s.steals,
		WaitSum:   s.waitSum,
		WaitCount: s.waitCount,
		Aged:      s.aged,
	}
}

// Queued returns the total number of live queued items.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.queued {
		n += q
	}
	return n
}

// Free returns the remaining queue capacity of a class.  It is a snapshot:
// callers that need check-then-submit atomicity (the batch endpoint) must
// serialize their submissions externally.  Dequeues only ever increase it,
// but queue-wait aging (Config.AgeAfter) moves queued items between classes
// asynchronously and can consume a class's capacity between a Free check and
// the Submit it gated — so even a serialized caller must tolerate a
// full-queue Submit after a passing check (the batch endpoint aborts the
// whole batch and answers 503).
func (s *Scheduler) Free(class Class) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Depth[class] - s.queued[class]
}

// --- internals (caller holds s.mu unless noted) ---

func (s *Scheduler) newItemLocked() *item {
	if it := s.free; it != nil {
		s.free = it.next
		it.next = nil
		return it
	}
	return &item{}
}

// releaseLocked recycles an item.  The gen bump invalidates every
// outstanding Handle to it.
func (s *Scheduler) releaseLocked(it *item) {
	it.payload = nil
	it.client = ""
	it.gen++
	it.next = s.free
	s.free = it
}

func (s *Scheduler) enqueueLocked(it *item) {
	w := s.workers[it.home]
	cq := &w.classes[it.class]
	c := cq.clients[it.client]
	if c == nil {
		if n := len(s.cqFree); n > 0 {
			c = s.cqFree[n-1]
			s.cqFree = s.cqFree[:n-1]
		} else {
			c = &clientQueue{}
		}
		c.name = it.client
		cq.clients[it.client] = c
	}
	c.push(it)
	c.live++
	if !c.inRing {
		cq.ring = append(cq.ring, c)
		c.inRing = true
	}
	cq.live++
	w.live++
	s.queued[it.class]++
}

// cancelLocked tombstones a queued item, drops it from every live count and
// trims tombstones off both ends of its client FIFO so a fully-cancelled
// queue releases its items without waiting for a dequeue visit.
func (s *Scheduler) cancelLocked(it *item) {
	it.state = itemCancelled
	w := s.workers[it.home]
	cq := &w.classes[it.class]
	c := cq.clients[it.client]
	c.live--
	cq.live--
	w.live--
	s.queued[it.class]--
	for c.n > 0 && c.front().state == itemCancelled {
		s.releaseLocked(c.popFront())
	}
	for c.n > 0 && c.back().state == itemCancelled {
		s.releaseLocked(c.popBack())
	}
	if c.n == 0 {
		s.unringLocked(cq, c)
		s.retireClientLocked(cq, c)
	}
}

// unringLocked removes a client FIFO from its class's active ring, keeping
// the round-robin cursor stable.
func (s *Scheduler) unringLocked(cq *classQueue, c *clientQueue) {
	for i, rc := range cq.ring {
		if rc == c {
			cq.ring = append(cq.ring[:i], cq.ring[i+1:]...)
			if cq.next > i {
				cq.next--
			}
			break
		}
	}
}

// retireClientLocked removes a drained client FIFO from its class map and
// recycles the struct (keeping its ring buffer): client labels are arbitrary
// wire input, so drained queues must not accumulate for the process
// lifetime.  The caller has already taken c out of the active ring.
func (s *Scheduler) retireClientLocked(cq *classQueue, c *clientQueue) {
	delete(cq.clients, c.name)
	c.name = ""
	c.head = 0
	c.inRing = false
	s.cqFree = append(s.cqFree, c)
}

// pickClass chooses the class the worker serves next among the available
// ones (avail[c] meaning class c has live work somewhere this worker can
// reach): the most urgent available class that still has round-robin
// credit, refilling all credits when every available class has spent its
// share.  Weighted fair: with everything backlogged a full cycle serves
// Weights[c] items of class c, most urgent first — and because stolen work
// spends credits exactly like home work, a sustained interactive flood
// cannot starve lower classes no matter how it is spread across workers.
func (s *Scheduler) pickClass(w *worker, avail [NumClasses]bool) Class {
	for pass := 0; pass < 2; pass++ {
		for c := Class(0); c < NumClasses; c++ {
			if avail[c] && w.credits[c] > 0 {
				w.credits[c]--
				return c
			}
		}
		w.credits = s.cfg.Weights
	}
	return -1
}

// popClassLocked dequeues the next live item of one class: clients are served
// round-robin, tombstoned (cancelled) items are skipped and recycled, and a
// client whose FIFO empties leaves the ring until its next submission.
func (s *Scheduler) popClassLocked(cq *classQueue) *item {
	for cq.live > 0 {
		if cq.next >= len(cq.ring) {
			cq.next = 0
		}
		c := cq.ring[cq.next]
		for c.n > 0 && c.front().state == itemCancelled {
			s.releaseLocked(c.popFront())
		}
		if c.n == 0 {
			cq.ring = append(cq.ring[:cq.next], cq.ring[cq.next+1:]...)
			s.retireClientLocked(cq, c)
			continue
		}
		it := c.popFront()
		c.live--
		cq.live--
		if c.n == 0 {
			cq.ring = append(cq.ring[:cq.next], cq.ring[cq.next+1:]...)
			s.retireClientLocked(cq, c)
		} else {
			cq.next++
		}
		return it
	}
	return nil
}

// takeLocked is one dequeue attempt for worker idx.  The class is chosen by
// the worker's weighted round-robin credits over everything it can reach —
// its own queues and every sibling's (so urgent work anywhere beats less
// urgent local work, but exhausted credits still let lower classes through:
// no starvation).  Within the chosen class its own queue wins; otherwise it
// steals from the most loaded sibling holding that class.  An idle worker
// thus never waits while any queue is non-empty.  Accounting (busy, steal
// count, scheduling latency) happens here.
func (s *Scheduler) takeLocked(idx int) *item {
	w := s.workers[idx]
	var avail [NumClasses]bool
	var victim [NumClasses]int // most loaded sibling holding each class
	var vload [NumClasses]int
	for c := range victim {
		victim[c] = -1
		avail[c] = w.classes[c].live > 0
	}
	any := w.live > 0
	for i, ww := range s.workers {
		if i == idx || ww.live == 0 {
			continue
		}
		for c := Class(0); c < NumClasses; c++ {
			if ww.classes[c].live > 0 && ww.live > vload[c] {
				victim[c], vload[c] = i, ww.live
				avail[c] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	c := s.pickClass(w, avail)
	var it *item
	if w.classes[c].live > 0 {
		it = s.popClassLocked(&w.classes[c])
		w.live--
	} else {
		v := s.workers[victim[c]]
		it = s.popClassLocked(&v.classes[c])
		v.live--
		s.steals++
	}
	s.queued[c]--
	it.state = itemTaken
	s.busy++
	it.wait = s.cfg.Now().Sub(it.at)
	s.waitSum[it.class] += it.wait
	s.waitCount[it.class]++
	return it
}

// next blocks until worker idx has an item to run, or returns nil when the
// scheduler is closed and fully drained.
func (s *Scheduler) next(idx int) *item {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if it := s.takeLocked(idx); it != nil {
			return it
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// tryNext is the non-blocking form of next, used by tests and benchmarks to
// drive the queues without worker goroutines.
//
//refrint:alloc-free
func (s *Scheduler) tryNext(idx int) *item {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.takeLocked(idx)
}

// done returns a finished item to the pool.
//
//refrint:alloc-free
func (s *Scheduler) done(it *item) {
	s.mu.Lock()
	s.busy--
	s.releaseLocked(it)
	s.mu.Unlock()
}

// --- queue-wait aging ---

// agedItem records one aging promotion for the post-scan OnAge callbacks.
type agedItem struct {
	payload  any
	from, to Class
}

// AgeOnce runs one aging scan: every item queued longer than AgeAfter moves
// one class up (Background into Batch, Batch into Interactive), in place —
// same item, so outstanding Handles stay valid; same client FIFO in the
// target class, so the client keeps its fair-share slot; same worker homing.
// It returns how many items aged, and is a no-op unless Config.AgeAfter is
// positive.  Start runs this on a ticker; tests call it directly.
func (s *Scheduler) AgeOnce() int {
	if s.cfg.AgeAfter <= 0 {
		return 0
	}
	s.mu.Lock()
	aged := s.ageScanLocked(s.cfg.Now())
	s.mu.Unlock()
	if s.cfg.OnAge != nil {
		for _, a := range aged {
			s.cfg.OnAge(a.payload, a.from, a.to)
		}
	}
	return len(aged)
}

// ageScanLocked finds and promotes every overdue queued item.  Batch ages
// before Background, so an item cannot double-hop within one scan even
// though its clock restarts on every hop.  Within one client FIFO items sit
// in non-decreasing submit-time order (pushes append, and aged arrivals get
// a fresh clock), so each scan stops at the first young front — aging
// preserves the client's FIFO order in the target class.
func (s *Scheduler) ageScanLocked(now time.Time) []agedItem {
	var out []agedItem
	for _, hop := range [...][2]Class{{Batch, Interactive}, {Background, Batch}} {
		from, to := hop[0], hop[1]
		if s.queued[from] == 0 {
			continue
		}
		for _, w := range s.workers {
			cq := &w.classes[from]
			for ci := 0; ci < len(cq.ring); {
				q := cq.ring[ci]
				s.ageClientLocked(w, cq, q, from, to, now, &out)
				// ageClientLocked retires a drained q from the ring; only
				// advance while the slot still holds it.
				if ci < len(cq.ring) && cq.ring[ci] == q {
					ci++
				}
			}
		}
	}
	return out
}

// ageClientLocked moves q's overdue front items (oldest first) from class
// from to class to, stopping at the first item still young enough or when
// the target class has no capacity left — aging respects Depth bounds
// exactly like Submit and Promote, deferring to a later scan instead of
// overflowing.  It retires q when the move drains it.
func (s *Scheduler) ageClientLocked(w *worker, cq *classQueue, q *clientQueue, from, to Class, now time.Time, out *[]agedItem) {
	for {
		for q.n > 0 && q.front().state == itemCancelled {
			s.releaseLocked(q.popFront())
		}
		if q.n == 0 {
			break
		}
		it := q.front()
		if now.Sub(it.at) < s.cfg.AgeAfter || s.queued[to] >= s.cfg.Depth[to] {
			break
		}
		q.popFront()
		q.live--
		cq.live--
		w.live--
		s.queued[from]--
		// Like Promote: the wait so far is charged to the class being left
		// and the clock restarts, so per-class latency stays truthful and a
		// second hop needs another full AgeAfter.
		s.waitSum[from] += now.Sub(it.at)
		it.at = now
		it.class = to
		s.enqueueLocked(it)
		s.aged[from][to]++
		*out = append(*out, agedItem{payload: it.payload, from: from, to: to})
	}
	if q.n == 0 {
		s.unringLocked(cq, q)
		s.retireClientLocked(cq, q)
	}
}
