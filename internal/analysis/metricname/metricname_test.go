package metricname_test

import (
	"testing"

	"refrint/internal/analysis/linttest"
	"refrint/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	linttest.Run(t, metricname.Analyzer, "a")
}
