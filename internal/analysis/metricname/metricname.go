// Package metricname statically enforces the /metrics exposition contract
// that metrics_lint_test.go checks at runtime (and only for series that
// happen to be populated in that test):
//
//  1. Charset: every metric-name token in a string literal — anything
//     starting with the project prefix "refrint_" — must match
//     ^refrint_[a-z0-9_]*$ (the Prometheus name grammar [a-z_][a-z0-9_]*
//     with the project prefix).
//
//  2. Registration: a metric family emitted by the renderer must have a
//     paired `# HELP <name>` and `# TYPE <name>` declaration in the same
//     package.  Emission is recognized in two forms: a format literal
//     passed to an fmt Fprint-family call that begins a line with the
//     metric name (`"refrint_jobs{state=%q} %d\n"`), and a name literal
//     passed to a registrar — a function or closure whose own body
//     formats both "# HELP %s" and "# TYPE %s" (the renderer's
//     gauge/counter closures and writeHistogramFamily).  Registrar calls
//     count as declaration and emission at once.
//
// Name literals in other contexts (tests asserting on scrape output,
// documentation strings) get only the charset check.
package metricname

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"refrint/internal/analysis/directives"
)

const name = "metricname"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "check refrint_ metric-name charset and HELP/TYPE registration in the exposition renderer",
	Run:  run,
}

const prefix = "refrint_"

var validName = regexp.MustCompile(`^refrint_[a-z0-9_]*$`)

// nameToken extracts the maximal metric-name token at the start of s.
// Hyphens are included on purpose: they are never legal in a metric name,
// so "refrint_sims-per-second" must be captured whole to be rejected
// rather than truncated at the dash into a token that looks valid.
func nameToken(s string) string {
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '_' || c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			i++
			continue
		}
		break
	}
	return s[:i]
}

func run(pass *analysis.Pass) (any, error) {
	dirs := make(map[*ast.File]*directives.Map, len(pass.Files))
	for _, f := range pass.Files {
		dirs[f] = directives.Parse(pass.Fset, f)
	}
	fileOf := func(pos token.Pos) *directives.Map {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return dirs[f]
			}
		}
		return nil
	}
	report := func(pos token.Pos, format string, args ...any) {
		if d := fileOf(pos); d != nil && d.Allowed(name, pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	registrars := findRegistrars(pass)

	// declared[name] is where "# HELP name" / "# TYPE name" appear;
	// emitted[name] is where a series line for name is produced.
	helpDecl := map[string]token.Pos{}
	typeDecl := map[string]token.Pos{}
	emitted := map[string]token.Pos{}

	note := func(m map[string]token.Pos, name string, pos token.Pos) {
		if _, ok := m[name]; !ok {
			m[name] = pos
		}
	}
	checkCharset := func(name string, pos token.Pos) {
		if !validName.MatchString(name) {
			report(pos, "metric name %q does not match %s (lowercase [a-z0-9_] with the refrint_ prefix)", name, validName)
		}
	}

	// scanLiteral classifies every refrint_ occurrence inside one string
	// literal.  emitting says the literal is a renderer format string.
	scanLiteral := func(lit *ast.BasicLit, emitting bool) {
		text, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		for _, decl := range [2]struct {
			marker string
			m      map[string]token.Pos
		}{{"# HELP ", helpDecl}, {"# TYPE ", typeDecl}} {
			rest := text
			for {
				i := strings.Index(rest, decl.marker)
				if i < 0 {
					break
				}
				rest = rest[i+len(decl.marker):]
				name := nameToken(rest)
				if strings.HasPrefix(name, prefix) {
					checkCharset(name, lit.Pos())
					note(decl.m, name, lit.Pos())
				}
			}
		}
		// Series emissions: a refrint_ token at the start of the
		// literal or directly after a newline, not part of a
		// HELP/TYPE comment line.
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "# ") {
				continue
			}
			name := nameToken(line)
			if !strings.HasPrefix(name, prefix) {
				// Still charset-check any embedded token so a name
				// mentioned mid-string (tests, docs) is validated.
				if j := strings.Index(line, prefix); j >= 0 {
					checkCharset(nameToken(line[j:]), lit.Pos())
				}
				continue
			}
			checkCharset(name, lit.Pos())
			if emitting {
				note(emitted, name, lit.Pos())
			}
		}
	}

	// Literals consumed as call arguments must not be re-scanned when the
	// traversal descends into the call's children.
	seen := map[*ast.BasicLit]bool{}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING && !seen[lit] {
					scanLiteral(lit, false)
				}
				return true
			}
			emitting := isFprint(pass, call)
			registering := registrars[calleeObj(pass, call)]
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				seen[lit] = true
				if registering {
					if text, err := strconv.Unquote(lit.Value); err == nil && strings.HasPrefix(text, prefix) {
						name := nameToken(text)
						checkCharset(name, lit.Pos())
						note(helpDecl, name, lit.Pos())
						note(typeDecl, name, lit.Pos())
						note(emitted, name, lit.Pos())
						continue
					}
				}
				scanLiteral(lit, emitting)
			}
			// Literal args are consumed above; still descend for
			// nested calls.
			return true
		})
	}

	// An emitting package must declare what it emits, fully paired.
	names := make([]string, 0, len(emitted))
	for n := range emitted {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		_, h := helpDecl[n]
		_, t := typeDecl[n]
		if !h || !t {
			report(emitted[n], "metric %s is emitted without a paired # HELP and # TYPE declaration in this package", n)
		}
	}
	for n, pos := range helpDecl {
		if _, ok := typeDecl[n]; !ok {
			report(pos, "metric %s has # HELP but no # TYPE declaration", n)
		}
	}
	for n, pos := range typeDecl {
		if _, ok := helpDecl[n]; !ok {
			report(pos, "metric %s has # TYPE but no # HELP declaration", n)
		}
	}
	return nil, nil
}

// isFprint reports whether call is an fmt Fprint-family call (the renderer
// writes the exposition exclusively through these).
func isFprint(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Sprint")
}

// calleeObj resolves the called object (function or closure-bound
// variable), or nil.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// findRegistrars returns the set of objects (declared functions or
// variables bound to closures) whose body renders both "# HELP %s" and
// "# TYPE %s" — calling one with a name literal registers that family.
func findRegistrars(pass *analysis.Pass) map[types.Object]bool {
	regs := map[types.Object]bool{}
	bodyRegisters := func(body *ast.BlockStmt) bool {
		help, typ := false, false
		ast.Inspect(body, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if text, err := strconv.Unquote(lit.Value); err == nil {
				if strings.Contains(text, "# HELP %s") {
					help = true
				}
				if strings.Contains(text, "# TYPE %s") {
					typ = true
				}
			}
			return true
		})
		return help && typ
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && bodyRegisters(n.Body) {
					regs[pass.TypesInfo.Defs[n.Name]] = true
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) || !bodyRegisters(lit.Body) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							regs[obj] = true
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							regs[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if lit, ok := v.(*ast.FuncLit); ok && i < len(n.Names) && bodyRegisters(lit.Body) {
						regs[pass.TypesInfo.Defs[n.Names[i]]] = true
					}
				}
			}
			return true
		})
	}
	delete(regs, nil)
	return regs
}
