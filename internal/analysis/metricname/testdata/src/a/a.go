// Fixture for the metricname analyzer, shaped like the server's real
// renderMetrics: registrar closures for single-value families, direct
// Fprintf for labelled series, plus every failure mode.
package a

import (
	"fmt"
	"strings"
)

func render(b *strings.Builder, queued, done int) {
	gauge := func(name, help string, value any) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}

	gauge("refrint_queue_depth", "Executions waiting in queues.", queued) // ok: registrar declares HELP+TYPE
	gauge("refrint_Bad_Name", "Uppercase is rejected.", 1)                // want `metric name "refrint_Bad_Name" does not match`

	fmt.Fprintf(b, "# HELP refrint_jobs Jobs by lifecycle state.\n# TYPE refrint_jobs gauge\n")
	fmt.Fprintf(b, "refrint_jobs{state=%q} %d\n", "done", done) // ok: declared just above

	fmt.Fprintf(b, "refrint_orphan_total %d\n", done) // want `metric refrint_orphan_total is emitted without a paired # HELP and # TYPE`

	fmt.Fprintf(b, "# HELP refrint_help_only_total Declared help, forgot type.\n") // want `metric refrint_help_only_total has # HELP but no # TYPE`
	fmt.Fprintf(b, "# TYPE refrint_type_only_total counter\n")                     // want `metric refrint_type_only_total has # TYPE but no # HELP`
}

// Outside the renderer, names get the charset check only: an assertion on
// scrape output does not need a local registration...
func assertion(body string) bool {
	return strings.Contains(body, "refrint_jobs{state=\"done\"}") // ok: not an emission
}

// ...but a malformed name is flagged wherever it appears.
const docName = "refrint_sims-per-second" // want `metric name "refrint_sims-per-second" does not match`
