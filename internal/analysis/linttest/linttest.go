// Package linttest is the project's analyzer test harness — the same
// fixture contract as golang.org/x/tools/go/analysis/analysistest (a
// `testdata/src/<pkg>` tree whose sources carry `// want "regexp"`
// comments on the lines expected to be flagged), reimplemented on the
// standard library.  The real analysistest sits on go/packages, which the
// toolchain does not vendor (the build must stay offline, see
// third_party/golang.org/x/tools/README.md); fixtures here are
// single-package and import only the standard library, so parsing with
// go/parser and type-checking with the GOROOT source importer is enough.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Run loads the fixture package at testdata/src/<pkg> (relative to the
// test's working directory), runs a on it, and asserts that the reported
// diagnostics exactly match the fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files under %s", dir)
	}

	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Errorf("linttest: type error: %v", err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-check: %v", err)
	}

	var diags []analysis.Diagnostic
	runWithDeps(t, a, fset, files, tpkg, info, &diags, map[*analysis.Analyzer]any{})

	checkWants(t, fset, files, diags)
}

// runWithDeps executes a's requirements, then a itself, memoizing results.
func runWithDeps(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, diags *[]analysis.Diagnostic, results map[*analysis.Analyzer]any) {
	t.Helper()
	if _, done := results[a]; done {
		return
	}
	resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
	for _, req := range a.Requires {
		runWithDeps(t, req, fset, files, pkg, info, diags, results)
		resultOf[req] = results[req]
	}
	// The inspect pass is special-cased: building the inspector directly
	// avoids relying on its Run signature internals.
	if a == inspect.Analyzer {
		results[a] = inspector.New(files)
		return
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			// Only the analyzer under test contributes diagnostics.
			*diags = append(*diags, d)
		},
		ReadFile: os.ReadFile,
	}
	res, err := a.Run(pass)
	if err != nil {
		t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
	}
	results[a] = res
}

// wantRe extracts the quoted regexps of one // want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// checkWants compares diagnostics against // want comments, analysistest
// style: every diagnostic must be expected on its line, every expectation
// must fire exactly once.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text[i+len("// want "):], -1) {
					lit := m[1]
					if m[2] != "" {
						lit = m[2]
					} else {
						var err error
						lit, err = strconv.Unquote(`"` + lit + `"`)
						if err != nil {
							t.Fatalf("linttest: bad want at %s: %v", pos, err)
						}
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("linttest: bad want regexp at %s: %v", pos, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil // consume
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q was not reported", k.file, k.line, re)
			}
		}
	}
}
