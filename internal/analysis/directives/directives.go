// Package directives parses the project's //refrint: source pragmas, the
// annotation layer shared by every analyzer in internal/analysis:
//
//	//refrint:alloc-free
//	    Marks the function declaration (doc comment) or function literal
//	    (comment on the same or preceding line) it annotates as an
//	    allocation-free hot path.  The allocfree analyzer rejects
//	    allocating constructs inside annotated bodies.
//
//	//refrint:allow <analyzer>[,<analyzer>...] -- <reason>
//	    Suppresses findings of the named analyzers on the same line and
//	    the line directly below.  The reason is mandatory by convention:
//	    a suppression without a why does not survive review.
//
// Pragmas follow the Go directive comment shape (`//tool:verb`, no space
// after the slashes), so gofmt leaves them alone.
package directives

import (
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the common directive namespace.
const prefix = "refrint:"

// Map holds the parsed directives of one file, keyed by source line.
type Map struct {
	fset *token.FileSet
	// allow maps a line number to the set of analyzer names whose
	// findings are suppressed on that line and the next.
	allow map[int]map[string]bool
	// allocFree holds the lines carrying an alloc-free annotation.
	allocFree map[int]bool
}

// Parse scans every comment in file and returns its directive map.
func Parse(fset *token.FileSet, file *ast.File) *Map {
	m := &Map{
		fset:      fset,
		allow:     make(map[int]map[string]bool),
		allocFree: make(map[int]bool),
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+prefix)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			switch {
			case text == "alloc-free" || strings.HasPrefix(text, "alloc-free "):
				m.allocFree[line] = true
			case strings.HasPrefix(text, "allow "):
				names := strings.TrimPrefix(text, "allow ")
				if i := strings.Index(names, "--"); i >= 0 {
					names = names[:i]
				}
				set := m.allow[line]
				if set == nil {
					set = make(map[string]bool)
					m.allow[line] = set
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						set[n] = true
					}
				}
			}
		}
	}
	return m
}

// Allowed reports whether findings of the named analyzer are suppressed at
// pos: an //refrint:allow directive sits on the same line or the line above.
func (m *Map) Allowed(analyzer string, pos token.Pos) bool {
	line := m.fset.Position(pos).Line
	return m.allow[line][analyzer] || m.allow[line-1][analyzer]
}

// AllocFreeAt reports whether an //refrint:alloc-free directive annotates a
// node starting at pos — the directive sits on the node's own line or the
// line directly above (the form used for function literals).
func (m *Map) AllocFreeAt(pos token.Pos) bool {
	line := m.fset.Position(pos).Line
	return m.allocFree[line] || m.allocFree[line-1]
}

// HasAllocFree reports whether a function declaration's doc comment carries
// the alloc-free annotation.
func HasAllocFree(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == prefix+"alloc-free" || strings.HasPrefix(text, prefix+"alloc-free ") {
			return true
		}
	}
	return false
}
