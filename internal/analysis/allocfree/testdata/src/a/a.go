// Fixture for the allocfree analyzer.  The passing shapes mirror the
// repo's real annotated hot paths (ring reuse, atomic counters, CAS
// loops); the failing function collects every rejected construct.
package a

import (
	"fmt"
	"sync/atomic"
)

type ring struct {
	buf  []int
	hits atomic.Int64
}

//refrint:alloc-free
func steady(r *ring, v int) int {
	r.buf = append(r.buf[:0], v) // ok: reslice idiom reuses capacity
	sum := 0
	for _, x := range r.buf {
		sum += x
	}
	r.hits.Add(1)
	var scratch [8]int // ok: array, stack value
	scratch[0] = sum
	return scratch[0]
}

// casMax mirrors the server's progress callback: pure atomics.
//
//refrint:alloc-free
func casMax(c *atomic.Int64, next int64) {
	for {
		cur := c.Load()
		if next <= cur || c.CompareAndSwap(cur, next) {
			return
		}
	}
}

//refrint:alloc-free
func allocating(r *ring, v int, label string) {
	r.buf = append(r.buf, v)     // want `growing append may allocate`
	m := map[int]int{v: v}       // want `map literal allocates`
	s := []int{v}                // want `slice literal allocates`
	p := &ring{}                 // want `address of composite literal escapes`
	q := make([]int, 4)          // want `make allocates`
	n := new(int)                // want `new allocates`
	fmt.Println(v)               // want `call to fmt.Println formats and boxes`
	_ = label + "!"              // want `string concatenation allocates`
	_ = []byte(label)            // want `conversion between string and byte/rune slice`
	_ = interface{}(v)           // want `conversion to interface type`
	go casMax(&r.hits, 1)        // want `go statement allocates`
	f := func() int { return v } // want `function literal captures enclosing variables`
	_, _, _, _, _, _ = m, s, p, q, n, f
}

//refrint:alloc-free
func staticClosure() func() int {
	return func() int { return 42 } // ok: no captures, static function value
}

//refrint:alloc-free
func waived(r *ring, v int) {
	//refrint:allow allocfree -- fixture: one-time warm-up growth, amortized to zero
	r.buf = append(r.buf, v)
}

// soa mirrors the struct-of-arrays cache bank: per-frame metadata held in
// parallel slices addressed by an integer frame handle.
type soa struct {
	tags   []uint64
	states []uint8
	stamps []int64
}

type frame int32

// probe mirrors the SoA way scan: subslicing for a dense scan window, indexed
// loads from parallel arrays, and returning an integer handle.  None of it
// allocates.
//
//refrint:alloc-free
func probe(c *soa, base, ways int, addr uint64) frame {
	tags := c.tags[base : base+ways] // ok: subslice of existing backing array
	for i := range tags {
		if tags[i] == addr && c.states[base+i] != 0 {
			return frame(base + i)
		}
	}
	return frame(-1)
}

// update mirrors the SoA per-frame accessors: parallel indexed stores through
// an integer handle.
//
//refrint:alloc-free
func update(c *soa, f frame, now int64) {
	c.stamps[f] = now
	c.states[f] = 1
	c.tags[f] = c.tags[f] &^ 1
}

// Unannotated functions may allocate freely.
func cold() []int {
	return append([]int{}, 1, 2, 3)
}
