// Package allocfree statically rejects allocating constructs inside
// functions annotated `//refrint:alloc-free` — the static complement of
// the testing.AllocsPerRun pins (PR 3/5/7) on the repo's hot paths: the
// simulator's steady-state access resolution, the scheduler's
// submit/dequeue cycle, the per-sim progress CAS callback, histogram
// Observe and the HTTP metrics middleware.  AllocsPerRun catches a
// regression when the benchmark runs; this analyzer catches it when the
// file is saved.
//
// Flagged inside an annotated body:
//
//   - map and slice composite literals, make, new, &T{...}
//   - growing append (append whose first argument is not a reslice like
//     s[:0] or s[:i] — the non-allocating reset/delete idioms are allowed)
//   - function literals that capture enclosing local variables (closure
//     allocation); capture-free literals are static values and pass
//   - string concatenation and string<->[]byte/[]rune conversions
//   - conversions of concrete values to interface types (boxing)
//   - any call into fmt (formats and boxes on every call)
//   - method values (bound-method closures) and go statements
//
// Calls to other functions are not followed: the annotation is
// per-function and deliberately lexical, so each hot function on a call
// chain carries its own pragma.  A construct that is provably cold or
// amortized (e.g. one-time warm-up growth) can be waived with
// `//refrint:allow allocfree -- reason`.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"refrint/internal/analysis/directives"
)

const name = "allocfree"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "reject allocating constructs in functions annotated //refrint:alloc-free",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		dirs := directives.Parse(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && directives.HasAllocFree(n.Doc) {
					check(pass, dirs, n.Name.Name, n.Body, n.Type)
				}
			case *ast.FuncLit:
				if dirs.AllocFreeAt(n.Pos()) {
					check(pass, dirs, "function literal", n.Body, n.Type)
				}
			}
			return true
		})
	}
	return nil, nil
}

// check walks one annotated body, skipping nested function literals (their
// construction is judged here, their own body only if annotated itself).
func check(pass *analysis.Pass, dirs *directives.Map, fname string, body *ast.BlockStmt, _ *ast.FuncType) {
	report := func(pos token.Pos, format string, args ...any) {
		if dirs.Allowed(name, pos) {
			return
		}
		pass.Reportf(pos, format+" in alloc-free function %s", append(args, fname)...)
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesLocals(pass, n) {
				report(n.Pos(), "function literal captures enclosing variables (closure allocation)")
			}
			return false // body runs on its own schedule
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			// A method value (x.M used as a value, not called) binds
			// the receiver into a fresh closure.
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
				report(n.Pos(), "method value allocates a bound-method closure")
			}
		case *ast.CallExpr:
			checkCall(pass, report, n)
			// Dig into arguments but not into the Fun selector (a
			// called method is not a method value).
			for _, arg := range n.Args {
				ast.Inspect(arg, walk)
			}
			if fun, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				ast.Inspect(fun.X, walk)
			}
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkCall classifies one call inside an annotated body.
func checkCall(pass *analysis.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	info := pass.TypesInfo

	// Conversion T(x)?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src == nil {
			return
		}
		if types.IsInterface(dst) && !types.IsInterface(src) {
			report(call.Pos(), "conversion to interface type %s boxes its operand", dst)
		}
		if convAllocates(dst, src) {
			report(call.Pos(), "conversion between string and byte/rune slice copies and allocates")
		}
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 {
					if _, reslice := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !reslice {
						report(call.Pos(), "growing append may allocate (reslice idioms like append(s[:0], ...) are exempt)")
					}
				}
			}
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			report(call.Pos(), "call to %s formats and boxes (allocates)", f.FullName())
		}
	}
}

// capturesLocals reports whether lit references a variable declared in an
// enclosing function (true closure capture; package-level and
// literal-internal references are free).
func capturesLocals(pass *analysis.Pass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are addressed statically.
		if v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return true
		}
		// Declared outside the literal's extent -> captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// convAllocates reports whether a conversion between dst and src copies
// backing memory (string <-> []byte / []rune).
func convAllocates(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
