package allocfree_test

import (
	"testing"

	"refrint/internal/analysis/allocfree"
	"refrint/internal/analysis/linttest"
)

func TestAllocfree(t *testing.T) {
	linttest.Run(t, allocfree.Analyzer, "a")
}
