// Fixture for the lockcheck analyzer.  The shapes mirror real call sites:
// server.go's Lock/defer Unlock around *Locked helpers, the OnAge closure
// that takes the lock itself, and — as the canonical failing case — the
// pre-PR-7 handleMetrics, which rendered the whole exposition while
// holding the mutex.
package a

import (
	"encoding/json"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	jobs map[string]int
	ch   chan int
}

// snapshotLocked is the well-behaved kind of *Locked function: pure
// in-memory reads, caller holds the mutex.
func (s *server) snapshotLocked() int { return len(s.jobs) }

func (s *server) bareCall() {
	_ = s.snapshotLocked() // want `call to snapshotLocked without holding the mutex`
}

func (s *server) deferredPair() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked() // ok: between Lock and deferred Unlock
}

func (s *server) inlinePair() {
	s.mu.Lock()
	n := s.snapshotLocked() // ok: Unlock comes later
	s.mu.Unlock()
	_ = n
}

func (s *server) afterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	_ = s.snapshotLocked() // want `call to snapshotLocked without holding the mutex`
}

// fromLocked: a *Locked function may call other *Locked functions freely.
func (s *server) aggregateLocked() int {
	return s.snapshotLocked() // ok: caller already holds the mutex
}

// An early-exit Unlock inside an error branch releases the lock only for
// that branch; the fall-through path still holds it (the handler shape:
// Lock, bail out on errors, keep working).
func (s *server) earlyExitUnlock(bad bool) int {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return 0
	}
	n := s.snapshotLocked() // ok: this path never saw the Unlock
	s.mu.Unlock()
	return n
}

// Symmetrically, a Lock taken inside a branch does not cover code after
// the branch.
func (s *server) branchLock(eager bool) {
	if eager {
		s.mu.Lock()
		s.mu.Unlock()
	}
	_ = s.snapshotLocked() // want `call to snapshotLocked without holding the mutex`
}

// A closure does not inherit the enclosing function's hold — it may run
// later, on another goroutine.
func (s *server) escapingClosure() func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int {
		return s.snapshotLocked() // want `call to snapshotLocked without holding the mutex`
	}
}

// A closure that takes the lock itself is fine (the OnAge callback shape).
func (s *server) lockingClosure() func() int {
	return func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.snapshotLocked() // ok
	}
}

// renderAllLocked is the old handleMetrics bug as a fixture: marshalling
// the full view while the mutex is held.
func (s *server) renderAllLocked() ([]byte, error) {
	return json.Marshal(s.jobs) // want `encoding/json.Marshal inside a \*Locked function`
}

func (s *server) stallLocked() {
	time.Sleep(time.Millisecond) // want `time.Sleep inside a \*Locked function`
	s.ch <- 1                    // want `channel send inside a \*Locked function`
	<-s.ch                       // want `channel receive inside a \*Locked function`
	select {                     // want `select inside a \*Locked function`
	case <-s.ch: // want `channel receive inside a \*Locked function`
	default:
	}
}

// Intentional exceptions carry a reasoned allow directive (the disk
// store's mutex guards an on-disk structure, so it does I/O under it by
// design).
func (s *server) persistLocked() error {
	//refrint:allow lockcheck -- fixture: store-style intentional I/O under the lock
	return json.NewEncoder(discard{}).Encode(s.jobs)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
