// Package lockcheck enforces the repo's *Locked naming contract, the
// convention every mutex-guarded subsystem (server, sched, store, events)
// relies on:
//
//  1. A call to a function whose name ends in "Locked" must happen either
//     inside another *Locked function, or lexically after a mu.Lock() /
//     mu.RLock() that is still held at the call site (an un-deferred
//     Unlock in between releases it).
//
//  2. A *Locked function body must not block: no channel sends, receives,
//     selects or ranges, and no calls into packages that do I/O or
//     marshalling (net, net/http, os, io, bufio, os/exec, encoding/json),
//     nor time.Sleep / (*sync.WaitGroup).Wait.  This is the PR 7
//     handleMetrics bug — rendering /metrics while holding s.mu — turned
//     into a compile-time rule: snapshot under the lock, render outside.
//
// Intentional exceptions (e.g. the disk store, whose mutex guards an
// on-disk structure and therefore does I/O under it by design) carry an
// `//refrint:allow lockcheck -- reason` directive.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"refrint/internal/analysis/directives"
)

const name = "lockcheck"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "check that *Locked functions are called under the mutex and never block",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// blockingPkgs are packages whose calls block (I/O, network) or do heavy
// marshalling work that must not run under a hot mutex.
var blockingPkgs = map[string]bool{
	"net":           true,
	"net/http":      true,
	"os":            true,
	"os/exec":       true,
	"io":            true,
	"io/ioutil":     true,
	"bufio":         true,
	"encoding/json": true,
}

// blockingFuncs are individual functions outside those packages that block.
var blockingFuncs = map[string]bool{
	"time.Sleep":             true,
	"(*sync.WaitGroup).Wait": true,
}

// nonBlockingFuncs are pure predicates in otherwise-blocking packages.
var nonBlockingFuncs = map[string]bool{
	"os.IsNotExist":   true,
	"os.IsExist":      true,
	"os.IsPermission": true,
	"os.IsTimeout":    true,
	"os.Getenv":       true,
	"os.Getpid":       true,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	dirs := make(map[*ast.File]*directives.Map, len(pass.Files))
	for _, f := range pass.Files {
		dirs[f] = directives.Parse(pass.Fset, f)
	}
	fileOf := func(pos token.Pos) *directives.Map {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return dirs[f]
			}
		}
		return nil
	}
	report := func(pos token.Pos, format string, args ...any) {
		if d := fileOf(pos); d != nil && d.Allowed(name, pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		// A test named after the *Locked function it covers
		// (TestRollbackBatchLocked) is not itself a *Locked function.
		locked := isLockedName(decl.Name.Name) && !isTestFunc(pass, decl)
		// Each function literal is its own lexical scope for lock
		// tracking; the declaration body excludes nested literals.
		for _, scope := range splitScopes(decl.Body) {
			// Rule 1: *Locked calls need the mutex.  The body of a
			// *Locked declaration holds it by contract; a nested
			// literal does not inherit that (it may run later, on
			// another goroutine) unless it takes the lock itself.
			inherits := locked && scope.node == decl.Body
			checkLockedCalls(pass, report, scope, inherits)
		}
		// Rule 2 is about the declared contract, so it applies to the
		// whole body but not nested literals (they execute on their
		// own schedule and are checked at their own call sites).
		if locked {
			checkBlocking(pass, report, scopeBody(decl.Body))
		}
	})
	return nil, nil
}

func isLockedName(name string) bool {
	return strings.HasSuffix(name, "Locked")
}

// isTestFunc reports whether decl is a Test/Benchmark/Fuzz/Example function
// in a _test.go file.
func isTestFunc(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Recv != nil {
		return false
	}
	n := decl.Name.Name
	if !strings.HasPrefix(n, "Test") && !strings.HasPrefix(n, "Benchmark") &&
		!strings.HasPrefix(n, "Fuzz") && !strings.HasPrefix(n, "Example") {
		return false
	}
	return strings.HasSuffix(pass.Fset.Position(decl.Pos()).Filename, "_test.go")
}

// scope is one lexical lock-tracking region: a function body with its
// nested function literals cut out.
type scope struct {
	node  ast.Node // *ast.BlockStmt (decl body) or *ast.FuncLit
	body  *ast.BlockStmt
	inner []*ast.FuncLit // direct nested literals, excluded from walks
}

// splitScopes returns the scope of body plus one scope per (transitively)
// nested function literal.
func splitScopes(body *ast.BlockStmt) []scope {
	var scopes []scope
	var build func(node ast.Node, b *ast.BlockStmt)
	build = func(node ast.Node, b *ast.BlockStmt) {
		s := scope{node: node, body: b}
		var nested []*ast.FuncLit
		ast.Inspect(b, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && n != node {
				nested = append(nested, lit)
				return false
			}
			return true
		})
		s.inner = nested
		scopes = append(scopes, s)
		for _, lit := range nested {
			build(lit, lit.Body)
		}
	}
	build(body, body)
	return scopes
}

// scopeBody returns a scope for body excluding nested literals (used for
// the blocking-op walk, which does not recurse into literals).
func scopeBody(body *ast.BlockStmt) scope {
	s := scope{node: body, body: body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			s.inner = append(s.inner, lit)
			return false
		}
		return true
	})
	return s
}

// walk visits the scope's own nodes, skipping nested function literals.
func (s scope) walk(fn func(ast.Node) bool) {
	skip := make(map[ast.Node]bool, len(s.inner))
	for _, lit := range s.inner {
		skip[lit] = true
	}
	ast.Inspect(s.body, func(n ast.Node) bool {
		if n == nil || skip[n] {
			return false
		}
		return fn(n)
	})
}

// lockEvent is one mutex transition in lexical order.  end is the extent of
// the event's innermost enclosing block: the event is visible only to
// positions inside that block, so an early-exit Unlock inside an error
// branch (`if bad { mu.Unlock(); return }`) does not release the lock for
// the fall-through path, and a Lock taken inside a branch does not cover
// code after it.
type lockEvent struct {
	pos   token.Pos
	end   token.Pos
	delta int // +1 Lock/RLock, -1 un-deferred Unlock/RUnlock
}

// blockExtents collects the extents of every statement-list node in the
// scope (block statements plus switch/select clause bodies).
func blockExtents(s scope) [][2]token.Pos {
	extents := [][2]token.Pos{{s.body.Pos(), s.body.End()}}
	s.walk(func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			extents = append(extents, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	return extents
}

// innermostEnd returns the end of the smallest extent containing pos.
func innermostEnd(extents [][2]token.Pos, pos token.Pos) token.Pos {
	best := extents[0]
	for _, e := range extents[1:] {
		if e[0] <= pos && pos < e[1] && e[1]-e[0] < best[1]-best[0] {
			best = e
		}
	}
	return best[1]
}

// checkLockedCalls enforces rule 1 within one scope.
func checkLockedCalls(pass *analysis.Pass, report func(token.Pos, string, ...any), s scope, inheritsLock bool) {
	type lockedCall struct {
		pos  token.Pos
		name string
	}
	var events []lockEvent
	var calls []lockedCall
	extents := blockExtents(s)

	s.walk(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps the lock held for the rest
			// of the scope: record no release event.  Anything else
			// deferred is irrelevant to lexical tracking.
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					events = append(events, lockEvent{n.Pos(), innermostEnd(extents, n.Pos()), +1})
					return true
				case "Unlock", "RUnlock":
					events = append(events, lockEvent{n.Pos(), innermostEnd(extents, n.Pos()), -1})
					return true
				}
			}
			if name := calleeName(n); isLockedName(name) {
				calls = append(calls, lockedCall{n.Pos(), name})
			}
		}
		return true
	})

	if inheritsLock || len(calls) == 0 {
		return
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })

	for _, c := range calls {
		held := 0
		for _, e := range events {
			if e.pos < c.pos && c.pos < e.end {
				held += e.delta
			}
		}
		if held <= 0 {
			report(c.pos, "call to %s without holding the mutex: wrap in mu.Lock()/defer mu.Unlock() or call from a *Locked function", c.name)
		}
	}
}

// calleeName returns the bare name of a called function or method, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkBlocking enforces rule 2 over one *Locked body.
func checkBlocking(pass *analysis.Pass, report func(token.Pos, string, ...any), s scope) {
	s.walk(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "channel send inside a *Locked function may block while the mutex is held")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive inside a *Locked function may block while the mutex is held")
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select inside a *Locked function may block while the mutex is held")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Pos(), "range over a channel inside a *Locked function blocks while the mutex is held")
				}
			}
		case *ast.CallExpr:
			fn := typeutil.StaticCallee(pass.TypesInfo, n)
			if fn == nil {
				// Interface method: resolve through Uses so e.g.
				// http.ResponseWriter.Write is still attributed.
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
						fn = f
					}
				}
			}
			if fn == nil {
				return true
			}
			full := fn.FullName()
			if nonBlockingFuncs[full] {
				return true
			}
			pkg := fn.Pkg()
			if (pkg != nil && blockingPkgs[pkg.Path()]) || blockingFuncs[full] {
				report(n.Pos(), "%s inside a *Locked function: blocking or marshalling work must not run while the mutex is held (snapshot under the lock, do the work outside)", full)
			}
		}
		return true
	})
}
