package lockcheck_test

import (
	"testing"

	"refrint/internal/analysis/linttest"
	"refrint/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, lockcheck.Analyzer, "a")
}
