// Package atomicfield enforces all-or-nothing atomicity on struct fields,
// package-scoped:
//
//  1. A plain integer/pointer field that is ever accessed through a
//     sync/atomic call (`atomic.AddInt64(&s.n, 1)`, CAS loops, ...) must
//     be accessed that way everywhere in the package: a bare read `s.n`
//     or write `s.n = v` elsewhere is a data race waiting for the race
//     detector to get lucky.
//
//  2. A field of a typed atomic (atomic.Int64, atomic.Uint64, atomic.Bool,
//     atomic.Pointer[T], atomic.Value, ...) may only be used as a method
//     call receiver or have its address taken — copying the value
//     (`x := e.done`, passing by value) silently forks the counter and
//     defeats the CAS discipline (the lock-free progress path of PR 5
//     depends on exactly this not happening).
//
// The analyzer is package-scoped on purpose: unexported fields cannot be
// touched from outside, and every atomic field in this repo is unexported.
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"refrint/internal/analysis/directives"
)

const name = "atomicfield"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "check that fields accessed via sync/atomic are never read or written non-atomically in the package",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	dirs := make(map[*ast.File]*directives.Map, len(pass.Files))
	for _, f := range pass.Files {
		dirs[f] = directives.Parse(pass.Fset, f)
	}
	fileOf := func(pos token.Pos) *directives.Map {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return dirs[f]
			}
		}
		return nil
	}
	report := func(pos token.Pos, format string, args ...any) {
		if d := fileOf(pos); d != nil && d.Allowed(name, pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	// Pass 1: find fields whose address flows into a sync/atomic call,
	// and remember the sanctioned &x.f nodes themselves.
	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic use
	sanctioned := map[ast.Node]bool{}          // the &x.f (and x.f) nodes inside atomic calls

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := atomicCallee(pass, call)
		if fn == nil {
			return
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if v := fieldOf(pass, sel); v != nil {
				if _, seen := atomicFields[v]; !seen {
					atomicFields[v] = call.Pos()
				}
				sanctioned[un] = true
				sanctioned[sel] = true
			}
		}
	})

	// Pass 2a: every other access to those fields must be atomic.
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if sanctioned[sel] {
			return
		}
		v := fieldOf(pass, sel)
		if v == nil {
			return
		}
		if first, ok := atomicFields[v]; ok {
			findings = append(findings, finding{sel.Pos(),
				posf(pass, "field %s is accessed atomically (e.g. at %s) but read or written directly here; use sync/atomic for every access", v.Name(), first)})
		}
	})

	// Pass 2b: typed atomics may not be copied.
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		sel := n.(*ast.SelectorExpr)
		v := fieldOf(pass, sel)
		if v == nil || !isTypedAtomic(v.Type()) {
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.SelectorExpr:
			// x.f.Load() — the atomic selector is the X of a method
			// selector.  (Typed atomics have no exported fields, so
			// any deeper selection is a method.)
			if parent.X == sel {
				return true
			}
		case *ast.UnaryExpr:
			// &x.f keeps pointer semantics.
			if parent.Op == token.AND {
				return true
			}
		}
		findings = append(findings, finding{sel.Pos(),
			"atomic value " + v.Name() + " (" + v.Type().String() + ") must not be copied or reassigned; call its methods or take its address"})
		return true
	})

	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		report(f.pos, "%s", f.msg)
	}
	return nil, nil
}

// atomicCallee returns the called sync/atomic package function taking an
// address argument, or nil.
func atomicCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	// Only the free functions take &addr; typed-atomic methods are safe
	// by construction.
	if fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isTypedAtomic reports whether t is one of sync/atomic's typed values.
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// atomic.Pointer[T] instantiations are *types.Named too; an
		// alias would have been resolved by Type().
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		strings.HasPrefix(obj.Name(), strings.ToUpper(obj.Name()[:1])) // exported type
}

// posf formats a message with a secondary position rendered relative to
// the pass's fileset.
func posf(pass *analysis.Pass, format string, name string, at token.Pos) string {
	return fmt.Sprintf(format, name, pass.Fset.Position(at).String())
}
