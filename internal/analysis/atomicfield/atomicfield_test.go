package atomicfield_test

import (
	"testing"

	"refrint/internal/analysis/atomicfield"
	"refrint/internal/analysis/linttest"
)

func TestAtomicfield(t *testing.T) {
	linttest.Run(t, atomicfield.Analyzer, "a")
}
