// Fixture for the atomicfield analyzer: a raw int64 driven through
// sync/atomic free functions (the CAS-max shape of the server's progress
// counters before they became typed), a typed atomic.Int64, and the
// mixed-access bugs both forbid.
package a

import "sync/atomic"

type counter struct {
	raw   int64
	typed atomic.Int64
}

func (c *counter) add(d int64) {
	atomic.AddInt64(&c.raw, d) // registers c.raw as an atomic field
}

func (c *counter) casMax(next int64) {
	for {
		cur := atomic.LoadInt64(&c.raw) // ok
		if next <= cur || atomic.CompareAndSwapInt64(&c.raw, cur, next) {
			return
		}
	}
}

func (c *counter) torn() int64 {
	c.raw++      // want `field raw is accessed atomically`
	c.raw = 7    // want `field raw is accessed atomically`
	return c.raw // want `field raw is accessed atomically`
}

func (c *counter) typedOK() int64 {
	c.typed.Add(1) // ok: method call on the field
	p := &c.typed  // ok: pointer keeps atomicity
	return p.Load()
}

func (c *counter) typedCopy() atomic.Int64 {
	cp := c.typed // want `atomic value typed \(sync/atomic\.Int64\) must not be copied`
	_ = cp
	return c.typed // want `atomic value typed \(sync/atomic\.Int64\) must not be copied`
}

// An unrelated plain field stays unrestricted.
type plain struct{ n int64 }

func (p *plain) bump() { p.n++ }
