// Package cpu provides the processor-core timing model.
//
// The paper simulates dual-issue out-of-order MIPS32 cores in SESC.  This
// reproduction approximates each core as a dual-issue in-order engine with a
// bounded miss-overlap window (a configurable number of miss cycles hidden
// under independent work), which is the documented substitution of DESIGN.md
// section 4.6.  Because every reported result is normalized to the same core
// model running on the full-SRAM hierarchy, the policy ratios the paper
// reports are preserved even though absolute IPC differs.
package cpu

import (
	"fmt"

	"refrint/internal/config"
)

// Core tracks the local time of one processor core.
type Core struct {
	id  int
	cfg config.CoreConfig

	// now is the core-local clock (cycle at which the next instruction can
	// start executing).
	now int64

	instructions  int64
	memOps        int64
	stallCycles   int64
	computeCycles int64
	finished      bool
}

// New creates a core with the given id.
func New(id int, cfg config.CoreConfig) *Core {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("cpu: invalid config: %v", err))
	}
	return &Core{id: id, cfg: cfg}
}

// ID returns the core's identifier (also its tile on the torus).
func (c *Core) ID() int { return c.id }

// Now returns the core-local clock.
func (c *Core) Now() int64 { return c.now }

// Instructions returns the number of instructions retired so far (memory and
// non-memory).
func (c *Core) Instructions() int64 { return c.instructions }

// MemOps returns the number of memory references issued.
func (c *Core) MemOps() int64 { return c.memOps }

// StallCycles returns the cycles spent waiting for memory beyond the
// overlap window.
func (c *Core) StallCycles() int64 { return c.stallCycles }

// ComputeCycles returns the cycles spent executing non-memory instructions.
func (c *Core) ComputeCycles() int64 { return c.computeCycles }

// Finished reports whether the core's workload has completed.
func (c *Core) Finished() bool { return c.finished }

// Finish marks the core's workload as complete.
func (c *Core) Finish() { c.finished = true }

// Compute advances the core's clock over `instructions` non-memory
// instructions at the configured issue width and returns the new local time.
func (c *Core) Compute(instructions int64) int64 {
	if instructions <= 0 {
		return c.now
	}
	cycles := (instructions + int64(c.cfg.IssueWidth) - 1) / int64(c.cfg.IssueWidth)
	c.now += cycles
	c.computeCycles += cycles
	c.instructions += instructions
	return c.now
}

// CompleteMemOp accounts for a memory reference that was issued at the
// core's current time and whose data returned at `doneAt`.  Up to
// MissOverlap cycles of the latency are hidden (modelling the OOO window);
// the rest stalls the core.  It returns the new local time.
func (c *Core) CompleteMemOp(doneAt int64) int64 {
	c.memOps++
	c.instructions++ // the memory instruction itself
	latency := doneAt - c.now
	if latency < 0 {
		latency = 0
	}
	hidden := c.cfg.MissOverlap
	if hidden > latency {
		hidden = latency
	}
	stall := latency - hidden
	// The memory instruction still occupies one issue slot.
	c.now += stall + 1
	c.stallCycles += stall
	return c.now
}

// AdvanceTo moves the core-local clock forward to at least `cycle`
// (used when an external condition, such as a blocked cache bank, delays
// the core).  Moving backwards is a no-op.
func (c *Core) AdvanceTo(cycle int64) {
	if cycle > c.now {
		c.stallCycles += cycle - c.now
		c.now = cycle
	}
}
