package cpu

import (
	"testing"
	"testing/quick"

	"refrint/internal/config"
)

func coreCfg() config.CoreConfig {
	return config.CoreConfig{IssueWidth: 2, MissOverlap: 8}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(0, config.CoreConfig{IssueWidth: 0})
}

func TestComputeDualIssue(t *testing.T) {
	c := New(3, coreCfg())
	if c.ID() != 3 {
		t.Errorf("ID = %d", c.ID())
	}
	c.Compute(10) // 10 instructions at issue width 2 = 5 cycles
	if c.Now() != 5 {
		t.Errorf("Now = %d, want 5", c.Now())
	}
	if c.Instructions() != 10 {
		t.Errorf("Instructions = %d, want 10", c.Instructions())
	}
	if c.ComputeCycles() != 5 {
		t.Errorf("ComputeCycles = %d, want 5", c.ComputeCycles())
	}
	c.Compute(3) // odd count rounds up: 2 cycles
	if c.Now() != 7 {
		t.Errorf("Now = %d, want 7", c.Now())
	}
	c.Compute(0)
	c.Compute(-5)
	if c.Now() != 7 {
		t.Error("non-positive instruction counts must not advance time")
	}
}

func TestCompleteMemOpHit(t *testing.T) {
	c := New(0, coreCfg())
	c.Compute(2) // now = 1
	// A 1-cycle hit returning at now+1 is fully hidden by the overlap window;
	// the instruction still takes its issue slot.
	now := c.CompleteMemOp(c.Now() + 1)
	if now != 2 {
		t.Errorf("Now after hit = %d, want 2", now)
	}
	if c.StallCycles() != 0 {
		t.Errorf("StallCycles = %d, want 0", c.StallCycles())
	}
	if c.MemOps() != 1 {
		t.Errorf("MemOps = %d, want 1", c.MemOps())
	}
}

func TestCompleteMemOpMissStalls(t *testing.T) {
	c := New(0, coreCfg())
	// A 50-cycle miss: 8 cycles hidden, 42 stall + 1 issue slot.
	now := c.CompleteMemOp(50)
	if now != 43 {
		t.Errorf("Now = %d, want 43", now)
	}
	if c.StallCycles() != 42 {
		t.Errorf("StallCycles = %d, want 42", c.StallCycles())
	}
}

func TestCompleteMemOpPastCompletion(t *testing.T) {
	c := New(0, coreCfg())
	c.Compute(200) // now = 100
	// Data that was already available (doneAt < now) costs only the slot.
	now := c.CompleteMemOp(50)
	if now != 101 {
		t.Errorf("Now = %d, want 101", now)
	}
	if c.StallCycles() != 0 {
		t.Error("no stall expected for already-available data")
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New(0, coreCfg())
	c.AdvanceTo(100)
	if c.Now() != 100 || c.StallCycles() != 100 {
		t.Errorf("AdvanceTo: now=%d stalls=%d", c.Now(), c.StallCycles())
	}
	c.AdvanceTo(50) // backwards: no-op
	if c.Now() != 100 {
		t.Error("AdvanceTo must not move time backwards")
	}
}

func TestFinishFlag(t *testing.T) {
	c := New(0, coreCfg())
	if c.Finished() {
		t.Error("new core should not be finished")
	}
	c.Finish()
	if !c.Finished() {
		t.Error("Finish did not mark the core")
	}
}

func TestTimeMonotoneProperty(t *testing.T) {
	// Property: the local clock never decreases regardless of the request
	// sequence, and instruction counts equal the sum of what was fed in.
	f := func(ops []uint16) bool {
		c := New(0, coreCfg())
		var last int64
		var wantInstr int64
		for i, op := range ops {
			if i%2 == 0 {
				n := int64(op % 100)
				c.Compute(n)
				if n > 0 {
					wantInstr += n
				}
			} else {
				c.CompleteMemOp(c.Now() + int64(op%200))
				wantInstr++
			}
			if c.Now() < last {
				return false
			}
			last = c.Now()
		}
		return c.Instructions() == wantInstr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStallNeverExceedsLatencyProperty(t *testing.T) {
	f := func(lat uint16) bool {
		c := New(0, coreCfg())
		c.CompleteMemOp(int64(lat))
		return c.StallCycles() <= int64(lat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
