package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"refrint/internal/mem"
)

func TestDirStateString(t *testing.T) {
	if Uncached.String() != "U" || SharedClean.String() != "S" || OwnedModified.String() != "M" {
		t.Error("DirState strings wrong")
	}
	if DirState(9).String() != "?" {
		t.Error("unknown state should render as ?")
	}
}

func TestReadFromUncached(t *testing.T) {
	d := New(16)
	act := d.Read(0x10, 3)
	if !act.Invalidates.Empty() || act.DowngradeCore != -1 || act.DirtyForward {
		t.Errorf("read of uncached line should need no coherence work: %+v", act)
	}
	e := d.Lookup(0x10)
	if e == nil || !e.HasSharer(3) || e.State != SharedClean || e.NumSharers() != 1 {
		t.Errorf("directory entry wrong: %+v", e)
	}
}

func TestMultipleReaders(t *testing.T) {
	d := New(16)
	d.Read(0x10, 1)
	d.Read(0x10, 2)
	act := d.Read(0x10, 5)
	if !act.Invalidates.Empty() {
		t.Error("readers never invalidate each other")
	}
	e := d.Lookup(0x10)
	if e.NumSharers() != 3 {
		t.Errorf("NumSharers = %d, want 3", e.NumSharers())
	}
	if got := e.SharerList(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 5 {
		t.Errorf("SharerList = %v", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := New(16)
	d.Read(0x20, 0)
	d.Read(0x20, 1)
	d.Read(0x20, 2)
	act := d.Write(0x20, 1)
	if act.Invalidates.Len() != 2 {
		t.Fatalf("invalidations = %v, want cores 0 and 2", act.Invalidates)
	}
	if act.Invalidates.Contains(1) {
		t.Error("writer must not invalidate itself")
	}
	if !act.Invalidates.Contains(0) || !act.Invalidates.Contains(2) {
		t.Errorf("invalidations = %v, want cores 0 and 2", act.Invalidates)
	}
	e := d.Lookup(0x20)
	if e.State != OwnedModified || e.Owner != 1 || e.NumSharers() != 1 || !e.HasSharer(1) {
		t.Errorf("after write: %+v", e)
	}
	if d.InvalidationsSent() != 2 {
		t.Errorf("InvalidationsSent = %d, want 2", d.InvalidationsSent())
	}
}

func TestReadOfModifiedLineDowngradesOwner(t *testing.T) {
	d := New(16)
	d.Write(0x30, 4)
	act := d.Read(0x30, 7)
	if act.DowngradeCore != 4 {
		t.Errorf("DowngradeCore = %d, want 4", act.DowngradeCore)
	}
	if !act.DirtyForward || !act.WritebackToL3 {
		t.Error("reading a modified line must forward dirty data and write it to L3")
	}
	e := d.Lookup(0x30)
	if e.State != SharedClean || e.Owner != -1 {
		t.Errorf("after downgrade: %+v", e)
	}
	if !e.HasSharer(4) || !e.HasSharer(7) {
		t.Error("both the old owner and the reader should be sharers")
	}
	if d.DowngradesSent() != 1 || d.DirtyForwards() != 1 {
		t.Errorf("counters: downgrades=%d forwards=%d", d.DowngradesSent(), d.DirtyForwards())
	}
}

func TestOwnerReadAndWriteAreSilent(t *testing.T) {
	d := New(16)
	d.Write(0x40, 2)
	if act := d.Read(0x40, 2); act.DowngradeCore != -1 || act.DirtyForward {
		t.Errorf("owner read should be silent: %+v", act)
	}
	if act := d.Write(0x40, 2); !act.Invalidates.Empty() || act.DirtyForward {
		t.Errorf("owner write should be silent: %+v", act)
	}
	e := d.Lookup(0x40)
	if e.State != OwnedModified || e.Owner != 2 {
		t.Errorf("owner state lost: %+v", e)
	}
}

func TestWriteAfterModifiedByOther(t *testing.T) {
	d := New(16)
	d.Write(0x50, 0)
	act := d.Write(0x50, 9)
	if act.Invalidates.Len() != 1 || !act.Invalidates.Contains(0) {
		t.Errorf("invalidations = %v, want {0}", act.Invalidates)
	}
	if !act.DirtyForward {
		t.Error("dirty data must be forwarded from the previous owner")
	}
	e := d.Lookup(0x50)
	if e.Owner != 9 || e.State != OwnedModified {
		t.Errorf("new owner wrong: %+v", e)
	}
}

func TestSharerEvicted(t *testing.T) {
	d := New(16)
	d.Read(0x60, 1)
	d.Read(0x60, 2)
	d.SharerEvicted(0x60, 1)
	e := d.Lookup(0x60)
	if e.HasSharer(1) || !e.HasSharer(2) {
		t.Errorf("sharers after evict: %+v", e)
	}
	d.SharerEvicted(0x60, 2)
	if e := d.Lookup(0x60); e.State != Uncached || e.Sharers != 0 {
		t.Errorf("entry should reset when last sharer leaves: %+v", e)
	}
	// Evicting from an untracked line must not panic.
	d.SharerEvicted(0xdead, 5)
}

func TestSharerWroteBack(t *testing.T) {
	d := New(16)
	d.Write(0x70, 3)
	d.SharerWroteBack(0x70, 3)
	e := d.Lookup(0x70)
	if e.State != Uncached || e.Owner != -1 {
		t.Errorf("after dirty eviction of sole owner: %+v", e)
	}
	// Owner writes back while another core still shares (possible after a
	// downgrade race in the atomic model): state returns to SharedClean.
	d.Write(0x80, 1)
	d.Read(0x80, 2)
	d.SharerWroteBack(0x80, 1)
	e = d.Lookup(0x80)
	if e.State != SharedClean || e.HasSharer(1) || !e.HasSharer(2) {
		t.Errorf("after owner writeback with remaining sharer: %+v", e)
	}
	d.SharerWroteBack(0xbeef, 1) // untracked: no-op
}

func TestInvalidateLineInclusive(t *testing.T) {
	d := New(16)
	d.Read(0x90, 1)
	d.Read(0x90, 2)
	act := d.InvalidateLine(0x90)
	if act.Invalidates.Len() != 2 {
		t.Errorf("inclusive invalidation should hit both sharers: %+v", act)
	}
	if act.DirtyForward {
		t.Error("clean sharers need no writeback")
	}
	if d.Lookup(0x90) != nil {
		t.Error("entry should be removed")
	}

	d.Write(0xa0, 5)
	act = d.InvalidateLine(0xa0)
	if act.Invalidates.Len() != 1 || !act.DirtyForward {
		t.Errorf("invalidating a line owned dirty above must force a writeback: %+v", act)
	}
	// Invalidating an untracked line is a no-op action.
	act = d.InvalidateLine(0xfff)
	if !act.Invalidates.Empty() || act.DirtyForward {
		t.Errorf("untracked invalidation should be empty: %+v", act)
	}
}

func TestHasUpperCopiesAndOwnedDirtyAbove(t *testing.T) {
	d := New(16)
	if d.HasUpperCopies(0x1) || d.OwnedDirtyAbove(0x1) {
		t.Error("empty directory should report no copies")
	}
	d.Read(0x1, 0)
	if !d.HasUpperCopies(0x1) || d.OwnedDirtyAbove(0x1) {
		t.Error("shared line: copies yes, dirty no")
	}
	d.Write(0x1, 0)
	if !d.OwnedDirtyAbove(0x1) {
		t.Error("modified line should be dirty above")
	}
}

func TestEntriesCount(t *testing.T) {
	d := New(16)
	d.Read(1, 0)
	d.Read(2, 0)
	d.Write(3, 1)
	if d.Entries() != 3 {
		t.Errorf("Entries = %d, want 3", d.Entries())
	}
}

func TestDirectoryInvariantsProperty(t *testing.T) {
	// Property: after any random sequence of reads/writes/evictions,
	// (1) a line in OwnedModified state has exactly one sharer, which is the
	//     owner, and (2) a line in SharedClean state has no owner.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(16)
		addrs := []mem.LineAddr{1, 2, 3, 4}
		for i := 0; i < 500; i++ {
			addr := addrs[rng.Intn(len(addrs))]
			core := rng.Intn(16)
			switch rng.Intn(4) {
			case 0:
				d.Read(addr, core)
			case 1:
				d.Write(addr, core)
			case 2:
				d.SharerEvicted(addr, core)
			case 3:
				d.InvalidateLine(addr)
			}
			for _, a := range addrs {
				e := d.Lookup(a)
				if e == nil {
					continue
				}
				switch e.State {
				case OwnedModified:
					if e.NumSharers() != 1 || e.Owner < 0 || !e.HasSharer(e.Owner) {
						return false
					}
				case SharedClean:
					if e.Owner != -1 && e.HasSharer(e.Owner) && e.NumSharers() == 0 {
						return false
					}
				case Uncached:
					if e.Sharers != 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
