// Package coherence implements the directory-based MESI protocol the paper
// keeps at the shared L3 (Table 5.1, "Directory MESI protocol at L3").
//
// The directory is a full-map directory: for every line present in the L3 it
// records which cores hold a copy in their private (L1/L2) hierarchy and
// whether one of them owns it in Modified state.  The simulator consults the
// directory on every L3 access to learn which coherence actions (remote
// invalidations, downgrades, dirty-data forwards) the access implies, and
// notifies the directory when private caches evict lines or when the L3
// itself invalidates a line (inclusion victims and refresh-policy
// invalidations both flow through here).
//
// MESI's Exclusive state is represented as a SharedClean entry whose Owner
// field records the core holding the exclusive grant.  Because that core may
// upgrade its copy to Modified silently (the point of the E state), any later
// access by a different core probes/downgrades the grant holder exactly as it
// would a Modified owner; whether dirty data actually moves is decided by the
// simulator from the owner's real cache state.
package coherence

import (
	"math/bits"

	"refrint/internal/mem"
)

// DirState is the directory's view of a line.
type DirState uint8

// Directory states.
const (
	// Uncached: no private cache holds the line.
	Uncached DirState = iota
	// SharedClean: one or more private caches hold a clean copy.
	SharedClean
	// OwnedModified: exactly one private cache holds the line in M state.
	OwnedModified
)

// String implements fmt.Stringer.
func (s DirState) String() string {
	switch s {
	case Uncached:
		return "U"
	case SharedClean:
		return "S"
	case OwnedModified:
		return "M"
	default:
		return "?"
	}
}

// Entry is the directory record of one L3-resident line.
type Entry struct {
	Sharers uint32 // bitmask of cores holding the line in private caches
	Owner   int    // core holding it Modified, or -1
	State   DirState
}

// reset returns the entry to Uncached.
func (e *Entry) reset() {
	e.Sharers = 0
	e.Owner = -1
	e.State = Uncached
}

// HasSharer reports whether core holds the line.
func (e *Entry) HasSharer(core int) bool { return e.Sharers&(1<<uint(core)) != 0 }

// NumSharers returns the number of private caches holding the line.
func (e *Entry) NumSharers() int { return bits.OnesCount32(e.Sharers) }

// SharerList returns the core ids of all sharers.
func (e *Entry) SharerList() []int {
	var out []int
	for c := 0; c < 32; c++ {
		if e.HasSharer(c) {
			out = append(out, c)
		}
	}
	return out
}

// CoreSet is an allocation-free set of core ids (the full-map directory
// supports up to 32 cores).  The zero value is the empty set.
type CoreSet uint32

// Len returns the number of cores in the set.
func (s CoreSet) Len() int { return bits.OnesCount32(uint32(s)) }

// Empty reports whether the set has no cores.
func (s CoreSet) Empty() bool { return s == 0 }

// Contains reports whether core is in the set.
func (s CoreSet) Contains(core int) bool { return s&(1<<uint(core)) != 0 }

// Pop removes and returns the lowest-numbered core of a non-empty set along
// with the remaining set, so callers iterate in ascending core order without
// allocating:
//
//	for cs := act.Invalidates; !cs.Empty(); {
//		var c int
//		c, cs = cs.Pop()
//		...
//	}
func (s CoreSet) Pop() (core int, rest CoreSet) {
	core = bits.TrailingZeros32(uint32(s))
	return core, s & (s - 1)
}

// Action describes the coherence work an access or invalidation implies.
// The simulator turns each element into network messages and cache
// operations.
type Action struct {
	// Invalidates are cores whose private copies must be invalidated.
	Invalidates CoreSet
	// DowngradeCore is a core that must downgrade M->S and write its dirty
	// data back to the L3 (-1 if none).
	DowngradeCore int
	// DirtyForward reports whether dirty data had to be fetched from the
	// downgraded/invalidated owner (the requester receives the latest data).
	DirtyForward bool
	// WritebackToL3 reports whether the action causes dirty data to be
	// written into the L3 (making the L3 copy dirty relative to DRAM).
	WritebackToL3 bool
}

// Directory is the full-map MESI directory for one L3 bank.
//
// The line table is a deterministic open-addressing hash table (linear
// probing, backward-shift deletion) rather than a Go map: the directory is
// consulted on every L3 access, and the custom table removes hashing and
// bucket-group overhead from that path while allocating only on growth.
// Entry pointers returned by Lookup/entry are valid only until the next
// mutating directory operation: inserting a previously unseen line may grow
// the table, and InvalidateLine's backward-shift deletion relocates entries
// even without an insert.  Every caller must finish with an entry before
// the next directory call.
type Directory struct {
	cores int
	keys  []mem.LineAddr
	vals  []Entry
	used  []bool
	count int

	// Counters.
	invalidationsSent int64
	downgradesSent    int64
	dirtyForwards     int64
}

// dirInitialSlots is the starting table size (a power of two).
const dirInitialSlots = 256

// New builds an empty directory for a bank shared by `cores` cores.
func New(cores int) *Directory {
	return &Directory{
		cores: cores,
		keys:  make([]mem.LineAddr, dirInitialSlots),
		vals:  make([]Entry, dirInitialSlots),
		used:  make([]bool, dirInitialSlots),
	}
}

// dirHash finalises a line address into a well-mixed slot hash
// (the splitmix64 finaliser).
func dirHash(a mem.LineAddr) uint64 {
	x := uint64(a)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// findSlot returns the slot holding addr, or -1.
func (d *Directory) findSlot(addr mem.LineAddr) int {
	mask := uint64(len(d.keys) - 1)
	for i := dirHash(addr) & mask; d.used[i]; i = (i + 1) & mask {
		if d.keys[i] == addr {
			return int(i)
		}
	}
	return -1
}

// grow doubles the table and re-inserts every entry.
func (d *Directory) grow() {
	oldKeys, oldVals, oldUsed := d.keys, d.vals, d.used
	n := len(oldKeys) * 2
	d.keys = make([]mem.LineAddr, n)
	d.vals = make([]Entry, n)
	d.used = make([]bool, n)
	mask := uint64(n - 1)
	for i, ok := range oldUsed {
		if !ok {
			continue
		}
		j := dirHash(oldKeys[i]) & mask
		for d.used[j] {
			j = (j + 1) & mask
		}
		d.keys[j] = oldKeys[i]
		d.vals[j] = oldVals[i]
		d.used[j] = true
	}
}

// entry returns the record for addr, creating it Uncached if absent.
func (d *Directory) entry(addr mem.LineAddr) *Entry {
	if i := d.findSlot(addr); i >= 0 {
		return &d.vals[i]
	}
	if (d.count+1)*4 >= len(d.keys)*3 {
		d.grow()
	}
	mask := uint64(len(d.keys) - 1)
	i := dirHash(addr) & mask
	for d.used[i] {
		i = (i + 1) & mask
	}
	d.keys[i] = addr
	d.used[i] = true
	d.count++
	e := &d.vals[i]
	e.Sharers = 0
	e.Owner = -1
	e.State = Uncached
	return e
}

// remove deletes addr's slot, restoring the linear-probing invariant by
// backward-shifting displaced entries into the hole.
func (d *Directory) remove(addr mem.LineAddr) {
	s := d.findSlot(addr)
	if s < 0 {
		return
	}
	mask := uint64(len(d.keys) - 1)
	i := uint64(s)
	for {
		d.used[i] = false
		j := i
		for {
			j = (j + 1) & mask
			if !d.used[j] {
				d.count--
				return
			}
			// Slot j's entry may fill the hole at i only if its home slot is
			// not cyclically inside (i, j] — otherwise probing would no
			// longer reach it.
			if h := dirHash(d.keys[j]) & mask; (j-h)&mask >= (j-i)&mask {
				d.keys[i] = d.keys[j]
				d.vals[i] = d.vals[j]
				d.used[i] = true
				i = j
				break
			}
		}
	}
}

// Lookup returns the entry for addr, or nil if the directory has no record.
func (d *Directory) Lookup(addr mem.LineAddr) *Entry {
	if i := d.findSlot(addr); i >= 0 {
		return &d.vals[i]
	}
	return nil
}

// Entries returns the number of tracked lines.
func (d *Directory) Entries() int { return d.count }

// InvalidationsSent returns the number of invalidation messages generated.
func (d *Directory) InvalidationsSent() int64 { return d.invalidationsSent }

// DowngradesSent returns the number of downgrade messages generated.
func (d *Directory) DowngradesSent() int64 { return d.downgradesSent }

// DirtyForwards returns the number of dirty-data forwards.
func (d *Directory) DirtyForwards() int64 { return d.dirtyForwards }

// Read records core performing a read (load or instruction fetch) of addr
// and returns the coherence action it implies.
func (d *Directory) Read(addr mem.LineAddr, core int) Action {
	e := d.entry(addr)
	act := Action{DowngradeCore: -1}
	switch e.State {
	case Uncached:
		// First reader: grant the line exclusively (MESI E state).
		e.State = SharedClean
		e.Owner = core
	case SharedClean:
		if e.Owner >= 0 && e.Owner != core {
			// Another core holds the exclusive grant and may have silently
			// modified its copy: it must be downgraded before the requester
			// can read.  The simulator forwards dirty data only if the copy
			// really is dirty.
			act.DowngradeCore = e.Owner
			d.downgradesSent++
			e.Owner = -1
		}
	case OwnedModified:
		if e.Owner != core {
			// Owner must downgrade and push its dirty data to the L3, which
			// then forwards it to the requester.
			act.DowngradeCore = e.Owner
			act.DirtyForward = true
			act.WritebackToL3 = true
			d.downgradesSent++
			d.dirtyForwards++
			e.Owner = -1
			e.State = SharedClean
		}
	}
	e.Sharers |= 1 << uint(core)
	return act
}

// Write records core performing a store to addr and returns the coherence
// action: every other sharer is invalidated and, if a different core owned
// the line Modified, its dirty data is forwarded to the requester.
func (d *Directory) Write(addr mem.LineAddr, core int) Action {
	e := d.entry(addr)
	act := Action{DowngradeCore: -1}
	if e.State == OwnedModified && e.Owner == core {
		return act // silent upgrade of the current owner
	}
	act.Invalidates = CoreSet(e.Sharers) &^ (1 << uint(core))
	d.invalidationsSent += int64(act.Invalidates.Len())
	if e.State == OwnedModified && e.Owner != core {
		act.DirtyForward = true
		act.WritebackToL3 = true
		d.dirtyForwards++
	}
	e.Sharers = 1 << uint(core)
	e.Owner = core
	e.State = OwnedModified
	return act
}

// SharerEvicted records that core silently evicted its private copy of addr
// (clean eviction).  Dirty private evictions should use SharerWroteBack.
func (d *Directory) SharerEvicted(addr mem.LineAddr, core int) {
	e := d.Lookup(addr)
	if e == nil {
		return
	}
	e.Sharers &^= 1 << uint(core)
	if e.Owner == core {
		e.Owner = -1
		if e.State == OwnedModified {
			e.State = SharedClean
		}
	}
	if e.Sharers == 0 {
		e.reset()
	}
}

// SharerWroteBack records that core evicted a dirty private copy of addr and
// wrote the data back to the L3.
func (d *Directory) SharerWroteBack(addr mem.LineAddr, core int) {
	e := d.Lookup(addr)
	if e == nil {
		return
	}
	e.Sharers &^= 1 << uint(core)
	if e.Owner == core {
		e.Owner = -1
	}
	if e.Sharers == 0 {
		e.reset()
	} else {
		e.State = SharedClean
	}
}

// InvalidateLine is called when the L3 itself drops addr (inclusion victim,
// refresh-policy invalidation, or decay).  It returns the action needed to
// keep the hierarchy inclusive: every private copy must be invalidated, and
// a Modified private copy must be written back (to DRAM, since the L3 copy
// is going away).
func (d *Directory) InvalidateLine(addr mem.LineAddr) Action {
	act := Action{DowngradeCore: -1}
	e := d.Lookup(addr)
	if e == nil {
		return act
	}
	act.Invalidates = CoreSet(e.Sharers)
	d.invalidationsSent += int64(act.Invalidates.Len())
	if e.Owner >= 0 {
		// Either a recorded Modified owner or an exclusive grant holder that
		// may have silently modified its copy.
		act.DirtyForward = e.State == OwnedModified
		if act.DirtyForward {
			d.dirtyForwards++
		}
	}
	d.remove(addr)
	return act
}

// HasUpperCopies reports whether any private cache still holds addr.
func (d *Directory) HasUpperCopies(addr mem.LineAddr) bool {
	e := d.Lookup(addr)
	return e != nil && e.Sharers != 0
}

// OwnedDirtyAbove reports whether some private cache holds addr Modified,
// i.e. the L3's copy may be stale.  The refresh policies cannot see this
// (Section 3.2 "the policies are unable to disambiguate lines that, within
// the same state, behave differently"), but the simulator needs it to keep
// the data correct when such a line is invalidated.
func (d *Directory) OwnedDirtyAbove(addr mem.LineAddr) bool {
	e := d.Lookup(addr)
	return e != nil && e.State == OwnedModified
}
