// Package coherence implements the directory-based MESI protocol the paper
// keeps at the shared L3 (Table 5.1, "Directory MESI protocol at L3").
//
// The directory is a full-map directory: for every line present in the L3 it
// records which cores hold a copy in their private (L1/L2) hierarchy and
// whether one of them owns it in Modified state.  The simulator consults the
// directory on every L3 access to learn which coherence actions (remote
// invalidations, downgrades, dirty-data forwards) the access implies, and
// notifies the directory when private caches evict lines or when the L3
// itself invalidates a line (inclusion victims and refresh-policy
// invalidations both flow through here).
//
// MESI's Exclusive state is represented as a SharedClean entry whose Owner
// field records the core holding the exclusive grant.  Because that core may
// upgrade its copy to Modified silently (the point of the E state), any later
// access by a different core probes/downgrades the grant holder exactly as it
// would a Modified owner; whether dirty data actually moves is decided by the
// simulator from the owner's real cache state.
package coherence

import "refrint/internal/mem"

// DirState is the directory's view of a line.
type DirState uint8

// Directory states.
const (
	// Uncached: no private cache holds the line.
	Uncached DirState = iota
	// SharedClean: one or more private caches hold a clean copy.
	SharedClean
	// OwnedModified: exactly one private cache holds the line in M state.
	OwnedModified
)

// String implements fmt.Stringer.
func (s DirState) String() string {
	switch s {
	case Uncached:
		return "U"
	case SharedClean:
		return "S"
	case OwnedModified:
		return "M"
	default:
		return "?"
	}
}

// Entry is the directory record of one L3-resident line.
type Entry struct {
	Sharers uint32 // bitmask of cores holding the line in private caches
	Owner   int    // core holding it Modified, or -1
	State   DirState
}

// reset returns the entry to Uncached.
func (e *Entry) reset() {
	e.Sharers = 0
	e.Owner = -1
	e.State = Uncached
}

// HasSharer reports whether core holds the line.
func (e *Entry) HasSharer(core int) bool { return e.Sharers&(1<<uint(core)) != 0 }

// NumSharers returns the number of private caches holding the line.
func (e *Entry) NumSharers() int {
	n := 0
	for m := e.Sharers; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// SharerList returns the core ids of all sharers.
func (e *Entry) SharerList() []int {
	var out []int
	for c := 0; c < 32; c++ {
		if e.HasSharer(c) {
			out = append(out, c)
		}
	}
	return out
}

// Action describes the coherence work an access or invalidation implies.
// The simulator turns each element into network messages and cache
// operations.
type Action struct {
	// InvalidateCores are cores whose private copies must be invalidated.
	InvalidateCores []int
	// DowngradeCore is a core that must downgrade M->S and write its dirty
	// data back to the L3 (-1 if none).
	DowngradeCore int
	// DirtyForward reports whether dirty data had to be fetched from the
	// downgraded/invalidated owner (the requester receives the latest data).
	DirtyForward bool
	// WritebackToL3 reports whether the action causes dirty data to be
	// written into the L3 (making the L3 copy dirty relative to DRAM).
	WritebackToL3 bool
}

// Directory is the full-map MESI directory for one L3 bank.
type Directory struct {
	cores   int
	entries map[mem.LineAddr]*Entry

	// Counters.
	invalidationsSent int64
	downgradesSent    int64
	dirtyForwards     int64
}

// New builds an empty directory for a bank shared by `cores` cores.
func New(cores int) *Directory {
	return &Directory{cores: cores, entries: make(map[mem.LineAddr]*Entry)}
}

// entry returns the record for addr, creating it Uncached if absent.
func (d *Directory) entry(addr mem.LineAddr) *Entry {
	e, ok := d.entries[addr]
	if !ok {
		e = &Entry{Owner: -1}
		d.entries[addr] = e
	}
	return e
}

// Lookup returns the entry for addr, or nil if the directory has no record.
func (d *Directory) Lookup(addr mem.LineAddr) *Entry {
	return d.entries[addr]
}

// Entries returns the number of tracked lines.
func (d *Directory) Entries() int { return len(d.entries) }

// InvalidationsSent returns the number of invalidation messages generated.
func (d *Directory) InvalidationsSent() int64 { return d.invalidationsSent }

// DowngradesSent returns the number of downgrade messages generated.
func (d *Directory) DowngradesSent() int64 { return d.downgradesSent }

// DirtyForwards returns the number of dirty-data forwards.
func (d *Directory) DirtyForwards() int64 { return d.dirtyForwards }

// Read records core performing a read (load or instruction fetch) of addr
// and returns the coherence action it implies.
func (d *Directory) Read(addr mem.LineAddr, core int) Action {
	e := d.entry(addr)
	act := Action{DowngradeCore: -1}
	switch e.State {
	case Uncached:
		// First reader: grant the line exclusively (MESI E state).
		e.State = SharedClean
		e.Owner = core
	case SharedClean:
		if e.Owner >= 0 && e.Owner != core {
			// Another core holds the exclusive grant and may have silently
			// modified its copy: it must be downgraded before the requester
			// can read.  The simulator forwards dirty data only if the copy
			// really is dirty.
			act.DowngradeCore = e.Owner
			d.downgradesSent++
			e.Owner = -1
		}
	case OwnedModified:
		if e.Owner != core {
			// Owner must downgrade and push its dirty data to the L3, which
			// then forwards it to the requester.
			act.DowngradeCore = e.Owner
			act.DirtyForward = true
			act.WritebackToL3 = true
			d.downgradesSent++
			d.dirtyForwards++
			e.Owner = -1
			e.State = SharedClean
		}
	}
	e.Sharers |= 1 << uint(core)
	return act
}

// Write records core performing a store to addr and returns the coherence
// action: every other sharer is invalidated and, if a different core owned
// the line Modified, its dirty data is forwarded to the requester.
func (d *Directory) Write(addr mem.LineAddr, core int) Action {
	e := d.entry(addr)
	act := Action{DowngradeCore: -1}
	if e.State == OwnedModified && e.Owner == core {
		return act // silent upgrade of the current owner
	}
	for _, sharer := range e.SharerList() {
		if sharer == core {
			continue
		}
		act.InvalidateCores = append(act.InvalidateCores, sharer)
		d.invalidationsSent++
	}
	if e.State == OwnedModified && e.Owner != core {
		act.DirtyForward = true
		act.WritebackToL3 = true
		d.dirtyForwards++
	}
	e.Sharers = 1 << uint(core)
	e.Owner = core
	e.State = OwnedModified
	return act
}

// SharerEvicted records that core silently evicted its private copy of addr
// (clean eviction).  Dirty private evictions should use SharerWroteBack.
func (d *Directory) SharerEvicted(addr mem.LineAddr, core int) {
	e, ok := d.entries[addr]
	if !ok {
		return
	}
	e.Sharers &^= 1 << uint(core)
	if e.Owner == core {
		e.Owner = -1
		if e.State == OwnedModified {
			e.State = SharedClean
		}
	}
	if e.Sharers == 0 {
		e.reset()
	}
}

// SharerWroteBack records that core evicted a dirty private copy of addr and
// wrote the data back to the L3.
func (d *Directory) SharerWroteBack(addr mem.LineAddr, core int) {
	e, ok := d.entries[addr]
	if !ok {
		return
	}
	e.Sharers &^= 1 << uint(core)
	if e.Owner == core {
		e.Owner = -1
	}
	if e.Sharers == 0 {
		e.reset()
	} else {
		e.State = SharedClean
	}
}

// InvalidateLine is called when the L3 itself drops addr (inclusion victim,
// refresh-policy invalidation, or decay).  It returns the action needed to
// keep the hierarchy inclusive: every private copy must be invalidated, and
// a Modified private copy must be written back (to DRAM, since the L3 copy
// is going away).
func (d *Directory) InvalidateLine(addr mem.LineAddr) Action {
	act := Action{DowngradeCore: -1}
	e, ok := d.entries[addr]
	if !ok {
		return act
	}
	for _, sharer := range e.SharerList() {
		act.InvalidateCores = append(act.InvalidateCores, sharer)
		d.invalidationsSent++
	}
	if e.Owner >= 0 {
		// Either a recorded Modified owner or an exclusive grant holder that
		// may have silently modified its copy.
		act.DirtyForward = e.State == OwnedModified
		if act.DirtyForward {
			d.dirtyForwards++
		}
	}
	delete(d.entries, addr)
	return act
}

// HasUpperCopies reports whether any private cache still holds addr.
func (d *Directory) HasUpperCopies(addr mem.LineAddr) bool {
	e, ok := d.entries[addr]
	return ok && e.Sharers != 0
}

// OwnedDirtyAbove reports whether some private cache holds addr Modified,
// i.e. the L3's copy may be stale.  The refresh policies cannot see this
// (Section 3.2 "the policies are unable to disambiguate lines that, within
// the same state, behave differently"), but the simulator needs it to keep
// the data correct when such a line is invalidated.
func (d *Directory) OwnedDirtyAbove(addr mem.LineAddr) bool {
	e, ok := d.entries[addr]
	return ok && e.State == OwnedModified
}
