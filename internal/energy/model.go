package energy

import (
	"fmt"

	"refrint/internal/stats"
)

// Breakdown is the energy of one simulation run, decomposed the two ways the
// paper's figures need it plus the whole-system view, all in Joules.
type Breakdown struct {
	// Per-level decomposition (Figure 6.1).
	IL1 float64
	DL1 float64
	L2  float64
	L3  float64
	// DRAM energy (both figures include it).
	DRAM float64

	// Per-component decomposition of the on-chip memory energy (Figure 6.2).
	Dynamic float64 // on-chip cache dynamic (lookup, fill, writeback) energy
	Leakage float64 // on-chip cache leakage integrated over the run
	Refresh float64 // on-chip refresh energy

	// Whole-system extras (Figure 6.3).
	Core float64 // core dynamic + leakage
	NoC  float64 // network dynamic + leakage
}

// MemoryHierarchy returns the paper's "memory hierarchy energy":
// L1 + L2 + L3 + DRAM (Section 6.1).
func (b Breakdown) MemoryHierarchy() float64 {
	return b.IL1 + b.DL1 + b.L2 + b.L3 + b.DRAM
}

// OnChipMemory returns the on-chip portion (without DRAM).
func (b Breakdown) OnChipMemory() float64 {
	return b.IL1 + b.DL1 + b.L2 + b.L3
}

// Total returns the whole-system energy of Figure 6.3:
// cores + caches + network + DRAM.
func (b Breakdown) Total() float64 {
	return b.MemoryHierarchy() + b.Core + b.NoC
}

// String implements fmt.Stringer with a compact engineering summary.
func (b Breakdown) String() string {
	return fmt.Sprintf("mem=%.3gJ (L1=%.3g L2=%.3g L3=%.3g DRAM=%.3g | dyn=%.3g leak=%.3g refresh=%.3g) core=%.3g noc=%.3g total=%.3g",
		b.MemoryHierarchy(), b.IL1+b.DL1, b.L2, b.L3, b.DRAM, b.Dynamic, b.Leakage, b.Refresh, b.Core, b.NoC, b.Total())
}

// Model accumulates energy for one configuration.
type Model struct {
	Params Parameters
}

// NewModel returns a Model with the given parameters.
func NewModel(p Parameters) *Model { return &Model{Params: p} }

// Compute converts a finished run's counters into an energy breakdown.
//
// The decompositions are consistent with each other: the sum of the
// per-level on-chip energies equals Dynamic + Leakage + Refresh, and DRAM is
// identical in both views.
func (m *Model) Compute(s *stats.Stats) Breakdown {
	p := m.Params
	seconds := float64(s.Cycles) * p.ClockPeriodS

	var b Breakdown

	type levelParams struct {
		level    stats.Level
		accessJ  float64
		refreshJ float64
		leakW    float64
		out      *float64
	}
	levels := []levelParams{
		{stats.IL1, p.IL1AccessJ, p.IL1RefreshJ, p.IL1LeakW, &b.IL1},
		{stats.DL1, p.DL1AccessJ, p.DL1RefreshJ, p.DL1LeakW, &b.DL1},
		{stats.L2, p.L2AccessJ, p.L2RefreshJ, p.L2LeakW, &b.L2},
		{stats.L3, p.L3AccessJ, p.L3RefreshJ, p.L3LeakW, &b.L3},
	}
	for _, lp := range levels {
		c := s.Level(lp.level)
		// Dynamic: every lookup, plus fills and writebacks, costs one access.
		dynOps := c.Accesses() + c.Fills + c.Writebacks
		if lp.level == stats.IL1 {
			// Every retired instruction is fetched from the IL1.  The
			// workload generators only emit explicit references for data and
			// for code lines that exercise the lower levels, so the
			// per-instruction fetch energy is charged here (the simulated
			// reference stream abstracts the fetch of each instruction).
			dynOps += s.Instructions
		}
		dyn := float64(dynOps) * lp.accessJ
		refresh := float64(c.Refreshes) * lp.refreshJ
		leak := lp.leakW * p.CellLeakageRatio * seconds

		*lp.out = dyn + refresh + leak
		b.Dynamic += dyn
		b.Refresh += refresh
		b.Leakage += leak
	}

	// DRAM: every access (demand misses from L3, writebacks, and the
	// end-of-run flush) costs a fixed energy.
	b.DRAM = float64(s.DRAMAccesses()) * p.DRAMAccessJ

	// NoC: per-flit-hop dynamic energy plus leakage over the run.
	b.NoC = float64(s.NoCFlits)*p.NoCHopJ + p.NoCLeakW*seconds

	// Cores: dynamic energy per instruction plus leakage over the run.
	b.Core = float64(s.Instructions)*p.CoreDynPerInstrJ + p.CoreLeakW*seconds

	return b
}
