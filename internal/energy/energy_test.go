package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"refrint/internal/config"
	"refrint/internal/stats"
)

func TestNewParametersSRAMvsEDRAMLeakageRatio(t *testing.T) {
	full := config.FullSize()
	sram := NewParameters(config.AsSRAM(full))
	edram := NewParameters(config.AsEDRAM(full, config.PeriodicAll, config.Retention50us))
	if sram.CellLeakageRatio != 1.0 {
		t.Errorf("SRAM leakage ratio = %v, want 1", sram.CellLeakageRatio)
	}
	if edram.CellLeakageRatio != 0.25 {
		t.Errorf("eDRAM leakage ratio = %v, want 0.25 (Table 5.2)", edram.CellLeakageRatio)
	}
	// Access energies identical between technologies (Table 5.2).
	if sram.L3AccessJ != edram.L3AccessJ || sram.L2AccessJ != edram.L2AccessJ {
		t.Error("access energy must not depend on cell technology")
	}
}

func TestRefreshEnergyEqualsAccessEnergy(t *testing.T) {
	p := NewParameters(config.FullSize())
	if p.IL1RefreshJ != p.IL1AccessJ || p.DL1RefreshJ != p.DL1AccessJ ||
		p.L2RefreshJ != p.L2AccessJ || p.L3RefreshJ != p.L3AccessJ {
		t.Error("Table 5.2: refresh energy of a line must equal its access energy")
	}
}

func TestParametersLevelOrdering(t *testing.T) {
	p := NewParameters(config.FullSize())
	if !(p.IL1AccessJ < p.L2AccessJ && p.L2AccessJ < p.L3AccessJ) {
		t.Errorf("access energy should grow with capacity: %v %v %v", p.IL1AccessJ, p.L2AccessJ, p.L3AccessJ)
	}
	if !(p.L3LeakW > p.L2LeakW) {
		t.Errorf("total L3 leakage should exceed total L2 leakage: %v vs %v", p.L3LeakW, p.L2LeakW)
	}
	if p.ClockPeriodS != 1e-9 {
		t.Errorf("clock period = %v, want 1ns at 1GHz", p.ClockPeriodS)
	}
}

func TestScaledParametersIdenticalToFullSize(t *testing.T) {
	// The Scaled preset is a time-compressed stand-in for the full-size
	// machine, so per-event energies and leakage powers must be identical
	// (DESIGN.md section 4.7).
	full := NewParameters(config.FullSize())
	scaled := NewParameters(config.Scaled())
	if scaled != full {
		t.Errorf("scaled parameters differ from full-size:\n%+v\n%+v", scaled, full)
	}
}

func runStats() *stats.Stats {
	s := stats.New(16)
	s.Cycles = 1_000_000
	s.Instructions = 10_000_000
	s.Level(stats.DL1).Reads = 500_000
	s.Level(stats.DL1).Writes = 200_000
	s.Level(stats.DL1).Hits = 650_000
	s.Level(stats.DL1).Misses = 50_000
	s.Level(stats.L2).Reads = 50_000
	s.Level(stats.L2).Hits = 40_000
	s.Level(stats.L2).Misses = 10_000
	s.Level(stats.L3).Reads = 10_000
	s.Level(stats.L3).Hits = 8_000
	s.Level(stats.L3).Misses = 2_000
	s.Level(stats.L3).Refreshes = 100_000
	s.Level(stats.DRAM).Reads = 2_000
	s.NoCFlits = 80_000
	s.NoCHops = 20_000
	return s
}

func TestComputeDecompositionsConsistent(t *testing.T) {
	m := NewModel(NewParameters(config.AsEDRAM(config.FullSize(), config.PeriodicAll, config.Retention50us)))
	b := m.Compute(runStats())
	onChipByLevel := b.OnChipMemory()
	onChipByComponent := b.Dynamic + b.Leakage + b.Refresh
	if math.Abs(onChipByLevel-onChipByComponent) > 1e-12*onChipByLevel {
		t.Errorf("per-level (%.6g) and per-component (%.6g) on-chip decompositions disagree", onChipByLevel, onChipByComponent)
	}
	if b.MemoryHierarchy() != onChipByLevel+b.DRAM {
		t.Error("MemoryHierarchy must be on-chip + DRAM")
	}
	if b.Total() <= b.MemoryHierarchy() {
		t.Error("Total must add core and NoC energy on top of the memory hierarchy")
	}
}

func TestComputeRefreshEnergyCounted(t *testing.T) {
	cfg := config.AsEDRAM(config.FullSize(), config.PeriodicAll, config.Retention50us)
	m := NewModel(NewParameters(cfg))
	s := runStats()
	withRefresh := m.Compute(s)
	s.Level(stats.L3).Refreshes = 0
	withoutRefresh := m.Compute(s)
	if withRefresh.Refresh <= withoutRefresh.Refresh {
		t.Error("refresh counter must increase refresh energy")
	}
	diff := withRefresh.Refresh - withoutRefresh.Refresh
	want := 100_000 * m.Params.L3RefreshJ
	if math.Abs(diff-want) > 1e-12*want {
		t.Errorf("refresh energy delta = %v, want %v", diff, want)
	}
}

func TestComputeLeakageScalesWithTimeAndTechnology(t *testing.T) {
	full := config.FullSize()
	sramModel := NewModel(NewParameters(config.AsSRAM(full)))
	edramModel := NewModel(NewParameters(config.AsEDRAM(full, config.PeriodicAll, config.Retention50us)))

	s := runStats()
	sramB := sramModel.Compute(s)
	edramB := edramModel.Compute(s)
	// Same counters: eDRAM leakage must be exactly 1/4 of SRAM leakage.
	ratio := edramB.Leakage / sramB.Leakage
	if math.Abs(ratio-0.25) > 1e-9 {
		t.Errorf("eDRAM/SRAM leakage ratio = %v, want 0.25", ratio)
	}

	// Double the run length: leakage doubles, dynamic unchanged.
	s2 := runStats()
	s2.Cycles *= 2
	b2 := sramModel.Compute(s2)
	if math.Abs(b2.Leakage-2*sramB.Leakage) > 1e-9*b2.Leakage {
		t.Errorf("leakage should double with run length: %v vs %v", b2.Leakage, sramB.Leakage)
	}
	if b2.Dynamic != sramB.Dynamic {
		t.Error("dynamic energy must not depend on run length")
	}
}

func TestComputeDRAMEnergy(t *testing.T) {
	m := NewModel(NewParameters(config.FullSize()))
	s := stats.New(1)
	s.Cycles = 1000
	s.Level(stats.DRAM).Reads = 10
	s.FlushWritebacks = 5
	b := m.Compute(s)
	want := 15 * m.Params.DRAMAccessJ
	if math.Abs(b.DRAM-want) > 1e-18 {
		t.Errorf("DRAM energy = %v, want %v (flush writebacks must be charged)", b.DRAM, want)
	}
}

func TestComputeMonotoneInActivityProperty(t *testing.T) {
	m := NewModel(NewParameters(config.FullSize()))
	f := func(extraReads uint16, extraRefreshes uint16) bool {
		s1 := runStats()
		s2 := runStats()
		s2.Level(stats.L3).Reads += int64(extraReads)
		s2.Level(stats.L3).Refreshes += int64(extraRefreshes)
		b1, b2 := m.Compute(s1), m.Compute(s2)
		return b2.MemoryHierarchy() >= b1.MemoryHierarchy() && b2.Total() >= b1.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBreakdownString(t *testing.T) {
	m := NewModel(NewParameters(config.FullSize()))
	out := m.Compute(runStats()).String()
	for _, want := range []string{"mem=", "total=", "refresh="} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
}

func TestParametersIndependentOfPolicy(t *testing.T) {
	// Energy constants must not depend on the refresh policy, only on the
	// cell technology.
	full := config.FullSize()
	a := NewParameters(config.AsEDRAM(full, config.PeriodicAll, config.Retention50us))
	b := NewParameters(config.AsEDRAM(full, config.RefrintWB(32, 32), config.Retention200us))
	if a != b {
		t.Error("parameters should not depend on the refresh policy or retention time")
	}
}
