// Package energy converts the raw event counts collected by package stats
// into Joules, following the accounting the paper uses:
//
//   - per-access dynamic energy and leakage power per cache level come from a
//     CACTI-like table for 32 nm LOP SRAM (Parameters);
//   - eDRAM inherits the same access energy and access time, one quarter of
//     the leakage power, and a refresh energy per line equal to the access
//     energy (Table 5.2);
//   - DRAM is charged a fixed energy per access;
//   - cores and NoC routers/links contribute dynamic energy per unit of
//     activity plus leakage, and are only used for the "total energy" view of
//     Figure 6.3.
//
// Absolute Joule values are representative, not calibrated against the
// authors' CACTI/McPAT runs; every result the harness reports is normalized
// to the full-SRAM baseline exactly as the paper does, so only the ratios in
// Table 5.2 and the relative magnitude of the components matter.
package energy

import "refrint/internal/config"

// Parameters holds the per-component energy/power constants for one system
// configuration, in SI units (Joules, Watts, seconds).
type Parameters struct {
	// Per-access dynamic energy, in Joules, per cache lookup at each level.
	IL1AccessJ float64
	DL1AccessJ float64
	L2AccessJ  float64
	L3AccessJ  float64

	// Leakage power in Watts for the entire level (all banks), for the SRAM
	// implementation.  The eDRAM implementation multiplies these by
	// CellLeakageRatio.
	IL1LeakW float64
	DL1LeakW float64
	L2LeakW  float64
	L3LeakW  float64

	// CellLeakageRatio is Table 5.2's leakage ratio (1.0 SRAM, 0.25 eDRAM).
	CellLeakageRatio float64

	// RefreshJ is the energy of refreshing one line at each level; the paper
	// sets it equal to the access energy.
	IL1RefreshJ float64
	DL1RefreshJ float64
	L2RefreshJ  float64
	L3RefreshJ  float64

	// DRAMAccessJ is the energy of one off-chip DRAM access (row activation,
	// transfer of one 64-byte line and I/O).
	DRAMAccessJ float64

	// NoC energy.
	NoCHopJ   float64 // router traversal + link, per flit per hop
	NoCLeakW  float64 // all routers and links
	FlitBytes int

	// Core energy (Figure 6.3 only).
	CoreDynPerInstrJ float64 // average dynamic energy per retired instruction
	CoreLeakW        float64 // leakage of all cores combined

	// ClockPeriodS converts cycles into seconds.
	ClockPeriodS float64
}

// Representative 32 nm LOP constants.  The absolute values are in the range
// CACTI 5.1 reports for caches of these sizes at 32 nm low-operating-power
// transistors; they only need to be mutually consistent because all reported
// results are normalized to the full-SRAM configuration.
const (
	baseIL1AccessJ = 20e-12  // 20 pJ per 32 KB I-cache access
	baseDL1AccessJ = 25e-12  // 25 pJ per 32 KB D-cache access
	baseL2AccessJ  = 60e-12  // 60 pJ per 256 KB access
	baseL3AccessJ  = 180e-12 // 180 pJ per 1 MB bank access

	baseIL1LeakW = 0.012 // per core, W
	baseDL1LeakW = 0.014 // per core
	baseL2LeakW  = 0.100 // per core
	baseL3LeakW  = 0.550 // per bank

	baseDRAMAccessJ = 12e-9 // 12 nJ per 64-byte line

	baseNoCHopJ  = 8e-12 // per flit-hop
	baseNoCLeakW = 0.08  // whole 4x4 torus

	baseCoreDynPerInstrJ = 150e-12 // simple 2-issue core at low voltage
	baseCoreLeakW        = 0.25    // per core
)

// NewParameters derives the energy parameters for a configuration.
//
// The constants always describe the paper's full-size hierarchy (Table 5.1),
// regardless of the preset's cache capacities: the Scaled preset is a
// time-compressed stand-in for the full-size machine, so per-event energies
// and leakage powers must stay those of the full-size arrays for the
// normalized results to be comparable (see DESIGN.md section 4.7).  Only the
// cell-technology leakage ratio and the clock period depend on the
// configuration.
func NewParameters(cfg config.Config) Parameters {
	cores := float64(cfg.Cores)
	banks := float64(cfg.L3.Banks)

	p := Parameters{
		IL1AccessJ: baseIL1AccessJ,
		DL1AccessJ: baseDL1AccessJ,
		L2AccessJ:  baseL2AccessJ,
		L3AccessJ:  baseL3AccessJ,

		IL1LeakW: baseIL1LeakW * cores,
		DL1LeakW: baseDL1LeakW * cores,
		L2LeakW:  baseL2LeakW * cores,
		L3LeakW:  baseL3LeakW * banks,

		CellLeakageRatio: cfg.Cell.LeakageRatio,

		DRAMAccessJ: baseDRAMAccessJ,

		NoCHopJ:   baseNoCHopJ,
		NoCLeakW:  baseNoCLeakW,
		FlitBytes: cfg.NoC.LinkWidth,

		CoreDynPerInstrJ: baseCoreDynPerInstrJ,
		CoreLeakW:        baseCoreLeakW * cores,

		ClockPeriodS: 1.0 / (float64(cfg.FreqMHz) * 1e6),
	}
	// Refresh energy of a line equals the access energy of the line
	// (Table 5.2: "Refresh energy = access energy").
	p.IL1RefreshJ = p.IL1AccessJ
	p.DL1RefreshJ = p.DL1AccessJ
	p.L2RefreshJ = p.L2AccessJ
	p.L3RefreshJ = p.L3AccessJ
	return p
}
