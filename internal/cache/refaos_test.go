package cache

// This file retains the pre-refactor array-of-structs cache as a test-only
// reference model.  The differential test below drives the production SoA
// implementation and this reference through identical randomized operation
// sequences and asserts that every externally visible decision — hit/miss,
// victim choice, eviction, line metadata, flush contents — is identical.
// The reference deliberately mirrors the old implementation line for line
// (a []mem.Line array with pointer handles), because "same decisions as the
// AoS code" is exactly the property the golden series depend on.

import (
	"fmt"
	"math/rand"
	"testing"

	"refrint/internal/config"
	"refrint/internal/mem"
)

// refAoS is the old array-of-structs implementation.
type refAoS struct {
	cfg     config.CacheConfig
	sets    int
	ways    int
	shift   uint
	setMask int
	lines   []mem.Line
}

func newRefAoS(cfg config.CacheConfig) *refAoS {
	sets := cfg.Sets()
	mask := -1
	if sets > 0 && sets&(sets-1) == 0 {
		mask = sets - 1
	}
	return &refAoS{
		cfg:     cfg,
		sets:    sets,
		ways:    cfg.Ways,
		shift:   uint(cfg.IndexShift),
		setMask: mask,
		lines:   make([]mem.Line, sets*cfg.Ways),
	}
}

func (c *refAoS) setOf(addr mem.LineAddr) int {
	idx := uint64(addr) >> c.shift
	if c.setMask >= 0 {
		return int(idx) & c.setMask
	}
	return int(idx % uint64(c.sets))
}

func (c *refAoS) probe(addr mem.LineAddr) (*mem.Line, bool) {
	base := c.setOf(addr) * c.ways
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.Tag == addr && l.Valid() {
			return l, true
		}
	}
	return nil, false
}

func (c *refAoS) touch(l *mem.Line, now int64) {
	l.LRU = now
	l.LastTouch = now
	l.LastRefresh = now
	l.Sentry = true
}

func (c *refAoS) victim(addr mem.LineAddr) *mem.Line {
	base := c.setOf(addr) * c.ways
	for i := base; i < base+c.ways; i++ {
		if !c.lines[i].Valid() {
			return &c.lines[i]
		}
	}
	v := &c.lines[base]
	for i := base + 1; i < base+c.ways; i++ {
		if c.lines[i].LRU < v.LRU {
			v = &c.lines[i]
		}
	}
	return v
}

func (c *refAoS) insert(addr mem.LineAddr, state mem.State, now int64) (frame *mem.Line, victim mem.Line, evicted bool) {
	frame = c.victim(addr)
	victim = *frame
	evicted = victim.Valid()
	frame.Reset()
	frame.Tag = addr
	frame.State = state
	c.touch(frame, now)
	return frame, victim, evicted
}

func (c *refAoS) invalidate(addr mem.LineAddr) (mem.Line, bool) {
	l, ok := c.probe(addr)
	if !ok {
		return mem.Line{}, false
	}
	old := *l
	l.Reset()
	return old, true
}

func (c *refAoS) indexOf(l *mem.Line) int {
	for i := range c.lines {
		if &c.lines[i] == l {
			return i
		}
	}
	return -1
}

func (c *refAoS) flush() []mem.Line {
	var dirty []mem.Line
	for i := range c.lines {
		if c.lines[i].Dirty() {
			dirty = append(dirty, c.lines[i])
		}
	}
	clear(c.lines)
	return dirty
}

func (c *refAoS) validCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid() {
			n++
		}
	}
	return n
}

func (c *refAoS) dirtyCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Dirty() {
			n++
		}
	}
	return n
}

// diffConfigs are the shapes the differential test covers: the associativity
// sweep the benchmarks use, plus a single-set and a non-power-of-two-ways
// geometry so both the masked and reduced set-index paths are exercised.
func diffConfigs() []config.CacheConfig {
	mk := func(name string, size, ways int) config.CacheConfig {
		return config.CacheConfig{
			Name:       name,
			SizeBytes:  size,
			Ways:       ways,
			LineSize:   64,
			AccessTime: 1,
			Write:      config.WriteBack,
			Banks:      1,
			SubArrays:  4,
		}
	}
	return []config.CacheConfig{
		mk("4way", 16<<10, 4),
		mk("8way", 16<<10, 8),
		mk("16way", 16<<10, 16),
		mk("singleset", 1<<10, 16),
		mk("3way", 12<<10, 3),
	}
}

// stateFor picks an insert state with the rough dirty/clean mix of a run.
func stateFor(rng *rand.Rand) mem.State {
	switch rng.Intn(4) {
	case 0:
		return mem.Modified
	case 1:
		return mem.Shared
	default:
		return mem.Exclusive
	}
}

// TestDifferentialSoAvsAoS drives both implementations through randomized
// access/invalidate/flush/sweep sequences and requires identical decisions.
func TestDifferentialSoAvsAoS(t *testing.T) {
	for _, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				runDifferentialSequence(t, cfg, seed)
			}
		})
	}
}

func runDifferentialSequence(t *testing.T, cfg config.CacheConfig, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	soa := New(cfg)
	aos := newRefAoS(cfg)
	// Address space ~4x capacity so sets fill and evictions are common.
	addrSpace := int64(soa.NumLines() * 4)
	now := int64(0)
	var flushBuf []mem.Line

	checkLine := func(op string, f Frame, l *mem.Line) {
		t.Helper()
		if got, want := soa.Line(f), *l; got != want {
			t.Fatalf("seed %d %s: frame %d = %+v, reference = %+v", seed, op, f, got, want)
		}
		if got, want := soa.IndexOf(f), aos.indexOf(l); got != want {
			t.Fatalf("seed %d %s: frame index %d, reference index %d", seed, op, got, want)
		}
	}

	for step := 0; step < 4000; step++ {
		now++
		addr := mem.LineAddr(rng.Int63n(addrSpace))
		switch op := rng.Intn(100); {
		case op < 60: // access: probe, touch on hit, insert on miss
			f, okS := soa.Probe(addr)
			l, okA := aos.probe(addr)
			if okS != okA {
				t.Fatalf("seed %d step %d: Probe(%#x) = %v, reference = %v", seed, step, addr, okS, okA)
			}
			if okS {
				soa.Touch(f, now)
				aos.touch(l, now)
				checkLine("touch", f, l)
				continue
			}
			// Cross-check the victim choice before inserting.
			vf := soa.Victim(addr)
			vl := aos.victim(addr)
			if got, want := soa.IndexOf(vf), aos.indexOf(vl); got != want {
				t.Fatalf("seed %d step %d: Victim(%#x) frame %d, reference %d", seed, step, addr, got, want)
			}
			st := stateFor(rng)
			fS, vicS, evS := soa.Insert(addr, st, now)
			lA, vicA, evA := aos.insert(addr, st, now)
			if evS != evA || vicS != vicA {
				t.Fatalf("seed %d step %d: Insert(%#x) victim %+v/%v, reference %+v/%v",
					seed, step, addr, vicS, evS, vicA, evA)
			}
			checkLine("insert", fS, lA)

		case op < 75: // invalidate (hit or miss)
			oldS, okS := soa.Invalidate(addr)
			oldA, okA := aos.invalidate(addr)
			if okS != okA || oldS != oldA {
				t.Fatalf("seed %d step %d: Invalidate(%#x) = %+v/%v, reference %+v/%v",
					seed, step, addr, oldS, okS, oldA, okA)
			}

		case op < 85: // WB-style metadata mutation through the handle APIs
			f, okS := soa.Probe(addr)
			l, okA := aos.probe(addr)
			if okS != okA {
				t.Fatalf("seed %d step %d: Probe(%#x) = %v, reference = %v", seed, step, addr, okS, okA)
			}
			if !okS {
				continue
			}
			soa.SetCount(f, step%5)
			l.Count = step % 5
			if step%2 == 0 {
				soa.SetState(f, mem.Exclusive)
				l.State = mem.Exclusive
			}
			soa.Recharge(f, now)
			l.LastRefresh = now
			l.Sentry = true
			checkLine("mutate", f, l)

		case op < 95: // sweep: walk every valid frame, refresh or drop each
			var visS, visA []int
			soa.ForEachValid(func(f Frame) {
				visS = append(visS, int(f))
				if int(f)%3 == 0 {
					soa.Reset(f)
				} else {
					soa.Recharge(f, now)
				}
			})
			for i := range aos.lines {
				if aos.lines[i].Valid() {
					visA = append(visA, i)
					if i%3 == 0 {
						aos.lines[i].Reset()
					} else {
						aos.lines[i].LastRefresh = now
						aos.lines[i].Sentry = true
					}
				}
			}
			if fmt.Sprint(visS) != fmt.Sprint(visA) {
				t.Fatalf("seed %d step %d: sweep visited %v, reference %v", seed, step, visS, visA)
			}

		default: // flush
			flushBuf = soa.FlushInto(flushBuf[:0])
			refDirty := aos.flush()
			if len(flushBuf) != len(refDirty) {
				t.Fatalf("seed %d step %d: flush returned %d lines, reference %d",
					seed, step, len(flushBuf), len(refDirty))
			}
			for i := range flushBuf {
				if flushBuf[i] != refDirty[i] {
					t.Fatalf("seed %d step %d: flush[%d] = %+v, reference %+v",
						seed, step, i, flushBuf[i], refDirty[i])
				}
			}
		}

		if soa.ValidCount() != aos.validCount() || soa.DirtyCount() != aos.dirtyCount() {
			t.Fatalf("seed %d step %d: counts %d/%d, reference %d/%d",
				seed, step, soa.ValidCount(), soa.DirtyCount(), aos.validCount(), aos.dirtyCount())
		}
	}

	// End state: every frame identical.
	for i := range aos.lines {
		if got, want := soa.Line(Frame(i)), aos.lines[i]; got != want {
			t.Fatalf("seed %d end: frame %d = %+v, reference %+v", seed, i, got, want)
		}
	}
}
