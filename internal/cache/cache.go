// Package cache implements the set-associative cache arrays used at every
// level of the simulated hierarchy: lookup, LRU replacement, line state
// bookkeeping, and flat per-line indexing that the refresh machinery
// (package core) uses to address lines from sentry interrupts and periodic
// group schedules.
//
// A Cache models one bank.  Multi-bank caches (the shared L3) are built by
// the higher layers as one Cache per bank with addresses interleaved across
// banks.
//
// # Layout
//
// The per-line metadata is kept as a struct of arrays: tags, states, LRU
// stamps and the refresh/sentry bookkeeping live in parallel slices indexed
// by the line's flat frame number.  The lookup scan — the hottest loop in
// the simulator — therefore walks a dense []mem.LineAddr tag array (8 bytes
// per way instead of one 48-byte mem.Line per way), and touches the other
// arrays only for the single matching frame.  Callers address lines through
// integer Frame handles; the flat index a frame handle carries IS the value
// the refresh machinery schedules by, so the old pointer->index translation
// (IndexOf) is now the identity function.
package cache

import (
	"fmt"

	"refrint/internal/config"
	"refrint/internal/mem"
)

// Frame is a handle to one line frame of a bank: its flat index in
// [0, NumLines).  Frames are dense and stable for the life of the bank —
// the refresh machinery schedules sentry deadlines and periodic sweep
// ranges directly over frame numbers.
type Frame int32

// NoFrame is the invalid frame handle returned by failed lookups.
const NoFrame Frame = -1

// Cache is one bank of a set-associative cache.
type Cache struct {
	cfg   config.CacheConfig
	sets  int
	ways  int
	shift uint // index shift (bank-select bits), hoisted from the config
	// setMask is sets-1 when the set count is a power of two (the common
	// case), letting setOf mask instead of divide; -1 otherwise.
	setMask int

	// Parallel per-frame arrays (struct of arrays); set s occupies frames
	// [s*ways, (s+1)*ways).  tags and states carry the way scan; the rest
	// are touched per-frame only.
	tags        []mem.LineAddr // full line address (tag + index combined)
	states      []mem.State    // MESI state; Invalid marks a free frame
	sentries    []bool         // sentry bit charged (Refrint time policy)
	lru         []int64        // replacement timestamp
	lastRefresh []int64        // cycle of the last refresh or access
	lastTouch   []int64        // cycle of the last normal access
	counts      []int          // WB(n,m) refresh budget (package core)
}

// New builds an empty cache bank from its configuration.
func New(cfg config.CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("cache: invalid config: %v", err))
	}
	sets := cfg.Sets()
	mask := -1
	if sets > 0 && sets&(sets-1) == 0 {
		mask = sets - 1
	}
	n := sets * cfg.Ways
	return &Cache{
		cfg:         cfg,
		sets:        sets,
		ways:        cfg.Ways,
		shift:       uint(cfg.IndexShift),
		setMask:     mask,
		tags:        make([]mem.LineAddr, n),
		states:      make([]mem.State, n),
		sentries:    make([]bool, n),
		lru:         make([]int64, n),
		lastRefresh: make([]int64, n),
		lastTouch:   make([]int64, n),
		counts:      make([]int, n),
	}
}

// Config returns the bank's configuration.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// NumLines returns the number of line frames in the bank.
func (c *Cache) NumLines() int { return len(c.tags) }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// setOf maps a line address to its set index within this bank.  Banked
// caches skip the bank-select bits via the configuration's IndexShift so
// that all sets of the bank are usable.
//
//refrint:alloc-free
func (c *Cache) setOf(addr mem.LineAddr) int {
	idx := uint64(addr) >> c.shift
	if c.setMask >= 0 {
		return int(idx) & c.setMask
	}
	return int(idx % uint64(c.sets))
}

// IndexOf returns the flat index of a frame handle.  It is the identity
// function — the handle IS the index — and survives only so call sites read
// as "give me the schedulable index of this frame".
//
//refrint:alloc-free
func (c *Cache) IndexOf(f Frame) int { return int(f) }

// --- Per-frame accessors ---------------------------------------------------
//
// Each accessor is a single indexed load or store into one of the parallel
// arrays; the compiler inlines them, so consumers pay exactly what the old
// field access on *mem.Line cost, without holding interior pointers.

// Tag returns the line address held by a frame (meaningful while valid).
//
//refrint:alloc-free
func (c *Cache) Tag(f Frame) mem.LineAddr { return c.tags[f] }

// State returns the MESI state of a frame.
//
//refrint:alloc-free
func (c *Cache) State(f Frame) mem.State { return c.states[f] }

// SetState stores a frame's MESI state without any occupancy accounting;
// package core's Bank.SetState wraps it with the group-counter bookkeeping.
//
//refrint:alloc-free
func (c *Cache) SetState(f Frame, s mem.State) { c.states[f] = s }

// Valid reports whether a frame currently holds usable data.
//
//refrint:alloc-free
func (c *Cache) Valid(f Frame) bool { return c.states[f] != mem.Invalid }

// Dirty reports whether a frame holds data that must be written back.
//
//refrint:alloc-free
func (c *Cache) Dirty(f Frame) bool { return c.states[f] == mem.Modified }

// LastRefresh returns the cycle of a frame's last refresh or access.
//
//refrint:alloc-free
func (c *Cache) LastRefresh(f Frame) int64 { return c.lastRefresh[f] }

// Recharge records a refresh of the frame's cells at cycle `at`: the charge
// time moves and the sentry bit is re-armed.  Demand accesses use Touch,
// which additionally updates recency.
//
//refrint:alloc-free
func (c *Cache) Recharge(f Frame, at int64) {
	c.lastRefresh[f] = at
	c.sentries[f] = true
}

// LastTouch returns the cycle of the frame's last normal access.
//
//refrint:alloc-free
func (c *Cache) LastTouch(f Frame) int64 { return c.lastTouch[f] }

// LRU returns a frame's replacement stamp (tests and the reference model).
//
//refrint:alloc-free
func (c *Cache) LRU(f Frame) int64 { return c.lru[f] }

// Sentry reports whether the frame's sentry bit is charged.
//
//refrint:alloc-free
func (c *Cache) Sentry(f Frame) bool { return c.sentries[f] }

// Count returns the frame's WB(n,m) refresh budget.
//
//refrint:alloc-free
func (c *Cache) Count(f Frame) int { return c.counts[f] }

// SetCount stores the frame's WB(n,m) refresh budget.
//
//refrint:alloc-free
func (c *Cache) SetCount(f Frame, n int) { c.counts[f] = n }

// Line materializes a copy of the frame's metadata as a mem.Line value —
// the vocabulary type victim copies, flush buffers and the invariant
// checker speak.
func (c *Cache) Line(f Frame) mem.Line {
	return mem.Line{
		Tag:         c.tags[f],
		State:       c.states[f],
		Sentry:      c.sentries[f],
		LRU:         c.lru[f],
		LastRefresh: c.lastRefresh[f],
		LastTouch:   c.lastTouch[f],
		Count:       c.counts[f],
	}
}

// Reset returns a frame to the invalid, zero state (mirrors mem.Line.Reset
// on the old layout: every array entry is zeroed, including the tag, so a
// freed frame can never tag-match a later probe for address 0 differently
// than the array-of-structs implementation did).
//
//refrint:alloc-free
func (c *Cache) Reset(f Frame) {
	c.tags[f] = 0
	c.states[f] = mem.Invalid
	c.sentries[f] = false
	c.lru[f] = 0
	c.lastRefresh[f] = 0
	c.lastTouch[f] = 0
	c.counts[f] = 0
}

// --- Lookup, replacement, state transitions --------------------------------

// Probe looks up addr and returns its frame if present with a valid state.
// It does not update replacement state; use Touch for that.  The scan is
// branch-light: one tag compare per way over the dense tag array, with the
// state check only on a tag match (a zeroed tag can match address 0, which
// the state check rejects exactly as the old Valid() test did).
//
//refrint:alloc-free
func (c *Cache) Probe(addr mem.LineAddr) (Frame, bool) {
	base := c.setOf(addr) * c.ways
	tags := c.tags[base : base+c.ways]
	for i := range tags {
		if tags[i] == addr && c.states[base+i] != mem.Invalid {
			return Frame(base + i), true
		}
	}
	return NoFrame, false
}

// Touch marks a hit on a frame at cycle `now`: it updates the LRU stamp,
// the last-touch time, and (for eDRAM) the implicit refresh that any access
// performs (LastRefresh), and recharges the sentry bit.
//
//refrint:alloc-free
func (c *Cache) Touch(f Frame, now int64) {
	c.lru[f] = now
	c.lastTouch[f] = now
	c.lastRefresh[f] = now
	c.sentries[f] = true
}

// Victim returns the frame that Insert would replace for addr: the first
// invalid frame in the set if one exists, otherwise the LRU valid frame
// (first-encountered on an LRU tie, matching the old scan order).
//
//refrint:alloc-free
func (c *Cache) Victim(addr mem.LineAddr) Frame {
	base := c.setOf(addr) * c.ways
	states := c.states[base : base+c.ways]
	for i := range states {
		if states[i] == mem.Invalid {
			return Frame(base + i)
		}
	}
	v := base
	for i := base + 1; i < base+c.ways; i++ {
		if c.lru[i] < c.lru[v] {
			v = i
		}
	}
	return Frame(v)
}

// Insert places addr into the cache with the given state at cycle now and
// returns the frame used plus a copy of the evicted line (evicted reports
// whether a valid line was displaced).  The caller is responsible for
// writing back the victim if it was dirty and for maintaining inclusion.
func (c *Cache) Insert(addr mem.LineAddr, state mem.State, now int64) (f Frame, victim mem.Line, evicted bool) {
	f = c.Victim(addr)
	victim = c.Line(f)
	evicted = victim.Valid()
	c.Reset(f)
	c.tags[f] = addr
	c.states[f] = state
	c.Touch(f, now)
	return f, victim, evicted
}

// Invalidate removes addr from the cache if present and returns a copy of
// the line as it was (for writeback decisions) and whether it was present.
func (c *Cache) Invalidate(addr mem.LineAddr) (mem.Line, bool) {
	f, ok := c.Probe(addr)
	if !ok {
		return mem.Line{}, false
	}
	old := c.Line(f)
	c.Reset(f)
	return old, true
}

// ForEachValid calls fn for every valid frame.  fn may mutate the frame
// (including resetting it).
func (c *Cache) ForEachValid(fn func(f Frame)) {
	for i := range c.states {
		if c.states[i] != mem.Invalid {
			fn(Frame(i))
		}
	}
}

// ValidCount returns the number of valid lines.
func (c *Cache) ValidCount() int {
	n := 0
	for _, s := range c.states {
		if s != mem.Invalid {
			n++
		}
	}
	return n
}

// DirtyCount returns the number of dirty (Modified) lines.
func (c *Cache) DirtyCount() int {
	n := 0
	for _, s := range c.states {
		if s == mem.Modified {
			n++
		}
	}
	return n
}

// FlushInto invalidates every line, appends copies of the dirty lines that
// were present to dst (the caller writes them back) and returns the
// extended buffer.  Like event.Wheel.PopDueInto, the caller owns the buffer:
// passing a recycled dst[:0] makes the end-of-run flush allocation-free once
// the buffer has grown to the bank's dirty high-water mark.
func (c *Cache) FlushInto(dst []mem.Line) []mem.Line {
	for i, s := range c.states {
		if s == mem.Modified {
			dst = append(dst, c.Line(Frame(i)))
		}
	}
	c.clearAll()
	return dst
}

// FlushCount invalidates every line and returns how many were dirty, for
// callers (the end-of-run flush) that only charge writeback counts and do
// not need the line copies.
func (c *Cache) FlushCount() int64 {
	n := int64(0)
	for _, s := range c.states {
		if s == mem.Modified {
			n++
		}
	}
	c.clearAll()
	return n
}

// clearAll zeroes every parallel array in one memclr each.
func (c *Cache) clearAll() {
	clear(c.tags)
	clear(c.states)
	clear(c.sentries)
	clear(c.lru)
	clear(c.lastRefresh)
	clear(c.lastTouch)
	clear(c.counts)
}
