// Package cache implements the set-associative cache arrays used at every
// level of the simulated hierarchy: lookup, LRU replacement, line state
// bookkeeping, and flat per-line indexing that the refresh machinery
// (package core) uses to address lines from sentry interrupts and periodic
// group schedules.
//
// A Cache models one bank.  Multi-bank caches (the shared L3) are built by
// the higher layers as one Cache per bank with addresses interleaved across
// banks.
package cache

import (
	"fmt"
	"unsafe"

	"refrint/internal/config"
	"refrint/internal/mem"
)

// Cache is one bank of a set-associative cache.
type Cache struct {
	cfg   config.CacheConfig
	sets  int
	ways  int
	shift uint // index shift (bank-select bits), hoisted from the config
	// setMask is sets-1 when the set count is a power of two (the common
	// case), letting setOf mask instead of divide; -1 otherwise.
	setMask int
	lines   []mem.Line // sets*ways entries; set s occupies [s*ways, (s+1)*ways)
}

// New builds an empty cache bank from its configuration.
func New(cfg config.CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("cache: invalid config: %v", err))
	}
	sets := cfg.Sets()
	mask := -1
	if sets > 0 && sets&(sets-1) == 0 {
		mask = sets - 1
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		ways:    cfg.Ways,
		shift:   uint(cfg.IndexShift),
		setMask: mask,
		lines:   make([]mem.Line, sets*cfg.Ways),
	}
}

// Config returns the bank's configuration.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// NumLines returns the number of line frames in the bank.
func (c *Cache) NumLines() int { return len(c.lines) }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// setOf maps a line address to its set index within this bank.  Banked
// caches skip the bank-select bits via the configuration's IndexShift so
// that all sets of the bank are usable.
func (c *Cache) setOf(addr mem.LineAddr) int {
	idx := uint64(addr) >> c.shift
	if c.setMask >= 0 {
		return int(idx) & c.setMask
	}
	return int(idx % uint64(c.sets))
}

// LineAt returns the line frame with the given flat index
// (0 <= idx < NumLines).
func (c *Cache) LineAt(idx int) *mem.Line { return &c.lines[idx] }

// IndexOf returns the flat index of a line frame previously returned by
// Probe, Victim or Insert, in O(1) by pointer arithmetic over the contiguous
// lines slice.  Pointers outside the slice return -1.  The refresh machinery
// (package core) calls this on every demand access, so it must stay cheap.
func (c *Cache) IndexOf(l *mem.Line) int {
	off := uintptr(unsafe.Pointer(l)) - uintptr(unsafe.Pointer(&c.lines[0]))
	idx := int(off / unsafe.Sizeof(mem.Line{}))
	if uint(idx) >= uint(len(c.lines)) || &c.lines[idx] != l {
		return -1
	}
	return idx
}

// Probe looks up addr and returns its line frame if present with a valid
// state.  It does not update replacement state; use Touch for that.
func (c *Cache) Probe(addr mem.LineAddr) (*mem.Line, bool) {
	base := c.setOf(addr) * c.ways
	set := c.lines[base : base+c.ways]
	for i := range set {
		l := &set[i]
		// Tag first: almost every scanned frame fails this cheaper test.
		if l.Tag == addr && l.Valid() {
			return l, true
		}
	}
	return nil, false
}

// Touch marks a hit on the line at cycle `now`: it updates the LRU stamp,
// the last-touch time, and (for eDRAM) the implicit refresh that any access
// performs (LastRefresh), and recharges the sentry bit.
func (c *Cache) Touch(l *mem.Line, now int64) {
	l.LRU = now
	l.LastTouch = now
	l.LastRefresh = now
	l.Sentry = true
}

// Victim returns the line frame that Insert would replace for addr: an
// invalid frame in the set if one exists, otherwise the LRU valid frame.
func (c *Cache) Victim(addr mem.LineAddr) *mem.Line {
	base := c.setOf(addr) * c.ways
	set := c.lines[base : base+c.ways]
	var victim *mem.Line
	for i := range set {
		l := &set[i]
		if !l.Valid() {
			return l
		}
		if victim == nil || l.LRU < victim.LRU {
			victim = l
		}
	}
	return victim
}

// Insert places addr into the cache with the given state at cycle now and
// returns the frame used plus a copy of the evicted line (Evicted reports
// whether a valid line was displaced).  The caller is responsible for
// writing back the victim if it was dirty and for maintaining inclusion.
func (c *Cache) Insert(addr mem.LineAddr, state mem.State, now int64) (frame *mem.Line, victim mem.Line, evicted bool) {
	frame = c.Victim(addr)
	victim = *frame
	evicted = victim.Valid()
	frame.Reset()
	frame.Tag = addr
	frame.State = state
	c.Touch(frame, now)
	return frame, victim, evicted
}

// Invalidate removes addr from the cache if present and returns a copy of
// the line as it was (for writeback decisions) and whether it was present.
func (c *Cache) Invalidate(addr mem.LineAddr) (mem.Line, bool) {
	l, ok := c.Probe(addr)
	if !ok {
		return mem.Line{}, false
	}
	old := *l
	l.Reset()
	return old, true
}

// ForEachValid calls fn for every valid line frame.  fn may mutate the line
// (including invalidating it).
func (c *Cache) ForEachValid(fn func(idx int, l *mem.Line)) {
	for i := range c.lines {
		if c.lines[i].Valid() {
			fn(i, &c.lines[i])
		}
	}
}

// ValidCount returns the number of valid lines.
func (c *Cache) ValidCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid() {
			n++
		}
	}
	return n
}

// DirtyCount returns the number of dirty (Modified) lines.
func (c *Cache) DirtyCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Dirty() {
			n++
		}
	}
	return n
}

// Flush invalidates every line and returns copies of the dirty lines that
// were present (the caller writes them back).
func (c *Cache) Flush() []mem.Line {
	var dirty []mem.Line
	for i := range c.lines {
		if c.lines[i].Dirty() {
			dirty = append(dirty, c.lines[i])
		}
		c.lines[i].Reset()
	}
	return dirty
}

// FlushCount invalidates every line and returns how many were dirty, for
// callers (the end-of-run flush) that only charge writeback counts and do
// not need the line copies.  clear() zeroes the array in one memclr.
func (c *Cache) FlushCount() int64 {
	n := int64(0)
	for i := range c.lines {
		if c.lines[i].Dirty() {
			n++
		}
	}
	clear(c.lines)
	return n
}
