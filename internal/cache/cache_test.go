package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"refrint/internal/config"
	"refrint/internal/mem"
)

func smallConfig() config.CacheConfig {
	return config.CacheConfig{
		Name:       "test",
		SizeBytes:  4 << 10, // 4 KB
		Ways:       4,
		LineSize:   64,
		AccessTime: 1,
		Write:      config.WriteBack,
		Banks:      1,
		SubArrays:  4,
	}
}

func TestNewGeometry(t *testing.T) {
	c := New(smallConfig())
	if c.NumLines() != 64 {
		t.Errorf("NumLines = %d, want 64", c.NumLines())
	}
	if c.Sets() != 16 || c.Ways() != 4 {
		t.Errorf("sets/ways = %d/%d, want 16/4", c.Sets(), c.Ways())
	}
	if c.ValidCount() != 0 || c.DirtyCount() != 0 {
		t.Error("new cache should be empty")
	}
	if c.Config().Name != "test" {
		t.Error("Config() should round-trip")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(config.CacheConfig{SizeBytes: 0})
}

func TestInsertAndProbe(t *testing.T) {
	c := New(smallConfig())
	addr := mem.LineAddr(0x1234)
	if _, ok := c.Probe(addr); ok {
		t.Fatal("empty cache should miss")
	}
	f, _, evicted := c.Insert(addr, mem.Exclusive, 10)
	if evicted {
		t.Error("inserting into an empty set should not evict")
	}
	if c.Tag(f) != addr || c.State(f) != mem.Exclusive {
		t.Errorf("frame = %+v", c.Line(f))
	}
	got, ok := c.Probe(addr)
	if !ok || c.Tag(got) != addr {
		t.Fatal("probe after insert should hit")
	}
	if c.ValidCount() != 1 {
		t.Errorf("ValidCount = %d, want 1", c.ValidCount())
	}
}

func TestTouchUpdatesRecencyAndRefresh(t *testing.T) {
	c := New(smallConfig())
	f, _, _ := c.Insert(0x10, mem.Shared, 5)
	if c.LRU(f) != 5 || c.LastRefresh(f) != 5 || !c.Sentry(f) {
		t.Errorf("Insert should touch the line: %+v", c.Line(f))
	}
	c.Touch(f, 42)
	if c.LRU(f) != 42 || c.LastTouch(f) != 42 || c.LastRefresh(f) != 42 {
		t.Errorf("Touch did not update stamps: %+v", c.Line(f))
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := smallConfig()
	c := New(cfg)
	sets := c.Sets()
	// Fill one set completely: addresses that differ by `sets` map to the
	// same set.
	base := mem.LineAddr(3)
	var addrs []mem.LineAddr
	for w := 0; w < cfg.Ways; w++ {
		a := base + mem.LineAddr(w*sets)
		addrs = append(addrs, a)
		c.Insert(a, mem.Exclusive, int64(w))
	}
	// All should still be present.
	for _, a := range addrs {
		if _, ok := c.Probe(a); !ok {
			t.Fatalf("address %#x missing after fill", a)
		}
	}
	// Touch the oldest (addrs[0]) so addrs[1] becomes LRU.
	f, _ := c.Probe(addrs[0])
	c.Touch(f, 100)
	newAddr := base + mem.LineAddr(cfg.Ways*sets)
	_, victim, evicted := c.Insert(newAddr, mem.Exclusive, 200)
	if !evicted {
		t.Fatal("inserting into a full set must evict")
	}
	if victim.Tag != addrs[1] {
		t.Errorf("evicted %#x, want LRU line %#x", victim.Tag, addrs[1])
	}
	if _, ok := c.Probe(addrs[1]); ok {
		t.Error("evicted line still present")
	}
	if _, ok := c.Probe(addrs[0]); !ok {
		t.Error("recently touched line was evicted")
	}
}

func TestVictimPrefersInvalidFrame(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0x1, mem.Modified, 1)
	v := c.Victim(0x1 + mem.LineAddr(c.Sets())) // same set, different tag
	if c.Valid(v) {
		t.Error("victim should be an invalid frame while the set has free ways")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0x77, mem.Modified, 1)
	old, ok := c.Invalidate(0x77)
	if !ok || old.Tag != 0x77 || !old.Dirty() {
		t.Errorf("Invalidate = %+v, %v", old, ok)
	}
	if _, ok := c.Probe(0x77); ok {
		t.Error("line still present after Invalidate")
	}
	if _, ok := c.Invalidate(0x77); ok {
		t.Error("double invalidate should report absent")
	}
}

func TestFrameHandleIsFlatIndex(t *testing.T) {
	c := New(smallConfig())
	f, _, _ := c.Insert(0x5, mem.Exclusive, 1)
	idx := c.IndexOf(f)
	if idx < 0 || idx >= c.NumLines() {
		t.Fatalf("IndexOf = %d out of range", idx)
	}
	if idx != int(f) {
		t.Errorf("IndexOf(%d) = %d, want the identity", f, idx)
	}
	// The frame's set is recoverable from the flat index: it must lie in
	// the set its address maps to.
	if want := c.setOf(0x5); idx/c.Ways() != want {
		t.Errorf("frame %d lies in set %d, want %d", f, idx/c.Ways(), want)
	}
	if got := c.Line(f); got.Tag != 0x5 || got.State != mem.Exclusive {
		t.Errorf("Line(f) = %+v", got)
	}
}

func TestForEachValidAndCounts(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0x1, mem.Modified, 1)
	c.Insert(0x2, mem.Shared, 2)
	c.Insert(0x3, mem.Exclusive, 3)
	seen := 0
	c.ForEachValid(func(f Frame) {
		seen++
		if !c.Valid(f) {
			t.Error("ForEachValid visited an invalid line")
		}
	})
	if seen != 3 {
		t.Errorf("visited %d lines, want 3", seen)
	}
	if c.ValidCount() != 3 || c.DirtyCount() != 1 {
		t.Errorf("counts = %d valid %d dirty", c.ValidCount(), c.DirtyCount())
	}
}

func TestFlushIntoReturnsDirtyLines(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0x1, mem.Modified, 1)
	c.Insert(0x2, mem.Shared, 2)
	c.Insert(0x3, mem.Modified, 3)
	dirty := c.FlushInto(nil)
	if len(dirty) != 2 {
		t.Fatalf("FlushInto returned %d dirty lines, want 2", len(dirty))
	}
	if c.ValidCount() != 0 {
		t.Error("cache not empty after FlushInto")
	}
	// The buffer is caller-owned: a second flush must reuse it (append
	// semantics), not replace it.
	c.Insert(0x9, mem.Modified, 4)
	buf := dirty[:0]
	buf = c.FlushInto(buf)
	if len(buf) != 1 || buf[0].Tag != 0x9 {
		t.Fatalf("reused buffer flush = %+v", buf)
	}
	if &buf[0] != &dirty[:1][0] {
		t.Error("FlushInto should append into the caller's buffer in place")
	}
}

func TestInclusionNeverExceedsCapacityProperty(t *testing.T) {
	// Property: after any access sequence, the number of valid lines never
	// exceeds capacity, and every line that Probe hits was inserted and not
	// subsequently evicted or invalidated.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(smallConfig())
		now := int64(0)
		for i := 0; i < 2000; i++ {
			now++
			addr := mem.LineAddr(rng.Intn(256))
			if l, ok := c.Probe(addr); ok {
				c.Touch(l, now)
				continue
			}
			c.Insert(addr, mem.Exclusive, now)
			if c.ValidCount() > c.NumLines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSameSetMappingProperty(t *testing.T) {
	c := New(smallConfig())
	sets := c.Sets()
	// Property: addresses congruent modulo the set count compete for the
	// same set, so inserting ways+1 of them always evicts exactly one.
	f := func(baseRaw uint16) bool {
		cc := New(smallConfig())
		base := mem.LineAddr(baseRaw % uint16(sets))
		evictions := 0
		for w := 0; w <= cc.Ways(); w++ {
			_, _, ev := cc.Insert(base+mem.LineAddr(w*sets), mem.Exclusive, int64(w))
			if ev {
				evictions++
			}
		}
		return evictions == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
