package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"refrint/internal/config"
	"refrint/internal/mem"
)

func smallConfig() config.CacheConfig {
	return config.CacheConfig{
		Name:       "test",
		SizeBytes:  4 << 10, // 4 KB
		Ways:       4,
		LineSize:   64,
		AccessTime: 1,
		Write:      config.WriteBack,
		Banks:      1,
		SubArrays:  4,
	}
}

func TestNewGeometry(t *testing.T) {
	c := New(smallConfig())
	if c.NumLines() != 64 {
		t.Errorf("NumLines = %d, want 64", c.NumLines())
	}
	if c.Sets() != 16 || c.Ways() != 4 {
		t.Errorf("sets/ways = %d/%d, want 16/4", c.Sets(), c.Ways())
	}
	if c.ValidCount() != 0 || c.DirtyCount() != 0 {
		t.Error("new cache should be empty")
	}
	if c.Config().Name != "test" {
		t.Error("Config() should round-trip")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(config.CacheConfig{SizeBytes: 0})
}

func TestInsertAndProbe(t *testing.T) {
	c := New(smallConfig())
	addr := mem.LineAddr(0x1234)
	if _, ok := c.Probe(addr); ok {
		t.Fatal("empty cache should miss")
	}
	frame, _, evicted := c.Insert(addr, mem.Exclusive, 10)
	if evicted {
		t.Error("inserting into an empty set should not evict")
	}
	if frame.Tag != addr || frame.State != mem.Exclusive {
		t.Errorf("frame = %+v", frame)
	}
	got, ok := c.Probe(addr)
	if !ok || got.Tag != addr {
		t.Fatal("probe after insert should hit")
	}
	if c.ValidCount() != 1 {
		t.Errorf("ValidCount = %d, want 1", c.ValidCount())
	}
}

func TestTouchUpdatesRecencyAndRefresh(t *testing.T) {
	c := New(smallConfig())
	frame, _, _ := c.Insert(0x10, mem.Shared, 5)
	if frame.LRU != 5 || frame.LastRefresh != 5 || !frame.Sentry {
		t.Errorf("Insert should touch the line: %+v", frame)
	}
	c.Touch(frame, 42)
	if frame.LRU != 42 || frame.LastTouch != 42 || frame.LastRefresh != 42 {
		t.Errorf("Touch did not update stamps: %+v", frame)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := smallConfig()
	c := New(cfg)
	sets := c.Sets()
	// Fill one set completely: addresses that differ by `sets` map to the
	// same set.
	base := mem.LineAddr(3)
	var addrs []mem.LineAddr
	for w := 0; w < cfg.Ways; w++ {
		a := base + mem.LineAddr(w*sets)
		addrs = append(addrs, a)
		c.Insert(a, mem.Exclusive, int64(w))
	}
	// All should still be present.
	for _, a := range addrs {
		if _, ok := c.Probe(a); !ok {
			t.Fatalf("address %#x missing after fill", a)
		}
	}
	// Touch the oldest (addrs[0]) so addrs[1] becomes LRU.
	l, _ := c.Probe(addrs[0])
	c.Touch(l, 100)
	newAddr := base + mem.LineAddr(cfg.Ways*sets)
	_, victim, evicted := c.Insert(newAddr, mem.Exclusive, 200)
	if !evicted {
		t.Fatal("inserting into a full set must evict")
	}
	if victim.Tag != addrs[1] {
		t.Errorf("evicted %#x, want LRU line %#x", victim.Tag, addrs[1])
	}
	if _, ok := c.Probe(addrs[1]); ok {
		t.Error("evicted line still present")
	}
	if _, ok := c.Probe(addrs[0]); !ok {
		t.Error("recently touched line was evicted")
	}
}

func TestVictimPrefersInvalidFrame(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0x1, mem.Modified, 1)
	v := c.Victim(0x1 + mem.LineAddr(c.Sets())) // same set, different tag
	if v.Valid() {
		t.Error("victim should be an invalid frame while the set has free ways")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0x77, mem.Modified, 1)
	old, ok := c.Invalidate(0x77)
	if !ok || old.Tag != 0x77 || !old.Dirty() {
		t.Errorf("Invalidate = %+v, %v", old, ok)
	}
	if _, ok := c.Probe(0x77); ok {
		t.Error("line still present after Invalidate")
	}
	if _, ok := c.Invalidate(0x77); ok {
		t.Error("double invalidate should report absent")
	}
}

func TestLineAtAndIndexOf(t *testing.T) {
	c := New(smallConfig())
	frame, _, _ := c.Insert(0x5, mem.Exclusive, 1)
	idx := c.IndexOf(frame)
	if idx < 0 || idx >= c.NumLines() {
		t.Fatalf("IndexOf = %d out of range", idx)
	}
	if c.LineAt(idx) != frame {
		t.Error("LineAt(IndexOf(l)) should return the same frame")
	}
	var notMine mem.Line
	if c.IndexOf(&notMine) != -1 {
		t.Error("IndexOf of a foreign line should be -1")
	}
}

func TestForEachValidAndCounts(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0x1, mem.Modified, 1)
	c.Insert(0x2, mem.Shared, 2)
	c.Insert(0x3, mem.Exclusive, 3)
	seen := 0
	c.ForEachValid(func(idx int, l *mem.Line) {
		seen++
		if !l.Valid() {
			t.Error("ForEachValid visited an invalid line")
		}
	})
	if seen != 3 {
		t.Errorf("visited %d lines, want 3", seen)
	}
	if c.ValidCount() != 3 || c.DirtyCount() != 1 {
		t.Errorf("counts = %d valid %d dirty", c.ValidCount(), c.DirtyCount())
	}
}

func TestFlushReturnsDirtyLines(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0x1, mem.Modified, 1)
	c.Insert(0x2, mem.Shared, 2)
	c.Insert(0x3, mem.Modified, 3)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("Flush returned %d dirty lines, want 2", len(dirty))
	}
	if c.ValidCount() != 0 {
		t.Error("cache not empty after Flush")
	}
}

func TestInclusionNeverExceedsCapacityProperty(t *testing.T) {
	// Property: after any access sequence, the number of valid lines never
	// exceeds capacity, and every line that Probe hits was inserted and not
	// subsequently evicted or invalidated.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(smallConfig())
		now := int64(0)
		for i := 0; i < 2000; i++ {
			now++
			addr := mem.LineAddr(rng.Intn(256))
			if l, ok := c.Probe(addr); ok {
				c.Touch(l, now)
				continue
			}
			c.Insert(addr, mem.Exclusive, now)
			if c.ValidCount() > c.NumLines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSameSetMappingProperty(t *testing.T) {
	c := New(smallConfig())
	sets := c.Sets()
	// Property: addresses congruent modulo the set count compete for the
	// same set, so inserting ways+1 of them always evicts exactly one.
	f := func(baseRaw uint16) bool {
		cc := New(smallConfig())
		base := mem.LineAddr(baseRaw % uint16(sets))
		evictions := 0
		for w := 0; w <= cc.Ways(); w++ {
			_, _, ev := cc.Insert(base+mem.LineAddr(w*sets), mem.Exclusive, int64(w))
			if ev {
				evictions++
			}
		}
		return evictions == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
