package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"refrint/internal/config"
	"refrint/internal/mem"
)

func l3BankConfig() config.CacheConfig {
	cfg := config.FullSize().L3
	cfg.Banks = 1
	cfg.Shared = false
	return cfg
}

// waysConfig is a 256 KB bank at the given associativity, used to measure how
// the way-scan cost grows with set size.
func waysConfig(ways int) config.CacheConfig {
	return config.CacheConfig{
		Name:       fmt.Sprintf("ways%d", ways),
		SizeBytes:  256 << 10,
		Ways:       ways,
		LineSize:   64,
		AccessTime: 1,
		Write:      config.WriteBack,
		Banks:      1,
		SubArrays:  4,
	}
}

// BenchmarkProbeHit measures the cost of a hit lookup in a full-size L3 bank.
func BenchmarkProbeHit(b *testing.B) {
	c := New(l3BankConfig())
	addrs := make([]mem.LineAddr, 1024)
	for i := range addrs {
		addrs[i] = mem.LineAddr(i * 7)
		c.Insert(addrs[i], mem.Exclusive, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Probe(addrs[i%len(addrs)]); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkProbeWays measures hit and miss lookups across associativities:
// the hit case scans half the set on average, the miss case always scans all
// ways, so together they bound the way-scan cost the SoA tag array pays.
func BenchmarkProbeWays(b *testing.B) {
	for _, ways := range []int{4, 8, 16} {
		c := New(waysConfig(ways))
		sets := c.Sets()
		// Fill every set completely so hit probes scan realistic sets and
		// miss probes are tag mismatches, not empty-set scans.
		for s := 0; s < sets; s++ {
			for w := 0; w < ways; w++ {
				c.Insert(mem.LineAddr(s+(w+1)*sets), mem.Exclusive, int64(w))
			}
		}
		hitAddrs := make([]mem.LineAddr, 1024)
		missAddrs := make([]mem.LineAddr, 1024)
		rng := rand.New(rand.NewSource(7))
		for i := range hitAddrs {
			s := rng.Intn(sets)
			hitAddrs[i] = mem.LineAddr(s + (rng.Intn(ways)+1)*sets)
			missAddrs[i] = mem.LineAddr(s + (ways+1+rng.Intn(64))*sets)
		}
		b.Run(fmt.Sprintf("ways%d/hit", ways), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := c.Probe(hitAddrs[i%len(hitAddrs)]); !ok {
					b.Fatal("unexpected miss")
				}
			}
		})
		b.Run(fmt.Sprintf("ways%d/miss", ways), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := c.Probe(missAddrs[i%len(missAddrs)]); ok {
					b.Fatal("unexpected hit")
				}
			}
		})
	}
}

// BenchmarkInsertWithEviction measures steady-state fills that displace LRU
// victims.
func BenchmarkInsertWithEviction(b *testing.B) {
	c := New(l3BankConfig())
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(mem.LineAddr(rng.Intn(1<<20)), mem.Modified, int64(i))
	}
}

// BenchmarkForEachValid measures a full-bank sweep, the inner loop of the
// Periodic refresh scheme.
func BenchmarkForEachValid(b *testing.B) {
	c := New(l3BankConfig())
	for i := 0; i < c.NumLines(); i += 2 {
		c.Insert(mem.LineAddr(i), mem.Exclusive, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		c.ForEachValid(func(f Frame) { n++ })
		if n == 0 {
			b.Fatal("no valid lines")
		}
	}
}
