package cache

import (
	"math/rand"
	"testing"

	"refrint/internal/config"
	"refrint/internal/mem"
)

func l3BankConfig() config.CacheConfig {
	cfg := config.FullSize().L3
	cfg.Banks = 1
	cfg.Shared = false
	return cfg
}

// BenchmarkProbeHit measures the cost of a hit lookup in a full-size L3 bank.
func BenchmarkProbeHit(b *testing.B) {
	c := New(l3BankConfig())
	addrs := make([]mem.LineAddr, 1024)
	for i := range addrs {
		addrs[i] = mem.LineAddr(i * 7)
		c.Insert(addrs[i], mem.Exclusive, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Probe(addrs[i%len(addrs)]); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkInsertWithEviction measures steady-state fills that displace LRU
// victims.
func BenchmarkInsertWithEviction(b *testing.B) {
	c := New(l3BankConfig())
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(mem.LineAddr(rng.Intn(1<<20)), mem.Modified, int64(i))
	}
}

// BenchmarkForEachValid measures a full-bank sweep, the inner loop of the
// Periodic refresh scheme.
func BenchmarkForEachValid(b *testing.B) {
	c := New(l3BankConfig())
	for i := 0; i < c.NumLines(); i += 2 {
		c.Insert(mem.LineAddr(i), mem.Exclusive, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		c.ForEachValid(func(idx int, l *mem.Line) { n++ })
		if n == 0 {
			b.Fatal("no valid lines")
		}
	}
}
