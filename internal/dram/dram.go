// Package dram models the off-chip main memory the shared L3 misses to.
// Following the paper, performance-wise it is a fixed-latency channel (40 ns
// per access at 1 GHz) and energy-wise a fixed cost per access; a simple
// bandwidth model (a few channels, each occupied for the burst-transfer time
// of one line) serialises accesses under heavy load so that policy-induced
// DRAM traffic can show up in execution time when it is truly excessive,
// without making the channel an artificial bottleneck.
package dram

import (
	"fmt"

	"refrint/internal/config"
)

// DRAM is the main-memory channel group.
type DRAM struct {
	cfg      config.DRAMConfig
	chanBusy []int64
	nextChan int
	accesses int64
	stallAcc int64
}

// New builds the DRAM model.
func New(cfg config.DRAMConfig) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("dram: invalid config: %v", err))
	}
	return &DRAM{cfg: cfg, chanBusy: make([]int64, cfg.Channels)}
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() config.DRAMConfig { return d.cfg }

// Access performs one main-memory access starting no earlier than `now` and
// returns the cycle at which the data is available.  The access occupies its
// channel for the burst time; the full access latency is paid on top of any
// queueing delay.
func (d *DRAM) Access(now int64) (done int64) {
	ch := d.nextChan
	d.nextChan = (d.nextChan + 1) % d.cfg.Channels
	start := now
	if d.chanBusy[ch] > start {
		d.stallAcc += d.chanBusy[ch] - start
		start = d.chanBusy[ch]
	}
	d.chanBusy[ch] = start + d.cfg.BurstTime
	d.accesses++
	return start + d.cfg.AccessTime
}

// Accesses returns the number of accesses served.
func (d *DRAM) Accesses() int64 { return d.accesses }

// StallCycles returns the total cycles requests waited for a busy channel.
func (d *DRAM) StallCycles() int64 { return d.stallAcc }

// Reset clears the channel state and counters.
func (d *DRAM) Reset() {
	d.accesses = 0
	d.stallAcc = 0
	d.nextChan = 0
	for i := range d.chanBusy {
		d.chanBusy[i] = 0
	}
}
