package dram

import (
	"testing"
	"testing/quick"

	"refrint/internal/config"
)

func dramCfg() config.DRAMConfig {
	return config.DRAMConfig{AccessTime: 40, BurstTime: 8, Channels: 4}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	cases := []config.DRAMConfig{
		{AccessTime: 0, BurstTime: 8, Channels: 4},
		{AccessTime: 40, BurstTime: 0, Channels: 4},
		{AccessTime: 40, BurstTime: 50, Channels: 4},
		{AccessTime: 40, BurstTime: 8, Channels: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New with invalid config should panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSingleAccessLatency(t *testing.T) {
	d := New(dramCfg())
	if done := d.Access(100); done != 140 {
		t.Errorf("Access(100) done at %d, want 140", done)
	}
	if d.Accesses() != 1 {
		t.Errorf("Accesses = %d, want 1", d.Accesses())
	}
	if d.StallCycles() != 0 {
		t.Errorf("StallCycles = %d, want 0", d.StallCycles())
	}
}

func TestChannelsAbsorbModerateLoad(t *testing.T) {
	d := New(dramCfg())
	// Four simultaneous accesses use separate channels: no stall.
	for i := 0; i < 4; i++ {
		if done := d.Access(0); done != 40 {
			t.Errorf("access %d done at %d, want 40", i, done)
		}
	}
	// The fifth waits only for the burst occupancy (8 cycles), not the full
	// access latency: bandwidth is decoupled from latency.
	if done := d.Access(0); done != 48 {
		t.Errorf("fifth access done at %d, want 48", done)
	}
	if d.StallCycles() != 8 {
		t.Errorf("StallCycles = %d, want 8", d.StallCycles())
	}
}

func TestSaturationSerialisesBursts(t *testing.T) {
	d := New(dramCfg())
	// 40 back-to-back accesses at cycle 0: 10 per channel, each occupying 8
	// cycles, so the last one starts at 72 and completes at 112.
	var last int64
	for i := 0; i < 40; i++ {
		last = d.Access(0)
	}
	if last != 72+40 {
		t.Errorf("last access done at %d, want 112", last)
	}
}

func TestLatencyLowerBoundProperty(t *testing.T) {
	// Property: completion never precedes issue + access latency, and the
	// access counter matches the number of calls.
	f := func(gaps []uint8) bool {
		d := New(dramCfg())
		now := int64(0)
		for _, g := range gaps {
			now += int64(g)
			if d.Access(now) < now+40 {
				return false
			}
		}
		return d.Accesses() == int64(len(gaps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	d := New(dramCfg())
	for i := 0; i < 10; i++ {
		d.Access(0)
	}
	d.Reset()
	if d.Accesses() != 0 || d.StallCycles() != 0 {
		t.Error("Reset should clear counters")
	}
	if done := d.Access(0); done != 40 {
		t.Errorf("after Reset, access done at %d, want 40", done)
	}
}

func TestConfigAccessor(t *testing.T) {
	d := New(dramCfg())
	if d.Config().AccessTime != 40 || d.Config().Channels != 4 {
		t.Error("Config() should round-trip")
	}
}
