package config

// This file defines the two configuration presets described in DESIGN.md
// section 4.7: the paper's full-size configuration (Table 5.1) and a scaled
// preset used by tests and benchmarks so that the complete Table 5.4 sweep
// finishes quickly while keeping the refresh-to-access-rate ratios intact.

// Standard retention times evaluated by the paper, in microseconds.
const (
	Retention50us  = 50.0
	Retention100us = 100.0
	Retention200us = 200.0
)

// FullSize returns the paper's architecture of Table 5.1:
// 16 MIPS-like 2-issue cores at 1 GHz, 32 KB IL1, 32 KB DL1 (write-through),
// 256 KB private L2, 16 x 1 MB shared L3 banks on a 4x4 torus, 40 ns DRAM.
func FullSize() Config {
	c := Config{
		Name:     "fullsize",
		Cores:    16,
		FreqMHz:  1000,
		LineSize: 64,
		Core: CoreConfig{
			IssueWidth: 2,
			// MissOverlap approximates the latency-hiding of the paper's
			// 2-issue out-of-order core: up to this many cycles of every
			// memory-access latency are overlapped with independent work.
			MissOverlap: 24,
		},
		IL1: CacheConfig{
			Name:       "IL1",
			SizeBytes:  32 << 10,
			Ways:       2,
			LineSize:   64,
			AccessTime: 1,
			Write:      WriteBack,
			Banks:      1,
			SubArrays:  4,
			// Sentry group size 1 for L1 (512 encoder inputs in the paper).
			SentryGroup: 1,
		},
		DL1: CacheConfig{
			Name:        "DL1",
			SizeBytes:   32 << 10,
			Ways:        4,
			LineSize:    64,
			AccessTime:  1,
			Write:       WriteThrough,
			Banks:       1,
			SubArrays:   4,
			SentryGroup: 1,
		},
		L2: CacheConfig{
			Name:        "L2",
			SizeBytes:   256 << 10,
			Ways:        8,
			LineSize:    64,
			AccessTime:  2,
			Write:       WriteBack,
			Banks:       1,
			SubArrays:   4,
			SentryGroup: 4,
		},
		L3: CacheConfig{
			Name:        "L3",
			SizeBytes:   1 << 20, // per bank
			Ways:        8,
			LineSize:    64,
			AccessTime:  4,
			Write:       WriteBack,
			Shared:      true,
			Banks:       16,
			SubArrays:   4,
			SentryGroup: 16,
			// Lines are interleaved across the 16 banks, so bank-local set
			// indexing skips the 4 bank-select bits.
			IndexShift: 4,
		},
		NoC: NoCConfig{
			Width:      4,
			Height:     4,
			HopLatency: 2,
			LinkWidth:  16,
		},
		DRAM: DRAMConfig{
			AccessTime: 40, // 40 ns at 1 GHz
			BurstTime:  8,  // 64-byte burst occupancy per channel
			Channels:   4,
		},
		Cell: CellConfig{
			Tech:         SRAM,
			LeakageRatio: 1.0,
		},
		Policy:        SRAMBaseline,
		EndOfRunFlush: true,
	}
	return c
}

// scaleFactor is how much the Scaled preset shrinks capacities and retention
// times relative to FullSize.  16 keeps every cache's set count a power of
// two and brings a full sweep down to seconds.
const scaleFactor = 16

// Scaled returns a configuration in which the cache capacities and the
// retention times are divided by scaleFactor.  Workload footprints in the
// scaled experiment presets are shrunk by the same factor (see package
// workload), so hit rates, refresh rates per line and the relative position
// of each application in Figure 3.1's plane are preserved, while simulated
// run lengths drop by roughly the same factor.
func Scaled() Config {
	c := FullSize()
	c.Name = "scaled"
	c.IL1.SizeBytes /= scaleFactor
	c.DL1.SizeBytes /= scaleFactor
	c.L2.SizeBytes /= scaleFactor
	c.L3.SizeBytes /= scaleFactor
	return c
}

// ScaleFactor exposes the capacity/retention shrink factor of the Scaled
// preset so that package workload and the experiment harness can shrink
// footprints and retention times consistently.
func ScaleFactor() int { return scaleFactor }

// AsSRAM returns a copy of c configured as the full-SRAM baseline.
func AsSRAM(c Config) Config {
	out := c
	out.Cell = CellConfig{Tech: SRAM, LeakageRatio: 1.0}
	out.Policy = SRAMBaseline
	return out
}

// AsEDRAM returns a copy of c configured as a full-eDRAM hierarchy with the
// given refresh policy and cell retention time in microseconds.  The sentry
// guard band follows Section 4.1: one cycle per line of the largest bank
// (the L3 bank), i.e. 16 us for the full-size 16K-line bank at 1 GHz.
func AsEDRAM(c Config, p Policy, retentionUS float64) Config {
	out := c
	retention := out.MicrosecondsToCycles(retentionUS)
	guard := int64(out.L3.LinesPerBank())
	out.Cell = CellConfig{
		Tech:              EDRAM,
		LeakageRatio:      0.25,
		RetentionCycles:   retention,
		SentryGuardCycles: guard,
	}
	out.Policy = p
	return out
}

// ScaledRetentionUS converts one of the paper's retention times to the
// equivalent retention for the Scaled preset (divided by the scale factor so
// refreshes-per-access stay comparable).
func ScaledRetentionUS(paperUS float64) float64 {
	return paperUS / float64(scaleFactor)
}
