package config

import (
	"strings"
	"testing"
)

func TestFullSizeValidates(t *testing.T) {
	c := FullSize()
	if err := c.Validate(); err != nil {
		t.Fatalf("FullSize().Validate() = %v", err)
	}
}

func TestScaledValidates(t *testing.T) {
	c := Scaled()
	if err := c.Validate(); err != nil {
		t.Fatalf("Scaled().Validate() = %v", err)
	}
}

func TestFullSizeMatchesTable51(t *testing.T) {
	c := FullSize()
	if c.Cores != 16 {
		t.Errorf("Cores = %d, want 16", c.Cores)
	}
	if c.FreqMHz != 1000 {
		t.Errorf("FreqMHz = %d, want 1000", c.FreqMHz)
	}
	if c.IL1.SizeBytes != 32<<10 || c.IL1.Ways != 2 {
		t.Errorf("IL1 = %d bytes %d ways, want 32KB 2-way", c.IL1.SizeBytes, c.IL1.Ways)
	}
	if c.DL1.SizeBytes != 32<<10 || c.DL1.Ways != 4 || c.DL1.Write != WriteThrough {
		t.Errorf("DL1 = %d bytes %d ways %v, want 32KB 4-way WT", c.DL1.SizeBytes, c.DL1.Ways, c.DL1.Write)
	}
	if c.L2.SizeBytes != 256<<10 || c.L2.Ways != 8 || c.L2.Write != WriteBack {
		t.Errorf("L2 = %d bytes %d ways %v, want 256KB 8-way WB", c.L2.SizeBytes, c.L2.Ways, c.L2.Write)
	}
	if c.L3.SizeBytes != 1<<20 || c.L3.Banks != 16 || c.L3.Ways != 8 || !c.L3.Shared {
		t.Errorf("L3 = %d bytes/bank %d banks %d ways shared=%v, want 1MB 16 banks 8-way shared",
			c.L3.SizeBytes, c.L3.Banks, c.L3.Ways, c.L3.Shared)
	}
	if c.LineSize != 64 {
		t.Errorf("LineSize = %d, want 64", c.LineSize)
	}
	if c.DRAM.AccessTime != 40 {
		t.Errorf("DRAM access = %d cycles, want 40", c.DRAM.AccessTime)
	}
	if c.NoC.Width != 4 || c.NoC.Height != 4 {
		t.Errorf("NoC = %dx%d, want 4x4", c.NoC.Width, c.NoC.Height)
	}
	if c.IL1.AccessTime != 1 || c.DL1.AccessTime != 1 || c.L2.AccessTime != 2 || c.L3.AccessTime != 4 {
		t.Errorf("access times = %d/%d/%d/%d, want 1/1/2/4",
			c.IL1.AccessTime, c.DL1.AccessTime, c.L2.AccessTime, c.L3.AccessTime)
	}
}

func TestL3BankLineCount(t *testing.T) {
	c := FullSize()
	// 1 MB bank / 64 B lines = 16K lines per bank, as Section 4.1 states.
	if got := c.L3.LinesPerBank(); got != 16*1024 {
		t.Errorf("L3 lines per bank = %d, want 16384", got)
	}
	if got := c.L3.TotalLines(); got != 16*16*1024 {
		t.Errorf("L3 total lines = %d, want %d", got, 16*16*1024)
	}
	if got := c.L3.Sets(); got != 2048 {
		t.Errorf("L3 sets per bank = %d, want 2048", got)
	}
}

func TestEDRAMSentryGuardBand(t *testing.T) {
	c := AsEDRAM(FullSize(), RefrintWB(32, 32), Retention50us)
	if c.Cell.Tech != EDRAM {
		t.Fatalf("tech = %v, want eDRAM", c.Cell.Tech)
	}
	// Retention: 50 us at 1 GHz = 50000 cycles; guard band = 16K cycles.
	if c.Cell.RetentionCycles != 50000 {
		t.Errorf("retention = %d cycles, want 50000", c.Cell.RetentionCycles)
	}
	if c.Cell.SentryGuardCycles != 16384 {
		t.Errorf("guard = %d cycles, want 16384", c.Cell.SentryGuardCycles)
	}
	if got := c.Cell.SentryRetention(); got != 50000-16384 {
		t.Errorf("sentry retention = %d, want %d", got, 50000-16384)
	}
	if c.Cell.LeakageRatio != 0.25 {
		t.Errorf("eDRAM leakage ratio = %v, want 0.25 (Table 5.2)", c.Cell.LeakageRatio)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("eDRAM config invalid: %v", err)
	}
}

func TestSRAMBaselineConfig(t *testing.T) {
	c := AsSRAM(FullSize())
	if c.Cell.Tech != SRAM || c.Cell.LeakageRatio != 1.0 {
		t.Errorf("SRAM cell = %+v", c.Cell)
	}
	if c.Policy != SRAMBaseline {
		t.Errorf("policy = %v, want SRAM baseline", c.Policy)
	}
	if c.Cell.Refreshable() {
		t.Error("SRAM should not be refreshable")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }, "core count"},
		{"zero freq", func(c *Config) { c.FreqMHz = 0 }, "frequency"},
		{"bad line size", func(c *Config) { c.LineSize = 48 }, "line size"},
		{"bad issue width", func(c *Config) { c.Core.IssueWidth = 0 }, "issue width"},
		{"bad cache size", func(c *Config) { c.L2.SizeBytes = 0 }, "non-positive size"},
		{"bad ways", func(c *Config) { c.L3.Ways = 0 }, "associativity"},
		{"bad noc", func(c *Config) { c.NoC.Width = 0 }, "NoC"},
		{"noc core mismatch", func(c *Config) { c.NoC.Width = 2 }, "nodes"},
		{"bank mismatch", func(c *Config) { c.L3.Banks = 8 }, "banks"},
		{"bad dram", func(c *Config) { c.DRAM.AccessTime = 0 }, "DRAM"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := FullSize()
			tt.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestCellConfigValidate(t *testing.T) {
	bad := CellConfig{Tech: EDRAM, LeakageRatio: 0.25, RetentionCycles: 100, SentryGuardCycles: 100}
	if err := bad.Validate(); err == nil {
		t.Error("guard band equal to retention should be invalid")
	}
	bad = CellConfig{Tech: EDRAM, LeakageRatio: 0.25, RetentionCycles: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero retention should be invalid")
	}
	good := CellConfig{Tech: SRAM, LeakageRatio: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("SRAM cell invalid: %v", err)
	}
}

func TestPolicyStrings(t *testing.T) {
	tests := []struct {
		p    Policy
		want string
	}{
		{SRAMBaseline, "SRAM"},
		{PeriodicAll, "P.all"},
		{PeriodicValid, "P.valid"},
		{RefrintValid, "R.valid"},
		{RefrintDirty, "R.dirty"},
		{RefrintWB(32, 32), "R.WB(32,32)"},
		{PeriodicWB(4, 4), "P.WB(4,4)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPolicyBudgets(t *testing.T) {
	tests := []struct {
		p            Policy
		dirty, clean int
	}{
		{PeriodicAll, -1, -1},
		{RefrintValid, -1, -1},
		{RefrintDirty, -1, 0},
		{RefrintWB(8, 16), 8, 16},
	}
	for _, tt := range tests {
		if got := tt.p.DirtyBudget(); got != tt.dirty {
			t.Errorf("%v.DirtyBudget() = %d, want %d", tt.p, got, tt.dirty)
		}
		if got := tt.p.CleanBudget(); got != tt.clean {
			t.Errorf("%v.CleanBudget() = %d, want %d", tt.p, got, tt.clean)
		}
	}
	if !PeriodicAll.RefreshesInvalid() {
		t.Error("All policy should refresh invalid lines")
	}
	if RefrintValid.RefreshesInvalid() {
		t.Error("Valid policy should not refresh invalid lines")
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := RefrintWB(-1, 4).Validate(); err == nil {
		t.Error("negative WB budget should be invalid")
	}
	if err := (Policy{Time: TimePolicy(9)}).Validate(); err == nil {
		t.Error("unknown time policy should be invalid")
	}
	if err := (Policy{Data: DataPolicy(9)}).Validate(); err == nil {
		t.Error("unknown data policy should be invalid")
	}
	for _, p := range SweepPolicies() {
		if err := p.Validate(); err != nil {
			t.Errorf("sweep policy %v invalid: %v", p, err)
		}
	}
}

func TestSweepMatchesTable54(t *testing.T) {
	points := Sweep()
	if len(points) != 43 {
		t.Fatalf("sweep has %d combinations, want 43 (Table 5.4)", len(points))
	}
	if !points[0].IsBaseline() {
		t.Error("first sweep point should be the SRAM baseline")
	}
	if points[0].Label() != "SRAM" {
		t.Errorf("baseline label = %q", points[0].Label())
	}
	// 14 policies per retention time.
	perRetention := map[float64]int{}
	for _, p := range points[1:] {
		perRetention[p.RetentionUS]++
		if p.IsBaseline() {
			t.Errorf("non-baseline point %v marked as baseline", p)
		}
	}
	for _, ret := range RetentionTimesUS() {
		if perRetention[ret] != 14 {
			t.Errorf("retention %v us has %d policies, want 14", ret, perRetention[ret])
		}
	}
	if got := SweepSize(); got != 43 {
		t.Errorf("SweepSize() = %d, want 43", got)
	}
}

func TestSweepPolicyOrderMatchesFigures(t *testing.T) {
	want := []string{
		"P.all", "P.valid", "P.dirty", "P.WB(4,4)", "P.WB(8,8)", "P.WB(16,16)", "P.WB(32,32)",
		"R.all", "R.valid", "R.dirty", "R.WB(4,4)", "R.WB(8,8)", "R.WB(16,16)", "R.WB(32,32)",
	}
	got := SweepPolicies()
	if len(got) != len(want) {
		t.Fatalf("got %d policies, want %d", len(got), len(want))
	}
	for i, p := range got {
		if p.String() != want[i] {
			t.Errorf("policy[%d] = %q, want %q", i, p.String(), want[i])
		}
	}
}

func TestWithPolicy(t *testing.T) {
	base := AsEDRAM(FullSize(), PeriodicAll, Retention50us)
	c := base.WithPolicy(RefrintWB(16, 16), base.MicrosecondsToCycles(Retention100us))
	if c.Policy.String() != "R.WB(16,16)" {
		t.Errorf("policy = %v", c.Policy)
	}
	if c.Cell.RetentionCycles != 100000 {
		t.Errorf("retention = %d, want 100000", c.Cell.RetentionCycles)
	}
	// Original must be unchanged.
	if base.Policy.String() != "P.all" || base.Cell.RetentionCycles != 50000 {
		t.Error("WithPolicy mutated the receiver")
	}
}

func TestScaledPreservesShape(t *testing.T) {
	full, scaled := FullSize(), Scaled()
	f := ScaleFactor()
	if scaled.L3.SizeBytes*f != full.L3.SizeBytes {
		t.Errorf("scaled L3 bank = %d, want %d/%d", scaled.L3.SizeBytes, full.L3.SizeBytes, f)
	}
	if scaled.L2.SizeBytes*f != full.L2.SizeBytes {
		t.Errorf("scaled L2 = %d", scaled.L2.SizeBytes)
	}
	if scaled.Cores != full.Cores || scaled.L3.Banks != full.L3.Banks {
		t.Error("scaling must not change core or bank counts")
	}
	// Scaled retention keeps refresh-per-line-per-access ratios.
	if got := ScaledRetentionUS(Retention50us); got != 50.0/float64(f) {
		t.Errorf("ScaledRetentionUS(50) = %v", got)
	}
	// The scaled eDRAM config must still validate (guard band < retention).
	c := AsEDRAM(scaled, RefrintWB(32, 32), ScaledRetentionUS(Retention50us))
	if err := c.Validate(); err != nil {
		t.Errorf("scaled eDRAM config invalid: %v", err)
	}
}

func TestTechAndWritePolicyStrings(t *testing.T) {
	if SRAM.String() != "SRAM" || EDRAM.String() != "eDRAM" {
		t.Errorf("tech strings: %v %v", SRAM, EDRAM)
	}
	if CellTech(9).String() == "" {
		t.Error("unknown tech should still render")
	}
	if WriteBack.String() != "WB" || WriteThrough.String() != "WT" {
		t.Errorf("write policy strings: %v %v", WriteBack, WriteThrough)
	}
	if PeriodicTime.String() != "P" || RefrintTime.String() != "R" || NoRefresh.String() != "none" {
		t.Errorf("time policy strings: %v %v %v", PeriodicTime, RefrintTime, NoRefresh)
	}
	if TimePolicy(9).String() == "" || DataPolicy(9).String() == "" {
		t.Error("unknown policy values should still render")
	}
	if AllData.String() != "all" || ValidData.String() != "valid" || DirtyData.String() != "dirty" || WBData.String() != "WB" {
		t.Error("data policy strings wrong")
	}
}

func TestMicrosecondsToCycles(t *testing.T) {
	c := FullSize()
	if got := c.MicrosecondsToCycles(50); got != 50000 {
		t.Errorf("50us = %d cycles, want 50000", got)
	}
	if got := c.MicrosecondsToCycles(0.5); got != 500 {
		t.Errorf("0.5us = %d cycles, want 500", got)
	}
}

func TestGeometry(t *testing.T) {
	g := FullSize().Geometry()
	if g.LineSize != 64 {
		t.Errorf("geometry line size = %d", g.LineSize)
	}
}
