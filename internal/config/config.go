// Package config holds every tunable of the simulated system: the chip
// architecture of Table 5.1, the SRAM/eDRAM cell parameters of Table 5.2,
// the refresh-policy taxonomy of Table 3.1 and the parameter sweep of
// Table 5.4 of the Refrint paper.
//
// Two presets are provided.  FullSize reproduces the paper's configuration
// literally (16 MB of L3, 50-200 microsecond retention).  Scaled shrinks the
// caches, workload footprints and retention times by a common factor so that
// the complete 43-combination sweep over all eleven applications finishes in
// seconds while preserving the refresh-rate-to-access-rate ratios that shape
// the paper's figures.
package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"refrint/internal/mem"
)

// CellTech identifies the memory cell technology of a cache level.
type CellTech uint8

// Cell technologies.
const (
	SRAM CellTech = iota
	EDRAM
)

// String implements fmt.Stringer.
func (c CellTech) String() string {
	switch c {
	case SRAM:
		return "SRAM"
	case EDRAM:
		return "eDRAM"
	default:
		return fmt.Sprintf("CellTech(%d)", uint8(c))
	}
}

// WritePolicy distinguishes write-through from write-back caches.
type WritePolicy uint8

// Write policies.
const (
	WriteBack WritePolicy = iota
	WriteThrough
)

// String implements fmt.Stringer.
func (w WritePolicy) String() string {
	if w == WriteThrough {
		return "WT"
	}
	return "WB"
}

// CacheConfig describes one cache level (or one bank of a banked cache).
type CacheConfig struct {
	Name        string
	SizeBytes   int
	Ways        int
	LineSize    int
	AccessTime  int64 // cycles for one access
	Write       WritePolicy
	Shared      bool // true for the banked, shared L3
	Banks       int  // number of banks (1 for private caches)
	SubArrays   int  // CACTI sub-arrays per bank; periodic refresh group count
	SentryGroup int  // Refrint: lines per sentry interrupt group
	// IndexShift is the number of low-order line-address bits skipped when
	// computing the set index.  Banked caches that interleave lines across
	// banks set it to log2(Banks) so that every set of a bank is usable.
	IndexShift int
}

// Sets returns the number of sets in one bank.
func (c CacheConfig) Sets() int {
	lines := c.LinesPerBank()
	if c.Ways <= 0 {
		return lines
	}
	return lines / c.Ways
}

// LinesPerBank returns the number of lines held by one bank.
func (c CacheConfig) LinesPerBank() int {
	if c.Banks <= 0 {
		return c.SizeBytes / c.LineSize
	}
	return c.SizeBytes / c.LineSize
}

// TotalLines returns the number of lines across all banks.
func (c CacheConfig) TotalLines() int {
	banks := c.Banks
	if banks <= 0 {
		banks = 1
	}
	return c.LinesPerBank() * banks
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("config: cache %q has non-positive size %d", c.Name, c.SizeBytes)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("config: cache %q line size %d is not a power of two", c.Name, c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("config: cache %q has non-positive associativity %d", c.Name, c.Ways)
	}
	lines := c.SizeBytes / c.LineSize
	if lines%c.Ways != 0 {
		return fmt.Errorf("config: cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("config: cache %q: %d sets is not a power of two", c.Name, sets)
	}
	if c.AccessTime <= 0 {
		return fmt.Errorf("config: cache %q has non-positive access time", c.Name)
	}
	if c.Shared && c.Banks <= 0 {
		return fmt.Errorf("config: shared cache %q needs at least one bank", c.Name)
	}
	return nil
}

// NoCConfig describes the on-chip interconnect (a 2-D torus in the paper).
type NoCConfig struct {
	Width      int   // mesh/torus X dimension
	Height     int   // mesh/torus Y dimension
	HopLatency int64 // cycles per hop (router + link)
	LinkWidth  int   // bytes per flit
}

// Nodes returns the number of network nodes.
func (n NoCConfig) Nodes() int { return n.Width * n.Height }

// Validate reports configuration errors.
func (n NoCConfig) Validate() error {
	if n.Width <= 0 || n.Height <= 0 {
		return fmt.Errorf("config: NoC dimensions %dx%d invalid", n.Width, n.Height)
	}
	if n.HopLatency <= 0 {
		return fmt.Errorf("config: NoC hop latency must be positive")
	}
	if n.LinkWidth <= 0 {
		return fmt.Errorf("config: NoC link width must be positive")
	}
	return nil
}

// DRAMConfig describes the off-chip main memory channel.
type DRAMConfig struct {
	AccessTime int64 // cycles of latency per access (40 ns at 1 GHz = 40 cycles)
	// BurstTime is how long one access occupies its channel (the data-burst
	// transfer time), which bounds bandwidth independently of latency.
	BurstTime int64
	// Channels is the number of independent channels accesses are spread
	// over.
	Channels int
}

// Validate reports configuration errors.
func (d DRAMConfig) Validate() error {
	if d.AccessTime <= 0 {
		return fmt.Errorf("config: DRAM access time must be positive")
	}
	if d.BurstTime <= 0 || d.BurstTime > d.AccessTime {
		return fmt.Errorf("config: DRAM burst time must be in (0, access time]")
	}
	if d.Channels <= 0 {
		return fmt.Errorf("config: DRAM needs at least one channel")
	}
	return nil
}

// CoreConfig describes the processor core timing model.
type CoreConfig struct {
	IssueWidth int // instructions per cycle for non-memory work
	// MissOverlap approximates the memory-level parallelism of the paper's
	// out-of-order core: up to this many cycles of a miss are hidden under
	// independent work.
	MissOverlap int64
}

// Validate reports configuration errors.
func (c CoreConfig) Validate() error {
	if c.IssueWidth <= 0 {
		return fmt.Errorf("config: core issue width must be positive")
	}
	if c.MissOverlap < 0 {
		return fmt.Errorf("config: core miss overlap must be non-negative")
	}
	return nil
}

// CellConfig captures the SRAM-vs-eDRAM ratios of Table 5.2.
type CellConfig struct {
	Tech CellTech
	// LeakageRatio is the leakage power of this technology relative to SRAM
	// (1.0 for SRAM, 0.25 for eDRAM per the paper).
	LeakageRatio float64
	// RetentionCycles is the eDRAM cell retention period in cycles
	// (0 for SRAM, which never decays).
	RetentionCycles int64
	// SentryGuardCycles is how much earlier than the cell the sentry bit
	// decays (the guard band of Section 4.1).  Ignored for SRAM.
	SentryGuardCycles int64
}

// Refreshable reports whether this technology requires refresh.
func (c CellConfig) Refreshable() bool { return c.Tech == EDRAM }

// SentryRetention returns the retention period of the sentry bit.
func (c CellConfig) SentryRetention() int64 {
	return c.RetentionCycles - c.SentryGuardCycles
}

// Validate reports configuration errors.
func (c CellConfig) Validate() error {
	if c.LeakageRatio < 0 {
		return fmt.Errorf("config: negative leakage ratio")
	}
	if c.Tech == EDRAM {
		if c.RetentionCycles <= 0 {
			return fmt.Errorf("config: eDRAM retention must be positive")
		}
		if c.SentryGuardCycles < 0 || c.SentryGuardCycles >= c.RetentionCycles {
			return fmt.Errorf("config: sentry guard band %d outside (0, retention %d)", c.SentryGuardCycles, c.RetentionCycles)
		}
	}
	return nil
}

// Config is the complete description of one simulated system.
type Config struct {
	Name     string
	Cores    int
	FreqMHz  int
	Core     CoreConfig
	IL1      CacheConfig
	DL1      CacheConfig
	L2       CacheConfig
	L3       CacheConfig
	NoC      NoCConfig
	DRAM     DRAMConfig
	Cell     CellConfig // technology of every cache level (paper: all-SRAM or all-eDRAM)
	Policy   Policy     // refresh policy (ignored for SRAM)
	LineSize int
	// EndOfRunFlush writes back all dirty on-chip data to DRAM at the end of
	// the simulation, as the paper's energy accounting assumes.
	EndOfRunFlush bool
}

// Geometry returns the line geometry shared by the whole hierarchy.
func (c Config) Geometry() mem.LineGeometry { return mem.NewLineGeometry(c.LineSize) }

// Hash returns a stable content hash of the configuration: two Configs with
// equal hashes describe identical architectures.  The hash is hex and safe
// for use in file names; it is the base-configuration component of a sweep
// cell key (see sweep.CellKey).
func (c Config) Hash() string { return HashJSON(c) }

// HashJSON is the canonical content hash shared by every refrint key space
// (config hashes, sweep keys, cell keys): SHA-256 over the JSON rendering,
// truncated to 128 bits, hex-encoded.  A value that cannot marshal (an
// invalid policy, a non-finite float) falls back to its fmt rendering, so a
// usable — if non-canonical — hash is always produced.  Changing this
// recipe invalidates every persisted store key at once, which is exactly
// why it lives in one place.
func HashJSON(v any) string {
	payload, err := json.Marshal(v)
	if err != nil {
		payload = []byte(fmt.Sprintf("%+v", v))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:16])
}

// CyclesPerMicrosecond converts wall-clock microseconds to core cycles.
func (c Config) CyclesPerMicrosecond() int64 { return int64(c.FreqMHz) / 1 }

// Validate reports the first configuration error found, or nil.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("config: core count must be positive")
	}
	if c.FreqMHz <= 0 {
		return fmt.Errorf("config: frequency must be positive")
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("config: line size %d is not a power of two", c.LineSize)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	for _, cc := range []CacheConfig{c.IL1, c.DL1, c.L2, c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.NoC.Validate(); err != nil {
		return err
	}
	if c.NoC.Nodes() != c.Cores {
		return fmt.Errorf("config: NoC has %d nodes but chip has %d cores", c.NoC.Nodes(), c.Cores)
	}
	if c.L3.Banks != c.Cores {
		return fmt.Errorf("config: L3 has %d banks but chip has %d cores (one bank per node expected)", c.L3.Banks, c.Cores)
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.Cell.Validate(); err != nil {
		return err
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.Cell.Tech == EDRAM && c.Cell.SentryRetention() <= int64(c.L3.LinesPerBank()) {
		return fmt.Errorf("config: sentry retention %d cycles shorter than a full-bank refresh drain (%d lines)",
			c.Cell.SentryRetention(), c.L3.LinesPerBank())
	}
	return nil
}

// WithPolicy returns a copy of the configuration with the refresh policy and
// (for eDRAM) retention time replaced.
func (c Config) WithPolicy(p Policy, retentionCycles int64) Config {
	out := c
	out.Policy = p
	if out.Cell.Tech == EDRAM {
		out.Cell.RetentionCycles = retentionCycles
	}
	return out
}

// MicrosecondsToCycles converts a retention time in microseconds into cycles
// at the configured frequency.
func (c Config) MicrosecondsToCycles(us float64) int64 {
	return int64(us * float64(c.FreqMHz))
}
