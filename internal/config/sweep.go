package config

// This file encodes the parameter sweep of Table 5.4: three retention times,
// two time-based policies, seven data-based policies, plus the full-SRAM
// baseline — 43 combinations per application.

// SweepPoint is one (retention, policy) combination of the sweep, or the
// SRAM baseline (for which RetentionUS is zero).
type SweepPoint struct {
	RetentionUS float64
	Policy      Policy
}

// IsBaseline reports whether the point is the full-SRAM baseline.
func (p SweepPoint) IsBaseline() bool { return p.Policy.Time == NoRefresh }

// Label returns the figure label of the point, e.g. "R.WB(32,32)@50us" or
// "SRAM".
func (p SweepPoint) Label() string {
	if p.IsBaseline() {
		return "SRAM"
	}
	return p.Policy.String()
}

// RetentionTimesUS returns the three retention times of Table 5.4 in
// microseconds.
func RetentionTimesUS() []float64 {
	return []float64{Retention50us, Retention100us, Retention200us}
}

// DataPolicies returns the seven data-based policies of Table 5.4 under the
// given time-based policy, in the order the paper's figures use:
// all, valid, dirty, WB(4,4), WB(8,8), WB(16,16), WB(32,32).
func DataPolicies(t TimePolicy) []Policy {
	return []Policy{
		{Time: t, Data: AllData},
		{Time: t, Data: ValidData},
		{Time: t, Data: DirtyData},
		WB(t, 4, 4),
		WB(t, 8, 8),
		WB(t, 16, 16),
		WB(t, 32, 32),
	}
}

// TimePolicies returns the two time-based policies of the sweep in figure
// order (Periodic first, then Refrint).
func TimePolicies() []TimePolicy {
	return []TimePolicy{PeriodicTime, RefrintTime}
}

// SweepPolicies returns the 14 policies of one retention-time group in the
// order the paper's figures plot them: P.all .. P.WB(32,32), then
// R.all .. R.WB(32,32).
func SweepPolicies() []Policy {
	var out []Policy
	for _, t := range TimePolicies() {
		out = append(out, DataPolicies(t)...)
	}
	return out
}

// Sweep returns the full Table 5.4 sweep: the SRAM baseline followed by
// 3 retention times x 14 policies = 43 points.
func Sweep() []SweepPoint {
	points := []SweepPoint{{Policy: SRAMBaseline}}
	for _, ret := range RetentionTimesUS() {
		for _, p := range SweepPolicies() {
			points = append(points, SweepPoint{RetentionUS: ret, Policy: p})
		}
	}
	return points
}

// SweepSize returns the number of combinations in Table 5.4 including the
// baseline (43 in the paper).
func SweepSize() int { return len(Sweep()) }
