package config

import (
	"fmt"
	"strconv"
	"strings"
)

// TimePolicy is the time-based component of a refresh policy (Table 3.1):
// it decides WHEN lines are refreshed.
type TimePolicy uint8

// Time-based policies.
const (
	// PeriodicTime refreshes groups of lines on a fixed schedule staggered
	// across the retention period (the conventional eDRAM scheme).
	PeriodicTime TimePolicy = iota
	// RefrintTime refreshes a line when its sentry bit decays and raises an
	// interrupt (the paper's proposal).
	RefrintTime
	// NoRefresh is used for the SRAM baseline, which never refreshes.
	NoRefresh
)

// String implements fmt.Stringer using the paper's abbreviations
// (P for Periodic, R for Refrint).
func (t TimePolicy) String() string {
	switch t {
	case PeriodicTime:
		return "P"
	case RefrintTime:
		return "R"
	case NoRefresh:
		return "none"
	default:
		return fmt.Sprintf("TimePolicy(%d)", uint8(t))
	}
}

// DataPolicy is the data-based component of a refresh policy (Table 3.1):
// it decides WHAT is refreshed when the time policy fires.
type DataPolicy uint8

// Data-based policies.
const (
	// AllData refreshes every line, valid or not (reference policy).
	AllData DataPolicy = iota
	// ValidData refreshes only valid lines; invalid lines are left to decay.
	ValidData
	// DirtyData refreshes only dirty lines; clean lines are invalidated.
	DirtyData
	// WBData is WB(n,m): a dirty line is refreshed n times before being
	// written back (becoming valid clean); a valid clean line is refreshed m
	// times before being invalidated.  A normal access resets the count.
	WBData
)

// String implements fmt.Stringer.
func (d DataPolicy) String() string {
	switch d {
	case AllData:
		return "all"
	case ValidData:
		return "valid"
	case DirtyData:
		return "dirty"
	case WBData:
		return "WB"
	default:
		return fmt.Sprintf("DataPolicy(%d)", uint8(d))
	}
}

// Policy is a complete refresh policy: a time-based component, a data-based
// component, and the WB(n,m) budgets when the data policy is WBData.
type Policy struct {
	Time TimePolicy
	Data DataPolicy
	N    int // dirty-line refresh budget (WB only)
	M    int // clean-line refresh budget (WB only)
}

// Common policies, named as in the paper's figures.
var (
	// SRAMBaseline is the full-SRAM hierarchy (no refresh at all).
	SRAMBaseline = Policy{Time: NoRefresh, Data: AllData}
	// PeriodicAll is the naive eDRAM baseline ("P.all").
	PeriodicAll = Policy{Time: PeriodicTime, Data: AllData}
	// PeriodicValid is "P.valid".
	PeriodicValid = Policy{Time: PeriodicTime, Data: ValidData}
	// RefrintValid is "R.valid".
	RefrintValid = Policy{Time: RefrintTime, Data: ValidData}
	// RefrintDirty is "R.dirty".
	RefrintDirty = Policy{Time: RefrintTime, Data: DirtyData}
)

// WB returns the WB(n,m) data policy under the given time policy.
func WB(t TimePolicy, n, m int) Policy {
	return Policy{Time: t, Data: WBData, N: n, M: m}
}

// RefrintWB returns the paper's best-performing family, "R.WB(n,m)".
func RefrintWB(n, m int) Policy { return WB(RefrintTime, n, m) }

// PeriodicWB returns "P.WB(n,m)".
func PeriodicWB(n, m int) Policy { return WB(PeriodicTime, n, m) }

// String renders the policy with the paper's labels, e.g. "R.WB(32,32)".
func (p Policy) String() string {
	if p.Time == NoRefresh {
		return "SRAM"
	}
	if p.Data == WBData {
		return fmt.Sprintf("%s.WB(%d,%d)", p.Time, p.N, p.M)
	}
	return fmt.Sprintf("%s.%s", p.Time, p.Data)
}

// ParsePolicyLabel parses a policy label as used in the paper's figures:
// "SRAM", "P.all", "P.valid", "P.dirty", "R.all", "R.valid", "R.dirty",
// "P.WB(n,m)" or "R.WB(n,m)".  It is the inverse of Policy.String.
func ParsePolicyLabel(label string) (Policy, error) {
	s := strings.TrimSpace(label)
	if strings.EqualFold(s, "SRAM") {
		return SRAMBaseline, nil
	}
	var timePolicy TimePolicy
	switch {
	case strings.HasPrefix(s, "P."), strings.HasPrefix(s, "p."):
		timePolicy = PeriodicTime
	case strings.HasPrefix(s, "R."), strings.HasPrefix(s, "r."):
		timePolicy = RefrintTime
	default:
		return Policy{}, fmt.Errorf("config: policy %q must start with P. or R. (or be SRAM)", label)
	}
	rest := s[2:]
	switch strings.ToLower(rest) {
	case "all":
		return Policy{Time: timePolicy, Data: AllData}, nil
	case "valid":
		return Policy{Time: timePolicy, Data: ValidData}, nil
	case "dirty":
		return Policy{Time: timePolicy, Data: DirtyData}, nil
	}
	if strings.HasPrefix(strings.ToUpper(rest), "WB(") && strings.HasSuffix(rest, ")") {
		inner := rest[3 : len(rest)-1]
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			return Policy{}, fmt.Errorf("config: malformed WB policy %q", label)
		}
		n, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		m, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || n < 0 || m < 0 {
			return Policy{}, fmt.Errorf("config: malformed WB budgets in %q", label)
		}
		return WB(timePolicy, n, m), nil
	}
	return Policy{}, fmt.Errorf("config: unknown data policy in %q", label)
}

// MarshalText encodes the policy as its paper label, so JSON requests and
// responses carry "R.WB(32,32)" rather than numeric enum values.
func (p Policy) MarshalText() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return []byte(p.String()), nil
}

// UnmarshalText parses a paper label, inverting MarshalText.
func (p *Policy) UnmarshalText(text []byte) error {
	parsed, err := ParsePolicyLabel(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Validate reports policy construction errors.
func (p Policy) Validate() error {
	switch p.Time {
	case PeriodicTime, RefrintTime, NoRefresh:
	default:
		return fmt.Errorf("config: unknown time policy %d", p.Time)
	}
	switch p.Data {
	case AllData, ValidData, DirtyData, WBData:
	default:
		return fmt.Errorf("config: unknown data policy %d", p.Data)
	}
	if p.Data == WBData {
		if p.N < 0 || p.M < 0 {
			return fmt.Errorf("config: WB(n,m) budgets must be non-negative, got (%d,%d)", p.N, p.M)
		}
	}
	return nil
}

// RefreshesInvalid reports whether the policy spends refresh energy on
// invalid lines (only the All reference policy does).
func (p Policy) RefreshesInvalid() bool { return p.Data == AllData }

// DirtyBudget returns the number of refreshes a dirty, untouched line
// receives before the policy writes it back (or a negative value meaning
// "unbounded").
func (p Policy) DirtyBudget() int {
	switch p.Data {
	case AllData, ValidData, DirtyData:
		return -1 // never forced to write back by the policy
	case WBData:
		return p.N
	default:
		return -1
	}
}

// CleanBudget returns the number of refreshes a valid clean, untouched line
// receives before the policy invalidates it (negative means "unbounded").
func (p Policy) CleanBudget() int {
	switch p.Data {
	case AllData, ValidData:
		return -1
	case DirtyData:
		return 0 // clean lines are never refreshed: invalidate at first decay
	case WBData:
		return p.M
	default:
		return -1
	}
}
