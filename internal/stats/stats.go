// Package stats collects the raw event counts produced by a simulation run:
// per-cache-level accesses, hits, misses, refreshes, writebacks and
// invalidations, network hops, DRAM accesses and the final cycle count.
// Package energy converts these counts into Joules.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Level identifies a cache level (or DRAM) in per-level counters.
type Level int

// Cache levels.
const (
	IL1 Level = iota
	DL1
	L2
	L3
	DRAM
	NumLevels
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case IL1:
		return "IL1"
	case DL1:
		return "DL1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// OnChip reports whether the level is part of the on-chip hierarchy.
func (l Level) OnChip() bool { return l != DRAM }

// LevelCounters are the event counts recorded for one cache level.
type LevelCounters struct {
	Reads         int64 // read/ifetch lookups
	Writes        int64 // write lookups
	Hits          int64
	Misses        int64
	Refreshes     int64 // line refreshes performed (eDRAM only)
	RefreshSkips  int64 // refresh decisions that chose not to refresh
	Writebacks    int64 // dirty lines pushed to the next level
	Invalidations int64 // lines invalidated (policy, inclusion or coherence)
	Decays        int64 // lines that decayed without refresh (data lost)
	Evictions     int64 // replacement-driven evictions
	Fills         int64 // lines brought in from the next level
	RefreshStall  int64 // cycles a request waited because of refresh activity
}

// Accesses returns the total number of lookups at this level.
func (c LevelCounters) Accesses() int64 { return c.Reads + c.Writes }

// Add accumulates other into c.
func (c *LevelCounters) Add(other LevelCounters) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Hits += other.Hits
	c.Misses += other.Misses
	c.Refreshes += other.Refreshes
	c.RefreshSkips += other.RefreshSkips
	c.Writebacks += other.Writebacks
	c.Invalidations += other.Invalidations
	c.Decays += other.Decays
	c.Evictions += other.Evictions
	c.Fills += other.Fills
	c.RefreshStall += other.RefreshStall
}

// MissRate returns misses / accesses, or 0 when there were no accesses.
func (c LevelCounters) MissRate() float64 {
	a := c.Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.Misses) / float64(a)
}

// Stats is the complete set of counters for one simulation run.
type Stats struct {
	Levels [NumLevels]LevelCounters

	// NoC traffic.
	NoCMessages int64
	NoCHops     int64
	NoCFlits    int64

	// Coherence traffic seen by the directory.
	CoherenceInvalidations int64 // invalidations sent to upper-level caches
	CoherenceDowngrades    int64 // M->S transitions forced by remote readers
	CoherenceForwards      int64 // dirty data forwarded between caches

	// Core activity.
	Instructions int64 // total instructions (memory + non-memory) retired
	MemOps       int64 // memory references issued by the cores

	// Refresh-policy decisions (summed over all eDRAM caches).
	PolicyRefreshes    int64 // "refresh the line"
	PolicyWritebacks   int64 // "write it back, keep it valid clean"
	PolicyInvalidates  int64 // "invalidate it"
	SentryInterrupts   int64 // sentry-bit interrupts raised (Refrint)
	PeriodicGroupScans int64 // group refresh sweeps performed (Periodic)

	// End-of-run flush.
	FlushWritebacks int64

	// Time.
	Cycles        int64 // execution time of the slowest core
	PerCoreCycles []int64
}

// New returns an empty Stats with per-core slices sized for cores.
func New(cores int) *Stats {
	return &Stats{PerCoreCycles: make([]int64, cores)}
}

// Level returns a pointer to the counters of the given level.
func (s *Stats) Level(l Level) *LevelCounters { return &s.Levels[l] }

// Add accumulates other into s (per-core cycle slices are compared
// element-wise and the per-core maximum is kept; Cycles keeps the max).
func (s *Stats) Add(other *Stats) {
	for i := range s.Levels {
		s.Levels[i].Add(other.Levels[i])
	}
	s.NoCMessages += other.NoCMessages
	s.NoCHops += other.NoCHops
	s.NoCFlits += other.NoCFlits
	s.CoherenceInvalidations += other.CoherenceInvalidations
	s.CoherenceDowngrades += other.CoherenceDowngrades
	s.CoherenceForwards += other.CoherenceForwards
	s.Instructions += other.Instructions
	s.MemOps += other.MemOps
	s.PolicyRefreshes += other.PolicyRefreshes
	s.PolicyWritebacks += other.PolicyWritebacks
	s.PolicyInvalidates += other.PolicyInvalidates
	s.SentryInterrupts += other.SentryInterrupts
	s.PeriodicGroupScans += other.PeriodicGroupScans
	s.FlushWritebacks += other.FlushWritebacks
	if other.Cycles > s.Cycles {
		s.Cycles = other.Cycles
	}
	for i := range s.PerCoreCycles {
		if i < len(other.PerCoreCycles) && other.PerCoreCycles[i] > s.PerCoreCycles[i] {
			s.PerCoreCycles[i] = other.PerCoreCycles[i]
		}
	}
}

// TotalOnChipRefreshes returns refreshes summed over the on-chip levels.
func (s *Stats) TotalOnChipRefreshes() int64 {
	var total int64
	for l := Level(0); l < NumLevels; l++ {
		if l.OnChip() {
			total += s.Levels[l].Refreshes
		}
	}
	return total
}

// DRAMAccesses returns the number of main-memory accesses (including the
// end-of-run flush writebacks, which the paper charges to DRAM energy).
func (s *Stats) DRAMAccesses() int64 {
	return s.Levels[DRAM].Accesses() + s.FlushWritebacks
}

// String renders a compact human-readable summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d instructions=%d memops=%d\n", s.Cycles, s.Instructions, s.MemOps)
	for l := Level(0); l < NumLevels; l++ {
		c := s.Levels[l]
		if c.Accesses() == 0 && c.Refreshes == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-4s acc=%d hit=%d miss=%d (%.1f%%) refresh=%d wb=%d inv=%d decay=%d refstall=%d\n",
			l, c.Accesses(), c.Hits, c.Misses, 100*c.MissRate(), c.Refreshes, c.Writebacks, c.Invalidations, c.Decays, c.RefreshStall)
	}
	fmt.Fprintf(&b, "noc msgs=%d hops=%d  dram=%d  policy(ref=%d wb=%d inv=%d)  sentryIRQ=%d\n",
		s.NoCMessages, s.NoCHops, s.DRAMAccesses(), s.PolicyRefreshes, s.PolicyWritebacks, s.PolicyInvalidates, s.SentryInterrupts)
	return b.String()
}

// Distribution is a simple accumulator for scalar samples (used for
// reuse-distance and interrupt-latency statistics in tests and reports).
type Distribution struct {
	samples []float64
	sum     float64
}

// Observe records one sample.
func (d *Distribution) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sum += v
}

// Count returns the number of samples.
func (d *Distribution) Count() int { return len(d.samples) }

// Mean returns the sample mean, or 0 with no samples.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy; 0 with no samples.
func (d *Distribution) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), d.samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Max returns the largest sample, or 0 with no samples.
func (d *Distribution) Max() float64 {
	max := 0.0
	for i, v := range d.samples {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}
