package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{IL1: "IL1", DL1: "DL1", L2: "L2", L3: "L3", DRAM: "DRAM"}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), s)
		}
	}
	if Level(99).String() != "Level(99)" {
		t.Errorf("fallback string = %q", Level(99).String())
	}
	if DRAM.OnChip() {
		t.Error("DRAM should not be on-chip")
	}
	for _, l := range []Level{IL1, DL1, L2, L3} {
		if !l.OnChip() {
			t.Errorf("%v should be on-chip", l)
		}
	}
}

func TestLevelCountersAccessesAndMissRate(t *testing.T) {
	c := LevelCounters{Reads: 80, Writes: 20, Misses: 25, Hits: 75}
	if c.Accesses() != 100 {
		t.Errorf("Accesses = %d, want 100", c.Accesses())
	}
	if got := c.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
	var empty LevelCounters
	if empty.MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
}

func TestLevelCountersAdd(t *testing.T) {
	a := LevelCounters{Reads: 1, Writes: 2, Hits: 3, Misses: 4, Refreshes: 5, Writebacks: 6, Invalidations: 7, Decays: 8, Evictions: 9, Fills: 10, RefreshStall: 11, RefreshSkips: 12}
	b := a
	a.Add(b)
	if a.Reads != 2 || a.Writes != 4 || a.Hits != 6 || a.Misses != 8 || a.Refreshes != 10 ||
		a.Writebacks != 12 || a.Invalidations != 14 || a.Decays != 16 || a.Evictions != 18 ||
		a.Fills != 20 || a.RefreshStall != 22 || a.RefreshSkips != 24 {
		t.Errorf("Add result wrong: %+v", a)
	}
}

func TestStatsAddTakesMaxCycles(t *testing.T) {
	a := New(2)
	a.Cycles = 100
	a.PerCoreCycles[0] = 100
	a.PerCoreCycles[1] = 50
	b := New(2)
	b.Cycles = 80
	b.PerCoreCycles[0] = 70
	b.PerCoreCycles[1] = 80
	a.Add(b)
	if a.Cycles != 100 {
		t.Errorf("Cycles = %d, want max 100", a.Cycles)
	}
	if a.PerCoreCycles[0] != 100 || a.PerCoreCycles[1] != 80 {
		t.Errorf("PerCoreCycles = %v", a.PerCoreCycles)
	}
}

func TestStatsAddAccumulatesCounters(t *testing.T) {
	a, b := New(1), New(1)
	a.Level(L3).Refreshes = 10
	b.Level(L3).Refreshes = 5
	a.NoCHops, b.NoCHops = 3, 4
	a.SentryInterrupts, b.SentryInterrupts = 1, 2
	a.FlushWritebacks, b.FlushWritebacks = 7, 8
	a.Add(b)
	if a.Level(L3).Refreshes != 15 {
		t.Errorf("L3 refreshes = %d", a.Level(L3).Refreshes)
	}
	if a.NoCHops != 7 || a.SentryInterrupts != 3 || a.FlushWritebacks != 15 {
		t.Errorf("aggregate wrong: hops=%d irq=%d flush=%d", a.NoCHops, a.SentryInterrupts, a.FlushWritebacks)
	}
}

func TestTotalOnChipRefreshes(t *testing.T) {
	s := New(1)
	s.Level(IL1).Refreshes = 1
	s.Level(DL1).Refreshes = 2
	s.Level(L2).Refreshes = 3
	s.Level(L3).Refreshes = 4
	s.Level(DRAM).Refreshes = 100 // must not be counted
	if got := s.TotalOnChipRefreshes(); got != 10 {
		t.Errorf("TotalOnChipRefreshes = %d, want 10", got)
	}
}

func TestDRAMAccessesIncludesFlush(t *testing.T) {
	s := New(1)
	s.Level(DRAM).Reads = 10
	s.Level(DRAM).Writes = 5
	s.FlushWritebacks = 3
	if got := s.DRAMAccesses(); got != 18 {
		t.Errorf("DRAMAccesses = %d, want 18", got)
	}
}

func TestStatsString(t *testing.T) {
	s := New(1)
	s.Cycles = 1234
	s.Level(L3).Reads = 10
	s.Level(L3).Hits = 8
	s.Level(L3).Misses = 2
	out := s.String()
	for _, want := range []string{"cycles=1234", "L3", "miss=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "IL1") {
		t.Error("levels with no activity should be omitted from String()")
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Count() != 0 || d.Mean() != 0 || d.Percentile(50) != 0 || d.Max() != 0 {
		t.Error("empty distribution should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		d.Observe(v)
	}
	if d.Count() != 5 {
		t.Errorf("Count = %d", d.Count())
	}
	if d.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", d.Mean())
	}
	if got := d.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := d.Percentile(50); got < 2 || got > 4 {
		t.Errorf("P50 = %v, want around 3", got)
	}
	if d.Max() != 5 {
		t.Errorf("Max = %v, want 5", d.Max())
	}
}

func TestDistributionPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var d Distribution
		for _, v := range vals {
			d.Observe(v)
		}
		return d.Percentile(10) <= d.Percentile(50) && d.Percentile(50) <= d.Percentile(90)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddIsCommutativeOnCountersProperty(t *testing.T) {
	f := func(r1, w1, r2, w2 int32) bool {
		a := LevelCounters{Reads: int64(r1), Writes: int64(w1)}
		b := LevelCounters{Reads: int64(r2), Writes: int64(w2)}
		x, y := a, b
		x.Add(b)
		y.Add(a)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewStatsSizesPerCore(t *testing.T) {
	s := New(16)
	if len(s.PerCoreCycles) != 16 {
		t.Errorf("PerCoreCycles len = %d, want 16", len(s.PerCoreCycles))
	}
}
