package event

// FrameWheel is a timing wheel specialised for the refresh machinery's
// access pattern: deadlines are keyed by a dense id space (cache line frame
// indices) and each id has at most one live deadline at a time.  Instead of
// appending entries to bucket slices — which leaves a stale entry behind on
// every reschedule and makes the consumer filter them out — the wheel links
// one preallocated node per id into an intrusive doubly-linked list per
// bucket.  Rescheduling an id moves its node, so the wheel only ever holds
// live deadlines and performs no allocation after construction.
//
// Ordering matches Wheel exactly for live entries: buckets drain in
// ascending order and nodes within a bucket drain in the order their ids
// were (re)scheduled into it.
type FrameWheel struct {
	granShift   uint  // log2(granularity)
	granularity int64 // power of two
	nodes       []frameNode
	head        []int32 // head[slot] is the first node of the bucket's list, -1 if empty
	tail        []int32
	mask        int64
	next        int64 // earliest bucket that may contain nodes
	count       int
}

// frameNode is the intrusive list node of one id.
type frameNode struct {
	next, prev int32 // neighbouring ids in the bucket list, -1 at the ends
	deadline   int64
	linked     bool
}

const noNode = int32(-1)

// NewFrameWheel returns a wheel for ids 0..ids-1 whose ring covers at least
// `horizon` cycles beyond the earliest pending deadline.  Scheduling past
// the covered window grows the ring (a rare, amortised event); sizing the
// horizon to the caller's maximum schedule-ahead distance avoids it.  The
// granularity is rounded up to a power of two so bucketing is a shift.
func NewFrameWheel(granularity int64, ids int, horizon int64) *FrameWheel {
	if granularity <= 0 {
		granularity = 1
	}
	for granularity&(granularity-1) != 0 {
		granularity++
	}
	shift := uint(0)
	for g := granularity; g > 1; g >>= 1 {
		shift++
	}
	buckets := int64(defaultRingBuckets)
	if horizon > 0 {
		need := horizon/granularity + 2
		for buckets < need {
			buckets <<= 1
		}
	}
	w := &FrameWheel{
		granShift:   shift,
		granularity: granularity,
		nodes:       make([]frameNode, ids),
		head:        make([]int32, buckets),
		tail:        make([]int32, buckets),
		mask:        buckets - 1,
	}
	for i := range w.head {
		w.head[i] = noNode
		w.tail[i] = noNode
	}
	return w
}

// Len returns the number of pending deadlines.
func (w *FrameWheel) Len() int { return w.count }

// MaybeDue reports whether any deadline could be due at `now`: a
// lower-bound test (the earliest pending deadline is at or after bucket
// `next`) that owners use to skip draining entirely on the hot path.
func (w *FrameWheel) MaybeDue(now int64) bool {
	return w.count != 0 && now>>w.granShift >= w.next
}

// Deadline returns the pending deadline of id and whether one is registered.
func (w *FrameWheel) Deadline(id int) (int64, bool) {
	n := &w.nodes[id]
	return n.deadline, n.linked
}

// Schedule registers (or moves) the deadline of id.
func (w *FrameWheel) Schedule(cycle int64, id int) {
	n := &w.nodes[id]
	if n.linked {
		if n.deadline == cycle {
			return
		}
		w.unlink(int32(id))
	}
	b := cycle >> w.granShift
	switch {
	case w.count == 0:
		w.next = b
	case b < w.next:
		w.rebase(b)
	}
	if b >= w.next+int64(len(w.head)) {
		w.grow(b)
	}
	slot := b & w.mask
	n.deadline = cycle
	n.linked = true
	n.next = noNode
	n.prev = w.tail[slot]
	if n.prev == noNode {
		w.head[slot] = int32(id)
	} else {
		w.nodes[n.prev].next = int32(id)
	}
	w.tail[slot] = int32(id)
	w.count++
}

// Cancel removes the pending deadline of id, if any.
func (w *FrameWheel) Cancel(id int) {
	if w.nodes[id].linked {
		w.unlink(int32(id))
	}
}

// unlink removes a linked node from its bucket list.
func (w *FrameWheel) unlink(id int32) {
	n := &w.nodes[id]
	slot := (n.deadline >> w.granShift) & w.mask
	if n.prev == noNode {
		w.head[slot] = n.next
	} else {
		w.nodes[n.prev].next = n.next
	}
	if n.next == noNode {
		w.tail[slot] = n.prev
	} else {
		w.nodes[n.next].prev = n.prev
	}
	n.linked = false
	n.next, n.prev = noNode, noNode
	w.count--
}

// maxBucket returns the largest bucket holding a node (count must be > 0).
func (w *FrameWheel) maxBucket() int64 {
	max := int64(-1 << 62)
	for id := range w.nodes {
		n := &w.nodes[id]
		if n.linked {
			if b := n.deadline >> w.granShift; b > max {
				max = b
			}
		}
	}
	return max
}

// rebase lowers the window start to bucket b (a deadline earlier than every
// pending one was scheduled), growing the ring if the pending span no longer
// fits.  Rare: the refresh machinery only schedules forward.
func (w *FrameWheel) rebase(b int64) {
	if span := w.maxBucket() - b + 1; span > int64(len(w.head)) {
		w.rebuild(b, span)
	}
	w.next = b
}

// grow widens the ring so bucket b fits in the window [next, next+buckets).
func (w *FrameWheel) grow(b int64) {
	w.rebuild(w.next, b-w.next+1)
}

// rebuild re-links every node into a ring of at least minSpan buckets
// starting at windowStart, preserving bucket order and within-bucket order.
func (w *FrameWheel) rebuild(windowStart, minSpan int64) {
	buckets := int64(len(w.head))
	for buckets < minSpan {
		buckets <<= 1
	}
	oldHead := w.head
	oldMask := w.mask
	oldNext := w.next
	oldCount := w.count
	w.head = make([]int32, buckets)
	w.tail = make([]int32, buckets)
	w.mask = buckets - 1
	for i := range w.head {
		w.head[i] = noNode
		w.tail[i] = noNode
	}
	w.next = windowStart
	w.count = 0
	if oldCount == 0 {
		return
	}
	// Walk the old ring in bucket order, relinking each list into the new
	// ring.  Old window: [oldNext, oldNext+len(oldHead)).
	for b := oldNext; b < oldNext+int64(len(oldHead)); b++ {
		id := oldHead[b&oldMask]
		for id != noNode {
			n := &w.nodes[id]
			nextID := n.next
			n.linked = false
			n.next, n.prev = noNode, noNode
			w.Schedule(n.deadline, int(id))
			id = nextID
		}
	}
}

// PopDueInto appends up to max due entries (deadline <= now) to dst in
// non-decreasing bucket order (within-bucket in schedule order) and returns
// the extended slice.  A negative max means no limit.  It allocates only if
// dst lacks capacity.
func (w *FrameWheel) PopDueInto(now int64, max int, dst []WheelEntry) []WheelEntry {
	if w.count == 0 || max == 0 {
		return dst
	}
	popped := 0
	nowBucket := now >> w.granShift
	windowEnd := w.next + int64(len(w.head))
	stop := nowBucket
	if stop >= windowEnd {
		stop = windowEnd - 1 // nodes only exist inside the window
	}
	blocked := false // a not-yet-due node pins w.next at its bucket
	for b := w.next; b <= stop && w.count > 0; b++ {
		slot := b & w.mask
		id := w.head[slot]
		for id != noNode {
			n := &w.nodes[id]
			nextID := n.next
			if n.deadline <= now {
				dst = append(dst, WheelEntry{Cycle: n.deadline, ID: int64(id)})
				w.unlink(id)
				popped++
				if max >= 0 && popped >= max {
					return dst
				}
			} else {
				blocked = true
			}
			id = nextID
		}
		if !blocked && w.head[slot] == noNode {
			w.next = b + 1
		}
		if blocked {
			return dst
		}
	}
	return dst
}

// NextDeadline returns the earliest pending deadline and true, or (0, false)
// if the wheel is empty.  The scan is bounded by the ring size.
func (w *FrameWheel) NextDeadline() (int64, bool) {
	if w.count == 0 {
		return 0, false
	}
	for b := w.next; b < w.next+int64(len(w.head)); b++ {
		id := w.head[b&w.mask]
		if id == noNode {
			continue
		}
		min := w.nodes[id].deadline
		for id = w.nodes[id].next; id != noNode; id = w.nodes[id].next {
			if d := w.nodes[id].deadline; d < min {
				min = d
			}
		}
		return min, true
	}
	return 0, false
}
