package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero queue should be empty")
	}
	cycles := []int64{50, 10, 30, 10, 70, 0}
	for i, c := range cycles {
		q.PushAt(c, i, int64(i))
	}
	var got []int64
	for !q.Empty() {
		got = append(got, q.Pop().Cycle)
	}
	want := append([]int64(nil), cycles...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("pop[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestQueueFIFOAtSameCycle(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.PushAt(100, i, int64(i))
	}
	for i := 0; i < 10; i++ {
		e := q.Pop()
		if e.Kind != i {
			t.Errorf("events at the same cycle must pop in insertion order: got kind %d at position %d", e.Kind, i)
		}
	}
}

func TestQueuePeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil || q.Pop() != nil {
		t.Fatal("peek/pop on empty queue should return nil")
	}
	q.PushAt(42, 1, 0)
	q.PushAt(7, 2, 0)
	if e := q.Peek(); e == nil || e.Cycle != 7 {
		t.Fatalf("Peek = %+v, want cycle 7", e)
	}
	if q.Len() != 2 {
		t.Errorf("Peek must not remove events, len = %d", q.Len())
	}
}

func TestQueueRandomizedOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		var q Queue
		for i, r := range raw {
			q.PushAt(int64(r%1000), i, 0)
		}
		last := int64(-1)
		for !q.Empty() {
			e := q.Pop()
			if e.Cycle < last {
				return false
			}
			last = e.Cycle
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWheelBasic(t *testing.T) {
	w := NewWheel(1)
	if w.Len() != 0 {
		t.Fatal("new wheel should be empty")
	}
	if _, ok := w.NextDeadline(); ok {
		t.Fatal("empty wheel should have no deadline")
	}
	w.Schedule(100, 1)
	w.Schedule(50, 2)
	w.Schedule(150, 3)
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if d, ok := w.NextDeadline(); !ok || d != 50 {
		t.Fatalf("NextDeadline = %d,%v want 50,true", d, ok)
	}
	due := w.PopDue(99, -1)
	if len(due) != 1 || due[0].ID != 2 {
		t.Fatalf("PopDue(99) = %+v, want the ID 2 entry", due)
	}
	due = w.PopDue(200, -1)
	if len(due) != 2 {
		t.Fatalf("PopDue(200) returned %d entries, want 2", len(due))
	}
	if w.Len() != 0 {
		t.Errorf("wheel should be empty, len = %d", w.Len())
	}
}

func TestWheelNothingDue(t *testing.T) {
	w := NewWheel(16)
	w.Schedule(1000, 1)
	if due := w.PopDue(999, -1); len(due) != 0 {
		t.Errorf("PopDue before deadline returned %+v", due)
	}
	if w.Len() != 1 {
		t.Errorf("entry should remain, len = %d", w.Len())
	}
}

func TestWheelMaxLimit(t *testing.T) {
	w := NewWheel(1)
	for i := int64(0); i < 10; i++ {
		w.Schedule(i, i)
	}
	due := w.PopDue(100, 3)
	if len(due) != 3 {
		t.Fatalf("PopDue(max=3) returned %d entries", len(due))
	}
	if w.Len() != 7 {
		t.Errorf("Len = %d, want 7", w.Len())
	}
	// Remaining entries still retrievable.
	rest := w.PopDue(100, -1)
	if len(rest) != 7 {
		t.Errorf("rest = %d entries, want 7", len(rest))
	}
}

func TestWheelCoarseGranularity(t *testing.T) {
	w := NewWheel(64)
	w.Schedule(70, 1)  // bucket 1
	w.Schedule(130, 2) // bucket 2
	w.Schedule(10, 3)  // bucket 0
	due := w.PopDue(70, -1)
	ids := map[int64]bool{}
	for _, e := range due {
		ids[e.ID] = true
	}
	if !ids[1] || !ids[3] || ids[2] {
		t.Errorf("PopDue(70) = %+v, want IDs 1 and 3 only", due)
	}
	if d, ok := w.NextDeadline(); !ok || d != 130 {
		t.Errorf("NextDeadline = %d,%v, want 130", d, ok)
	}
}

func TestWheelReschedulingAfterDrain(t *testing.T) {
	w := NewWheel(8)
	w.Schedule(10, 1)
	w.PopDue(20, -1)
	// After a full drain the wheel must accept earlier deadlines again.
	w.Schedule(5, 2)
	if d, ok := w.NextDeadline(); !ok || d != 5 {
		t.Errorf("NextDeadline after drain = %d,%v, want 5", d, ok)
	}
	due := w.PopDue(5, -1)
	if len(due) != 1 || due[0].ID != 2 {
		t.Errorf("PopDue = %+v", due)
	}
}

func TestWheelDeadlinesNeverLostProperty(t *testing.T) {
	// Property: every scheduled entry is eventually returned exactly once,
	// and never before its deadline.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWheel(16)
		deadlines := map[int64]int64{}
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			d := rng.Int63n(10_000)
			w.Schedule(d, int64(i))
			deadlines[int64(i)] = d
		}
		seen := map[int64]bool{}
		for now := int64(0); now <= 10_000; now += 500 {
			for _, e := range w.PopDue(now, -1) {
				if seen[e.ID] {
					return false // duplicate
				}
				if deadlines[e.ID] > now {
					return false // returned early
				}
				seen[e.ID] = true
			}
		}
		return len(seen) == count && w.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQueueCallbackField(t *testing.T) {
	var q Queue
	fired := 0
	q.Push(&Event{Cycle: 10, Fn: func(cycle int64) { fired++ }})
	e := q.Pop()
	if e.Fn == nil {
		t.Fatal("callback lost")
	}
	e.Fn(e.Cycle)
	if fired != 1 {
		t.Errorf("callback fired %d times", fired)
	}
}
