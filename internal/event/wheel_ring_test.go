package event

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWheelNextDeadlineCoarseGranularity pins NextDeadline behaviour when
// buckets hold several cycles: the earliest cycle must win even when a
// later-scheduled entry lands in the same bucket.
func TestWheelNextDeadlineCoarseGranularity(t *testing.T) {
	w := NewWheel(64)
	w.Schedule(130, 1) // bucket 2
	w.Schedule(100, 2) // bucket 1
	w.Schedule(120, 3) // bucket 1, later insertion, earlier than 130
	if d, ok := w.NextDeadline(); !ok || d != 100 {
		t.Fatalf("NextDeadline = %d,%v, want 100,true", d, ok)
	}
	// Drain only the first bucket; the minimum moves to the next bucket.
	due := w.PopDue(127, -1)
	if len(due) != 2 {
		t.Fatalf("PopDue(127) returned %d entries, want 2", len(due))
	}
	if d, ok := w.NextDeadline(); !ok || d != 130 {
		t.Errorf("NextDeadline after drain = %d,%v, want 130,true", d, ok)
	}
}

// TestWheelNextDeadlineAfterMaxLimitedPop covers the interaction the old
// implementation left untested: a max-limited PopDue that stops mid-bucket
// must leave NextDeadline pointing at the remaining entries.
func TestWheelNextDeadlineAfterMaxLimitedPop(t *testing.T) {
	w := NewWheel(4)
	for i := int64(0); i < 8; i++ {
		w.Schedule(10+i, i) // buckets 2 and 3, four entries each
	}
	due := w.PopDue(100, 3)
	if len(due) != 3 {
		t.Fatalf("PopDue(max=3) returned %d entries", len(due))
	}
	if d, ok := w.NextDeadline(); !ok || d != 13 {
		t.Errorf("NextDeadline = %d,%v, want 13,true", d, ok)
	}
	rest := w.PopDue(100, -1)
	if len(rest) != 5 {
		t.Errorf("rest = %d entries, want 5", len(rest))
	}
	if _, ok := w.NextDeadline(); ok || w.Len() != 0 {
		t.Errorf("wheel should be empty, len = %d", w.Len())
	}
}

// TestWheelMaxLimitCoarseBuckets drains a coarse-bucketed wheel a few
// entries at a time and checks nothing is lost, duplicated or early.
func TestWheelMaxLimitCoarseBuckets(t *testing.T) {
	w := NewWheel(16)
	const n = 40
	for i := int64(0); i < n; i++ {
		w.Schedule(i*7, i)
	}
	seen := map[int64]bool{}
	for w.Len() > 0 {
		due := w.PopDue(n*7, 3)
		if len(due) == 0 {
			t.Fatal("PopDue made no progress")
		}
		for _, e := range due {
			if seen[e.ID] {
				t.Fatalf("duplicate id %d", e.ID)
			}
			seen[e.ID] = true
		}
	}
	if len(seen) != n {
		t.Errorf("drained %d entries, want %d", len(seen), n)
	}
}

// TestWheelOverflowBeyondRing schedules far past the ring window so entries
// land in the overflow level, then checks they drain correctly.
func TestWheelOverflowBeyondRing(t *testing.T) {
	w := NewWheel(1) // default ring: 64 buckets
	w.Schedule(5, 1)
	w.Schedule(1_000_000, 2) // far beyond the window: overflow
	w.Schedule(500_000, 3)   // also overflow
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if d, ok := w.NextDeadline(); !ok || d != 5 {
		t.Fatalf("NextDeadline = %d,%v, want 5,true", d, ok)
	}
	if due := w.PopDue(5, -1); len(due) != 1 || due[0].ID != 1 {
		t.Fatalf("PopDue(5) = %+v", due)
	}
	if d, ok := w.NextDeadline(); !ok || d != 500_000 {
		t.Fatalf("NextDeadline = %d,%v, want 500000,true", d, ok)
	}
	if due := w.PopDue(600_000, -1); len(due) != 1 || due[0].ID != 3 {
		t.Fatalf("PopDue(600000) = %+v", due)
	}
	if due := w.PopDue(1_000_000, -1); len(due) != 1 || due[0].ID != 2 {
		t.Fatalf("PopDue(1000000) = %+v", due)
	}
	if w.Len() != 0 {
		t.Errorf("Len = %d, want 0", w.Len())
	}
}

// TestWheelScheduleEarlierThanPending slides the window back when a deadline
// earlier than everything pending is scheduled.
func TestWheelScheduleEarlierThanPending(t *testing.T) {
	w := NewWheel(1)
	w.Schedule(1000, 1)
	w.Schedule(1063, 2) // same window as 1000 (64 buckets)
	w.Schedule(990, 3)  // earlier: window slides back, 1063 no longer fits
	var got []int64
	for _, e := range w.PopDue(2000, -1) {
		got = append(got, e.ID)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Errorf("drain order = %v, want [3 1 2]", got)
	}
}

// TestWheelPopDueIntoReuse checks that PopDueInto appends into the supplied
// buffer and that a warmed wheel reuses its slot storage.
func TestWheelPopDueIntoReuse(t *testing.T) {
	w := NewWheelHorizon(4, 1024)
	buf := make([]WheelEntry, 0, 16)
	for round := int64(0); round < 50; round++ {
		base := round * 20
		for i := int64(0); i < 10; i++ {
			w.Schedule(base+i, i)
		}
		buf = w.PopDueInto(base+19, -1, buf[:0])
		if len(buf) != 10 {
			t.Fatalf("round %d: drained %d entries, want 10", round, len(buf))
		}
		for i, e := range buf {
			if e.ID != int64(i) {
				t.Fatalf("round %d: order %+v", round, buf)
			}
		}
	}
	if w.Len() != 0 {
		t.Errorf("Len = %d, want 0", w.Len())
	}
}

// TestWheelHorizonSizing checks NewWheelHorizon covers the requested span.
func TestWheelHorizonSizing(t *testing.T) {
	w := NewWheelHorizon(64, 33_616)
	if got := len(w.ring); got < int(33_616/64)+2 {
		t.Errorf("ring %d buckets cannot cover a 33616-cycle horizon", got)
	}
	// The horizon property: schedule at now+horizon while an entry pends at
	// now; both stay in the ring (overflow unused).
	w.Schedule(100, 1)
	w.Schedule(100+33_616, 2)
	if len(w.overflow) != 0 {
		t.Errorf("horizon-sized wheel overflowed: %d entries", len(w.overflow))
	}
}

// TestWheelRandomizedAgainstReference cross-checks the ring implementation
// against a straightforward model over random schedule/pop interleavings,
// including deadlines far beyond the ring (overflow) and max-limited pops.
func TestWheelRandomizedAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWheel(1 + rng.Int63n(32))
		pending := map[int64]int64{} // id -> deadline
		nextID := int64(0)
		now := int64(0)
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 {
				d := now + rng.Int63n(5000)
				w.Schedule(d, nextID)
				pending[nextID] = d
				nextID++
				continue
			}
			now += rng.Int63n(800)
			max := -1
			if rng.Intn(3) == 0 {
				max = rng.Intn(4)
			}
			for _, e := range w.PopDue(now, max) {
				d, ok := pending[e.ID]
				if !ok || d > now || d != e.Cycle {
					return false // lost, duplicated or early
				}
				delete(pending, e.ID)
			}
		}
		for _, e := range w.PopDue(1<<40, -1) {
			d, ok := pending[e.ID]
			if !ok || d != e.Cycle {
				return false
			}
			delete(pending, e.ID)
		}
		return len(pending) == 0 && w.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
