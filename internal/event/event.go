// Package event provides the discrete-event infrastructure used by the
// simulator: a binary-heap event queue ordered by timestamp and a coarse
// timing wheel used to track millions of per-line decay deadlines cheaply.
package event

import "container/heap"

// Event is anything scheduled to happen at a simulated cycle.
type Event struct {
	Cycle int64
	// Kind and Arg are interpreted by the scheduler's owner; the queue does
	// not look at them.
	Kind int
	Arg  int64
	Fn   func(cycle int64) // optional callback
	seq  uint64            // tie-breaker for deterministic ordering
}

// Queue is a min-heap of events ordered by (Cycle, insertion order).
// The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Cycle != h[j].Cycle {
		return h[i].Cycle < h[j].Cycle
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Push schedules an event.
func (q *Queue) Push(e *Event) {
	e.seq = q.seq
	q.seq++
	heap.Push(&q.h, e)
}

// PushAt schedules a callback-free event at the given cycle with a kind and
// argument, and returns it.
func (q *Queue) PushAt(cycle int64, kind int, arg int64) *Event {
	e := &Event{Cycle: cycle, Kind: kind, Arg: arg}
	q.Push(e)
	return e
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *Queue) Pop() *Event {
	if q.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Peek returns the earliest event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if q.h.Len() == 0 {
		return nil
	}
	return q.h[0]
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.h.Len() }

// Empty reports whether no events are pending.
func (q *Queue) Empty() bool { return q.h.Len() == 0 }
