//go:build !race

// The race runtime instruments allocation accounting, so the AllocsPerRun
// assertions here only run in the plain test suite (the tier-1 gate).
package event

import "testing"

// TestWheelScheduleAndDrainZeroAllocs asserts the ring wheel's steady state:
// once the slot slices have grown to the working-set size, scheduling and
// draining through PopDueInto perform no heap allocations.
func TestWheelScheduleAndDrainZeroAllocs(t *testing.T) {
	w := NewWheelHorizon(64, 40_000)
	buf := make([]WheelEntry, 0, 256)
	now := int64(0)
	fill := func() {
		for i := int64(0); i < 128; i++ {
			w.Schedule(now+1000+i*64, i)
		}
	}
	drain := func() {
		now += 40_000
		buf = w.PopDueInto(now, -1, buf[:0])
	}
	// Warm up slot capacities: the 128-bucket fill span advances 625
	// buckets per lap around a 1024-slot ring, so covering every slot
	// (after which appends reuse retained capacity) takes several laps.
	for i := 0; i < 64; i++ {
		fill()
		drain()
	}
	if avg := testing.AllocsPerRun(20, func() { fill(); drain() }); avg != 0 {
		t.Errorf("warmed wheel allocates %.2f objects per schedule/drain cycle, want 0", avg)
	}
}

// TestFrameWheelZeroAllocs asserts the FrameWheel never allocates after
// construction: nodes are preallocated per id, and rescheduling moves them.
func TestFrameWheelZeroAllocs(t *testing.T) {
	const ids = 256
	w := NewFrameWheel(64, ids, 40_000)
	buf := make([]WheelEntry, 0, ids)
	now := int64(0)
	cycle := func() {
		for id := 0; id < ids; id++ {
			w.Schedule(now+1000+int64(id), id)
		}
		now += 40_000
		buf = w.PopDueInto(now, -1, buf[:0])
		if len(buf) != ids {
			t.Fatalf("drained %d entries, want %d", len(buf), ids)
		}
	}
	cycle() // settle the window
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Errorf("FrameWheel allocates %.2f objects per schedule/drain cycle, want 0", avg)
	}
}
