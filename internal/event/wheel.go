package event

// Wheel is a coarse-grained timing wheel keyed by simulated cycle.  It is
// used to hold one pending decay deadline per cache line; deadlines are
// processed lazily, in timestamp order, whenever the owning component's
// local clock advances (see DESIGN.md section 4.2).
//
// Entries are bucketed by cycle / Granularity.  Within a bucket, entries are
// drained in insertion order; because the consumer re-checks each entry's
// true deadline against the line's current state, coarse bucketing never
// causes a line to be processed early or late by more than the granularity,
// and the default granularity of 1 makes ordering exact.
type Wheel struct {
	granularity int64
	buckets     map[int64][]WheelEntry
	next        int64 // earliest bucket index that may contain entries
	count       int
}

// WheelEntry is one pending deadline.
type WheelEntry struct {
	Cycle int64 // the deadline
	ID    int64 // consumer-defined identifier (e.g. line index)
}

// NewWheel returns a timing wheel with the given bucket granularity in
// cycles.  A granularity of 1 gives exact ordering; larger granularities
// trade ordering precision inside a bucket for less map churn.
func NewWheel(granularity int64) *Wheel {
	if granularity <= 0 {
		granularity = 1
	}
	return &Wheel{
		granularity: granularity,
		buckets:     make(map[int64][]WheelEntry),
		next:        0,
	}
}

// Schedule adds a deadline for the given identifier.
func (w *Wheel) Schedule(cycle int64, id int64) {
	b := cycle / w.granularity
	if len(w.buckets) == 0 || b < w.next {
		w.next = b
	}
	w.buckets[b] = append(w.buckets[b], WheelEntry{Cycle: cycle, ID: id})
	w.count++
}

// Len returns the number of pending entries.
func (w *Wheel) Len() int { return w.count }

// PopDue removes and returns up to max entries whose deadline is <= now, in
// non-decreasing bucket order.  If max is negative, all due entries are
// returned.  Entries within one bucket are returned in insertion order.
func (w *Wheel) PopDue(now int64, max int) []WheelEntry {
	if w.count == 0 {
		return nil
	}
	var out []WheelEntry
	nowBucket := now / w.granularity
	for b := w.next; b <= nowBucket; b++ {
		entries, ok := w.buckets[b]
		if !ok {
			continue
		}
		kept := entries[:0]
		for i, e := range entries {
			if e.Cycle <= now && (max < 0 || len(out) < max) {
				out = append(out, e)
			} else {
				kept = append(kept, entries[i])
			}
		}
		if len(kept) == 0 {
			delete(w.buckets, b)
		} else {
			w.buckets[b] = kept
		}
		w.count -= len(entries) - len(kept)
		if max >= 0 && len(out) >= max {
			break
		}
	}
	w.advanceNext()
	return out
}

// advanceNext moves next past empty leading buckets so scans stay O(due).
func (w *Wheel) advanceNext() {
	if w.count == 0 {
		w.buckets = make(map[int64][]WheelEntry)
		w.next = 0
		return
	}
	for {
		if _, ok := w.buckets[w.next]; ok {
			return
		}
		w.next++
	}
}

// NextDeadline returns the earliest pending deadline and true, or (0, false)
// if the wheel is empty.
func (w *Wheel) NextDeadline() (int64, bool) {
	if w.count == 0 {
		return 0, false
	}
	b := w.next
	for {
		entries, ok := w.buckets[b]
		if ok && len(entries) > 0 {
			min := entries[0].Cycle
			for _, e := range entries[1:] {
				if e.Cycle < min {
					min = e.Cycle
				}
			}
			return min, true
		}
		b++
	}
}
