package event

import "math"

// Wheel is a coarse-grained timing wheel keyed by simulated cycle: pending
// deadlines are processed lazily, in timestamp order, whenever the owning
// component's local clock advances (see DESIGN.md section 4.2).
//
// Entries are bucketed by cycle / Granularity.  Within a bucket, entries are
// drained in insertion order; because the consumer re-checks each entry's
// true deadline against the line's current state, coarse bucketing never
// causes a line to be processed early or late by more than the granularity,
// and the default granularity of 1 makes ordering exact.
//
// Internally the wheel is a fixed-size ring of reusable slices: bucket b
// lives in slot b mod ring-size while b falls inside the active window
// [next, next+ring-size).  Entries scheduled beyond the window go to an
// overflow level and are promoted into the ring as the window advances.
// Draining through PopDueInto touches only the due buckets and reuses the
// slot slices, so a warmed-up wheel allocates nothing in steady state.
// Callers that need the window to cover their scheduling horizon up front
// (avoiding the overflow level entirely) should use NewWheelHorizon.
//
// If the overflow level holds entries for a bucket that also has entries in
// the ring, the overflow entries are drained after the ring entries of that
// bucket regardless of the original Schedule order.  A wheel whose ring
// covers the caller's scheduling horizon never overflows, so insertion
// order within a bucket is exact.
//
// Wheel is the general-purpose variant for sparse or unbounded id spaces;
// the refresh machinery (core.Bank) uses the FrameWheel specialisation,
// which additionally exploits "one live deadline per id".
type Wheel struct {
	granularity int64
	ring        [][]WheelEntry // slot b&mask holds bucket b while in-window
	mask        int64          // len(ring)-1; len(ring) is a power of two
	next        int64          // earliest bucket that may contain entries
	count       int            // total pending entries (ring + overflow)

	// overflow holds entries whose bucket did not fit in the window
	// [next, next+len(ring)) when they were scheduled, in Schedule order.
	overflow        []WheelEntry
	overflowMin     int64 // min deadline cycle in overflow (valid when non-empty)
	overflowPromote int64 // earliest overflow bucket (window advance trigger)
}

// WheelEntry is one pending deadline.
type WheelEntry struct {
	Cycle int64 // the deadline
	ID    int64 // consumer-defined identifier (e.g. line index)
}

// defaultRingBuckets is the ring size used when no horizon is given.
const defaultRingBuckets = 64

// NewWheel returns a timing wheel with the given bucket granularity in
// cycles.  A granularity of 1 gives exact ordering; larger granularities
// trade ordering precision inside a bucket for cheaper scheduling.
func NewWheel(granularity int64) *Wheel {
	return NewWheelHorizon(granularity, 0)
}

// NewWheelHorizon returns a timing wheel whose ring covers at least
// `horizon` cycles beyond the earliest pending deadline.  A caller that
// never schedules further than `horizon` past its drain point keeps every
// entry in the ring, so scheduling and draining are allocation-free once the
// slot slices have warmed up.  A horizon <= 0 selects a small default ring.
func NewWheelHorizon(granularity, horizon int64) *Wheel {
	if granularity <= 0 {
		granularity = 1
	}
	buckets := int64(defaultRingBuckets)
	if horizon > 0 {
		// +2: one bucket of slack at each end of the window (partial buckets).
		need := horizon/granularity + 2
		for buckets < need {
			buckets <<= 1
		}
	}
	return &Wheel{
		granularity: granularity,
		ring:        make([][]WheelEntry, buckets),
		mask:        buckets - 1,
	}
}

// bucketOf maps a deadline cycle to its bucket index.
func (w *Wheel) bucketOf(cycle int64) int64 { return cycle / w.granularity }

// Schedule adds a deadline for the given identifier.
func (w *Wheel) Schedule(cycle int64, id int64) {
	b := w.bucketOf(cycle)
	switch {
	case w.count == 0:
		w.next = b
	case b < w.next:
		// Scheduling before the current window start: slide the window back,
		// spilling any ring entry that no longer fits into overflow.
		w.slideWindowBack(b)
	}
	if b >= w.next+int64(len(w.ring)) {
		w.pushOverflow(WheelEntry{Cycle: cycle, ID: id}, b)
	} else {
		slot := b & w.mask
		w.ring[slot] = append(w.ring[slot], WheelEntry{Cycle: cycle, ID: id})
	}
	w.count++
}

// pushOverflow appends an entry to the overflow level, maintaining the
// overflow minima.
func (w *Wheel) pushOverflow(e WheelEntry, bucket int64) {
	if len(w.overflow) == 0 || e.Cycle < w.overflowMin {
		w.overflowMin = e.Cycle
	}
	if len(w.overflow) == 0 || bucket < w.overflowPromote {
		w.overflowPromote = bucket
	}
	w.overflow = append(w.overflow, e)
}

// slideWindowBack moves the window start down to bucket b, spilling ring
// entries whose bucket falls outside the new window into overflow.  This is
// the rare path: it only runs when a deadline earlier than every pending
// deadline is scheduled while the wheel is non-empty.
func (w *Wheel) slideWindowBack(b int64) {
	limit := b + int64(len(w.ring))
	for slot := range w.ring {
		entries := w.ring[slot]
		kept := entries[:0]
		for _, e := range entries {
			if eb := w.bucketOf(e.Cycle); eb >= limit {
				w.pushOverflow(e, eb)
			} else {
				kept = append(kept, e)
			}
		}
		w.ring[slot] = kept
	}
	w.next = b
}

// promoteOverflow moves overflow entries that fit the window starting at
// `start` into the ring, keeping the rest in overflow.  Entries move in
// overflow (i.e. Schedule) order, so same-bucket ordering among overflow
// entries is preserved.
func (w *Wheel) promoteOverflow(start int64) {
	w.next = start
	limit := start + int64(len(w.ring))
	kept := w.overflow[:0]
	w.overflowMin = math.MaxInt64
	w.overflowPromote = math.MaxInt64
	for _, e := range w.overflow {
		b := w.bucketOf(e.Cycle)
		if b < limit {
			slot := b & w.mask
			w.ring[slot] = append(w.ring[slot], e)
			continue
		}
		if e.Cycle < w.overflowMin {
			w.overflowMin = e.Cycle
		}
		if b < w.overflowPromote {
			w.overflowPromote = b
		}
		kept = append(kept, e)
	}
	w.overflow = kept
}

// Len returns the number of pending entries.
func (w *Wheel) Len() int { return w.count }

// PopDue removes and returns up to max entries whose deadline is <= now, in
// non-decreasing bucket order.  If max is negative, all due entries are
// returned.  Entries within one bucket are returned in insertion order (see
// the type comment for the overflow caveat).  The returned slice is freshly
// allocated; hot paths should use PopDueInto with a reusable buffer.
func (w *Wheel) PopDue(now int64, max int) []WheelEntry {
	return w.PopDueInto(now, max, nil)
}

// PopDueInto is PopDue appending into dst (which may be nil).  When dst has
// enough capacity the call performs no allocation: due buckets are copied
// out and the slot slices are truncated in place for reuse.
func (w *Wheel) PopDueInto(now int64, max int, dst []WheelEntry) []WheelEntry {
	if w.count == 0 || max == 0 {
		return dst
	}
	popped := 0
	nowBucket := w.bucketOf(now)
	for w.count > 0 {
		// Promote phase: pull overflow entries that fit the window into the
		// ring.  With an empty ring the window restarts at the earliest
		// overflow bucket; otherwise the window start is pinned by pending
		// ring entries and only fitting overflow entries move.
		if len(w.overflow) > 0 {
			if w.count == len(w.overflow) {
				if w.overflowPromote > nowBucket {
					break // nothing due anywhere
				}
				w.promoteOverflow(w.overflowPromote)
			} else if w.overflowPromote < w.next+int64(len(w.ring)) {
				w.promoteOverflow(w.next)
			}
		}
		if w.next > nowBucket {
			break
		}
		windowEnd := w.next + int64(len(w.ring))
		stop := nowBucket
		if stop >= windowEnd {
			stop = windowEnd - 1
		}
		blocked := false // a not-yet-due entry pins w.next at its bucket
		for b := w.next; b <= stop; b++ {
			slot := b & w.mask
			entries := w.ring[slot]
			if len(entries) == 0 {
				if !blocked {
					w.next = b + 1
				}
				continue
			}
			kept := entries[:0]
			for i, e := range entries {
				if e.Cycle <= now && (max < 0 || popped < max) {
					dst = append(dst, e)
					popped++
				} else {
					kept = append(kept, entries[i])
				}
			}
			w.ring[slot] = kept
			w.count -= len(entries) - len(kept)
			if len(kept) > 0 {
				blocked = true
			} else if !blocked {
				w.next = b + 1
			}
			if max >= 0 && popped >= max {
				return dst
			}
		}
		if blocked {
			break
		}
	}
	return dst
}

// NextDeadline returns the earliest pending deadline and true, or (0, false)
// if the wheel is empty.  The scan is bounded by the ring size: inconsistent
// internal state yields (0, false) rather than an unbounded walk.
func (w *Wheel) NextDeadline() (int64, bool) {
	if w.count == 0 {
		return 0, false
	}
	for b := w.next; b < w.next+int64(len(w.ring)); b++ {
		entries := w.ring[b&w.mask]
		if len(entries) == 0 {
			continue
		}
		min := entries[0].Cycle
		for _, e := range entries[1:] {
			if e.Cycle < min {
				min = e.Cycle
			}
		}
		if len(w.overflow) > 0 && w.overflowMin < min {
			min = w.overflowMin
		}
		return min, true
	}
	if len(w.overflow) > 0 {
		return w.overflowMin, true
	}
	return 0, false
}
