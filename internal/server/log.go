package server

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// This file adapts the server to structured logging (log/slog) without
// breaking printf-style consumers: Config.Logger is the primary sink, and
// the legacy Config.Logf hook either feeds it (Logf set, Logger unset — the
// bridge below) or is derived from it (Logger set, Logf unset), so the
// store hooks and older call sites keep one consistent stream either way.

// discardHandler drops everything (the default when neither Logger nor Logf
// is configured).  Implemented locally so the module keeps building on the
// go.mod minimum (slog.DiscardHandler is newer).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (h discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h discardHandler) WithGroup(string) slog.Handler           { return h }

// logfHandler renders slog records into a printf-style Logf as single
// "msg key=value ..." lines, preserving With-bound attributes.
type logfHandler struct {
	f     func(format string, args ...any)
	attrs string
}

func (logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	b.WriteString(h.attrs)
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	h.f("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	return logfHandler{f: h.f, attrs: b.String()}
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

// jobLogger returns the request-scoped logger for one job: every line
// carries the trace ID, job and sweep identity, tenant and class, so a
// single grep over trace_id reconstructs the job's whole story.  Safe to
// call with the server mutex held (handlers write to their own sink).
func (s *Server) jobLogger(j *Job) *slog.Logger {
	return s.cfg.Logger.With(
		"trace_id", j.trace.id,
		"job", j.id,
		"sweep", j.key,
		"client", j.request.Client,
		"class", j.class.String(),
	)
}
