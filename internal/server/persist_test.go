package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"

	"refrint"
	"refrint/internal/store"
	"refrint/internal/sweep"
)

// countingExec is the real executor with an invocation counter, so tests
// can assert "no new simulations ran".
func countingExec(calls *atomic.Int64) ExecuteFunc {
	return func(ctx context.Context, opts sweep.Options, progress func(sweep.Progress)) (*refrint.SweepResults, error) {
		calls.Add(1)
		return sweep.ExecuteContext(ctx, opts, progress)
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

func mustKey(t *testing.T, req refrint.SweepRequest) string {
	t.Helper()
	key, err := req.Key()
	if err != nil {
		t.Fatalf("request key: %v", err)
	}
	return key
}

// getText fetches a non-JSON endpoint.
func (h *harness) getText(path string) (string, int) {
	h.t.Helper()
	resp, err := h.ts.Client().Get(h.ts.URL + path)
	if err != nil {
		h.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatalf("GET %s: read body: %v", path, err)
	}
	return string(data), resp.StatusCode
}

// metricValue extracts one un-labelled metric value from exposition text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s missing from:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// TestRestartServesPersistedSweep is the acceptance criterion for the
// persistent store: a second server over the first one's data dir serves a
// completed sweep's figures — by canonical key, with no job ever submitted —
// without executing anything, and a resubmission is an immediate cache hit.
func TestRestartServesPersistedSweep(t *testing.T) {
	dir := t.TempDir()
	req := tinyRequest(11)
	key := mustKey(t, req)

	// First server lifetime: run the sweep and persist it.
	st1 := openStore(t, dir)
	var calls1 atomic.Int64
	h1 := newHarness(t, Config{Store: st1, Execute: countingExec(&calls1)})
	view, _ := h1.submit(req)
	h1.waitState(view.ID, StateDone)
	if view.Key != key {
		t.Fatalf("job key %s, want %s", view.Key, key)
	}

	// Figures are addressable by sweep key as well as by job id.
	var figsByKey, figsByID sweep.FiguresExport
	if resp := h1.do("GET", "/v1/sweeps/"+key+"/figures", nil, &figsByKey); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET figures by key: status %d", resp.StatusCode)
	}
	h1.do("GET", "/v1/sweeps/"+view.ID+"/figures", nil, &figsByID)
	wantFigs, _ := json.Marshal(figsByKey)
	if byID, _ := json.Marshal(figsByID); string(byID) != string(wantFigs) {
		t.Fatal("figures by key differ from figures by job id")
	}

	h1.ts.Close()
	h1.srv.Close()
	if err := st1.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	// Restarted server over the same data dir: no jobs exist, yet the sweep
	// is served by key without a single execution.
	st2 := openStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	var calls2 atomic.Int64
	h2 := newHarness(t, Config{Store: st2, Execute: countingExec(&calls2)})

	var figs sweep.FiguresExport
	if resp := h2.do("GET", "/v1/sweeps/"+key+"/figures", nil, &figs); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET figures by key after restart: status %d", resp.StatusCode)
	}
	if got, _ := json.Marshal(figs); string(got) != string(wantFigs) {
		t.Fatal("restarted server served different figures")
	}
	var export sweep.Export
	if resp := h2.do("GET", "/v1/sweeps/"+key+"/results", nil, &export); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results by key after restart: status %d", resp.StatusCode)
	}
	if len(export.Runs) != 2 {
		t.Fatalf("restarted results export has %d runs, want 2", len(export.Runs))
	}

	// Resubmitting the same sweep is an immediate, terminal cache hit.
	again, status := h2.submit(req)
	if status != http.StatusOK || again.State != StateDone || !again.CacheHit {
		t.Fatalf("resubmit after restart: status %d, state %s, cache_hit %v",
			status, again.State, again.CacheHit)
	}
	if n := calls2.Load(); n != 0 {
		t.Fatalf("restarted server ran %d executions, want 0", n)
	}

	// An unknown key is still a 404, not a 500.
	if _, status := h2.getText("/v1/sweeps/ffffffffffffffffffffffffffffffff/figures"); status != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", status)
	}
}

// TestOverlappingSweepsShareCells is the second acceptance criterion: a
// sweep overlapping an earlier one only simulates its fresh cells, and
// /metrics reports the cell-cache hits.
func TestOverlappingSweepsShareCells(t *testing.T) {
	st := openStore(t, t.TempDir())
	t.Cleanup(func() { st.Close() })
	h := newHarness(t, Config{Store: st})

	// First sweep: baseline + R.valid@50 on FFT = 2 cells.
	first, _ := h.submit(tinyRequest(5))
	h.waitState(first.ID, StateDone)
	if got := st.Stats(); got.CellMisses != 2 || got.CellHits != 0 {
		t.Fatalf("first sweep store stats = %+v, want 2 misses, 0 hits", got)
	}

	// Overlapping sweep: one more retention time -> 3 cells, 2 shared.
	wider := tinyRequest(5)
	wider.RetentionTimesUS = []float64{50, 100}
	second, _ := h.submit(wider)
	done := h.waitState(second.ID, StateDone)
	if done.Progress.Total != 3 {
		t.Fatalf("wider sweep total = %d sims, want 3", done.Progress.Total)
	}
	stats := st.Stats()
	if stats.CellHits != 2 {
		t.Errorf("overlapping sweep: %d cell hits, want 2", stats.CellHits)
	}
	if stats.CellMisses != 3 { // 2 from the first sweep + 1 fresh
		t.Errorf("cell misses = %d, want 3", stats.CellMisses)
	}

	// The figures of the cell-cached sweep match a from-scratch run.
	var figs sweep.FiguresExport
	h.do("GET", "/v1/sweeps/"+second.ID+"/figures", nil, &figs)
	opts, err := wider.Options()
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := sweep.Execute(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(scratch.FiguresExport())
	got, _ := json.Marshal(figs)
	if string(got) != string(want) {
		t.Error("cell-cached sweep served different figures than a from-scratch run")
	}

	// /metrics reflects all of it.
	text, status := h.getText("/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", status)
	}
	if hits := metricValue(t, text, "refrint_cell_cache_hits_total"); hits != 2 {
		t.Errorf("metrics cell hits = %g, want 2", hits)
	}
	if sims := metricValue(t, text, "refrint_sims_completed_total"); sims != 5 {
		t.Errorf("metrics sims completed = %g, want 5 (2 + 3)", sims)
	}
	if v := metricValue(t, text, "refrint_store_entries"); v != 5 { // 3 cells + 2 sweeps
		t.Errorf("metrics store entries = %g, want 5", v)
	}
	if v := metricValue(t, text, "refrint_queue_depth"); v != 0 {
		t.Errorf("metrics queue depth = %g, want 0", v)
	}
	if misses := metricValue(t, text, "refrint_sweep_cache_misses_total"); misses != 2 {
		t.Errorf("metrics sweep cache misses = %g, want 2", misses)
	}
	// Jobs-by-state series present with both sweeps done.
	re := regexp.MustCompile(`(?m)^refrint_jobs\{state="done"\} (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil || m[1] != "2" {
		t.Errorf("metrics jobs done series = %v, want 2", m)
	}
}

// TestFiguresByKeyInFlight verifies a sweep key whose execution is still
// running answers 409 (like the job-id path), not 404, and flips to 200
// once done.
func TestFiguresByKeyInFlight(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Execute: exec.fn})
	view, _ := h.submit(tinyRequest(21))
	<-exec.started
	if _, status := h.getText("/v1/sweeps/" + view.Key + "/figures"); status != http.StatusConflict {
		t.Errorf("figures by in-flight key: status %d, want 409", status)
	}
	close(exec.release)
	h.waitState(view.ID, StateDone)
	if _, status := h.getText("/v1/sweeps/" + view.Key + "/figures"); status != http.StatusOK {
		t.Errorf("figures by done key: status %d, want 200", status)
	}
}

// TestMetricsWithoutStore verifies /metrics works on a store-less server
// (no store series, everything else present).
func TestMetricsWithoutStore(t *testing.T) {
	h := newHarness(t, Config{})
	view, _ := h.submit(tinyRequest(9))
	h.waitState(view.ID, StateDone)
	hit, status := h.submit(tinyRequest(9))
	if status != http.StatusOK || !hit.CacheHit {
		t.Fatalf("second submit: status %d, cache_hit %v", status, hit.CacheHit)
	}

	text, code := h.getText("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if v := metricValue(t, text, "refrint_sweep_cache_hits_total"); v != 1 {
		t.Errorf("sweep cache hits = %g, want 1", v)
	}
	if v := metricValue(t, text, "refrint_sims_completed_total"); v != 2 {
		t.Errorf("sims completed = %g, want 2", v)
	}
	if regexp.MustCompile(`refrint_cell_cache_hits_total`).MatchString(text) {
		t.Error("store-less server exposes cell cache series")
	}
}
