package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"refrint"
	"refrint/internal/sched"
	"refrint/internal/sweep"
)

// labeledMetric extracts one labelled sample (e.g. `name{class="batch"}`)
// from exposition text, returning 0 when the series is absent.
func labeledMetric(t *testing.T, text, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", sample, m[1], err)
	}
	return v
}

// metricsText fetches /metrics.
func (h *harness) metricsText() string {
	h.t.Helper()
	text, status := h.getText("/metrics")
	if status != http.StatusOK {
		h.t.Fatalf("GET /metrics: status %d", status)
	}
	return text
}

// retryAfterHeader asserts the response carries a positive integer
// Retry-After and returns it.
func retryAfterHeader(t *testing.T, resp *http.Response) int {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", v)
	}
	return n
}

// TestValidateClient unit-tests the wire-label validator.
func TestValidateClient(t *testing.T) {
	good := []string{"", "alice", "team-7", "a.b_c:d@e/f+g", strings.Repeat("x", maxClientLabel)}
	for _, s := range good {
		if err := validateClient(s); err != nil {
			t.Errorf("validateClient(%q) = %v, want nil", s, err)
		}
	}
	bad := []string{
		strings.Repeat("x", maxClientLabel+1),
		"sp ace", "new\nline", "quo\"te", "unié", "semi;colon", "{brace}",
	}
	for _, s := range bad {
		if err := validateClient(s); err == nil {
			t.Errorf("validateClient(%q) = nil, want error", s)
		}
	}
}

// TestClientLabelRejected is the wire regression: garbage client labels get
// 400 from both submission endpoints, before any state is touched.
func TestClientLabelRejected(t *testing.T) {
	h := newHarness(t, Config{Execute: newBlockingExec().fn})

	for _, client := range []string{strings.Repeat("x", 65), "bad label"} {
		req := tinyRequest(1)
		req.Client = client
		if _, status := h.submit(req); status != http.StatusBadRequest {
			t.Errorf("sweep with client %q: status %d, want 400", client, status)
		}
		var body errorBody
		resp := h.do("POST", "/v1/batches", BatchRequest{
			Client:   client,
			Requests: []refrint.SweepRequest{tinyRequest(1)},
		}, &body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch with client %q: status %d, want 400", client, resp.StatusCode)
		}
		// A member-level override is validated too.
		member := tinyRequest(1)
		member.Client = client
		resp = h.do("POST", "/v1/batches", BatchRequest{
			Requests: []refrint.SweepRequest{member},
		}, &body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch member with client %q: status %d, want 400", client, resp.StatusCode)
		}
	}
	var hz struct {
		Jobs int `json:"jobs"`
	}
	h.do("GET", "/healthz", nil, &hz)
	if hz.Jobs != 0 {
		t.Fatalf("rejected submissions created %d jobs", hz.Jobs)
	}
}

// TestQuotaThrottlesFloodingClient is the multi-tenant acceptance test: with
// per-client quotas on, a flooding client is capped with 429s (carrying
// Retry-After) while another client's interactive sweeps run to completion
// untouched, and /metrics attributes every throttle to the flooder.
func TestQuotaThrottlesFloodingClient(t *testing.T) {
	h := newHarness(t, Config{ClientRate: 0.001, ClientBurst: 2})

	// The flooder burns its burst of 2 and then bounces off the limiter.
	throttled := 0
	for seed := int64(100); seed < 106; seed++ {
		req := tinyRequest(seed)
		req.Client = "noisy"
		req.Priority = "background"
		var view JobView
		resp := h.do("POST", "/v1/sweeps", req, &view)
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
		case http.StatusTooManyRequests:
			throttled++
			retryAfterHeader(t, resp)
		default:
			t.Fatalf("noisy seed %d: status %d", seed, resp.StatusCode)
		}
	}
	if throttled != 4 {
		t.Fatalf("flooder got %d 429s, want 4 (burst 2 of 6 submissions)", throttled)
	}

	// The well-behaved client is unaffected: its interactive sweeps are
	// admitted and complete.
	for seed := int64(200); seed < 202; seed++ {
		req := tinyRequest(seed)
		req.Client = "good"
		view, status := h.submit(req)
		if status != http.StatusAccepted {
			t.Fatalf("good seed %d: status %d, want 202", seed, status)
		}
		h.waitState(view.ID, StateDone)
	}

	text := h.metricsText()
	if n := labeledMetric(t, text, `refrint_client_throttled_total{client="noisy"}`); n != 4 {
		t.Errorf(`refrint_client_throttled_total{client="noisy"} = %g, want 4`, n)
	}
	if n := labeledMetric(t, text, `refrint_client_throttled_total{client="good"}`); n != 0 {
		t.Errorf(`refrint_client_throttled_total{client="good"} = %g, want 0`, n)
	}
}

// TestQuotaRefillRecovery drives a client over quota and then waits the
// bucket out: after roughly Retry-After seconds of refill the client is
// admitted again.
func TestQuotaRefillRecovery(t *testing.T) {
	h := newHarness(t, Config{ClientRate: 2, ClientBurst: 1})

	req := tinyRequest(300)
	req.Client = "bursty"
	if _, status := h.submit(req); status != http.StatusAccepted {
		t.Fatalf("first submission: status %d, want 202", status)
	}
	var denied *http.Response
	for seed := int64(301); seed < 320; seed++ {
		r := tinyRequest(seed)
		r.Client = "bursty"
		if resp := h.do("POST", "/v1/sweeps", r, nil); resp.StatusCode == http.StatusTooManyRequests {
			denied = resp
			break
		}
	}
	if denied == nil {
		t.Fatal("never saw a 429 with burst 1")
	}
	retryAfterHeader(t, denied)

	// At 2 tokens/second the bucket refills within ~500ms; poll until the
	// client is admitted again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := tinyRequest(999)
		r.Client = "bursty"
		resp := h.do("POST", "/v1/sweeps", r, nil)
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after refill: last status %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQuotaFakeClock unit-tests the token bucket deterministically: burst,
// denial wait hints, refill, and all-or-nothing batch charging.
func TestQuotaFakeClock(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newClientQuota(2, 4, func() time.Time { return now })

	for i := 0; i < 4; i++ {
		if ok, _ := q.allow("a", 1); !ok {
			t.Fatalf("charge %d within burst denied", i)
		}
	}
	ok, wait := q.allow("a", 1)
	if ok {
		t.Fatal("charge beyond burst allowed")
	}
	// Empty bucket, rate 2/s: one token exists in 500ms.
	if wait != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms", wait)
	}
	// A charge beyond burst hints the burst refill, not the impossible full
	// charge.
	if _, wait := q.allow("a", 10); wait != 2*time.Second {
		t.Fatalf("over-burst wait = %v, want 2s (burst/rate)", wait)
	}
	now = now.Add(time.Second) // +2 tokens
	if ok, _ := q.allow("a", 2); !ok {
		t.Fatal("refilled tokens not granted")
	}

	// allowBatch is atomic: a denied batch burns nobody's tokens.
	ok, denied, _ := q.allowBatch(map[string]int{"b": 3, "a": 1})
	if ok || denied != "a" {
		t.Fatalf("allowBatch = ok=%v denied=%q, want denial of a", ok, denied)
	}
	if ok, _ := q.allow("b", 4); !ok {
		t.Fatal("denied batch consumed b's tokens")
	}

	byClient, total := q.stats()
	if total != 3 || byClient["a"] != 3 {
		t.Fatalf("throttle stats = %v total %d, want a:3 total 3", byClient, total)
	}

	if nq := newClientQuota(0, 0, nil); nq != nil {
		t.Fatal("rate 0 should disable the quota (nil)")
	}
	var off *clientQuota
	if ok, _ := off.allow("x", 100); !ok {
		t.Fatal("nil quota must always allow")
	}
}

// TestBatchQuotaChargesPerRequest verifies a batch charges one token per
// member request: a batch larger than the remaining tokens is rejected whole
// with 429 and Retry-After, without burning the client's tokens.
func TestBatchQuotaChargesPerRequest(t *testing.T) {
	h := newHarness(t, Config{ClientRate: 0.001, ClientBurst: 3, Execute: newBlockingExec().fn})

	big := BatchRequest{Client: "camp", Requests: []refrint.SweepRequest{
		tinyRequest(1), tinyRequest(2), tinyRequest(3), tinyRequest(4),
	}}
	resp := h.do("POST", "/v1/batches", big, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("4-request batch against burst 3: status %d, want 429", resp.StatusCode)
	}
	retryAfterHeader(t, resp)

	// The rejection was all-or-nothing: the full burst is still available.
	var view BatchView
	ok := BatchRequest{Client: "camp", Requests: []refrint.SweepRequest{
		tinyRequest(1), tinyRequest(2), tinyRequest(3),
	}}
	resp = h.do("POST", "/v1/batches", ok, &view)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("3-request batch after rejected 4: status %d, want 202", resp.StatusCode)
	}
}

// TestQueueFullRetryAfter verifies the 503 paths carry a Retry-After hint on
// both submission endpoints.
func TestQueueFullRetryAfter(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, QueueDepth: 1, Execute: exec.fn})
	defer close(exec.release)

	running, _ := h.submit(tinyRequest(1))
	<-exec.started
	for seed := int64(2); ; seed++ {
		resp := h.do("POST", "/v1/sweeps", tinyRequest(seed), nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			retryAfterHeader(t, resp)
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		if seed > 16 {
			t.Fatal("queue never filled")
		}
	}
	resp := h.do("POST", "/v1/batches", BatchRequest{
		Priority: "interactive",
		Requests: []refrint.SweepRequest{tinyRequest(90), tinyRequest(91)},
	}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch into full queue: status %d, want 503", resp.StatusCode)
	}
	retryAfterHeader(t, resp)
	_ = running
}

// TestAgingLiftsBackgroundUnderLoad is the aging acceptance test: with the
// only worker pinned by an interactive sweep and more interactive work
// queued, a background sweep ages hop by hop into the interactive class —
// visible in refrint_sched_aged_total — and completes once the worker frees,
// instead of starving behind the interactive flood.
func TestAgingLiftsBackgroundUnderLoad(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{
		Shards:   1,
		AgeAfter: 25 * time.Millisecond,
		Execute:  exec.fn,
	})

	pin, _ := h.submit(tinyRequest(1))
	<-exec.started // the worker is now occupied

	// Sustained interactive load: more interactive sweeps queued ahead.
	for seed := int64(2); seed <= 4; seed++ {
		if _, status := h.submit(tinyRequest(seed)); status != http.StatusAccepted {
			t.Fatalf("interactive seed %d: status %d", seed, status)
		}
	}
	bgReq := tinyRequest(50)
	bgReq.Priority = "background"
	bgReq.Client = "nightly"
	bg, status := h.submit(bgReq)
	if status != http.StatusAccepted {
		t.Fatalf("background submit: status %d", status)
	}

	// Two full age periods lift it background -> batch -> interactive.
	deadline := time.Now().Add(10 * time.Second)
	for {
		text := h.metricsText()
		hop1 := labeledMetric(t, text, `refrint_sched_aged_total{from="background",to="batch"}`)
		hop2 := labeledMetric(t, text, `refrint_sched_aged_total{from="batch",to="interactive"}`)
		if hop1 >= 1 && hop2 >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("aging counters never moved: hop1=%g hop2=%g", hop1, hop2)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The aged execution's jobs follow it: job views must report the
	// effective (aged) class, not the submitted one.  Poll briefly — the
	// OnAge callback lands just after the scheduler counter moves.
	deadline = time.Now().Add(10 * time.Second)
	for h.getJob(bg.ID).Priority != "interactive" {
		if time.Now().After(deadline) {
			t.Fatalf("aged job still reports priority %q, want interactive", h.getJob(bg.ID).Priority)
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(exec.release)
	h.waitState(bg.ID, StateDone)
	h.waitState(pin.ID, StateDone)
}

// TestFirehoseFilters verifies GET /v1/events?client=&class=: a filtered
// dashboard sees only its tenant's (or class's) events while the rest of the
// firehose traffic is suppressed.
func TestFirehoseFilters(t *testing.T) {
	h := newHarness(t, sseConfig(nil))

	byClient := h.openSSE("/v1/events?client=alice", "")
	byClass := h.openSSE("/v1/events?class=background", "")

	// Decoys first: if the filters leak, these events arrive first and the
	// ID assertions below fail.
	decoy := tinyRequest(10)
	decoy.Client = "bob"
	decoyView, _ := h.submit(decoy)
	h.waitState(decoyView.ID, StateDone)

	aliceReq := tinyRequest(11)
	aliceReq.Client = "alice"
	aliceView, _ := h.submit(aliceReq)

	bgReq := tinyRequest(12)
	bgReq.Priority = "background"
	bgReq.Client = "bob"
	bgView, _ := h.submit(bgReq)

	assertOnly := func(st *sseStream, wantID string) {
		t.Helper()
		ev, _ := st.until("state", "progress", "done")
		var payload struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal([]byte(ev.data), &payload); err != nil {
			t.Fatalf("event data %q: %v", ev.data, err)
		}
		if payload.ID != wantID {
			t.Fatalf("filtered stream delivered job %q, want %q", payload.ID, wantID)
		}
	}
	assertOnly(byClient, aliceView.ID)
	assertOnly(byClass, bgView.ID)

	if _, status := h.getText("/v1/events?class=bogus"); status != http.StatusBadRequest {
		t.Errorf("?class=bogus: status %d, want 400", status)
	}
	if _, status := h.getText("/v1/events?client=" + strings.Repeat("x", 80)); status != http.StatusBadRequest {
		t.Errorf("overlong ?client=: status %d, want 400", status)
	}
}

// TestEventLogReplay verifies the Last-Event-ID replay log: a subscriber
// that disconnects mid-run and reconnects with its last seen ID receives the
// progress deltas it missed — before the fresh snapshot — rather than only a
// snapshot.
func TestEventLogReplay(t *testing.T) {
	exec := newSteppedExec()
	h := newHarness(t, sseConfig(exec.fn))

	// A firehose dashboard stays attached throughout, which keeps the
	// job's events publishing (and logging) while the job stream is away.
	fh := h.openSSE("/v1/events", "")

	view, _ := h.submit(tinyRequest(1))
	<-exec.started

	st1 := h.openSSE("/v1/sweeps/"+view.ID+"/events", "")
	st1.until("state")
	exec.step <- progressOf(1, 5)
	seen, _ := st1.until("progress")
	st1.close()

	// Progress the subscriber misses while away; the firehose confirms each
	// step published (and was therefore logged) before the next fires.
	exec.step <- progressOf(2, 5)
	waitProgress(t, fh, 2)
	exec.step <- progressOf(3, 5)
	waitProgress(t, fh, 3)

	st2 := h.openSSE("/v1/sweeps/"+view.ID+"/events", seen.id)
	first, ok := st2.next()
	if !ok || first.name != "progress" {
		t.Fatalf("first event after reconnect = %+v (ok=%v), want a replayed progress delta", first, ok)
	}
	if _, p := first.progressPayload(t); p.Done < 2 {
		t.Fatalf("replayed delta done = %d, want >= 2", p.Done)
	}
	// The fresh snapshot still follows the replay.
	st2.until("state")

	close(exec.release)
	if term, _ := st2.until("done", "failed", "cancelled"); term.name != "done" {
		t.Fatalf("terminal = %q, want done", term.name)
	}
}

// TestPriorityAwareCacheEviction verifies the result cache evicts background
// results before interactive ones at equal recency: with room for two
// completions, an older interactive result outlives two newer background
// completions, and the eviction lands on the by-class counter.
func TestPriorityAwareCacheEviction(t *testing.T) {
	var calls atomic.Int64
	h := newHarness(t, Config{CacheEntries: 2, Execute: countingExec(&calls)})

	iReq := tinyRequest(500) // interactive is the default class
	iView, _ := h.submit(iReq)
	h.waitState(iView.ID, StateDone)

	for seed := int64(501); seed <= 502; seed++ {
		req := tinyRequest(seed)
		req.Priority = "background"
		view, _ := h.submit(req)
		h.waitState(view.ID, StateDone)
	}

	// Three completions against capacity 2: the LRU victim would be the
	// interactive result, but priority-aware eviction takes the oldest
	// background completion instead.
	ranBefore := calls.Load()
	again, status := h.submit(iReq)
	if status != http.StatusOK || !again.CacheHit {
		t.Fatalf("interactive resubmit: status %d cacheHit %v, want 200 hit", status, again.CacheHit)
	}
	if calls.Load() != ranBefore {
		t.Fatal("interactive resubmit re-executed despite surviving eviction")
	}

	// The evicted background sweep re-executes.
	evicted := tinyRequest(501)
	evicted.Priority = "background"
	view, status := h.submit(evicted)
	if status != http.StatusAccepted {
		t.Fatalf("evicted background resubmit: status %d, want 202", status)
	}
	h.waitState(view.ID, StateDone)
	if calls.Load() != ranBefore+1 {
		t.Fatalf("evicted background resubmit ran %d executions, want 1", calls.Load()-ranBefore)
	}

	text := h.metricsText()
	if n := labeledMetric(t, text, `refrint_sweep_cache_evicted_total{class="background"}`); n < 1 {
		t.Errorf(`background evictions = %g, want >= 1`, n)
	}
	if n := labeledMetric(t, text, `refrint_sweep_cache_evicted_total{class="interactive"}`); n != 0 {
		t.Errorf(`interactive evictions = %g, want 0`, n)
	}
}

// TestQuotaBatchAtClientCap is the regression for a nil-pointer panic in
// allowBatch: with the buckets map at quotaMaxClients, charging a batch that
// contains a brand-new client used to trigger a mid-charge sweep that could
// delete a same-batch client's idle (refilled-to-full) bucket between the
// check loop and the debit loop.  The charge must succeed — and debit the
// right buckets — with the map exactly at its bound.
func TestQuotaBatchAtClientCap(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newClientQuota(1, 8, func() time.Time { return now })
	for i := 0; i < quotaMaxClients; i++ {
		q.allow(fmt.Sprintf("c%d", i), 1)
	}
	// Let every tracked bucket refill to full: the old mid-charge sweep
	// deleted exactly these when the newcomer's insertion hit the cap.
	now = now.Add(time.Hour)
	ok, denied, _ := q.allowBatch(map[string]int{"c0": 2, "newcomer": 3})
	if !ok {
		t.Fatalf("batch at client cap denied (client %q)", denied)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if b := q.buckets["c0"]; b == nil || b.tokens != 6 {
		t.Fatalf("c0 bucket = %+v, want 6 tokens (burst 8 - 2)", b)
	}
	if b := q.buckets["newcomer"]; b == nil || b.tokens != 5 {
		t.Fatalf("newcomer bucket = %+v, want 5 tokens (burst 8 - 3)", b)
	}
}

// TestQuotaHardBound floods the quota with unique client labels whose
// buckets are all non-full — the idle-bucket sweep can free nothing — and
// asserts the map stays hard-bounded anyway via stalest-first eviction.
func TestQuotaHardBound(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newClientQuota(0.001, 4, func() time.Time { return now })
	last := ""
	for i := 0; i < quotaMaxClients+600; i++ {
		now = now.Add(time.Millisecond)
		last = fmt.Sprintf("churn%d", i)
		if ok, _ := q.allow(last, 1); !ok {
			t.Fatalf("fresh client %d denied", i)
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := len(q.buckets); n > quotaMaxClients {
		t.Fatalf("buckets map grew to %d, want <= %d", n, quotaMaxClients)
	}
	if q.buckets[last] == nil {
		t.Fatal("stalest-first eviction discarded the newest bucket")
	}
}

// TestQueueFull503RefundsQuota is the regression for capacity rejections
// burning quota tokens: a client that backs off per the 503's Retry-After
// must find its tokens intact on retry, not a drained bucket answering 429.
func TestQueueFull503RefundsQuota(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{
		Shards:          1,
		ClassQueueDepth: [sched.NumClasses]int{1, 1, 1},
		ClientRate:      0.001,
		ClientBurst:     3,
		Execute:         exec.fn,
	})

	first := tinyRequest(1)
	first.Client = "hot"
	if _, status := h.submit(first); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	<-exec.started // the worker holds it; its queue slot is free again
	second := tinyRequest(2)
	second.Client = "hot"
	if _, status := h.submit(second); status != http.StatusAccepted {
		t.Fatalf("second submit: status %d", status)
	}

	// The interactive queue (depth 1) is now full.  Every further fresh
	// sweep is a capacity rejection, and each refunds its token: with burst
	// 3 and ~no refill, a third and fourth attempt must both be 503 — the
	// fourth would be a 429 if the third had burned the last token.
	for seed := int64(3); seed <= 4; seed++ {
		req := tinyRequest(seed)
		req.Client = "hot"
		var body errorBody
		resp := h.do("POST", "/v1/sweeps", req, &body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("seed %d into full queue: status %d (%s), want 503", seed, resp.StatusCode, body.Error)
		}
		retryAfterHeader(t, resp)
	}

	// The batch endpoint refunds the same way: a batch needing more slots
	// than its class has left is rejected for capacity (503) on every
	// retry, never laundered into a quota 429.
	batch := BatchRequest{Client: "batchy", Requests: []refrint.SweepRequest{
		tinyRequest(5), tinyRequest(6),
	}}
	for try := 0; try < 2; try++ {
		var body errorBody
		resp := h.do("POST", "/v1/batches", batch, &body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("batch try %d: status %d (%s), want 503", try, resp.StatusCode, body.Error)
		}
		retryAfterHeader(t, resp)
	}
}

// --- small local helpers ---

func progressOf(done, total int) sweep.Progress { return sweep.Progress{Done: done, Total: total} }

// waitProgress reads the firehose until a progress event with at least the
// wanted done count arrives.
func waitProgress(t *testing.T, st *sseStream, done int) {
	t.Helper()
	for {
		ev, _ := st.until("progress")
		if _, p := ev.progressPayload(t); p.Done >= done {
			return
		}
	}
}
