package server

import (
	"context"
	"sync/atomic"
	"testing"

	"refrint"
	"refrint/internal/sweep"
)

// stubServer is a server whose executor does nothing: the progress
// benchmarks and allocation pins exercise the callback alone.
func stubServer(tb testing.TB) *Server {
	s := New(Config{
		Execute: func(context.Context, sweep.Options, func(sweep.Progress)) (*refrint.SweepResults, error) {
			return nil, nil
		},
	})
	tb.Cleanup(s.Close)
	return s
}

// BenchmarkProgressCallback measures the per-simulation progress hook — the
// path the old implementation serialized on the global server mutex.  The
// perf gate pins it at 0 allocs/op (bench/baseline.txt).
func BenchmarkProgressCallback(b *testing.B) {
	s := stubServer(b)
	e := &entry{}
	cb := s.progressCallback(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb(sweep.Progress{Done: i + 1, Total: b.N})
	}
}

// BenchmarkHistogramObserve measures the latency-record path behind every
// /metrics histogram (HTTP requests, scheduler waits, execution times).  The
// perf gate pins it at 0 allocs/op (bench/baseline.txt).
func BenchmarkHistogramObserve(b *testing.B) {
	var h histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.0003)
	}
}

// BenchmarkHistogramObserveParallel contends Observe the way concurrent
// request handlers do.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h histogram
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0003)
		}
	})
}

// BenchmarkProgressCallbackParallel contends the CAS-max loop the way real
// sweeps do: every worker goroutine reports completions concurrently.
func BenchmarkProgressCallbackParallel(b *testing.B) {
	s := stubServer(b)
	e := &entry{}
	cb := s.progressCallback(e)
	var done atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			cb(sweep.Progress{Done: int(done.Add(1)), Total: b.N})
		}
	})
}
