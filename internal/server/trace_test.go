package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"refrint"
)

// getTrace fetches one job's lifecycle timeline.
func (h *harness) getTrace(id string) TraceView {
	h.t.Helper()
	var v TraceView
	resp := h.do("GET", "/v1/sweeps/"+id+"/trace", nil, &v)
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("GET trace %s: status %d", id, resp.StatusCode)
	}
	return v
}

// checkTimeline asserts the trace invariants every job must satisfy: a
// non-empty monotonic span sequence starting at received, and (for terminal
// jobs) phase durations that sum exactly to the traced wall time.
func checkTimeline(t *testing.T, v TraceView, terminal bool) {
	t.Helper()
	if len(v.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	if v.Spans[0].Phase != phaseReceived {
		t.Fatalf("first phase = %q, want %q", v.Spans[0].Phase, phaseReceived)
	}
	sum := 0.0
	for i, sp := range v.Spans {
		if sp.Seconds < 0 {
			t.Fatalf("span %d (%s) has negative duration %v", i, sp.Phase, sp.Seconds)
		}
		if i > 0 && sp.At.Before(v.Spans[i-1].At) {
			t.Fatalf("timeline not monotonic: span %d (%s) at %v before span %d (%s) at %v",
				i, sp.Phase, sp.At, i-1, v.Spans[i-1].Phase, v.Spans[i-1].At)
		}
		sum += sp.Seconds
	}
	if terminal {
		if last := v.Spans[len(v.Spans)-1]; last.Seconds != 0 {
			t.Fatalf("terminal span %q has duration %v, want 0", last.Phase, last.Seconds)
		}
		if math.Abs(sum-v.TotalSeconds) > 1e-6 {
			t.Fatalf("span durations sum to %v, want total %v", sum, v.TotalSeconds)
		}
	}
}

// phases extracts the ordered phase names of a trace.
func phases(v TraceView) []string {
	out := make([]string, len(v.Spans))
	for i, sp := range v.Spans {
		out[i] = sp.Phase
	}
	return out
}

// TestTraceExecutedJob walks the straight-line pipeline: a fresh submission
// that queues, executes and completes must trace every phase in order.
func TestTraceExecutedJob(t *testing.T) {
	h := newHarness(t, Config{})
	view, _ := h.submit(tinyRequest(1))
	if view.TraceID == "" {
		t.Fatal("job view has no trace_id")
	}
	done := h.waitState(view.ID, StateDone)

	tr := h.getTrace(view.ID)
	checkTimeline(t, tr, true)
	if tr.TraceID != view.TraceID {
		t.Fatalf("trace_id drifted: trace says %q, job view said %q", tr.TraceID, view.TraceID)
	}
	got := strings.Join(phases(tr), ",")
	for _, phase := range []string{phaseReceived, phaseValidated, phaseAdmitted, phaseQueued, phaseDequeued, phaseExecuting, string(StateDone)} {
		if !strings.Contains(got+",", phase+",") {
			t.Errorf("executed job timeline %q missing phase %q", got, phase)
		}
	}
	if last := tr.Spans[len(tr.Spans)-1].Phase; last != string(StateDone) {
		t.Fatalf("last phase = %q, want done", last)
	}
	// The compact summary in the job view covers the same phases.
	if done.Phases == nil {
		t.Fatal("done job view has no phases summary")
	}
	if _, ok := done.Phases[phaseExecuting]; !ok {
		t.Fatalf("phases summary %v missing %q", done.Phases, phaseExecuting)
	}
}

// TestTraceCacheHit covers the born-terminal shortcut: a resubmission of a
// completed sweep traces received -> validated -> admitted -> cache-hit ->
// done, never touching the scheduler phases.
func TestTraceCacheHit(t *testing.T) {
	h := newHarness(t, Config{})
	first, _ := h.submit(tinyRequest(2))
	h.waitState(first.ID, StateDone)

	hit, status := h.submit(tinyRequest(2))
	if status != http.StatusOK || !hit.CacheHit {
		t.Fatalf("resubmission: status %d cache_hit %v, want 200/true", status, hit.CacheHit)
	}
	tr := h.getTrace(hit.ID)
	checkTimeline(t, tr, true)
	want := []string{phaseReceived, phaseValidated, phaseAdmitted, phaseCacheHit, string(StateDone)}
	if got := phases(tr); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("cache-hit timeline = %v, want %v", got, want)
	}
	if tr.TraceID == first.TraceID {
		t.Fatal("distinct submissions share a trace ID")
	}
}

// TestTraceCancelledJob covers the queued -> cancelled jump: a job cancelled
// before any worker picks it up must trace its queue wait and terminate with
// cancelled, with no executing phase.
func TestTraceCancelledJob(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, Execute: exec.fn})
	h.submit(tinyRequest(3))
	<-exec.started // occupy the only worker

	queued, _ := h.submit(tinyRequest(4))
	h.do("DELETE", "/v1/sweeps/"+queued.ID, nil, nil)

	tr := h.getTrace(queued.ID)
	checkTimeline(t, tr, true)
	got := strings.Join(phases(tr), ",")
	if !strings.Contains(got, phaseQueued) {
		t.Fatalf("cancelled-while-queued timeline %q missing %q", got, phaseQueued)
	}
	if strings.Contains(got, phaseExecuting) {
		t.Fatalf("cancelled-while-queued timeline %q contains %q", got, phaseExecuting)
	}
	if last := tr.Spans[len(tr.Spans)-1].Phase; last != string(StateCancelled) {
		t.Fatalf("last phase = %q, want cancelled", last)
	}
	close(exec.release)
}

// TestTraceRequestID verifies X-Request-Id propagation: a well-formed caller
// ID becomes the job's trace ID (echoed on the response), while one that
// fails wire-input validation is replaced by a fresh random ID rather than
// stored or echoed.
func TestTraceRequestID(t *testing.T) {
	h := newHarness(t, Config{})

	body, _ := json.Marshal(tinyRequest(5))
	req, _ := http.NewRequest("POST", h.ts.URL+"/v1/sweeps", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "caller-trace-42")
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.TraceID != "caller-trace-42" {
		t.Fatalf("trace_id = %q, want the caller's X-Request-Id", view.TraceID)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "caller-trace-42" {
		t.Fatalf("response X-Request-Id = %q, want echo", got)
	}

	body, _ = json.Marshal(tinyRequest(6))
	req, _ = http.NewRequest("POST", h.ts.URL+"/v1/sweeps", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "spaces are invalid")
	resp, err = h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	view = JobView{}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.TraceID == "spaces are invalid" || view.TraceID == "" {
		t.Fatalf("invalid X-Request-Id handling: trace_id = %q, want a fresh random ID", view.TraceID)
	}
}

// TestBatchTrace covers the aggregated endpoint: every member carries its
// own timeline under a shared request ID with per-member suffixes, and the
// timelines survive member freezing.
func TestBatchTrace(t *testing.T) {
	h := newHarness(t, Config{})
	var bv BatchView
	resp := h.do("POST", "/v1/batches", BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(7), tinyRequest(8)},
	}, &bv)
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("batch response has no X-Request-Id")
	}
	h.waitBatchState(bv.ID, StateDone)
	// Freeze terminal members by forcing the eviction sweep that runs on the
	// next batch submission.
	h.do("POST", "/v1/batches", BatchRequest{Requests: []refrint.SweepRequest{tinyRequest(7)}}, nil)

	var btv BatchTraceView
	r2 := h.do("GET", "/v1/batches/"+bv.ID+"/trace", nil, &btv)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("GET batch trace: status %d", r2.StatusCode)
	}
	if len(btv.Traces) != 2 {
		t.Fatalf("batch trace has %d members, want 2", len(btv.Traces))
	}
	for i, tr := range btv.Traces {
		checkTimeline(t, tr, true)
		if want := reqID + "." + string(rune('0'+i)); tr.TraceID != want {
			t.Errorf("member %d trace_id = %q, want %q", i, tr.TraceID, want)
		}
	}

	if _, status := h.getText("/v1/batches/nope/trace"); status != http.StatusNotFound {
		t.Fatalf("trace of unknown batch: status %d, want 404", status)
	}
}
