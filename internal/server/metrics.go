package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"refrint/internal/sched"
)

// handleMetrics implements GET /metrics: a plain-text, Prometheus-style
// exposition of the service's operational counters.  It uses no external
// dependencies — the format is simple enough to emit by hand.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	byState := map[State]int{}
	for _, j := range s.jobs {
		byState[j.state]++
	}
	sst := s.sched.Stats()
	queued := 0
	for _, q := range sst.Queued {
		queued += q
	}
	batches := len(s.batches)
	cached, inflight := s.cache.stats()
	sweepHits, sweepMisses := s.sweepCacheHits, s.sweepCacheMisses
	sweepEvicted := s.sweepCacheEvicted
	s.foldSimRateLocked()
	sims := s.simsCompleted.Load()
	windowed := s.simRate.Rate()
	uptime := time.Since(s.startedAt).Seconds()
	s.mu.Unlock()
	subs, published, dropped := s.bus.stats()

	var b strings.Builder
	gauge := func(name, help string, value any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}
	counter := func(name, help string, value any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, value)
	}

	gauge("refrint_queue_depth", "Sweep executions waiting in scheduler queues (all classes).", queued)

	fmt.Fprintf(&b, "# HELP refrint_sched_queue_depth Sweep executions waiting, by priority class.\n# TYPE refrint_sched_queue_depth gauge\n")
	for c := sched.Class(0); c < sched.NumClasses; c++ {
		fmt.Fprintf(&b, "refrint_sched_queue_depth{class=%q} %d\n", c.String(), sst.Queued[c])
	}
	counter("refrint_sched_steals_total", "Dequeues where an idle worker took work homed to a sibling.", sst.Steals)
	fmt.Fprintf(&b, "# HELP refrint_sched_wait_seconds_sum Cumulative submit-to-dequeue latency, by priority class.\n# TYPE refrint_sched_wait_seconds_sum counter\n")
	for c := sched.Class(0); c < sched.NumClasses; c++ {
		fmt.Fprintf(&b, "refrint_sched_wait_seconds_sum{class=%q} %.6f\n", c.String(), sst.WaitSum[c].Seconds())
	}
	fmt.Fprintf(&b, "# HELP refrint_sched_wait_seconds_count Dequeues observed by the latency sum, by priority class.\n# TYPE refrint_sched_wait_seconds_count counter\n")
	for c := sched.Class(0); c < sched.NumClasses; c++ {
		fmt.Fprintf(&b, "refrint_sched_wait_seconds_count{class=%q} %d\n", c.String(), sst.WaitCount[c])
	}
	fmt.Fprintf(&b, "# HELP refrint_sched_aged_total Queued sweeps aged into a more urgent class after waiting past the age threshold.\n# TYPE refrint_sched_aged_total counter\n")
	for to := sched.Class(0); to < sched.NumClasses-1; to++ {
		from := to + 1
		fmt.Fprintf(&b, "refrint_sched_aged_total{from=%q,to=%q} %d\n", from.String(), to.String(), sst.Aged[from][to])
	}
	gauge("refrint_sched_workers", "Worker goroutines executing sweeps.", sst.Workers)
	gauge("refrint_sched_busy_workers", "Workers currently running a sweep.", sst.Busy)
	gauge("refrint_batches", "Batches currently pollable.", batches)

	fmt.Fprintf(&b, "# HELP refrint_jobs Jobs by lifecycle state.\n# TYPE refrint_jobs gauge\n")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(&b, "refrint_jobs{state=%q} %d\n", string(st), byState[st])
	}

	gauge("refrint_sweep_cache_entries", "Completed sweeps held in the in-memory cache.", cached)
	gauge("refrint_sweep_inflight", "Sweep executions currently queued or running.", inflight)
	counter("refrint_sweep_cache_hits_total", "Submissions answered immediately from the sweep cache or store.", sweepHits)
	counter("refrint_sweep_cache_misses_total", "Submissions that required a live execution.", sweepMisses)
	fmt.Fprintf(&b, "# HELP refrint_sweep_cache_evicted_total Completed sweeps evicted from the in-memory cache, by the execution's priority class.\n# TYPE refrint_sweep_cache_evicted_total counter\n")
	for c := sched.Class(0); c < sched.NumClasses; c++ {
		fmt.Fprintf(&b, "refrint_sweep_cache_evicted_total{class=%q} %d\n", c.String(), sweepEvicted[c])
	}

	if byClient, throttledTotal := s.quota.stats(); s.quota != nil {
		fmt.Fprintf(&b, "# HELP refrint_client_throttled_total Submissions rejected with 429 by the per-client rate limit.\n# TYPE refrint_client_throttled_total counter\n")
		clients := make([]string, 0, len(byClient))
		for c := range byClient {
			clients = append(clients, c)
		}
		sort.Strings(clients)
		for _, c := range clients {
			fmt.Fprintf(&b, "refrint_client_throttled_total{client=%q} %d\n", c, byClient[c])
		}
		if len(byClient) == 0 {
			// No throttles yet: expose the zero total so the series exists
			// (and dashboards can rate() it) from the first scrape.
			fmt.Fprintf(&b, "refrint_client_throttled_total{client=\"\"} %d\n", throttledTotal)
		}
	}

	if st := s.cfg.Store; st != nil {
		ss := st.Stats()
		counter("refrint_cell_cache_hits_total", "Simulation cells served from the persistent store.", ss.CellHits)
		counter("refrint_cell_cache_misses_total", "Simulation cells that had to be computed.", ss.CellMisses)
		counter("refrint_store_sweep_hits_total", "Whole-sweep store reads that hit.", ss.SweepHits)
		counter("refrint_store_sweep_misses_total", "Whole-sweep store reads that missed.", ss.SweepMisses)
		gauge("refrint_store_entries", "Blobs currently persisted in the store.", ss.Entries)
		gauge("refrint_store_bytes", "Bytes currently persisted in the store.", ss.Bytes)
		counter("refrint_store_quarantined_total", "Blobs quarantined after failing verification.", ss.Quarantined)
		counter("refrint_store_evictions_total", "Blobs evicted by the LRU byte budget.", ss.Evictions)
		fmt.Fprintf(&b, "# HELP refrint_store_evictions_rank_total Blobs evicted by the LRU byte budget, by retention rank (0 = most retained).\n# TYPE refrint_store_evictions_rank_total counter\n")
		for rank, n := range ss.EvictionsByRank {
			fmt.Fprintf(&b, "refrint_store_evictions_rank_total{rank=\"%d\"} %d\n", rank, n)
		}
	}

	gauge("refrint_event_subscribers", "Open SSE subscriptions (job, batch and firehose streams).", subs)
	counter("refrint_events_published_total", "Events fanned out to at least one SSE subscriber.", published)
	counter("refrint_events_dropped_total", "Events dropped or coalesced away on slow SSE subscribers.", dropped)

	counter("refrint_sims_completed_total", "Simulations completed (cell-cache hits included).", sims)
	rate := 0.0
	if uptime > 0 {
		rate = float64(sims) / uptime
	}
	gauge("refrint_sims_per_second", "Average simulations per second since the server started.", fmt.Sprintf("%.6g", rate))
	gauge("refrint_sims_per_second_1m", "Simulations per second over the last minute (sliding window).", fmt.Sprintf("%.6g", windowed))
	gauge("refrint_uptime_seconds", "Seconds since the server started.", fmt.Sprintf("%.3f", uptime))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
