package server

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"refrint/internal/sched"
)

// buildInfoLabels is the constant label set of refrint_build_info, resolved
// once from the binary's embedded build metadata.
var buildInfoLabels = func() string {
	version, revision := "unknown", "unknown"
	goVersion := runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				revision = kv.Value
			}
		}
	}
	return fmt.Sprintf("go_version=%q,version=%q,revision=%q", goVersion, version, revision)
}()

// metricsSnapshot is everything /metrics reads from state guarded by the
// server mutex, captured in one short critical section.  Rendering — string
// formatting for dozens of series — happens after the lock is released, so a
// slow scraper can never stall submissions or terminal transitions.
type metricsSnapshot struct {
	byState          map[State]int
	batches          int
	cached, inflight int
	sweepHits        int64
	sweepMisses      int64
	sweepEvicted     [sched.NumClasses]int64
	panics           map[string]int64
	jobTimeouts      [sched.NumClasses]int64
	windowed         float64
}

// snapshotMetricsLocked captures the mutex-guarded half of the exposition.
// Caller holds the server mutex.
func (s *Server) snapshotMetricsLocked() metricsSnapshot {
	snap := metricsSnapshot{
		byState:      make(map[State]int, 5),
		batches:      len(s.batches),
		sweepHits:    s.sweepCacheHits,
		sweepMisses:  s.sweepCacheMisses,
		sweepEvicted: s.sweepCacheEvicted,
		panics:       make(map[string]int64, len(s.panicsTotal)),
		jobTimeouts:  s.jobTimeouts,
	}
	for site, n := range s.panicsTotal {
		snap.panics[site] = n
	}
	for _, j := range s.jobs {
		snap.byState[j.state]++
	}
	snap.cached, snap.inflight = s.cache.stats()
	s.foldSimRateLocked()
	snap.windowed = s.simRate.Rate()
	return snap
}

// handleMetrics implements GET /metrics: a plain-text, Prometheus-style
// exposition of the service's operational counters, gauges and latency
// histograms.  It uses no external dependencies — the format is simple
// enough to emit by hand.  Everything under s.mu is snapshotted first and
// rendered after unlock; the scheduler, store, quota and event-bus stats
// have their own locks, and the histograms are lock-free atomics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.snapshotMetricsLocked()
	s.mu.Unlock()

	var b strings.Builder
	s.renderMetrics(&b, snap)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// renderMetrics formats the full exposition.  It holds NO server mutex: the
// mutex-guarded values arrive pre-snapshotted, everything else is read from
// independently synchronized sources.
func (s *Server) renderMetrics(b *strings.Builder, snap metricsSnapshot) {
	sst := s.sched.Stats()
	queued := 0
	for _, q := range sst.Queued {
		queued += q
	}
	subs, published, dropped := s.bus.stats()
	sims := s.simsCompleted.Load()
	uptime := time.Since(s.startedAt).Seconds()

	gauge := func(name, help string, value any) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}
	counter := func(name, help string, value any) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, value)
	}

	fmt.Fprintf(b, "# HELP refrint_build_info Build metadata of the running binary (constant 1).\n# TYPE refrint_build_info gauge\nrefrint_build_info{%s} 1\n", buildInfoLabels)

	gauge("refrint_queue_depth", "Sweep executions waiting in scheduler queues (all classes).", queued)

	fmt.Fprintf(b, "# HELP refrint_sched_queue_depth Sweep executions waiting, by priority class.\n# TYPE refrint_sched_queue_depth gauge\n")
	for c := sched.Class(0); c < sched.NumClasses; c++ {
		fmt.Fprintf(b, "refrint_sched_queue_depth{class=%q} %d\n", c.String(), sst.Queued[c])
	}
	counter("refrint_sched_steals_total", "Dequeues where an idle worker took work homed to a sibling.", sst.Steals)
	writeHistogramFamily(b, "refrint_sched_wait_seconds",
		"Submit-to-dequeue latency of sweep executions, by priority class.",
		s.classHistogramSeries(&s.schedWait))
	writeHistogramFamily(b, "refrint_exec_seconds",
		"Wall time sweep executions spent on a worker (dequeue to terminal), by priority class.",
		s.classHistogramSeries(&s.execSeconds))
	writeHistogramFamily(b, "refrint_http_request_seconds",
		"HTTP request latency, by route pattern and status code.",
		s.httpMetrics.series())
	fmt.Fprintf(b, "# HELP refrint_sched_aged_total Queued sweeps aged into a more urgent class after waiting past the age threshold.\n# TYPE refrint_sched_aged_total counter\n")
	for to := sched.Class(0); to < sched.NumClasses-1; to++ {
		from := to + 1
		fmt.Fprintf(b, "refrint_sched_aged_total{from=%q,to=%q} %d\n", from.String(), to.String(), sst.Aged[from][to])
	}
	gauge("refrint_sched_workers", "Worker goroutines executing sweeps.", sst.Workers)
	gauge("refrint_sched_busy_workers", "Workers currently running a sweep.", sst.Busy)
	gauge("refrint_batches", "Batches currently pollable.", snap.batches)

	fmt.Fprintf(b, "# HELP refrint_jobs Jobs by lifecycle state.\n# TYPE refrint_jobs gauge\n")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(b, "refrint_jobs{state=%q} %d\n", string(st), snap.byState[st])
	}

	gauge("refrint_sweep_cache_entries", "Completed sweeps held in the in-memory cache.", snap.cached)
	gauge("refrint_sweep_inflight", "Sweep executions currently queued or running.", snap.inflight)
	counter("refrint_sweep_cache_hits_total", "Submissions answered immediately from the sweep cache or store.", snap.sweepHits)
	counter("refrint_sweep_cache_misses_total", "Submissions that required a live execution.", snap.sweepMisses)
	fmt.Fprintf(b, "# HELP refrint_sweep_cache_evicted_total Completed sweeps evicted from the in-memory cache, by the execution's priority class.\n# TYPE refrint_sweep_cache_evicted_total counter\n")
	for c := sched.Class(0); c < sched.NumClasses; c++ {
		fmt.Fprintf(b, "refrint_sweep_cache_evicted_total{class=%q} %d\n", c.String(), snap.sweepEvicted[c])
	}

	// The known recovery sites are always exposed (zero included) so
	// dashboards can rate() them from the first scrape; any further site
	// that ever recorded a panic is appended after.
	fmt.Fprintf(b, "# HELP refrint_panics_total Panics recovered without killing the process, by recovery site.\n# TYPE refrint_panics_total counter\n")
	known := []string{"exec", "sched", "sim", "tick"}
	for _, site := range known {
		fmt.Fprintf(b, "refrint_panics_total{site=%q} %d\n", site, snap.panics[site])
	}
	extra := make([]string, 0, len(snap.panics))
	for site := range snap.panics {
		switch site {
		case "exec", "sched", "sim", "tick":
		default:
			extra = append(extra, site)
		}
	}
	sort.Strings(extra)
	for _, site := range extra {
		fmt.Fprintf(b, "refrint_panics_total{site=%q} %d\n", site, snap.panics[site])
	}
	fmt.Fprintf(b, "# HELP refrint_job_timeouts_total Sweep executions that hit their deadline and failed, by priority class.\n# TYPE refrint_job_timeouts_total counter\n")
	for c := sched.Class(0); c < sched.NumClasses; c++ {
		fmt.Fprintf(b, "refrint_job_timeouts_total{class=%q} %d\n", c.String(), snap.jobTimeouts[c])
	}

	if byClient, throttledTotal := s.quota.stats(); s.quota != nil {
		fmt.Fprintf(b, "# HELP refrint_client_throttled_total Submissions rejected with 429 by the per-client rate limit.\n# TYPE refrint_client_throttled_total counter\n")
		clients := make([]string, 0, len(byClient))
		for c := range byClient {
			clients = append(clients, c)
		}
		sort.Strings(clients)
		for _, c := range clients {
			fmt.Fprintf(b, "refrint_client_throttled_total{client=%q} %d\n", c, byClient[c])
		}
		if len(byClient) == 0 {
			// No throttles yet: expose the zero total so the series exists
			// (and dashboards can rate() it) from the first scrape.
			fmt.Fprintf(b, "refrint_client_throttled_total{client=\"\"} %d\n", throttledTotal)
		}
	}

	if st := s.cfg.Store; st != nil {
		ss := st.Stats()
		counter("refrint_cell_cache_hits_total", "Simulation cells served from the persistent store.", ss.CellHits)
		counter("refrint_cell_cache_misses_total", "Simulation cells that had to be computed.", ss.CellMisses)
		counter("refrint_store_sweep_hits_total", "Whole-sweep store reads that hit.", ss.SweepHits)
		counter("refrint_store_sweep_misses_total", "Whole-sweep store reads that missed.", ss.SweepMisses)
		gauge("refrint_store_entries", "Blobs currently persisted in the store.", ss.Entries)
		gauge("refrint_store_bytes", "Bytes currently persisted in the store.", ss.Bytes)
		counter("refrint_store_quarantined_total", "Blobs quarantined after failing verification.", ss.Quarantined)
		counter("refrint_store_evictions_total", "Blobs evicted by the LRU byte budget.", ss.Evictions)
		fmt.Fprintf(b, "# HELP refrint_store_evictions_rank_total Blobs evicted by the LRU byte budget, by retention rank (0 = most retained).\n# TYPE refrint_store_evictions_rank_total counter\n")
		for rank, n := range ss.EvictionsByRank {
			fmt.Fprintf(b, "refrint_store_evictions_rank_total{rank=\"%d\"} %d\n", rank, n)
		}
		degraded := 0
		if ss.Degraded {
			degraded = 1
		}
		gauge("refrint_store_degraded", "1 while the store runs memory-only after persistent write failures, 0 when healthy.", degraded)
		counter("refrint_store_write_retries_total", "Transient blob-write failures retried with backoff.", ss.WriteRetries)
		counter("refrint_store_degraded_puts_total", "Puts absorbed into memory while the store was degraded.", ss.DegradedPuts)
	}

	gauge("refrint_event_subscribers", "Open SSE subscriptions (job, batch and firehose streams).", subs)
	counter("refrint_events_published_total", "Events fanned out to at least one SSE subscriber.", published)
	counter("refrint_events_dropped_total", "Events dropped or coalesced away on slow SSE subscribers.", dropped)

	counter("refrint_sims_completed_total", "Simulations completed (cell-cache hits included).", sims)
	rate := 0.0
	if uptime > 0 {
		rate = float64(sims) / uptime
	}
	gauge("refrint_sims_per_second", "Average simulations per second since the server started.", fmt.Sprintf("%.6g", rate))
	gauge("refrint_sims_per_second_1m", "Simulations per second over the last minute (sliding window).", fmt.Sprintf("%.6g", snap.windowed))
	gauge("refrint_uptime_seconds", "Seconds since the server started.", fmt.Sprintf("%.3f", uptime))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("refrint_goroutines", "Goroutines currently live in the process.", runtime.NumGoroutine())
	gauge("refrint_heap_alloc_bytes", "Bytes of allocated heap objects.", ms.HeapAlloc)
	counter("refrint_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", fmt.Sprintf("%.6f", float64(ms.PauseTotalNs)/1e9))
}

// classHistogramSeries labels one per-class histogram array for family
// rendering.
func (s *Server) classHistogramSeries(hs *[sched.NumClasses]histogram) []histogramSeries {
	series := make([]histogramSeries, sched.NumClasses)
	for c := range hs {
		series[c] = histogramSeries{
			labels: fmt.Sprintf("class=%q", sched.Class(c).String()),
			h:      &hs[c],
		}
	}
	return series
}
