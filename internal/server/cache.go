package server

import (
	"context"
	"sync/atomic"
	"time"

	"refrint"
	"refrint/internal/sched"
	"refrint/internal/sweep"
)

// entry is one shared sweep execution: the singleflight unit that any number
// of jobs with the same canonical key attach to.  After it completes
// successfully it doubles as the cache record for that key.  All fields
// except ctx/cancel and the atomic progress counters are guarded by the
// server mutex.
type entry struct {
	key    string
	opts   sweep.Options
	ctx    context.Context
	cancel context.CancelFunc

	// class is the effective scheduling class (jobs attaching with a more
	// urgent class promote the queued entry); handle cancels or promotes
	// the entry while it is still queued (stale once running).
	class  sched.Class
	handle sched.Handle

	state State // queued → running → done | failed | cancelled

	// timeout bounds the execution's wall time once a worker picks it up
	// (0 = none); set at creation from the first submitter's effective
	// timeout_ms — attachers share the run, so they share its deadline.
	// reason is the terminal failure classification ("panic" or "deadline
	// exceeded"), empty for ordinary errors and non-failed states.
	timeout time.Duration
	reason  string

	// execStart is when a worker began executing the sweep (zero if it
	// never ran); finishLocked feeds it into the per-class execution-time
	// histogram.  revived marks a done entry restored from the persistent
	// store, so jobs served from it trace the revived (not cache-hit)
	// shortcut.
	execStart time.Time
	revived   bool

	// done/total are the lock-free progress counters: the per-simulation
	// callback (Server.progressCallback) advances done with a CAS-max and
	// stores total, without touching the server mutex.  Readers load them
	// at snapshot/tick time; monotonicity is the callback's invariant.
	done  atomic.Int64 // simulations completed
	total atomic.Int64 // simulations in the sweep

	res *refrint.SweepResults
	err error

	jobs []*Job // every job ever attached (including cancelled ones)
	refs int    // attached jobs still waiting for the result
}

// resultCache indexes executions by canonical sweep key.  It holds both
// in-flight entries (for singleflight deduplication) and completed ones (for
// result reuse).  Eviction beyond the capacity is priority-aware: completed
// background-class results go before batch before interactive, oldest first
// within a class, so a flood of low-priority completions cannot wash an
// interactive tenant's results out of the cache.  Not safe for concurrent
// use: the server mutex guards it.
type resultCache struct {
	max     int
	entries map[string]*entry
	// completed holds successfully-completed keys in completion order, one
	// list per scheduling class of the execution that produced them.
	completed [sched.NumClasses][]string
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: make(map[string]*entry)}
}

// completedLen counts tracked completions across all classes.
func (c *resultCache) completedLen() int {
	n := 0
	for _, l := range c.completed {
		n += len(l)
	}
	return n
}

// lookup returns the usable entry for a key, if any.  An entry whose context
// is already cancelled is dead — its execution will never produce a result —
// so it is not returned and a caller should start a fresh one.
func (c *resultCache) lookup(key string) (*entry, bool) {
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	if e.state != StateDone && e.ctx.Err() != nil {
		return nil, false
	}
	return e, true
}

// put registers a new in-flight entry.
func (c *resultCache) put(e *entry) { c.entries[e.key] = e }

// markCompleted records a successful completion, evicting completed entries
// beyond capacity — least urgent class first, oldest within a class.  It
// returns the class of every entry actually evicted, for the server's
// eviction-by-class counters.
func (c *resultCache) markCompleted(e *entry) (evicted []sched.Class) {
	if c.entries[e.key] != e {
		return nil // superseded by a newer execution of the same key
	}
	c.completed[e.class] = append(c.completed[e.class], e.key)
	for c.max > 0 && c.completedLen() > c.max {
		class := sched.Class(-1)
		for cl := sched.NumClasses - 1; cl >= 0; cl-- {
			if len(c.completed[cl]) > 0 {
				class = sched.Class(cl)
				break
			}
		}
		if class < 0 {
			break
		}
		oldest := c.completed[class][0]
		c.completed[class] = c.completed[class][1:]
		if old, ok := c.entries[oldest]; ok && old.state == StateDone {
			delete(c.entries, oldest)
			evicted = append(evicted, class)
		}
	}
	return evicted
}

// drop removes an entry that will never yield a result (failed or
// cancelled), so the next identical submission re-executes.  Identity is
// checked: a newer entry under the same key is left alone.
func (c *resultCache) drop(e *entry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
}

// stats returns how many entries are cached (done) and in flight.
func (c *resultCache) stats() (cached, inflight int) {
	for _, e := range c.entries {
		if e.state == StateDone {
			cached++
		} else {
			inflight++
		}
	}
	return
}
