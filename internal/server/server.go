package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"refrint"
	"refrint/internal/config"
	"refrint/internal/sched"
	"refrint/internal/store"
	"refrint/internal/sweep"
	"refrint/internal/workload"
)

// ExecuteFunc runs one sweep.  The default is sweep.ExecuteContext; tests
// substitute instrumented implementations to count runs and control timing.
type ExecuteFunc func(ctx context.Context, opts sweep.Options, progress func(sweep.Progress)) (*refrint.SweepResults, error)

// Config tunes the service.  The zero value is usable.
type Config struct {
	// Shards is the number of worker goroutines (default 2).  Each worker
	// runs one sweep at a time; a sweep itself parallelizes internally.
	// Workers steal across queues, so the name is historical: submissions
	// are homed to a worker by key hash but never stuck behind it.
	Shards int
	// QueueDepth scales the pending-execution bound (default 8): each
	// priority class admits Shards*QueueDepth queued sweeps unless
	// ClassQueueDepth overrides it.  Submissions beyond the bound get HTTP
	// 503.
	QueueDepth int
	// ClassQueueDepth, where positive, bounds the queued sweeps of one
	// priority class (indexed by sched.Class) instead of Shards*QueueDepth.
	ClassQueueDepth [sched.NumClasses]int
	// ClassWeights are the weighted-fair dequeue shares per priority class
	// (default sched.DefaultWeights, 16/4/1): with every class backlogged,
	// one dequeue cycle serves that many sweeps of each class, most urgent
	// first.
	ClassWeights [sched.NumClasses]int
	// CacheEntries bounds how many completed sweeps are kept for reuse
	// (default 32).
	CacheEntries int
	// JobHistory bounds how many finished jobs remain pollable (default
	// 1024).  The oldest terminal jobs beyond the bound are forgotten —
	// along with their grip on cached results — so a long-running service
	// does not grow without bound.
	JobHistory int
	// BatchHistory bounds how many finished batches remain pollable
	// (default 256), like JobHistory for /v1/batches handles.
	BatchHistory int
	// SweepWorkers caps the intra-sweep simulation concurrency per job
	// (default: NumCPU divided by Shards, at least 1), so concurrent jobs
	// do not oversubscribe the machine.
	SweepWorkers int
	// EventBuffer bounds each SSE subscriber's pending-event queue
	// (default 64).  Progress events coalesce (latest wins) and overflow
	// drops intermediate events, so a slow subscriber never blocks
	// execution and never grows memory without bound.
	EventBuffer int
	// EventHeartbeat is the keepalive comment interval on SSE streams
	// (default 15s), so idle connections survive proxies.
	EventHeartbeat time.Duration
	// ProgressInterval is how often the lock-free per-entry progress
	// counters are folded into the windowed sims/sec gauge and published
	// as SSE progress events (default 100ms).
	ProgressInterval time.Duration
	// ClientRate, where positive, rate-limits submissions per client label:
	// each client's token bucket refills at ClientRate tokens/second, a
	// sweep submission costs one token and a batch costs one per request.
	// Over-quota submissions get HTTP 429 with a Retry-After hint.  The
	// default (0) disables quotas.
	ClientRate float64
	// ClientBurst is the token-bucket capacity per client (default
	// ceil(ClientRate), minimum 1).  Batches larger than the burst can
	// never be admitted for a rate-limited client.
	ClientBurst int
	// AgeAfter, where positive, turns on queue-wait aging in the scheduler:
	// a sweep queued longer than AgeAfter ages one class up (background
	// into batch, batch into interactive) without losing its client
	// fair-share slot, so interactive floods cannot starve queued
	// low-priority work forever.  The default (0) disables aging.
	AgeAfter time.Duration
	// EventLog bounds the per-topic SSE event log used to replay missed
	// events on Last-Event-ID reconnects (default 64 events per topic).
	EventLog int
	// JobTimeout, where positive, bounds each sweep execution's wall time:
	// the sweep runs under a context deadline and one that outlives it turns
	// terminal failed with a deadline-exceeded reason, freeing its worker.
	// A request's timeout_ms field may only lower the bound, never raise or
	// disable it.  The default (0) imposes no server-wide deadline.
	JobTimeout time.Duration
	// Execute runs a sweep (default sweep.ExecuteContext).
	Execute ExecuteFunc
	// Store, when set, persists completed sweeps and individual simulation
	// cells: restarts serve previously completed sweeps without re-running
	// them, and overlapping sweeps reuse each other's cells.
	Store *store.Store
	// Logger is the structured log sink.  Job lifecycle lines carry the
	// request trace ID, client, class and sweep key, and terminal lines
	// carry the per-phase duration breakdown.  When unset it is derived
	// from Logf (or discards everything if that is unset too).
	Logger *slog.Logger
	// Logf, when set, receives one line per job state transition
	// (printf-style; predates Logger).  When unset it is derived from
	// Logger, so both APIs feed one stream.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 32
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	if c.BatchHistory <= 0 {
		c.BatchHistory = 256
	}
	for class := range c.ClassQueueDepth {
		if c.ClassQueueDepth[class] <= 0 {
			c.ClassQueueDepth[class] = c.Shards * c.QueueDepth
		}
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = max(1, runtime.NumCPU()/c.Shards)
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 64
	}
	if c.EventHeartbeat <= 0 {
		c.EventHeartbeat = 15 * time.Second
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 100 * time.Millisecond
	}
	if c.EventLog <= 0 {
		c.EventLog = 64
	}
	if c.Execute == nil {
		c.Execute = func(ctx context.Context, opts sweep.Options, progress func(sweep.Progress)) (*refrint.SweepResults, error) {
			return sweep.ExecuteContext(ctx, opts, progress)
		}
	}
	switch {
	case c.Logger == nil && c.Logf == nil:
		c.Logger = slog.New(discardHandler{})
		c.Logf = func(string, ...any) {}
	case c.Logger == nil:
		c.Logger = slog.New(logfHandler{f: c.Logf})
	case c.Logf == nil:
		logger := c.Logger
		c.Logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}
	return c
}

// Server is the sweep service.  It implements http.Handler.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the request-metrics middleware
	sched   *sched.Scheduler
	bus     *eventBus

	baseCtx    context.Context
	baseCancel context.CancelFunc
	loopDone   chan struct{} // closed when the progress tick loop exits

	startedAt time.Time

	// mu guards jobs, jobOrder, batches, batchOrder, cache, nextID,
	// nextBatchID, closed, the metrics counters and every mutable
	// Job/Batch/entry field.  Every scheduler mutation (Submit, Cancel,
	// Promote) happens under mu too, which is what makes the batch
	// endpoint's capacity-check-then-submit atomic; lock order is always
	// s.mu -> sched's internal mutex.
	mu          sync.Mutex
	jobs        map[string]*Job
	jobOrder    []string
	batches     map[string]*Batch
	batchOrder  []string
	cache       *resultCache
	nextID      int
	nextBatchID int
	closed      bool
	// draining means BeginDrain ran: submissions answer 503 with a
	// Retry-After of drainRetryAfter seconds and /healthz reports closing,
	// while admitted work keeps running to its own terminal state.
	draining        bool
	drainRetryAfter int

	// Metrics counters (see handleMetrics).
	sweepCacheHits    int64                   // submissions answered done immediately (memory or store)
	sweepCacheMisses  int64                   // submissions that enqueued or attached to a live execution
	sweepCacheEvicted [sched.NumClasses]int64 // result-cache evictions by execution class
	// panicsTotal counts recovered panics by site: "sim" (inside a sweep
	// cell), "exec" (the Execute wrapper), "sched" (scheduler callbacks) and
	// "tick" (the SSE publish tick).  Every recovery is also logged with its
	// stack.  jobTimeouts counts executions that hit their deadline, by
	// class.  Both guarded by mu.
	panicsTotal map[string]int64
	jobTimeouts [sched.NumClasses]int64
	// quota is the per-client admission limiter (nil with quotas off).  It
	// has its own mutex and is checked before s.mu is ever taken.
	quota *clientQuota

	// Latency histograms (see histogram.go).  Record paths are lock-free
	// atomics, NOT guarded by mu: schedWait is observed per class by the
	// scheduler's OnDequeue callback, execSeconds per class at the terminal
	// transition, and httpMetrics per (route, code) by the middleware.
	schedWait   [sched.NumClasses]histogram
	execSeconds [sched.NumClasses]histogram
	httpMetrics *httpMetrics

	// simsCompleted counts simulations finished across all sweeps (cell
	// hits included).  It is an atomic, NOT guarded by mu: the per-sim
	// progress callback adds to it lock-free (see progressCallback), and
	// readers fold it into the windowed gauge below on tick or on read.
	simsCompleted atomic.Int64
	// simRate tracks recent completions for the windowed sims/sec gauge;
	// simsFolded is how much of simsCompleted it has absorbed.  Both are
	// guarded by mu and fed via foldSimRateLocked, never from the per-sim
	// callback.
	simRate    *rateWindow
	simsFolded int64
}

// New builds a server and starts its worker pool.  Call Close to stop it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		bus:         newEventBus(cfg.EventBuffer, cfg.EventLog),
		jobs:        make(map[string]*Job),
		batches:     make(map[string]*Batch),
		cache:       newResultCache(cfg.CacheEntries),
		startedAt:   time.Now(),
		simRate:     newRateWindow(time.Minute, time.Now),
		loopDone:    make(chan struct{}),
		quota:       newClientQuota(cfg.ClientRate, cfg.ClientBurst, time.Now),
		httpMetrics: newHTTPMetrics(),
		panicsTotal: make(map[string]int64),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.sched = sched.New(sched.Config{
		Workers:  cfg.Shards,
		Depth:    cfg.ClassQueueDepth,
		Weights:  cfg.ClassWeights,
		AgeAfter: cfg.AgeAfter,
		// Keep the server's view of an aged execution's class in sync.  The
		// callback runs outside the scheduler mutex, so taking s.mu here
		// respects the s.mu -> sched lock order.
		OnAge: func(payload any, from, to sched.Class) {
			e := payload.(*entry)
			s.mu.Lock()
			if !e.state.Terminal() && to < e.class {
				e.class = to
				// Attached jobs follow the execution into its effective
				// class: job views, published events and firehose ?class=
				// filters report where the work actually runs — and a
				// sibling cancel recomputing urgency from j.class (see
				// cancelJobLocked) does not demote the entry right back.
				for _, j := range e.jobs {
					if !j.state.Terminal() && to < j.class {
						j.class = to
					}
				}
			}
			s.mu.Unlock()
			s.cfg.Logf("sweep %s: aged %s -> %s after queue wait", e.key, from, to)
		},
		// OnDequeue runs on the worker goroutine with no scheduler lock
		// held: it feeds the per-class queue-wait histogram and stamps the
		// dequeued phase on every job riding the execution.
		OnDequeue: func(payload any, class sched.Class, wait time.Duration) {
			if class >= 0 && class < sched.NumClasses {
				s.schedWait[class].Observe(wait.Seconds())
			}
			e := payload.(*entry)
			s.mu.Lock()
			markJobsLocked(e, phaseDequeued, time.Now())
			s.mu.Unlock()
		},
		// OnPanic is the scheduler-side containment boundary: a panic that
		// escapes runEntry (or the hooks above) loses only its execution —
		// the worker survives — and the entry is failed here so its jobs
		// reach a terminal state instead of hanging forever.
		OnPanic: func(payload any, recovered any, stack []byte) {
			s.recordPanic("sched", recovered, stack)
			if e, ok := payload.(*entry); ok {
				s.mu.Lock()
				s.finishLocked(e, nil, fmt.Errorf("sweep execution panicked: %v: %w", recovered, errPanicked))
				s.mu.Unlock()
			}
		},
	})
	s.sched.Start(func(payload any) { s.runEntry(payload.(*entry)) })
	go func() {
		defer close(s.loopDone)
		s.progressLoop()
	}()

	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/figures", s.handleFigures)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/batches/{id}/events", s.handleBatchEvents)
	s.mux.HandleFunc("GET /v1/batches/{id}/trace", s.handleBatchTrace)
	s.mux.HandleFunc("GET /v1/events", s.handleFirehose)
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleGetBatch)
	s.mux.HandleFunc("DELETE /v1/batches/{id}", s.handleCancelBatch)
	s.mux.HandleFunc("GET /v1/sims", s.handleSims)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.instrument(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Close cancels every in-flight execution and stops the workers.  Pending
// queue entries are drained (and observed cancelled) before Close returns,
// so their terminal events reach still-attached subscribers; then every open
// SSE stream is terminated.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	s.sched.Close()
	// One final tick: the drain above finished jobs (their terminal events
	// publish inline), but batch terminals are tick-driven and the loop may
	// already have exited on baseCancel — without this, a batch subscriber
	// could lose its terminal event at shutdown.
	s.safeTick()
	s.bus.close()
	<-s.loopDone
}

// BeginDrain flips the server into graceful-shutdown admission: new
// submissions answer 503 with Retry-After (expect rounds up to the hint in
// seconds, so well-behaved clients come back after this instance is gone or
// healthy again) and /healthz reports "closing" with 503 so load balancers
// stop routing here — while everything already admitted keeps running.
// Idempotent; Close still does the hard stop afterwards.
func (s *Server) BeginDrain(expect time.Duration) {
	secs := max(int(math.Ceil(expect.Seconds())), 1)
	s.mu.Lock()
	s.draining = true
	s.drainRetryAfter = secs
	s.mu.Unlock()
	s.cfg.Logf("server: draining, in-flight work has %v to finish", expect)
}

// Draining reports whether BeginDrain has run.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain blocks until every admitted job reaches a terminal state or ctx
// expires (returning the context error).  Call BeginDrain first so new work
// cannot arrive faster than the backlog drains.
func (s *Server) Drain(ctx context.Context) error {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		s.mu.Lock()
		live := 0
		for _, j := range s.jobs {
			if !j.state.Terminal() {
				live++
			}
		}
		s.mu.Unlock()
		if live == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// effectiveTimeout resolves a request's timeout_ms against the server cap:
// the request may only lower Config.JobTimeout, never raise or disable it.
// Zero means no deadline (only possible with no server cap).
func (s *Server) effectiveTimeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if limit := s.cfg.JobTimeout; limit > 0 && (d <= 0 || d > limit) {
		return limit
	}
	return d
}

// runEntry executes one shared sweep on a worker shard.
func (s *Server) runEntry(e *entry) {
	s.mu.Lock()
	if e.ctx.Err() != nil || e.state.Terminal() {
		// Cancelled while still queued (or the server is closing).
		s.finishLocked(e, nil, context.Canceled)
		s.mu.Unlock()
		return
	}
	e.state = StateRunning
	now := time.Now()
	e.execStart = now
	for _, j := range e.jobs {
		if j.state == StateQueued {
			j.state = StateRunning
			j.startedAt = now
			j.trace.mark(phaseExecuting, now)
			s.publishJobLocked(j, eventState)
		}
	}
	class := e.class
	s.mu.Unlock()
	s.cfg.Logf("sweep %s: running (%d sims)", e.key, e.total.Load())

	// With a store attached, individual cells already computed by earlier
	// (possibly different) sweeps are served from it instead of simulating,
	// and fresh cells are persisted as they complete.  Persisted artifacts
	// carry the execution's class as their eviction rank, so when the store
	// fills, background results go before batch before interactive.
	opts := e.opts
	if st := s.cfg.Store; st != nil {
		opts.CellLookup, opts.CellPut = st.CellHooksRanked(int(class), s.cfg.Logf)
	}

	// The deadline is layered on e.ctx, so finishLocked can still tell a
	// timeout (execCtx expired, e.ctx fine) from a cancellation (e.ctx
	// itself is dead).
	execCtx, cancelTimeout := e.ctx, context.CancelFunc(func() {})
	if e.timeout > 0 {
		execCtx, cancelTimeout = context.WithTimeout(e.ctx, e.timeout)
	}
	res, err := s.executeGuarded(execCtx, opts, e)
	cancelTimeout()

	// Persist the completed sweep before (and outside) the mutexed state
	// transition: the blob can be large, so the write must not stall
	// handlers or progress callbacks — and once a job is observably done,
	// its result is already durable.
	if err == nil && s.cfg.Store != nil {
		s.mu.Lock()
		markJobsLocked(e, phasePersisting, time.Now())
		s.mu.Unlock()
		if perr := s.cfg.Store.PutRanked(store.KindSweep, e.key, int(class), res); perr != nil {
			s.cfg.Logf("store: persisting sweep %s: %v", e.key, perr)
		}
	}

	s.mu.Lock()
	s.finishLocked(e, res, err)
	s.mu.Unlock()
}

// executeGuarded runs the configured Execute behind a recover guard.  The
// sweep package already converts per-cell panics into errors; this is the
// last line of defense for panics in Execute implementations, progress
// plumbing or store hooks outside the cells — a recovered panic fails the
// job instead of killing the worker.
func (s *Server) executeGuarded(ctx context.Context, opts sweep.Options, e *entry) (res *refrint.SweepResults, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.recordPanic("exec", r, debug.Stack())
			res, err = nil, fmt.Errorf("sweep execution panicked: %v: %w", r, errPanicked)
		}
	}()
	return s.cfg.Execute(ctx, opts, s.progressCallback(e))
}

// errPanicked marks errors synthesized from recovered panics outside the
// sweep's own per-cell guard, so finishLocked can attribute the failure
// reason without string matching.
var errPanicked = errors.New("panicked")

// recordPanic logs one recovered panic with its stack and bumps the
// refrint_panics_total{site} counter.  Safe from any goroutine that does NOT
// already hold s.mu.
func (s *Server) recordPanic(site string, recovered any, stack []byte) {
	s.cfg.Logger.Error("panic recovered",
		"site", site,
		"panic", fmt.Sprint(recovered),
		"stack", string(stack))
	s.mu.Lock()
	s.panicsTotal[site]++
	s.mu.Unlock()
}

// progressCallback returns the per-simulation progress hook for one
// execution.  This is the server's hottest path — the zero-alloc simulator
// finishes a sim every few milliseconds on every worker — so it takes NO
// locks and allocates nothing: the counters are atomics, and everything
// derived from them (windowed rate, SSE progress events, /metrics) is
// folded on the publish tick or at read time instead.  Out-of-order
// callbacks from concurrent sweep workers are absorbed by the CAS-max loop.
func (s *Server) progressCallback(e *entry) func(sweep.Progress) {
	//refrint:alloc-free
	return func(p sweep.Progress) {
		if t := int64(p.Total); t > 0 && t != e.total.Load() {
			e.total.Store(t)
		}
		next := int64(p.Done)
		for {
			cur := e.done.Load()
			if next <= cur {
				return
			}
			if e.done.CompareAndSwap(cur, next) {
				s.simsCompleted.Add(next - cur)
				return
			}
		}
	}
}

// foldSimRateLocked absorbs lock-free simulation completions into the
// windowed sims/sec gauge.  Called on the publish tick and before /metrics
// reads.  Caller holds the server mutex.
func (s *Server) foldSimRateLocked() {
	total := s.simsCompleted.Load()
	if d := total - s.simsFolded; d > 0 {
		s.simRate.Add(d)
		s.simsFolded = total
	}
}

// progressLoop periodically folds the atomic progress counters into the
// rate gauge and publishes SSE progress events.  It is the only bridge from
// the lock-free per-sim path back into the mutexed world, and it runs at
// ProgressInterval regardless of how fast simulations finish.
func (s *Server) progressLoop() {
	t := time.NewTicker(s.cfg.ProgressInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.safeTick()
		}
	}
}

// safeTick is publishTick behind a recover guard: the tick folds counters
// and marshals snapshots for SSE, and a panic there must kill neither the
// publish loop nor Close.  (publishTick unlocks s.mu by defer, so the mutex
// is released before the recovery here runs.)
func (s *Server) safeTick() {
	defer func() {
		if r := recover(); r != nil {
			s.recordPanic("tick", r, debug.Stack())
		}
	}()
	s.publishTick()
}

// publishTick is one iteration of progressLoop.  All snapshot and marshal
// work is skipped while nobody subscribes.
func (s *Server) publishTick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldSimRateLocked()
	if !s.bus.active() {
		return
	}
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if j.state.Terminal() || j.entry == nil {
			continue
		}
		s.publishJobProgressLocked(j)
	}
	for _, id := range s.batchOrder {
		if b := s.batches[id]; !b.lastState.Terminal() {
			s.publishBatchLocked(b)
		}
	}
}

// publishJobLocked emits a named event carrying the job's full view.
// Caller holds the server mutex.
func (s *Server) publishJobLocked(j *Job, name string) {
	if !s.bus.hasTopic(jobTopic(j.id)) {
		return
	}
	view := j.snapshot()
	s.bus.publish(name, jobTopic(j.id), j.request.Client, j.class, int64(view.Progress.Done), view)
}

// publishJobProgressLocked emits a slim progress event when the job's live
// done count moved since the last publication.  Caller holds the server
// mutex.
func (s *Server) publishJobProgressLocked(j *Job) {
	if !s.bus.hasTopic(jobTopic(j.id)) {
		return // leave lastEventDone stale: a later audience gets the delta
	}
	done, total := int(j.entry.done.Load()), int(j.entry.total.Load())
	if done == j.lastEventDone {
		return
	}
	j.lastEventDone = done
	s.bus.publish(eventProgress, jobTopic(j.id), j.request.Client, j.class, int64(done), progressEvent{
		ID: j.id, Kind: "sweep", State: j.state,
		Progress: progressView(done, total, j.state),
	})
}

// publishBatchLocked emits batch state transitions (full view) and progress
// deltas (slim event) by diffing against the last published snapshot.  With
// no audience for the topic it does nothing at all — no snapshot, and no
// diff-state advance, so the transition still publishes once somebody
// subscribes.  Caller holds the server mutex.
func (s *Server) publishBatchLocked(b *Batch) {
	if !s.bus.hasTopic(batchTopic(b.id)) {
		return
	}
	view := b.snapshotLocked()
	if view.State != b.lastState {
		name := eventState
		if view.State.Terminal() {
			name = string(view.State)
		}
		b.lastState = view.State
		b.lastEventDone = view.Progress.Done
		s.bus.publish(name, batchTopic(b.id), b.client, b.class, int64(view.Progress.Done), view)
		return // the state event carries the progress; skip a duplicate
	}
	if view.Progress.Done != b.lastEventDone {
		b.lastEventDone = view.Progress.Done
		s.bus.publish(eventProgress, batchTopic(b.id), b.client, b.class, int64(view.Progress.Done), progressEvent{
			ID: b.id, Kind: "batch", State: view.State, Progress: view.Progress,
		})
	}
}

// finishLocked moves an execution and its attached jobs to a terminal state.
// Caller holds the server mutex.
func (s *Server) finishLocked(e *entry, res *refrint.SweepResults, err error) {
	if e.state.Terminal() {
		return
	}
	now := time.Now()
	if !e.execStart.IsZero() {
		// The execution occupied a worker (done, failed, or cancelled
		// mid-run — never for a cancel while still queued).
		s.execSeconds[e.class].Observe(now.Sub(e.execStart).Seconds())
	}
	switch {
	case err == nil:
		e.state = StateDone
		e.res = res
		e.done.Store(e.total.Load())
		for _, cl := range s.cache.markCompleted(e) {
			s.sweepCacheEvicted[cl]++
		}
		s.cfg.Logf("sweep %s: done", e.key)
	case e.ctx.Err() != nil:
		// The execution's own context died (client cancel or shutdown).
		// Checked before the deadline: a sweep cancelled while also racing
		// its per-job timeout is a cancellation, not a timeout.
		e.state = StateCancelled
		e.err = context.Canceled
		s.cache.drop(e)
		s.cfg.Logf("sweep %s: cancelled", e.key)
	case errors.Is(err, context.DeadlineExceeded):
		e.state = StateFailed
		e.err = fmt.Errorf("deadline exceeded after %v", e.timeout)
		e.reason = reasonDeadline
		s.jobTimeouts[e.class]++
		s.cache.drop(e)
		s.cfg.Logf("sweep %s: failed: deadline exceeded after %v", e.key, e.timeout)
	case errors.Is(err, context.Canceled):
		e.state = StateCancelled
		e.err = context.Canceled
		s.cache.drop(e)
		s.cfg.Logf("sweep %s: cancelled", e.key)
	default:
		e.state = StateFailed
		e.err = err
		var pe *sweep.PanicError
		if errors.As(err, &pe) {
			// A panic contained inside a sweep cell: account and log it
			// here — sweep cannot reach the server's counters or logger.
			e.reason = reasonPanic
			s.panicsTotal["sim"]++
			s.cfg.Logger.Error("panic recovered",
				"site", "sim",
				"app", pe.App,
				"cell", pe.Cell,
				"panic", fmt.Sprint(pe.Value),
				"stack", string(pe.Stack))
		} else if errors.Is(err, errPanicked) {
			e.reason = reasonPanic // already counted and logged at recovery
		}
		s.cache.drop(e)
		s.cfg.Logf("sweep %s: failed: %v", e.key, err)
	}
	for _, j := range e.jobs {
		if j.state.Terminal() {
			continue
		}
		j.state = e.state
		j.err = e.err
		j.reason = e.reason
		j.endedAt = now
		if j.startedAt.IsZero() && e.state == StateDone {
			j.startedAt = now
		}
		if e.reason == reasonDeadline {
			j.trace.mark(phaseDeadline, now)
		}
		j.trace.mark(string(e.state), now)
		j.freezeProgress()
		s.publishJobLocked(j, string(j.state))
		s.logTerminalLocked(j, now)
	}
	e.cancel() // release the context's resources in every path
}

// Failure reasons exposed in job views, distinguishing the robustness
// machinery's verdicts from ordinary execution errors.
const (
	reasonPanic    = "panic"
	reasonDeadline = "deadline exceeded"
)

// logTerminalLocked emits the structured terminal log line for one job,
// carrying the phase-duration breakdown of its whole lifecycle.  Caller
// holds the server mutex.
func (s *Server) logTerminalLocked(j *Job, now time.Time) {
	v := j.traceView(now)
	s.jobLogger(j).Info("job "+string(j.state),
		"total_seconds", v.TotalSeconds,
		"phases", j.phaseSummary(now))
}

// --- HTTP handlers ---

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// retryAfterHint estimates, in whole seconds, how soon a full class queue is
// likely to have room: queued work divided by the class's observed drain rate
// since startup, clamped to [1s, 60s].  Before any dequeue has been observed
// the hint is a flat 5s.  It is a hint for well-behaved clients, not a
// promise — admission is still first-come when capacity frees up.
func (s *Server) retryAfterHint(class sched.Class) int {
	st := s.sched.Stats()
	uptime := time.Since(s.startedAt).Seconds()
	if st.WaitCount[class] <= 0 || uptime <= 0 {
		return 5
	}
	rate := float64(st.WaitCount[class]) / uptime // dequeues per second
	hint := int(math.Ceil(float64(st.Queued[class]) / rate))
	return min(max(hint, 1), 60)
}

// classFor resolves an optional wire priority label, falling back to def.
func classFor(label string, def sched.Class) (sched.Class, error) {
	if label == "" {
		return def, nil
	}
	return sched.ParseClass(label)
}

// handleSubmit implements POST /v1/sweeps: parse the request, attach to an
// existing execution of the same sweep if one is in flight or cached
// (singleflight), otherwise enqueue a fresh execution.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tr := trace{id: requestTraceID(r)}
	tr.mark(phaseReceived, time.Now())
	w.Header().Set("X-Request-Id", tr.id)
	var req refrint.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if err := validateClient(req.Client); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	class, err := classFor(req.Priority, sched.Interactive)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := req.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr.mark(phaseValidated, time.Now())
	if ok, wait := s.quota.allow(req.Client, 1); !ok {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(wait)))
		writeError(w, http.StatusTooManyRequests,
			"client %q is over its submission rate, retry later", req.Client)
		return
	}
	if s.cfg.SweepWorkers > 0 && opts.Workers > s.cfg.SweepWorkers {
		opts.Workers = s.cfg.SweepWorkers
	}
	key := opts.Key()
	// Prime the cache from the persistent store before taking the lock (a
	// no-op without a store or when the key is already cached): the blob
	// read must not happen under the server mutex.
	s.reviveStoredSweep(key)

	s.mu.Lock()
	if s.closed || s.draining {
		retryAfter := s.drainRetryAfter
		s.mu.Unlock()
		s.quota.refund(map[string]int{req.Client: 1})
		if retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
		}
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	job, ok := s.submitJobLocked(req, opts, key, class, class, s.effectiveTimeout(req.TimeoutMS), tr)
	if !ok {
		s.mu.Unlock()
		// A capacity rejection gives the token back: the client honoring the
		// Retry-After below must not come back to a drained bucket.
		s.quota.refund(map[string]int{req.Client: 1})
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterHint(class)))
		writeError(w, http.StatusServiceUnavailable, "%s queue is full, retry later", class)
		return
	}
	status := http.StatusAccepted
	if job.cacheHit {
		status = http.StatusOK
	}
	view := job.snapshot()
	s.mu.Unlock()

	w.Header().Set("Location", "/v1/sweeps/"+view.ID)
	writeJSON(w, status, view)
}

// submitJobLocked creates one job for a resolved request: served from cache,
// attached to the in-flight execution of the same key (promoting it when the
// new job is more urgent), or enqueued as a fresh execution.  class is the
// job's own priority; entryClass is the class a fresh execution enqueues at —
// the same, except in a batch whose later duplicate of this key is more
// urgent (creating at the final class directly keeps capacity accounting
// exact).  timeout bounds a FRESH execution's wall time (0 = none); a job
// attaching to an in-flight execution inherits that execution's deadline —
// singleflight shares one run, so the first submitter's bound governs it.
// It reports false — creating nothing — when the class queue is full.
// Caller holds the server mutex; both POST /v1/sweeps and POST /v1/batches
// funnel through here, which keeps every scheduler mutation serialized
// under it.
func (s *Server) submitJobLocked(req refrint.SweepRequest, opts sweep.Options, key string, class, entryClass sched.Class, timeout time.Duration, tr trace) (*Job, bool) {
	s.nextID++
	job := &Job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		key:       key,
		request:   req,
		class:     class,
		state:     StateQueued,
		createdAt: time.Now(),
		trace:     tr,
	}
	job.trace.mark(phaseAdmitted, job.createdAt)

	e, hit := s.cache.lookup(key)
	if hit {
		// Singleflight: ride the execution already in flight, or serve the
		// cached result outright.
		job.entry = e
		switch e.state {
		case StateDone:
			// Served from cache: the job is born terminal and is not
			// attached to e.jobs (finishLocked already ran; attaching
			// would only pin the job in memory for the cache's lifetime).
			job.state = StateDone
			job.cacheHit = true
			job.startedAt = job.createdAt
			job.endedAt = job.createdAt
			shortcut := phaseCacheHit
			if e.revived {
				shortcut = phaseRevived
			}
			job.trace.mark(shortcut, job.createdAt)
			job.trace.mark(string(StateDone), job.createdAt)
			job.freezeProgress()
			s.sweepCacheHits++
			s.logTerminalLocked(job, job.createdAt)
		case StateRunning:
			e.jobs = append(e.jobs, job)
			job.state = StateRunning
			job.startedAt = job.createdAt
			job.trace.mark(phaseExecuting, job.createdAt)
			e.refs++
			s.sweepCacheMisses++
		default:
			e.jobs = append(e.jobs, job)
			job.trace.mark(phaseQueued, job.createdAt)
			e.refs++
			s.sweepCacheMisses++
			// Priority inheritance: a more urgent job attaching to a
			// queued execution drags it into the urgent class.  Promotion
			// targets entryClass so a batch moves the execution straight
			// to its effective class — the class its capacity check
			// charged — never through an unaccounted intermediate one.
			if entryClass < e.class {
				s.moveEntryLocked(e, entryClass)
			}
		}
	} else {
		s.sweepCacheMisses++
		ctx, cancel := context.WithCancel(s.baseCtx)
		e = &entry{
			key:     key,
			opts:    opts,
			ctx:     ctx,
			cancel:  cancel,
			class:   entryClass,
			state:   StateQueued,
			timeout: timeout,
			jobs:    []*Job{job},
			refs:    1,
		}
		e.total.Store(int64(opts.Size()))
		job.entry = e
		h, ok := s.sched.Submit(key, req.Client, entryClass, e)
		if !ok {
			cancel()
			return nil, false
		}
		e.handle = h
		job.trace.mark(phaseQueued, job.createdAt)
		s.cache.put(e)
		s.cfg.Logf("sweep %s: queued %s (%d sims)", key, entryClass, e.total.Load())
	}
	s.jobLogger(job).Debug("job admitted", "state", string(job.state))
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job.id)
	s.evictJobsLocked()
	// Announce the newborn job (and, for a cache hit, its immediate
	// completion) to firehose subscribers; nobody can be subscribed to the
	// job's own topic before its id is returned.
	s.publishJobLocked(job, eventState)
	if job.state.Terminal() {
		s.publishJobLocked(job, string(job.state))
	}
	return job, true
}

// reviveStoredSweep loads a previously persisted sweep from the store into
// the cache as a completed entry, so submissions and result fetches after a
// restart are served without re-running anything.  It returns the (now
// cached) results when the key resolves to a completed sweep.  It must be
// called WITHOUT the server mutex held: the blob read and decode can be
// large, and — like the persist in runEntry — must not stall handlers or
// progress callbacks.  Concurrent revivals of one key are harmless; the
// first installed entry wins.
func (s *Server) reviveStoredSweep(key string) (*refrint.SweepResults, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	s.mu.Lock()
	if e, ok := s.cache.lookup(key); ok {
		var res *refrint.SweepResults
		if e.state == StateDone {
			res = e.res
		}
		s.mu.Unlock()
		return res, res != nil
	}
	s.mu.Unlock()

	var res refrint.SweepResults
	if !s.cfg.Store.Get(store.KindSweep, key, &res) {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.cache.lookup(key); ok {
		// Lost a race to a concurrent revival or execution of the same key.
		if cur.state == StateDone {
			return cur.res, true
		}
		return nil, false
	}
	s.installDoneEntryLocked(key, &res)
	s.cfg.Logf("sweep %s: restored from store", key)
	return &res, true
}

// installDoneEntryLocked caches an already-completed sweep result as a done
// entry, so the next submission of its key is a pure cache hit.  Caller
// holds the server mutex.
func (s *Server) installDoneEntryLocked(key string, res *refrint.SweepResults) {
	e := &entry{
		key:    key,
		opts:   res.Options,
		ctx:    context.Background(),
		cancel: func() {},
		// Revived results are already durable in the store, so they are the
		// cheapest thing in the cache to lose: rank them for eviction first.
		class:   sched.Background,
		state:   StateDone,
		res:     res,
		revived: true,
	}
	e.total.Store(int64(res.Options.Size()))
	e.done.Store(e.total.Load())
	s.cache.put(e)
	for _, cl := range s.cache.markCompleted(e) {
		s.sweepCacheEvicted[cl]++
	}
}

// evictJobsLocked forgets the oldest terminal jobs beyond the history
// bound, releasing their references to (possibly cache-evicted) results.
// Live jobs are never evicted.  Caller holds the server mutex.
func (s *Server) evictJobsLocked() {
	excess := len(s.jobOrder) - s.cfg.JobHistory
	if excess <= 0 {
		return
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		if excess > 0 && s.jobs[id].state.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// lookupJob resolves {id} for the per-job handlers.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return job, true
}

// handleGetJob implements GET /v1/sweeps/{id}: the poll endpoint.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	view := job.snapshot()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleListJobs implements GET /v1/sweeps: every job, oldest first.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		views = append(views, s.jobs[id].snapshot())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: views})
}

// handleCancel implements DELETE /v1/sweeps/{id}.  Cancelling the last
// interested job aborts the underlying sweep; earlier cancellations only
// detach that job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	e := s.cancelJobLocked(job)
	view := job.snapshot()
	s.mu.Unlock()
	if e != nil {
		e.cancel()
		s.cfg.Logf("sweep %s: cancel requested", e.key)
	}
	writeJSON(w, http.StatusOK, view)
}

// moveEntryLocked moves a queued execution to another class, updating its
// handle.  A no-op when the scheduler declines (the entry is no longer
// queued, or the target class is full).  Caller holds the server mutex.
func (s *Server) moveEntryLocked(e *entry, to sched.Class) {
	if to == e.class {
		return
	}
	if h, ok := s.sched.Promote(e.handle, to); ok {
		e.handle, e.class = h, to
		s.cfg.Logf("sweep %s: moved to %s", e.key, to)
	}
}

// cancelJobLocked cancels one job.  When that job was the execution's last
// interested one, the execution is aborted: a still-queued execution is
// pulled out of the scheduler right here — freeing its bounded queue slot at
// cancel time, never leaving dead work camping on capacity — and finished;
// a running one must be stopped through its context, which the caller does
// by invoking cancel() on the returned entry after releasing the mutex.
// When other jobs remain interested, a queued execution is demoted to the
// most urgent class they actually asked for, so cancelled urgency does not
// keep camping on an urgent class's bounded slot.  Terminal jobs are left
// untouched.  Caller holds the server mutex.
func (s *Server) cancelJobLocked(job *Job) *entry {
	if job.state.Terminal() {
		return nil
	}
	job.state = StateCancelled
	job.err = context.Canceled
	job.endedAt = time.Now()
	job.trace.mark(string(StateCancelled), job.endedAt)
	job.freezeProgress()
	s.publishJobLocked(job, string(StateCancelled))
	s.logTerminalLocked(job, job.endedAt)
	e := job.entry
	e.refs--
	if e.refs > 0 {
		if e.state == StateQueued {
			want := sched.Class(-1)
			for _, j := range e.jobs {
				if !j.state.Terminal() && (want < 0 || j.class < want) {
					want = j.class
				}
			}
			if want > e.class {
				s.moveEntryLocked(e, want)
			}
		}
		return nil
	}
	if e.state.Terminal() {
		return nil
	}
	s.cache.drop(e) // no new jobs may attach to a doomed execution
	if s.sched.Cancel(e.handle) {
		// Still queued: the slot is already freed and no worker will ever
		// pop this entry, so it finishes here and now.
		s.finishLocked(e, nil, context.Canceled)
		return nil
	}
	return e
}

// handleFigures implements GET /v1/sweeps/{id}/figures: the Table 6.1 and
// Figures 6.1-6.4 data series of a completed sweep.
func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	res, ok := s.completedResults(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, res.FiguresExport())
}

// handleResults implements GET /v1/sweeps/{id}/results: the raw per-run
// export of a completed sweep (the same payload refrint-sweep can archive).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	res, ok := s.completedResults(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, res.Export())
}

// completedResults fetches the results behind {id}, which may be a job id or
// a canonical sweep key.  Keys resolve through the in-memory cache and then
// the persistent store, so a restarted server serves completed sweeps by key
// without any job existing.  Jobs that are not (yet) done are rejected.
func (s *Server) completedResults(w http.ResponseWriter, r *http.Request) (*refrint.SweepResults, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		// Not a job: try it as a sweep key (cache first, then store — the
		// store read happens outside the mutex).  A key whose execution is
		// still in flight answers 409 like the job-id path, so clients can
		// tell "still running" from "never existed".
		var res *refrint.SweepResults
		var inflight State
		if e, found := s.cache.lookup(id); found {
			if e.state == StateDone {
				res = e.res
			} else {
				inflight = e.state
			}
		}
		s.mu.Unlock()
		if res == nil && inflight == "" {
			res, _ = s.reviveStoredSweep(id)
		}
		if res != nil {
			return res, true
		}
		if inflight != "" {
			writeError(w, http.StatusConflict, "sweep %s is %s, not done", id, inflight)
			return nil, false
		}
		writeError(w, http.StatusNotFound, "no job or completed sweep %q", id)
		return nil, false
	}
	state := job.state
	var res *refrint.SweepResults
	if job.entry != nil {
		res = job.entry.res
	}
	s.mu.Unlock()
	if state != StateDone || res == nil {
		writeError(w, http.StatusConflict, "job %s is %s, not done", job.id, state)
		return nil, false
	}
	return res, true
}

// simCatalog is the payload of GET /v1/sims.
type simCatalog struct {
	Applications     []simApp  `json:"applications"`
	Policies         []string  `json:"policies"`
	RetentionTimesUS []float64 `json:"retention_times_us"`
	Presets          []string  `json:"presets"`
}

type simApp struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	Input string `json:"input"`
	Class string `json:"class"`
}

// handleSims implements GET /v1/sims: the catalog of everything a sweep
// request may reference — applications, policy labels, retention times and
// presets.
func (s *Server) handleSims(w http.ResponseWriter, r *http.Request) {
	cat := simCatalog{
		RetentionTimesUS: config.RetentionTimesUS(),
		Presets:          []string{"scaled", "fullsize"},
	}
	apps := workload.Apps()
	for _, name := range workload.AppNames() {
		p := apps[name]
		cat.Applications = append(cat.Applications, simApp{
			Name:  p.Name,
			Suite: p.Suite,
			Input: p.Input,
			Class: p.PaperClass.String(),
		})
	}
	for _, p := range config.SweepPolicies() {
		cat.Policies = append(cat.Policies, p.String())
	}
	writeJSON(w, http.StatusOK, cat)
}

// healthz is the payload of GET /healthz.
type healthz struct {
	// Status is "ok", "degraded" (the store lost its disk and is running
	// memory-only; Cause says why) or "closing" (draining or shut down).
	Status string `json:"status"`
	// Cause is the first write error that degraded the store ("degraded"
	// status only).
	Cause    string `json:"cause,omitempty"`
	Jobs     int    `json:"jobs"`
	Queued   int    `json:"queued"`
	Inflight int    `json:"inflight"`
	Cached   int    `json:"cached"`
}

// handleHealthz implements GET /healthz.  Status codes follow the statuses:
// "ok" and "degraded" answer 200 — a degraded server still serves sweeps,
// results just do not survive a restart — while "closing" answers 503 so
// load balancers stop routing to an instance on its way out.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	cached, inflight := s.cache.stats()
	h := healthz{
		Status:   "ok",
		Jobs:     len(s.jobs),
		Queued:   s.sched.Queued(),
		Inflight: inflight,
		Cached:   cached,
	}
	closing := s.draining || s.closed
	s.mu.Unlock()
	code := http.StatusOK
	// The store has its own mutex; checked outside s.mu like every other
	// store call on a handler path.
	if st := s.cfg.Store; st != nil {
		if deg, cause := st.Degraded(); deg {
			h.Status = "degraded"
			h.Cause = cause
		}
	}
	if closing {
		h.Status = "closing"
		h.Cause = ""
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
