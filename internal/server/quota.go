package server

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// This file is the admission-control layer: per-client token-bucket rate
// limits on submissions, and validation of wire-supplied client labels.
//
// Client labels are arbitrary wire input that flows into scheduler maps,
// quota buckets and /metrics label values, so they are bounded and
// charset-checked at the door (validateClient); garbage gets HTTP 400.
// Quotas are off by default: with Config.ClientRate set, every submission
// charges its client's bucket one token per sweep request (a batch charges
// len(requests)), and an empty bucket answers HTTP 429 with a Retry-After
// hint telling a well-behaved client exactly when tokens will exist again.
// Unlabeled submissions share the "" bucket, so anonymity is not a quota
// escape hatch.
//
// The charge lands at submission time, before the server looks at caches or
// queues: this is a submission-rate limit, so a submission served straight
// from the result cache still counts.  The one exception is a submission the
// server itself turns away for queue capacity (503) — the handlers refund
// those tokens (see refund), so a client honoring the 503's Retry-After is
// not double-charged into 429s.

// maxClientLabel bounds wire-supplied client labels.
const maxClientLabel = 64

// validateClient rejects client labels that are too long or stray outside a
// printable, metrics-safe charset (letters, digits, and -_.:@/+).  The empty
// label is fine: it is the anonymous tenant.
func validateClient(s string) error {
	if len(s) > maxClientLabel {
		return fmt.Errorf("client label longer than %d bytes", maxClientLabel)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-', c == '_', c == '.', c == ':', c == '@', c == '/', c == '+':
		default:
			return fmt.Errorf("client label contains invalid byte %q (want letters, digits or -_.:@/+)", c)
		}
	}
	return nil
}

// quotaMaxClients bounds how many client buckets are tracked at once.  When
// insertions push past it, boundLocked first discards full (idle) buckets —
// a full bucket reconstructs losslessly on the client's next submission —
// and hard-evicts the stalest buckets if that frees nothing.
const quotaMaxClients = 4096

// throttleMaxClients bounds how many distinct client labels get their own
// refrint_client_throttled_total series; beyond it, throttles are charged to
// the "_other" label so a label-churning client cannot blow up metrics
// cardinality.
const throttleMaxClients = 64

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// clientQuota rate-limits submissions per client label.  It has its own
// mutex (not the server's): quota checks happen before a request touches
// any server state, and throttled floods must not contend with the
// scheduler.  A nil *clientQuota disables limiting entirely.
type clientQuota struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu        sync.Mutex
	buckets   map[string]*bucket
	throttled map[string]int64 // per-client 429 counts for /metrics
	total     int64            // all 429s, including labels folded to _other
}

// newClientQuota builds a quota tracker; rate <= 0 returns nil (disabled).
func newClientQuota(rate float64, burst int, now func() time.Time) *clientQuota {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = int(math.Ceil(rate))
	}
	if now == nil {
		now = time.Now
	}
	return &clientQuota{
		rate:      rate,
		burst:     math.Max(float64(burst), 1),
		now:       now,
		buckets:   make(map[string]*bucket),
		throttled: make(map[string]int64),
	}
}

// refillLocked returns the client's bucket refilled to now, creating it full
// when first seen.  It never evicts: insertions may transiently push the map
// past quotaMaxClients, and the caller re-bounds it with boundLocked once
// all its debits are done — never mid-operation, so a multi-client charge
// (allowBatch) can refill several buckets in turn without an eviction
// deleting one of them underneath.  Caller holds the quota mutex.
func (q *clientQuota) refillLocked(client string, now time.Time) *bucket {
	b := q.buckets[client]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
		return b
	}
	b.tokens = math.Min(q.burst, b.tokens+q.rate*now.Sub(b.last).Seconds())
	b.last = now
	return b
}

// recordThrottleLocked counts one 429, folding untracked labels past the
// cardinality bound into "_other".  Caller holds the quota mutex.
func (q *clientQuota) recordThrottleLocked(client string) {
	q.total++
	label := client
	if _, tracked := q.throttled[label]; !tracked && len(q.throttled) >= throttleMaxClients {
		label = "_other"
	}
	q.throttled[label]++
}

// waitFor is the time until the bucket holds a charge of need tokens.  A
// charge beyond burst can never succeed; hint the burst refill so clients
// back off hard rather than retrying a request that cannot be admitted.
func (q *clientQuota) waitFor(b *bucket, need float64) time.Duration {
	wait := (math.Min(need, q.burst) - b.tokens) / q.rate
	return time.Duration(wait * float64(time.Second))
}

// allow charges n tokens to the client's bucket.  When the bucket cannot
// cover the charge it reports false with the wait until it could — the
// Retry-After hint — and records the throttle.  A nil quota always allows.
func (q *clientQuota) allow(client string, n int) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	defer q.boundLocked()
	b := q.refillLocked(client, q.now())
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	q.recordThrottleLocked(client)
	return false, q.waitFor(b, need)
}

// allowBatch charges several clients at once — counts maps each client label
// to its token charge — atomically: either every bucket covers its charge and
// all are debited, or nothing is debited and the denied client with the
// longest refill wait is reported.  Atomicity matches the batch endpoint's
// all-or-nothing admission: a rejected batch must not burn anyone's tokens.
// A nil quota always allows.
func (q *clientQuota) allowBatch(counts map[string]int) (ok bool, denied string, retryAfter time.Duration) {
	if q == nil {
		return true, "", 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	defer q.boundLocked()
	now := q.now()
	found := false
	// Hold the refilled bucket pointers across both loops and debit through
	// them: the debit must hit exactly the buckets the check loop refilled,
	// independent of anything that happens to the map in between (eviction is
	// deferred to boundLocked above, but pointers make the debit immune to
	// map membership by construction — no nil lookups mid-debit).
	refilled := make(map[string]*bucket, len(counts))
	for client, n := range counts {
		b := q.refillLocked(client, now)
		refilled[client] = b
		if need := float64(n); b.tokens < need {
			if wait := q.waitFor(b, need); !found || wait > retryAfter {
				found, denied, retryAfter = true, client, wait
			}
		}
	}
	if found {
		q.recordThrottleLocked(denied)
		return false, denied, retryAfter
	}
	for client, n := range counts {
		refilled[client].tokens -= float64(n)
	}
	return true, "", 0
}

// refund re-credits tokens previously charged by allow/allowBatch for a
// submission the server then turned away on queue capacity (503): a
// capacity-rejected submission must not burn tokens, or a client honoring
// the 503's Retry-After hint comes back to a drained bucket and a 429.
// Credits cap at burst; a bucket evicted since the charge reconstructs full
// on the client's next submission, so a missing bucket needs nothing.  A nil
// quota (or nil counts) no-ops.
func (q *clientQuota) refund(counts map[string]int) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for client, n := range counts {
		if b := q.buckets[client]; b != nil {
			b.tokens = math.Min(q.burst, b.tokens+float64(n))
		}
	}
}

// boundLocked re-bounds the buckets map after insertions.  It first sweeps
// full (hence idle) buckets; under a label-churn flood every fresh bucket is
// non-full for a while and the sweep frees nothing, so it then hard-evicts
// the stalest buckets (oldest refill time) — evicting a quotaMaxClients/8
// slack batch beyond the excess, so the O(n log n) scan runs once per
// cap/8 insertions rather than on every one.  An evicted bucket
// reconstructs full on the client's next submission — a bounded,
// one-burst-sized kindness.  It must only run after an operation's debits
// are complete, never between refill and debit (see allowBatch).  Caller
// holds the quota mutex.
func (q *clientQuota) boundLocked() {
	if len(q.buckets) <= quotaMaxClients {
		return
	}
	q.sweepLocked()
	excess := len(q.buckets) - quotaMaxClients
	if excess <= 0 {
		return
	}
	type aged struct {
		client string
		last   time.Time
	}
	all := make([]aged, 0, len(q.buckets))
	for c, b := range q.buckets {
		all = append(all, aged{c, b.last})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].last.Before(all[j].last) })
	for _, a := range all[:min(excess+quotaMaxClients/8, len(all))] {
		delete(q.buckets, a.client)
	}
}

// sweepLocked discards full (hence idle) buckets so the map stays bounded
// under client-label churn.  A client whose bucket is discarded mid-refill
// gets a fresh full bucket next time — a bounded, one-burst-sized kindness.
func (q *clientQuota) sweepLocked() {
	now := q.now()
	for c, b := range q.buckets {
		refilled := math.Min(q.burst, b.tokens+q.rate*now.Sub(b.last).Seconds())
		if refilled >= q.burst {
			delete(q.buckets, c)
		}
	}
}

// stats snapshots the throttle counters for /metrics: per-tracked-label
// counts and the overall total.
func (q *clientQuota) stats() (byClient map[string]int64, total int64) {
	if q == nil {
		return nil, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	byClient = make(map[string]int64, len(q.throttled))
	for c, n := range q.throttled {
		byClient[c] = n
	}
	return byClient, q.total
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
