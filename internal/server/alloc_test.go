//go:build !race

// Allocation regression pins for the server's per-simulation hot path.
// Excluded under -race: the race runtime instruments allocations.

package server

import (
	"testing"

	"refrint/internal/sweep"
)

// TestProgressCallbackZeroAllocs pins the per-sim progress path at zero
// allocations (and, by construction, zero locks: it only touches atomics).
// With the zero-alloc simulator finishing a sim every few milliseconds on
// every worker, anything per-sim here multiplies across the whole service.
func TestProgressCallbackZeroAllocs(t *testing.T) {
	s := stubServer(t)
	e := &entry{}
	cb := s.progressCallback(e)
	n := 0
	allocs := testing.AllocsPerRun(10000, func() {
		n++
		cb(sweep.Progress{Done: n, Total: 1 << 20})
	})
	if allocs != 0 {
		t.Fatalf("progress callback allocates %v/op, want 0", allocs)
	}
}
