//go:build !race

// Allocation regression pins for the server's per-simulation hot path.
// Excluded under -race: the race runtime instruments allocations.

package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"refrint/internal/sweep"
)

// TestProgressCallbackZeroAllocs pins the per-sim progress path at zero
// allocations (and, by construction, zero locks: it only touches atomics).
// With the zero-alloc simulator finishing a sim every few milliseconds on
// every worker, anything per-sim here multiplies across the whole service.
func TestProgressCallbackZeroAllocs(t *testing.T) {
	s := stubServer(t)
	e := &entry{}
	cb := s.progressCallback(e)
	n := 0
	allocs := testing.AllocsPerRun(10000, func() {
		n++
		cb(sweep.Progress{Done: n, Total: 1 << 20})
	})
	if allocs != 0 {
		t.Fatalf("progress callback allocates %v/op, want 0", allocs)
	}
}

// TestHistogramObserveZeroAllocs pins the latency-record path at zero
// allocations: Observe runs in request handlers and scheduler callbacks, so
// anything per-observation multiplies across every request and dequeue.
func TestHistogramObserveZeroAllocs(t *testing.T) {
	var h histogram
	v := 0.0
	allocs := testing.AllocsPerRun(10000, func() {
		v += 0.0001
		h.Observe(v)
	})
	if allocs != 0 {
		t.Fatalf("histogram Observe allocates %v/op, want 0", allocs)
	}
}

// nopResponseWriter is the cheapest possible ResponseWriter: the middleware
// pin below must measure the middleware, not the sink behind it.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header       { return w.h }
func (nopResponseWriter) WriteHeader(int)             {}
func (nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestHTTPMiddlewareZeroAllocs pins the request-metrics middleware hot path
// at zero allocations in steady state: status writers are pooled and the
// (route, code) histogram already exists after the first request.
func TestHTTPMiddlewareZeroAllocs(t *testing.T) {
	s := stubServer(t)
	handler := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	req := httptest.NewRequest("GET", "/pinned", nil)
	req.Pattern = "GET /pinned" // what the mux would set on a routed request
	w := nopResponseWriter{h: make(http.Header)}
	handler.ServeHTTP(w, req) // warm-up: creates the (route, code) histogram
	allocs := testing.AllocsPerRun(10000, func() {
		handler.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Fatalf("HTTP middleware allocates %v/op, want 0", allocs)
	}
}
