package server

import "time"

// rateWindow tracks event completions in per-second buckets over a sliding
// window, so /metrics can expose a recent throughput figure next to the
// cumulative average (which flattens bursts over the whole uptime).
//
// The zero-value is not usable; construct with newRateWindow.  The type has
// no internal locking: the Server guards it with its own mutex.
type rateWindow struct {
	now     func() time.Time
	buckets []int64 // per-second event counts
	seconds []int64 // unix second each bucket currently holds counts for
	started int64   // unix second of construction (bounds the early-life denominator)
}

// newRateWindow builds a window of the given span (rounded down to whole
// seconds, minimum one).  The clock is injectable for tests.
func newRateWindow(window time.Duration, now func() time.Time) *rateWindow {
	n := int(window / time.Second)
	if n < 1 {
		n = 1
	}
	return &rateWindow{
		now:     now,
		buckets: make([]int64, n),
		seconds: make([]int64, n),
		started: now().Unix(),
	}
}

// Add records n events at the current time.
func (r *rateWindow) Add(n int64) {
	sec := r.now().Unix()
	i := int(sec % int64(len(r.buckets)))
	if r.seconds[i] != sec {
		r.buckets[i] = 0
		r.seconds[i] = sec
	}
	r.buckets[i] += n
}

// Rate returns the events-per-second over the window ending now.  While the
// window is younger than its span, the elapsed lifetime is used as the
// denominator so early readings are not diluted by not-yet-lived seconds.
func (r *rateWindow) Rate() float64 {
	sec := r.now().Unix()
	span := int64(len(r.buckets))
	var sum int64
	for i, s := range r.seconds {
		if s > sec-span && s <= sec {
			sum += r.buckets[i]
		}
	}
	denom := span
	if lived := sec - r.started + 1; lived < denom {
		denom = lived
	}
	if denom < 1 {
		denom = 1
	}
	return float64(sum) / float64(denom)
}
