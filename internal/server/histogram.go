package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// This file is the latency-histogram primitive behind /metrics: a fixed
// log-spaced bucket layout shared by every latency family the server
// exposes (HTTP request duration, scheduler queue wait, sweep execution
// time), rendered in Prometheus exposition format next to the hand-rolled
// counters.  No external dependencies: the record path is a couple of
// atomics, and rendering is plain text.

// latencyBounds are the bucket upper bounds in seconds, log-spaced 1-2.5-5
// per decade from 100µs (a cached HTTP hit) to 100s (a large sweep), plus an
// implicit +Inf overflow bucket.  Every histogram shares this layout, so
// cross-family quantile queries line up and the per-histogram state is one
// fixed-size array — no per-instance bucket slice to allocate or configure.
var latencyBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// numHistogramBuckets counts the observable buckets: one per bound plus +Inf.
const numHistogramBuckets = len(latencyBounds) + 1

// histogram is a fixed-bucket cumulative latency histogram.  Observe is
// lock-free and allocation-free — safe to call from request handlers and
// scheduler callbacks at any rate — and rendering reads the same atomics, so
// scrapes never contend with recording.  The zero value is ready to use.
type histogram struct {
	// counts holds per-bucket (NOT cumulative) observation counts; the
	// cumulative sums Prometheus wants are computed at render time.
	counts [numHistogramBuckets]atomic.Uint64
	// sumBits is the float64 bit pattern of the running sum of observed
	// values, CAS-updated so concurrent observers never lose an addend.
	sumBits atomic.Uint64
}

// Observe records one value (in seconds).  Zero allocations, zero locks.
//
//refrint:alloc-free
func (h *histogram) Observe(v float64) {
	i := 0
	for i < len(latencyBounds) && v > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// snapshot returns the cumulative bucket counts (cum[i] covers everything at
// or below bound i; the last element is the total), the observation count
// and the value sum.  Concurrent Observes may land between loads; each
// series stays monotonic across scrapes regardless.
func (h *histogram) snapshot() (cum [numHistogramBuckets]uint64, count uint64, sum float64) {
	for i := range h.counts {
		count += h.counts[i].Load()
		cum[i] = count
	}
	return cum, count, math.Float64frombits(h.sumBits.Load())
}

// formatBound renders a bucket bound the way Prometheus clients expect
// ("0.005", "2.5", "100").
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histogramSeries pairs one histogram with its label set ("" or
// `class="interactive"` style, without braces) for family rendering.
type histogramSeries struct {
	labels string
	h      *histogram
}

// writeHistogramFamily renders one complete histogram metric family —
// HELP/TYPE header once, then the cumulative _bucket/_sum/_count lines of
// every series — in Prometheus exposition format.
func writeHistogramFamily(b *strings.Builder, name, help string, series []histogramSeries) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, s := range series {
		cum, count, sum := s.h.snapshot()
		sep := ""
		if s.labels != "" {
			sep = ","
		}
		for i, c := range cum {
			le := "+Inf"
			if i < len(latencyBounds) {
				le = formatBound(latencyBounds[i])
			}
			fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, s.labels, sep, le, c)
		}
		if s.labels != "" {
			fmt.Fprintf(b, "%s_sum{%s} %.9f\n", name, s.labels, sum)
			fmt.Fprintf(b, "%s_count{%s} %d\n", name, s.labels, count)
		} else {
			fmt.Fprintf(b, "%s_sum %.9f\n", name, sum)
			fmt.Fprintf(b, "%s_count %d\n", name, count)
		}
	}
}
