package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"
)

// This file is the job-lifecycle tracing layer: every job carries a
// monotonic span timeline from the moment its request hit the handler to
// its terminal state, exposed at GET /v1/sweeps/{id}/trace (and aggregated
// at GET /v1/batches/{id}/trace), summarized as a compact phases map in job
// views, and stamped with a request/trace ID that flows through structured
// logs and SSE events.
//
// The timeline is a list of marks, each opening the phase it names; a
// phase's duration runs until the next mark (the terminal mark has zero
// duration), so the durations always sum exactly to the traced wall time.
// The straight-line path is
//
//	received -> validated -> admitted -> queued -> dequeued -> executing
//	         -> persisting -> done
//
// with shortcuts where the pipeline skips work: a submission answered from
// the in-memory result cache marks cache-hit, one revived from the
// persistent store marks revived (both then go straight to done), a job
// attaching to an execution already running skips queued/dequeued, a job
// cancelled while queued jumps from queued to cancelled, and persisting only
// appears with a store attached.

// Lifecycle phase names, in pipeline order.  Terminal marks reuse the job
// State strings ("done", "failed", "cancelled").
const (
	phaseReceived   = "received"          // request hit the handler
	phaseValidated  = "validated"         // body decoded, labels/options resolved
	phaseAdmitted   = "admitted"          // past quota and capacity; job exists
	phaseQueued     = "queued"            // waiting in a scheduler queue
	phaseDequeued   = "dequeued"          // popped by a worker, not yet simulating
	phaseExecuting  = "executing"         // simulations running
	phasePersisting = "persisting"        // completed sweep being written to the store
	phaseCacheHit   = "cache-hit"         // answered from the in-memory result cache
	phaseRevived    = "revived"           // answered from the persistent store
	phaseDeadline   = "deadline-exceeded" // execution hit its timeout (precedes the failed mark)
)

// spanMark opens one phase of a job's timeline at one instant.
type spanMark struct {
	phase string
	at    time.Time
}

// trace is one job's lifecycle timeline plus the request/trace ID it is
// stamped with.  Marks are appended by the single goroutine handling the
// request until the job exists, and under the server mutex after.
type trace struct {
	id    string
	marks []spanMark
}

// mark appends a phase transition.  Timestamps are clamped to be
// non-decreasing, so the exposed timeline is monotonic even if the wall
// clock is not.
func (t *trace) mark(phase string, at time.Time) {
	if n := len(t.marks); n > 0 && at.Before(t.marks[n-1].at) {
		at = t.marks[n-1].at
	}
	t.marks = append(t.marks, spanMark{phase: phase, at: at})
}

// newTraceID mints a random 64-bit hex trace ID.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// requestTraceID returns the trace ID for one inbound request: the caller's
// X-Request-Id header when it passes the same bounds as client labels (so
// arbitrary wire input cannot grow logs or responses), a fresh random ID
// otherwise.
func requestTraceID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && validateClient(id) == nil {
		return id
	}
	return newTraceID()
}

// TraceSpan is one phase of a job's timeline as exposed by the API.
type TraceSpan struct {
	Phase string    `json:"phase"`
	At    time.Time `json:"at"`
	// Seconds is how long the job spent in this phase: until the next
	// span's timestamp, or (for the last span of a live job) until now.
	// Terminal spans have zero duration, so the spans of a finished job sum
	// exactly to TotalSeconds.
	Seconds float64 `json:"seconds"`
}

// TraceView is the payload of GET /v1/sweeps/{id}/trace.
type TraceView struct {
	ID           string      `json:"id"`
	TraceID      string      `json:"trace_id"`
	State        State       `json:"state"`
	Spans        []TraceSpan `json:"spans"`
	TotalSeconds float64     `json:"total_seconds"`
}

// BatchTraceView is the payload of GET /v1/batches/{id}/trace: every member
// job's timeline under the batch's aggregate state.
type BatchTraceView struct {
	ID     string      `json:"id"`
	State  State       `json:"state"`
	Traces []TraceView `json:"traces"`
}

// traceView renders the job's timeline.  Caller holds the server mutex.
func (j *Job) traceView(now time.Time) TraceView {
	v := TraceView{ID: j.id, TraceID: j.trace.id, State: j.state}
	marks := j.trace.marks
	if len(marks) == 0 {
		return v
	}
	v.Spans = make([]TraceSpan, len(marks))
	for i, m := range marks {
		end := m.at // terminal (or freshly opened) span: zero duration
		if i+1 < len(marks) {
			end = marks[i+1].at
		} else if !j.state.Terminal() && now.After(m.at) {
			end = now // the last phase of a live job is still running
		}
		v.Spans[i] = TraceSpan{Phase: m.phase, At: m.at, Seconds: end.Sub(m.at).Seconds()}
	}
	last := marks[len(marks)-1].at
	if !j.state.Terminal() && now.After(last) {
		last = now
	}
	v.TotalSeconds = last.Sub(marks[0].at).Seconds()
	return v
}

// phaseSummary renders the compact phase-duration map embedded in job views
// and terminal log lines: phase name to seconds spent in it, with the same
// until-next-mark accounting as traceView.  Caller holds the server mutex.
func (j *Job) phaseSummary(now time.Time) map[string]float64 {
	marks := j.trace.marks
	if len(marks) == 0 {
		return nil
	}
	out := make(map[string]float64, len(marks))
	for i, m := range marks {
		end := m.at
		if i+1 < len(marks) {
			end = marks[i+1].at
		} else if !j.state.Terminal() && now.After(m.at) {
			end = now
		}
		out[m.phase] += end.Sub(m.at).Seconds()
	}
	return out
}

// markJobsLocked stamps a phase on every non-terminal job attached to an
// execution — the bridge from shared-execution transitions (dequeued,
// executing, persisting) into the per-job timelines.  Caller holds the
// server mutex.
func markJobsLocked(e *entry, phase string, at time.Time) {
	for _, j := range e.jobs {
		if !j.state.Terminal() {
			j.trace.mark(phase, at)
		}
	}
}

// handleJobTrace implements GET /v1/sweeps/{id}/trace.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v := job.traceView(time.Now())
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// handleBatchTrace implements GET /v1/batches/{id}/trace.
func (s *Server) handleBatchTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no batch %q", id)
		return
	}
	now := time.Now()
	v := BatchTraceView{ID: b.id, State: b.snapshotLocked().State}
	for i := range b.members {
		v.Traces = append(v.Traces, b.members[i].memberTrace(now))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}
