package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"refrint"
	"refrint/internal/sched"
	"refrint/internal/sweep"
)

// sseConfig returns a Config tuned for streaming tests: fast progress ticks
// and heartbeats so assertions do not wait on production intervals.
func sseConfig(exec ExecuteFunc) Config {
	return Config{
		Execute:          exec,
		ProgressInterval: 2 * time.Millisecond,
		EventHeartbeat:   25 * time.Millisecond,
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id   string
	name string
	data string
}

// progressPayload decodes the event data as a progress/state payload; both
// progressEvent and JobView/BatchView marshal a "progress" object and a
// "state" string, which is all the tests need.
func (e sseEvent) progressPayload(t *testing.T) (state State, p ProgressView) {
	t.Helper()
	var v struct {
		State    State        `json:"state"`
		Progress ProgressView `json:"progress"`
	}
	if err := json.Unmarshal([]byte(e.data), &v); err != nil {
		t.Fatalf("event %q data %q: %v", e.name, e.data, err)
	}
	return v.State, v.Progress
}

// sseStream incrementally parses a live text/event-stream response.
type sseStream struct {
	t    *testing.T
	resp *http.Response
	br   *bufio.Reader
}

// openSSE connects to an SSE endpoint and asserts the stream handshake.
func (h *harness) openSSE(path, lastEventID string) *sseStream {
	h.t.Helper()
	req, err := http.NewRequest("GET", h.ts.URL+path, nil)
	if err != nil {
		h.t.Fatalf("new request: %v", err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		h.t.Fatalf("GET %s: %v", path, err)
	}
	h.t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		h.t.Fatalf("GET %s: content-type %q", path, ct)
	}
	return &sseStream{t: h.t, resp: resp, br: bufio.NewReader(resp.Body)}
}

func (s *sseStream) close() { s.resp.Body.Close() }

// next reads the next event, skipping comments (heartbeats).  ok is false
// once the server ends the stream.
func (s *sseStream) next() (ev sseEvent, ok bool) {
	seen := false
	for {
		line, err := s.br.ReadString('\n')
		line = strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r")
		switch {
		case line == "":
			if seen {
				return ev, true
			}
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		case strings.HasPrefix(line, "id: "):
			ev.id, seen = line[len("id: "):], true
		case strings.HasPrefix(line, "event: "):
			ev.name, seen = line[len("event: "):], true
		case strings.HasPrefix(line, "data: "):
			ev.data, seen = line[len("data: "):], true
		}
		if err != nil {
			return ev, false
		}
	}
}

// until reads events until one named any of want arrives, returning it plus
// everything read before it.  Fails the test on stream end.
func (s *sseStream) until(want ...string) (sseEvent, []sseEvent) {
	s.t.Helper()
	var before []sseEvent
	for {
		ev, ok := s.next()
		if !ok {
			s.t.Fatalf("stream ended while waiting for %v (saw %+v)", want, before)
		}
		for _, w := range want {
			if ev.name == w {
				return ev, before
			}
		}
		before = append(before, ev)
	}
}

// steppedExec is an ExecuteFunc whose progress is driven from the test: each
// value sent on step is reported as a progress callback; closing release
// lets the run finish with real tiny-sweep results.
type steppedExec struct {
	started chan string
	step    chan sweep.Progress
	release chan struct{}
}

func newSteppedExec() *steppedExec {
	return &steppedExec{
		started: make(chan string, 16),
		step:    make(chan sweep.Progress),
		release: make(chan struct{}),
	}
}

func (x *steppedExec) fn(ctx context.Context, opts sweep.Options, progress func(sweep.Progress)) (*refrint.SweepResults, error) {
	x.started <- opts.Key()
	for {
		select {
		case p := <-x.step:
			progress(p)
		case <-x.release:
			return sweep.Execute(sweep.Options{
				Apps:             opts.Apps,
				RetentionTimesUS: opts.RetentionTimesUS,
				Policies:         opts.Policies,
				EffortScale:      0.05,
				Seed:             opts.Seed,
				Workers:          2,
			})
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestSSEJobStreamLifecycle is the acceptance path: a subscriber of a
// running job sees a state event, monotonically increasing progress events,
// and exactly one terminal event, after which the stream ends.
func TestSSEJobStreamLifecycle(t *testing.T) {
	exec := newSteppedExec()
	h := newHarness(t, sseConfig(exec.fn))

	view, _ := h.submit(tinyRequest(1))
	<-exec.started
	st := h.openSSE("/v1/sweeps/"+view.ID+"/events", "")

	first, ok := st.next()
	if !ok || first.name != "state" {
		t.Fatalf("first event = %+v (ok=%v), want state", first, ok)
	}
	if state, _ := first.progressPayload(t); state != StateRunning {
		t.Fatalf("initial state = %q, want running", state)
	}

	exec.step <- sweep.Progress{Done: 1, Total: 4}
	ev, _ := st.until("progress")
	if _, p := ev.progressPayload(t); p.Done != 1 {
		t.Fatalf("first progress done = %d, want 1", p.Done)
	}
	exec.step <- sweep.Progress{Done: 3, Total: 4}
	ev, _ = st.until("progress")
	if _, p := ev.progressPayload(t); p.Done != 3 {
		t.Fatalf("second progress done = %d, want 3", p.Done)
	}

	close(exec.release)
	term, before := st.until("done", "failed", "cancelled")
	if term.name != "done" {
		t.Fatalf("terminal event = %q, want done", term.name)
	}
	if state, p := term.progressPayload(t); state != StateDone || p.Percent != 100 {
		t.Fatalf("terminal payload = state %q percent %d, want done/100", state, p.Percent)
	}
	// Monotonicity of everything between the steps and the terminal event.
	last := 0
	for _, ev := range before {
		if ev.name != "progress" {
			continue
		}
		if _, p := ev.progressPayload(t); p.Done <= last {
			t.Fatalf("progress ran backwards: %d after %d", p.Done, last)
		} else {
			last = p.Done
		}
	}
	// Exactly one terminal event, then the server closes the stream.
	if tail, ok := st.next(); ok {
		t.Fatalf("event after terminal: %+v", tail)
	}
}

// TestSSESubscribeAfterTerminal verifies the Last-Event-ID replay contract:
// a subscriber arriving (or reconnecting) after the job finished still gets
// the state snapshot and the terminal event, then the stream ends.
func TestSSESubscribeAfterTerminal(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, sseConfig(exec.fn))

	view, _ := h.submit(tinyRequest(1))
	<-exec.started
	close(exec.release)
	h.waitState(view.ID, StateDone)

	for _, lastID := range []string{"", "999"} {
		st := h.openSSE("/v1/sweeps/"+view.ID+"/events", lastID)
		first, ok := st.next()
		if !ok || first.name != "state" {
			t.Fatalf("Last-Event-ID %q: first event = %+v (ok=%v), want state", lastID, first, ok)
		}
		term, ok := st.next()
		if !ok || term.name != "done" {
			t.Fatalf("Last-Event-ID %q: second event = %+v (ok=%v), want done", lastID, term, ok)
		}
		if state, p := term.progressPayload(t); state != StateDone || p.Percent != 100 {
			t.Fatalf("replayed terminal = state %q percent %d", state, p.Percent)
		}
		if tail, ok := st.next(); ok {
			t.Fatalf("event after replayed terminal: %+v", tail)
		}
	}
}

// TestSSECancelledJobFreezesProgress pins the cancelled-creep fix: a job
// cancelled off a still-running shared execution stops advancing — its SSE
// stream ends with the cancelled event (no progress after), and its polled
// progress stays frozen while the surviving job keeps moving.
func TestSSECancelledJobFreezesProgress(t *testing.T) {
	exec := newSteppedExec()
	h := newHarness(t, sseConfig(exec.fn))

	req := tinyRequest(5)
	first, _ := h.submit(req)
	<-exec.started
	second, _ := h.submit(req) // attaches to the same execution

	st := h.openSSE("/v1/sweeps/"+second.ID+"/events", "")
	if ev, ok := st.next(); !ok || ev.name != "state" {
		t.Fatalf("first event = %+v (ok=%v), want state", ev, ok)
	}
	exec.step <- sweep.Progress{Done: 1, Total: 4}
	if ev, _ := st.until("progress"); ev.name != "progress" {
		t.Fatal("no progress before cancel")
	}

	h.do("DELETE", "/v1/sweeps/"+second.ID, nil, nil)
	term, _ := st.until("done", "failed", "cancelled")
	if term.name != "cancelled" {
		t.Fatalf("terminal event = %q, want cancelled", term.name)
	}
	if tail, ok := st.next(); ok {
		t.Fatalf("event after cancelled: %+v (stream must end, no progress creep)", tail)
	}

	// The shared execution keeps running for the surviving job...
	exec.step <- sweep.Progress{Done: 3, Total: 4}
	deadline := time.Now().Add(10 * time.Second)
	for h.getJob(first.ID).Progress.Done != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("surviving job never observed done=3: %+v", h.getJob(first.ID).Progress)
		}
		time.Sleep(time.Millisecond)
	}
	// ...but the cancelled job's progress is frozen at its terminal moment.
	got := h.getJob(second.ID)
	if got.State != StateCancelled {
		t.Fatalf("cancelled job state = %q", got.State)
	}
	if got.Progress.Done != 1 {
		t.Fatalf("cancelled job progress crept to %d, want frozen at 1", got.Progress.Done)
	}

	close(exec.release)
	h.waitState(first.ID, StateDone)
	if got := h.getJob(second.ID).Progress; got.Done != 1 || got.Percent == 100 {
		t.Fatalf("cancelled job progress after completion = %+v, want frozen, <100%%", got)
	}
}

// TestSSEBatchStream covers the batch topic: state snapshot, progress, and
// the aggregated terminal event closing the stream.
func TestSSEBatchStream(t *testing.T) {
	exec := newSteppedExec()
	h := newHarness(t, sseConfig(exec.fn))

	var bv BatchView
	resp := h.do("POST", "/v1/batches", BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(11)},
	}, &bv)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/batches: status %d", resp.StatusCode)
	}
	<-exec.started

	st := h.openSSE("/v1/batches/"+bv.ID+"/events", "")
	if ev, ok := st.next(); !ok || ev.name != "state" {
		t.Fatalf("first event = %+v (ok=%v), want state", ev, ok)
	}
	// The first delta may ride the queued->running "state" event (state
	// events carry progress, and the bus never duplicates it); once the
	// state settles, deltas arrive as plain "progress" events.
	exec.step <- sweep.Progress{Done: 1, Total: 4}
	for done := 0; done != 1; {
		ev, ok := st.next()
		if !ok {
			t.Fatal("stream ended before the first batch delta")
		}
		_, p := ev.progressPayload(t)
		done = p.Done
	}
	exec.step <- sweep.Progress{Done: 2, Total: 4}
	ev, _ := st.until("progress")
	if _, p := ev.progressPayload(t); p.Done != 2 {
		t.Fatalf("batch progress done = %d, want 2", p.Done)
	}
	close(exec.release)
	term, _ := st.until("done", "failed", "cancelled")
	if term.name != "done" {
		t.Fatalf("batch terminal = %q, want done", term.name)
	}
	if state, p := term.progressPayload(t); state != StateDone || p.Percent != 100 {
		t.Fatalf("batch terminal payload = state %q percent %d", state, p.Percent)
	}
	if tail, ok := st.next(); ok {
		t.Fatalf("event after batch terminal: %+v", tail)
	}
}

// TestSSEBatchEvictionPublishesTerminal pins the eviction race: a batch
// whose terminal state has not been published yet (the publish tick is
// effectively disabled here) gets its terminal event at eviction time, so a
// subscriber is never left hanging on a stream whose batch vanished from
// history.
func TestSSEBatchEvictionPublishesTerminal(t *testing.T) {
	exec := newBlockingExec()
	cfg := sseConfig(exec.fn)
	cfg.ProgressInterval = time.Hour // only the eviction path may publish
	cfg.BatchHistory = 1
	h := newHarness(t, cfg)

	var first BatchView
	h.do("POST", "/v1/batches", BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(31)},
	}, &first)
	<-exec.started
	st := h.openSSE("/v1/batches/"+first.ID+"/events", "")
	if ev, ok := st.next(); !ok || ev.name != "state" {
		t.Fatalf("first event = %+v (ok=%v), want state", ev, ok)
	}

	close(exec.release)
	h.waitState(first.Jobs[0].ID, StateDone) // batch terminal, but unpublished

	// The next batch submission evicts the finished one (history bound 1);
	// the terminal event must be delivered on the way out.
	h.do("POST", "/v1/batches", BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(32)},
	}, nil)
	term, _ := st.until("done", "failed", "cancelled")
	if term.name != "done" {
		t.Fatalf("terminal after eviction = %q, want done", term.name)
	}
	if tail, ok := st.next(); ok {
		t.Fatalf("event after terminal: %+v", tail)
	}
	if resp := h.do("GET", "/v1/batches/"+first.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted batch still pollable: status %d", resp.StatusCode)
	}
}

// TestSSEFirehose verifies /v1/events carries every job's events and stays
// open across terminals.
func TestSSEFirehose(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, sseConfig(exec.fn))

	st := h.openSSE("/v1/events", "")
	view, _ := h.submit(tinyRequest(21))
	<-exec.started
	close(exec.release)
	term, _ := st.until("done", "failed", "cancelled")
	if term.name != "done" {
		t.Fatalf("firehose terminal = %q, want done", term.name)
	}
	// The firehose outlives terminals: a second job's events still arrive.
	h.waitState(view.ID, StateDone)
	again, _ := h.submit(tinyRequest(21)) // cache hit: born done
	if ev, _ := st.until("done"); ev.name != "done" {
		t.Fatalf("firehose missed the cache-hit job %s", again.ID)
	}
	st.close()
}

// TestSlowSubscriberCoalescing unit-tests the bus: a subscriber that never
// drains holds a bounded queue in which the latest progress wins and
// terminal events survive.
func TestSlowSubscriberCoalescing(t *testing.T) {
	const buffer = 4
	b := newEventBus(buffer, 0)
	sub, ok := b.subscribe("job:x")
	if !ok {
		t.Fatal("subscribe failed on open bus")
	}
	b.publish(eventState, "job:x", "", sched.Interactive, 0, map[string]int{"s": 0})
	for i := 1; i <= 100; i++ {
		b.publish(eventProgress, "job:x", "", sched.Interactive, int64(i), map[string]int{"done": i})
	}
	b.publish(string(StateDone), "job:x", "", sched.Interactive, 100, map[string]int{"done": 100})

	sub.mu.Lock()
	depth := len(sub.queue)
	sub.mu.Unlock()
	if depth > buffer {
		t.Fatalf("queue grew to %d, want <= %d", depth, buffer)
	}
	events := sub.drain(nil)
	var lastProgress int64 = -1
	sawTerminal := false
	for _, ev := range events {
		switch ev.Name {
		case eventProgress:
			lastProgress = ev.done
		case string(StateDone):
			sawTerminal = true
		}
	}
	if lastProgress != 100 {
		t.Fatalf("latest progress = %d, want 100 (latest wins)", lastProgress)
	}
	if !sawTerminal {
		t.Fatal("terminal event was dropped under pressure")
	}
	if _, _, dropped := b.stats(); dropped < 90 {
		t.Fatalf("dropped/coalesced = %d, want >= 90", dropped)
	}

	b.close()
	if _, ok := b.subscribe("job:y"); ok {
		t.Fatal("subscribe succeeded on closed bus")
	}
	b.publish(eventProgress, "job:x", "", sched.Interactive, 101, nil) // must be a no-op, not a panic
	select {
	case <-sub.quit:
	default:
		t.Fatal("close did not tear the subscriber down")
	}
}

// TestSSEClientDisconnectFreesSubscriber verifies a dropped client releases
// its bus subscription.
func TestSSEClientDisconnectFreesSubscriber(t *testing.T) {
	h := newHarness(t, sseConfig(newBlockingExec().fn))

	st := h.openSSE("/v1/events", "")
	waitSubs := func(want int) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if n, _, _ := h.srv.bus.stats(); n == want {
				return
			}
			if time.Now().After(deadline) {
				n, _, _ := h.srv.bus.stats()
				t.Fatalf("subscribers = %d, want %d", n, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitSubs(1)
	st.close()
	waitSubs(0)
}

// TestServerCloseTerminatesStreams verifies Close ends every open stream:
// job streams, batch streams and the firehose all reach EOF.
func TestServerCloseTerminatesStreams(t *testing.T) {
	exec := newBlockingExec() // runs block until ctx cancellation
	h := newHarness(t, sseConfig(exec.fn))

	view, _ := h.submit(tinyRequest(1))
	<-exec.started
	jobSt := h.openSSE("/v1/sweeps/"+view.ID+"/events", "")
	fhSt := h.openSSE("/v1/events", "")
	if ev, ok := jobSt.next(); !ok || ev.name != "state" {
		t.Fatalf("job stream first event = %+v (ok=%v)", ev, ok)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.srv.Close()
	}()
	for _, st := range []*sseStream{jobSt, fhSt} {
		for {
			if _, ok := st.next(); !ok {
				break
			}
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return")
	}
	// New subscriptions after Close are refused.
	resp := h.do("GET", "/v1/events", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("firehose after Close: status %d, want 503", resp.StatusCode)
	}
}

// TestProgressViewDoneZeroTotal pins the rendering contract from both
// sides: done always means 100 — even with Total == 0, where the old code
// rendered percent 0 forever — and nothing but done ever reads 100.
func TestProgressViewDoneZeroTotal(t *testing.T) {
	cases := []struct {
		done, total int
		st          State
		want        int
	}{
		{0, 0, StateDone, 100},     // empty / all-cache-hit sweep: the fix
		{0, 0, StateRunning, 0},    // nothing known yet
		{0, 0, StateCancelled, 0},  // cancelled before anything ran
		{2, 2, StateRunning, 99},   // clamp: 100 must mean terminal
		{2, 2, StateCancelled, 99}, // cancelled at full completion
		{2, 2, StateDone, 100},     // the normal done case
		{1, 2, StateDone, 100},     // done overrides a stale ratio
		{1, 4, StateRunning, 25},   // plain ratio
	}
	for _, c := range cases {
		if got := progressView(c.done, c.total, c.st).Percent; got != c.want {
			t.Errorf("progressView(%d, %d, %s).Percent = %d, want %d",
				c.done, c.total, c.st, got, c.want)
		}
	}
}
