package server

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"refrint"
	"refrint/internal/faults"
	"refrint/internal/store"
)

// Chaos suite: drives the fault-injection harness (internal/faults) through
// the whole service stack and verifies the containment story end to end —
// panics lose one job, deadlines free their worker, a dead disk degrades the
// store without failing sweeps, and a draining server turns work away
// politely.  The injector is process-global, so none of these tests run in
// parallel.

// enableFaults parses and activates a fault spec for the test's duration.
func enableFaults(t *testing.T, spec string) {
	t.Helper()
	inj, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(inj)
	t.Cleanup(faults.Disable)
}

// TestChaosSimPanic verifies a panicking simulation cell fails exactly its
// own job — reason "panic", counted at site "sim" — while the server stays
// healthy and the next sweep runs normally.
func TestChaosSimPanic(t *testing.T) {
	h := newHarness(t, Config{})
	enableFaults(t, "sim.run:panic")

	view, status := h.submit(tinyRequest(1))
	if status != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", status, http.StatusAccepted)
	}
	failed := h.waitState(view.ID, StateFailed)
	if failed.Reason != "panic" {
		t.Errorf("failed job reason = %q, want %q", failed.Reason, "panic")
	}
	if !strings.Contains(failed.Error, "panic in cell") {
		t.Errorf("failed job error = %q, want the contained panic", failed.Error)
	}

	var hz healthz
	if resp := h.do("GET", "/healthz", nil, &hz); resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz after panic = (%d, %q), want (200, ok)", resp.StatusCode, hz.Status)
	}
	if got := metricValue(t, h.metricsText(), `refrint_panics_total{site="sim"}`); got < 1 {
		t.Errorf("refrint_panics_total{site=sim} = %g, want >= 1", got)
	}

	// The process survived: with injection off, the next sweep completes.
	faults.Disable()
	next, status := h.submit(tinyRequest(2))
	if status != http.StatusAccepted {
		t.Fatalf("follow-up POST status = %d, want %d", status, http.StatusAccepted)
	}
	h.waitState(next.ID, StateDone)
}

// TestChaosJobDeadline verifies timeout_ms: the job turns terminal failed
// with the deadline reason (and trace phase), the worker slot is freed for
// the next submission, and the timeout is counted by class.
func TestChaosJobDeadline(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Execute: exec.fn, Shards: 1})

	req := tinyRequest(1)
	req.TimeoutMS = 1
	view, status := h.submit(req)
	if status != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", status, http.StatusAccepted)
	}
	<-exec.started // the worker picked it up; never released, only timed out

	failed := h.waitState(view.ID, StateFailed)
	if failed.Reason != "deadline exceeded" {
		t.Errorf("failed job reason = %q, want %q", failed.Reason, "deadline exceeded")
	}
	if !strings.Contains(failed.Error, "deadline exceeded") {
		t.Errorf("failed job error = %q, want a deadline", failed.Error)
	}
	tv := h.getTrace(view.ID)
	var sawPhase bool
	for _, sp := range tv.Spans {
		if sp.Phase == "deadline-exceeded" {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Errorf("trace spans %+v missing the deadline-exceeded phase", tv.Spans)
	}
	if got := metricValue(t, h.metricsText(), `refrint_job_timeouts_total{class="interactive"}`); got != 1 {
		t.Errorf("refrint_job_timeouts_total{class=interactive} = %g, want 1", got)
	}

	// The single worker is free again: a follow-up is admitted (202) and,
	// once released, completes.
	next, status := h.submit(tinyRequest(2))
	if status != http.StatusAccepted {
		t.Fatalf("follow-up POST status = %d, want %d", status, http.StatusAccepted)
	}
	<-exec.started
	close(exec.release)
	h.waitState(next.ID, StateDone)
}

// TestTimeoutValidation pins the wire contract: negative timeout_ms is a 400.
func TestTimeoutValidation(t *testing.T) {
	h := newHarness(t, Config{})
	req := tinyRequest(1)
	req.TimeoutMS = -5
	if _, status := h.submit(req); status != http.StatusBadRequest {
		t.Fatalf("POST with timeout_ms=-5: status %d, want %d", status, http.StatusBadRequest)
	}
}

// TestEffectiveTimeout pins the cap arithmetic: requests may lower the
// server bound, never raise or disable it.
func TestEffectiveTimeout(t *testing.T) {
	capped := &Server{cfg: Config{JobTimeout: 50 * time.Millisecond}}
	uncapped := &Server{}
	cases := []struct {
		s    *Server
		ms   int64
		want time.Duration
	}{
		{capped, 0, 50 * time.Millisecond},     // no request bound: the cap applies
		{capped, 10, 10 * time.Millisecond},    // lower than the cap: honored
		{capped, 10000, 50 * time.Millisecond}, // above the cap: clamped
		{uncapped, 0, 0},                       // no bounds anywhere
		{uncapped, 10, 10 * time.Millisecond},
	}
	for _, c := range cases {
		if got := c.s.effectiveTimeout(c.ms); got != c.want {
			t.Errorf("effectiveTimeout(%d) with cap %v = %v, want %v",
				c.ms, c.s.cfg.JobTimeout, got, c.want)
		}
	}
}

// TestChaosStoreDegradation verifies the full store-degradation story at the
// service level: persistent write failures never fail a sweep, /healthz
// reports degraded (200 — the service still works) with the cause, and once
// the faults stop the probe restores disk persistence.
func TestChaosStoreDegradation(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{
		WriteRetries:  1,
		RetryBase:     time.Millisecond,
		DegradeAfter:  1,
		ProbeInterval: 5 * time.Millisecond,
		Sleep:         func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	h := newHarness(t, Config{Store: st})
	enableFaults(t, "store.put:error")

	view, status := h.submit(tinyRequest(1))
	if status != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", status, http.StatusAccepted)
	}
	h.waitState(view.ID, StateDone) // a dead disk must not fail the sweep

	var hz healthz
	if resp := h.do("GET", "/healthz", nil, &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200", resp.StatusCode)
	}
	if hz.Status != "degraded" || !strings.Contains(hz.Cause, "injected fault") {
		t.Fatalf("healthz = (%q, %q), want degraded with the injected cause", hz.Status, hz.Cause)
	}
	if got := metricValue(t, h.metricsText(), "refrint_store_degraded"); got != 1 {
		t.Errorf("refrint_store_degraded = %g, want 1", got)
	}

	// Stop injecting; the probe must flip the store back to healthy.
	faults.Disable()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.do("GET", "/healthz", nil, &hz)
		if hz.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz stuck at %q after faults stopped", hz.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Post-recovery sweeps persist again.
	next, _ := h.submit(tinyRequest(2))
	done := h.waitState(next.ID, StateDone)
	if !st.Contains(store.KindSweep, done.Key) {
		t.Error("post-recovery sweep not persisted")
	}
}

// TestDrainRejectsNewWork verifies graceful drain: BeginDrain turns new
// sweeps and batches away with 503 + Retry-After and flips /healthz to
// closing (503), while the in-flight job runs to completion and Drain
// observes it.
func TestDrainRejectsNewWork(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Execute: exec.fn})

	view, status := h.submit(tinyRequest(1))
	if status != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", status, http.StatusAccepted)
	}
	<-exec.started
	h.srv.BeginDrain(3 * time.Second)
	if !h.srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	resp := h.do("POST", "/v1/sweeps", tinyRequest(2), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /v1/sweeps status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("draining Retry-After = %q, want %q", got, "3")
	}
	resp = h.do("POST", "/v1/batches", BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(3)},
	}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /v1/batches status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("draining batch Retry-After = %q, want %q", got, "3")
	}

	var hz healthz
	resp = h.do("GET", "/healthz", nil, &hz)
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "closing" {
		t.Fatalf("draining healthz = (%d, %q), want (503, closing)", resp.StatusCode, hz.Status)
	}

	// The admitted job still finishes, and Drain returns once it has.
	close(exec.release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := h.getJob(view.ID).State; got != StateDone {
		t.Fatalf("in-flight job state after drain = %q, want done", got)
	}
}

// TestChaosExecLatencyInjection smoke-tests latency-mode injection through a
// real sweep: the sweep still completes, just slower.
func TestChaosExecLatencyInjection(t *testing.T) {
	h := newHarness(t, Config{})
	enableFaults(t, "exec.latency:latency:5ms")
	view, status := h.submit(tinyRequest(1))
	if status != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", status, http.StatusAccepted)
	}
	h.waitState(view.ID, StateDone)
}

// TestChaosStoreGetCorruption covers the read path the way
// TestChaosStoreDegradation covers writes: with store.get:corrupt injected,
// a resubmitted sweep finds its persisted blob "corrupt", the store
// quarantines it (visible in refrint_store_quarantined_total), and the
// service recomputes and completes the sweep instead of failing it.  Read
// corruption must not flip the store into degraded mode — that is a
// write-path condition.
func TestChaosStoreGetCorruption(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{MemEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	// CacheEntries: 1 so the second sweep evicts the first from the
	// in-memory result cache — the resubmission must then revive it from
	// the persistent store, which is where the corruption is injected.
	h := newHarness(t, Config{Store: st, CacheEntries: 1})

	// Populate the store, then push the sweep blob out of the memory front
	// so the resubmission below must read it from disk.
	first, status := h.submit(tinyRequest(1))
	if status != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", status, http.StatusAccepted)
	}
	done := h.waitState(first.ID, StateDone)
	if !st.Contains(store.KindSweep, done.Key) {
		t.Fatal("first sweep not persisted")
	}
	other, _ := h.submit(tinyRequest(2))
	h.waitState(other.ID, StateDone)

	enableFaults(t, "store.get:corrupt")
	again, status := h.submit(tinyRequest(1))
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status = %d, want %d", status, http.StatusAccepted)
	}
	h.waitState(again.ID, StateDone) // corruption degrades to recompute, never failure
	faults.Disable()

	if got := st.Stats().Quarantined; got < 1 {
		t.Fatalf("Quarantined = %d, want >= 1", got)
	}
	if got := metricValue(t, h.metricsText(), "refrint_store_quarantined_total"); got < 1 {
		t.Errorf("refrint_store_quarantined_total = %g, want >= 1", got)
	}
	var hz healthz
	if resp := h.do("GET", "/healthz", nil, &hz); resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz after read corruption = (%d, %q), want (200, ok); read faults must not degrade the store",
			resp.StatusCode, hz.Status)
	}

	// The recomputed result was re-persisted and is servable again.
	final, _ := h.submit(tinyRequest(1))
	h.waitState(final.ID, StateDone)
	if !st.Contains(store.KindSweep, done.Key) {
		t.Error("recomputed sweep not re-persisted after quarantine")
	}
}
