package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"refrint"
	"refrint/internal/sched"
	"refrint/internal/sweep"
)

// Batch groups the jobs of one atomic multi-sweep submission behind a single
// handle.  Live members are held as Job pointers so aggregation keeps
// working even after individual jobs age out of the pollable history; a
// member that reaches a terminal state is frozen into its JobView and the
// pointer dropped, so batches never pin result-bearing entries beyond the
// caches' own bounds.  The server mutex guards all of it.
type Batch struct {
	id        string
	class     sched.Class
	client    string
	members   []batchMember
	createdAt time.Time

	// lastState/lastEventDone are what the event bus last published for
	// this batch; the publish tick diffs fresh snapshots against them (see
	// Server.publishBatchLocked).
	lastState     State
	lastEventDone int
}

// batchMember is one job of a batch: live (job != nil) or frozen
// (view/trace).
type batchMember struct {
	job   *Job
	view  JobView
	trace TraceView
}

// freezeLocked pins the member's terminal view and trace and drops the Job
// pointer.  Caller holds the server mutex and has checked the job is
// terminal.
func (m *batchMember) freezeLocked() {
	m.view = m.job.snapshot()
	m.trace = m.job.traceView(m.job.endedAt)
	m.job = nil
}

// memberViewLocked returns the member's current view, freezing it on the first
// sight of a terminal state.  Caller holds the server mutex.
func (m *batchMember) memberViewLocked() JobView {
	if m.job != nil {
		if v := m.job.snapshot(); !v.State.Terminal() {
			return v
		}
		m.freezeLocked()
	}
	return m.view
}

// memberTrace returns the member's lifecycle timeline, live or frozen.
// Caller holds the server mutex.
func (m *batchMember) memberTrace(now time.Time) TraceView {
	if m.job != nil {
		return m.job.traceView(now)
	}
	return m.trace
}

// BatchRequest is the JSON body of POST /v1/batches: N sweep requests
// submitted atomically — either every request is admitted (cache hits,
// attaches and fresh executions alike) or none is.
type BatchRequest struct {
	// Priority is the default scheduling class of the batch's requests
	// ("batch" when empty); a request's own priority field overrides it.
	Priority string `json:"priority,omitempty"`
	// Client labels the submitting tenant for fair-share scheduling; a
	// request's own client field overrides it.
	Client string `json:"client,omitempty"`
	// Requests are the sweeps to submit.
	Requests []refrint.SweepRequest `json:"requests"`
}

// BatchView is the aggregated JSON form of a batch.
type BatchView struct {
	ID string `json:"id"`
	// State aggregates the member jobs: queued until any starts, running
	// while any is live, and once all are terminal: failed if any failed,
	// else cancelled if any was cancelled, else done.
	State    State  `json:"state"`
	Priority string `json:"priority"`
	Client   string `json:"client,omitempty"`
	// Counts tallies member jobs by lifecycle state.
	Counts map[string]int `json:"counts"`
	// Progress sums simulation progress across member jobs.
	Progress  ProgressView `json:"progress"`
	Jobs      []JobView    `json:"jobs"`
	CreatedAt time.Time    `json:"created_at"`
}

// snapshotLocked renders the batch for the API.  Caller holds the server mutex.
func (b *Batch) snapshotLocked() BatchView {
	v := BatchView{
		ID:        b.id,
		Priority:  b.class.String(),
		Client:    b.client,
		Counts:    make(map[string]int, 5),
		CreatedAt: b.createdAt,
	}
	done, total := 0, 0
	allTerminal := true
	var anyFailed, anyCancelled, anyStarted bool
	for i := range b.members {
		jv := b.members[i].memberViewLocked()
		v.Jobs = append(v.Jobs, jv)
		v.Counts[string(jv.State)]++
		done += jv.Progress.Done
		total += jv.Progress.Total
		switch jv.State {
		case StateFailed:
			anyFailed = true
		case StateCancelled:
			anyCancelled = true
		}
		if !jv.State.Terminal() {
			allTerminal = false
		}
		// Cancelled members don't count as started: a queued job can be
		// cancelled without a single simulation having run.
		if jv.State == StateRunning || jv.State == StateDone || jv.State == StateFailed {
			anyStarted = true
		}
	}
	switch {
	case allTerminal && anyFailed:
		v.State = StateFailed
	case allTerminal && anyCancelled:
		v.State = StateCancelled
	case allTerminal:
		v.State = StateDone
	case anyStarted:
		v.State = StateRunning
	default:
		v.State = StateQueued
	}
	v.Progress = progressView(done, total, v.State)
	return v
}

// handleSubmitBatch implements POST /v1/batches.  Admission is atomic: every
// request is validated and the scheduler capacity for all fresh executions
// is checked before any job is created, so a batch either lands whole or
// leaves no trace (no half-admitted campaigns to clean up).
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	received := time.Now()
	reqID := requestTraceID(r)
	w.Header().Set("X-Request-Id", reqID)
	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if len(breq.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "batch needs at least one request")
		return
	}
	if err := validateClient(breq.Client); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defClass, err := classFor(breq.Priority, sched.Batch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	type planned struct {
		req     refrint.SweepRequest
		opts    sweep.Options
		key     string
		class   sched.Class
		timeout time.Duration
	}
	plan := make([]planned, 0, len(breq.Requests))
	for i, sub := range breq.Requests {
		if sub.Client == "" {
			sub.Client = breq.Client
		}
		if err := validateClient(sub.Client); err != nil {
			writeError(w, http.StatusBadRequest, "requests[%d]: %v", i, err)
			return
		}
		class, err := classFor(sub.Priority, defClass)
		if err != nil {
			writeError(w, http.StatusBadRequest, "requests[%d]: %v", i, err)
			return
		}
		opts, err := sub.Options()
		if err != nil {
			writeError(w, http.StatusBadRequest, "requests[%d]: %v", i, err)
			return
		}
		if s.cfg.SweepWorkers > 0 && opts.Workers > s.cfg.SweepWorkers {
			opts.Workers = s.cfg.SweepWorkers
		}
		// The server cap applies per member, exactly like a lone submission.
		plan = append(plan, planned{req: sub, opts: opts, key: opts.Key(), class: class,
			timeout: s.effectiveTimeout(sub.TimeoutMS)})
	}
	// All members validated together; each gets its own trace keyed off the
	// request's trace ID so one batch submission fans out as reqID.0,
	// reqID.1, ... in logs and trace timelines.
	validated := time.Now()
	// One token per request, charged to each request's effective client,
	// all-or-nothing across the batch.  The charge lands here, at submission
	// time — members later served from cache still count; this is a
	// submission-rate limit — but every path below that turns the whole
	// batch away with 503 refunds `charged`, so a capacity-rejected batch
	// burns nobody's tokens.
	var charged map[string]int
	if s.quota != nil {
		charged = make(map[string]int, 1)
		for _, p := range plan {
			charged[p.req.Client]++
		}
		if ok, denied, wait := s.quota.allowBatch(charged); !ok {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(wait)))
			writeError(w, http.StatusTooManyRequests,
				"client %q is over its submission rate, retry later", denied)
			return
		}
	}
	// Prime from the persistent store outside the lock, like handleSubmit:
	// persisted sweeps must not consume queue capacity.  The results are
	// kept by key rather than relying on the cache still holding them — a
	// batch with more persisted keys than the cache capacity would
	// otherwise LRU-evict its own earlier revivals before they are used —
	// and re-installed right before the member job that needs them.
	revived := make(map[string]*refrint.SweepResults, len(plan))
	for _, p := range plan {
		if _, ok := revived[p.key]; ok {
			continue
		}
		if res, ok := s.reviveStoredSweep(p.key); ok {
			revived[p.key] = res
		}
	}

	s.mu.Lock()
	if s.closed || s.draining {
		retryAfter := s.drainRetryAfter
		s.mu.Unlock()
		s.quota.refund(charged)
		if retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
		}
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	// Plan the batch's scheduler effects and check capacity for all of
	// them at once.  Identical keys within the batch share one execution
	// (singleflight) and count once, at the most urgent class among their
	// occurrences — the class the shared execution ends up in, and the
	// class submitJobLocked creates it at.  Attaching to a pre-existing
	// queued execution that the batch will promote consumes a slot in the
	// target class and frees one in the class it leaves; the freed slot is
	// credited, and promotions are applied up front (most urgent target
	// first) so everything they free is free before any member submits.
	// All submissions are serialized under s.mu and dequeues only ever free
	// capacity, but queue-wait aging moves queued items between classes
	// asynchronously and can consume a class's slots between this check and
	// the submits below.  That race is tolerated rather than prevented: a
	// mid-submit overflow aborts the whole batch (no partial admission),
	// answers 503 and refunds the quota tokens.
	effClass := make(map[string]sched.Class, len(plan))
	for _, p := range plan {
		if c, ok := effClass[p.key]; !ok || p.class < c {
			effClass[p.key] = p.class
		}
	}
	type promotion struct {
		e  *entry
		to sched.Class
	}
	var promos []promotion
	var need, freed [sched.NumClasses]int
	counted := make(map[string]bool, len(plan))
	for _, p := range plan {
		if counted[p.key] {
			continue
		}
		counted[p.key] = true
		if e, hit := s.cache.lookup(p.key); hit {
			// StillQueued filters the race where a worker already popped
			// the item (Promote would no-op, consuming nothing).
			if e.state == StateQueued && effClass[p.key] < e.class && s.sched.StillQueued(e.handle) {
				promos = append(promos, promotion{e: e, to: effClass[p.key]})
				need[effClass[p.key]]++
				freed[e.class]++
			}
			continue
		}
		if revived[p.key] != nil {
			continue
		}
		need[effClass[p.key]]++
	}
	for class, n := range need {
		// Skip classes the batch does not touch: a full class must not
		// veto batches that need nothing from it.
		if n == 0 {
			continue
		}
		if free := s.sched.Free(sched.Class(class)) + freed[class]; n > free {
			s.mu.Unlock()
			s.quota.refund(charged)
			w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterHint(sched.Class(class))))
			writeError(w, http.StatusServiceUnavailable,
				"%s queue has %d free slots, batch needs %d; retry later",
				sched.Class(class), free, n)
			return
		}
	}
	// Promotions ordered by target class, most urgent first: a promotion's
	// departure from class c targets a class more urgent than c, so every
	// departure from c executes before any arrival into c, and the credits
	// above are honored without transient overflow.
	sort.SliceStable(promos, func(i, j int) bool { return promos[i].to < promos[j].to })
	for _, pr := range promos {
		s.moveEntryLocked(pr.e, pr.to)
	}

	s.nextBatchID++
	b := &Batch{
		id:        fmt.Sprintf("batch-%06d", s.nextBatchID),
		class:     defClass,
		client:    breq.Client,
		createdAt: time.Now(),
	}
	for i, p := range plan {
		// Re-install a revived result the cache may have evicted since (or
		// during) the revive loop, so this member is served as a hit.
		if res := revived[p.key]; res != nil {
			if _, hit := s.cache.lookup(p.key); !hit {
				s.installDoneEntryLocked(p.key, res)
			}
		}
		tr := trace{id: fmt.Sprintf("%s.%d", reqID, i)}
		tr.mark(phaseReceived, received)
		tr.mark(phaseValidated, validated)
		job, ok := s.submitJobLocked(p.req, p.opts, p.key, p.class, effClass[p.key], p.timeout, tr)
		if !ok {
			// Reachable only when queue-wait aging moved items into this
			// class after the capacity check (submissions themselves stay
			// serialized under s.mu); bail out whole rather than admit a
			// partial batch.
			s.cfg.Logf("batch: %s queue filled after capacity check (queue-wait aging), aborting batch", effClass[p.key])
			aborts := s.rollbackBatchLocked(b)
			s.mu.Unlock()
			for _, e := range aborts {
				e.cancel()
			}
			s.quota.refund(charged)
			w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterHint(p.class)))
			writeError(w, http.StatusServiceUnavailable, "%s queue is full, retry later", p.class)
			return
		}
		b.members = append(b.members, batchMember{job: job})
	}
	s.batches[b.id] = b
	s.batchOrder = append(s.batchOrder, b.id)
	view := b.snapshotLocked()
	// Seed the event-bus diff state with the creation snapshot: subscribers
	// get it as their connect-time "state" event, so the tick only needs to
	// publish changes from here on.  The creation itself is announced to
	// firehose subscribers — including an immediate terminal for a batch
	// born done off cache hits, which the tick would otherwise never see.
	// This runs before evictBatchesLocked: a terminal-at-birth batch that
	// overflows the history is evicted right here, and eviction's own
	// last-chance publish must see lastState already terminal, not emit a
	// second, out-of-order terminal.
	b.lastState = view.State
	b.lastEventDone = view.Progress.Done
	if s.bus.hasTopic(batchTopic(b.id)) {
		s.bus.publish(eventState, batchTopic(b.id), b.client, b.class, int64(view.Progress.Done), view)
		if view.State.Terminal() {
			s.bus.publish(string(view.State), batchTopic(b.id), b.client, b.class, int64(view.Progress.Done), view)
		}
	}
	s.evictBatchesLocked()
	s.mu.Unlock()
	s.cfg.Logf("batch %s: %d jobs (%s)", b.id, len(view.Jobs), view.Priority)

	status := http.StatusAccepted
	if view.State == StateDone {
		status = http.StatusOK // every member was a cache hit
	}
	w.Header().Set("Location", "/v1/batches/"+view.ID)
	writeJSON(w, status, view)
}

// handleGetBatch implements GET /v1/batches/{id}: aggregated poll.
func (s *Server) handleGetBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no batch %q", id)
		return
	}
	view := b.snapshotLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleCancelBatch implements DELETE /v1/batches/{id}: cancel every
// non-terminal member job.  Queued executions leave the scheduler (and free
// their queue slots) immediately; running ones are aborted via context.
func (s *Server) handleCancelBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no batch %q", id)
		return
	}
	var aborts []*entry
	for i := range b.members {
		if j := b.members[i].job; j != nil {
			if e := s.cancelJobLocked(j); e != nil {
				aborts = append(aborts, e)
			}
		}
	}
	view := b.snapshotLocked()
	s.mu.Unlock()
	for _, e := range aborts {
		e.cancel()
		s.cfg.Logf("sweep %s: cancel requested", e.key)
	}
	writeJSON(w, http.StatusOK, view)
}

// rollbackBatchLocked undoes a partially admitted batch: every member
// created so far is cancelled and erased from the pollable job history, so
// a failed batch leaves no trace.  It returns the entries whose contexts
// must be cancelled outside the lock.  Caller holds the server mutex.
func (s *Server) rollbackBatchLocked(b *Batch) []*entry {
	var aborts []*entry
	doomed := make(map[string]bool, len(b.members))
	for i := range b.members {
		j := b.members[i].job
		if j == nil {
			continue // frozen members are terminal and already historical
		}
		if e := s.cancelJobLocked(j); e != nil {
			aborts = append(aborts, e)
		}
		doomed[j.id] = true
		delete(s.jobs, j.id)
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		if !doomed[id] {
			kept = append(kept, id)
		}
	}
	s.jobOrder = kept
	b.members = nil
	return aborts
}

// evictBatchesLocked freezes every terminal member — batches must not pin
// result-bearing entries past the caches' own bounds even when nobody polls
// them, so freezing runs on every batch submission, not only under history
// pressure — then forgets the oldest terminal batches beyond the history
// bound.  Live batches are never evicted.  Caller holds the server mutex.
func (s *Server) evictBatchesLocked() {
	terminal := make(map[string]bool, len(s.batchOrder))
	for _, id := range s.batchOrder {
		b := s.batches[id]
		done := true
		for i := range b.members {
			m := &b.members[i]
			if m.job != nil && m.job.state.Terminal() {
				m.freezeLocked()
			}
			if m.job != nil {
				done = false
			}
		}
		terminal[id] = done
	}
	excess := len(s.batchOrder) - s.cfg.BatchHistory
	if excess <= 0 {
		return
	}
	kept := s.batchOrder[:0]
	for _, id := range s.batchOrder {
		if excess > 0 && terminal[id] {
			// Last chance to publish the terminal event: the publish tick
			// only sees batches still in the map, so an attached subscriber
			// would otherwise wait forever on a stream whose batch is gone.
			if b := s.batches[id]; !b.lastState.Terminal() {
				s.publishBatchLocked(b)
			}
			delete(s.batches, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.batchOrder = kept
}
