package server

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBuckets pins the bucket-assignment rule: a value lands in the
// first bucket whose bound is >= the value (bounds are inclusive upper
// edges), and anything beyond the last bound lands in +Inf.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int // expected raw bucket index
	}{
		{0, 0},                        // below the first bound
		{0.0001, 0},                   // exactly on a bound: that bucket
		{0.0002, 1},                   // between bounds: next bucket up
		{0.003, 5},                    // 0.0025 < v <= 0.005
		{100, len(latencyBounds) - 1}, // exactly the last bound
		{101, len(latencyBounds)},     // overflow: +Inf
		{1e9, len(latencyBounds)},     // way overflow: still +Inf
		{-1, 0},                       // negative (clock skew): first bucket
	}
	for _, tc := range cases {
		var h histogram
		h.Observe(tc.v)
		for i := range h.counts {
			got := h.counts[i].Load()
			if want := uint64(0); i == tc.want {
				want = 1
				if got != want {
					t.Errorf("Observe(%v): bucket %d = %d, want %d", tc.v, i, got, want)
				}
			} else if got != 0 {
				t.Errorf("Observe(%v): bucket %d = %d, want 0", tc.v, i, got)
			}
		}
	}
}

// TestHistogramSnapshot verifies the cumulative counts, total and sum the
// exposition renders from.
func TestHistogramSnapshot(t *testing.T) {
	var h histogram
	values := []float64{0.0001, 0.0001, 0.003, 7, 1000}
	sum := 0.0
	for _, v := range values {
		h.Observe(v)
		sum += v
	}
	cum, count, gotSum := h.snapshot()
	if count != uint64(len(values)) {
		t.Fatalf("count = %d, want %d", count, len(values))
	}
	if math.Abs(gotSum-sum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", gotSum, sum)
	}
	prev := uint64(0)
	for i, c := range cum {
		if c < prev {
			t.Fatalf("cumulative counts not monotonic at bucket %d: %d < %d", i, c, prev)
		}
		prev = c
	}
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf bucket = %d, want total count %d", cum[len(cum)-1], count)
	}
	// Spot-check: both 0.0001 observations are at or below the first bound.
	if cum[0] != 2 {
		t.Fatalf("cum[0] = %d, want 2", cum[0])
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines: no
// observation may be lost from the count or the sum.
func TestHistogramConcurrent(t *testing.T) {
	var h histogram
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	_, count, sum := h.snapshot()
	if count != goroutines*per {
		t.Fatalf("count = %d, want %d", count, goroutines*per)
	}
	if want := float64(goroutines*per) * 0.001; math.Abs(sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

// TestWriteHistogramFamily checks the exposition rendering: one HELP/TYPE
// header, le-labelled cumulative buckets ending at +Inf, and _sum/_count
// lines per series.
func TestWriteHistogramFamily(t *testing.T) {
	var h histogram
	h.Observe(0.3)
	h.Observe(2)
	var b strings.Builder
	writeHistogramFamily(&b, "test_seconds", "Help text.", []histogramSeries{
		{labels: `class="x"`, h: &h},
	})
	text := b.String()
	for _, want := range []string{
		"# HELP test_seconds Help text.\n",
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{class="x",le="0.25"} 0` + "\n",
		`test_seconds_bucket{class="x",le="0.5"} 1` + "\n",
		`test_seconds_bucket{class="x",le="2.5"} 2` + "\n",
		`test_seconds_bucket{class="x",le="+Inf"} 2` + "\n",
		`test_seconds_count{class="x"} 2` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `test_seconds_sum{class="x"} 2.3`) {
		t.Errorf("exposition missing sum 2.3:\n%s", text)
	}
}
