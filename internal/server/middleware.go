package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// This file is the HTTP metrics middleware: every request through the
// public mux is timed into the refrint_http_request_seconds{route,code}
// histogram family.  The hot path — status capture, route lookup, Observe —
// performs zero heap allocations (pinned by TestHTTPMiddlewareZeroAllocs):
// response wrappers are pooled and the per-(route,code) histograms live in
// a map read under an RLock, created once on first sight.
//
// Label cardinality is bounded by construction: route is the matched
// ServeMux pattern (a fixed, small set; unmatched requests collapse into
// "unrouted"), never the raw URL, and code is an HTTP status.

// routeCode keys one (route, status code) histogram.
type routeCode struct {
	route string
	code  int
}

// httpMetrics owns the per-route/per-code request-duration histograms.
type httpMetrics struct {
	mu    sync.RWMutex
	hists map[routeCode]*histogram
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{hists: make(map[routeCode]*histogram)}
}

// observe records one request.  Steady state is an RLock'd map hit and an
// atomic Observe; only the first request of a new (route, code) pair takes
// the write lock to create its histogram.
func (m *httpMetrics) observe(route string, code int, seconds float64) {
	k := routeCode{route: route, code: code}
	m.mu.RLock()
	h := m.hists[k]
	m.mu.RUnlock()
	if h == nil {
		m.mu.Lock()
		if h = m.hists[k]; h == nil {
			h = &histogram{}
			m.hists[k] = h
		}
		m.mu.Unlock()
	}
	h.Observe(seconds)
}

// snapshot returns the live histograms keyed by (route, code).  The
// histograms themselves are safe to read concurrently; the map copy is so
// rendering never holds the metrics lock.
func (m *httpMetrics) snapshot() map[routeCode]*histogram {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[routeCode]*histogram, len(m.hists))
	for k, h := range m.hists {
		out[k] = h
	}
	return out
}

// series renders the snapshot as deterministically ordered labeled series
// for /metrics family rendering: sorted by route, then status code, so
// consecutive scrapes diff cleanly.
func (m *httpMetrics) series() []histogramSeries {
	snap := m.snapshot()
	keys := make([]routeCode, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	out := make([]histogramSeries, len(keys))
	for i, k := range keys {
		out[i] = histogramSeries{
			labels: fmt.Sprintf("route=%q,code=\"%d\"", k.route, k.code),
			h:      snap[k],
		}
	}
	return out
}

// statusWriter captures the response status code.  Unwrap exposes the
// underlying ResponseWriter so http.ResponseController keeps reaching
// Flush/SetWriteDeadline — the SSE streams depend on that.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// statusWriterPool recycles statusWriters so the middleware allocates
// nothing per request in steady state.
var statusWriterPool = sync.Pool{New: func() any { return &statusWriter{} }}

// instrument wraps the mux with request timing.  The route label is the
// pattern the mux actually matched (r.Pattern after ServeHTTP), so /v1/
// sweeps/{id} is one series no matter how many jobs exist.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.code = w, 0
		start := time.Now()
		next.ServeHTTP(sw, r)
		route := r.Pattern
		if route == "" {
			route = "unrouted"
		}
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.httpMetrics.observe(route, code, time.Since(start).Seconds())
		sw.ResponseWriter = nil
		statusWriterPool.Put(sw)
	})
}
