package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"refrint"
	"refrint/internal/sched"
	"refrint/internal/sweep"
)

// schedMetric fetches /metrics and extracts one sample (mustKey, getText and
// metricValue live in persist_test.go).
func (h *harness) schedMetric(name string) float64 {
	h.t.Helper()
	text, status := h.getText("/metrics")
	if status != http.StatusOK {
		h.t.Fatalf("GET /metrics: status %d", status)
	}
	return metricValue(h.t, text, name)
}

// TestCancelWhileQueuedFreesSlot is the regression for the queue-slot leak:
// cancelled-but-queued jobs used to keep occupying their bounded shard
// channel until a worker popped them, turning an idle server into a 503
// generator.  Now cancel frees the slot immediately.
func TestCancelWhileQueuedFreesSlot(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, QueueDepth: 2, Execute: exec.fn})

	running, _ := h.submit(tinyRequest(1))
	<-exec.started // seed 1 occupies the only worker

	queued := make([]JobView, 0, 2)
	for seed := int64(2); seed <= 3; seed++ {
		view, status := h.submit(tinyRequest(seed))
		if status != http.StatusAccepted {
			t.Fatalf("seed %d: status %d, want 202", seed, status)
		}
		queued = append(queued, view)
	}
	if _, status := h.submit(tinyRequest(4)); status != http.StatusServiceUnavailable {
		t.Fatalf("submit into a full queue: status %d, want 503", status)
	}

	// Cancel everything queued.  No worker pops anything (the only worker
	// is still blocked), so acceptance below proves cancel itself freed the
	// slots.
	for _, view := range queued {
		var cancelled JobView
		h.do("DELETE", "/v1/sweeps/"+view.ID, nil, &cancelled)
		if cancelled.State != StateCancelled {
			t.Fatalf("job %s state = %q after cancel", view.ID, cancelled.State)
		}
	}
	var hz struct {
		Queued int `json:"queued"`
	}
	h.do("GET", "/healthz", nil, &hz)
	if hz.Queued != 0 {
		t.Fatalf("healthz queued = %d after cancelling all queued jobs, want 0", hz.Queued)
	}

	view, status := h.submit(tinyRequest(4))
	if status != http.StatusAccepted {
		t.Fatalf("submit after cancel-all: status %d, want 202 (queue slot leaked)", status)
	}

	close(exec.release)
	h.waitState(running.ID, StateDone)
	h.waitState(view.ID, StateDone)
	// The cancelled sweeps never ran: only seeds 1 and 4 reached the
	// executor.
	if n := exec.calls.Load(); n != 2 {
		t.Fatalf("executor ran %d sweeps, want 2 (cancelled queued sweeps must not run)", n)
	}
}

// TestInteractiveBeatsQueuedBackground pins the priority acceptance
// criterion: with background work already queued, an interactive submission
// starts first.
func TestInteractiveBeatsQueuedBackground(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, Execute: exec.fn})

	dummy := tinyRequest(10)
	dummy.Priority = "background"
	h.submit(dummy)
	<-exec.started // worker blocked on the dummy

	var bgKeys []string
	for seed := int64(11); seed <= 12; seed++ {
		req := tinyRequest(seed)
		req.Priority = "background"
		req.Client = "hog"
		h.submit(req)
		bgKeys = append(bgKeys, mustKey(t, req))
	}
	inter := tinyRequest(13)
	inter.Priority = "interactive"
	h.submit(inter)

	wantOrder := append([]string{mustKey(t, inter)}, bgKeys...)
	for i, want := range wantOrder {
		exec.release <- struct{}{} // finish the currently running sweep
		if got := <-exec.started; got != want {
			t.Fatalf("start %d = %q, want %q (interactive must preempt queued background)", i, got, want)
		}
	}
	close(exec.release)
}

// TestFairShareBetweenClients verifies round-robin between two clients
// flooding the batch class: the flooding tenant cannot starve the smaller
// one.
func TestFairShareBetweenClients(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, Execute: exec.fn})

	h.submit(tinyRequest(20))
	<-exec.started // worker blocked

	submitAs := func(seed int64, client string) string {
		req := tinyRequest(seed)
		req.Priority = "batch"
		req.Client = client
		if _, status := h.submit(req); status != http.StatusAccepted {
			t.Fatalf("seed %d: status %d", seed, status)
		}
		return mustKey(t, req)
	}
	a1 := submitAs(21, "alice")
	a2 := submitAs(22, "alice")
	a3 := submitAs(23, "alice")
	b1 := submitAs(24, "bob")
	b2 := submitAs(25, "bob")

	wantOrder := []string{a1, b1, a2, b2, a3}
	for i, want := range wantOrder {
		exec.release <- struct{}{}
		if got := <-exec.started; got != want {
			t.Fatalf("start %d = %q, want %q (clients must round-robin)", i, got, want)
		}
	}
	close(exec.release)
}

// TestWorkStealingKeepsWorkersBusy is the mixed-load acceptance criterion:
// one hot home worker flooded with background sweeps plus an interactive
// arrival.  Both workers must go busy (steal count > 0, nobody idles while
// queues are non-empty) and the interactive sweep starts before the queued
// background ones.
func TestWorkStealingKeepsWorkersBusy(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 2, Execute: exec.fn})

	// Craft a hot-key load: background sweeps all homed to one worker.
	var hot []refrint.SweepRequest
	home := -1
	for seed := int64(1); len(hot) < 3; seed++ {
		req := tinyRequest(seed)
		req.Priority = "background"
		req.Client = "hog"
		w := sched.Home(mustKey(t, req), 2)
		if home == -1 {
			home = w
		}
		if w == home {
			hot = append(hot, req)
		}
	}
	for _, req := range hot {
		if _, status := h.submit(req); status != http.StatusAccepted {
			t.Fatalf("hot submit: status %d", status)
		}
	}
	<-exec.started
	<-exec.started // two sweeps running: one of the two dequeues was a steal

	deadline := time.Now().Add(5 * time.Second)
	for h.schedMetric("refrint_sched_busy_workers") != 2 {
		if time.Now().After(deadline) {
			t.Fatal("both workers never went busy")
		}
		time.Sleep(time.Millisecond)
	}
	if v := h.schedMetric("refrint_sched_steals_total"); v < 1 {
		t.Fatalf("steals_total = %v with a one-homed load on two busy workers, want >= 1", v)
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="background"}`); v != 1 {
		t.Fatalf("background queue depth = %v, want 1 (third hot sweep waiting)", v)
	}
	if v := h.schedMetric("refrint_queue_depth"); v != 1 {
		t.Fatalf("total queue depth = %v, want 1", v)
	}
	if v := h.schedMetric(`refrint_sched_wait_seconds_count{class="background"}`); v != 2 {
		t.Fatalf("wait count = %v, want 2 dequeues observed", v)
	}

	// An interactive arrival overtakes the still-queued background sweep.
	inter := tinyRequest(100)
	inter.Priority = "interactive"
	h.submit(inter)
	exec.release <- struct{}{}
	if got, want := <-exec.started, mustKey(t, inter); got != want {
		t.Fatalf("next start = %q, want interactive %q", got, want)
	}
	close(exec.release)
}

// TestPercentClampedWhileRunning pins the progress-bar fix: a sweep whose
// progress callback reports done == total while export/persist is still in
// flight must show 99%, reaching 100 only in a terminal state.
func TestPercentClampedWhileRunning(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	h := newHarness(t, Config{
		Execute: func(ctx context.Context, opts sweep.Options, progress func(sweep.Progress)) (*refrint.SweepResults, error) {
			progress(sweep.Progress{Done: 2, Total: 2}) // all sims finished...
			started <- opts.Key()
			select { // ...but the sweep has not returned yet
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return sweep.Execute(sweep.Options{
				Apps:             opts.Apps,
				RetentionTimesUS: opts.RetentionTimesUS,
				Policies:         opts.Policies,
				EffortScale:      0.05,
				Seed:             opts.Seed,
				Workers:          2,
			})
		},
	})

	view, _ := h.submit(tinyRequest(1))
	<-started
	mid := h.waitState(view.ID, StateRunning)
	if mid.Progress.Done != 2 || mid.Progress.Total != 2 {
		t.Fatalf("running progress = %+v, want done 2/2", mid.Progress)
	}
	if mid.Progress.Percent != 99 {
		t.Fatalf("running job with done==total shows %d%%, want 99 (100 must mean terminal)", mid.Progress.Percent)
	}
	// A cancelled job whose simulations all completed also stays at 99:
	// 100 strictly means done.  (Cancelled before release closes, so its
	// execution observes only the context cancellation.)
	view2, _ := h.submit(tinyRequest(2))
	<-started
	h.do("DELETE", "/v1/sweeps/"+view2.ID, nil, nil)
	cancelled := h.waitState(view2.ID, StateCancelled)
	if cancelled.Progress.Percent != 99 {
		t.Fatalf("cancelled job with done==total shows %d%%, want 99", cancelled.Progress.Percent)
	}

	close(release)
	done := h.waitState(view.ID, StateDone)
	if done.Progress.Percent != 100 {
		t.Fatalf("done job shows %d%%, want 100", done.Progress.Percent)
	}
}

// TestPriorityValidationAndView covers the wire form: bad priority labels
// are rejected, and the job view reports the effective class.
func TestPriorityValidationAndView(t *testing.T) {
	h := newHarness(t, Config{})
	bad := tinyRequest(1)
	bad.Priority = "turbo"
	if _, status := h.submit(bad); status != http.StatusBadRequest {
		t.Fatalf("unknown priority: status %d, want 400", status)
	}

	req := tinyRequest(2)
	req.Priority = "background"
	view, _ := h.submit(req)
	if view.Priority != "background" {
		t.Fatalf("job priority = %q, want background", view.Priority)
	}
	h.waitState(view.ID, StateDone)

	// Default priority is interactive.
	view2, _ := h.submit(tinyRequest(3))
	if view2.Priority != "interactive" {
		t.Fatalf("default job priority = %q, want interactive", view2.Priority)
	}
	h.waitState(view2.ID, StateDone)
}

// TestQueuedEntryPromotedByUrgentAttach verifies priority inheritance: an
// interactive job attaching to a queued background execution drags it ahead
// of other background work.
func TestQueuedEntryPromotedByUrgentAttach(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, Execute: exec.fn})

	h.submit(tinyRequest(30))
	<-exec.started // worker blocked

	first := tinyRequest(31)
	first.Priority = "background"
	h.submit(first)
	shared := tinyRequest(32)
	shared.Priority = "background"
	h.submit(shared)

	// An interactive job for the same sweep as the *second* background
	// entry attaches and promotes it past the first.
	urgent := tinyRequest(32)
	urgent.Priority = "interactive"
	attach, status := h.submit(urgent)
	if status != http.StatusAccepted {
		t.Fatalf("attach submit: status %d", status)
	}
	if attach.Key != mustKey(t, shared) {
		t.Fatalf("attach got its own execution: key %q", attach.Key)
	}

	wantOrder := []string{mustKey(t, shared), mustKey(t, first)}
	for i, want := range wantOrder {
		exec.release <- struct{}{}
		if got := <-exec.started; got != want {
			t.Fatalf("start %d = %q, want %q (urgent attach must promote)", i, got, want)
		}
	}
	close(exec.release)
	if n := exec.calls.Load(); n != 3 {
		t.Fatalf("executor ran %d sweeps, want 3 (attach shared one)", n)
	}
}

// TestCancelUrgentJobDemotesEntry pins the inverse of priority inheritance:
// when the urgent job that promoted a shared queued execution cancels, the
// execution is demoted back to the most urgent surviving interest, freeing
// the urgent class's bounded slot.
func TestCancelUrgentJobDemotesEntry(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{
		Shards:          1,
		ClassQueueDepth: [sched.NumClasses]int{1, 4, 4},
		Execute:         exec.fn,
	})

	h.submit(tinyRequest(1))
	<-exec.started // occupy the worker

	bg := tinyRequest(5)
	bg.Priority = "background"
	h.submit(bg)
	urgent := tinyRequest(5)
	urgent.Priority = "interactive"
	uview, _ := h.submit(urgent) // attaches and promotes to interactive

	if v := h.schedMetric(`refrint_sched_queue_depth{class="interactive"}`); v != 1 {
		t.Fatalf("interactive depth = %v after promotion, want 1", v)
	}
	other := tinyRequest(6)
	other.Priority = "interactive"
	if _, status := h.submit(other); status != http.StatusServiceUnavailable {
		t.Fatalf("interactive submit with the class full: status %d, want 503", status)
	}

	// Cancelling the urgent job demotes the execution back to background.
	h.do("DELETE", "/v1/sweeps/"+uview.ID, nil, nil)
	if v := h.schedMetric(`refrint_sched_queue_depth{class="interactive"}`); v != 0 {
		t.Fatalf("interactive depth = %v after urgent cancel, want 0 (entry demoted)", v)
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="background"}`); v != 1 {
		t.Fatalf("background depth = %v after urgent cancel, want 1", v)
	}
	if _, status := h.submit(other); status != http.StatusAccepted {
		t.Fatalf("interactive submit after demotion: status %d, want 202 (slot freed)", status)
	}
	close(exec.release)
}

// TestClassDepthIsolation verifies per-class bounds: filling the background
// queue must not reject interactive submissions.
func TestClassDepthIsolation(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{
		Shards:          1,
		ClassQueueDepth: [sched.NumClasses]int{2, 2, 1},
		Execute:         exec.fn,
	})

	h.submit(tinyRequest(40))
	<-exec.started

	bg := tinyRequest(41)
	bg.Priority = "background"
	if _, status := h.submit(bg); status != http.StatusAccepted {
		t.Fatalf("background fill: status %d", status)
	}
	over := tinyRequest(42)
	over.Priority = "background"
	if _, status := h.submit(over); status != http.StatusServiceUnavailable {
		t.Fatalf("background overflow: status %d, want 503", status)
	}
	inter := tinyRequest(43)
	inter.Priority = "interactive"
	if _, status := h.submit(inter); status != http.StatusAccepted {
		t.Fatalf("interactive beside a full background queue: status %d, want 202", status)
	}
	close(exec.release)
}
