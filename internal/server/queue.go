package server

import (
	"hash/fnv"
	"sync"
)

// pool is the sharded worker pool.  Each shard is one goroutine draining its
// own bounded queue; an execution is assigned to a shard by hashing its
// canonical key, so repeated submissions of the same sweep land on the same
// shard and total queued work is bounded by shards x depth.
type pool struct {
	shards []chan *entry
	wg     sync.WaitGroup
}

// newPool starts shards goroutines, each running run for every entry popped
// from its queue of the given depth.
func newPool(shards, depth int, run func(*entry)) *pool {
	p := &pool{shards: make([]chan *entry, shards)}
	for i := range p.shards {
		ch := make(chan *entry, depth)
		p.shards[i] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for e := range ch {
				run(e)
			}
		}()
	}
	return p
}

// submit enqueues an execution on its key's shard without blocking.  It
// reports false when that shard's queue is full (the caller turns this into
// HTTP 503).
func (p *pool) submit(e *entry) bool {
	h := fnv.New32a()
	h.Write([]byte(e.key))
	ch := p.shards[int(h.Sum32())%len(p.shards)]
	select {
	case ch <- e:
		return true
	default:
		return false
	}
}

// queued returns the number of executions waiting in queues.
func (p *pool) queued() int {
	n := 0
	for _, ch := range p.shards {
		n += len(ch)
	}
	return n
}

// close stops the shards after the queues drain.  Submit must not be called
// after close.
func (p *pool) close() {
	for _, ch := range p.shards {
		close(ch)
	}
	p.wg.Wait()
}
