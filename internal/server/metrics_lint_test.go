package server

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"refrint"
)

// Exposition-format lint for the hand-rolled /metrics renderer.  The server
// emits Prometheus text format without a client library, so nothing else
// guards the format as metrics are added; this test parses a fully-populated
// exposition line by line and enforces the structural rules scrapers rely
// on.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits a sample line into name, optional {labels}, value.
	// Label values may contain braces (route="GET /v1/sweeps/{id}"), so the
	// label block is matched greedily up to the final "} value".
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$`)
	// labelPairRe matches one key="value" pair (values are quote-escaped and
	// may contain anything but an unescaped quote — including braces and
	// commas).
	labelPairRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// baseFamily strips the histogram sample suffixes so _bucket/_sum/_count
// lines resolve to the TYPE declaration that covers them.
func baseFamily(name string, histograms map[string]bool) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && histograms[base] {
			return base
		}
	}
	return name
}

// populatedMetrics boots a server with every subsystem active — store,
// quotas, SSE, executed + cache-hit + cancelled jobs, batches — and returns
// its /metrics exposition, so the lint sees every family the server can emit.
func populatedMetrics(t *testing.T) string {
	t.Helper()
	st := openStore(t, t.TempDir())
	t.Cleanup(func() { st.Close() })
	h := newHarness(t, Config{Store: st, ClientRate: 1000, ClientBurst: 1000})

	done, _ := h.submit(tinyRequest(1))
	h.waitState(done.ID, StateDone)
	h.submit(tinyRequest(1)) // cache hit
	pending, _ := h.submit(tinyRequest(2))
	h.do("DELETE", "/v1/sweeps/"+pending.ID, nil, nil)
	var bv BatchView
	h.do("POST", "/v1/batches", BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(3), tinyRequest(4)},
	}, &bv)
	h.waitBatchState(bv.ID, StateDone)
	h.getText("/nope")    // populate the unrouted HTTP series
	h.getText("/v1/sims") // and a routed one beyond the sweep endpoints
	return h.metricsText()
}

func TestMetricsExpositionLint(t *testing.T) {
	text := populatedMetrics(t)

	help := map[string]bool{}
	typed := map[string]string{}
	histograms := map[string]bool{}
	var samples []string

	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, helpText, ok := strings.Cut(rest, " ")
			if !ok || helpText == "" {
				t.Errorf("line %d: HELP without text: %q", i+1, line)
				continue
			}
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: HELP for invalid metric name %q", i+1, name)
			}
			if help[name] {
				t.Errorf("line %d: duplicate HELP for %q", i+1, name)
			}
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			name, kind := fields[0], fields[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("line %d: unknown TYPE %q for %q", i+1, kind, name)
			}
			if _, dup := typed[name]; dup {
				t.Errorf("line %d: duplicate TYPE declaration for %q", i+1, name)
			}
			typed[name] = kind
			if kind == "histogram" {
				histograms[name] = true
			}
		case strings.HasPrefix(line, "#"):
			// Comments other than HELP/TYPE are legal; nothing to check.
		default:
			samples = append(samples, line)
		}
	}

	seen := map[string]bool{}
	for _, line := range samples {
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			t.Errorf("sample %q: unparseable value %q", name, value)
		}
		if labels != "" {
			interior := labels[1 : len(labels)-1]
			pairs := labelPairRe.FindAllStringSubmatch(interior, -1)
			// Reconstruct the interior from the matched pairs: anything left
			// over is an unquoted value or stray syntax the matcher skipped.
			rebuilt := make([]string, 0, len(pairs))
			for _, lm := range pairs {
				if !labelNameRe.MatchString(lm[1]) {
					t.Errorf("sample %q: invalid label name %q", name, lm[1])
				}
				rebuilt = append(rebuilt, lm[0])
			}
			if strings.Join(rebuilt, ",") != interior {
				t.Errorf("sample %q: malformed label block %q (values must be quoted, pairs comma-separated)", name, labels)
			}
		}
		seen[baseFamily(name, histograms)] = true
	}

	// Every sample belongs to a declared family, HELP and TYPE both.
	families := make([]string, 0, len(seen))
	for f := range seen {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		if !help[f] {
			t.Errorf("family %q has samples but no HELP", f)
		}
		if _, ok := typed[f]; !ok {
			t.Errorf("family %q has samples but no TYPE", f)
		}
	}
	// And the other direction: no orphan declarations.
	for f := range typed {
		if !seen[f] {
			t.Errorf("family %q declared but emits no samples", f)
		}
	}

	// The families this PR introduced must all be present.
	for _, f := range []string{
		"refrint_http_request_seconds",
		"refrint_sched_wait_seconds",
		"refrint_exec_seconds",
		"refrint_build_info",
		"refrint_goroutines",
		"refrint_heap_alloc_bytes",
		"refrint_gc_pause_seconds_total",
		"refrint_store_entries",
		"refrint_client_throttled_total",
	} {
		if !seen[f] {
			t.Errorf("fully-populated exposition missing family %q", f)
		}
	}
	for _, f := range []string{"refrint_http_request_seconds", "refrint_sched_wait_seconds", "refrint_exec_seconds"} {
		if typed[f] != "histogram" {
			t.Errorf("family %q TYPE = %q, want histogram", f, typed[f])
		}
	}
}

// TestMetricsHistogramCumulative re-parses the exposition's histogram
// bucket lines and checks, per series, that counts never decrease as le
// grows, the +Inf bucket exists, and it equals the series' _count.
func TestMetricsHistogramCumulative(t *testing.T) {
	text := populatedMetrics(t)
	bucketRe := regexp.MustCompile(`(?m)^([a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{(.*?),?le="([^"]+)"\} (\d+)$`)
	countRe := regexp.MustCompile(`(?m)^([a-zA-Z_:][a-zA-Z0-9_:]*)_count(\{.*\})? (\d+)$`)

	type series struct {
		counts []uint64
		hasInf bool
		inf    uint64
	}
	buckets := map[string]*series{}
	for _, m := range bucketRe.FindAllStringSubmatch(text, -1) {
		key := m[1] + "|" + m[2]
		s := buckets[key]
		if s == nil {
			s = &series{}
			buckets[key] = s
		}
		n, err := strconv.ParseUint(m[4], 10, 64)
		if err != nil {
			t.Fatalf("bucket %q: bad count %q", key, m[4])
		}
		if m[3] == "+Inf" {
			s.hasInf, s.inf = true, n
		}
		s.counts = append(s.counts, n)
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram bucket series found")
	}
	for key, s := range buckets {
		for i := 1; i < len(s.counts); i++ {
			if s.counts[i] < s.counts[i-1] {
				t.Errorf("series %q: bucket counts not cumulative: %v", key, s.counts)
				break
			}
		}
		if !s.hasInf {
			t.Errorf("series %q: no +Inf bucket", key)
		}
	}

	counts := map[string]uint64{}
	for _, m := range countRe.FindAllStringSubmatch(text, -1) {
		labels := strings.Trim(m[2], "{}")
		n, _ := strconv.ParseUint(m[3], 10, 64)
		counts[m[1]+"|"+labels] = n
	}
	for key, s := range buckets {
		want, ok := counts[key]
		if !ok {
			t.Errorf("series %q: bucket lines without a _count line", key)
			continue
		}
		if s.inf != want {
			t.Errorf("series %q: +Inf bucket %d != _count %d", key, s.inf, want)
		}
	}

	// At least one HTTP request observed something: the scrape fetching this
	// text followed earlier requests through the middleware.
	if !strings.Contains(text, `refrint_http_request_seconds_bucket{route="GET /metrics"`) &&
		!strings.Contains(text, `refrint_http_request_seconds_bucket{route="POST /v1/sweeps"`) {
		t.Error("HTTP histogram has no routed series")
	}
	if !strings.Contains(text, fmt.Sprintf(`route=%q`, "unrouted")) {
		t.Error("HTTP histogram missing the unrouted fallback series")
	}
}
