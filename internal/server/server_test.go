package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"refrint"
	"refrint/internal/sweep"
)

// harness wraps a Server behind httptest with typed client helpers.
type harness struct {
	t   *testing.T
	srv *Server
	ts  *httptest.Server
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &harness{t: t, srv: srv, ts: ts}
}

// do issues a request and decodes the JSON response into out (if non-nil).
func (h *harness) do(method, path string, body any, out any) *http.Response {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			h.t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatalf("new request: %v", err)
	}
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		h.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			h.t.Fatalf("%s %s: decode %q: %v", method, path, data, err)
		}
	}
	return resp
}

// submit POSTs a sweep and returns the created job.
func (h *harness) submit(req refrint.SweepRequest) (JobView, int) {
	h.t.Helper()
	var view JobView
	resp := h.do("POST", "/v1/sweeps", req, &view)
	return view, resp.StatusCode
}

// getJob polls one job.
func (h *harness) getJob(id string) JobView {
	h.t.Helper()
	var view JobView
	resp := h.do("GET", "/v1/sweeps/"+id, nil, &view)
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	return view
}

// waitState polls until the job reaches want (or any terminal state), with a
// deadline.
func (h *harness) waitState(id string, want State) JobView {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		view := h.getJob(id)
		if view.State == want {
			return view
		}
		if view.State.Terminal() || time.Now().After(deadline) {
			h.t.Fatalf("job %s: state %q (err %q), want %q", id, view.State, view.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// tinyRequest is a real sweep small enough for unit tests: two simulations
// (baseline + R.valid at 50us) on one app with minimal effort.
func tinyRequest(seed int64) refrint.SweepRequest {
	return refrint.SweepRequest{
		Apps:             []string{"FFT"},
		RetentionTimesUS: []float64{50},
		Policies:         []string{"R.valid"},
		EffortScale:      0.05,
		Seed:             seed,
		Workers:          2,
	}
}

// TestJobLifecycle drives the full lifecycle against the real simulator:
// submit -> poll -> done -> fetch figures and raw results.
func TestJobLifecycle(t *testing.T) {
	h := newHarness(t, Config{})

	view, status := h.submit(tinyRequest(1))
	if status != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", status, http.StatusAccepted)
	}
	if view.State != StateQueued && view.State != StateRunning {
		t.Fatalf("fresh job state = %q", view.State)
	}
	if view.Key == "" || view.ID == "" {
		t.Fatalf("job missing id/key: %+v", view)
	}

	done := h.waitState(view.ID, StateDone)
	if done.CacheHit {
		t.Error("first run reported cache_hit")
	}
	if done.Progress.Percent != 100 || done.Progress.Done != done.Progress.Total {
		t.Errorf("done job progress = %+v, want 100%%", done.Progress)
	}
	if done.Progress.Total != 2 {
		t.Errorf("tiny sweep total = %d sims, want 2 (baseline + R.valid)", done.Progress.Total)
	}
	if done.FinishedAt == nil || done.StartedAt == nil {
		t.Errorf("done job missing timestamps: %+v", done)
	}

	var figs sweep.FiguresExport
	resp := h.do("GET", "/v1/sweeps/"+view.ID+"/figures", nil, &figs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET figures: status %d", resp.StatusCode)
	}
	if figs.SweepKey != view.Key {
		t.Errorf("figures sweep_key = %q, want job key %q", figs.SweepKey, view.Key)
	}
	if len(figs.Figure61) != 1 || figs.Figure61[0].Policy != "R.valid" || figs.Figure61[0].RetentionUS != 50 {
		t.Errorf("figure61 = %+v, want one R.valid@50us bar", figs.Figure61)
	}
	if figs.Figure61[0].Total <= 0 {
		t.Errorf("figure61 bar total = %g, want > 0", figs.Figure61[0].Total)
	}
	if len(figs.Table61) != 1 || figs.Table61[0].App != "FFT" {
		t.Errorf("table61 = %+v, want one FFT row", figs.Table61)
	}

	var export sweep.Export
	resp = h.do("GET", "/v1/sweeps/"+view.ID+"/results", nil, &export)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results: status %d", resp.StatusCode)
	}
	if len(export.Runs) != 2 {
		t.Errorf("results export has %d runs, want 2", len(export.Runs))
	}
}

// blockingExec is an instrumented ExecuteFunc: it counts invocations, lets
// tests observe progress deterministically, and holds each run until
// released (or its context dies).
type blockingExec struct {
	calls   atomic.Int64
	started chan string   // receives the key of each run as it starts
	release chan struct{} // closed (or sent to) to let runs finish
	fail    error         // returned instead of results when non-nil
}

func newBlockingExec() *blockingExec {
	return &blockingExec{started: make(chan string, 16), release: make(chan struct{})}
}

func (b *blockingExec) fn(ctx context.Context, opts sweep.Options, progress func(sweep.Progress)) (*refrint.SweepResults, error) {
	b.calls.Add(1)
	b.started <- opts.Key()
	if progress != nil {
		progress(sweep.Progress{Done: 1, Total: 2})
	}
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if b.fail != nil {
		return nil, b.fail
	}
	return sweep.Execute(sweep.Options{
		Apps:             opts.Apps,
		RetentionTimesUS: opts.RetentionTimesUS,
		Policies:         opts.Policies,
		EffortScale:      0.05,
		Seed:             opts.Seed,
		Workers:          2,
	})
}

// TestSingleflight verifies the acceptance criterion: two concurrent
// identical submissions share one underlying execution, and a submission
// after completion is a pure cache hit.
func TestSingleflight(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Execute: exec.fn})

	req := tinyRequest(7)
	first, status := h.submit(req)
	if status != http.StatusAccepted {
		t.Fatalf("first POST status = %d", status)
	}
	key := <-exec.started // the one execution is now running

	second, status := h.submit(req)
	if status != http.StatusAccepted {
		t.Fatalf("second POST status = %d", status)
	}
	if second.Key != first.Key || second.Key != key {
		t.Fatalf("keys differ: %q vs %q (exec %q)", first.Key, second.Key, key)
	}
	if second.ID == first.ID {
		t.Fatalf("both submissions got job ID %q", first.ID)
	}
	if second.State != StateRunning {
		t.Errorf("second job attached with state %q, want running", second.State)
	}

	// Progress from the shared execution is visible through both jobs.
	if got := h.getJob(first.ID).Progress; got.Percent != 50 {
		t.Errorf("first job progress = %+v, want 50%%", got)
	}
	if got := h.getJob(second.ID).Progress; got.Percent != 50 {
		t.Errorf("second job progress = %+v, want 50%%", got)
	}

	close(exec.release)
	h.waitState(first.ID, StateDone)
	h.waitState(second.ID, StateDone)
	if n := exec.calls.Load(); n != 1 {
		t.Fatalf("concurrent identical submissions ran %d executions, want 1", n)
	}

	// A later identical submission is served from the cache outright.
	third, status := h.submit(req)
	if status != http.StatusOK {
		t.Fatalf("cached POST status = %d, want 200", status)
	}
	if third.State != StateDone || !third.CacheHit {
		t.Fatalf("cached job = state %q cache_hit %v, want done/true", third.State, third.CacheHit)
	}
	if n := exec.calls.Load(); n != 1 {
		t.Fatalf("cache hit re-ran the sweep (%d executions)", n)
	}

	// A different sweep (new seed) is a different key and a fresh run.
	fourth, _ := h.submit(tinyRequest(8))
	if fourth.Key == first.Key {
		t.Fatalf("different seed produced identical key %q", fourth.Key)
	}
	<-exec.started
	h.waitState(fourth.ID, StateDone)
	if n := exec.calls.Load(); n != 2 {
		t.Fatalf("distinct sweep reused an execution (%d total)", n)
	}
}

// TestCancellation verifies DELETE stops a running job, that the stored
// state is cancelled, and that the key becomes runnable again afterwards.
func TestCancellation(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Execute: exec.fn})

	view, _ := h.submit(tinyRequest(1))
	<-exec.started // running, blocked on release/ctx

	var cancelled JobView
	resp := h.do("DELETE", "/v1/sweeps/"+view.ID, nil, &cancelled)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("cancelled job state = %q", cancelled.State)
	}
	// The execution observes ctx cancellation and stays cancelled.
	if got := h.waitState(view.ID, StateCancelled); got.Error == "" {
		t.Errorf("cancelled job has empty error")
	}

	// The key was dropped from the cache: resubmitting runs a fresh
	// execution rather than attaching to the doomed one.
	again, status := h.submit(tinyRequest(1))
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status = %d", status)
	}
	<-exec.started
	close(exec.release)
	h.waitState(again.ID, StateDone)
	if n := exec.calls.Load(); n != 2 {
		t.Fatalf("resubmit after cancel ran %d executions, want 2", n)
	}
}

// TestCancelOneOfTwo verifies that cancelling one of two jobs sharing an
// execution detaches only that job: the survivor still completes.
func TestCancelOneOfTwo(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Execute: exec.fn})

	req := tinyRequest(3)
	first, _ := h.submit(req)
	<-exec.started
	second, _ := h.submit(req)

	h.do("DELETE", "/v1/sweeps/"+second.ID, nil, nil)
	if got := h.getJob(second.ID); got.State != StateCancelled {
		t.Fatalf("cancelled job state = %q", got.State)
	}

	close(exec.release)
	if got := h.waitState(first.ID, StateDone); got.State != StateDone {
		t.Fatalf("surviving job state = %q", got.State)
	}
	if got := h.getJob(second.ID); got.State != StateCancelled {
		t.Errorf("cancelled job was revived to %q", got.State)
	}
	if n := exec.calls.Load(); n != 1 {
		t.Fatalf("shared execution ran %d times", n)
	}
}

// TestFailurePropagates verifies a failing sweep marks its jobs failed and
// does not poison the cache.
func TestFailurePropagates(t *testing.T) {
	exec := newBlockingExec()
	exec.fail = fmt.Errorf("synthetic sweep failure")
	h := newHarness(t, Config{Execute: exec.fn})

	view, _ := h.submit(tinyRequest(1))
	<-exec.started
	close(exec.release)
	failed := h.waitState(view.ID, StateFailed)
	if failed.Error == "" {
		t.Errorf("failed job has empty error")
	}

	resp := h.do("GET", "/v1/sweeps/"+view.ID+"/figures", nil, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("figures of failed job: status %d, want 409", resp.StatusCode)
	}
}

// TestQueueBounds verifies overload turns into HTTP 503, not unbounded
// queueing: with one shard of depth one, the third distinct sweep is
// rejected while the first still runs.
func TestQueueBounds(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, QueueDepth: 1, Execute: exec.fn})

	if _, status := h.submit(tinyRequest(1)); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	<-exec.started // first occupies the only worker
	if _, status := h.submit(tinyRequest(2)); status != http.StatusAccepted {
		t.Fatalf("second submit (queued): status %d", status)
	}
	if _, status := h.submit(tinyRequest(3)); status != http.StatusServiceUnavailable {
		t.Fatalf("third submit: status %d, want 503", status)
	}
	// Identical submissions still dedupe even under overload.
	if _, status := h.submit(tinyRequest(1)); status != http.StatusAccepted {
		t.Fatalf("identical submit under overload: status %d, want 202 (attached)", status)
	}
	close(exec.release)
}

// TestJobHistoryBound verifies old terminal jobs are forgotten past the
// history limit while non-terminal jobs are never evicted, so the service
// cannot grow without bound.
func TestJobHistoryBound(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{JobHistory: 2, Execute: exec.fn})

	listIDs := func() []string {
		var list struct {
			Jobs []JobView `json:"jobs"`
		}
		h.do("GET", "/v1/sweeps", nil, &list)
		ids := make([]string, 0, len(list.Jobs))
		for _, j := range list.Jobs {
			ids = append(ids, j.ID)
		}
		return ids
	}

	// Four distinct sweeps, all held non-terminal by the blocked executor
	// (both worker shards block; the rest wait in queues).
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		view, status := h.submit(tinyRequest(seed))
		if status != http.StatusAccepted {
			t.Fatalf("seed %d: status %d", seed, status)
		}
		ids = append(ids, view.ID)
	}
	// Over the bound, but nothing is terminal: no eviction may happen.
	if got := listIDs(); len(got) != 4 {
		t.Fatalf("history = %v, want all 4 live jobs retained", got)
	}

	close(exec.release)
	for _, id := range ids {
		h.waitState(id, StateDone)
	}

	// The next submission sweeps out the oldest terminal jobs.
	last, _ := h.submit(tinyRequest(5))
	h.waitState(last.ID, StateDone)
	got := listIDs()
	if len(got) > 2 {
		t.Errorf("job history holds %v, want <= 2 entries", got)
	}
	if resp := h.do("GET", "/v1/sweeps/"+ids[0], nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job %s still pollable: status %d", ids[0], resp.StatusCode)
	}
	if resp := h.do("GET", "/v1/sweeps/"+last.ID, nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("newest job %s evicted: status %d", last.ID, resp.StatusCode)
	}
}

// TestValidationAndNotFound covers the API error paths.
func TestValidationAndNotFound(t *testing.T) {
	h := newHarness(t, Config{})

	cases := []refrint.SweepRequest{
		{Policies: []string{"Q.all"}},     // unknown time policy
		{Policies: []string{"SRAM"}},      // baseline is implicit
		{Apps: []string{"NoSuchApp"}},     // unknown application
		{Preset: "enormous"},              // unknown preset
		{RetentionTimesUS: []float64{-4}}, // negative retention
		{EffortScale: -1},                 // negative effort
	}
	for _, c := range cases {
		if resp := h.do("POST", "/v1/sweeps", c, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %+v: status %d, want 400", c, resp.StatusCode)
		}
	}

	if resp := h.do("GET", "/v1/sweeps/job-999999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", resp.StatusCode)
	}
	if resp := h.do("DELETE", "/v1/sweeps/job-999999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestCatalogAndHealth exercises GET /v1/sims and GET /healthz.
func TestCatalogAndHealth(t *testing.T) {
	h := newHarness(t, Config{})

	var cat struct {
		Applications []struct {
			Name  string `json:"name"`
			Class string `json:"class"`
		} `json:"applications"`
		Policies         []string  `json:"policies"`
		RetentionTimesUS []float64 `json:"retention_times_us"`
		Presets          []string  `json:"presets"`
	}
	if resp := h.do("GET", "/v1/sims", nil, &cat); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sims: status %d", resp.StatusCode)
	}
	if len(cat.Applications) != 11 {
		t.Errorf("catalog lists %d applications, want 11 (Table 5.3)", len(cat.Applications))
	}
	if len(cat.Policies) != 14 {
		t.Errorf("catalog lists %d policies, want 14 (Table 5.4)", len(cat.Policies))
	}
	if len(cat.RetentionTimesUS) != 3 {
		t.Errorf("catalog lists %d retention times, want 3", len(cat.RetentionTimesUS))
	}

	var hz struct {
		Status string `json:"status"`
		Jobs   int    `json:"jobs"`
	}
	if resp := h.do("GET", "/healthz", nil, &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", resp.StatusCode)
	}
	if hz.Status != "ok" {
		t.Errorf("healthz status = %q", hz.Status)
	}
}

// TestConcurrentClientsRealSweep is the race-detector stress for the
// acceptance criterion, against the real simulator: many clients submit the
// same sweep concurrently while others poll; exactly one execution runs and
// every client sees identical figure data.
func TestConcurrentClientsRealSweep(t *testing.T) {
	var calls atomic.Int64
	h := newHarness(t, Config{
		Shards: 2,
		Execute: func(ctx context.Context, opts sweep.Options, progress func(sweep.Progress)) (*refrint.SweepResults, error) {
			calls.Add(1)
			return sweep.ExecuteContext(ctx, opts, progress)
		},
	})

	const clients = 8
	req := tinyRequest(42)
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, _ := json.Marshal(req)
			resp, err := h.ts.Client().Post(h.ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var view JobView
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				t.Errorf("client %d: decode: %v", i, err)
				return
			}
			ids[i] = view.ID
		}(i)
	}
	wg.Wait()

	var exports []string
	for _, id := range ids {
		if id == "" {
			t.Fatal("a client got no job ID")
		}
		h.waitState(id, StateDone)
		var figs sweep.FiguresExport
		h.do("GET", "/v1/sweeps/"+id+"/figures", nil, &figs)
		payload, _ := json.Marshal(figs)
		exports = append(exports, string(payload))
	}
	for i, e := range exports {
		if e != exports[0] {
			t.Fatalf("client %d saw different figures than client 0", i)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("%d concurrent identical clients ran %d executions, want 1", clients, n)
	}
}
