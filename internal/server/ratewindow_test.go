package server

import (
	"testing"
	"time"
)

// fakeClock steps a rateWindow through deterministic seconds.
type fakeClock struct{ sec int64 }

func (c *fakeClock) now() time.Time { return time.Unix(c.sec, 0) }

func TestRateWindowEmpty(t *testing.T) {
	c := &fakeClock{sec: 1000}
	r := newRateWindow(60*time.Second, c.now)
	if got := r.Rate(); got != 0 {
		t.Errorf("empty window rate = %g, want 0", got)
	}
}

func TestRateWindowEarlyLifeDenominator(t *testing.T) {
	c := &fakeClock{sec: 1000}
	r := newRateWindow(60*time.Second, c.now)
	r.Add(10)
	// One second lived, 10 events: 10/s, not 10/60.
	if got := r.Rate(); got != 10 {
		t.Errorf("early rate = %g, want 10", got)
	}
	c.sec += 4 // five seconds lived
	if got := r.Rate(); got != 2 {
		t.Errorf("rate after 5s = %g, want 2", got)
	}
}

func TestRateWindowSlides(t *testing.T) {
	c := &fakeClock{sec: 1000}
	r := newRateWindow(60*time.Second, c.now)
	for i := 0; i < 120; i++ {
		r.Add(2)
		c.sec++
	}
	c.sec-- // query at the second of the last Add
	// Fully lived window: the last 60 seconds carry 2 events each.
	if got := r.Rate(); got != 2 {
		t.Errorf("steady rate = %g, want 2", got)
	}
	// A quiet minute later the window must have drained to zero.
	c.sec += 61
	if got := r.Rate(); got != 0 {
		t.Errorf("rate after idle minute = %g, want 0", got)
	}
}

func TestRateWindowBucketReuse(t *testing.T) {
	c := &fakeClock{sec: 500}
	r := newRateWindow(2*time.Second, c.now)
	r.Add(5)
	c.sec += 2 // same bucket index, different second: must reset, not add
	r.Add(1)
	if got := r.Rate(); got != 0.5 {
		t.Errorf("rate = %g, want 0.5 (stale bucket leaked)", got)
	}
}
