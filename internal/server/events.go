package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"refrint/internal/sched"
)

// This file is the streaming subsystem: a per-server event bus plus the SSE
// endpoints that expose it.
//
//	GET /v1/sweeps/{id}/events   one job's stream
//	GET /v1/batches/{id}/events  one batch's aggregated stream
//	GET /v1/events               firehose of every event (dashboards)
//
// Named events: "state" (lifecycle snapshot), "progress" (simulation
// counts), and exactly one terminal event named after the final state
// ("done", "failed" or "cancelled"), whose data is the full final view.
// Per-job and per-batch streams close after their terminal event; the
// firehose runs until the client disconnects or the server shuts down.
//
// Every (re)connection starts with a "state" snapshot of the current view,
// so a subscriber arriving late — or reconnecting with Last-Event-ID after
// the job already finished — still gets closure: a terminal job replays its
// terminal event immediately and the stream ends.
//
// Publishers never block on subscribers: each subscriber owns a bounded
// queue in which progress events coalesce (latest wins), so a slow consumer
// costs O(buffer) memory and loses only intermediate progress.  A per-topic
// stream never sheds its state or terminal events (it holds at most a
// handful); an extremely backlogged firehose evicts oldest-first — progress
// before state, terminals only as a last resort.  Event IDs are
// server-global and monotonic.

// Event names beyond the terminal ones (which reuse the State strings).
const (
	eventState    = "state"
	eventProgress = "progress"
)

// Event is one server-sent event on a topic ("job:<id>" or "batch:<id>").
type Event struct {
	ID    int64
	Name  string // "state", "progress", "done", "failed", "cancelled"
	Topic string
	Data  []byte // marshalled JSON payload
	// done is the progress ordinal (simulations completed) carried by
	// progress and snapshot events; writers use it to keep the delivered
	// progress sequence monotonic even across queue coalescing.
	done int64
	// client and class identify the tenant and scheduling class behind the
	// event, so filtered firehose subscribers match without unmarshalling.
	client string
	class  sched.Class
}

// terminal reports whether the event ends its per-topic stream.
func (e Event) terminal() bool {
	return e.Name != eventState && e.Name != eventProgress
}

// progressEvent is the payload of "progress" events: small enough to emit
// at tick rate.  "state" and terminal events carry the full JobView or
// BatchView instead.
type progressEvent struct {
	ID       string       `json:"id"`
	Kind     string       `json:"kind"` // "sweep" or "batch"
	State    State        `json:"state"`
	Progress ProgressView `json:"progress"`
}

func jobTopic(id string) string   { return "job:" + id }
func batchTopic(id string) string { return "batch:" + id }

// noClassFilter marks a firehose subscriber without a class filter.
const noClassFilter = sched.Class(-1)

// subscriber is one attached SSE client.
type subscriber struct {
	topic  string        // "job:<id>", "batch:<id>", or "" for the firehose
	notify chan struct{} // cap-1 doorbell rung after every push
	quit   chan struct{} // closed on unsubscribe or bus close

	// Firehose filters (?client= and ?class=): hasClientFilter
	// distinguishes "no filter" from an explicit ?client= selecting the
	// anonymous tenant; filterClass is noClassFilter when unset.  Per-topic
	// subscribers never filter.
	filterClient    string
	hasClientFilter bool
	filterClass     sched.Class

	mu      sync.Mutex
	queue   []Event
	dropped int64 // events dropped or coalesced away
}

// matches reports whether the subscriber wants the event.
func (sub *subscriber) matches(ev Event) bool {
	if sub.topic != "" {
		return sub.topic == ev.Topic
	}
	if sub.hasClientFilter && ev.client != sub.filterClient {
		return false
	}
	if sub.filterClass != noClassFilter && ev.class != sub.filterClass {
		return false
	}
	return true
}

// push enqueues one event without ever blocking: progress events coalesce
// into a pending progress event of the same topic, and when the queue is
// full the oldest expendable event is evicted — progress first, then state,
// terminal events only as a last resort (a per-topic stream holds at most
// one, but a stalled firehose reader can accumulate them).
func (sub *subscriber) push(ev Event, buffer int) {
	sub.mu.Lock()
	coalesced := false
	if ev.Name == eventProgress {
		for i := len(sub.queue) - 1; i >= 0; i-- {
			if sub.queue[i].Topic == ev.Topic && sub.queue[i].Name == eventProgress {
				sub.queue[i] = ev
				sub.dropped++
				coalesced = true
				break
			}
		}
	}
	if !coalesced {
		sub.queue = append(sub.queue, ev)
		if len(sub.queue) > buffer {
			drop := -1
			for i, q := range sub.queue {
				if q.Name == eventProgress {
					drop = i
					break
				}
				if drop < 0 && q.Name == eventState {
					drop = i
				}
			}
			if drop < 0 {
				drop = 0
			}
			sub.queue = append(sub.queue[:drop], sub.queue[drop+1:]...)
			sub.dropped++
		}
	}
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// drain moves every pending event into buf (reused across calls).
func (sub *subscriber) drain(buf []Event) []Event {
	sub.mu.Lock()
	buf = append(buf[:0], sub.queue...)
	sub.queue = sub.queue[:0]
	sub.mu.Unlock()
	return buf
}

// logMaxTopics bounds how many topics hold a replay log at once; the
// longest-idle topic's log is discarded beyond it.  Logs also vanish when
// their topic publishes a terminal event (the reconnect snapshot carries
// closure), so in practice only live topics are logged.
const logMaxTopics = 1024

// eventBus fans state and progress events out to SSE subscribers.  It is a
// leaf in the lock order: the server publishes while holding s.mu, so the
// bus must never call back into the server.
//
// The bus also keeps a small bounded per-topic log of published events so a
// subscriber reconnecting with Last-Event-ID mid-run resumes the deltas it
// missed instead of only getting a fresh snapshot.  Replay is best-effort:
// events are only logged while they have an audience (the hasTopic gate),
// and the connect-time snapshot always covers whatever the log lost.
type eventBus struct {
	buffer int // per-subscriber queue bound
	logMax int // per-topic replay-log bound (0 disables logging)

	mu        sync.Mutex
	subs      map[*subscriber]struct{}
	logs      map[string][]Event
	seq       int64
	closed    bool
	published int64
	dropped   int64 // accumulated from departed subscribers
}

func newEventBus(buffer, logMax int) *eventBus {
	return &eventBus{
		buffer: buffer,
		logMax: logMax,
		subs:   make(map[*subscriber]struct{}),
		logs:   make(map[string][]Event),
	}
}

// subscribe attaches a new subscriber to one topic ("" = firehose).  It
// reports false when the bus is already closed.
func (b *eventBus) subscribe(topic string) (*subscriber, bool) {
	return b.subscribeFiltered(topic, "", false, noClassFilter)
}

// subscribeFiltered is subscribe with firehose filters; they are fixed at
// subscription time so no event can slip past a filter being installed.
func (b *eventBus) subscribeFiltered(topic, client string, hasClient bool, class sched.Class) (*subscriber, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false
	}
	sub := &subscriber{
		topic:           topic,
		notify:          make(chan struct{}, 1),
		quit:            make(chan struct{}),
		filterClient:    client,
		hasClientFilter: hasClient,
		filterClass:     class,
	}
	b.subs[sub] = struct{}{}
	return sub, true
}

// unsubscribe detaches a subscriber and releases its queue.  Idempotent,
// and safe against a concurrent close.
func (b *eventBus) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	if _, ok := b.subs[sub]; ok {
		delete(b.subs, sub)
		sub.mu.Lock()
		b.dropped += sub.dropped
		sub.mu.Unlock()
		close(sub.quit)
	}
	b.mu.Unlock()
}

// publish fans one event out to every matching subscriber and records it in
// the topic's replay log.  The payload is marshalled at most once, and not at
// all when nobody is listening.
func (b *eventBus) publish(name, topic, client string, class sched.Class, done int64, payload any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	probe := Event{Name: name, Topic: topic, client: client, class: class}
	matched := false
	for sub := range b.subs {
		if sub.matches(probe) {
			matched = true
			break
		}
	}
	if !matched {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return // payloads are the server's own view structs; cannot fail
	}
	b.seq++
	b.published++
	ev := probe
	ev.ID, ev.Data, ev.done = b.seq, data, done
	b.logLocked(ev)
	for sub := range b.subs {
		if sub.matches(ev) {
			sub.push(ev, b.buffer)
		}
	}
}

// logLocked appends one published event to its topic's bounded replay log.
// A terminal event retires the whole log: the stream is over, and any later
// reconnect gets closure from its connect-time snapshot instead.  Caller
// holds the bus mutex.
func (b *eventBus) logLocked(ev Event) {
	if b.logMax <= 0 || ev.Topic == "" {
		return
	}
	if ev.terminal() {
		delete(b.logs, ev.Topic)
		return
	}
	l, tracked := b.logs[ev.Topic]
	if !tracked && len(b.logs) >= logMaxTopics {
		// Discard the longest-idle topic's log (smallest last event ID).
		idle, idleID := "", int64(0)
		for t, tl := range b.logs {
			if last := tl[len(tl)-1].ID; idle == "" || last < idleID {
				idle, idleID = t, last
			}
		}
		delete(b.logs, idle)
	}
	l = append(l, ev)
	if len(l) > b.logMax {
		l = l[len(l)-b.logMax:]
	}
	b.logs[ev.Topic] = l
}

// replay returns the logged events of one topic with IDs beyond afterID, in
// publication order.
func (b *eventBus) replay(topic string, afterID int64) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, ev := range b.logs[topic] {
		if ev.ID > afterID {
			out = append(out, ev)
		}
	}
	return out
}

// nextID allocates an event ID for a handler-synthesized snapshot event, so
// snapshots order consistently with bus-published events.
func (b *eventBus) nextID() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	return b.seq
}

// active reports whether anyone is subscribed; the progress tick skips all
// snapshot and marshal work when nobody is listening.
func (b *eventBus) active() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs) > 0
}

// hasTopic reports whether any subscriber would receive events on topic —
// one of its own streams, or the firehose.  Publishers use it to skip
// snapshot/diff work entirely, and to leave their diff state untouched so
// the transition is still published once an audience appears.
func (b *eventBus) hasTopic(topic string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	for sub := range b.subs {
		if sub.topic == "" || sub.topic == topic {
			return true
		}
	}
	return false
}

// stats returns subscriber count and cumulative published/dropped counters.
func (b *eventBus) stats() (subs int, published, dropped int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	dropped = b.dropped
	for sub := range b.subs {
		sub.mu.Lock()
		dropped += sub.dropped
		sub.mu.Unlock()
	}
	return len(b.subs), b.published, dropped
}

// close tears every subscriber down; their streams end after draining what
// is already queued.  Further publishes and subscribes are no-ops.
func (b *eventBus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		delete(b.subs, sub)
		sub.mu.Lock()
		b.dropped += sub.dropped
		sub.mu.Unlock()
		close(sub.quit)
	}
}

// --- SSE wire format ---

// sseWriter writes one text/event-stream response, enforcing Last-Event-ID
// dedup (firehose only — per-topic streams always replay their snapshot, so
// a reconnecting subscriber of a finished job gets closure) and per-topic
// progress monotonicity.
type sseWriter struct {
	w      http.ResponseWriter
	rc     *http.ResponseController
	dedup  bool             // honor lastID (set on the firehose)
	lastID int64            // events at or below this ID were already delivered
	seen   map[string]int64 // topic -> highest progress ordinal written
}

func startSSE(w http.ResponseWriter, r *http.Request) *sseWriter {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	sw := &sseWriter{w: w, rc: http.NewResponseController(w), seen: make(map[string]int64)}
	// Streams outlive any server write deadline; best-effort, some
	// ResponseWriters (httptest recorders) do not support deadlines.
	_ = sw.rc.SetWriteDeadline(time.Time{})
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if id, err := strconv.ParseInt(v, 10, 64); err == nil {
			sw.lastID = id
		}
	}
	return sw
}

// event writes one event and flushes it.  Events the client already saw
// (Last-Event-ID) and progress that would run backwards — a coalesced queue
// can deliver around a snapshot — are silently skipped.
func (sw *sseWriter) event(ev Event) error {
	if sw.dedup && ev.ID <= sw.lastID {
		return nil
	}
	switch {
	case ev.Name == eventProgress:
		if last, ok := sw.seen[ev.Topic]; ok && ev.done <= last {
			return nil
		}
		sw.seen[ev.Topic] = ev.done
	case ev.terminal():
		// The topic is over — no later progress can arrive for it — so its
		// ordinal is dropped: a long-lived firehose must not accumulate one
		// map entry per job ever streamed.
		delete(sw.seen, ev.Topic)
	default:
		if cur, ok := sw.seen[ev.Topic]; !ok || ev.done > cur {
			// State events carry progress too; later queued progress
			// events must not run backwards past them.
			sw.seen[ev.Topic] = ev.done
		}
	}
	if _, err := fmt.Fprintf(sw.w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, ev.Data); err != nil {
		return err
	}
	return sw.rc.Flush()
}

// comment writes an SSE comment line (the standard keepalive).
func (sw *sseWriter) comment(msg string) error {
	if _, err := fmt.Fprintf(sw.w, ": %s\n\n", msg); err != nil {
		return err
	}
	return sw.rc.Flush()
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte("{}")
	}
	return data
}

// --- HTTP handlers ---

// streamTopic serves one per-topic SSE stream: subscribe first (so no
// transition can fall between subscription and snapshot; the writer's
// monotonicity filter absorbs the overlap), send the connect-time "state"
// snapshot, replay the terminal event immediately for a finished topic —
// late and reconnecting subscribers still get closure — and otherwise pump
// live events until the stream ends.  snapshot runs under the server mutex
// and reports ok=false when the entity vanished (history eviction) between
// the caller's existence check and the subscription.
func (s *Server) streamTopic(w http.ResponseWriter, r *http.Request, topic, kind, id string, snapshot func() (view any, st State, done int, ok bool)) {
	sub, ok := s.bus.subscribe(topic)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	defer s.bus.unsubscribe(sub)

	view, st, done, ok := snapshot()
	if !ok {
		writeError(w, http.StatusNotFound, "no %s %q", kind, id)
		return
	}

	sw := startSSE(w, r)
	// A mid-run reconnect (Last-Event-ID set) first replays the logged
	// events it missed, in order, then the fresh snapshot below.  The
	// writer's monotonic progress filter absorbs any overlap between the
	// replay's tail and the snapshot.  Dedup turns on only when the replay
	// delivered something: it then suppresses queue/replay duplicates from
	// the subscribe-before-snapshot window, while a stale or foreign
	// Last-Event-ID (matching nothing in the log) cannot swallow the
	// snapshot and terminal events that give every reconnect closure.
	if sw.lastID > 0 {
		replayed := s.bus.replay(topic, sw.lastID)
		for _, ev := range replayed {
			if sw.event(ev) != nil {
				return
			}
		}
		if n := len(replayed); n > 0 {
			sw.dedup = true
			sw.lastID = replayed[n-1].ID
		}
	}
	state := Event{
		ID: s.bus.nextID(), Name: eventState, Topic: topic,
		Data: mustJSON(view), done: int64(done),
	}
	if sw.event(state) != nil {
		return
	}
	if st.Terminal() {
		_ = sw.event(Event{ID: s.bus.nextID(), Name: string(st), Topic: topic, Data: state.Data})
		return
	}
	s.streamLoop(r, sub, sw)
}

// handleJobEvents implements GET /v1/sweeps/{id}/events.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.streamTopic(w, r, jobTopic(id), "job", id, func() (any, State, int, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		job, ok := s.jobs[id]
		if !ok {
			return nil, "", 0, false
		}
		v := job.snapshot()
		return v, v.State, v.Progress.Done, true
	})
}

// handleBatchEvents implements GET /v1/batches/{id}/events.
func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.streamTopic(w, r, batchTopic(id), "batch", id, func() (any, State, int, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		b, ok := s.batches[id]
		if !ok {
			return nil, "", 0, false
		}
		v := b.snapshotLocked()
		return v, v.State, v.Progress.Done, true
	})
}

// handleFirehose implements GET /v1/events: every event of every job and
// batch, for dashboards.  The stream runs until the client disconnects or
// the server closes; terminal events do not end it.  ?client= narrows it to
// one tenant's events (an empty value selects the anonymous tenant) and
// ?class= to one scheduling class; both may be combined, so a multi-tenant
// dashboard does not have to drink the whole firehose to watch one tenant.
func (s *Server) handleFirehose(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	client, hasClient := q.Get("client"), q.Has("client")
	if err := validateClient(client); err != nil {
		writeError(w, http.StatusBadRequest, "client: %v", err)
		return
	}
	class := noClassFilter
	if v := q.Get("class"); v != "" {
		c, err := sched.ParseClass(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "class: %v", err)
			return
		}
		class = c
	}
	sub, ok := s.bus.subscribeFiltered("", client, hasClient, class)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	defer s.bus.unsubscribe(sub)
	sw := startSSE(w, r)
	sw.dedup = true // a reconnecting dashboard skips events it already saw
	if sw.comment("refrint event stream") != nil {
		return
	}
	s.streamLoop(r, sub, sw)
}

// streamLoop pumps a subscriber's queue into the response until the client
// disconnects, the bus closes, or (on per-topic streams) a terminal event
// is delivered.  Heartbeat comments keep idle connections alive through
// proxies.
func (s *Server) streamLoop(r *http.Request, sub *subscriber, sw *sseWriter) {
	hb := time.NewTicker(s.cfg.EventHeartbeat)
	defer hb.Stop()
	var buf []Event
	deliver := func() bool { // reports whether the stream should end
		buf = sub.drain(buf)
		for _, ev := range buf {
			if sw.event(ev) != nil {
				return true
			}
			if ev.terminal() && sub.topic != "" {
				return true
			}
		}
		return false
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.quit:
			// Shutdown: deliver what was already queued, then end.
			deliver()
			return
		case <-hb.C:
			if sw.comment("heartbeat") != nil {
				return
			}
		case <-sub.notify:
			if deliver() {
				return
			}
		}
	}
}
