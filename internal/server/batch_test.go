package server

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"refrint"
	"refrint/internal/sched"
	"refrint/internal/sweep"
)

// submitBatch POSTs a batch and returns the decoded view.
func (h *harness) submitBatch(req BatchRequest) (BatchView, int) {
	h.t.Helper()
	var view BatchView
	resp := h.do("POST", "/v1/batches", req, &view)
	return view, resp.StatusCode
}

// getBatch polls one batch.
func (h *harness) getBatch(id string) BatchView {
	h.t.Helper()
	var view BatchView
	resp := h.do("GET", "/v1/batches/"+id, nil, &view)
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("GET batch %s: status %d", id, resp.StatusCode)
	}
	return view
}

// waitBatchState polls until the batch reaches want (or any terminal state).
func (h *harness) waitBatchState(id string, want State) BatchView {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		view := h.getBatch(id)
		if view.State == want {
			return view
		}
		if view.State.Terminal() || time.Now().After(deadline) {
			h.t.Fatalf("batch %s: state %q (counts %v), want %q", id, view.State, view.Counts, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBatchLifecycle drives a real batch end to end: one handle, aggregated
// progress, member jobs individually pollable, results fetchable, and
// identical requests within the batch singleflighted onto one execution.
func TestBatchLifecycle(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Execute: exec.fn})
	close(exec.release) // run everything immediately

	view, status := h.submitBatch(BatchRequest{
		Client:   "campaign",
		Requests: []refrint.SweepRequest{tinyRequest(1), tinyRequest(2), tinyRequest(1)},
	})
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/batches: status %d, want 202", status)
	}
	if view.ID == "" || len(view.Jobs) != 3 {
		t.Fatalf("batch view = %+v, want 3 jobs and an id", view)
	}
	if view.Priority != "batch" {
		t.Fatalf("batch default priority = %q, want batch", view.Priority)
	}
	if view.Jobs[0].Key != view.Jobs[2].Key {
		t.Fatalf("identical requests got distinct keys %q vs %q", view.Jobs[0].Key, view.Jobs[2].Key)
	}

	done := h.waitBatchState(view.ID, StateDone)
	if done.Counts[string(StateDone)] != 3 {
		t.Fatalf("terminal counts = %v, want done:3", done.Counts)
	}
	if done.Progress.Percent != 100 || done.Progress.Done != done.Progress.Total {
		t.Fatalf("terminal progress = %+v, want 100%%", done.Progress)
	}
	// The duplicate request shared an execution: two sweeps ran, not three.
	if n := exec.calls.Load(); n != 2 {
		t.Fatalf("batch of 3 (one duplicate) ran %d executions, want 2", n)
	}
	// Member jobs stay individually addressable.
	for _, j := range done.Jobs {
		if got := h.getJob(j.ID); got.State != StateDone {
			t.Errorf("member job %s state = %q, want done", j.ID, got.State)
		}
	}
	if resp := h.do("GET", "/v1/sweeps/"+done.Jobs[0].ID+"/figures", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("member figures: status %d", resp.StatusCode)
	}
}

// TestBatchValidationAtomic verifies a batch with any invalid request is
// rejected whole: no jobs are created for the valid ones.
func TestBatchValidationAtomic(t *testing.T) {
	h := newHarness(t, Config{})

	cases := []BatchRequest{
		{},                                   // no requests
		{Requests: []refrint.SweepRequest{}}, // empty
		{Requests: []refrint.SweepRequest{tinyRequest(1), {Apps: []string{"NoSuchApp"}}}},
		{Requests: []refrint.SweepRequest{tinyRequest(1)}, Priority: "turbo"},
		{Requests: []refrint.SweepRequest{func() refrint.SweepRequest {
			r := tinyRequest(1)
			r.Priority = "warp"
			return r
		}()}},
	}
	for i, c := range cases {
		if resp := h.do("POST", "/v1/batches", c, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}

	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	h.do("GET", "/v1/sweeps", nil, &list)
	if len(list.Jobs) != 0 {
		t.Fatalf("rejected batches left %d jobs behind", len(list.Jobs))
	}
}

// TestBatchCapacityAtomic verifies all-or-nothing admission against queue
// capacity: a batch needing more slots than remain is rejected whole, and
// the slots it probed stay usable.
func TestBatchCapacityAtomic(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, QueueDepth: 2, Execute: exec.fn})

	h.submit(tinyRequest(1))
	<-exec.started // occupy the worker
	// Leave one free batch-class slot.
	one := tinyRequest(2)
	one.Priority = "batch"
	if _, status := h.submit(one); status != http.StatusAccepted {
		t.Fatalf("filler submit: status %d", status)
	}

	over := BatchRequest{Requests: []refrint.SweepRequest{tinyRequest(3), tinyRequest(4)}}
	if _, status := h.submitBatch(over); status != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity batch: status %d, want 503", status)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	h.do("GET", "/v1/sweeps", nil, &list)
	if len(list.Jobs) != 2 {
		t.Fatalf("rejected batch created jobs: %d total, want 2", len(list.Jobs))
	}

	// The single free slot is still usable — by a batch that fits.
	fits := BatchRequest{Requests: []refrint.SweepRequest{tinyRequest(3)}}
	if view, status := h.submitBatch(fits); status != http.StatusAccepted || len(view.Jobs) != 1 {
		t.Fatalf("fitting batch: status %d view %+v", status, view)
	}
	close(exec.release)
}

// TestBatchPartialFailure verifies aggregation when one member fails: the
// batch ends failed, with per-state counts showing the mixed outcome.
func TestBatchPartialFailure(t *testing.T) {
	h := newHarness(t, Config{
		Execute: func(ctx context.Context, opts sweep.Options, progress func(sweep.Progress)) (*refrint.SweepResults, error) {
			if opts.Seed == 99 {
				return nil, fmt.Errorf("synthetic failure for seed 99")
			}
			return sweep.ExecuteContext(ctx, opts, progress)
		},
	})

	view, status := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(1), tinyRequest(99)},
	})
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/batches: status %d", status)
	}
	failed := h.waitBatchState(view.ID, StateFailed)
	if failed.Counts[string(StateDone)] != 1 || failed.Counts[string(StateFailed)] != 1 {
		t.Fatalf("counts = %v, want done:1 failed:1", failed.Counts)
	}
	// The surviving member's results are still fetchable.
	for _, j := range failed.Jobs {
		if j.State == StateDone {
			if resp := h.do("GET", "/v1/sweeps/"+j.ID+"/results", nil, nil); resp.StatusCode != http.StatusOK {
				t.Errorf("surviving member results: status %d", resp.StatusCode)
			}
		}
	}
}

// TestBatchCancel verifies DELETE /v1/batches/{id}: every non-terminal
// member is cancelled, queued members free their scheduler slots
// immediately, and running members abort via context.
func TestBatchCancel(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, QueueDepth: 2, Execute: exec.fn})

	h.submit(tinyRequest(1))
	<-exec.started // occupy the worker so batch members stay queued

	view, status := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(2), tinyRequest(3)},
	})
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/batches: status %d", status)
	}
	var cancelled BatchView
	resp := h.do("DELETE", "/v1/batches/"+view.ID, nil, &cancelled)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE batch: status %d", resp.StatusCode)
	}
	if cancelled.State != StateCancelled || cancelled.Counts[string(StateCancelled)] != 2 {
		t.Fatalf("cancelled batch = state %q counts %v, want cancelled:2", cancelled.State, cancelled.Counts)
	}

	// Both queued members left the scheduler at cancel time: the batch
	// class has its full capacity back with no worker pop in between.
	var hz struct {
		Queued int `json:"queued"`
	}
	h.do("GET", "/healthz", nil, &hz)
	if hz.Queued != 0 {
		t.Fatalf("healthz queued = %d after batch cancel, want 0", hz.Queued)
	}
	refill := BatchRequest{Requests: []refrint.SweepRequest{tinyRequest(4), tinyRequest(5)}}
	if _, status := h.submitBatch(refill); status != http.StatusAccepted {
		t.Fatalf("batch after cancel: status %d, want 202 (slots leaked)", status)
	}
	// Cancelling a second time is a no-op that reports the same state.
	h.do("DELETE", "/v1/batches/"+view.ID, nil, &cancelled)
	if cancelled.State != StateCancelled {
		t.Fatalf("re-cancel state = %q", cancelled.State)
	}

	close(exec.release)
	// Only the blocker and the refill batch ever execute.
	h.waitBatchState(h.getBatch(view.ID).ID, StateCancelled)
	if n := exec.calls.Load(); n > 3 {
		t.Fatalf("executor ran %d sweeps, want <= 3 (cancelled members must not run)", n)
	}

	if resp := h.do("GET", "/v1/batches/batch-999999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown batch: status %d, want 404", resp.StatusCode)
	}
	if resp := h.do("DELETE", "/v1/batches/batch-999999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown batch: status %d, want 404", resp.StatusCode)
	}
}

// TestBatchIgnoresFullUntouchedClass is a regression for the capacity check
// vetoing batches over classes they do not use: a full class must not 503 a
// batch that needs zero slots there.  (The attach below also exercises the
// promote-into-full-class path: the promotion is declined and the shared
// execution stays at its original class rather than overflowing the bound.)
func TestBatchIgnoresFullUntouchedClass(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{
		Shards:          1,
		ClassQueueDepth: [sched.NumClasses]int{1, 4, 4},
		Execute:         exec.fn,
	})

	h.submit(tinyRequest(1))
	<-exec.started // occupy the worker

	// Fill interactive to its depth of 1, then attach an interactive job
	// to a queued background sweep: the promotion must be declined (the
	// class is full) and the interactive bound must hold.
	fill := tinyRequest(2)
	fill.Priority = "interactive"
	if _, status := h.submit(fill); status != http.StatusAccepted {
		t.Fatalf("interactive fill: status %d", status)
	}
	bg := tinyRequest(3)
	bg.Priority = "background"
	if _, status := h.submit(bg); status != http.StatusAccepted {
		t.Fatalf("background submit: status %d", status)
	}
	attach := tinyRequest(3)
	attach.Priority = "interactive"
	if _, status := h.submit(attach); status != http.StatusAccepted {
		t.Fatalf("attach to queued background sweep: status %d", status)
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="interactive"}`); v != 1 {
		t.Fatalf("interactive depth = %v, want 1 (declined promotion must not overflow the bound)", v)
	}
	// Interactive is full.  A batch needing only batch-class capacity must
	// still be admitted.
	view, status := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(4), tinyRequest(5)},
	})
	if status != http.StatusAccepted {
		t.Fatalf("batch over an untouched over-full class: status %d, want 202", status)
	}
	if len(view.Jobs) != 2 {
		t.Fatalf("batch admitted %d jobs, want 2", len(view.Jobs))
	}
	close(exec.release)
}

// TestBatchMixedPriorityDuplicates is a regression for capacity accounting
// of duplicate keys with mixed priorities: the shared execution lands in the
// most urgent class of its occurrences, that class is what admission charges
// (an undercount here used to trip the mid-batch rollback as a spurious
// 503), and a batch genuinely over that capacity is rejected whole up front.
func TestBatchMixedPriorityDuplicates(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{
		Shards:          1,
		ClassQueueDepth: [sched.NumClasses]int{2, 4, 4},
		Execute:         exec.fn,
	})

	h.submit(tinyRequest(1))
	<-exec.started // occupy the worker

	bg := tinyRequest(5)
	bg.Priority = "background"
	urgent := tinyRequest(5) // same sweep, more urgent
	urgent.Priority = "interactive"
	other := tinyRequest(6)
	other.Priority = "interactive"
	view, status := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{bg, urgent, other},
	})
	if status != http.StatusAccepted {
		t.Fatalf("mixed-priority batch: status %d, want 202 (interactive has exactly 2 free slots)", status)
	}
	if len(view.Jobs) != 3 {
		t.Fatalf("admitted %d jobs, want 3", len(view.Jobs))
	}
	// The duplicate pair shares one execution, queued at interactive (its
	// most urgent occurrence), not background.
	if v := h.schedMetric(`refrint_sched_queue_depth{class="interactive"}`); v != 2 {
		t.Fatalf("interactive queue depth = %v, want 2 (shared execution + seed 6)", v)
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="background"}`); v != 0 {
		t.Fatalf("background queue depth = %v, want 0", v)
	}

	// Interactive is now full: another such batch is rejected whole by the
	// up-front check, leaving no member behind.
	before := len(h.getBatch(view.ID).Jobs) + 1 // batch members + blocker
	bg2 := tinyRequest(7)
	bg2.Priority = "background"
	urgent2 := tinyRequest(7)
	urgent2.Priority = "interactive"
	if _, status := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{bg2, urgent2},
	}); status != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity mixed batch: status %d, want 503", status)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	h.do("GET", "/v1/sweeps", nil, &list)
	if len(list.Jobs) != before {
		t.Fatalf("rejected batch changed job count: %d, want %d", len(list.Jobs), before)
	}
	close(exec.release)
}

// TestBatchPromotesStraightToEffectiveClass is a regression for attach
// promotion passing through an unaccounted intermediate class: a batch
// member attaching to a pre-existing queued execution must promote it
// directly to the batch's effective class for that key, never parking it in
// a class the capacity check did not charge.
func TestBatchPromotesStraightToEffectiveClass(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{
		Shards:          1,
		ClassQueueDepth: [sched.NumClasses]int{4, 1, 4},
		Execute:         exec.fn,
	})

	h.submit(tinyRequest(1))
	<-exec.started // occupy the worker

	// Pre-existing background execution for seed 5.
	pre := tinyRequest(5)
	pre.Priority = "background"
	if _, status := h.submit(pre); status != http.StatusAccepted {
		t.Fatalf("pre-existing submit: status %d", status)
	}

	// Batch: seed 5 at batch AND at interactive (eff class interactive),
	// plus a fresh batch-class member needing the single batch slot.  A
	// promotion stopping over in the batch class would eat that slot and
	// 503 the whole (capacity-checked) batch.
	dupBatch := tinyRequest(5)
	dupBatch.Priority = "batch"
	dupInter := tinyRequest(5)
	dupInter.Priority = "interactive"
	fresh := tinyRequest(6)
	fresh.Priority = "batch"
	view, status := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{dupBatch, fresh, dupInter},
	})
	if status != http.StatusAccepted {
		t.Fatalf("batch: status %d, want 202 (promotion must skip intermediate classes)", status)
	}
	if len(view.Jobs) != 3 {
		t.Fatalf("admitted %d jobs, want 3", len(view.Jobs))
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="interactive"}`); v != 1 {
		t.Fatalf("interactive depth = %v, want 1 (the promoted execution)", v)
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="batch"}`); v != 1 {
		t.Fatalf("batch depth = %v, want 1 (the fresh member)", v)
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="background"}`); v != 0 {
		t.Fatalf("background depth = %v, want 0 (execution left it)", v)
	}
	close(exec.release)
}

// TestBatchCreditsPromotionFreedSlots is a regression for the admission
// check ignoring slots the batch's own promotions free: with the batch
// class full only because of an execution this batch promotes out of it,
// the batch must be admitted — even when the fresh member that needs the
// freed slot is listed before the promoting duplicate.
func TestBatchCreditsPromotionFreedSlots(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{
		Shards:          1,
		ClassQueueDepth: [sched.NumClasses]int{4, 1, 4},
		Execute:         exec.fn,
	})

	h.submit(tinyRequest(1))
	<-exec.started // occupy the worker

	// Fill the batch class with execution K.
	pre := tinyRequest(5)
	pre.Priority = "batch"
	if _, status := h.submit(pre); status != http.StatusAccepted {
		t.Fatalf("pre-existing batch submit: status %d", status)
	}

	// Fresh batch-class member first, promoting duplicate second: the
	// promotion of K to interactive frees the only batch slot.
	fresh := tinyRequest(6)
	fresh.Priority = "batch"
	dup := tinyRequest(5)
	dup.Priority = "interactive"
	view, status := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{fresh, dup},
	})
	if status != http.StatusAccepted {
		t.Fatalf("batch freeing its own slot: status %d, want 202", status)
	}
	if len(view.Jobs) != 2 {
		t.Fatalf("admitted %d jobs, want 2", len(view.Jobs))
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="interactive"}`); v != 1 {
		t.Fatalf("interactive depth = %v, want 1 (promoted K)", v)
	}
	if v := h.schedMetric(`refrint_sched_queue_depth{class="batch"}`); v != 1 {
		t.Fatalf("batch depth = %v, want 1 (fresh member in the freed slot)", v)
	}
	close(exec.release)
}

// TestBatchLargerThanResultCache is a regression for big batches of
// persisted sweeps: reviving more keys than the in-memory cache holds used
// to evict the batch's own earlier revivals before admission, re-executing
// (or 503ing) work that was already on disk.
func TestBatchLargerThanResultCache(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	seeds := []int64{1, 2, 3, 4, 5}

	st1 := openStore(t, dir)
	h1 := newHarness(t, Config{Store: st1, Execute: countingExec(&calls)})
	for _, seed := range seeds {
		view, _ := h1.submit(tinyRequest(seed))
		h1.waitState(view.ID, StateDone)
	}
	if n := calls.Load(); n != int64(len(seeds)) {
		t.Fatalf("setup ran %d sweeps, want %d", n, len(seeds))
	}
	h1.ts.Close()
	h1.srv.Close()
	st1.Close()

	// Restart with a result cache smaller than the batch.
	st2 := openStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	h2 := newHarness(t, Config{Store: st2, CacheEntries: 2, Execute: countingExec(&calls)})
	var reqs []refrint.SweepRequest
	for _, seed := range seeds {
		reqs = append(reqs, tinyRequest(seed))
	}
	view, status := h2.submitBatch(BatchRequest{Requests: reqs})
	if status != http.StatusOK {
		t.Fatalf("persisted batch: status %d, want 200 (all members on disk)", status)
	}
	if view.State != StateDone || view.Counts[string(StateDone)] != len(seeds) {
		t.Fatalf("persisted batch = state %q counts %v, want all done", view.State, view.Counts)
	}
	if n := calls.Load(); n != int64(len(seeds)) {
		t.Fatalf("persisted batch re-ran sweeps: %d executions total, want %d", n, len(seeds))
	}
}

// TestBatchFreezesTerminalMembers verifies batches do not pin results: once
// a member is terminal and observed, the batch drops its Job pointer (and
// with it the entry -> results chain), while aggregation keeps answering
// even after the jobs age out of the pollable history.
func TestBatchFreezesTerminalMembers(t *testing.T) {
	h := newHarness(t, Config{JobHistory: 1})

	view, _ := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(1), tinyRequest(2)},
	})
	done := h.waitBatchState(view.ID, StateDone)

	h.srv.mu.Lock()
	b := h.srv.batches[view.ID]
	for i := range b.members {
		if b.members[i].job != nil {
			t.Errorf("member %d still holds its Job pointer after terminal snapshot", i)
		}
	}
	h.srv.mu.Unlock()

	// Age the member jobs out of the history; the batch still aggregates.
	last, _ := h.submit(tinyRequest(3))
	h.waitState(last.ID, StateDone)
	if resp := h.do("GET", "/v1/sweeps/"+done.Jobs[0].ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("member job survived JobHistory=1 eviction: status %d", resp.StatusCode)
	}
	after := h.getBatch(view.ID)
	if after.State != StateDone || after.Counts[string(StateDone)] != 2 {
		t.Fatalf("batch after member eviction = state %q counts %v, want done:2", after.State, after.Counts)
	}

	// A fire-and-forget batch nobody polls also freezes: the next batch
	// submission sweeps terminal members of every pollable batch.
	unpolled, _ := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(4)},
	})
	h.waitState(unpolled.Jobs[0].ID, StateDone) // poll the job, not the batch
	h.submitBatch(BatchRequest{Requests: []refrint.SweepRequest{tinyRequest(5)}})
	h.srv.mu.Lock()
	ub := h.srv.batches[unpolled.ID]
	frozen := ub.members[0].job == nil
	h.srv.mu.Unlock()
	if !frozen {
		t.Fatal("terminal member of an unpolled batch still holds its Job pointer after the next batch submission")
	}
}

// TestRollbackBatchLocked covers the defensive bail-out directly (it is
// unreachable through the HTTP path while submissions serialize under the
// server mutex): created members are cancelled and erased from the pollable
// history, queued executions leave the scheduler, and running ones are
// handed back for context cancellation.
func TestRollbackBatchLocked(t *testing.T) {
	exec := newBlockingExec()
	h := newHarness(t, Config{Shards: 1, Execute: exec.fn})

	h.submit(tinyRequest(1))
	<-exec.started // occupy the worker so batch members stay queued

	s := h.srv
	s.mu.Lock()
	b := &Batch{id: "batch-test", class: sched.Batch}
	for seed := int64(2); seed <= 3; seed++ {
		req := tinyRequest(seed)
		opts, err := req.Options()
		if err != nil {
			s.mu.Unlock()
			t.Fatal(err)
		}
		job, ok := s.submitJobLocked(req, opts, opts.Key(), sched.Batch, sched.Batch, 0, trace{id: newTraceID()})
		if !ok {
			s.mu.Unlock()
			t.Fatal("submitJobLocked rejected")
		}
		b.members = append(b.members, batchMember{job: job})
	}
	jobsBefore := len(s.jobs)
	aborts := s.rollbackBatchLocked(b)
	jobsAfter, orderAfter := len(s.jobs), len(s.jobOrder)
	queued := s.sched.Queued()
	s.mu.Unlock()
	for _, e := range aborts {
		e.cancel()
	}

	if jobsBefore != 3 || jobsAfter != 1 || orderAfter != 1 {
		t.Fatalf("rollback left jobs=%d order=%d (had %d), want only the blocker", jobsAfter, orderAfter, jobsBefore)
	}
	if queued != 0 {
		t.Fatalf("rollback left %d queued executions, want 0", queued)
	}
	if len(aborts) != 0 {
		t.Fatalf("rollback of queued-only members returned %d running entries, want 0", len(aborts))
	}
	close(exec.release)
	// Only the blocker ever executes.
	if n := exec.calls.Load(); n != 1 {
		t.Fatalf("executor ran %d sweeps, want 1", n)
	}
}

// TestBatchAllCacheHits verifies a batch whose members are all already
// cached answers 200 and is born done.
func TestBatchAllCacheHits(t *testing.T) {
	h := newHarness(t, Config{})
	first, _ := h.submit(tinyRequest(1))
	h.waitState(first.ID, StateDone)

	view, status := h.submitBatch(BatchRequest{
		Requests: []refrint.SweepRequest{tinyRequest(1), tinyRequest(1)},
	})
	if status != http.StatusOK {
		t.Fatalf("all-cached batch: status %d, want 200", status)
	}
	if view.State != StateDone || view.Counts[string(StateDone)] != 2 {
		t.Fatalf("all-cached batch = state %q counts %v", view.State, view.Counts)
	}
	for _, j := range view.Jobs {
		if !j.CacheHit {
			t.Errorf("member %s not marked cache_hit", j.ID)
		}
	}
}
