package server

import (
	"net/http"
	"testing"
)

// TestMetricsWindowedSimsRate checks that /metrics exposes the sliding
// one-minute sims/sec gauge next to the cumulative one, and that it reflects
// completions that just happened (the whole sweep finished well inside the
// window, so the windowed figure must be positive).
func TestMetricsWindowedSimsRate(t *testing.T) {
	h := newHarness(t, Config{})
	view, status := h.submit(tinyRequest(7))
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit: status %d", status)
	}
	h.waitState(view.ID, StateDone)

	text, code := h.getText("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	cumulative := metricValue(t, text, "refrint_sims_per_second")
	windowed := metricValue(t, text, "refrint_sims_per_second_1m")
	if cumulative <= 0 {
		t.Errorf("cumulative sims/sec = %g, want > 0", cumulative)
	}
	if windowed <= 0 {
		t.Errorf("windowed sims/sec = %g, want > 0 right after completions", windowed)
	}
}
