// Package server turns the Refrint sweep harness into a long-running
// service: an HTTP API over a bounded priority-aware scheduler (see
// internal/sched) that executes sweeps via sweep.ExecuteContext, and a keyed
// result cache that deduplicates identical submissions (singleflight), so
// any number of clients asking for the same sweep cost one simulation run.
//
// Submissions carry an optional priority class — interactive (the default
// for POST /v1/sweeps) > batch (the default inside POST /v1/batches) >
// background — and an optional client label for fair-share dequeue between
// tenants.  Workers steal across queues, so no worker idles while any queue
// holds work, and cancelling a queued job frees its bounded queue slot
// immediately.
//
// Job lifecycle:
//
//	queued ──▶ running ──▶ done
//	   │          │   └──▶ failed
//	   └──────────┴──────▶ cancelled
//
// Jobs are the client-visible unit; executions are shared.  Two jobs whose
// requests have the same canonical key (sweep.Options.Key) attach to one
// execution entry, and a job submitted after that entry completed is served
// from the result cache without running anything.
//
// Progress is observable two ways: polling (GET /v1/sweeps/{id}) and
// streaming (GET /v1/sweeps/{id}/events, /v1/batches/{id}/events and the
// /v1/events firehose — SSE; see events.go).  Either way the per-simulation
// accounting underneath is lock-free: sweep workers advance per-execution
// atomic counters and a publish tick folds them into views, metrics and
// events.
//
// With a persistent store attached (Config.Store), completed sweeps and
// individual simulation cells survive restarts: submissions and result
// fetches check the store behind the in-memory cache, and running sweeps
// skip every cell the store already holds.
package server

import (
	"time"

	"refrint"
	"refrint/internal/sched"
)

// State is the lifecycle state of a job.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one client submission.  All mutable fields are guarded by the
// server mutex; handlers read them through snapshot() only.
type Job struct {
	id      string
	key     string
	request refrint.SweepRequest
	class   sched.Class // the priority class this job was submitted with
	entry   *entry      // the shared execution this job is attached to
	trace   trace       // lifecycle timeline + request trace ID (trace.go)

	state     State
	cacheHit  bool   // completed from an already-cached result
	reason    string // failure classification: "panic" or "deadline exceeded"
	err       error
	createdAt time.Time
	startedAt time.Time // zero until running
	endedAt   time.Time // zero until terminal

	// final/finalDone/finalTotal freeze the job's progress at its terminal
	// transition: a job cancelled off a still-running shared execution must
	// not keep creeping forward as other jobs' simulations complete.
	final      bool
	finalDone  int
	finalTotal int

	// lastEventDone is the done count most recently published as an SSE
	// progress event (see Server.publishJobProgressLocked).
	lastEventDone int
}

// freezeProgress pins the job's progress counters at the moment it turns
// terminal.  Caller holds the server mutex and has already set the terminal
// state.
func (j *Job) freezeProgress() {
	if j.final || j.entry == nil {
		return
	}
	j.final = true
	j.finalDone = int(j.entry.done.Load())
	j.finalTotal = int(j.entry.total.Load())
	if j.state == StateDone {
		j.finalDone = j.finalTotal
	}
}

// ProgressView is the serialized completion state of a job.
type ProgressView struct {
	// Done and Total count simulations within the sweep.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Percent is 100*Done/Total, rounded down — and clamped to 99 unless
	// the job is done: a sweep's last progress callback fires before export
	// and persistence finish (and a cancelled or failed job may have
	// finished all its simulations), so 100 always means "done".
	Percent int `json:"percent"`
}

// progressView renders simulation progress for a job or batch in state st,
// clamping Percent to 99 unless st is done: 100 always means done — and,
// symmetrically, done always means 100, including an empty or all-cache-hit
// sweep whose Total is 0 (which would otherwise divide to 0 forever).
func progressView(done, total int, st State) ProgressView {
	v := ProgressView{Done: done, Total: total}
	if total > 0 {
		v.Percent = 100 * done / total
		if v.Percent >= 100 && st != StateDone {
			v.Percent = 99
		}
	}
	if st == StateDone {
		v.Percent = 100
	}
	return v
}

// JobView is the JSON form of a job returned by the API.
type JobView struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	TraceID  string       `json:"trace_id"`
	State    State        `json:"state"`
	Priority string       `json:"priority"`
	CacheHit bool         `json:"cache_hit"`
	Progress ProgressView `json:"progress"`
	// Phases is the compact per-phase duration summary (seconds) of the
	// job's lifecycle timeline; GET /v1/sweeps/{id}/trace has the full
	// ordered spans.
	Phases map[string]float64 `json:"phases,omitempty"`
	Error  string             `json:"error,omitempty"`
	// Reason classifies a failed job: "panic" (a simulation or hook
	// panicked and was contained) or "deadline exceeded" (the job outlived
	// its timeout).  Empty for ordinary errors and non-failed states.
	Reason  string               `json:"reason,omitempty"`
	Request refrint.SweepRequest `json:"request"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// snapshot renders the job for the API.  Caller holds the server mutex.
func (j *Job) snapshot() JobView {
	v := JobView{
		ID:        j.id,
		Key:       j.key,
		TraceID:   j.trace.id,
		State:     j.state,
		Priority:  j.class.String(),
		CacheHit:  j.cacheHit,
		Reason:    j.reason,
		Phases:    j.phaseSummary(time.Now()),
		Request:   j.request,
		CreatedAt: j.createdAt,
	}
	if j.entry != nil {
		var done, total int
		if j.final {
			// Terminal jobs are frozen: the shared execution may still be
			// running for other jobs, but this job's progress is history.
			done, total = j.finalDone, j.finalTotal
		} else {
			done, total = int(j.entry.done.Load()), int(j.entry.total.Load())
			if j.state == StateDone {
				done = total
			}
		}
		v.Progress = progressView(done, total, j.state)
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	if !j.endedAt.IsZero() {
		t := j.endedAt
		v.FinishedAt = &t
	}
	return v
}
