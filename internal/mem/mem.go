// Package mem defines the basic memory-system vocabulary shared by every
// other package in the simulator: physical addresses, cache-line geometry,
// MESI line states and memory access descriptors.
//
// The types here are deliberately small value types; they are copied freely
// between the core model, the cache hierarchy, the coherence directory and
// the refresh machinery.
package mem

import (
	"fmt"
	"math/bits"
)

// Addr is a physical byte address.
type Addr uint64

// LineAddr is a cache-line-aligned address (a physical address with the
// line-offset bits stripped, i.e. Addr >> log2(lineSize)).
type LineAddr uint64

// DefaultLineSize is the line size used throughout the paper (64 bytes).
const DefaultLineSize = 64

// LineGeometry describes how physical addresses map onto cache lines.
type LineGeometry struct {
	LineSize int // bytes per line; must be a power of two
}

// NewLineGeometry returns a LineGeometry for the given line size.
// It panics if lineSize is not a positive power of two.
func NewLineGeometry(lineSize int) LineGeometry {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("mem: line size %d is not a positive power of two", lineSize))
	}
	return LineGeometry{LineSize: lineSize}
}

// offsetBits returns log2(LineSize).  LineSize is a power of two (enforced
// by NewLineGeometry), so this is a single instruction, cheap enough for the
// per-access address mapping of the simulator.
func (g LineGeometry) offsetBits() uint {
	return uint(bits.TrailingZeros(uint(g.LineSize)))
}

// LineOf returns the line address containing a.
func (g LineGeometry) LineOf(a Addr) LineAddr {
	return LineAddr(uint64(a) >> g.offsetBits())
}

// BaseOf returns the first byte address of line l.
func (g LineGeometry) BaseOf(l LineAddr) Addr {
	return Addr(uint64(l) << g.offsetBits())
}

// OffsetOf returns the byte offset of a within its line.
func (g LineGeometry) OffsetOf(a Addr) int {
	return int(uint64(a) & uint64(g.LineSize-1))
}

// State is the MESI coherence state of a cache line, as seen by the cache
// that holds it.  The directory at L3 additionally tracks sharer sets (see
// package coherence).
type State uint8

// MESI states.  Invalid must be the zero value so that a zeroed line is
// invalid by construction.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the state holds data usable by the local cache.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the state implies the line differs from the copy in
// the next lower level (only Modified lines are dirty under MESI).
func (s State) Dirty() bool { return s == Modified }

// AccessType distinguishes the kinds of references a core can issue.
type AccessType uint8

// Access types.
const (
	Read AccessType = iota
	Write
	InstrFetch
)

// String implements fmt.Stringer.
func (t AccessType) String() string {
	switch t {
	case Read:
		return "read"
	case Write:
		return "write"
	case InstrFetch:
		return "ifetch"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// IsWrite reports whether the access modifies the line.
func (t AccessType) IsWrite() bool { return t == Write }

// Access is one memory reference issued by a core.
type Access struct {
	Addr   Addr       // physical byte address
	Type   AccessType // read, write or instruction fetch
	Core   int        // issuing core id
	Gap    int64      // non-memory instructions executed since the previous reference
	Shared bool       // hint from the workload generator: address is in a shared region
}

// Line is the per-line metadata kept by every cache in the hierarchy.  The
// refresh machinery (package core) adds its own per-line bookkeeping on top
// of this via the cache's line index.
// The field order is chosen for the simulator's scan patterns: lookup reads
// Tag+State and victim selection reads State+LRU, so those share the leading
// bytes, and packing State and Sentry into one word keeps the struct at 48
// bytes (six per cache line less than the naive layout).
type Line struct {
	Tag         LineAddr // full line address (tag + index combined, for simplicity)
	State       State
	Sentry      bool  // sentry bit charged (Refrint time policy)
	LRU         int64 // replacement timestamp
	LastRefresh int64 // cycle of the last refresh or access (eDRAM charge time)
	LastTouch   int64 // cycle of the last normal (non-refresh) access
	Count       int   // WB(n,m) refresh budget remaining (maintained by package core)
}

// Reset returns the line to the invalid, zero state.
func (l *Line) Reset() {
	*l = Line{}
}

// Valid reports whether the line currently holds usable data.
func (l *Line) Valid() bool { return l.State.Valid() }

// Dirty reports whether the line must be written back before eviction.
func (l *Line) Dirty() bool { return l.State.Dirty() }
