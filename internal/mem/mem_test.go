package mem

import (
	"testing"
	"testing/quick"
)

func TestNewLineGeometryPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, -1, 3, 48, 65, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLineGeometry(%d) did not panic", size)
				}
			}()
			NewLineGeometry(size)
		}()
	}
}

func TestLineGeometryPowersOfTwo(t *testing.T) {
	for _, size := range []int{1, 2, 16, 32, 64, 128, 256} {
		g := NewLineGeometry(size)
		if got := g.LineSize; got != size {
			t.Errorf("LineSize = %d, want %d", got, size)
		}
	}
}

func TestLineOfAndBaseOf(t *testing.T) {
	g := NewLineGeometry(64)
	tests := []struct {
		addr Addr
		line LineAddr
		base Addr
		off  int
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{63, 0, 0, 63},
		{64, 1, 64, 0},
		{65, 1, 64, 1},
		{128, 2, 128, 0},
		{0xFFFF, 0x3FF, 0xFFC0, 63},
	}
	for _, tt := range tests {
		if got := g.LineOf(tt.addr); got != tt.line {
			t.Errorf("LineOf(%#x) = %#x, want %#x", tt.addr, got, tt.line)
		}
		if got := g.BaseOf(tt.line); got != tt.base {
			t.Errorf("BaseOf(%#x) = %#x, want %#x", tt.line, got, tt.base)
		}
		if got := g.OffsetOf(tt.addr); got != tt.off {
			t.Errorf("OffsetOf(%#x) = %d, want %d", tt.addr, got, tt.off)
		}
	}
}

func TestLineGeometryRoundTripProperty(t *testing.T) {
	g := NewLineGeometry(64)
	// For any address, BaseOf(LineOf(a)) + OffsetOf(a) == a.
	f := func(a uint64) bool {
		addr := Addr(a)
		return uint64(g.BaseOf(g.LineOf(addr)))+uint64(g.OffsetOf(addr)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineGeometrySameLineProperty(t *testing.T) {
	g := NewLineGeometry(128)
	// Any two addresses within the same 128-byte block map to the same line.
	f := func(a uint64, off uint8) bool {
		base := a &^ uint64(127)
		return g.LineOf(Addr(base)) == g.LineOf(Addr(base+uint64(off)%128))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Invalid, "I"},
		{Shared, "S"},
		{Exclusive, "E"},
		{Modified, "M"},
		{State(9), "State(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", uint8(tt.s), got, tt.want)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	if Invalid.Valid() {
		t.Error("Invalid.Valid() = true")
	}
	for _, s := range []State{Shared, Exclusive, Modified} {
		if !s.Valid() {
			t.Errorf("%v.Valid() = false", s)
		}
	}
	if !Modified.Dirty() {
		t.Error("Modified.Dirty() = false")
	}
	for _, s := range []State{Invalid, Shared, Exclusive} {
		if s.Dirty() {
			t.Errorf("%v.Dirty() = true", s)
		}
	}
}

func TestAccessTypeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || InstrFetch.String() != "ifetch" {
		t.Errorf("unexpected AccessType strings: %v %v %v", Read, Write, InstrFetch)
	}
	if AccessType(7).String() != "AccessType(7)" {
		t.Errorf("unexpected fallback string: %v", AccessType(7))
	}
	if Read.IsWrite() || InstrFetch.IsWrite() {
		t.Error("Read/InstrFetch should not be writes")
	}
	if !Write.IsWrite() {
		t.Error("Write.IsWrite() = false")
	}
}

func TestLineZeroValueIsInvalid(t *testing.T) {
	var l Line
	if l.Valid() {
		t.Error("zero Line should be invalid")
	}
	if l.Dirty() {
		t.Error("zero Line should not be dirty")
	}
}

func TestLineReset(t *testing.T) {
	l := Line{Tag: 42, State: Modified, LastTouch: 100, LastRefresh: 90, Count: 3, LRU: 7, Sentry: true}
	l.Reset()
	if l != (Line{}) {
		t.Errorf("Reset did not zero the line: %+v", l)
	}
}
