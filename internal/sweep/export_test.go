package sweep

import (
	"bytes"
	"strings"
	"testing"

	"refrint/internal/config"
)

func TestExportAndJSONRoundTrip(t *testing.T) {
	res := runTiny(t)
	exp := res.Export()

	if exp.Preset != "scaled" || exp.Seed != 1 {
		t.Errorf("export header wrong: %+v", exp)
	}
	// 2 apps x (1 baseline + 4 points) = 10 runs.
	if len(exp.Runs) != 10 {
		t.Fatalf("export has %d runs, want 10", len(exp.Runs))
	}

	// Baselines come first and carry no normalization.
	if exp.Runs[0].Policy != "SRAM" || exp.Runs[0].NormMemoryEnergy != 0 {
		t.Errorf("first exported run should be an un-normalized baseline: %+v", exp.Runs[0])
	}

	// Every non-baseline run is normalized and self-consistent.
	for _, run := range exp.Runs {
		if run.Policy == "SRAM" {
			continue
		}
		if run.NormMemoryEnergy <= 0 || run.NormMemoryEnergy >= 1.2 {
			t.Errorf("%s/%s: norm memory energy %v out of range", run.App, run.Policy, run.NormMemoryEnergy)
		}
		if run.NormTime < 0.9 {
			t.Errorf("%s/%s: norm time %v below the baseline", run.App, run.Policy, run.NormTime)
		}
		sum := run.DynamicJ + run.LeakageJ + run.RefreshJ + run.DRAMJ
		if diff := sum - run.MemoryEnergyJ; diff > 1e-9*sum || diff < -1e-9*sum {
			t.Errorf("%s/%s: component sum %v != memory energy %v", run.App, run.Policy, sum, run.MemoryEnergyJ)
		}
	}

	// JSON round trip.
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"norm_memory_energy\"") {
		t.Error("JSON output missing expected field names")
	}
	loaded, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Runs) != len(exp.Runs) {
		t.Errorf("round trip lost runs: %d vs %d", len(loaded.Runs), len(exp.Runs))
	}

	// Find locates a specific run.
	if _, ok := loaded.Find("FFT", "R.WB(32,32)", config.Retention50us); !ok {
		t.Error("Find failed to locate an existing run")
	}
	if _, ok := loaded.Find("FFT", "R.WB(32,32)", 999); ok {
		t.Error("Find located a non-existent run")
	}
}

func TestLoadJSONRejectsGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("garbage input should fail to decode")
	}
}
