package sweep

import (
	"refrint/internal/config"
	"refrint/internal/sim"
)

// CellKey is the canonical identity of one simulation cell of a sweep: the
// (application, policy, retention, seed, base configuration, effort) tuple
// that fully determines a single sim.Result.  Two cells with equal keys —
// even when they belong to different sweeps — compute identical results, so
// a persistent store can share them across overlapping sweeps.
//
// The base configuration enters through its content hash (config.Hash), so
// a key stays small and printable while still changing whenever any
// architectural tunable changes.
type CellKey struct {
	// ConfigHash is config.Config.Hash() of the sweep's base preset.
	ConfigHash string `json:"config"`
	// App is the application name (Table 5.3).
	App string `json:"app"`
	// Policy is the refresh policy; the SRAM baseline for baseline cells.
	Policy config.Policy `json:"policy"`
	// RetentionUS is the paper-scale retention time (0 for the baseline).
	RetentionUS float64 `json:"retention_us"`
	// EffortScale multiplies the application's per-thread work.
	EffortScale float64 `json:"effort_scale"`
	// Seed drives the synthetic workload.
	Seed int64 `json:"seed"`
}

// Hash returns the stable content hash of the key: a short hex string safe
// for URLs and file names.  Distinct keys hash to distinct strings (up to
// cryptographic collision).
func (k CellKey) Hash() string { return config.HashJSON(k) }

// CellKey returns the canonical key of one cell of this sweep.  Defaults are
// applied first, so the key is independent of which zero fields the caller
// left implicit, and Workers never enters the key.
func (o Options) CellKey(app string, pt Point) CellKey {
	return o.normalise().cellKeyer().key(app, pt)
}

// cellKeyer stamps cell keys with the sweep-constant fields — the config
// hash especially — computed once rather than per cell; ExecuteContext
// builds one for the whole run.  The Options it is built from must already
// be normalised.
type cellKeyer struct {
	configHash  string
	effortScale float64
	seed        int64
}

func (o Options) cellKeyer() cellKeyer {
	return cellKeyer{configHash: o.Base.Hash(), effortScale: o.EffortScale, seed: o.Seed}
}

func (c cellKeyer) key(app string, pt Point) CellKey {
	return CellKey{
		ConfigHash:  c.configHash,
		App:         app,
		Policy:      pt.Policy,
		RetentionUS: pt.RetentionUS,
		EffortScale: c.effortScale,
		Seed:        c.seed,
	}
}

// CellResult is the wire (and stored) form of one completed simulation cell:
// the key that identifies it plus the raw result.  It is what a cell-level
// result store persists and what CellPut hooks receive.
type CellResult struct {
	Key    CellKey    `json:"key"`
	Result sim.Result `json:"result"`
}
