package sweep

import (
	"encoding/json"
	"math"
	"testing"
	"unicode/utf8"

	"refrint/internal/config"
)

// FuzzCellKey checks the two properties the persistent store depends on:
// a CellKey survives its JSON round trip unchanged (keys are embedded in
// cell blobs), and distinct keys never share a hash while equal keys never
// disagree on one.
func FuzzCellKey(f *testing.F) {
	f.Add("FFT", "LU", uint8(0), uint8(3), 50.0, 100.0, 0.25, 1.0, int64(1), int64(2), "scaled", "fullsize")
	f.Add("Blackscholes", "Blackscholes", uint8(5), uint8(5), 200.0, 200.0, 1.0, 1.0, int64(7), int64(7), "h", "h")
	f.Add("", "x", uint8(200), uint8(14), 0.0, 1e-9, 1e9, 0.001, int64(-1), int64(0), "", "cfg")

	policies := append(config.SweepPolicies(), config.SRAMBaseline)
	f.Fuzz(func(t *testing.T, app1, app2 string, p1, p2 uint8,
		ret1, ret2, eff1, eff2 float64, seed1, seed2 int64, cfg1, cfg2 string) {
		for _, v := range []float64{ret1, ret2, eff1, eff2} {
			// Non-finite floats cannot canonicalize through JSON, and a
			// negative zero compares equal to zero while rendering
			// differently; neither is producible from validated Options.
			if math.IsNaN(v) || math.IsInf(v, 0) || (v == 0 && math.Signbit(v)) {
				t.Skip("non-canonical float input")
			}
		}
		if !utf8.ValidString(app1) || !utf8.ValidString(app2) || !utf8.ValidString(cfg1) || !utf8.ValidString(cfg2) {
			t.Skip("JSON canonicalizes invalid UTF-8")
		}

		k1 := CellKey{ConfigHash: cfg1, App: app1, Policy: policies[int(p1)%len(policies)],
			RetentionUS: ret1, EffortScale: eff1, Seed: seed1}
		k2 := CellKey{ConfigHash: cfg2, App: app2, Policy: policies[int(p2)%len(policies)],
			RetentionUS: ret2, EffortScale: eff2, Seed: seed2}

		// Round trip: marshal -> unmarshal preserves the key and its hash.
		for _, k := range []CellKey{k1, k2} {
			data, err := json.Marshal(k)
			if err != nil {
				t.Fatalf("marshal %+v: %v", k, err)
			}
			var back CellKey
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
			if back != k {
				t.Fatalf("round trip changed the key: %+v -> %+v", k, back)
			}
			if back.Hash() != k.Hash() {
				t.Fatalf("round trip changed the hash of %+v", k)
			}
		}

		// Hashing is injective on distinct keys and stable on equal ones.
		h1, h2 := k1.Hash(), k2.Hash()
		if k1 == k2 && h1 != h2 {
			t.Fatalf("equal keys hash differently: %+v -> %s vs %s", k1, h1, h2)
		}
		if k1 != k2 && h1 == h2 {
			t.Fatalf("distinct keys collide: %+v vs %+v -> %s", k1, k2, h1)
		}
	})
}
