package sweep

import (
	"refrint/internal/sim"
	"refrint/internal/stats"
	"refrint/internal/workload"
)

// This file turns raw sweep results into the data series behind the paper's
// evaluation figures.  All values are normalized per-application to that
// application's full-SRAM baseline and then averaged over the selected
// application set, which is how the paper reports every figure.

// LevelEnergyBar is one bar of Figure 6.1: memory-hierarchy energy split by
// level, normalized to the full-SRAM memory-hierarchy energy.
type LevelEnergyBar struct {
	Point Point
	L1    float64 // IL1 + DL1
	L2    float64
	L3    float64
	DRAM  float64
}

// Total returns the bar height.
func (b LevelEnergyBar) Total() float64 { return b.L1 + b.L2 + b.L3 + b.DRAM }

// ComponentEnergyBar is one bar of Figure 6.2: on-chip dynamic, leakage and
// refresh energy plus DRAM energy, normalized to the full-SRAM
// memory-hierarchy energy.
type ComponentEnergyBar struct {
	Point   Point
	Dynamic float64
	Leakage float64
	Refresh float64
	DRAM    float64
}

// Total returns the bar height.
func (b ComponentEnergyBar) Total() float64 { return b.Dynamic + b.Leakage + b.Refresh + b.DRAM }

// ScalarBar is one bar of Figures 6.3 (total energy) and 6.4 (execution
// time): a single normalized value.
type ScalarBar struct {
	Point Point
	Value float64
}

// FigureSeries is the data for one plot: one bar per (retention, policy).
type FigureSeries struct {
	// Name identifies the plot ("class1", "class2", "class3" or "all").
	Name string
	// Apps are the applications averaged into the series.
	Apps []string
}

// appsFor resolves a series selector to application names.
func (r *Results) appsFor(selector string) []string {
	switch selector {
	case "all", "":
		return r.Options.Apps
	case "class1":
		return r.AppsByClass()[workload.Class1]
	case "class2":
		return r.AppsByClass()[workload.Class2]
	case "class3":
		return r.AppsByClass()[workload.Class3]
	default:
		return nil
	}
}

// averageOver computes the mean of metric(run)/metric(baseline of same app)
// over the given applications at one sweep point.
func (r *Results) averageOver(apps []string, pt Point, metric func(sim.Result) float64) float64 {
	if len(apps) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, app := range apps {
		run, ok := r.Lookup(app, pt)
		if !ok {
			continue
		}
		base, ok := r.Baselines[app]
		if !ok {
			continue
		}
		denom := metric(base.Result)
		if denom == 0 {
			continue
		}
		sum += metric(run.Result) / denom
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// averageRatioOver is like averageOver but lets the numerator and the
// denominator use different metrics (e.g. refresh energy over baseline
// memory energy, as Figure 6.2 stacks components of the normalized total).
func (r *Results) averageRatioOver(apps []string, pt Point, num, denom func(sim.Result) float64) float64 {
	if len(apps) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, app := range apps {
		run, ok := r.Lookup(app, pt)
		if !ok {
			continue
		}
		base, ok := r.Baselines[app]
		if !ok {
			continue
		}
		d := denom(base.Result)
		if d == 0 {
			continue
		}
		sum += num(run.Result) / d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// memoryEnergy is the paper's "memory hierarchy energy" (L1+L2+L3+DRAM).
func memoryEnergy(res sim.Result) float64 { return res.Energy.MemoryHierarchy() }

// Figure61 returns the bars of Figure 6.1 (L1/L2/L3/DRAM energy, averaged
// over all applications in the sweep), one per point, ordered by retention
// time then policy.
func (r *Results) Figure61() []LevelEnergyBar {
	apps := r.Options.Apps
	var bars []LevelEnergyBar
	for _, pt := range r.Points {
		bars = append(bars, LevelEnergyBar{
			Point: pt,
			L1: r.averageRatioOver(apps, pt,
				func(res sim.Result) float64 { return res.Energy.IL1 + res.Energy.DL1 }, memoryEnergy),
			L2: r.averageRatioOver(apps, pt,
				func(res sim.Result) float64 { return res.Energy.L2 }, memoryEnergy),
			L3: r.averageRatioOver(apps, pt,
				func(res sim.Result) float64 { return res.Energy.L3 }, memoryEnergy),
			DRAM: r.averageRatioOver(apps, pt,
				func(res sim.Result) float64 { return res.Energy.DRAM }, memoryEnergy),
		})
	}
	return bars
}

// Figure62 returns the bars of Figure 6.2 for one series ("class1",
// "class2", "class3" or "all"): on-chip dynamic, leakage, refresh and DRAM
// energy normalized to the full-SRAM memory energy of the same applications.
func (r *Results) Figure62(selector string) []ComponentEnergyBar {
	apps := r.appsFor(selector)
	var bars []ComponentEnergyBar
	for _, pt := range r.Points {
		bars = append(bars, ComponentEnergyBar{
			Point: pt,
			Dynamic: r.averageRatioOver(apps, pt,
				func(res sim.Result) float64 { return res.Energy.Dynamic }, memoryEnergy),
			Leakage: r.averageRatioOver(apps, pt,
				func(res sim.Result) float64 { return res.Energy.Leakage }, memoryEnergy),
			Refresh: r.averageRatioOver(apps, pt,
				func(res sim.Result) float64 { return res.Energy.Refresh }, memoryEnergy),
			DRAM: r.averageRatioOver(apps, pt,
				func(res sim.Result) float64 { return res.Energy.DRAM }, memoryEnergy),
		})
	}
	return bars
}

// Figure63 returns the bars of Figure 6.3 for one series: total system
// energy (cores + caches + network + DRAM) normalized to the full-SRAM
// system energy.
func (r *Results) Figure63(selector string) []ScalarBar {
	apps := r.appsFor(selector)
	var bars []ScalarBar
	for _, pt := range r.Points {
		bars = append(bars, ScalarBar{
			Point: pt,
			Value: r.averageOver(apps, pt, func(res sim.Result) float64 { return res.Energy.Total() }),
		})
	}
	return bars
}

// Figure64 returns the bars of Figure 6.4 for one series: execution time
// normalized to the full-SRAM execution time.
func (r *Results) Figure64(selector string) []ScalarBar {
	apps := r.appsFor(selector)
	var bars []ScalarBar
	for _, pt := range r.Points {
		bars = append(bars, ScalarBar{
			Point: pt,
			Value: r.averageOver(apps, pt, func(res sim.Result) float64 { return float64(res.Cycles) }),
		})
	}
	return bars
}

// Table61Row is one row of Table 6.1 (application binning), augmented with
// the measured characteristics that justify the bin.
type Table61Row struct {
	App            string
	Class          workload.Class
	FootprintRatio float64 // footprint / LLC capacity
	Visibility     float64
	L3MissRate     float64 // measured on the SRAM baseline
	L2Writebacks   int64   // measured on the SRAM baseline (visibility proxy)
	DRAMAccesses   int64   // measured on the SRAM baseline (footprint proxy)
}

// Table61 reproduces the application binning of Table 6.1, using the
// parameters' classification plus measured baseline statistics.
func (r *Results) Table61() []Table61Row {
	var rows []Table61Row
	for _, app := range r.Options.Apps {
		p, err := workload.Get(app)
		if err != nil {
			continue
		}
		// Compare the footprint the simulations actually used against the
		// LLC they actually ran on (the Scaled preset shrinks both).
		scaled := workload.ForConfig(p, r.Options.Base)
		row := Table61Row{
			App:            app,
			Class:          p.PaperClass,
			FootprintRatio: scaled.FootprintRatio(r.Options.Base),
			Visibility:     scaled.Visibility(r.Options.Base),
		}
		if base, ok := r.Baselines[app]; ok {
			row.L3MissRate = base.Result.Stats.Level(stats.L3).MissRate()
			row.L2Writebacks = base.Result.Stats.Level(stats.L2).Writebacks
			row.DRAMAccesses = base.Result.Stats.DRAMAccesses()
		}
		rows = append(rows, row)
	}
	return rows
}

// Find returns the bar for a given policy label and retention time from a
// ScalarBar series (helper for tests, reports and the headline-claims
// check).
func FindScalar(bars []ScalarBar, label string, retentionUS float64) (ScalarBar, bool) {
	for _, b := range bars {
		if b.Point.Label() == label && b.Point.RetentionUS == retentionUS {
			return b, true
		}
	}
	return ScalarBar{}, false
}

// FindComponent is FindScalar for ComponentEnergyBar series.
func FindComponent(bars []ComponentEnergyBar, label string, retentionUS float64) (ComponentEnergyBar, bool) {
	for _, b := range bars {
		if b.Point.Label() == label && b.Point.RetentionUS == retentionUS {
			return b, true
		}
	}
	return ComponentEnergyBar{}, false
}

// FindLevel is FindScalar for LevelEnergyBar series.
func FindLevel(bars []LevelEnergyBar, label string, retentionUS float64) (LevelEnergyBar, bool) {
	for _, b := range bars {
		if b.Point.Label() == label && b.Point.RetentionUS == retentionUS {
			return b, true
		}
	}
	return LevelEnergyBar{}, false
}
