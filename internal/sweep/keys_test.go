package sweep

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"refrint/internal/config"
	"refrint/internal/sim"
)

// TestKeyCanonicalOrdering is the regression test for the key
// canonicalization bug: permuted but equivalent Apps, Policies and
// RetentionTimesUS must hash to the same sweep key, so overlapping requests
// share one cache/store slot.
func TestKeyCanonicalOrdering(t *testing.T) {
	base := Options{
		Apps:             []string{"FFT", "LU", "Blackscholes", "Swaptions"},
		RetentionTimesUS: []float64{50, 100, 200},
		Policies: []config.Policy{
			config.PeriodicAll,
			config.RefrintValid,
			config.RefrintDirty,
			config.PeriodicValid,
		},
		EffortScale: 0.25,
		Seed:        3,
	}
	want := base.Key()

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shuffled := base
		shuffled.Apps = append([]string(nil), base.Apps...)
		shuffled.RetentionTimesUS = append([]float64(nil), base.RetentionTimesUS...)
		shuffled.Policies = append([]config.Policy(nil), base.Policies...)
		rng.Shuffle(len(shuffled.Apps), reflect.Swapper(shuffled.Apps))
		rng.Shuffle(len(shuffled.RetentionTimesUS), reflect.Swapper(shuffled.RetentionTimesUS))
		rng.Shuffle(len(shuffled.Policies), reflect.Swapper(shuffled.Policies))
		if got := shuffled.Key(); got != want {
			t.Fatalf("trial %d: shuffled options key = %s, want %s\nshuffled: %+v",
				trial, got, want, shuffled)
		}
	}

	// Key() must not mutate the caller's slices: the run order (and hence
	// figure order) of a permuted request is preserved.
	perm := base
	perm.Apps = []string{"LU", "FFT"}
	_ = perm.Key()
	if perm.Apps[0] != "LU" {
		t.Error("Key() sorted the caller's Apps slice in place")
	}

	// Distinct contents still produce distinct keys.
	other := base
	other.Apps = []string{"FFT", "LU", "Blackscholes"}
	if other.Key() == want {
		t.Error("dropping an app did not change the key")
	}
}

// TestKeyIgnoresHooks verifies the cell-cache hooks never enter the key:
// the same sweep with and without a store attached is the same sweep.
func TestKeyIgnoresHooks(t *testing.T) {
	plain := tinyOptions()
	hooked := tinyOptions()
	hooked.CellLookup = func(CellKey) (sim.Result, bool) { return sim.Result{}, false }
	hooked.CellPut = func(CellKey, sim.Result) {}
	if plain.Key() != hooked.Key() {
		t.Error("installing cell hooks changed the sweep key")
	}
	if plain.Workers = 1; plain.Key() != hooked.Key() {
		t.Error("worker count changed the sweep key")
	}
}

func TestCellKey(t *testing.T) {
	opts := tinyOptions()
	ptA := Point{RetentionUS: 50, Policy: config.RefrintValid}
	ptB := Point{RetentionUS: 100, Policy: config.RefrintValid}
	baseline := Point{Policy: config.SRAMBaseline}

	kA := opts.CellKey("FFT", ptA)
	if kA.App != "FFT" || kA.RetentionUS != 50 || kA.Seed != opts.Seed || kA.ConfigHash == "" {
		t.Fatalf("cell key fields wrong: %+v", kA)
	}
	if kA.Hash() == "" || kA.Hash() != kA.Hash() {
		t.Fatal("cell key hash unstable")
	}

	// Every axis of the tuple must move the hash.
	distinct := map[string]CellKey{
		"app":       opts.CellKey("LU", ptA),
		"retention": opts.CellKey("FFT", ptB),
		"policy":    opts.CellKey("FFT", Point{RetentionUS: 50, Policy: config.PeriodicAll}),
		"baseline":  opts.CellKey("FFT", baseline),
	}
	seedOpts := opts
	seedOpts.Seed = 99
	distinct["seed"] = seedOpts.CellKey("FFT", ptA)
	effortOpts := opts
	effortOpts.EffortScale = 0.5
	distinct["effort"] = effortOpts.CellKey("FFT", ptA)
	cfgOpts := opts
	cfgOpts.Base = config.FullSize()
	distinct["config"] = cfgOpts.CellKey("FFT", ptA)

	seen := map[string]string{kA.Hash(): "base"}
	for axis, k := range distinct {
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("axis %q collides with %q (hash %s)", axis, prev, h)
		}
		seen[h] = axis
	}

	// Workers never enters a cell key (it cannot change a result).
	workerOpts := opts
	workerOpts.Workers = 7
	if workerOpts.CellKey("FFT", ptA).Hash() != kA.Hash() {
		t.Error("worker count changed a cell key")
	}

	// The key JSON round-trips (it is stored inside cell blobs).
	data, err := json.Marshal(kA)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back CellKey
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != kA {
		t.Fatalf("round trip: %+v != %+v", back, kA)
	}
	if back.Hash() != kA.Hash() {
		t.Fatal("round-tripped key hashes differently")
	}
}

// TestResultsCodecRoundTrip verifies a sweep's Results survive the JSON
// codec with every figure generator intact — the property the persistent
// store relies on.
func TestResultsCodecRoundTrip(t *testing.T) {
	res := runTiny(t)

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	var back Results
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal results: %v", err)
	}

	if back.Options.Key() != res.Options.Key() {
		t.Fatalf("options key drifted: %s != %s", back.Options.Key(), res.Options.Key())
	}
	if len(back.Points) != len(res.Points) || len(back.Baselines) != len(res.Baselines) {
		t.Fatalf("shape drifted: %d/%d points, %d/%d baselines",
			len(back.Points), len(res.Points), len(back.Baselines), len(res.Baselines))
	}
	for _, pt := range res.Points {
		for _, app := range res.Options.Apps {
			want, okW := res.Lookup(app, pt)
			got, okG := back.Lookup(app, pt)
			if okW != okG {
				t.Fatalf("%s %s: presence drifted", app, pt.Key())
			}
			if !okW {
				continue
			}
			if got.Result.Cycles != want.Result.Cycles ||
				math.Abs(got.Result.Energy.Total()-want.Result.Energy.Total()) > 1e-12 ||
				got.Result.Stats.MemOps != want.Result.Stats.MemOps {
				t.Fatalf("%s %s: result drifted: %+v vs %+v", app, pt.Key(), got.Result, want.Result)
			}
		}
	}

	// The derived exports — what the API actually serves — are identical.
	wantFigs, _ := json.Marshal(res.FiguresExport())
	gotFigs, _ := json.Marshal(back.FiguresExport())
	if string(wantFigs) != string(gotFigs) {
		t.Error("figures export drifted across the codec")
	}
	wantExp, _ := json.Marshal(res.Export())
	gotExp, _ := json.Marshal(back.Export())
	if string(wantExp) != string(gotExp) {
		t.Error("raw export drifted across the codec")
	}
}

// TestExecuteContextCellHooks verifies the cell cache short-circuits
// simulations: a second sweep over a superset of cells only computes the
// cells the first one did not already produce, and progress still counts
// every cell.
func TestExecuteContextCellHooks(t *testing.T) {
	type cellStore struct {
		mu    chan struct{} // 1-token semaphore; keeps the fake store race-free
		cells map[string]sim.Result
	}
	st := &cellStore{mu: make(chan struct{}, 1), cells: make(map[string]sim.Result)}
	st.mu <- struct{}{}

	var lookups, hits, puts int
	opts := tinyOptions()
	opts.CellLookup = func(k CellKey) (sim.Result, bool) {
		<-st.mu
		defer func() { st.mu <- struct{}{} }()
		lookups++
		res, ok := st.cells[k.Hash()]
		if ok {
			hits++
		}
		return res, ok
	}
	opts.CellPut = func(k CellKey, res sim.Result) {
		<-st.mu
		defer func() { st.mu <- struct{}{} }()
		puts++
		st.cells[k.Hash()] = res
	}

	first, err := Execute(opts)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	total := opts.Size()
	if hits != 0 || puts != total || lookups != total {
		t.Fatalf("first sweep: %d lookups, %d hits, %d puts; want %d/0/%d",
			lookups, hits, puts, total, total)
	}

	// Second, overlapping sweep: same cells plus one more retention time.
	lookups, hits, puts = 0, 0, 0
	wider := opts
	wider.RetentionTimesUS = []float64{config.Retention50us, config.Retention100us}
	widerTotal := wider.Size()
	fresh := widerTotal - total

	var progressCalls int
	done := make(chan struct{}, widerTotal+1)
	second, err := ExecuteContext(t.Context(), wider, func(p Progress) {
		done <- struct{}{}
		if p.Total != widerTotal {
			t.Errorf("progress total = %d, want %d", p.Total, widerTotal)
		}
	})
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	progressCalls = len(done)
	if hits != total {
		t.Errorf("overlapping sweep hit %d cells, want %d", hits, total)
	}
	if puts != fresh {
		t.Errorf("overlapping sweep computed %d cells, want %d", puts, fresh)
	}
	if progressCalls != widerTotal {
		t.Errorf("progress called %d times, want %d (cache hits count as done sims)", progressCalls, widerTotal)
	}

	// Cached cells reproduce the from-scratch results exactly.
	scratch, err := Execute(Options{
		Base:             wider.Base,
		Apps:             wider.Apps,
		RetentionTimesUS: wider.RetentionTimesUS,
		Policies:         wider.Policies,
		EffortScale:      wider.EffortScale,
		Seed:             wider.Seed,
	})
	if err != nil {
		t.Fatalf("scratch sweep: %v", err)
	}
	a, _ := json.Marshal(second.FiguresExport())
	b, _ := json.Marshal(scratch.FiguresExport())
	if string(a) != string(b) {
		t.Error("cell-cached sweep diverged from the from-scratch sweep")
	}
	_ = first
}
