package sweep

import (
	"testing"

	"refrint/internal/config"
	"refrint/internal/workload"
)

// tinyOptions is the smallest sweep worth running in unit tests: two
// applications (one Class 1, one Class 3), one retention time, four
// policies, low effort.
func tinyOptions() Options {
	return Options{
		Base:             config.Scaled(),
		Apps:             []string{"FFT", "Blackscholes"},
		RetentionTimesUS: []float64{config.Retention50us},
		Policies: []config.Policy{
			config.PeriodicAll,
			config.RefrintValid,
			config.RefrintWB(4, 4),
			config.RefrintWB(32, 32),
		},
		EffortScale: 0.15,
		Seed:        1,
		Workers:     2,
	}
}

func runTiny(t *testing.T) *Results {
	t.Helper()
	res, err := Execute(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExecuteProducesAllRuns(t *testing.T) {
	res := runTiny(t)
	if len(res.Baselines) != 2 {
		t.Fatalf("baselines = %d, want 2", len(res.Baselines))
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, pt := range res.Points {
		byApp := res.Runs[pt.Key()]
		if len(byApp) != 2 {
			t.Errorf("%s: %d runs, want 2", pt.Key(), len(byApp))
		}
	}
}

func TestPointLabelsAndKeys(t *testing.T) {
	base := Point{Policy: config.SRAMBaseline}
	if !base.IsBaseline() || base.Key() != "SRAM" || base.Label() != "SRAM" {
		t.Errorf("baseline point misbehaves: %+v", base)
	}
	p := Point{RetentionUS: 50, Policy: config.RefrintWB(32, 32)}
	if p.IsBaseline() {
		t.Error("policy point marked as baseline")
	}
	if p.Key() != "R.WB(32,32)@50us" {
		t.Errorf("Key = %q", p.Key())
	}
	if p.Label() != "R.WB(32,32)" {
		t.Errorf("Label = %q", p.Label())
	}
}

func TestDefaultAndQuickOptions(t *testing.T) {
	d := DefaultOptions()
	if len(d.Apps) != 11 || len(d.Policies) != 14 || len(d.RetentionTimesUS) != 3 {
		t.Errorf("DefaultOptions: %d apps %d policies %d retentions", len(d.Apps), len(d.Policies), len(d.RetentionTimesUS))
	}
	q := QuickOptions()
	if len(q.Apps) >= len(d.Apps) || q.EffortScale >= d.EffortScale {
		t.Error("QuickOptions should be strictly smaller than DefaultOptions")
	}
}

func TestNormaliseFillsDefaults(t *testing.T) {
	o := Options{}.normalise()
	if o.Base.Cores == 0 || len(o.Apps) == 0 || len(o.Policies) == 0 || o.EffortScale != 1.0 || o.Workers <= 0 || o.Seed == 0 {
		t.Errorf("normalise left defaults unset: %+v", o)
	}
}

func TestExecuteRejectsUnknownApp(t *testing.T) {
	o := tinyOptions()
	o.Apps = []string{"NotAnApp"}
	if _, err := Execute(o); err == nil {
		t.Error("unknown application should fail")
	}
}

func TestNormalizedEnergyBelowOne(t *testing.T) {
	// Any eDRAM configuration should use less memory energy than the SRAM
	// baseline (that is the whole premise of the paper).
	res := runTiny(t)
	bars := res.Figure61()
	for _, b := range bars {
		if b.Total() <= 0 {
			t.Errorf("%s: empty bar", b.Point.Key())
		}
		if b.Total() >= 1.0 {
			t.Errorf("%s: normalized memory energy %.2f >= 1 (should beat SRAM)", b.Point.Key(), b.Total())
		}
	}
}

func TestFigure61And62Consistent(t *testing.T) {
	// The two decompositions of Figure 6.1 and 6.2 are views of the same
	// energy: their bar totals must match per point.
	res := runTiny(t)
	byLevel := res.Figure61()
	byComponent := res.Figure62("all")
	if len(byLevel) != len(byComponent) {
		t.Fatalf("series lengths differ: %d vs %d", len(byLevel), len(byComponent))
	}
	for i := range byLevel {
		a, b := byLevel[i].Total(), byComponent[i].Total()
		if diff := a - b; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: level total %.6f != component total %.6f", byLevel[i].Point.Key(), a, b)
		}
	}
}

func TestRefrintWBBeatsPeriodicAll(t *testing.T) {
	// The paper's headline ordering at 50us: R.WB(32,32) < P.all in memory
	// energy, and execution-time penalty of R.WB(32,32) below P.all.
	res := runTiny(t)
	mem := res.Figure61()
	pAll, ok1 := FindLevel(mem, "P.all", config.Retention50us)
	rWB, ok2 := FindLevel(mem, "R.WB(32,32)", config.Retention50us)
	if !ok1 || !ok2 {
		t.Fatal("missing sweep points")
	}
	if rWB.Total() >= pAll.Total() {
		t.Errorf("R.WB(32,32) memory energy %.3f should be below P.all %.3f", rWB.Total(), pAll.Total())
	}

	times := res.Figure64("all")
	pAllT, _ := FindScalar(times, "P.all", config.Retention50us)
	rWBT, _ := FindScalar(times, "R.WB(32,32)", config.Retention50us)
	if rWBT.Value >= pAllT.Value {
		t.Errorf("R.WB(32,32) slowdown %.3f should be below P.all %.3f", rWBT.Value, pAllT.Value)
	}
	if pAllT.Value <= 1.0 {
		t.Errorf("P.all normalized time %.3f should exceed 1 (it blocks the cache)", pAllT.Value)
	}
}

func TestFigure63TotalAboveMemoryFraction(t *testing.T) {
	// Total system energy savings are diluted by core and network energy,
	// so the normalized total must sit above the normalized memory energy.
	res := runTiny(t)
	mem := res.Figure61()
	tot := res.Figure63("all")
	for i := range mem {
		if tot[i].Value <= mem[i].Total() {
			t.Errorf("%s: normalized total %.3f should exceed normalized memory %.3f",
				mem[i].Point.Key(), tot[i].Value, mem[i].Total())
		}
		if tot[i].Value >= 1.0 {
			t.Errorf("%s: normalized total %.3f should still be below 1", tot[i].Point.Key(), tot[i].Value)
		}
	}
}

func TestAppsByClassAndSelectors(t *testing.T) {
	res := runTiny(t)
	classes := res.AppsByClass()
	if len(classes[workload.Class1]) != 1 || classes[workload.Class1][0] != "FFT" {
		t.Errorf("Class1 = %v", classes[workload.Class1])
	}
	if len(classes[workload.Class3]) != 1 || classes[workload.Class3][0] != "Blackscholes" {
		t.Errorf("Class3 = %v", classes[workload.Class3])
	}
	if got := res.appsFor("class1"); len(got) != 1 {
		t.Errorf("appsFor(class1) = %v", got)
	}
	if got := res.appsFor("all"); len(got) != 2 {
		t.Errorf("appsFor(all) = %v", got)
	}
	if got := res.appsFor("bogus"); got != nil {
		t.Errorf("appsFor(bogus) = %v, want nil", got)
	}
}

func TestTable61RowsPresent(t *testing.T) {
	res := runTiny(t)
	rows := res.Table61()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		if row.Class == workload.ClassUnknown {
			t.Errorf("%s: unknown class", row.App)
		}
		if row.FootprintRatio <= 0 {
			t.Errorf("%s: footprint ratio %.3f", row.App, row.FootprintRatio)
		}
	}
	// FFT (Class 1) has a much larger footprint ratio than Blackscholes.
	var fft, bs Table61Row
	for _, row := range rows {
		switch row.App {
		case "FFT":
			fft = row
		case "Blackscholes":
			bs = row
		}
	}
	if fft.FootprintRatio <= bs.FootprintRatio {
		t.Errorf("FFT footprint ratio %.2f should exceed Blackscholes %.2f", fft.FootprintRatio, bs.FootprintRatio)
	}
	// A Class 1 application streams through memory, so it produces far more
	// DRAM traffic than a cache-resident Class 3 application.  (The L3 miss
	// *rate* is not a good discriminator: Class 3 applications access the L3
	// so rarely that most of their few accesses are cold misses.)
	if fft.DRAMAccesses <= 2*bs.DRAMAccesses {
		t.Errorf("FFT DRAM accesses %d should far exceed Blackscholes %d", fft.DRAMAccesses, bs.DRAMAccesses)
	}
}

func TestPointsAtAndRetentionTimes(t *testing.T) {
	res := runTiny(t)
	if got := res.RetentionTimes(); len(got) != 1 || got[0] != config.Retention50us {
		t.Errorf("RetentionTimes = %v", got)
	}
	if got := res.PointsAt(config.Retention50us); len(got) != 4 {
		t.Errorf("PointsAt(50) = %d points", len(got))
	}
	if got := res.PointsAt(999); len(got) != 0 {
		t.Errorf("PointsAt(999) = %d points, want 0", len(got))
	}
}

func TestLookup(t *testing.T) {
	res := runTiny(t)
	if _, ok := res.Lookup("FFT", Point{Policy: config.SRAMBaseline}); !ok {
		t.Error("baseline lookup failed")
	}
	pt := Point{RetentionUS: config.Retention50us, Policy: config.RefrintValid}
	if _, ok := res.Lookup("FFT", pt); !ok {
		t.Error("point lookup failed")
	}
	if _, ok := res.Lookup("FFT", Point{RetentionUS: 123, Policy: config.RefrintValid}); ok {
		t.Error("lookup of missing point should fail")
	}
	if _, ok := res.Lookup("Nope", pt); ok {
		t.Error("lookup of missing app should fail")
	}
}

func TestFindHelpersMissing(t *testing.T) {
	if _, ok := FindScalar(nil, "x", 1); ok {
		t.Error("FindScalar on empty series should miss")
	}
	if _, ok := FindComponent(nil, "x", 1); ok {
		t.Error("FindComponent on empty series should miss")
	}
	if _, ok := FindLevel(nil, "x", 1); ok {
		t.Error("FindLevel on empty series should miss")
	}
}

func TestApplyEffortFloors(t *testing.T) {
	p, _ := workload.Get("LU")
	small := applyEffort(p, 0.000001)
	if small.MemOpsPerThread < 1000 {
		t.Errorf("effort floor violated: %d", small.MemOpsPerThread)
	}
	same := applyEffort(p, 1.0)
	if same.MemOpsPerThread != p.MemOpsPerThread {
		t.Error("effort 1.0 should not change the workload")
	}
}
