// Package sweep is the experiment harness: it runs the parameter sweep of
// Table 5.4 (2 time policies x 7 data policies x 3 retention times, plus the
// full-SRAM baseline) over the applications of Table 5.3, normalizes every
// metric to the per-application SRAM baseline exactly as the paper does, and
// produces the data series behind Table 6.1 and Figures 6.1-6.4.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"refrint/internal/config"
	"refrint/internal/faults"
	"refrint/internal/sim"
	"refrint/internal/workload"
)

// Options selects what the harness runs.
type Options struct {
	// Base is the architecture preset ("scaled" by default; "fullsize" for
	// the paper's literal configuration).
	Base config.Config
	// Apps is the list of application names (default: all of Table 5.3).
	Apps []string
	// RetentionTimesUS restricts the retention times (default: 50/100/200).
	RetentionTimesUS []float64
	// Policies restricts the policies per retention time (default: the 14
	// of Table 5.4).
	Policies []config.Policy
	// EffortScale further multiplies every application's per-thread memory
	// operation count (1.0 = the preset's own size; benches use less).
	EffortScale float64
	// Seed makes the synthetic workloads deterministic.
	Seed int64
	// Workers bounds the number of concurrent simulations (default: NumCPU).
	Workers int

	// CellLookup, when non-nil, is consulted before every simulation with
	// the cell's canonical key.  A hit is used in place of running the
	// simulation and counts as an instantly-completed sim in progress
	// callbacks.  It must be safe for concurrent use.
	CellLookup func(CellKey) (sim.Result, bool) `json:"-"`
	// CellPut, when non-nil, receives every freshly computed cell result
	// (cache hits are not re-announced).  It must be safe for concurrent
	// use.
	CellPut func(CellKey, sim.Result) `json:"-"`
}

// DefaultOptions returns the options used by cmd/refrint-sweep: the scaled
// preset, every application, the full Table 5.4 sweep.
func DefaultOptions() Options {
	return Options{
		Base:             config.Scaled(),
		Apps:             workload.AppNames(),
		RetentionTimesUS: config.RetentionTimesUS(),
		Policies:         config.SweepPolicies(),
		EffortScale:      1.0,
		Seed:             1,
		Workers:          runtime.NumCPU(),
	}
}

// QuickOptions returns a reduced sweep used by benchmarks and integration
// tests: one representative application per class and a quarter of the
// per-thread work.  The figure shapes survive the reduction; only statistical
// noise grows.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Apps = []string{"FFT", "LU", "Blackscholes"}
	o.EffortScale = 0.25
	return o
}

// normalise fills in defaults.
func (o Options) normalise() Options {
	if o.Base.Cores == 0 {
		o.Base = config.Scaled()
	}
	if len(o.Apps) == 0 {
		o.Apps = workload.AppNames()
	}
	if len(o.RetentionTimesUS) == 0 {
		o.RetentionTimesUS = config.RetentionTimesUS()
	}
	if len(o.Policies) == 0 {
		o.Policies = config.SweepPolicies()
	}
	if o.EffortScale <= 0 {
		o.EffortScale = 1.0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Size returns the number of simulations the options describe (after
// defaulting): every application at every (retention, policy) point, plus
// one SRAM baseline per application.
func (o Options) Size() int {
	o = o.normalise()
	return len(o.Apps) * (len(o.RetentionTimesUS)*len(o.Policies) + 1)
}

// optionsKey is the canonical, serializable identity of a sweep: everything
// that determines its Results.  Workers is deliberately excluded — it only
// changes how fast the sweep runs, never what it computes.
type optionsKey struct {
	Base             config.Config   `json:"base"`
	Apps             []string        `json:"apps"`
	RetentionTimesUS []float64       `json:"retention_times_us"`
	Policies         []config.Policy `json:"policies"`
	EffortScale      float64         `json:"effort_scale"`
	Seed             int64           `json:"seed"`
}

// Key returns a stable content hash identifying the sweep's outcome: two
// Options with equal keys compute the same set of simulation cells with
// identical per-cell results, regardless of worker count.  Defaults are
// applied first, so an all-zero Options and an explicit DefaultOptions()
// share a key.  Apps, RetentionTimesUS and Policies are sorted (on copies,
// never mutating the caller) before hashing, so permuted but equivalent
// requests share a cache/store slot.  Note the one consequence of that
// sharing: the series *order* of a cached Results follows whichever
// permutation executed first, not the caller's — the data is identical
// cell-for-cell.  The key is safe for use in URLs and file names.
func (o Options) Key() string {
	o = o.normalise()
	apps := append([]string(nil), o.Apps...)
	sort.Strings(apps)
	retentions := append([]float64(nil), o.RetentionTimesUS...)
	sort.Float64s(retentions)
	policies := append([]config.Policy(nil), o.Policies...)
	sort.Slice(policies, func(i, j int) bool { return policies[i].String() < policies[j].String() })
	return config.HashJSON(optionsKey{
		Base:             o.Base,
		Apps:             apps,
		RetentionTimesUS: retentions,
		Policies:         policies,
		EffortScale:      o.EffortScale,
		Seed:             o.Seed,
	})
}

// Point identifies one cell of the sweep: a policy at a retention time (or
// the SRAM baseline when RetentionUS is zero).
type Point struct {
	RetentionUS float64
	Policy      config.Policy
}

// IsBaseline reports whether the point is the SRAM baseline.
func (p Point) IsBaseline() bool { return p.Policy.Time == config.NoRefresh }

// Label renders the point the way the paper's figures label bars, e.g.
// "R.WB(32,32)".
func (p Point) Label() string { return p.Policy.String() }

// Key is a stable map key for the point.
func (p Point) Key() string {
	if p.IsBaseline() {
		return "SRAM"
	}
	return fmt.Sprintf("%s@%gus", p.Policy, p.RetentionUS)
}

// Run is one simulation outcome within the sweep.
type Run struct {
	App    string
	Point  Point
	Result sim.Result
}

// Results holds every run of a sweep, indexed for the figure generators.
type Results struct {
	Options Options
	// Baselines maps application name to its SRAM baseline run.
	Baselines map[string]Run
	// Runs maps point key -> application name -> run.
	Runs map[string]map[string]Run
	// Points lists the non-baseline points in figure order.
	Points []Point
}

// Execute runs the sweep described by the options.
func Execute(opts Options) (*Results, error) {
	return ExecuteContext(context.Background(), opts, nil)
}

// Progress reports how far a sweep has advanced: Done of Total simulations
// have completed.
type Progress struct {
	Done  int
	Total int
}

// Fraction returns completion in [0, 1].
func (p Progress) Fraction() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Done) / float64(p.Total)
}

// ExecuteContext runs the sweep described by the options, honouring
// cancellation and reporting progress.
//
// When ctx is cancelled the sweep stops starting new simulations, waits for
// the in-flight ones, and returns ctx.Err().  Simulations already running
// finish (one simulation is short); the partial Results are discarded.
//
// If progress is non-nil it is called after every completed simulation, from
// worker goroutines; each call carries the number of simulations completed
// at that instant, but calls from different workers may be observed out of
// order.  The callback must be safe for concurrent use and return quickly.
func ExecuteContext(ctx context.Context, opts Options, progress func(Progress)) (*Results, error) {
	opts = opts.normalise()

	// Build the work list: the SRAM baseline plus every (retention, policy)
	// combination, for every application.
	type job struct {
		app   string
		point Point
	}
	var points []Point
	for _, ret := range opts.RetentionTimesUS {
		for _, p := range opts.Policies {
			points = append(points, Point{RetentionUS: ret, Policy: p})
		}
	}
	var jobs []job
	for _, app := range opts.Apps {
		jobs = append(jobs, job{app: app, point: Point{Policy: config.SRAMBaseline}})
		for _, pt := range points {
			jobs = append(jobs, job{app: app, point: pt})
		}
	}

	res := &Results{
		Options:   opts,
		Baselines: make(map[string]Run),
		Runs:      make(map[string]map[string]Run),
		Points:    points,
	}
	for _, pt := range points {
		res.Runs[pt.Key()] = make(map[string]Run)
	}

	total := len(jobs)
	var keyer cellKeyer
	if opts.CellLookup != nil || opts.CellPut != nil {
		keyer = opts.cellKeyer()
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		done     atomic.Int64
		sem      = make(chan struct{}, opts.Workers)
	)
	for _, j := range jobs {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			run, err := safeResolveCell(ctx, opts, keyer, j.app, j.point)
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			if j.point.IsBaseline() {
				res.Baselines[j.app] = run
			} else {
				res.Runs[j.point.Key()][j.app] = run
			}
			mu.Unlock()
			if progress != nil {
				progress(Progress{Done: int(done.Add(1)), Total: total})
			}
		}(j)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// PanicError is what a panicking simulation cell is converted into: the
// sweep's worker goroutines recover per cell, so one buggy policy/workload
// combination fails its sweep instead of killing the process.  Callers that
// need to distinguish contained panics from ordinary failures (the server's
// job lifecycle counts and logs them) unwrap it with errors.As; Stack holds
// the panicking goroutine's stack for that log.
type PanicError struct {
	App   string // application of the panicking cell
	Cell  string // Point.Key() of the panicking cell
	Value any    // the recovered panic value
	Stack []byte // debug.Stack() captured inside the recover
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: panic in cell %s/%s: %v", e.App, e.Cell, e.Value)
}

// safeResolveCell is resolveCell behind the per-cell containment boundary: a
// panic anywhere below (simulation bug, cache hook, injected fault) is
// recovered into a *PanicError, and the fault-injection points for
// simulation latency and simulation failure are consulted first.  The
// injection checks are a single atomic load each when no fault spec is
// installed.
func safeResolveCell(ctx context.Context, opts Options, keyer cellKeyer, appName string, pt Point) (run Run, err error) {
	defer func() {
		if r := recover(); r != nil {
			run, err = Run{}, &PanicError{App: appName, Cell: pt.Key(), Value: r, Stack: debug.Stack()}
		}
	}()
	if err := faults.CheckCtx(ctx, faults.ExecLatency); err != nil {
		return Run{}, err
	}
	if err := faults.CheckCtx(ctx, faults.SimRun); err != nil {
		return Run{}, fmt.Errorf("sweep: %s %s: %w", appName, pt.Key(), err)
	}
	return resolveCell(opts, keyer, appName, pt)
}

// resolveCell produces the run for one cell, consulting the cell-level
// result cache hooks when installed: a CellLookup hit replaces the
// simulation outright, and every freshly computed result is offered to
// CellPut.  The keyer carries the sweep-constant key fields so the config
// hash is not recomputed per cell.
func resolveCell(opts Options, keyer cellKeyer, appName string, pt Point) (Run, error) {
	if opts.CellLookup != nil {
		if res, ok := opts.CellLookup(keyer.key(appName, pt)); ok {
			return Run{App: appName, Point: pt, Result: res}, nil
		}
	}
	run, err := runOne(opts, appName, pt)
	if err == nil && opts.CellPut != nil {
		opts.CellPut(keyer.key(appName, pt), run.Result)
	}
	return run, err
}

// runOne executes a single (application, point) simulation.
func runOne(opts Options, appName string, pt Point) (Run, error) {
	params, err := workload.Get(appName)
	if err != nil {
		return Run{}, err
	}
	params = applyEffort(params, opts.EffortScale)

	cfg := opts.Base
	if pt.IsBaseline() {
		cfg = config.AsSRAM(cfg)
	} else {
		retention := pt.RetentionUS
		if cfg.Name == "scaled" {
			retention = config.ScaledRetentionUS(retention)
		}
		cfg = config.AsEDRAM(cfg, pt.Policy, retention)
	}

	system, err := sim.New(cfg, params, opts.Seed)
	if err != nil {
		return Run{}, fmt.Errorf("sweep: %s %s: %w", appName, pt.Key(), err)
	}
	result := system.Run()
	result.RetentionUS = pt.RetentionUS // report the paper-scale retention
	return Run{App: appName, Point: pt, Result: result}, nil
}

// applyEffort scales the per-thread work of an application.
func applyEffort(p workload.Params, scale float64) workload.Params {
	if scale == 1.0 {
		return p
	}
	out := p
	ops := int64(float64(p.MemOpsPerThread) * scale)
	if ops < 1000 {
		ops = 1000
	}
	out.MemOpsPerThread = ops
	return out
}

// AppsByClass groups the sweep's applications by their paper class.
func (r *Results) AppsByClass() map[workload.Class][]string {
	out := make(map[workload.Class][]string)
	for _, app := range r.Options.Apps {
		p, err := workload.Get(app)
		if err != nil {
			continue
		}
		out[p.PaperClass] = append(out[p.PaperClass], app)
	}
	for _, apps := range out {
		sort.Strings(apps)
	}
	return out
}

// PointsAt returns the sweep's points for one retention time, in figure
// order.
func (r *Results) PointsAt(retentionUS float64) []Point {
	var out []Point
	for _, p := range r.Points {
		if p.RetentionUS == retentionUS {
			out = append(out, p)
		}
	}
	return out
}

// RetentionTimes returns the retention times present in the sweep, ascending.
func (r *Results) RetentionTimes() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range r.Points {
		if !seen[p.RetentionUS] {
			seen[p.RetentionUS] = true
			out = append(out, p.RetentionUS)
		}
	}
	sort.Float64s(out)
	return out
}

// Lookup returns the run of an application at a point (ok reports presence).
func (r *Results) Lookup(app string, pt Point) (Run, bool) {
	if pt.IsBaseline() {
		run, ok := r.Baselines[app]
		return run, ok
	}
	byApp, ok := r.Runs[pt.Key()]
	if !ok {
		return Run{}, false
	}
	run, ok := byApp[app]
	return run, ok
}
