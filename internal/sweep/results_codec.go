package sweep

import (
	"encoding/json"
	"fmt"
)

// This file makes *Results round-trip through JSON, so a persistent store
// can keep completed sweeps across process restarts.  The wire form is a
// flat, deterministic rendering (options + runs in figure order); the index
// maps of Results are rebuilt on decode.
//
// The codec is distinct from Export(): Export flattens runs into normalized
// report rows for archival and plotting, while this codec preserves the full
// Results — raw counters, energy breakdowns and point structure — so every
// figure generator works on a reloaded sweep exactly as on a fresh one.

// resultsWire is the serialized form of Results.
type resultsWire struct {
	Options optionsKey `json:"options"`
	Points  []Point    `json:"points"`
	// Baselines and Runs are ordered by the options' app and point order,
	// so encoding is deterministic.
	Baselines []Run `json:"baselines"`
	Runs      []Run `json:"runs"`
}

// MarshalJSON implements json.Marshaler.
func (r *Results) MarshalJSON() ([]byte, error) {
	w := resultsWire{
		Options: optionsKey{
			Base:             r.Options.Base,
			Apps:             r.Options.Apps,
			RetentionTimesUS: r.Options.RetentionTimesUS,
			Policies:         r.Options.Policies,
			EffortScale:      r.Options.EffortScale,
			Seed:             r.Options.Seed,
		},
		Points: r.Points,
	}
	for _, app := range r.Options.Apps {
		if run, ok := r.Baselines[app]; ok {
			w.Baselines = append(w.Baselines, run)
		}
	}
	for _, pt := range r.Points {
		for _, app := range r.Options.Apps {
			if run, ok := r.Lookup(app, pt); ok {
				w.Runs = append(w.Runs, run)
			}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, rebuilding the index maps.
func (r *Results) UnmarshalJSON(data []byte) error {
	var w resultsWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("sweep: decoding results: %w", err)
	}
	r.Options = Options{
		Base:             w.Options.Base,
		Apps:             w.Options.Apps,
		RetentionTimesUS: w.Options.RetentionTimesUS,
		Policies:         w.Options.Policies,
		EffortScale:      w.Options.EffortScale,
		Seed:             w.Options.Seed,
	}
	r.Points = w.Points
	r.Baselines = make(map[string]Run, len(w.Baselines))
	for _, run := range w.Baselines {
		r.Baselines[run.App] = run
	}
	r.Runs = make(map[string]map[string]Run, len(w.Points))
	for _, pt := range w.Points {
		r.Runs[pt.Key()] = make(map[string]Run)
	}
	for _, run := range w.Runs {
		byApp, ok := r.Runs[run.Point.Key()]
		if !ok {
			byApp = make(map[string]Run)
			r.Runs[run.Point.Key()] = byApp
		}
		byApp[run.App] = run
	}
	return nil
}
