package sweep

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSweep runs the reference sweep (QuickOptions, seed 1) once per test
// binary; the golden tests below all read from it.
var goldenSweep = sync.OnceValues(func() (*Results, error) {
	return Execute(QuickOptions())
})

// compareGolden checks got against the named golden file, rewriting the file
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run `go test ./internal/sweep -run TestGolden -update` to create it): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (%d vs %d bytes).\n"+
			"If the change is intended, regenerate with -update and review the diff.\n"+
			"First divergence near byte %d.",
			name, len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestGoldenFigures pins the complete machine-readable evaluation payload —
// Table 6.1 and the Figure 6.1-6.4 series — for the QuickOptions sweep at
// seed 1.  Any change to the simulator, energy model or normalization that
// shifts a published data series fails here instead of drifting silently.
func TestGoldenFigures(t *testing.T) {
	res, err := goldenSweep()
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	payload, err := json.MarshalIndent(res.FiguresExport(), "", "  ")
	if err != nil {
		t.Fatalf("marshal figures: %v", err)
	}
	compareGolden(t, "figures_quick.json", append(payload, '\n'))
}

// TestGoldenExport pins the raw per-run export (cycles, energy breakdown,
// activity counters) of the same sweep.
func TestGoldenExport(t *testing.T) {
	res, err := goldenSweep()
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("write export: %v", err)
	}
	compareGolden(t, "export_quick.json", buf.Bytes())

	// The golden bytes must round-trip through the loader.
	loaded, err := LoadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-load export: %v", err)
	}
	if len(loaded.Runs) != res.Options.Size() {
		t.Errorf("loaded %d runs, want %d", len(loaded.Runs), res.Options.Size())
	}
}
