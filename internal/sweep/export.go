package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"refrint/internal/stats"
)

// This file provides a machine-readable export of a sweep, so results can be
// archived, diffed between runs, or plotted outside the tool.

// ExportRun is the JSON form of one simulation within a sweep.
type ExportRun struct {
	App         string  `json:"app"`
	Policy      string  `json:"policy"`
	RetentionUS float64 `json:"retention_us"`

	Cycles       int64 `json:"cycles"`
	Instructions int64 `json:"instructions"`
	MemOps       int64 `json:"mem_ops"`

	// Energy in Joules.
	MemoryEnergyJ  float64 `json:"memory_energy_j"`
	DynamicJ       float64 `json:"dynamic_j"`
	LeakageJ       float64 `json:"leakage_j"`
	RefreshJ       float64 `json:"refresh_j"`
	DRAMJ          float64 `json:"dram_j"`
	TotalEnergyJ   float64 `json:"total_energy_j"`
	CoreEnergyJ    float64 `json:"core_energy_j"`
	NetworkEnergyJ float64 `json:"network_energy_j"`

	// Normalized to the same application's SRAM baseline (zero for the
	// baseline itself).
	NormMemoryEnergy float64 `json:"norm_memory_energy"`
	NormTotalEnergy  float64 `json:"norm_total_energy"`
	NormTime         float64 `json:"norm_time"`

	// Headline activity counters.
	OnChipRefreshes   int64   `json:"on_chip_refreshes"`
	SentryInterrupts  int64   `json:"sentry_interrupts"`
	PolicyWritebacks  int64   `json:"policy_writebacks"`
	PolicyInvalidates int64   `json:"policy_invalidates"`
	DRAMAccesses      int64   `json:"dram_accesses"`
	L3MissRate        float64 `json:"l3_miss_rate"`
}

// Export is the JSON form of a full sweep.
type Export struct {
	Preset      string      `json:"preset"`
	EffortScale float64     `json:"effort_scale"`
	Seed        int64       `json:"seed"`
	Apps        []string    `json:"apps"`
	Runs        []ExportRun `json:"runs"`
}

// Export converts the results into their machine-readable form.  Runs are
// ordered baseline-first, then by sweep point and application, so the output
// is deterministic.
func (r *Results) Export() Export {
	out := Export{
		Preset:      r.Options.Base.Name,
		EffortScale: r.Options.EffortScale,
		Seed:        r.Options.Seed,
		Apps:        append([]string(nil), r.Options.Apps...),
	}
	for _, app := range r.Options.Apps {
		if base, ok := r.Baselines[app]; ok {
			out.Runs = append(out.Runs, r.exportRun(base, false))
		}
	}
	for _, pt := range r.Points {
		for _, app := range r.Options.Apps {
			if run, ok := r.Lookup(app, pt); ok {
				out.Runs = append(out.Runs, r.exportRun(run, true))
			}
		}
	}
	return out
}

// exportRun flattens one run, normalizing against its application baseline.
func (r *Results) exportRun(run Run, normalize bool) ExportRun {
	res := run.Result
	e := ExportRun{
		App:               run.App,
		Policy:            run.Point.Label(),
		RetentionUS:       run.Point.RetentionUS,
		Cycles:            res.Cycles,
		Instructions:      res.Stats.Instructions,
		MemOps:            res.Stats.MemOps,
		MemoryEnergyJ:     res.Energy.MemoryHierarchy(),
		DynamicJ:          res.Energy.Dynamic,
		LeakageJ:          res.Energy.Leakage,
		RefreshJ:          res.Energy.Refresh,
		DRAMJ:             res.Energy.DRAM,
		TotalEnergyJ:      res.Energy.Total(),
		CoreEnergyJ:       res.Energy.Core,
		NetworkEnergyJ:    res.Energy.NoC,
		OnChipRefreshes:   res.Stats.TotalOnChipRefreshes(),
		SentryInterrupts:  res.Stats.SentryInterrupts,
		PolicyWritebacks:  res.Stats.PolicyWritebacks,
		PolicyInvalidates: res.Stats.PolicyInvalidates,
		DRAMAccesses:      res.Stats.DRAMAccesses(),
		L3MissRate:        res.Stats.Level(stats.L3).MissRate(),
	}
	if normalize {
		if base, ok := r.Baselines[run.App]; ok {
			if v := base.Result.Energy.MemoryHierarchy(); v > 0 {
				e.NormMemoryEnergy = res.Energy.MemoryHierarchy() / v
			}
			if v := base.Result.Energy.Total(); v > 0 {
				e.NormTotalEnergy = res.Energy.Total() / v
			}
			if base.Result.Cycles > 0 {
				e.NormTime = float64(res.Cycles) / float64(base.Result.Cycles)
			}
		}
	}
	return e
}

// WriteJSON writes the export as indented JSON.
func (r *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Export()); err != nil {
		return fmt.Errorf("sweep: encoding results: %w", err)
	}
	return nil
}

// LoadJSON reads an export previously written by WriteJSON.
func LoadJSON(rd io.Reader) (Export, error) {
	var out Export
	if err := json.NewDecoder(rd).Decode(&out); err != nil {
		return Export{}, fmt.Errorf("sweep: decoding results: %w", err)
	}
	return out, nil
}

// Find returns the exported run for one (app, policy, retention) triple.
func (e Export) Find(app, policy string, retentionUS float64) (ExportRun, bool) {
	for _, run := range e.Runs {
		if run.App == app && run.Policy == policy && run.RetentionUS == retentionUS {
			return run, true
		}
	}
	return ExportRun{}, false
}
