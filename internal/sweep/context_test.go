package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"refrint/internal/config"
)

// smallOptions is a real but fast sweep: 1 app x (1 policy + baseline).
func smallOptions(seed int64) Options {
	return Options{
		Apps:             []string{"FFT"},
		RetentionTimesUS: []float64{50},
		Policies:         []config.Policy{config.RefrintValid},
		EffortScale:      0.05,
		Seed:             seed,
		Workers:          2,
	}
}

// TestExecuteContextProgress verifies every simulation reports exactly one
// progress callback with a consistent total, and that the final count
// reaches the sweep size.
func TestExecuteContextProgress(t *testing.T) {
	opts := Options{
		Apps:             []string{"FFT", "LU"},
		RetentionTimesUS: []float64{50},
		Policies:         []config.Policy{config.RefrintValid, config.PeriodicAll},
		EffortScale:      0.05,
		Seed:             1,
		Workers:          4,
	}
	want := opts.Size()
	if want != 6 { // 2 apps x (2 policies + baseline)
		t.Fatalf("Size() = %d, want 6", want)
	}

	var mu sync.Mutex
	var calls int
	maxDone := 0
	res, err := ExecuteContext(context.Background(), opts, func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if p.Total != want {
			t.Errorf("progress total = %d, want %d", p.Total, want)
		}
		if p.Done < 1 || p.Done > want {
			t.Errorf("progress done = %d out of range [1,%d]", p.Done, want)
		}
		if p.Done > maxDone {
			maxDone = p.Done
		}
	})
	if err != nil {
		t.Fatalf("ExecuteContext: %v", err)
	}
	if res == nil {
		t.Fatal("nil results")
	}
	if calls != want || maxDone != want {
		t.Fatalf("progress calls = %d (max done %d), want %d", calls, maxDone, want)
	}
	if f := (Progress{Done: want, Total: want}).Fraction(); f != 1 {
		t.Errorf("Fraction at completion = %g, want 1", f)
	}
}

// TestExecuteContextCancel verifies a cancelled context stops the sweep
// early with ctx.Err() and without waiting for the remaining simulations.
func TestExecuteContextCancel(t *testing.T) {
	// A sweep big enough that it cannot finish before the cancel lands.
	opts := DefaultOptions()
	opts.EffortScale = 0.25
	opts.Workers = 2

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	start := time.Now()
	res, err := ExecuteContext(ctx, opts, func(Progress) {
		once.Do(cancel) // cancel as soon as the first simulation completes
	})
	if err != context.Canceled {
		t.Fatalf("ExecuteContext = (%v, %v), want context.Canceled", res, err)
	}
	if res != nil {
		t.Fatal("cancelled sweep returned partial results")
	}
	// Generous bound: the full sweep takes far longer than two simulations.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, expected early exit", elapsed)
	}
}

// TestExecuteWorkersRace exercises the result-aggregation paths with many
// workers; run under -race this is the sweep-level data-race check, and it
// also pins worker-count independence of the results.
func TestExecuteWorkersRace(t *testing.T) {
	opts := smallOptions(1)
	opts.Apps = []string{"FFT", "LU", "Blackscholes"}
	opts.Workers = 8

	var progressCalls atomic.Int64
	parallel, err := ExecuteContext(context.Background(), opts, func(Progress) { progressCalls.Add(1) })
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if got := int(progressCalls.Load()); got != opts.Size() {
		t.Fatalf("progress calls = %d, want %d", got, opts.Size())
	}

	serialOpts := opts
	serialOpts.Workers = 1
	serial, err := Execute(serialOpts)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}

	for _, app := range opts.Apps {
		p, ok1 := parallel.Baselines[app]
		s, ok2 := serial.Baselines[app]
		if !ok1 || !ok2 {
			t.Fatalf("missing baseline for %s (parallel %v, serial %v)", app, ok1, ok2)
		}
		if p.Result.Cycles != s.Result.Cycles {
			t.Errorf("%s baseline cycles differ across worker counts: %d vs %d", app, p.Result.Cycles, s.Result.Cycles)
		}
	}
	if parallel.Options.Key() != serial.Options.Key() {
		t.Errorf("worker count leaked into the key: %q vs %q", parallel.Options.Key(), serial.Options.Key())
	}
}
