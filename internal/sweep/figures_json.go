package sweep

// This file is the machine-readable form of the evaluation chapter: the
// figure series of Figures 6.1-6.4 and the binning of Table 6.1 as plain
// JSON-taggable structs, consumed by the HTTP API (GET /v1/sweeps/{id}/figures)
// and by the golden-file tests that pin the series down.

// FigurePoint identifies one bar of a figure in serialized form: the policy
// by its paper label and the retention time in microseconds (zero for the
// SRAM baseline).
type FigurePoint struct {
	Policy      string  `json:"policy"`
	RetentionUS float64 `json:"retention_us"`
}

// figurePoint converts an internal Point to its serialized form.
func figurePoint(p Point) FigurePoint {
	return FigurePoint{Policy: p.Label(), RetentionUS: p.RetentionUS}
}

// LevelEnergyJSON is one bar of Figure 6.1 in serialized form.
type LevelEnergyJSON struct {
	FigurePoint
	L1    float64 `json:"l1"`
	L2    float64 `json:"l2"`
	L3    float64 `json:"l3"`
	DRAM  float64 `json:"dram"`
	Total float64 `json:"total"`
}

// ComponentEnergyJSON is one bar of Figure 6.2 in serialized form.
type ComponentEnergyJSON struct {
	FigurePoint
	Dynamic float64 `json:"dynamic"`
	Leakage float64 `json:"leakage"`
	Refresh float64 `json:"refresh"`
	DRAM    float64 `json:"dram"`
	Total   float64 `json:"total"`
}

// ScalarJSON is one bar of Figure 6.3 or 6.4 in serialized form.
type ScalarJSON struct {
	FigurePoint
	Value float64 `json:"value"`
}

// Table61JSON is one row of Table 6.1 in serialized form.
type Table61JSON struct {
	App            string  `json:"app"`
	Class          string  `json:"class"`
	FootprintRatio float64 `json:"footprint_ratio"`
	Visibility     float64 `json:"visibility"`
	L3MissRate     float64 `json:"l3_miss_rate"`
	L2Writebacks   int64   `json:"l2_writebacks"`
	DRAMAccesses   int64   `json:"dram_accesses"`
}

// FigureSelectors are the application selections the paper breaks Figures
// 6.2-6.4 down by.
var FigureSelectors = []string{"class1", "class2", "class3", "all"}

// FiguresExport is the complete evaluation-data payload of one sweep:
// Table 6.1 plus every figure series, keyed by selector where the paper
// splits a figure by application class.
type FiguresExport struct {
	SweepKey string                           `json:"sweep_key"`
	Preset   string                           `json:"preset"`
	Seed     int64                            `json:"seed"`
	Apps     []string                         `json:"apps"`
	Table61  []Table61JSON                    `json:"table61"`
	Figure61 []LevelEnergyJSON                `json:"figure61"`
	Figure62 map[string][]ComponentEnergyJSON `json:"figure62"`
	Figure63 map[string][]ScalarJSON          `json:"figure63"`
	Figure64 map[string][]ScalarJSON          `json:"figure64"`
}

// FiguresExport collects every figure series and Table 6.1 into the
// machine-readable payload served by the sweep API.
func (r *Results) FiguresExport() FiguresExport {
	out := FiguresExport{
		SweepKey: r.Options.Key(),
		Preset:   r.Options.Base.Name,
		Seed:     r.Options.Seed,
		Apps:     append([]string(nil), r.Options.Apps...),
		Figure62: make(map[string][]ComponentEnergyJSON),
		Figure63: make(map[string][]ScalarJSON),
		Figure64: make(map[string][]ScalarJSON),
	}
	for _, row := range r.Table61() {
		out.Table61 = append(out.Table61, Table61JSON{
			App:            row.App,
			Class:          row.Class.String(),
			FootprintRatio: row.FootprintRatio,
			Visibility:     row.Visibility,
			L3MissRate:     row.L3MissRate,
			L2Writebacks:   row.L2Writebacks,
			DRAMAccesses:   row.DRAMAccesses,
		})
	}
	for _, bar := range r.Figure61() {
		out.Figure61 = append(out.Figure61, LevelEnergyJSON{
			FigurePoint: figurePoint(bar.Point),
			L1:          bar.L1, L2: bar.L2, L3: bar.L3, DRAM: bar.DRAM,
			Total: bar.Total(),
		})
	}
	for _, sel := range FigureSelectors {
		for _, bar := range r.Figure62(sel) {
			out.Figure62[sel] = append(out.Figure62[sel], ComponentEnergyJSON{
				FigurePoint: figurePoint(bar.Point),
				Dynamic:     bar.Dynamic, Leakage: bar.Leakage,
				Refresh: bar.Refresh, DRAM: bar.DRAM,
				Total: bar.Total(),
			})
		}
		for _, bar := range r.Figure63(sel) {
			out.Figure63[sel] = append(out.Figure63[sel], ScalarJSON{
				FigurePoint: figurePoint(bar.Point), Value: bar.Value,
			})
		}
		for _, bar := range r.Figure64(sel) {
			out.Figure64[sel] = append(out.Figure64[sel], ScalarJSON{
				FigurePoint: figurePoint(bar.Point), Value: bar.Value,
			})
		}
	}
	return out
}
