package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"

	"refrint/internal/faults"
	"refrint/internal/sim"
)

// TestPanicContained verifies a panic inside a cell is recovered into a
// *PanicError that fails the sweep cleanly instead of crashing the process.
// The panic is injected through the faults harness, which fires inside the
// recover guard exactly where a simulation bug would.
func TestPanicContained(t *testing.T) {
	inj, err := faults.Parse("sim.run:panic")
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(inj)
	t.Cleanup(faults.Disable)

	res, err := ExecuteContext(context.Background(), smallOptions(1), nil)
	if res != nil {
		t.Fatal("panicking sweep returned results")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ExecuteContext error = %v, want *PanicError", err)
	}
	if pe.App == "" || pe.Cell == "" {
		t.Errorf("PanicError missing cell identity: %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError missing stack")
	}
	if !strings.Contains(pe.Error(), "panic in cell") {
		t.Errorf("PanicError.Error() = %q", pe.Error())
	}
}

// TestPanicInCellHookContained pins the containment boundary around the
// cache hooks too: a panicking CellLookup is a per-cell failure, not a
// process crash.
func TestPanicInCellHookContained(t *testing.T) {
	opts := smallOptions(1)
	opts.CellLookup = func(CellKey) (sim.Result, bool) { panic("hook bug") }

	res, err := ExecuteContext(context.Background(), opts, nil)
	if res != nil {
		t.Fatal("panicking sweep returned results")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ExecuteContext error = %v, want *PanicError", err)
	}
	if got, want := pe.Value, any("hook bug"); got != want {
		t.Errorf("PanicError.Value = %v, want %v", got, want)
	}
}

// TestInjectedSimError verifies error-mode injection at sim.run fails the
// sweep with ErrInjected (wrapped), not a panic.
func TestInjectedSimError(t *testing.T) {
	inj, err := faults.Parse("sim.run:error")
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(inj)
	t.Cleanup(faults.Disable)

	res, err := ExecuteContext(context.Background(), smallOptions(1), nil)
	if res != nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("ExecuteContext = (%v, %v), want ErrInjected", res, err)
	}
}
