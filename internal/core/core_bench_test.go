package core

import (
	"testing"

	"refrint/internal/config"
	"refrint/internal/mem"
	"refrint/internal/stats"
)

func benchBank(policy config.Policy) (*Bank, *stats.Stats) {
	cfg := config.FullSize().L3
	cfg.Banks = 1
	cfg.Shared = false
	cell := config.CellConfig{
		Tech:              config.EDRAM,
		LeakageRatio:      0.25,
		RetentionCycles:   50_000,
		SentryGuardCycles: 16_384,
	}
	st := stats.New(1)
	return NewBank(cfg, cell, policy, stats.L3, st, Hooks{}), st
}

// BenchmarkSentryInterruptProcessing measures the Refrint path: one full
// sentry period of interrupts over a half-full full-size L3 bank.
func BenchmarkSentryInterruptProcessing(b *testing.B) {
	bank, _ := benchBank(config.RefrintValid)
	for i := 0; i < bank.Cache().NumLines(); i += 2 {
		bank.Insert(mem.LineAddr(i), mem.Exclusive, 0)
	}
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 50_000 - 16_384
		bank.AdvanceTo(now)
	}
}

// BenchmarkPeriodicSweepProcessing measures the Periodic path over the same
// bank occupancy.
func BenchmarkPeriodicSweepProcessing(b *testing.B) {
	bank, _ := benchBank(config.PeriodicValid)
	for i := 0; i < bank.Cache().NumLines(); i += 2 {
		bank.Insert(mem.LineAddr(i), mem.Exclusive, 0)
	}
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 50_000
		bank.AdvanceTo(now)
	}
}

// BenchmarkWBDecision measures the WB(n,m) decision logic of Figure 4.1 on a
// line that alternates between refresh, writeback and invalidation outcomes.
func BenchmarkWBDecision(b *testing.B) {
	bank, _ := benchBank(config.RefrintWB(1, 1))
	arr := bank.Cache()
	frame, _, _ := bank.Insert(0x1, mem.Modified, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !arr.Valid(frame) {
			arr.SetState(frame, mem.Modified)
			arr.SetCount(frame, 1)
		}
		bank.applyDataPolicy(frame, int64(i))
	}
}

// BenchmarkDemandTouch measures the per-access bookkeeping (recharge, count
// reset, sentry rescheduling) on the hot hit path.
func BenchmarkDemandTouch(b *testing.B) {
	bank, _ := benchBank(config.RefrintWB(32, 32))
	frame, _, _ := bank.Insert(0x1, mem.Modified, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Touch(frame, int64(i))
	}
}
