// Package core implements the paper's contribution: the Refrint refresh
// machinery for eDRAM cache banks.
//
// A Bank couples one cache bank (package cache) with
//
//   - the eDRAM retention model (package edram),
//   - a time-based refresh policy — Periodic group refresh or Refrint
//     sentry-bit interrupts (Table 3.1),
//   - a data-based refresh policy — All, Valid, Dirty or WB(n,m) — including
//     the per-line Count maintenance and the decision logic of Figure 4.1,
//   - the port-occupancy accounting that makes refresh activity visible in
//     execution time (refresh interrupts take priority over demand requests;
//     periodic sweeps block the bank), and
//   - the decay rule: a line whose cells were not recharged within the
//     retention period has lost its data.
//
// Banks are used for every level of the hierarchy; an SRAM bank simply has
// no retention model and never refreshes, so the same code path serves the
// paper's full-SRAM baseline.
//
// Lines are addressed by cache.Frame handles throughout: a frame number is
// simultaneously the replacement-array slot and the flat index the refresh
// machinery schedules by, so there is no pointer->index translation on any
// hot path.
package core

import (
	"fmt"

	"refrint/internal/cache"
	"refrint/internal/config"
	"refrint/internal/edram"
	"refrint/internal/event"
	"refrint/internal/mem"
	"refrint/internal/stats"
)

// Hooks are the callbacks a Bank uses to interact with the rest of the
// hierarchy when its refresh policy writes back or invalidates a line.  The
// simulator wires these to the next-lower level, the coherence directory and
// the network model.  Either hook may be nil.
type Hooks struct {
	// Writeback is called when the policy writes a dirty line back to the
	// next lower level (the line stays in the cache, now clean).
	Writeback func(addr mem.LineAddr, now int64)
	// Invalidate is called when the policy invalidates a line.  wasDirty
	// reports whether the invalidated copy was dirty in THIS cache (the
	// policy only invalidates clean lines, so this is false for policy
	// invalidations, but decay can destroy dirty data).
	Invalidate func(addr mem.LineAddr, wasDirty bool, now int64)
}

// Bank is one refresh-managed cache bank.
type Bank struct {
	cacheCfg config.CacheConfig
	cell     config.CellConfig
	policy   config.Policy
	level    stats.Level

	arr   *cache.Cache
	ret   edram.Retention
	sched edram.PeriodicSchedule
	// wheel holds the pending sentry-decay deadline of each line frame
	// (Refrint banks only).  The FrameWheel keeps exactly one live deadline
	// per frame — rescheduling moves the frame's node — so draining never
	// sees stale entries and scheduling never allocates.
	wheel *event.FrameWheel
	// dueBuf is the reusable drain buffer for sentry interrupts, so a
	// steady-state AdvanceTo performs no allocation.  Safe because a bank's
	// refresh hooks never re-enter the same bank's AdvanceTo.
	dueBuf []event.WheelEntry

	// Per-group occupancy for Periodic sweeps (nil for other banks):
	// groupValid[g] and groupDirty[g] count the valid and dirty (Modified)
	// lines in sweep group g, so advancePeriodic skips empty groups entirely
	// and stops scanning a group once every valid line has been visited.
	// Only the simulator's bookkeeping is skipped; the modelled port
	// blocking of a sweep is charged regardless of occupancy.
	groupValid    []int32
	groupDirty    []int32
	linesPerGroup int

	// Hot-path precomputation: refreshable caches Refreshable(); for
	// Periodic banks sweepInterval/blockCycles mirror the schedule and
	// nextFire is the cycle of the next group firing, giving AdvanceTo an
	// O(1) "nothing due" test without touching the schedule arithmetic.
	refreshable   bool
	sweepInterval int64
	blockCycles   int64
	nextFire      int64
	// mayDecay is false when the policy structurally recharges every line
	// within its retention period (Periodic All/Valid), letting Probe skip
	// the decay test.  Matches the sweeps' skipped LastRefresh stores.
	mayDecay bool

	hooks Hooks
	st    *stats.Stats
	ctr   *stats.LevelCounters // st.Level(level), hoisted off the hot path

	// portBusyUntil is the cycle up to which the bank's port is occupied by
	// refresh work.  Demand accesses arriving earlier wait.
	portBusyUntil int64
	// periodicFired counts how many group firings have been processed.
	periodicFired int64
	// clock is the bank-local time up to which refresh work has been
	// processed.
	clock int64
}

// NewBank builds a refresh-managed bank.
func NewBank(cacheCfg config.CacheConfig, cell config.CellConfig, policy config.Policy, level stats.Level, st *stats.Stats, hooks Hooks) *Bank {
	if err := policy.Validate(); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	b := &Bank{
		cacheCfg: cacheCfg,
		cell:     cell,
		policy:   policy,
		level:    level,
		arr:      cache.New(cacheCfg),
		ret:      edram.NewRetention(cell),
		hooks:    hooks,
		st:       st,
		ctr:      st.Level(level),
	}
	b.refreshable = b.cell.Refreshable() && b.policy.Time != config.NoRefresh
	b.mayDecay = b.refreshable &&
		!(b.policy.Time == config.PeriodicTime &&
			(b.policy.Data == config.AllData || b.policy.Data == config.ValidData))
	if b.refreshable {
		if err := b.ret.Validate(); err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		b.sched = edram.NewPeriodicSchedule(b.ret, cacheCfg.SubArrays, b.arr.NumLines())
		switch policy.Time {
		case config.RefrintTime:
			// Size the wheel's ring to the sentry horizon: deadlines are
			// normally scheduled at most one sentry period past the drain
			// point, so a horizon-sized ring makes ring growth (the wheel's
			// escape hatch for port-backlogged deadlines) a rare event.
			b.wheel = event.NewFrameWheel(64, b.arr.NumLines(), b.ret.SentryCycles)
		case config.PeriodicTime:
			b.linesPerGroup = b.sched.LinesPerGroup()
			b.groupValid = make([]int32, b.sched.Groups)
			b.groupDirty = make([]int32, b.sched.Groups)
			// Mirrors GroupAt: firing k happens at (k+1)*(Period/Groups).
			b.sweepInterval = b.sched.Period / int64(b.sched.Groups)
			b.blockCycles = b.sched.BlockCycles()
			b.nextFire = b.sweepInterval
		}
	}
	return b
}

// noteValid adjusts the valid-line count of frame f's sweep group.
//
//refrint:alloc-free
func (b *Bank) noteValid(f cache.Frame, delta int32) {
	if b.groupValid != nil {
		b.groupValid[int(f)/b.linesPerGroup] += delta
	}
}

// noteDirty adjusts the dirty-line count of frame f's sweep group.
//
//refrint:alloc-free
func (b *Bank) noteDirty(f cache.Frame, delta int32) {
	if b.groupDirty != nil {
		b.groupDirty[int(f)/b.linesPerGroup] += delta
	}
}

// Cache exposes the underlying array (tests and the hierarchy use it for
// probes that must not disturb refresh state).
func (b *Bank) Cache() *cache.Cache { return b.arr }

// Policy returns the refresh policy the bank runs.
func (b *Bank) Policy() config.Policy { return b.policy }

// Level returns the stats level this bank reports under.
func (b *Bank) Level() stats.Level { return b.level }

// Refreshable reports whether the bank is built from eDRAM and therefore
// needs refresh.
func (b *Bank) Refreshable() bool { return b.refreshable }

// counters returns the stats counters for this bank's level.
func (b *Bank) counters() *stats.LevelCounters { return b.ctr }

// PortStart returns the earliest cycle at or after `now` at which a demand
// access can use the bank port, given pending refresh work.  It also records
// the stall in the level counters.
func (b *Bank) PortStart(now int64) int64 {
	if b.portBusyUntil <= now {
		return now
	}
	b.counters().RefreshStall += b.portBusyUntil - now
	return b.portBusyUntil
}

// occupyPort reserves one cycle of the bank port for refresh work happening
// at cycle `at` (or as soon after as the port is free) and returns the cycle
// the work occupies.
func (b *Bank) occupyPort(at int64) int64 {
	if b.portBusyUntil < at {
		b.portBusyUntil = at
	}
	cycle := b.portBusyUntil
	b.portBusyUntil++
	return cycle
}

// scheduleSentry registers the sentry-decay deadline of a frame, replacing
// any previously registered deadline for the same frame.
//
//refrint:alloc-free
func (b *Bank) scheduleSentry(f cache.Frame) {
	if b.wheel == nil || b.policy.Time != config.RefrintTime || f < 0 {
		return
	}
	// The wheel moves the frame's node to the new deadline (or does nothing
	// if it is unchanged), so earlier deadlines of this frame never linger.
	b.wheel.Schedule(b.ret.SentryDeadline(b.arr.LastRefresh(f)), int(f))
}

// resetCount re-arms the WB(n,m) budget of a frame after a normal access,
// following Figure 4.1: dirty lines get n, clean lines get m.
//
//refrint:alloc-free
func (b *Bank) resetCount(f cache.Frame) {
	if b.policy.Data != config.WBData {
		return
	}
	if b.arr.Dirty(f) {
		b.arr.SetCount(f, b.policy.N)
	} else {
		b.arr.SetCount(f, b.policy.M)
	}
}

// Probe looks up addr for a demand access at cycle `now`.  If the line is
// present but its cells have decayed (possible only when the data policy let
// it lapse), the line is dropped and the probe misses.
func (b *Bank) Probe(addr mem.LineAddr, now int64) (cache.Frame, bool) {
	b.AdvanceTo(now)
	f, ok := b.arr.Probe(addr)
	if !ok {
		return cache.NoFrame, false
	}
	if b.mayDecay && b.ret.Decayed(b.arr.LastRefresh(f), now) {
		// Data lost.  Dirty data that decays silently would be a correctness
		// bug in a real system; the policies are designed never to let that
		// happen, and the counter lets tests assert it.
		b.counters().Decays++
		wasDirty := b.arr.Dirty(f)
		if b.hooks.Invalidate != nil {
			b.hooks.Invalidate(b.arr.Tag(f), wasDirty, now)
		}
		// The hook can re-enter this bank and invalidate the frame itself
		// (an L2 decay writeback probes the home L3, whose sweep may send an
		// inclusion invalidation right back); only account the line once.
		if b.arr.Valid(f) {
			if b.groupValid != nil {
				b.noteValid(f, -1)
				if b.arr.Dirty(f) {
					b.noteDirty(f, -1)
				}
			}
			b.arr.Reset(f)
		}
		return cache.NoFrame, false
	}
	return f, true
}

// Touch records a demand hit on a frame: the access refreshes the cells and
// the sentry bit and re-arms the WB(n,m) count.
//
//refrint:alloc-free
func (b *Bank) Touch(f cache.Frame, now int64) {
	b.arr.Touch(f, now)
	b.resetCount(f)
	if b.policy.Time == config.RefrintTime {
		b.scheduleSentry(f)
	}
}

// Insert places a new line in the bank (a fill from the next lower level) and
// returns the frame plus the victim information exactly as cache.Insert does.
func (b *Bank) Insert(addr mem.LineAddr, state mem.State, now int64) (f cache.Frame, victim mem.Line, evicted bool) {
	b.AdvanceTo(now)
	f, victim, evicted = b.arr.Insert(addr, state, now)
	if b.groupValid != nil {
		if evicted {
			if victim.Dirty() {
				b.noteDirty(f, -1)
			}
		} else {
			b.noteValid(f, 1)
		}
		if b.arr.Dirty(f) {
			b.noteDirty(f, 1)
		}
	}
	b.resetCount(f)
	b.counters().Fills++
	if evicted {
		b.counters().Evictions++
	}
	if b.policy.Time == config.RefrintTime {
		b.scheduleSentry(f)
	}
	return f, victim, evicted
}

// SetState changes the MESI state of a line frame in place, keeping the
// bank's occupancy accounting coherent.  The simulator uses it for silent
// upgrades (E->M), downgrades (M->S) and write hits that previously assigned
// the state directly.  It must not be used to invalidate a line (use
// Invalidate) — but it does tolerate the opposite: an upgrade may find its
// frame freshly invalidated by a refresh sweep that ran during the
// directory transaction, and the assignment then revives the frame exactly
// as the direct store used to.
//
//refrint:alloc-free
func (b *Bank) SetState(f cache.Frame, state mem.State) {
	old := b.arr.State(f)
	if b.groupValid != nil && old != state {
		if !old.Valid() && state.Valid() {
			b.noteValid(f, 1)
		}
		if old.Dirty() != state.Dirty() {
			if state.Dirty() {
				b.noteDirty(f, 1)
			} else {
				b.noteDirty(f, -1)
			}
		}
	}
	b.arr.SetState(f, state)
}

// Invalidate drops addr from the bank (coherence or inclusion), returning the
// old copy.
//
// It deliberately takes no timestamp and does not advance the bank's refresh
// clock: the timing of a coherence operation belongs to the requesting core,
// whose clock may be far ahead of this bank's owner, and letting it drive
// this bank's refresh processing would charge future refresh work against
// the owner's next (earlier) access.
func (b *Bank) Invalidate(addr mem.LineAddr) (mem.Line, bool) {
	f, ok := b.arr.Probe(addr)
	if !ok {
		return mem.Line{}, false
	}
	old := b.arr.Line(f)
	if b.groupValid != nil {
		b.noteValid(f, -1)
		if old.Dirty() {
			b.noteDirty(f, -1)
		}
	}
	b.arr.Reset(f)
	b.counters().Invalidations++
	return old, true
}

// Peek looks up addr without advancing the bank's refresh clock and without
// decay handling.  Coherence operations initiated by other cores use it to
// read or adjust a remote cache's line state (their timestamps must not
// drive the remote bank's refresh processing).
//
//refrint:alloc-free
func (b *Bank) Peek(addr mem.LineAddr) (cache.Frame, bool) {
	return b.arr.Probe(addr)
}

// State returns the MESI state of a frame (no clock advance).
//
//refrint:alloc-free
func (b *Bank) State(f cache.Frame) mem.State { return b.arr.State(f) }

// Dirty reports whether a frame holds dirty data (no clock advance).
//
//refrint:alloc-free
func (b *Bank) Dirty(f cache.Frame) bool { return b.arr.Dirty(f) }

// AdvanceTo processes all refresh work with deadlines at or before `now`.
// It is idempotent and monotone: calling it with an earlier time is a no-op.
// The common case — the clock moves but nothing is due yet — is O(1).
func (b *Bank) AdvanceTo(now int64) {
	if now <= b.clock {
		return
	}
	if b.refreshable {
		switch b.policy.Time {
		case config.RefrintTime:
			if b.wheel.MaybeDue(now) {
				b.advanceRefrint(now)
			}
		case config.PeriodicTime:
			if now >= b.nextFire {
				b.advancePeriodic(now)
			}
		}
	}
	b.clock = now
}

// advanceRefrint drains sentry interrupts due by `now`, in deadline order,
// applying the data policy to each interrupting line (Figure 4.1).  The
// FrameWheel holds exactly one live deadline per frame (rescheduling moves
// it), so every popped entry reflects the frame's current deadline; entries
// whose frame has since been invalidated raise no interrupt — an invalid
// frame has no charge to preserve — and its sentry stays quiet until the
// frame is refilled.
func (b *Bank) advanceRefrint(now int64) {
	for {
		// Drain into the bank-owned reusable buffer: zero allocations in
		// steady state.  Processing an interrupt can schedule new deadlines
		// (they land in the wheel, not the buffer) and can call hooks, which
		// never re-enter this bank's AdvanceTo.
		b.dueBuf = b.wheel.PopDueInto(now, -1, b.dueBuf[:0])
		if len(b.dueBuf) == 0 {
			return
		}
		for _, entry := range b.dueBuf {
			f := cache.Frame(entry.ID)
			if !b.arr.Valid(f) {
				// Invalid frames have no charge to preserve; their sentry
				// raises no further interrupts until the frame is refilled.
				continue
			}
			// A genuine sentry interrupt.
			b.st.SentryInterrupts++
			at := b.occupyPort(entry.Cycle)
			b.applyDataPolicy(f, at)
		}
	}
}

// advancePeriodic performs the staggered group sweeps due by `now`.  The
// firing sequence (group periodicFired mod Groups at cycle nextFire, which
// steps by sweepInterval) reproduces sched.GroupAt exactly.
func (b *Bank) advancePeriodic(now int64) {
	groups := int64(b.sched.Groups)
	for b.nextFire <= now {
		cycle := b.nextFire
		group := int(b.periodicFired % groups)
		b.periodicFired++
		b.nextFire += b.sweepInterval
		b.st.PeriodicGroupScans++
		// The sweep blocks the bank port for one cycle per line in the
		// group, starting at the firing time (Section 3.2 / 6.5).  The
		// blocking models the hardware and is charged regardless of how
		// much scanning the occupancy counters let the simulator skip.
		if b.portBusyUntil < cycle {
			b.portBusyUntil = cycle
		}
		b.portBusyUntil += b.blockCycles
		b.sweepGroup(group, cycle)
	}
}

// sweepGroup applies the data policy to every frame of one sweep group,
// using the group occupancy counters to do work proportional to occupancy:
// an empty group is handled arithmetically, and a partially filled group
// stops scanning once the last valid line has been visited (the tail is
// all-invalid by construction).
func (b *Bank) sweepGroup(group int, cycle int64) {
	start, end := b.sched.GroupRange(group)
	valid := b.groupValid[group]
	// All and Valid sweeps refresh every valid line unconditionally, which
	// has two consequences the simulator can exploit: lines on such banks
	// can never decay (every line is recharged once per retention period by
	// construction, and AdvanceTo applies due sweeps before any probe), and
	// therefore the per-line LastRefresh/Sentry stores are unobservable.
	// Only the counters matter, and those follow from the occupancy count —
	// the whole sweep is O(1) regardless of group size.  Probe skips the
	// decay check on these banks for the same reason (see mayDecay).
	if b.policy.Data == config.AllData || b.policy.Data == config.ValidData {
		refreshed := int64(valid)
		if b.policy.RefreshesInvalid() {
			refreshed = int64(end - start) // the All policy counts every frame
		}
		b.ctr.Refreshes += refreshed
		b.st.PolicyRefreshes += refreshed
		return
	}
	// Dirty and WB sweeps make per-line decisions; invalid frames need no
	// work (only the All policy, handled above, refreshes them).  `valid`
	// is the occupancy at sweep start; the policy may invalidate the line
	// under scan, but never other unvisited lines of this bank, so counting
	// visited-valid lines against the snapshot is exact.
	if valid == 0 {
		return
	}
	seen := int32(0)
	for idx := start; idx < end && seen < valid; idx++ {
		f := cache.Frame(idx)
		if !b.arr.Valid(f) {
			continue
		}
		seen++
		b.applyDataPolicy(f, cycle)
	}
}

// applyDataPolicy executes the data-based refresh decision for one frame that
// is due for refresh at cycle `at` (Figure 4.1 for WB(n,m); Table 3.1 for the
// others).
//
//refrint:alloc-free
func (b *Bank) applyDataPolicy(f cache.Frame, at int64) {
	switch b.policy.Data {
	case config.AllData:
		b.refreshLine(f, at)

	case config.ValidData:
		// Only valid lines reach this point; always refresh.
		b.refreshLine(f, at)

	case config.DirtyData:
		if b.arr.Dirty(f) {
			b.refreshLine(f, at)
		} else {
			b.invalidateLine(f, at)
		}

	case config.WBData:
		switch {
		case b.arr.Count(f) >= 1:
			b.arr.SetCount(f, b.arr.Count(f)-1)
			b.refreshLine(f, at)
		case b.arr.Dirty(f):
			// Count exhausted on a dirty line: write it back, keep it as
			// valid clean, re-arm the clean budget.  The writeback itself
			// refreshes the line.
			b.writebackLine(f, at)
		default:
			// Count exhausted on a valid clean line: let it go.
			b.invalidateLine(f, at)
		}
	}
}

// refreshLine recharges the cells and sentry bit of a frame.
//
//refrint:alloc-free
func (b *Bank) refreshLine(f cache.Frame, at int64) {
	b.arr.Recharge(f, at)
	b.counters().Refreshes++
	b.st.PolicyRefreshes++
	if b.policy.Time == config.RefrintTime {
		b.scheduleSentry(f)
	}
}

// writebackLine implements the WB(n,m) "write back and keep clean" action.
//
//refrint:alloc-free
func (b *Bank) writebackLine(f cache.Frame, at int64) {
	b.counters().Writebacks++
	b.st.PolicyWritebacks++
	if b.hooks.Writeback != nil {
		b.hooks.Writeback(b.arr.Tag(f), at)
	}
	b.noteDirty(f, -1)
	b.arr.SetState(f, mem.Exclusive) // valid clean
	b.arr.SetCount(f, b.policy.M)
	// The writeback read the line and rewrote it: the cells are recharged.
	b.arr.Recharge(f, at)
	if b.policy.Time == config.RefrintTime {
		b.scheduleSentry(f)
	}
}

// invalidateLine implements the policy invalidation of a clean line.
//
//refrint:alloc-free
func (b *Bank) invalidateLine(f cache.Frame, at int64) {
	b.counters().Invalidations++
	b.st.PolicyInvalidates++
	if b.hooks.Invalidate != nil {
		b.hooks.Invalidate(b.arr.Tag(f), b.arr.Dirty(f), at)
	}
	// As in the decay path, the hook may already have invalidated the frame
	// through a re-entrant inclusion invalidation; account the line once.
	if b.arr.Valid(f) {
		b.noteValid(f, -1)
		if b.arr.Dirty(f) {
			b.noteDirty(f, -1)
		}
		b.arr.Reset(f)
	}
}

// Drain processes all refresh work up to endCycle (used at the end of a run
// so refresh energy for the whole execution is accounted).
func (b *Bank) Drain(endCycle int64) {
	b.AdvanceTo(endCycle)
}

// FlushInto invalidates every line, appends the dirty copies to the
// caller-owned dst (mirroring event.Wheel.PopDueInto) and returns the
// extended buffer, so repeated end-of-run flushes reuse one buffer instead
// of allocating a fresh slice per call.
func (b *Bank) FlushInto(dst []mem.Line) []mem.Line {
	for i := range b.groupValid {
		b.groupValid[i] = 0
	}
	for i := range b.groupDirty {
		b.groupDirty[i] = 0
	}
	return b.arr.FlushInto(dst)
}

// FlushCount is FlushInto for callers that only need the number of dirty
// lines (the end-of-run writeback charge): no per-line copies are made.
func (b *Bank) FlushCount() int64 {
	var n int64
	if b.groupDirty != nil {
		n = int64(b.DirtyLines())
		for i := range b.groupValid {
			b.groupValid[i] = 0
		}
		for i := range b.groupDirty {
			b.groupDirty[i] = 0
		}
		b.arr.FlushCount() // zeroes the array; counted above
		return n
	}
	return b.arr.FlushCount()
}

// ValidLines returns the number of valid lines a Periodic bank is tracking
// (falling back to a scan for other banks).  Tests use it to cross-check the
// occupancy counters against ground truth.
func (b *Bank) ValidLines() int {
	if b.groupValid == nil {
		return b.arr.ValidCount()
	}
	n := 0
	for _, v := range b.groupValid {
		n += int(v)
	}
	return n
}

// DirtyLines is ValidLines for dirty (Modified) lines.
func (b *Bank) DirtyLines() int {
	if b.groupDirty == nil {
		return b.arr.DirtyCount()
	}
	n := 0
	for _, v := range b.groupDirty {
		n += int(v)
	}
	return n
}

// PendingRefreshWork reports how many sentry deadlines are registered
// (Refrint) — useful for tests and debugging.
func (b *Bank) PendingRefreshWork() int {
	if b.wheel == nil {
		return 0
	}
	return b.wheel.Len()
}
