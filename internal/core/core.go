// Package core implements the paper's contribution: the Refrint refresh
// machinery for eDRAM cache banks.
//
// A Bank couples one cache bank (package cache) with
//
//   - the eDRAM retention model (package edram),
//   - a time-based refresh policy — Periodic group refresh or Refrint
//     sentry-bit interrupts (Table 3.1),
//   - a data-based refresh policy — All, Valid, Dirty or WB(n,m) — including
//     the per-line Count maintenance and the decision logic of Figure 4.1,
//   - the port-occupancy accounting that makes refresh activity visible in
//     execution time (refresh interrupts take priority over demand requests;
//     periodic sweeps block the bank), and
//   - the decay rule: a line whose cells were not recharged within the
//     retention period has lost its data.
//
// Banks are used for every level of the hierarchy; an SRAM bank simply has
// no retention model and never refreshes, so the same code path serves the
// paper's full-SRAM baseline.
package core

import (
	"fmt"

	"refrint/internal/cache"
	"refrint/internal/config"
	"refrint/internal/edram"
	"refrint/internal/event"
	"refrint/internal/mem"
	"refrint/internal/stats"
)

// Hooks are the callbacks a Bank uses to interact with the rest of the
// hierarchy when its refresh policy writes back or invalidates a line.  The
// simulator wires these to the next-lower level, the coherence directory and
// the network model.  Either hook may be nil.
type Hooks struct {
	// Writeback is called when the policy writes a dirty line back to the
	// next lower level (the line stays in the cache, now clean).
	Writeback func(addr mem.LineAddr, now int64)
	// Invalidate is called when the policy invalidates a line.  wasDirty
	// reports whether the invalidated copy was dirty in THIS cache (the
	// policy only invalidates clean lines, so this is false for policy
	// invalidations, but decay can destroy dirty data).
	Invalidate func(addr mem.LineAddr, wasDirty bool, now int64)
}

// Bank is one refresh-managed cache bank.
type Bank struct {
	cacheCfg config.CacheConfig
	cell     config.CellConfig
	policy   config.Policy
	level    stats.Level

	arr   *cache.Cache
	ret   edram.Retention
	sched edram.PeriodicSchedule
	wheel *event.Wheel
	// sentryDeadline[idx] is the currently registered sentry deadline of the
	// line frame idx.  Wheel entries that do not match it are stale (the
	// line was touched, refilled or replaced after they were scheduled) and
	// are dropped when popped, so each frame has exactly one live entry.
	sentryDeadline []int64

	hooks Hooks
	st    *stats.Stats

	// portBusyUntil is the cycle up to which the bank's port is occupied by
	// refresh work.  Demand accesses arriving earlier wait.
	portBusyUntil int64
	// periodicFired counts how many group firings have been processed.
	periodicFired int64
	// clock is the bank-local time up to which refresh work has been
	// processed.
	clock int64
}

// NewBank builds a refresh-managed bank.
func NewBank(cacheCfg config.CacheConfig, cell config.CellConfig, policy config.Policy, level stats.Level, st *stats.Stats, hooks Hooks) *Bank {
	if err := policy.Validate(); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	b := &Bank{
		cacheCfg: cacheCfg,
		cell:     cell,
		policy:   policy,
		level:    level,
		arr:      cache.New(cacheCfg),
		ret:      edram.NewRetention(cell),
		hooks:    hooks,
		st:       st,
	}
	if b.Refreshable() {
		if err := b.ret.Validate(); err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		b.sched = edram.NewPeriodicSchedule(b.ret, cacheCfg.SubArrays, b.arr.NumLines())
		b.wheel = event.NewWheel(64)
		b.sentryDeadline = make([]int64, b.arr.NumLines())
		for i := range b.sentryDeadline {
			b.sentryDeadline[i] = -1
		}
	}
	return b
}

// Cache exposes the underlying array (tests and the hierarchy use it for
// probes that must not disturb refresh state).
func (b *Bank) Cache() *cache.Cache { return b.arr }

// Policy returns the refresh policy the bank runs.
func (b *Bank) Policy() config.Policy { return b.policy }

// Level returns the stats level this bank reports under.
func (b *Bank) Level() stats.Level { return b.level }

// Refreshable reports whether the bank is built from eDRAM and therefore
// needs refresh.
func (b *Bank) Refreshable() bool {
	return b.cell.Refreshable() && b.policy.Time != config.NoRefresh
}

// counters returns the stats counters for this bank's level.
func (b *Bank) counters() *stats.LevelCounters { return b.st.Level(b.level) }

// PortStart returns the earliest cycle at or after `now` at which a demand
// access can use the bank port, given pending refresh work.  It also records
// the stall in the level counters.
func (b *Bank) PortStart(now int64) int64 {
	if b.portBusyUntil <= now {
		return now
	}
	b.counters().RefreshStall += b.portBusyUntil - now
	return b.portBusyUntil
}

// occupyPort reserves one cycle of the bank port for refresh work happening
// at cycle `at` (or as soon after as the port is free) and returns the cycle
// the work occupies.
func (b *Bank) occupyPort(at int64) int64 {
	if b.portBusyUntil < at {
		b.portBusyUntil = at
	}
	cycle := b.portBusyUntil
	b.portBusyUntil++
	return cycle
}

// scheduleSentry registers the sentry-decay deadline of a line, replacing any
// previously registered deadline for the same frame.
func (b *Bank) scheduleSentry(idx int, l *mem.Line) {
	if b.wheel == nil || b.policy.Time != config.RefrintTime || idx < 0 {
		return
	}
	deadline := b.ret.SentryDeadline(l.LastRefresh)
	if b.sentryDeadline[idx] == deadline {
		return // already registered
	}
	b.sentryDeadline[idx] = deadline
	b.wheel.Schedule(deadline, int64(idx))
}

// resetCount re-arms the WB(n,m) budget of a line after a normal access,
// following Figure 4.1: dirty lines get n, clean lines get m.
func (b *Bank) resetCount(l *mem.Line) {
	if b.policy.Data != config.WBData {
		return
	}
	if l.Dirty() {
		l.Count = b.policy.N
	} else {
		l.Count = b.policy.M
	}
}

// Probe looks up addr for a demand access at cycle `now`.  If the line is
// present but its cells have decayed (possible only when the data policy let
// it lapse), the line is dropped and the probe misses.
func (b *Bank) Probe(addr mem.LineAddr, now int64) (*mem.Line, bool) {
	b.AdvanceTo(now)
	l, ok := b.arr.Probe(addr)
	if !ok {
		return nil, false
	}
	if b.Refreshable() && b.ret.Decayed(l.LastRefresh, now) {
		// Data lost.  Dirty data that decays silently would be a correctness
		// bug in a real system; the policies are designed never to let that
		// happen, and the counter lets tests assert it.
		b.counters().Decays++
		if b.hooks.Invalidate != nil {
			b.hooks.Invalidate(l.Tag, l.Dirty(), now)
		}
		l.Reset()
		return nil, false
	}
	return l, true
}

// Touch records a demand hit on a line: the access refreshes the cells and
// the sentry bit and re-arms the WB(n,m) count.
func (b *Bank) Touch(l *mem.Line, now int64) {
	b.arr.Touch(l, now)
	b.resetCount(l)
	if b.policy.Time == config.RefrintTime {
		b.scheduleSentry(b.arr.IndexOf(l), l)
	}
}

// Insert places a new line in the bank (a fill from the next lower level) and
// returns the frame plus the victim information exactly as cache.Insert does.
func (b *Bank) Insert(addr mem.LineAddr, state mem.State, now int64) (frame *mem.Line, victim mem.Line, evicted bool) {
	b.AdvanceTo(now)
	frame, victim, evicted = b.arr.Insert(addr, state, now)
	b.resetCount(frame)
	b.counters().Fills++
	if evicted {
		b.counters().Evictions++
	}
	if b.policy.Time == config.RefrintTime {
		b.scheduleSentry(b.arr.IndexOf(frame), frame)
	}
	return frame, victim, evicted
}

// Invalidate drops addr from the bank (coherence or inclusion), returning the
// old copy.
//
// Unlike Probe and Insert it does not advance the bank's refresh clock: the
// timestamp of a coherence operation belongs to the requesting core, whose
// clock may be far ahead of this bank's owner, and letting it drive this
// bank's refresh processing would charge future refresh work against the
// owner's next (earlier) access.
func (b *Bank) Invalidate(addr mem.LineAddr, now int64) (mem.Line, bool) {
	old, ok := b.arr.Invalidate(addr)
	if ok {
		b.counters().Invalidations++
	}
	return old, ok
}

// Peek looks up addr without advancing the bank's refresh clock and without
// decay handling.  Coherence operations initiated by other cores use it to
// read or adjust a remote cache's line state (their timestamps must not
// drive the remote bank's refresh processing).
func (b *Bank) Peek(addr mem.LineAddr) (*mem.Line, bool) {
	return b.arr.Probe(addr)
}

// AdvanceTo processes all refresh work with deadlines at or before `now`.
// It is idempotent and monotone: calling it with an earlier time is a no-op.
func (b *Bank) AdvanceTo(now int64) {
	if !b.Refreshable() || now <= b.clock {
		if now > b.clock {
			b.clock = now
		}
		return
	}
	switch b.policy.Time {
	case config.RefrintTime:
		b.advanceRefrint(now)
	case config.PeriodicTime:
		b.advancePeriodic(now)
	}
	b.clock = now
}

// advanceRefrint drains sentry interrupts due by `now`, in deadline order,
// applying the data policy to each interrupting line (Figure 4.1).  Stale
// entries (the line was accessed after the entry was scheduled, pushing its
// real deadline later) are re-registered at their true deadline; entries for
// lines that have since been invalidated or replaced are dropped.
func (b *Bank) advanceRefrint(now int64) {
	for {
		due := b.wheel.PopDue(now, -1)
		if len(due) == 0 {
			return
		}
		for _, entry := range due {
			idx := int(entry.ID)
			if b.sentryDeadline[idx] != entry.Cycle {
				// Stale: the frame was touched, refilled or replaced after
				// this entry was scheduled; the live entry for its current
				// deadline is elsewhere in the wheel.
				continue
			}
			b.sentryDeadline[idx] = -1
			l := b.arr.LineAt(idx)
			if !l.Valid() {
				// Invalid frames have no charge to preserve; their sentry
				// raises no further interrupts until the frame is refilled.
				continue
			}
			// A genuine sentry interrupt.
			b.st.SentryInterrupts++
			at := b.occupyPort(entry.Cycle)
			b.applyDataPolicy(idx, l, at)
		}
	}
}

// advancePeriodic performs the staggered group sweeps due by `now`.
func (b *Bank) advancePeriodic(now int64) {
	for {
		next := b.periodicFired
		group, cycle := b.sched.GroupAt(next)
		if cycle > now {
			return
		}
		b.periodicFired++
		b.st.PeriodicGroupScans++
		start, end := b.sched.GroupRange(group)
		// The sweep blocks the bank port for one cycle per line in the
		// group, starting at the firing time (Section 3.2 / 6.5).
		if b.portBusyUntil < cycle {
			b.portBusyUntil = cycle
		}
		b.portBusyUntil += b.sched.BlockCycles()
		for idx := start; idx < end; idx++ {
			l := b.arr.LineAt(idx)
			if !l.Valid() {
				if b.policy.RefreshesInvalid() {
					// The All reference policy refreshes even invalid frames.
					b.counters().Refreshes++
					b.st.PolicyRefreshes++
				}
				continue
			}
			b.applyDataPolicy(idx, l, cycle)
		}
	}
}

// applyDataPolicy executes the data-based refresh decision for one line that
// is due for refresh at cycle `at` (Figure 4.1 for WB(n,m); Table 3.1 for the
// others).
func (b *Bank) applyDataPolicy(idx int, l *mem.Line, at int64) {
	switch b.policy.Data {
	case config.AllData:
		b.refreshLine(idx, l, at)

	case config.ValidData:
		// Only valid lines reach this point; always refresh.
		b.refreshLine(idx, l, at)

	case config.DirtyData:
		if l.Dirty() {
			b.refreshLine(idx, l, at)
		} else {
			b.invalidateLine(l, at)
		}

	case config.WBData:
		switch {
		case l.Count >= 1:
			l.Count--
			b.refreshLine(idx, l, at)
		case l.Dirty():
			// Count exhausted on a dirty line: write it back, keep it as
			// valid clean, re-arm the clean budget.  The writeback itself
			// refreshes the line.
			b.writebackLine(idx, l, at)
		default:
			// Count exhausted on a valid clean line: let it go.
			b.invalidateLine(l, at)
		}
	}
}

// refreshLine recharges the cells and sentry bit of a line.
func (b *Bank) refreshLine(idx int, l *mem.Line, at int64) {
	l.LastRefresh = at
	l.Sentry = true
	b.counters().Refreshes++
	b.st.PolicyRefreshes++
	if b.policy.Time == config.RefrintTime {
		b.scheduleSentry(idx, l)
	}
}

// writebackLine implements the WB(n,m) "write back and keep clean" action.
func (b *Bank) writebackLine(idx int, l *mem.Line, at int64) {
	b.counters().Writebacks++
	b.st.PolicyWritebacks++
	if b.hooks.Writeback != nil {
		b.hooks.Writeback(l.Tag, at)
	}
	l.State = mem.Exclusive // valid clean
	l.Count = b.policy.M
	// The writeback read the line and rewrote it: the cells are recharged.
	l.LastRefresh = at
	l.Sentry = true
	if b.policy.Time == config.RefrintTime {
		b.scheduleSentry(idx, l)
	}
}

// invalidateLine implements the policy invalidation of a clean line.
func (b *Bank) invalidateLine(l *mem.Line, at int64) {
	b.counters().Invalidations++
	b.st.PolicyInvalidates++
	if b.hooks.Invalidate != nil {
		b.hooks.Invalidate(l.Tag, l.Dirty(), at)
	}
	l.Reset()
}

// Drain processes all refresh work up to endCycle (used at the end of a run
// so refresh energy for the whole execution is accounted).
func (b *Bank) Drain(endCycle int64) {
	b.AdvanceTo(endCycle)
}

// Flush invalidates every line and returns the dirty copies so the caller
// can write them back (end-of-run flush, Section 6 "at the end of the
// simulation all dirty data will be written back to main memory").
func (b *Bank) Flush() []mem.Line {
	return b.arr.Flush()
}

// PendingRefreshWork reports how many sentry deadlines are registered
// (Refrint) — useful for tests and debugging.
func (b *Bank) PendingRefreshWork() int {
	if b.wheel == nil {
		return 0
	}
	return b.wheel.Len()
}
