package core

import (
	"testing"

	"refrint/internal/config"
	"refrint/internal/mem"
	"refrint/internal/stats"
)

// testBankConfig is a tiny bank so tests can reason about individual lines:
// 64 lines, 4-way, 16 sets.
func testBankConfig() config.CacheConfig {
	return config.CacheConfig{
		Name:        "L3test",
		SizeBytes:   4 << 10,
		Ways:        4,
		LineSize:    64,
		AccessTime:  4,
		Write:       config.WriteBack,
		Shared:      true,
		Banks:       1,
		SubArrays:   4,
		SentryGroup: 16,
	}
}

// testCell returns an eDRAM cell with a 10_000-cycle retention and a
// 1_000-cycle guard band (sentry fires at 9_000 cycles after charge).
func testCell() config.CellConfig {
	return config.CellConfig{
		Tech:              config.EDRAM,
		LeakageRatio:      0.25,
		RetentionCycles:   10_000,
		SentryGuardCycles: 1_000,
	}
}

func sramCell() config.CellConfig {
	return config.CellConfig{Tech: config.SRAM, LeakageRatio: 1}
}

type hookLog struct {
	writebacks  []mem.LineAddr
	invalidates []mem.LineAddr
	dirtyInv    int
}

func (h *hookLog) hooks() Hooks {
	return Hooks{
		Writeback: func(addr mem.LineAddr, now int64) { h.writebacks = append(h.writebacks, addr) },
		Invalidate: func(addr mem.LineAddr, wasDirty bool, now int64) {
			h.invalidates = append(h.invalidates, addr)
			if wasDirty {
				h.dirtyInv++
			}
		},
	}
}

func newTestBank(t *testing.T, cell config.CellConfig, policy config.Policy) (*Bank, *stats.Stats, *hookLog) {
	t.Helper()
	st := stats.New(1)
	h := &hookLog{}
	b := NewBank(testBankConfig(), cell, policy, stats.L3, st, h.hooks())
	return b, st, h
}

func TestSRAMBankNeverRefreshes(t *testing.T) {
	b, st, _ := newTestBank(t, sramCell(), config.SRAMBaseline)
	if b.Refreshable() {
		t.Fatal("SRAM bank must not be refreshable")
	}
	b.Insert(0x1, mem.Modified, 0)
	b.AdvanceTo(1_000_000_000)
	if st.Level(stats.L3).Refreshes != 0 || st.PolicyRefreshes != 0 {
		t.Error("SRAM bank performed refreshes")
	}
	if _, ok := b.Probe(0x1, 1_000_000_000); !ok {
		t.Error("SRAM line must never decay")
	}
}

func TestRefrintValidRefreshesOnSentryDecay(t *testing.T) {
	b, st, _ := newTestBank(t, testCell(), config.RefrintValid)
	b.Insert(0x1, mem.Exclusive, 0)
	// Sentry retention = 9000 cycles.  Just before the deadline: no refresh.
	b.AdvanceTo(8_999)
	if st.Level(stats.L3).Refreshes != 0 {
		t.Fatalf("refreshed too early: %d", st.Level(stats.L3).Refreshes)
	}
	// At the deadline the interrupt fires and the line is refreshed.
	b.AdvanceTo(9_000)
	if st.Level(stats.L3).Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", st.Level(stats.L3).Refreshes)
	}
	if st.SentryInterrupts != 1 {
		t.Errorf("SentryInterrupts = %d, want 1", st.SentryInterrupts)
	}
	// The refresh recharges the line: the next interrupt is 9000 later.
	b.AdvanceTo(17_999)
	if st.Level(stats.L3).Refreshes != 1 {
		t.Error("second refresh fired too early")
	}
	b.AdvanceTo(18_000)
	if st.Level(stats.L3).Refreshes != 2 {
		t.Errorf("refreshes = %d, want 2", st.Level(stats.L3).Refreshes)
	}
	if _, ok := b.Probe(0x1, 18_100); !ok {
		t.Error("refreshed line must still be present")
	}
}

func TestAccessRechargesAndPostponesRefresh(t *testing.T) {
	// "Every access to a cache line refreshes both the cache line and its
	// Sentry bit" (Section 3.2): an access just before the sentry deadline
	// postpones the refresh by a full sentry period.
	b, st, _ := newTestBank(t, testCell(), config.RefrintValid)
	b.Insert(0x1, mem.Exclusive, 0)
	l, ok := b.Probe(0x1, 8_000)
	if !ok {
		t.Fatal("line missing")
	}
	b.Touch(l, 8_000)
	b.AdvanceTo(16_999) // old deadline (9000) and most of the new period pass
	if st.Level(stats.L3).Refreshes != 0 {
		t.Errorf("refreshes = %d, want 0 (access recharged the line)", st.Level(stats.L3).Refreshes)
	}
	b.AdvanceTo(17_000) // 8000 + 9000
	if st.Level(stats.L3).Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", st.Level(stats.L3).Refreshes)
	}
}

func TestRefrintDirtyInvalidatesCleanLines(t *testing.T) {
	b, st, h := newTestBank(t, testCell(), config.RefrintDirty)
	b.Insert(0x1, mem.Exclusive, 0) // clean
	b.Insert(0x2, mem.Modified, 0)  // dirty
	b.AdvanceTo(9_000)
	// Clean line invalidated, dirty line refreshed.
	if st.PolicyInvalidates != 1 {
		t.Errorf("PolicyInvalidates = %d, want 1", st.PolicyInvalidates)
	}
	if st.PolicyRefreshes != 1 {
		t.Errorf("PolicyRefreshes = %d, want 1", st.PolicyRefreshes)
	}
	if len(h.invalidates) != 1 || h.invalidates[0] != 0x1 {
		t.Errorf("invalidate hook calls = %v, want [0x1]", h.invalidates)
	}
	if _, ok := b.Probe(0x1, 9_100); ok {
		t.Error("clean line should be gone")
	}
	if _, ok := b.Probe(0x2, 9_100); !ok {
		t.Error("dirty line should survive")
	}
}

func TestWBPolicyFigure41Sequence(t *testing.T) {
	// WB(2,1): a dirty, untouched line is refreshed twice, then written back
	// (becoming valid clean with Count=m=1), refreshed once more as clean,
	// and finally invalidated.
	b, st, h := newTestBank(t, testCell(), config.RefrintWB(2, 1))
	b.Insert(0x1, mem.Modified, 0)

	b.AdvanceTo(9_000) // interrupt 1: Count 2 -> 1, refresh
	if st.PolicyRefreshes != 1 || st.PolicyWritebacks != 0 {
		t.Fatalf("after 1st interrupt: refreshes=%d writebacks=%d", st.PolicyRefreshes, st.PolicyWritebacks)
	}
	b.AdvanceTo(18_000) // interrupt 2: Count 1 -> 0, refresh
	if st.PolicyRefreshes != 2 || st.PolicyWritebacks != 0 {
		t.Fatalf("after 2nd interrupt: refreshes=%d writebacks=%d", st.PolicyRefreshes, st.PolicyWritebacks)
	}
	b.AdvanceTo(27_000) // interrupt 3: Count==0 && dirty -> write back
	if st.PolicyWritebacks != 1 {
		t.Fatalf("after 3rd interrupt: writebacks=%d, want 1", st.PolicyWritebacks)
	}
	if len(h.writebacks) != 1 || h.writebacks[0] != 0x1 {
		t.Errorf("writeback hook = %v", h.writebacks)
	}
	l, ok := b.Cache().Probe(0x1)
	if !ok || b.Cache().Dirty(l) {
		t.Fatalf("line should now be valid clean: %+v ok=%v", b.Cache().Line(l), ok)
	}
	if got := b.Cache().Count(l); got != 1 {
		t.Errorf("Count after writeback = %d, want m=1", got)
	}

	b.AdvanceTo(36_000) // interrupt 4: Count 1 -> 0, refresh (clean)
	if st.PolicyRefreshes != 3 {
		t.Fatalf("after 4th interrupt: refreshes=%d, want 3", st.PolicyRefreshes)
	}
	b.AdvanceTo(45_000) // interrupt 5: Count==0 && clean -> invalidate
	if st.PolicyInvalidates != 1 {
		t.Fatalf("after 5th interrupt: invalidates=%d, want 1", st.PolicyInvalidates)
	}
	if _, ok := b.Probe(0x1, 45_100); ok {
		t.Error("line should be invalidated")
	}
	// Total: exactly 3 refreshes + 1 writeback + 1 invalidation; nothing else.
	if st.Level(stats.L3).Refreshes != 3 || st.Level(stats.L3).Writebacks != 1 || st.Level(stats.L3).Invalidations != 1 {
		t.Errorf("level counters: %+v", *st.Level(stats.L3))
	}
}

func TestAccessResetsWBCount(t *testing.T) {
	b, st, _ := newTestBank(t, testCell(), config.RefrintWB(1, 1))
	b.Insert(0x1, mem.Modified, 0)
	b.AdvanceTo(9_000) // Count 1 -> 0, refresh
	if st.PolicyRefreshes != 1 {
		t.Fatalf("refreshes = %d", st.PolicyRefreshes)
	}
	// A normal access before the next interrupt resets Count to n.
	l, ok := b.Probe(0x1, 10_000)
	if !ok {
		t.Fatal("line missing")
	}
	b.Touch(l, 10_000)
	if got := b.Cache().Count(l); got != 1 {
		t.Fatalf("Count after access = %d, want n=1", got)
	}
	// Next interrupt (at 19_000): Count 1 -> 0, refresh (not writeback).
	b.AdvanceTo(19_000)
	if st.PolicyWritebacks != 0 {
		t.Errorf("writebacks = %d, want 0 (access re-armed the budget)", st.PolicyWritebacks)
	}
	if st.PolicyRefreshes != 2 {
		t.Errorf("refreshes = %d, want 2", st.PolicyRefreshes)
	}
}

func TestWBCountInitialisation(t *testing.T) {
	b, _, _ := newTestBank(t, testCell(), config.RefrintWB(7, 3))
	frame, _, _ := b.Insert(0x1, mem.Modified, 0)
	if got := b.Cache().Count(frame); got != 7 {
		t.Errorf("dirty fill Count = %d, want n=7", got)
	}
	frame2, _, _ := b.Insert(0x2, mem.Shared, 0)
	if got := b.Cache().Count(frame2); got != 3 {
		t.Errorf("clean fill Count = %d, want m=3", got)
	}
}

func TestPeriodicAllRefreshesEverything(t *testing.T) {
	b, st, _ := newTestBank(t, testCell(), config.PeriodicAll)
	b.Insert(0x1, mem.Exclusive, 0)
	// One full retention period: all 4 groups fire, covering all 64 frames.
	b.AdvanceTo(10_000)
	// All policy refreshes every frame, valid or not: 64 refreshes.
	if st.Level(stats.L3).Refreshes != 64 {
		t.Errorf("refreshes = %d, want 64 (every frame once per period)", st.Level(stats.L3).Refreshes)
	}
	if st.PeriodicGroupScans != 4 {
		t.Errorf("group scans = %d, want 4", st.PeriodicGroupScans)
	}
}

func TestPeriodicValidRefreshesOnlyValidLines(t *testing.T) {
	b, st, _ := newTestBank(t, testCell(), config.PeriodicValid)
	b.Insert(0x1, mem.Exclusive, 0)
	b.Insert(0x2, mem.Modified, 0)
	b.AdvanceTo(10_000)
	if st.Level(stats.L3).Refreshes != 2 {
		t.Errorf("refreshes = %d, want 2 (only the two valid lines)", st.Level(stats.L3).Refreshes)
	}
}

func TestPeriodicBlocksThePort(t *testing.T) {
	b, st, _ := newTestBank(t, testCell(), config.PeriodicAll)
	b.Insert(0x1, mem.Exclusive, 0)
	// First group firing is at 10_000/4 = 2_500 and blocks for 16 cycles
	// (64 lines / 4 groups).
	b.AdvanceTo(2_500)
	start := b.PortStart(2_500)
	if start != 2_516 {
		t.Errorf("PortStart during sweep = %d, want 2516", start)
	}
	if st.Level(stats.L3).RefreshStall != 16 {
		t.Errorf("RefreshStall = %d, want 16", st.Level(stats.L3).RefreshStall)
	}
	// Far from any sweep the port is free.
	if got := b.PortStart(3_000); got != 3_000 {
		t.Errorf("PortStart after sweep = %d, want 3000", got)
	}
}

func TestRefrintPortOccupancyIsFine(t *testing.T) {
	// Refrint interrupts occupy the port one cycle per line, at the line's
	// own deadline — far less blocking than a periodic sweep.
	b, _, _ := newTestBank(t, testCell(), config.RefrintValid)
	b.Insert(0x1, mem.Exclusive, 0)
	b.Insert(0x2, mem.Exclusive, 0)
	b.AdvanceTo(9_000)
	start := b.PortStart(9_000)
	if start > 9_002 {
		t.Errorf("PortStart = %d; two interrupts should occupy at most two cycles", start)
	}
}

func TestInvalidLinesRaiseNoInterrupts(t *testing.T) {
	b, st, _ := newTestBank(t, testCell(), config.RefrintValid)
	b.Insert(0x1, mem.Exclusive, 0)
	b.Invalidate(0x1)
	b.AdvanceTo(50_000)
	if st.PolicyRefreshes != 0 {
		t.Errorf("refreshes = %d, want 0 for an invalidated line", st.PolicyRefreshes)
	}
}

func TestReplacedFrameDoesNotInheritStaleDeadline(t *testing.T) {
	cfg := testBankConfig()
	b, st, _ := newTestBank(t, testCell(), config.RefrintValid)
	sets := b.Cache().Sets()
	// Fill one set completely, then insert one more line to force a
	// replacement.  The replaced frame's old sentry entry must not cause a
	// premature or duplicate refresh of the new occupant.
	for w := 0; w <= cfg.Ways; w++ {
		b.Insert(mem.LineAddr(1+w*sets), mem.Exclusive, int64(w))
	}
	b.AdvanceTo(9_000)
	// 4 lines remain valid (one was evicted); one interrupt each, scheduled
	// from their insert times (0..4), all due by 9_004.
	b.AdvanceTo(9_010)
	if got := st.Level(stats.L3).Refreshes; got != 4 {
		t.Errorf("refreshes = %d, want 4 (one per resident line)", got)
	}
}

func TestDecayDetectedOnProbe(t *testing.T) {
	// Build a bank whose policy never refreshes clean lines (Dirty policy)
	// and probe a clean line after its cell retention has passed without an
	// intervening AdvanceTo: the probe must treat it as decayed.
	st := stats.New(1)
	h := &hookLog{}
	b := NewBank(testBankConfig(), testCell(), config.RefrintDirty, stats.L3, st, h.hooks())
	b.Insert(0x1, mem.Exclusive, 0)
	// Advance only to just before the sentry deadline so the policy has not
	// yet had the chance to invalidate it, then jump past cell retention.
	b.AdvanceTo(8_000)
	l, ok := b.arr.Probe(0x1)
	if !ok {
		t.Fatal("line should still be physically present")
	}
	_ = l
	if _, ok := b.Probe(0x1, 50_000); ok {
		// The AdvanceTo inside Probe processes the sentry interrupt first,
		// which invalidates the clean line under the Dirty policy - so the
		// probe already misses.  Either way the line must not hit.
		t.Error("decayed/invalidated line must not hit")
	}
}

func TestFlushReturnsDirtyLines(t *testing.T) {
	b, _, _ := newTestBank(t, testCell(), config.RefrintWB(4, 4))
	b.Insert(0x1, mem.Modified, 0)
	b.Insert(0x2, mem.Exclusive, 0)
	dirty := b.FlushInto(nil)
	if len(dirty) != 1 || dirty[0].Tag != 0x1 {
		t.Errorf("FlushInto = %+v, want the single dirty line", dirty)
	}
	// The buffer is caller-owned; a second flush of a refilled bank reuses it.
	b.Insert(0x3, mem.Modified, 1)
	dirty = b.FlushInto(dirty[:0])
	if len(dirty) != 1 || dirty[0].Tag != 0x3 {
		t.Errorf("reused-buffer FlushInto = %+v", dirty)
	}
}

func TestPendingRefreshWork(t *testing.T) {
	b, _, _ := newTestBank(t, testCell(), config.RefrintValid)
	if b.PendingRefreshWork() != 0 {
		t.Error("fresh bank should have no pending work")
	}
	b.Insert(0x1, mem.Exclusive, 0)
	if b.PendingRefreshWork() != 1 {
		t.Errorf("PendingRefreshWork = %d, want 1", b.PendingRefreshWork())
	}
	sram, _, _ := newTestBank(t, sramCell(), config.SRAMBaseline)
	if sram.PendingRefreshWork() != 0 {
		t.Error("SRAM bank should never have pending refresh work")
	}
}

func TestPeriodicWBWritesBackDirtyLines(t *testing.T) {
	b, st, h := newTestBank(t, testCell(), config.PeriodicWB(1, 1))
	b.Insert(0x1, mem.Modified, 0)
	// Period 10_000, 4 groups; the line is in group 0 (set of tag 0x1 is 1,
	// so flat index 4..7 -> group 0, swept at 2_500).
	b.AdvanceTo(10_000) // sweep 1: Count 1->0, refresh
	if st.PolicyRefreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", st.PolicyRefreshes)
	}
	b.AdvanceTo(20_000) // sweep 2: Count==0 && dirty -> writeback
	if st.PolicyWritebacks != 1 || len(h.writebacks) != 1 {
		t.Fatalf("writebacks = %d, want 1", st.PolicyWritebacks)
	}
	b.AdvanceTo(30_000) // sweep 3: Count m=1 -> 0, refresh as clean
	b.AdvanceTo(40_000) // sweep 4: invalidate
	if st.PolicyInvalidates != 1 {
		t.Errorf("invalidates = %d, want 1", st.PolicyInvalidates)
	}
}

func TestRefreshStallOnlyWhenPortBusy(t *testing.T) {
	b, st, _ := newTestBank(t, testCell(), config.RefrintValid)
	b.Insert(0x1, mem.Exclusive, 0)
	if got := b.PortStart(100); got != 100 {
		t.Errorf("PortStart with idle port = %d, want 100", got)
	}
	if st.Level(stats.L3).RefreshStall != 0 {
		t.Error("no stall expected on an idle port")
	}
}

func TestNewBankPanicsOnBadPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid policy should panic")
		}
	}()
	NewBank(testBankConfig(), testCell(), config.Policy{Time: config.TimePolicy(9)}, stats.L3, stats.New(1), Hooks{})
}

func TestNilHooksAreSafe(t *testing.T) {
	st := stats.New(1)
	b := NewBank(testBankConfig(), testCell(), config.RefrintWB(0, 0), stats.L3, st, Hooks{})
	b.Insert(0x1, mem.Modified, 0)
	// With n=m=0 the first interrupt writes back immediately and the second
	// invalidates; both hooks are nil and must not panic.
	b.AdvanceTo(9_000)
	b.AdvanceTo(18_000)
	if st.PolicyWritebacks != 1 || st.PolicyInvalidates != 1 {
		t.Errorf("writebacks=%d invalidates=%d", st.PolicyWritebacks, st.PolicyInvalidates)
	}
}

func TestDirtyPolicyNeverWritesBackViaPolicy(t *testing.T) {
	// The Dirty policy keeps refreshing dirty lines forever; only WB(n,m)
	// generates policy writebacks.
	b, st, _ := newTestBank(t, testCell(), config.RefrintDirty)
	b.Insert(0x1, mem.Modified, 0)
	for c := int64(9_000); c <= 90_000; c += 9_000 {
		b.AdvanceTo(c)
	}
	if st.PolicyWritebacks != 0 {
		t.Errorf("Dirty policy produced %d writebacks", st.PolicyWritebacks)
	}
	if st.PolicyRefreshes < 10 {
		t.Errorf("dirty line should have been refreshed ~10 times, got %d", st.PolicyRefreshes)
	}
}

func TestRefrintRefreshCountTracksResidentLines(t *testing.T) {
	// Energy intuition check: with the Valid policy over one sentry period,
	// the number of refreshes equals the number of resident valid lines.
	b, st, _ := newTestBank(t, testCell(), config.RefrintValid)
	for i := 0; i < 10; i++ {
		b.Insert(mem.LineAddr(i*b.Cache().Sets()+i%b.Cache().Sets()), mem.Exclusive, 0)
	}
	valid := b.Cache().ValidCount()
	b.AdvanceTo(9_100)
	if got := st.Level(stats.L3).Refreshes; got != int64(valid) {
		t.Errorf("refreshes = %d, want %d (one per resident line per sentry period)", got, valid)
	}
}
