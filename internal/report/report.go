// Package report renders the sweep results as plain-text and CSV tables:
// the configuration tables of Chapter 5, the application binning of
// Table 6.1, and the per-figure data series of Figures 6.1-6.4.  The text
// output is what cmd/refrint-sweep and cmd/refrint-tables print, and what
// EXPERIMENTS.md embeds.
package report

import (
	"fmt"
	"sort"
	"strings"

	"refrint/internal/config"
	"refrint/internal/sweep"
	"refrint/internal/workload"
)

// Table31 renders the refresh-policy taxonomy of Table 3.1.
func Table31() string {
	var b strings.Builder
	b.WriteString("Table 3.1: Refresh policies\n")
	b.WriteString("  Time-based (when?)\n")
	b.WriteString("    Periodic  refresh periodically, a group of lines at a time\n")
	b.WriteString("    Refrint   refresh on Sentry-bit decay interrupts\n")
	b.WriteString("  Data-based (what?)\n")
	b.WriteString("    All       every line is refreshed\n")
	b.WriteString("    Valid     only valid lines are refreshed\n")
	b.WriteString("    Dirty     only dirty lines are refreshed; clean lines are invalidated\n")
	b.WriteString("    WB(n,m)   dirty lines refreshed n times then written back;\n")
	b.WriteString("              clean lines refreshed m times then invalidated\n")
	return b.String()
}

// Table51 renders the architecture parameters of the given configuration in
// the shape of Table 5.1.
func Table51(cfg config.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5.1: Architecture (%s preset)\n", cfg.Name)
	fmt.Fprintf(&b, "  Chip        : %d-core CMP @ %d MHz\n", cfg.Cores, cfg.FreqMHz)
	fmt.Fprintf(&b, "  Core        : %d-issue, miss overlap %d cycles\n", cfg.Core.IssueWidth, cfg.Core.MissOverlap)
	fmt.Fprintf(&b, "  IL1         : %d KB, %d-way, %d ns\n", cfg.IL1.SizeBytes>>10, cfg.IL1.Ways, cfg.IL1.AccessTime)
	fmt.Fprintf(&b, "  DL1         : %d KB, %d-way, %s, %d ns\n", cfg.DL1.SizeBytes>>10, cfg.DL1.Ways, cfg.DL1.Write, cfg.DL1.AccessTime)
	fmt.Fprintf(&b, "  L2          : %d KB, %d-way, %s, private, %d ns\n", cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.Write, cfg.L2.AccessTime)
	fmt.Fprintf(&b, "  L3          : %d x %d KB banks, %d-way, shared, %d ns\n", cfg.L3.Banks, cfg.L3.SizeBytes>>10, cfg.L3.Ways, cfg.L3.AccessTime)
	fmt.Fprintf(&b, "  Line size   : %d B\n", cfg.LineSize)
	fmt.Fprintf(&b, "  Network     : %dx%d torus, %d cycles/hop\n", cfg.NoC.Width, cfg.NoC.Height, cfg.NoC.HopLatency)
	fmt.Fprintf(&b, "  DRAM        : %d ns access, %d channels\n", cfg.DRAM.AccessTime, cfg.DRAM.Channels)
	fmt.Fprintf(&b, "  Coherence   : directory MESI at L3\n")
	return b.String()
}

// Table52 renders the SRAM/eDRAM cell comparison of Table 5.2.
func Table52() string {
	var b strings.Builder
	b.WriteString("Table 5.2: Baseline and proposed cells\n")
	b.WriteString("                    SRAM    eDRAM\n")
	b.WriteString("  Access time       1       1\n")
	b.WriteString("  Access energy     1       1\n")
	b.WriteString("  Leakage power     1       1/4\n")
	b.WriteString("  Refresh time      -       access time\n")
	b.WriteString("  Refresh energy    -       access energy\n")
	return b.String()
}

// Table53 renders the application list of Table 5.3.
func Table53() string {
	var b strings.Builder
	b.WriteString("Table 5.3: Applications\n")
	apps := workload.Apps()
	names := workload.AppNames()
	for _, name := range names {
		p := apps[name]
		fmt.Fprintf(&b, "  %-14s %-9s %s\n", p.Name, p.Suite, p.Input)
	}
	return b.String()
}

// Table54 renders the parameter sweep of Table 5.4.
func Table54() string {
	var b strings.Builder
	b.WriteString("Table 5.4: Parameter sweep\n")
	var rts []string
	for _, r := range config.RetentionTimesUS() {
		rts = append(rts, fmt.Sprintf("%g us", r))
	}
	fmt.Fprintf(&b, "  Retention times : %s\n", strings.Join(rts, ", "))
	fmt.Fprintf(&b, "  Timing policies : Periodic, Refrint\n")
	var labels []string
	for _, p := range config.DataPolicies(config.RefrintTime) {
		labels = append(labels, strings.TrimPrefix(p.String(), "R."))
	}
	fmt.Fprintf(&b, "  Data policies   : %s\n", strings.Join(labels, ", "))
	fmt.Fprintf(&b, "  Combinations    : %d (plus the full-SRAM baseline)\n", config.SweepSize()-1)
	return b.String()
}

// Table61 renders the application binning with the measured evidence.
func Table61(rows []sweep.Table61Row) string {
	var b strings.Builder
	b.WriteString("Table 6.1: Application binning\n")
	b.WriteString("  App             Class     Footprint/LLC  Visibility  L3 miss rate  DRAM accesses\n")
	sorted := append([]sweep.Table61Row(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Class != sorted[j].Class {
			return sorted[i].Class < sorted[j].Class
		}
		return sorted[i].App < sorted[j].App
	})
	for _, r := range sorted {
		fmt.Fprintf(&b, "  %-15s %-9s %12.2f  %9.2f  %11.1f%%  %12d\n",
			r.App, r.Class, r.FootprintRatio, r.Visibility, 100*r.L3MissRate, r.DRAMAccesses)
	}
	return b.String()
}

// Figure61 renders the per-level energy series (one row per bar).
func Figure61(bars []sweep.LevelEnergyBar) string {
	var b strings.Builder
	b.WriteString("Figure 6.1: L1, L2, L3 & DRAM energy (normalized to full-SRAM memory energy)\n")
	b.WriteString("  retention  policy        L1      L2      L3      DRAM    total\n")
	for _, bar := range bars {
		fmt.Fprintf(&b, "  %6gus   %-12s %6.3f  %6.3f  %6.3f  %6.3f  %6.3f\n",
			bar.Point.RetentionUS, bar.Point.Label(), bar.L1, bar.L2, bar.L3, bar.DRAM, bar.Total())
	}
	return b.String()
}

// Figure62 renders the per-component energy series for one application
// selection.
func Figure62(selector string, bars []sweep.ComponentEnergyBar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6.2 (%s): dynamic, leakage, refresh & DRAM energy (normalized to full-SRAM memory energy)\n", selector)
	b.WriteString("  retention  policy        dynamic leakage refresh DRAM    total\n")
	for _, bar := range bars {
		fmt.Fprintf(&b, "  %6gus   %-12s %6.3f  %6.3f  %6.3f  %6.3f  %6.3f\n",
			bar.Point.RetentionUS, bar.Point.Label(), bar.Dynamic, bar.Leakage, bar.Refresh, bar.DRAM, bar.Total())
	}
	return b.String()
}

// FigureScalar renders a Figure 6.3 or 6.4 series.
func FigureScalar(title, selector string, bars []sweep.ScalarBar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, selector)
	b.WriteString("  retention  policy        value\n")
	for _, bar := range bars {
		fmt.Fprintf(&b, "  %6gus   %-12s %6.3f\n", bar.Point.RetentionUS, bar.Point.Label(), bar.Value)
	}
	return b.String()
}

// CSV renders any of the figure series as comma-separated values with a
// header row, for plotting outside the tool.
func CSV(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure61CSV converts a Figure 6.1 series to CSV.
func Figure61CSV(bars []sweep.LevelEnergyBar) string {
	rows := make([][]string, 0, len(bars))
	for _, bar := range bars {
		rows = append(rows, []string{
			fmt.Sprintf("%g", bar.Point.RetentionUS), bar.Point.Label(),
			fmt.Sprintf("%.4f", bar.L1), fmt.Sprintf("%.4f", bar.L2),
			fmt.Sprintf("%.4f", bar.L3), fmt.Sprintf("%.4f", bar.DRAM),
			fmt.Sprintf("%.4f", bar.Total()),
		})
	}
	return CSV([]string{"retention_us", "policy", "L1", "L2", "L3", "DRAM", "total"}, rows)
}

// Figure62CSV converts a Figure 6.2 series to CSV.
func Figure62CSV(bars []sweep.ComponentEnergyBar) string {
	rows := make([][]string, 0, len(bars))
	for _, bar := range bars {
		rows = append(rows, []string{
			fmt.Sprintf("%g", bar.Point.RetentionUS), bar.Point.Label(),
			fmt.Sprintf("%.4f", bar.Dynamic), fmt.Sprintf("%.4f", bar.Leakage),
			fmt.Sprintf("%.4f", bar.Refresh), fmt.Sprintf("%.4f", bar.DRAM),
			fmt.Sprintf("%.4f", bar.Total()),
		})
	}
	return CSV([]string{"retention_us", "policy", "dynamic", "leakage", "refresh", "DRAM", "total"}, rows)
}

// ScalarCSV converts a Figure 6.3/6.4 series to CSV.
func ScalarCSV(metric string, bars []sweep.ScalarBar) string {
	rows := make([][]string, 0, len(bars))
	for _, bar := range bars {
		rows = append(rows, []string{
			fmt.Sprintf("%g", bar.Point.RetentionUS), bar.Point.Label(),
			fmt.Sprintf("%.4f", bar.Value),
		})
	}
	return CSV([]string{"retention_us", "policy", metric}, rows)
}
