package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"refrint/internal/config"
	"refrint/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSweep runs the reference sweep (QuickOptions, seed 1) once per test
// binary.
var goldenSweep = sync.OnceValues(func() (*sweep.Results, error) {
	return sweep.Execute(sweep.QuickOptions())
})

// TestGoldenReport pins the full plain-text report — the static chapter
// tables plus every rendered figure series of the QuickOptions sweep — so
// neither the formatting nor the numbers behind Table 6.1 / Figures 6.1-6.4
// can drift silently.
func TestGoldenReport(t *testing.T) {
	res, err := goldenSweep()
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}

	var b strings.Builder
	b.WriteString(Table31())
	b.WriteString("\n")
	b.WriteString(Table51(config.Scaled()))
	b.WriteString("\n")
	b.WriteString(Table52())
	b.WriteString("\n")
	b.WriteString(Table53())
	b.WriteString("\n")
	b.WriteString(Table54())
	b.WriteString("\n")
	b.WriteString(Table61(res.Table61()))
	b.WriteString("\n")
	b.WriteString(Figure61(res.Figure61()))
	for _, sel := range sweep.FigureSelectors {
		b.WriteString("\n")
		b.WriteString(Figure62(sel, res.Figure62(sel)))
	}
	for _, sel := range sweep.FigureSelectors {
		b.WriteString("\n")
		b.WriteString(FigureScalar("Figure 6.3: Total energy", sel, res.Figure63(sel)))
		b.WriteString("\n")
		b.WriteString(FigureScalar("Figure 6.4: Execution time", sel, res.Figure64(sel)))
	}

	compareGolden(t, "report_quick.golden", []byte(b.String()))
}

// TestGoldenCSV pins the CSV renderings of every figure series.
func TestGoldenCSV(t *testing.T) {
	res, err := goldenSweep()
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var b strings.Builder
	b.WriteString("# figure61\n")
	b.WriteString(Figure61CSV(res.Figure61()))
	b.WriteString("# figure62 all\n")
	b.WriteString(Figure62CSV(res.Figure62("all")))
	b.WriteString("# figure63 all\n")
	b.WriteString(ScalarCSV("total_energy", res.Figure63("all")))
	b.WriteString("# figure64 all\n")
	b.WriteString(ScalarCSV("execution_time", res.Figure64("all")))

	compareGolden(t, "csv_quick.golden", []byte(b.String()))
}

// compareGolden checks got against the named golden file, rewriting the file
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run `go test ./internal/report -run TestGolden -update` to create it): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (%d vs %d bytes); regenerate with -update and review the diff", name, len(got), len(want))
	}
}
