package report

import (
	"strings"
	"testing"

	"refrint/internal/config"
	"refrint/internal/sweep"
	"refrint/internal/workload"
)

func TestTable31MentionsEveryPolicy(t *testing.T) {
	out := Table31()
	for _, want := range []string{"Periodic", "Refrint", "All", "Valid", "Dirty", "WB(n,m)", "Sentry"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3.1 missing %q", want)
		}
	}
}

func TestTable51MatchesConfig(t *testing.T) {
	out := Table51(config.FullSize())
	for _, want := range []string{"16-core", "1000 MHz", "32 KB", "256 KB", "16 x 1024 KB", "4x4 torus", "directory MESI"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5.1 missing %q in:\n%s", want, out)
		}
	}
}

func TestTable52RatiosPresent(t *testing.T) {
	out := Table52()
	if !strings.Contains(out, "1/4") || !strings.Contains(out, "access energy") {
		t.Errorf("Table 5.2 missing cell ratios:\n%s", out)
	}
}

func TestTable53ListsAllApplications(t *testing.T) {
	out := Table53()
	for _, name := range workload.AppNames() {
		if !strings.Contains(out, name) {
			t.Errorf("Table 5.3 missing %q", name)
		}
	}
}

func TestTable54SweepSummary(t *testing.T) {
	out := Table54()
	for _, want := range []string{"50 us", "100 us", "200 us", "Periodic, Refrint", "WB(32,32)", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5.4 missing %q in:\n%s", want, out)
		}
	}
}

func TestTable61SortsByClass(t *testing.T) {
	rows := []sweep.Table61Row{
		{App: "Zeta", Class: workload.Class3, FootprintRatio: 0.1, Visibility: 0.1},
		{App: "Alpha", Class: workload.Class1, FootprintRatio: 2.0, Visibility: 0.9},
	}
	out := Table61(rows)
	if strings.Index(out, "Alpha") > strings.Index(out, "Zeta") {
		t.Error("Class 1 rows should precede Class 3 rows")
	}
}

func samplePoint() sweep.Point {
	return sweep.Point{RetentionUS: 50, Policy: config.RefrintWB(32, 32)}
}

func TestFigureRenderers(t *testing.T) {
	lvl := []sweep.LevelEnergyBar{{Point: samplePoint(), L1: 0.05, L2: 0.1, L3: 0.2, DRAM: 0.1}}
	out := Figure61(lvl)
	if !strings.Contains(out, "R.WB(32,32)") || !strings.Contains(out, "0.450") {
		t.Errorf("Figure 6.1 rendering wrong:\n%s", out)
	}

	comp := []sweep.ComponentEnergyBar{{Point: samplePoint(), Dynamic: 0.1, Leakage: 0.2, Refresh: 0.05, DRAM: 0.1}}
	out = Figure62("class1", comp)
	if !strings.Contains(out, "class1") || !strings.Contains(out, "0.450") {
		t.Errorf("Figure 6.2 rendering wrong:\n%s", out)
	}

	sc := []sweep.ScalarBar{{Point: samplePoint(), Value: 1.02}}
	out = FigureScalar("Figure 6.4: Execution time", "all", sc)
	if !strings.Contains(out, "1.020") || !strings.Contains(out, "Execution time") {
		t.Errorf("scalar figure rendering wrong:\n%s", out)
	}
}

func TestCSVRenderers(t *testing.T) {
	lvl := []sweep.LevelEnergyBar{{Point: samplePoint(), L1: 0.05, L2: 0.1, L3: 0.2, DRAM: 0.1}}
	csv := Figure61CSV(lvl)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV should have header + 1 row, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "retention_us,policy,L1") {
		t.Errorf("CSV header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "R.WB(32,32)") {
		t.Errorf("CSV row wrong: %q", lines[1])
	}

	comp := []sweep.ComponentEnergyBar{{Point: samplePoint(), Dynamic: 0.1, Leakage: 0.2, Refresh: 0.05, DRAM: 0.1}}
	if got := Figure62CSV(comp); !strings.Contains(got, "refresh") || !strings.Contains(got, "0.0500") {
		t.Errorf("Figure 6.2 CSV wrong:\n%s", got)
	}

	sc := []sweep.ScalarBar{{Point: samplePoint(), Value: 1.02}}
	if got := ScalarCSV("time", sc); !strings.Contains(got, "time") || !strings.Contains(got, "1.0200") {
		t.Errorf("scalar CSV wrong:\n%s", got)
	}
}

func TestCSVEscapesNothingButJoins(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}
