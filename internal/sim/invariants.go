package sim

import (
	"fmt"

	"refrint/internal/cache"
	"refrint/internal/core"
	"refrint/internal/mem"
)

// CheckInvariants validates the structural invariants the hierarchy is
// supposed to maintain at any quiescent point of a run.  It is used by the
// integration tests (and can be called from debugging sessions) to catch
// protocol or inclusion bugs that individual unit tests would miss.
//
// The invariants checked are:
//
//  1. Inclusion: every line valid in a tile's IL1/DL1 is also valid in that
//     tile's L2, and every line valid in a tile's L2 is valid in the line's
//     home L3 bank.
//  2. Directory/cache agreement: if the home directory records core C as a
//     sharer of a line, core C's L2 holds the line; conversely a line held
//     by an L2 is recorded by the directory.
//  3. Single writer: at most one private cache holds a given line in the
//     Modified state, and if one does, the directory records that core as
//     either the owner or the line's sole sharer.  (The directory folds
//     MESI's Exclusive state into SharedClean, so a silent E->M upgrade is
//     visible to it only as "single sharer"; see the package coherence
//     documentation.)
//  4. L1 cleanliness: no IL1/DL1 line is ever dirty (the DL1 is
//     write-through and the IL1 is read-only).
//
// It returns the first violation found, or nil.
func (s *System) CheckInvariants() error {
	for tileID, tile := range s.tiles {
		// 4. L1 lines are never dirty.
		for _, l1 := range []struct {
			name string
			bank *core.Bank
		}{{"IL1", tile.IL1}, {"DL1", tile.DL1}} {
			for _, line := range validLines(l1.bank) {
				if line.Dirty() {
					return fmt.Errorf("tile %d: %s line %#x is dirty", tileID, l1.name, line.Tag)
				}
				// 1a. L1 subset of L2.
				if _, ok := tile.L2.Peek(line.Tag); !ok {
					return fmt.Errorf("tile %d: %s line %#x not present in L2 (inclusion)", tileID, l1.name, line.Tag)
				}
			}
		}

		// 1b. L2 subset of the home L3; 2/3: directory agreement.
		for _, line := range validLines(tile.L2) {
			addr := line.Tag
			home := s.tiles[s.bankOf(addr)]
			if _, ok := home.L3.Peek(addr); !ok {
				return fmt.Errorf("tile %d: L2 line %#x not present in home L3 bank %d (inclusion)",
					tileID, addr, s.bankOf(addr))
			}
			entry := home.Dir.Lookup(addr)
			if entry == nil || !entry.HasSharer(tileID) {
				return fmt.Errorf("tile %d: L2 line %#x not recorded by the home directory", tileID, addr)
			}
			// A dirty private copy is legitimate either when the directory
			// recorded the write (owner == tile) or after a silent E->M
			// upgrade, in which case this tile must be the only sharer.
			if line.Dirty() && entry.Owner != tileID && entry.NumSharers() != 1 {
				return fmt.Errorf("tile %d: holds %#x Modified but directory owner is %d with %d sharers",
					tileID, addr, entry.Owner, entry.NumSharers())
			}
		}
	}

	// 2 (converse) and 3: every directory entry's sharers really hold the
	// line, and at most one of them holds it Modified.
	for bankID, tile := range s.tiles {
		for _, line := range validLines(tile.L3) {
			entry := tile.Dir.Lookup(line.Tag)
			if entry == nil {
				continue // no private copies; nothing to cross-check
			}
			modifiedHolders := 0
			for _, sharer := range entry.SharerList() {
				l2, ok := s.tiles[sharer].L2.Peek(line.Tag)
				if !ok {
					return fmt.Errorf("bank %d: directory lists core %d for %#x but its L2 does not hold it",
						bankID, sharer, line.Tag)
				}
				if s.tiles[sharer].L2.Dirty(l2) {
					modifiedHolders++
					if entry.Owner != sharer && entry.NumSharers() != 1 {
						return fmt.Errorf("bank %d: core %d holds %#x Modified but directory owner is %d",
							bankID, sharer, line.Tag, entry.Owner)
					}
				}
			}
			if modifiedHolders > 1 {
				return fmt.Errorf("bank %d: %d cores hold %#x Modified", bankID, modifiedHolders, line.Tag)
			}
		}
	}
	return nil
}

// validLines returns copies of all valid lines of a bank.
func validLines(b *core.Bank) []mem.Line {
	var out []mem.Line
	arr := b.Cache()
	arr.ForEachValid(func(f cache.Frame) {
		out = append(out, arr.Line(f))
	})
	return out
}
