package sim

import (
	"testing"

	"refrint/internal/config"
	"refrint/internal/mem"
	"refrint/internal/stats"
	"refrint/internal/workload"
)

// quickParams returns a small synthetic workload so individual sim tests run
// in milliseconds.  It is shaped like a Class 2 application (cache-resident,
// heavily shared).
func quickParams() workload.Params {
	return workload.Params{
		Name:               "quicktest",
		Suite:              "synthetic",
		Input:              "unit-test",
		FootprintLines:     4096,
		SharedFraction:     0.4,
		WriteFraction:      0.3,
		Locality:           0.6,
		WorkingWindow:      256,
		ComputePerMemOp:    8,
		MemOpsPerThread:    3_000,
		InstrFetchFraction: 0.05,
		CodeLines:          64,
		PaperClass:         workload.Class2,
	}
}

// largeParams is shaped like a Class 1 application (footprint exceeding the
// scaled LLC).
func largeParams() workload.Params {
	p := quickParams()
	p.Name = "quicktest-large"
	p.FootprintLines = 40_000
	p.SharedFraction = 0.35
	p.Locality = 0.4
	p.PaperClass = workload.Class1
	return p
}

func scaledSRAM() config.Config {
	return config.AsSRAM(config.Scaled())
}

func scaledEDRAM(p config.Policy, retentionUS float64) config.Config {
	return config.AsEDRAM(config.Scaled(), p, config.ScaledRetentionUS(retentionUS))
}

func runQuick(t *testing.T, cfg config.Config, params workload.Params) Result {
	t.Helper()
	s, err := New(cfg, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := scaledSRAM()
	cfg.Cores = 0
	if _, err := New(cfg, quickParams(), 1); err == nil {
		t.Error("invalid config should be rejected")
	}
	bad := quickParams()
	bad.FootprintLines = 0
	if _, err := New(scaledSRAM(), bad, 1); err == nil {
		t.Error("invalid workload should be rejected")
	}
}

func TestRunCompletesAllWork(t *testing.T) {
	cfg := scaledSRAM()
	params := quickParams()
	s, err := New(cfg, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The Scaled preset shrinks the per-thread quota; expectations follow
	// the workload the system actually runs.
	wantOps := s.Workload().MemOpsPerThread * int64(cfg.Cores)
	res := s.Run()
	if res.Stats.MemOps != wantOps {
		t.Errorf("MemOps = %d, want %d", res.Stats.MemOps, wantOps)
	}
	if res.Cycles <= 0 {
		t.Error("execution time must be positive")
	}
	if res.Stats.Instructions <= res.Stats.MemOps {
		t.Error("instruction count must include compute instructions")
	}
	if res.Policy != "SRAM" || res.RetentionUS != 0 {
		t.Errorf("result labels: %q %v", res.Policy, res.RetentionUS)
	}
	// Every memory op hits some L1.
	l1Lookups := res.Stats.Level(stats.IL1).Accesses() + res.Stats.Level(stats.DL1).Accesses()
	if l1Lookups != wantOps {
		t.Errorf("L1 lookups = %d, want %d", l1Lookups, wantOps)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cfg := scaledEDRAM(config.RefrintWB(4, 4), config.Retention50us)
	r1 := runQuick(t, cfg, quickParams())
	r2 := runQuick(t, cfg, quickParams())
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if r1.Stats.Level(stats.L3).Refreshes != r2.Stats.Level(stats.L3).Refreshes {
		t.Error("refresh counts differ between identical runs")
	}
	if r1.Energy.Total() != r2.Energy.Total() {
		t.Error("energy differs between identical runs")
	}
}

func TestSRAMBaselineHasNoRefresh(t *testing.T) {
	res := runQuick(t, scaledSRAM(), quickParams())
	if res.Stats.TotalOnChipRefreshes() != 0 {
		t.Errorf("SRAM run performed %d refreshes", res.Stats.TotalOnChipRefreshes())
	}
	if res.Energy.Refresh != 0 {
		t.Errorf("SRAM refresh energy = %v, want 0", res.Energy.Refresh)
	}
	if res.Stats.SentryInterrupts != 0 || res.Stats.PeriodicGroupScans != 0 {
		t.Error("SRAM run should have no refresh machinery activity")
	}
}

func TestEDRAMPerformsRefreshes(t *testing.T) {
	res := runQuick(t, scaledEDRAM(config.PeriodicAll, config.Retention50us), quickParams())
	if res.Stats.TotalOnChipRefreshes() == 0 {
		t.Error("eDRAM Periodic All run performed no refreshes")
	}
	if res.Energy.Refresh <= 0 {
		t.Error("refresh energy should be positive")
	}
	if res.Stats.PeriodicGroupScans == 0 {
		t.Error("periodic scheme should have swept groups")
	}
}

func TestRefrintUsesSentryInterrupts(t *testing.T) {
	res := runQuick(t, scaledEDRAM(config.RefrintValid, config.Retention50us), quickParams())
	if res.Stats.SentryInterrupts == 0 {
		t.Error("Refrint run raised no sentry interrupts")
	}
	if res.Stats.PeriodicGroupScans != 0 {
		t.Error("Refrint run should not use the periodic scheduler")
	}
}

func TestEDRAMLeaksLessThanSRAM(t *testing.T) {
	sram := runQuick(t, scaledSRAM(), quickParams())
	edram := runQuick(t, scaledEDRAM(config.RefrintWB(32, 32), config.Retention50us), quickParams())
	if edram.Energy.Leakage >= sram.Energy.Leakage {
		t.Errorf("eDRAM leakage %.3g should be well below SRAM leakage %.3g",
			edram.Energy.Leakage, sram.Energy.Leakage)
	}
}

func TestRefrintBeatsPeriodicOnRefreshes(t *testing.T) {
	// The interrupt-driven scheme refreshes each line only when it is about
	// to decay, so it performs no more refreshes than the periodic scheme
	// under the same data policy (Section 3.1).
	periodic := runQuick(t, scaledEDRAM(config.PeriodicValid, config.Retention50us), quickParams())
	refrint := runQuick(t, scaledEDRAM(config.RefrintValid, config.Retention50us), quickParams())
	if refrint.Stats.TotalOnChipRefreshes() > periodic.Stats.TotalOnChipRefreshes() {
		t.Errorf("Refrint refreshes (%d) exceed Periodic refreshes (%d)",
			refrint.Stats.TotalOnChipRefreshes(), periodic.Stats.TotalOnChipRefreshes())
	}
}

func TestPeriodicSlowerThanSRAM(t *testing.T) {
	// Periodic refresh blocks cache ports, so execution time grows relative
	// to the SRAM baseline (the paper reports 18% at 50us full size).
	sram := runQuick(t, scaledSRAM(), quickParams())
	periodic := runQuick(t, scaledEDRAM(config.PeriodicAll, config.Retention50us), quickParams())
	if periodic.Cycles <= sram.Cycles {
		t.Errorf("Periodic All (%d cycles) should be slower than SRAM (%d cycles)",
			periodic.Cycles, sram.Cycles)
	}
}

func TestRefrintSlowdownSmallerThanPeriodic(t *testing.T) {
	sram := runQuick(t, scaledSRAM(), quickParams())
	periodic := runQuick(t, scaledEDRAM(config.PeriodicAll, config.Retention50us), quickParams())
	refrint := runQuick(t, scaledEDRAM(config.RefrintWB(32, 32), config.Retention50us), quickParams())
	slowPeriodic := float64(periodic.Cycles) / float64(sram.Cycles)
	slowRefrint := float64(refrint.Cycles) / float64(sram.Cycles)
	if slowRefrint >= slowPeriodic {
		t.Errorf("Refrint slowdown %.3f should be below Periodic slowdown %.3f", slowRefrint, slowPeriodic)
	}
}

func TestWBPolicyCreatesDRAMTraffic(t *testing.T) {
	// Aggressive WB policies push data out of the chip, so DRAM accesses
	// should not decrease relative to the Valid policy (Section 6).
	valid := runQuick(t, scaledEDRAM(config.RefrintValid, config.Retention50us), largeParams())
	wb := runQuick(t, scaledEDRAM(config.RefrintWB(4, 4), config.Retention50us), largeParams())
	if wb.Stats.DRAMAccesses() < valid.Stats.DRAMAccesses() {
		t.Errorf("WB(4,4) DRAM accesses (%d) below Valid policy (%d)",
			wb.Stats.DRAMAccesses(), valid.Stats.DRAMAccesses())
	}
	if wb.Stats.PolicyWritebacks == 0 {
		t.Error("WB(4,4) performed no policy writebacks")
	}
}

func TestWBReducesRefreshesVersusValid(t *testing.T) {
	// The whole point of WB(n,m): evicting stale lines saves refreshes.
	valid := runQuick(t, scaledEDRAM(config.RefrintValid, config.Retention50us), largeParams())
	wb := runQuick(t, scaledEDRAM(config.RefrintWB(4, 4), config.Retention50us), largeParams())
	if wb.Stats.Level(stats.L3).Refreshes >= valid.Stats.Level(stats.L3).Refreshes {
		t.Errorf("WB(4,4) L3 refreshes (%d) should be below Valid (%d)",
			wb.Stats.Level(stats.L3).Refreshes, valid.Stats.Level(stats.L3).Refreshes)
	}
}

func TestLongerRetentionMeansFewerRefreshes(t *testing.T) {
	short := runQuick(t, scaledEDRAM(config.RefrintValid, config.Retention50us), quickParams())
	long := runQuick(t, scaledEDRAM(config.RefrintValid, config.Retention200us), quickParams())
	if long.Stats.TotalOnChipRefreshes() >= short.Stats.TotalOnChipRefreshes() {
		t.Errorf("200us refreshes (%d) should be below 50us refreshes (%d)",
			long.Stats.TotalOnChipRefreshes(), short.Stats.TotalOnChipRefreshes())
	}
}

func TestNoDirtyDataEverDecays(t *testing.T) {
	// Correctness invariant: the policies never let dirty data decay, for
	// any policy.  (Clean decays are also designed away, but dirty decay
	// would be silent data loss.)
	for _, p := range []config.Policy{
		config.PeriodicAll, config.PeriodicValid, config.RefrintValid,
		config.RefrintDirty, config.RefrintWB(4, 4), config.RefrintWB(32, 32),
	} {
		res := runQuick(t, scaledEDRAM(p, config.Retention50us), quickParams())
		var decays int64
		for l := stats.Level(0); l < stats.NumLevels; l++ {
			decays += res.Stats.Level(l).Decays
		}
		if decays != 0 {
			t.Errorf("%v: %d lines decayed while holding data", p, decays)
		}
	}
}

func TestCoherenceActivityOnSharedWorkload(t *testing.T) {
	res := runQuick(t, scaledSRAM(), quickParams())
	if res.Stats.CoherenceInvalidations == 0 {
		t.Error("a heavily shared workload should cause invalidations")
	}
	if res.Stats.CoherenceDowngrades == 0 {
		t.Error("a heavily shared workload should cause downgrades")
	}
	if res.Stats.NoCMessages == 0 || res.Stats.NoCHops == 0 {
		t.Error("network should have carried traffic")
	}
}

func TestEndOfRunFlushWritesDirtyData(t *testing.T) {
	res := runQuick(t, scaledSRAM(), quickParams())
	if res.Stats.FlushWritebacks == 0 {
		t.Error("a write-heavy run should leave dirty data for the final flush")
	}
}

func TestPerCoreCyclesPopulated(t *testing.T) {
	cfg := scaledSRAM()
	res := runQuick(t, cfg, quickParams())
	if len(res.Stats.PerCoreCycles) != cfg.Cores {
		t.Fatalf("PerCoreCycles length %d", len(res.Stats.PerCoreCycles))
	}
	var max int64
	for _, c := range res.Stats.PerCoreCycles {
		if c <= 0 {
			t.Error("every core should have advanced")
		}
		if c > max {
			max = c
		}
	}
	if max != res.Cycles {
		t.Errorf("Cycles %d != max per-core %d", res.Cycles, max)
	}
}

func TestPrivatePolicySelection(t *testing.T) {
	tests := []struct {
		l3   config.Policy
		want string
	}{
		{config.SRAMBaseline, "SRAM"},
		{config.PeriodicAll, "P.all"},
		{config.PeriodicValid, "P.valid"},
		{config.RefrintWB(32, 32), "R.valid"},
		{config.RefrintDirty, "R.valid"},
	}
	for _, tt := range tests {
		if got := privatePolicy(tt.l3).String(); got != tt.want {
			t.Errorf("privatePolicy(%v) = %q, want %q", tt.l3, got, tt.want)
		}
	}
}

func TestBankMapping(t *testing.T) {
	cfg := scaledSRAM()
	s, err := New(cfg, quickParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for line := 0; line < 64; line++ {
		b := s.bankOf(mem.LineAddr(line))
		if b < 0 || b >= cfg.L3.Banks {
			t.Fatalf("bankOf(%d) = %d out of range", line, b)
		}
		seen[b] = true
	}
	if len(seen) != cfg.L3.Banks {
		t.Errorf("only %d/%d banks used by consecutive lines", len(seen), cfg.L3.Banks)
	}
}
