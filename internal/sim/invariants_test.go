package sim

import (
	"testing"

	"refrint/internal/cache"
	"refrint/internal/config"
	"refrint/internal/mem"
)

// runAndCheck runs a configuration on the quick workload, checking the
// hierarchy invariants mid-run (before the destructive end-of-run flush).
func runAndCheck(t *testing.T, cfg config.Config) {
	t.Helper()
	cfg.EndOfRunFlush = false // keep the final state for inspection
	s, err := New(cfg, quickParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("%s: %v", cfg.Policy, err)
	}
}

func TestInvariantsHoldForSRAM(t *testing.T) {
	runAndCheck(t, scaledSRAM())
}

func TestInvariantsHoldForEveryPolicy(t *testing.T) {
	for _, p := range []config.Policy{
		config.PeriodicAll,
		config.PeriodicValid,
		config.RefrintValid,
		config.RefrintDirty,
		config.RefrintWB(4, 4),
		config.RefrintWB(32, 32),
	} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			runAndCheck(t, scaledEDRAM(p, config.Retention50us))
		})
	}
}

func TestInvariantsHoldForLargeFootprint(t *testing.T) {
	cfg := scaledEDRAM(config.RefrintWB(4, 4), config.Retention50us)
	cfg.EndOfRunFlush = false
	s, err := New(cfg, largeParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCheckInvariantsDetectsViolations(t *testing.T) {
	cfg := scaledSRAM()
	cfg.EndOfRunFlush = false
	s, err := New(cfg, quickParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("clean run should satisfy invariants: %v", err)
	}

	// Break inclusion on purpose: drop a line from an L2 while its L1 and
	// the directory still reference it.
	tile := s.Tile(0)
	var victim mem.LineAddr
	found := false
	dl1 := tile.DL1.Cache()
	dl1.ForEachValid(func(f cache.Frame) {
		if !found {
			victim = dl1.Tag(f)
			found = true
		}
	})
	if !found {
		t.Skip("tile 0 DL1 ended the run empty")
	}
	tile.L2.Cache().Invalidate(victim)
	if err := s.CheckInvariants(); err == nil {
		t.Error("breaking inclusion should be detected")
	}
}

func TestCheckInvariantsDetectsDirtyL1(t *testing.T) {
	cfg := scaledSRAM()
	cfg.EndOfRunFlush = false
	s, err := New(cfg, quickParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	tile := s.Tile(3)
	frame := cache.NoFrame
	dl1 := tile.DL1.Cache()
	dl1.ForEachValid(func(f cache.Frame) {
		if frame == cache.NoFrame {
			frame = f
		}
	})
	if frame == cache.NoFrame {
		t.Skip("tile 3 DL1 ended the run empty")
	}
	dl1.SetState(frame, mem.Modified)
	if err := s.CheckInvariants(); err == nil {
		t.Error("a dirty write-through DL1 line should be detected")
	}
}
