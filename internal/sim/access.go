package sim

import (
	"refrint/internal/cache"
	"refrint/internal/coherence"
	"refrint/internal/core"
	"refrint/internal/mem"
	"refrint/internal/stats"
)

// This file implements the transaction-atomic resolution of one memory
// reference through the hierarchy.  Latency is accumulated into the returned
// completion cycle; every state, coherence, inclusion and refresh side
// effect is applied immediately.

// access resolves one reference issued by core `tileID` at cycle `now` and
// returns the cycle at which the data is available to the core.
//
//refrint:alloc-free
func (s *System) access(tileID int, a mem.Access, now int64) int64 {
	line := s.geom.LineOf(a.Addr)
	switch a.Type {
	case mem.InstrFetch:
		return s.accessRead(tileID, line, now, true)
	case mem.Read:
		return s.accessRead(tileID, line, now, false)
	case mem.Write:
		return s.accessWrite(tileID, line, now)
	default:
		return now
	}
}

// l1For returns the L1 bank a reference uses.
func (t *Tile) l1For(ifetch bool) (*core.Bank, stats.Level) {
	if ifetch {
		return t.IL1, stats.IL1
	}
	return t.DL1, stats.DL1
}

// accessRead handles loads and instruction fetches.
//
//refrint:alloc-free
func (s *System) accessRead(tileID int, line mem.LineAddr, now int64, ifetch bool) int64 {
	tile := s.tiles[tileID]
	l1, l1Level := tile.l1For(ifetch)

	// L1 lookup.
	l1Time := s.dl1Time
	if ifetch {
		l1Time = s.il1Time
	}
	t := l1.PortStart(now) + l1Time
	s.countRead(l1Level)
	if frame, ok := l1.Probe(line, now); ok {
		s.st.Level(l1Level).Hits++
		l1.Touch(frame, t)
		return t
	}
	s.st.Level(l1Level).Misses++

	// L2 lookup.
	t = tile.L2.PortStart(t) + s.l2Time
	s.countRead(stats.L2)
	if frame, ok := tile.L2.Probe(line, now); ok {
		s.st.Level(stats.L2).Hits++
		tile.L2.Touch(frame, t)
		s.fillL1(tile, l1, line, t)
		return t
	}
	s.st.Level(stats.L2).Misses++

	// L3 lookup at the line's home bank, via the network.
	t, l3State := s.readFromL3(tileID, line, t, false)

	// Fill the private hierarchy.
	s.fillL2(tileID, line, l3State, t)
	s.fillL1(tile, l1, line, t)
	return t
}

// accessWrite handles stores.  The DL1 is write-through (Table 5.1): the
// store updates the DL1 copy (if any) but dirtiness lives in the L2, which
// is write-back.
//
//refrint:alloc-free
func (s *System) accessWrite(tileID int, line mem.LineAddr, now int64) int64 {
	tile := s.tiles[tileID]

	// DL1 lookup.
	t := tile.DL1.PortStart(now) + s.dl1Time
	s.countWrite(stats.DL1)
	dl1Frame, dl1Hit := tile.DL1.Probe(line, now)
	if dl1Hit {
		s.st.Level(stats.DL1).Hits++
		tile.DL1.Touch(dl1Frame, t)
	} else {
		s.st.Level(stats.DL1).Misses++
	}

	// The write is propagated to the L2 (write-through).
	t2 := tile.L2.PortStart(t) + s.l2Time
	s.countWrite(stats.L2)
	l2Frame, l2Hit := tile.L2.Probe(line, now)
	switch {
	case l2Hit && tile.L2.State(l2Frame) == mem.Modified:
		// Already owned dirty: silent.
		s.st.Level(stats.L2).Hits++
		tile.L2.Touch(l2Frame, t2)
		t = t2
	case l2Hit && tile.L2.State(l2Frame) == mem.Exclusive:
		// MESI silent upgrade E -> M.
		s.st.Level(stats.L2).Hits++
		tile.L2.SetState(l2Frame, mem.Modified)
		tile.L2.Touch(l2Frame, t2)
		t = t2
	case l2Hit && tile.L2.State(l2Frame) == mem.Shared:
		// Upgrade: the directory must invalidate the other sharers.
		s.st.Level(stats.L2).Hits++
		t = s.upgradeAtL3(tileID, line, t2)
		tile.L2.SetState(l2Frame, mem.Modified)
		tile.L2.Touch(l2Frame, t)
	default:
		// L2 miss: fetch the line with write intent from the L3.
		s.st.Level(stats.L2).Misses++
		t, _ = s.readFromL3(tileID, line, t2, true)
		s.fillL2(tileID, line, mem.Modified, t)
	}

	// Write-allocate into the DL1 so subsequent loads hit.
	if !dl1Hit {
		s.fillL1(tile, tile.DL1, line, t)
	}
	return t
}

// countRead / countWrite increment the lookup counters of a level.
func (s *System) countRead(level stats.Level)  { s.st.Level(level).Reads++ }
func (s *System) countWrite(level stats.Level) { s.st.Level(level).Writes++ }

// fillL1 inserts a line into an L1 after a fill from below.  L1 victims are
// always clean (write-through DL1, read-only IL1), so they are silently
// dropped.
func (s *System) fillL1(tile *Tile, l1 *core.Bank, line mem.LineAddr, now int64) {
	l1.Insert(line, mem.Shared, now)
}

// fillL2 inserts a line into the tile's L2 with the given state, handling
// the eviction of the victim: dirty victims are written back to their home
// L3 bank, clean victims are dropped, and in both cases inclusion removes
// the victim from the tile's L1s and the directory is told this core no
// longer holds it.
func (s *System) fillL2(tileID int, line mem.LineAddr, state mem.State, now int64) {
	tile := s.tiles[tileID]
	_, victim, evicted := tile.L2.Insert(line, state, now)
	if !evicted {
		return
	}
	vaddr := victim.Tag
	// Inclusion: the victim leaves the whole private hierarchy.
	tile.IL1.Invalidate(vaddr)
	tile.DL1.Invalidate(vaddr)
	home := s.tiles[s.bankOf(vaddr)]
	if victim.Dirty() {
		s.writebackToL3(tileID, vaddr, now)
		home.Dir.SharerWroteBack(vaddr, tileID)
	} else {
		home.Dir.SharerEvicted(vaddr, tileID)
	}
}

// readFromL3 performs the L3 (and, on a miss, DRAM) part of a fill on behalf
// of core tileID.  `write` selects the directory transition (read vs write
// ownership).  It returns the completion cycle and the MESI state the
// requester's L2 should install the line with.
func (s *System) readFromL3(tileID int, line mem.LineAddr, now int64, write bool) (int64, mem.State) {
	bank := s.bankOf(line)
	home := s.tiles[bank]

	// Request message to the home bank, then the bank access itself (which
	// may have to wait for refresh activity on the bank port).
	t := now + s.nocSend(tileID, bank, ctrlMsgBytes)
	t = home.L3.PortStart(t) + s.l3Time
	s.countRead(stats.L3)

	frame, hit := home.L3.Probe(line, t)
	if !hit {
		s.st.Level(stats.L3).Misses++
		// Fetch the line from DRAM and install it in the L3 bank.
		t = s.dramAccess(t, false)
		frame = s.installInL3(home, bank, line, t)
	} else {
		s.st.Level(stats.L3).Hits++
		home.L3.Touch(frame, t)
	}

	// Directory transition and any remote coherence work.
	var state mem.State
	if write {
		act := home.Dir.Write(line, tileID)
		t = s.applyCoherence(bank, tileID, line, act, frame, t)
		state = mem.Modified
	} else {
		act := home.Dir.Read(line, tileID)
		t = s.applyCoherence(bank, tileID, line, act, frame, t)
		// The line is installed Exclusive only when the directory granted
		// this core exclusive ownership (sole sharer, recorded as owner).
		if e := home.Dir.Lookup(line); e != nil && e.NumSharers() == 1 && e.Owner == tileID {
			state = mem.Exclusive
		} else {
			state = mem.Shared
		}
	}

	// Data response back to the requester.
	t += s.nocSend(bank, tileID, dataMsgBytes)
	return t, state
}

// upgradeAtL3 handles a store that hits a Shared line in the requester's L2:
// the directory invalidates every other sharer and grants ownership.
func (s *System) upgradeAtL3(tileID int, line mem.LineAddr, now int64) int64 {
	bank := s.bankOf(line)
	home := s.tiles[bank]
	t := now + s.nocSend(tileID, bank, ctrlMsgBytes)
	t = home.L3.PortStart(t) + s.l3Time
	s.countRead(stats.L3)
	frame, hit := home.L3.Probe(line, t)
	if hit {
		s.st.Level(stats.L3).Hits++
		home.L3.Touch(frame, t)
	} else {
		// The refresh policy dropped the L3 copy while an upper copy
		// existed; re-fetch it to restore inclusion.
		s.st.Level(stats.L3).Misses++
		t = s.dramAccess(t, false)
		frame = s.installInL3(home, bank, line, t)
	}
	act := home.Dir.Write(line, tileID)
	t = s.applyCoherence(bank, tileID, line, act, frame, t)
	t += s.nocSend(bank, tileID, ctrlMsgBytes) // ownership acknowledgement
	return t
}

// installInL3 inserts a line fetched from DRAM into an L3 bank, handling the
// inclusive eviction of the victim.
func (s *System) installInL3(home *Tile, bank int, line mem.LineAddr, now int64) cache.Frame {
	frame, victim, evicted := home.L3.Insert(line, mem.Exclusive, now)
	if evicted {
		vaddr := victim.Tag
		// Inclusive eviction: every private copy of the victim must go.
		act := home.Dir.InvalidateLine(vaddr)
		dirtyAbove := false
		for cs := act.Invalidates; !cs.Empty(); {
			var sharer int
			sharer, cs = cs.Pop()
			t := s.tiles[sharer]
			l2Old, hadL2 := t.L2.Invalidate(vaddr)
			t.IL1.Invalidate(vaddr)
			t.DL1.Invalidate(vaddr)
			s.st.CoherenceInvalidations++
			s.nocSend(bank, sharer, ctrlMsgBytes)
			if hadL2 && l2Old.Dirty() {
				s.nocSend(sharer, bank, dataMsgBytes)
				dirtyAbove = true
			}
		}
		if victim.Dirty() || dirtyAbove {
			s.dramAccess(now, true)
			s.st.Level(stats.L3).Writebacks++
		}
	}
	return frame
}

// applyCoherence turns a directory action into cache operations, network
// messages and latency.  `frame` is the L3 frame of the line (its state is
// updated when dirty data is written into the L3).
func (s *System) applyCoherence(bank, requester int, line mem.LineAddr, act coherence.Action, frame cache.Frame, now int64) int64 {
	t := now
	// Invalidate remote sharers (store or upgrade).  The invalidations are
	// sent in parallel; the requester waits for the farthest acknowledgement.
	var worst int64
	for cs := act.Invalidates; !cs.Empty(); {
		var sharer int
		sharer, cs = cs.Pop()
		if sharer == requester {
			continue
		}
		rt := s.nocSend(bank, sharer, ctrlMsgBytes)
		tile := s.tiles[sharer]
		l2Old, hadL2 := tile.L2.Invalidate(line)
		tile.IL1.Invalidate(line)
		tile.DL1.Invalidate(line)
		s.st.CoherenceInvalidations++
		if hadL2 && l2Old.Dirty() {
			// Dirty remote copy: its data comes back with the ack.
			rt += s.nocSend(sharer, bank, dataMsgBytes)
			s.tiles[bank].L3.SetState(frame, mem.Modified)
			s.st.CoherenceForwards++
		} else {
			rt += s.nocSend(sharer, bank, ctrlMsgBytes)
		}
		if rt > worst {
			worst = rt
		}
	}
	t += worst

	// Downgrade a remote owner (load of a modified line): the owner writes
	// its dirty data back to the L3 and keeps a shared copy.
	if act.DowngradeCore >= 0 && act.DowngradeCore != requester {
		owner := act.DowngradeCore
		rt := s.nocSend(bank, owner, ctrlMsgBytes)
		tile := s.tiles[owner]
		wasDirty := false
		if l2, ok := tile.L2.Peek(line); ok {
			wasDirty = tile.L2.Dirty(l2)
			tile.L2.SetState(l2, mem.Shared)
			tile.L2.Touch(l2, now)
		}
		s.st.CoherenceDowngrades++
		if wasDirty {
			// The owner pushes its dirty data back to the L3, which now
			// holds data newer than DRAM.
			rt += s.nocSend(owner, bank, dataMsgBytes)
			s.st.Level(stats.L2).Writebacks++
			s.st.CoherenceForwards++
			s.tiles[bank].L3.SetState(frame, mem.Modified)
		} else {
			rt += s.nocSend(owner, bank, ctrlMsgBytes)
		}
		t += rt
	}
	return t
}
