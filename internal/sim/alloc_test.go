//go:build !race

// The race runtime instruments allocation accounting, so the AllocsPerRun
// assertions here only run in the plain test suite (the tier-1 gate).
package sim

import (
	"testing"

	"refrint/internal/config"
	"refrint/internal/workload"
)

// steadyStateParams is quickParams with an effectively unbounded op quota so
// a driver can warm the system up and then measure without exhausting any
// thread's reference stream.
func steadyStateParams() workload.Params {
	p := quickParams()
	p.Name = "alloc-steady"
	p.MemOpsPerThread = 1 << 40
	return p
}

// steadyDriver builds a System and returns a function that issues one
// reference per core through the full access path, mirroring the per-op
// work of Run (compute gap, access resolution, completion accounting).
func steadyDriver(t testing.TB, cfg config.Config) func() {
	t.Helper()
	s, err := New(cfg, steadyStateParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return func() {
		for tileID := range s.tiles {
			gen := s.app.Thread(tileID)
			a, ok := gen.Next()
			if !ok {
				t.Fatal("steady-state generator exhausted")
			}
			tile := s.tiles[tileID]
			tile.Core.Compute(a.Gap)
			done := s.access(tileID, a, tile.Core.Now())
			tile.Core.CompleteMemOp(done)
		}
	}
}

// TestSteadyStateAccessZeroAllocs asserts that once caches, the directory
// and the refresh machinery have warmed up, resolving a memory reference
// through the hierarchy performs zero heap allocations — for the SRAM
// baseline, the conventional Periodic All scheme, and the paper's Refrint
// WB policy (which exercises the sentry wheel on every touch).
func TestSteadyStateAccessZeroAllocs(t *testing.T) {
	configs := []struct {
		name string
		cfg  config.Config
	}{
		{"SRAM", scaledSRAM()},
		{"PeriodicAll", scaledEDRAM(config.PeriodicAll, config.Retention50us)},
		{"RefrintWB", scaledEDRAM(config.RefrintWB(32, 32), config.Retention50us)},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			step := steadyDriver(t, tc.cfg)
			// Warm up: fill the caches, the directory table and the wheel's
			// ring so growth-type allocations are behind us.
			for i := 0; i < 4000; i++ {
				step()
			}
			if avg := testing.AllocsPerRun(50, step); avg != 0 {
				t.Errorf("steady-state access allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}

// BenchmarkAccessSteadyState measures the per-memory-op cost of the hot
// path in steady state (construction and warm-up excluded), reporting
// allocations so the zero-allocation property is visible in benchmark
// output.  One iteration resolves one reference per core.
func BenchmarkAccessSteadyState(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"SRAM", scaledSRAM()},
		{"PeriodicAll", scaledEDRAM(config.PeriodicAll, config.Retention50us)},
		{"RefrintWB32", scaledEDRAM(config.RefrintWB(32, 32), config.Retention50us)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			step := steadyDriver(b, tc.cfg)
			for i := 0; i < 2000; i++ {
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}
