package sim

import (
	"testing"

	"refrint/internal/config"
	"refrint/internal/core"
	"refrint/internal/stats"
)

// TestGroupOccupancyCountersStayExact runs full simulations under every
// periodic policy and cross-checks each bank's incremental valid/dirty
// occupancy counters (which advancePeriodic relies on to skip sweep work)
// against a ground-truth scan of the array.  A desync here silently changes
// refresh counts and therefore the golden energy series.
func TestGroupOccupancyCountersStayExact(t *testing.T) {
	policies := []config.Policy{
		config.PeriodicAll,
		config.PeriodicValid,
		{Time: config.PeriodicTime, Data: config.DirtyData},
		config.PeriodicWB(4, 4),
		config.PeriodicWB(1, 1),
	}
	check := func(t *testing.T, label string, tile int, b *core.Bank) {
		t.Helper()
		if got, want := b.ValidLines(), b.Cache().ValidCount(); got != want {
			t.Errorf("tile %d %s: tracked %d valid lines, ground truth %d", tile, label, got, want)
		}
		if got, want := b.DirtyLines(), b.Cache().DirtyCount(); got != want {
			t.Errorf("tile %d %s: tracked %d dirty lines, ground truth %d", tile, label, got, want)
		}
	}
	for _, p := range policies {
		t.Run(p.String(), func(t *testing.T) {
			cfg := scaledEDRAM(p, config.Retention50us)
			s, err := New(cfg, quickParams(), 1)
			if err != nil {
				t.Fatal(err)
			}
			// Skip the end-of-run flush so the banks are checked in the
			// organically-reached state, not the all-empty one.
			s.cfg.EndOfRunFlush = false
			s.Run()
			for i, tile := range s.tiles {
				check(t, "IL1", i, tile.IL1)
				check(t, "DL1", i, tile.DL1)
				check(t, "L2", i, tile.L2)
				check(t, "L3", i, tile.L3)
			}
		})
	}
}

// TestSRAMBankOccupancyAccessors covers the scan fallback of the accessors
// (SRAM banks track no group counters).
func TestSRAMBankOccupancyAccessors(t *testing.T) {
	s, err := New(scaledSRAM(), quickParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s.cfg.EndOfRunFlush = false
	s.Run()
	b := s.tiles[0].L2
	if b.ValidLines() != b.Cache().ValidCount() || b.DirtyLines() != b.Cache().DirtyCount() {
		t.Error("fallback accessors disagree with the array scan")
	}
	if b.ValidLines() == 0 {
		t.Error("a completed run should leave resident lines")
	}
	_ = stats.L2
}
