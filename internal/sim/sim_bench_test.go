package sim

import (
	"testing"

	"refrint/internal/config"
)

func benchRun(b *testing.B, cfg config.Config) {
	b.Helper()
	params := quickParams()
	var cycles int64
	for i := 0; i < b.N; i++ {
		s, err := New(cfg, params, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		res := s.Run()
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkRunSRAM measures end-to-end simulation throughput for the SRAM
// baseline on the small synthetic test workload.
func BenchmarkRunSRAM(b *testing.B) { benchRun(b, scaledSRAM()) }

// BenchmarkRunPeriodicAll measures the same workload under the conventional
// eDRAM Periodic-All scheme (adds the group-sweep machinery).
func BenchmarkRunPeriodicAll(b *testing.B) {
	benchRun(b, scaledEDRAM(config.PeriodicAll, config.Retention50us))
}

// BenchmarkRunRefrintWB32 measures the same workload under the paper's best
// policy (adds the sentry-interrupt machinery).
func BenchmarkRunRefrintWB32(b *testing.B) {
	benchRun(b, scaledEDRAM(config.RefrintWB(32, 32), config.Retention50us))
}
