package sim

import (
	"refrint/internal/energy"
	"refrint/internal/stats"
)

// Result is the outcome of one simulation run.
type Result struct {
	App    string
	Policy string
	// RetentionUS is the eDRAM retention time in microseconds (0 for SRAM).
	RetentionUS float64
	Stats       *stats.Stats
	Energy      energy.Breakdown
	// Cycles is the execution time (slowest core).
	Cycles int64
}

// coreEntry orders cores by their local time in the run loop.
type coreEntry struct {
	tile int
	time int64
}

// coreHeap is a typed binary min-heap over coreEntry, ordered by time.  It
// replaces container/heap on the run loop's hottest edge: the stdlib API
// boxes every pushed and popped entry through `any`, which costs one heap
// allocation per simulated memory operation.  The sift routines mirror
// container/heap's up/down exactly (same comparisons, same swap order), so
// the pop order — including how ties between equal local clocks resolve —
// is bit-identical to the previous implementation and the golden figure
// series are unchanged.
type coreHeap []coreEntry

func (h coreHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

func (h *coreHeap) push(e coreEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *coreHeap) pop() coreEntry {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	e := old[n]
	*h = old[:n]
	return e
}

func (h coreHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[j].time >= h[i].time {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h coreHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].time < h[j1].time {
			j = j2 // = 2*i + 2  // right child
		}
		if h[j].time >= h[i].time {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Run executes the application to completion and returns the result.
//
// The run loop repeatedly picks the core with the smallest local clock,
// lets it execute its compute gap and issue its next memory reference, and
// resolves that reference atomically through the hierarchy.  Processing
// cores in local-time order keeps the interleaving of references from
// different cores consistent with their timing, which is what the refresh
// policies and the coherence protocol observe.
func (s *System) Run() Result {
	h := make(coreHeap, 0, len(s.tiles))
	for i := range s.tiles {
		h = append(h, coreEntry{tile: i, time: 0})
	}
	h.init()

	for len(h) > 0 {
		entry := h.pop()
		tile := s.tiles[entry.tile]
		gen := s.app.Thread(entry.tile)

		a, ok := gen.Next()
		if !ok {
			tile.Core.Finish()
			continue
		}
		// Non-memory instructions preceding the reference.
		tile.Core.Compute(a.Gap)
		issueAt := tile.Core.Now()
		doneAt := s.access(entry.tile, a, issueAt)
		tile.Core.CompleteMemOp(doneAt)

		h.push(coreEntry{tile: entry.tile, time: tile.Core.Now()})
	}

	return s.finish()
}

// finish drains refresh work to the end of the run, performs the end-of-run
// flush of dirty data, fills in the aggregate counters and computes energy.
func (s *System) finish() Result {
	// Execution time = slowest core.
	var end int64
	for i, tile := range s.tiles {
		c := tile.Core.Now()
		s.st.PerCoreCycles[i] = c
		if c > end {
			end = c
		}
	}
	s.st.Cycles = end

	// Refresh activity continues until the last core finishes.
	for _, tile := range s.tiles {
		tile.IL1.Drain(end)
		tile.DL1.Drain(end)
		tile.L2.Drain(end)
		tile.L3.Drain(end)
	}

	// Instructions and memory operations.
	for _, tile := range s.tiles {
		s.st.Instructions += tile.Core.Instructions()
		s.st.MemOps += tile.Core.MemOps()
	}

	// End-of-run flush: all dirty on-chip data is written back to DRAM
	// (Section 6: "we assume that at the end of the simulation all dirty
	// data will be written back to main memory").
	if s.cfg.EndOfRunFlush {
		for _, tile := range s.tiles {
			s.st.FlushWritebacks += tile.L2.FlushCount()
			s.st.FlushWritebacks += tile.L3.FlushCount()
			tile.IL1.FlushCount()
			tile.DL1.FlushCount()
		}
	}

	model := energy.NewModel(energy.NewParameters(s.cfg))
	breakdown := model.Compute(s.st)

	retention := 0.0
	if s.cfg.Cell.Refreshable() {
		retention = float64(s.cfg.Cell.RetentionCycles) / float64(s.cfg.FreqMHz)
	}
	return Result{
		App:         s.app.Params().Name,
		Policy:      s.cfg.Policy.String(),
		RetentionUS: retention,
		Stats:       s.st,
		Energy:      breakdown,
		Cycles:      end,
	}
}
