package sim

import (
	"container/heap"

	"refrint/internal/energy"
	"refrint/internal/stats"
)

// Result is the outcome of one simulation run.
type Result struct {
	App    string
	Policy string
	// RetentionUS is the eDRAM retention time in microseconds (0 for SRAM).
	RetentionUS float64
	Stats       *stats.Stats
	Energy      energy.Breakdown
	// Cycles is the execution time (slowest core).
	Cycles int64
}

// coreEntry orders cores by their local time in the run loop.
type coreEntry struct {
	tile int
	time int64
}

type coreHeap []coreEntry

func (h coreHeap) Len() int           { return len(h) }
func (h coreHeap) Less(i, j int) bool { return h[i].time < h[j].time }
func (h coreHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x any)        { *h = append(*h, x.(coreEntry)) }
func (h *coreHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run executes the application to completion and returns the result.
//
// The run loop repeatedly picks the core with the smallest local clock,
// lets it execute its compute gap and issue its next memory reference, and
// resolves that reference atomically through the hierarchy.  Processing
// cores in local-time order keeps the interleaving of references from
// different cores consistent with their timing, which is what the refresh
// policies and the coherence protocol observe.
func (s *System) Run() Result {
	h := make(coreHeap, 0, len(s.tiles))
	for i := range s.tiles {
		h = append(h, coreEntry{tile: i, time: 0})
	}
	heap.Init(&h)

	for h.Len() > 0 {
		entry := heap.Pop(&h).(coreEntry)
		tile := s.tiles[entry.tile]
		gen := s.app.Thread(entry.tile)

		a, ok := gen.Next()
		if !ok {
			tile.Core.Finish()
			continue
		}
		// Non-memory instructions preceding the reference.
		tile.Core.Compute(a.Gap)
		issueAt := tile.Core.Now()
		doneAt := s.access(entry.tile, a, issueAt)
		tile.Core.CompleteMemOp(doneAt)

		heap.Push(&h, coreEntry{tile: entry.tile, time: tile.Core.Now()})
	}

	return s.finish()
}

// finish drains refresh work to the end of the run, performs the end-of-run
// flush of dirty data, fills in the aggregate counters and computes energy.
func (s *System) finish() Result {
	// Execution time = slowest core.
	var end int64
	for i, tile := range s.tiles {
		c := tile.Core.Now()
		s.st.PerCoreCycles[i] = c
		if c > end {
			end = c
		}
	}
	s.st.Cycles = end

	// Refresh activity continues until the last core finishes.
	for _, tile := range s.tiles {
		tile.IL1.Drain(end)
		tile.DL1.Drain(end)
		tile.L2.Drain(end)
		tile.L3.Drain(end)
	}

	// Instructions and memory operations.
	for _, tile := range s.tiles {
		s.st.Instructions += tile.Core.Instructions()
		s.st.MemOps += tile.Core.MemOps()
	}

	// End-of-run flush: all dirty on-chip data is written back to DRAM
	// (Section 6: "we assume that at the end of the simulation all dirty
	// data will be written back to main memory").
	if s.cfg.EndOfRunFlush {
		for _, tile := range s.tiles {
			s.st.FlushWritebacks += int64(len(tile.L2.Flush()))
			s.st.FlushWritebacks += int64(len(tile.L3.Flush()))
			tile.IL1.Flush()
			tile.DL1.Flush()
		}
	}

	model := energy.NewModel(energy.NewParameters(s.cfg))
	breakdown := model.Compute(s.st)

	retention := 0.0
	if s.cfg.Cell.Refreshable() {
		retention = float64(s.cfg.Cell.RetentionCycles) / float64(s.cfg.FreqMHz)
	}
	return Result{
		App:         s.app.Params().Name,
		Policy:      s.cfg.Policy.String(),
		RetentionUS: retention,
		Stats:       s.st,
		Energy:      breakdown,
		Cycles:      end,
	}
}
