// Package sim assembles the complete simulated chip — cores, private IL1/DL1
// and L2 caches, the banked shared L3 with its MESI directory, the torus
// interconnect, the DRAM channel and the refresh controllers of package core
// — and runs one application through it, producing the counters package
// stats defines and the energy breakdown package energy computes from them.
//
// The memory model is transaction-atomic (DESIGN.md section 4.1): each
// memory reference is resolved through the hierarchy in one pass, with
// latencies accumulated from per-level access times, NoC hops, DRAM channel
// contention and refresh-induced port blocking, and with all coherence and
// inclusion side effects applied at resolution time.
package sim

import (
	"fmt"

	"refrint/internal/coherence"
	"refrint/internal/config"
	"refrint/internal/core"
	"refrint/internal/cpu"
	"refrint/internal/dram"
	"refrint/internal/mem"
	"refrint/internal/noc"
	"refrint/internal/stats"
	"refrint/internal/workload"
)

// Message payload sizes in bytes used for NoC traffic accounting.
const (
	ctrlMsgBytes = 8  // request, invalidation, ack
	dataMsgBytes = 72 // 64-byte line + header
)

// Tile is one node of the chip: a core, its private caches and one bank of
// the shared L3.
type Tile struct {
	Core *cpu.Core
	IL1  *core.Bank
	DL1  *core.Bank
	L2   *core.Bank
	L3   *core.Bank // the L3 bank co-located with this tile
	Dir  *coherence.Directory
}

// System is the complete simulated chip running one application.
type System struct {
	cfg   config.Config
	app   *workload.App
	tiles []*Tile
	net   *noc.Torus
	mem   *dram.DRAM
	geom  mem.LineGeometry
	st    *stats.Stats

	// l1l2Policy is the refresh policy private caches run: the paper always
	// runs L1 and L2 with the Valid data policy and applies the swept data
	// policy only at L3 (Section 6.2).
	l1l2Policy config.Policy

	// Per-access constants hoisted out of the config structs so the access
	// path does not copy a CacheConfig per lookup.
	il1Time, dl1Time, l2Time, l3Time int64
	hopLatency                       int64
	flitsCtrl, flitsData             int64
	bankMask                         int // L3.Banks-1 when a power of two, else -1
}

// New builds a System for one application under one configuration.
func New(cfg config.Config, app workload.Params, seed int64) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	params := workload.ForConfig(app, cfg)
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	s := &System{
		cfg:  cfg,
		app:  workload.NewApp(params, cfg, seed),
		net:  noc.New(cfg.NoC),
		mem:  dram.New(cfg.DRAM),
		geom: cfg.Geometry(),
		st:   stats.New(cfg.Cores),
	}
	s.l1l2Policy = privatePolicy(cfg.Policy)
	s.il1Time = cfg.IL1.AccessTime
	s.dl1Time = cfg.DL1.AccessTime
	s.l2Time = cfg.L2.AccessTime
	s.l3Time = cfg.L3.AccessTime
	s.hopLatency = cfg.NoC.HopLatency
	s.flitsCtrl = int64(s.net.Flits(ctrlMsgBytes))
	s.flitsData = int64(s.net.Flits(dataMsgBytes))
	s.bankMask = -1
	if b := cfg.L3.Banks; b > 0 && b&(b-1) == 0 {
		s.bankMask = b - 1
	}

	s.tiles = make([]*Tile, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		tile := &Tile{
			Core: cpu.New(i, cfg.Core),
			Dir:  coherence.New(cfg.Cores),
		}
		tile.IL1 = core.NewBank(cfg.IL1, cfg.Cell, s.l1l2Policy, stats.IL1, s.st, s.l1Hooks(i))
		tile.DL1 = core.NewBank(cfg.DL1, cfg.Cell, s.l1l2Policy, stats.DL1, s.st, s.l1Hooks(i))
		tile.L2 = core.NewBank(cfg.L2, cfg.Cell, s.l1l2Policy, stats.L2, s.st, s.l2Hooks(i))
		tile.L3 = core.NewBank(cfg.L3, cfg.Cell, cfg.Policy, stats.L3, s.st, s.l3Hooks(i))
		s.tiles[i] = tile
	}
	return s, nil
}

// privatePolicy returns the refresh policy the private (L1/L2) caches run
// for a given L3 policy: same time-based component, Valid data policy
// (except the SRAM baseline and the reference All policy, which apply
// everywhere).
func privatePolicy(l3 config.Policy) config.Policy {
	switch {
	case l3.Time == config.NoRefresh:
		return l3
	case l3.Data == config.AllData:
		return config.Policy{Time: l3.Time, Data: config.AllData}
	default:
		return config.Policy{Time: l3.Time, Data: config.ValidData}
	}
}

// Config returns the system configuration.
func (s *System) Config() config.Config { return s.cfg }

// Stats returns the counters accumulated so far.
func (s *System) Stats() *stats.Stats { return s.st }

// Workload returns the application parameters actually simulated (after any
// preset scaling).
func (s *System) Workload() workload.Params { return s.app.Params() }

// Tile returns tile i (exported for white-box integration tests).
func (s *System) Tile(i int) *Tile { return s.tiles[i] }

// bankOf returns the L3 bank index a line maps to (line interleaving).
func (s *System) bankOf(addr mem.LineAddr) int {
	if s.bankMask >= 0 {
		return int(addr) & s.bankMask
	}
	return int(uint64(addr) % uint64(s.cfg.L3.Banks))
}

// nocSend records one message on the network and returns its delivery
// latency.  It mirrors Torus.Latency/FlitHops with the hop table and the
// precomputed flit counts so one message costs one table load.
func (s *System) nocSend(src, dst, bytes int) int64 {
	hops := int64(s.net.Hops(src, dst))
	flits := s.flitsCtrl
	if bytes != ctrlMsgBytes {
		flits = s.flitsData
		if bytes != dataMsgBytes {
			flits = int64(s.net.Flits(bytes))
		}
	}
	s.st.NoCMessages++
	s.st.NoCHops += hops
	s.st.NoCFlits += flits * hops
	if hops == 0 {
		return 0
	}
	// Head flit pays the full hop latency; body flits stream behind it.
	return hops*s.hopLatency + flits - 1
}

// dramAccess performs one DRAM access starting at `now`, charges it to the
// given access kind, and returns the completion cycle.
func (s *System) dramAccess(now int64, write bool) int64 {
	done := s.mem.Access(now)
	if write {
		s.st.Level(stats.DRAM).Writes++
	} else {
		s.st.Level(stats.DRAM).Reads++
	}
	return done
}

// --- Refresh-policy hooks --------------------------------------------------
//
// The hooks connect each bank's refresh policy to the rest of the hierarchy.
// Refresh-initiated traffic does not stall any core (it proceeds in the
// background), so hooks only account state, energy and message counters.

// l1Hooks: L1 lines are never dirty (the DL1 is write-through and the IL1 is
// read-only), so a policy invalidation needs no downstream work.
func (s *System) l1Hooks(tileID int) core.Hooks {
	return core.Hooks{
		Writeback: func(addr mem.LineAddr, now int64) {
			// Cannot happen for clean-only caches running the Valid policy;
			// kept for configurations that run WB policies at L1.
			s.writebackToL2(tileID, addr, now)
		},
		Invalidate: func(addr mem.LineAddr, wasDirty bool, now int64) {
			// Nothing to do: inclusion is top-down (L2 invalidations remove
			// L1 copies), and an L1-only invalidation has no lower-level
			// effect.
		},
	}
}

// l2Hooks: an L2 policy writeback pushes dirty data into the home L3 bank;
// an L2 policy invalidation must also remove the line from the tile's L1s
// (inclusion) and tell the directory this core no longer holds it.
func (s *System) l2Hooks(tileID int) core.Hooks {
	return core.Hooks{
		Writeback: func(addr mem.LineAddr, now int64) {
			s.writebackToL3(tileID, addr, now)
		},
		Invalidate: func(addr mem.LineAddr, wasDirty bool, now int64) {
			tile := s.tiles[tileID]
			tile.IL1.Invalidate(addr)
			tile.DL1.Invalidate(addr)
			home := s.tiles[s.bankOf(addr)]
			if wasDirty {
				// Dirty data must reach the L3 before the copy disappears.
				s.writebackToL3(tileID, addr, now)
				home.Dir.SharerWroteBack(addr, tileID)
			} else {
				home.Dir.SharerEvicted(addr, tileID)
			}
		},
	}
}

// l3Hooks: an L3 policy writeback pushes the line to DRAM; an L3 policy
// invalidation (or decay) must invalidate every upper-level copy to keep the
// hierarchy inclusive, writing back any dirty private copy to DRAM.
func (s *System) l3Hooks(bankTile int) core.Hooks {
	return core.Hooks{
		Writeback: func(addr mem.LineAddr, now int64) {
			s.dramAccess(now, true)
		},
		Invalidate: func(addr mem.LineAddr, wasDirty bool, now int64) {
			home := s.tiles[bankTile]
			act := home.Dir.InvalidateLine(addr)
			for cs := act.Invalidates; !cs.Empty(); {
				var sharer int
				sharer, cs = cs.Pop()
				t := s.tiles[sharer]
				l2Old, hadL2 := t.L2.Invalidate(addr)
				t.IL1.Invalidate(addr)
				t.DL1.Invalidate(addr)
				s.st.CoherenceInvalidations++
				s.nocSend(bankTile, sharer, ctrlMsgBytes)
				if hadL2 && l2Old.Dirty() {
					// The only up-to-date copy was above the L3: push it out
					// to DRAM so no data is lost.
					s.nocSend(sharer, bankTile, dataMsgBytes)
					s.dramAccess(now, true)
				}
			}
			if wasDirty {
				// The L3 copy itself was dirty (possible only via decay).
				s.dramAccess(now, true)
			}
		},
	}
}

// writebackToL2 pushes a (rare) L1 policy writeback into the tile's L2.
func (s *System) writebackToL2(tileID int, addr mem.LineAddr, now int64) {
	tile := s.tiles[tileID]
	if l, ok := tile.L2.Probe(addr, now); ok {
		tile.L2.SetState(l, mem.Modified)
		tile.L2.Touch(l, now)
		s.st.Level(stats.L2).Writes++
	}
}

// writebackToL3 pushes dirty data from tile tileID's L2 into the line's home
// L3 bank (used by L2 evictions, downgrades and L2 refresh-policy
// writebacks).  The L3 copy becomes dirty with respect to DRAM.
func (s *System) writebackToL3(tileID int, addr mem.LineAddr, now int64) {
	bank := s.bankOf(addr)
	home := s.tiles[bank]
	s.nocSend(tileID, bank, dataMsgBytes)
	s.st.Level(stats.L2).Writebacks++
	if l, ok := home.L3.Probe(addr, now); ok {
		home.L3.SetState(l, mem.Modified)
		home.L3.Touch(l, now)
		s.st.Level(stats.L3).Writes++
		return
	}
	// Inclusion means the line should be present; if the refresh policy
	// already dropped it, the data has to go all the way to memory.
	s.dramAccess(now, true)
}
