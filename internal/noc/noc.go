// Package noc models the on-chip interconnect of the evaluated chip: a 2-D
// torus (4x4 in the paper) connecting the 16 tiles, each of which holds one
// core, its private caches and one bank of the shared L3.
//
// The model is latency/energy oriented: a message between two tiles costs
// HopLatency cycles per hop along a dimension-order route on the torus, and
// one flit-hop of dynamic energy per flit per hop.  Link contention is not
// queued; the paper's network is far from saturation for these workloads and
// the refresh policies do not change network load qualitatively.
package noc

import (
	"fmt"

	"refrint/internal/config"
)

// Torus is a W x H torus with dimension-order routing.
type Torus struct {
	cfg config.NoCConfig
	// hops[src*nodes+dst] caches the minimal hop count of every pair; the
	// simulator consults it on every message, so it must be a plain load.
	hops  []int16
	nodes int
}

// New builds the torus from its configuration.
func New(cfg config.NoCConfig) *Torus {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("noc: invalid config: %v", err))
	}
	t := &Torus{cfg: cfg, nodes: cfg.Nodes()}
	t.hops = make([]int16, t.nodes*t.nodes)
	for src := 0; src < t.nodes; src++ {
		for dst := 0; dst < t.nodes; dst++ {
			t.hops[src*t.nodes+dst] = int16(t.computeHops(src, dst))
		}
	}
	return t
}

// Config returns the network configuration.
func (t *Torus) Config() config.NoCConfig { return t.cfg }

// Nodes returns the number of tiles on the network.
func (t *Torus) Nodes() int { return t.cfg.Nodes() }

// coords returns the (x, y) position of a node id.
func (t *Torus) coords(node int) (x, y int) {
	return node % t.cfg.Width, node / t.cfg.Width
}

// torusDist returns the wrap-around distance between two coordinates on a
// ring of the given size.
func torusDist(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := size - d; wrap < d {
		return wrap
	}
	return d
}

// Hops returns the number of router-to-router hops between two tiles using
// minimal dimension-order routing on the torus.  A message to the local tile
// takes zero hops.
func (t *Torus) Hops(src, dst int) int {
	return int(t.hops[src*t.nodes+dst])
}

// computeHops derives the hop count of one pair (used to fill the table).
func (t *Torus) computeHops(src, dst int) int {
	if src == dst {
		return 0
	}
	sx, sy := t.coords(src)
	dx, dy := t.coords(dst)
	return torusDist(sx, dx, t.cfg.Width) + torusDist(sy, dy, t.cfg.Height)
}

// Latency returns the cycles needed to deliver a message of `bytes` payload
// from src to dst: per-hop latency plus serialization of the flits.
func (t *Torus) Latency(src, dst int, bytes int) int64 {
	hops := t.Hops(src, dst)
	if hops == 0 {
		return 0
	}
	flits := t.Flits(bytes)
	// Head flit pays the full hop latency; body flits stream behind it.
	return int64(hops)*t.cfg.HopLatency + int64(flits-1)
}

// Flits returns the number of flits a message of the given payload occupies
// (at least one, for the header).
func (t *Torus) Flits(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + t.cfg.LinkWidth - 1) / t.cfg.LinkWidth
}

// FlitHops returns flits x hops for a message, the quantity the energy model
// charges per-flit-hop energy for.
func (t *Torus) FlitHops(src, dst int, bytes int) int64 {
	return int64(t.Flits(bytes)) * int64(t.Hops(src, dst))
}

// MaxHops returns the network diameter (largest minimal hop count).
func (t *Torus) MaxHops() int {
	return t.cfg.Width/2 + t.cfg.Height/2
}
