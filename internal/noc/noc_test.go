package noc

import (
	"testing"
	"testing/quick"

	"refrint/internal/config"
)

func torus4x4() *Torus {
	return New(config.NoCConfig{Width: 4, Height: 4, HopLatency: 2, LinkWidth: 16})
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(config.NoCConfig{Width: 0, Height: 4, HopLatency: 1, LinkWidth: 8})
}

func TestNodes(t *testing.T) {
	if torus4x4().Nodes() != 16 {
		t.Errorf("Nodes = %d, want 16", torus4x4().Nodes())
	}
}

func TestHopsLocal(t *testing.T) {
	n := torus4x4()
	for i := 0; i < 16; i++ {
		if n.Hops(i, i) != 0 {
			t.Errorf("Hops(%d,%d) = %d, want 0", i, i, n.Hops(i, i))
		}
	}
}

func TestHopsKnownCases(t *testing.T) {
	n := torus4x4()
	tests := []struct {
		src, dst, want int
	}{
		{0, 1, 1},  // adjacent in x
		{0, 4, 1},  // adjacent in y
		{0, 3, 1},  // wrap-around in x: 0 -> 3 is one hop on a 4-torus
		{0, 12, 1}, // wrap-around in y
		{0, 5, 2},  // diagonal neighbour
		{0, 10, 4}, // (0,0) -> (2,2): 2+2
		{5, 5, 0},  // self
		{1, 14, 3}, // (1,0) -> (2,3): 1 + 1(wrap) = 2? x:1->2=1, y:0->3 wrap=1 => 2
	}
	// Fix the last expectation: compute explicitly.
	tests[7].want = 2
	for _, tt := range tests {
		if got := n.Hops(tt.src, tt.dst); got != tt.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tt.src, tt.dst, got, tt.want)
		}
	}
}

func TestHopsSymmetryProperty(t *testing.T) {
	n := torus4x4()
	f := func(a, b uint8) bool {
		s, d := int(a%16), int(b%16)
		return n.Hops(s, d) == n.Hops(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsWithinDiameterProperty(t *testing.T) {
	n := torus4x4()
	f := func(a, b uint8) bool {
		s, d := int(a%16), int(b%16)
		h := n.Hops(s, d)
		return h >= 0 && h <= n.MaxHops()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if n.MaxHops() != 4 {
		t.Errorf("MaxHops = %d, want 4 for a 4x4 torus", n.MaxHops())
	}
}

func TestHopsTriangleInequalityProperty(t *testing.T) {
	n := torus4x4()
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%16), int(b%16), int(c%16)
		return n.Hops(x, z) <= n.Hops(x, y)+n.Hops(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlits(t *testing.T) {
	n := torus4x4()
	tests := []struct {
		bytes, want int
	}{
		{0, 1}, {1, 1}, {8, 1}, {16, 1}, {17, 2}, {64, 4}, {72, 5},
	}
	for _, tt := range tests {
		if got := n.Flits(tt.bytes); got != tt.want {
			t.Errorf("Flits(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

func TestLatency(t *testing.T) {
	n := torus4x4()
	if n.Latency(3, 3, 64) != 0 {
		t.Error("local delivery should be free")
	}
	// 1 hop, 64-byte payload = 4 flits: 1*2 + 3 = 5 cycles.
	if got := n.Latency(0, 1, 64); got != 5 {
		t.Errorf("Latency(0,1,64B) = %d, want 5", got)
	}
	// Control message (8 bytes, 1 flit) over 4 hops: 4*2 = 8 cycles.
	if got := n.Latency(0, 10, 8); got != 8 {
		t.Errorf("Latency(0,10,8B) = %d, want 8", got)
	}
}

func TestFlitHops(t *testing.T) {
	n := torus4x4()
	if got := n.FlitHops(0, 1, 64); got != 4 {
		t.Errorf("FlitHops(0,1,64) = %d, want 4", got)
	}
	if got := n.FlitHops(0, 10, 64); got != 16 {
		t.Errorf("FlitHops(0,10,64) = %d, want 16", got)
	}
	if got := n.FlitHops(2, 2, 64); got != 0 {
		t.Errorf("FlitHops to self = %d, want 0", got)
	}
}

func TestConfigAccessor(t *testing.T) {
	if torus4x4().Config().Width != 4 {
		t.Error("Config() should round-trip")
	}
}
