// Package faults is the fault-injection harness behind the chaos test suite
// and the refrint-serve -fault-spec flag.  Production code calls Check (or
// CheckCtx) at named injection points; with no spec installed — the default —
// that is a single atomic pointer load and nothing else: zero allocations,
// zero branches taken, safe on every hot path.
//
// A spec activates one or more points with a failure mode and a trigger
// rate:
//
//	point:mode[:arg][:rate]
//
// comma-separated.  Modes:
//
//	error    Check returns ErrInjected (arg is the rate, default 1)
//	corrupt  Check returns ErrCorrupted (arg is the rate, default 1)
//	panic    Check panics (arg is the rate, default 1)
//	latency  Check sleeps arg (a Go duration; optional trailing rate)
//
// error and corrupt differ only in the sentinel they return, and callers
// differ in how they treat the two: the store maps an ErrInjected read to a
// transient miss (the blob is fine, the read failed), while ErrCorrupted
// means the blob itself is bad and must go through the quarantine path.
//
// Examples:
//
//	store.put:error:0.5          half of store writes fail
//	store.get:corrupt:0.1        a tenth of store reads find a corrupt blob
//	sim.run:panic:1              every simulation panics
//	exec.latency:latency:2s      every simulation takes 2s longer
//	store.put:error:1,sim.run:latency:10ms:0.1
//
// The injector is process-global and deliberately crude: it exists to
// provoke the failure paths CI must prove survivable (panic containment,
// deadline enforcement, store degradation), not to model realistic faults.
// Nothing in this package runs unless a spec is explicitly installed via
// Enable (tests) or the -fault-spec flag (chaos smoke scripts).
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The named injection points wired through the codebase.  A spec may name
// any string, but only these are consulted.
const (
	StorePut    = "store.put"    // persistent-store blob writes
	StoreGet    = "store.get"    // persistent-store blob reads
	SimRun      = "sim.run"      // one simulation cell, inside the recover guard
	ExecLatency = "exec.latency" // extra latency per simulation cell
)

// ErrInjected is the error returned by error-mode injection.  Callers that
// must distinguish injected failures from real ones (the store's quarantine
// path must not move real blobs aside over a synthetic read error) test for
// it with errors.Is.
var ErrInjected = errors.New("injected fault")

// ErrCorrupted is the error returned by corrupt-mode injection.  It is
// deliberately NOT ErrInjected: it simulates the blob itself being bad
// rather than the read failing, so callers that special-case ErrInjected as
// transient (the store's synthetic-miss path) treat a corrupt injection like
// a genuine verification failure and exercise their quarantine handling.
var ErrCorrupted = errors.New("injected corruption")

// mode is the failure behavior of one rule.
type mode int

const (
	modeError mode = iota
	modeCorrupt
	modePanic
	modeLatency
)

// rule is one activated injection point.
type rule struct {
	mode    mode
	rate    float64
	latency time.Duration
}

// Injector holds a parsed fault spec.  Install it with Enable.
type Injector struct {
	rules map[string][]rule
}

// Parse builds an Injector from a spec string.  An empty spec returns
// (nil, nil): nothing to inject.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &Injector{rules: make(map[string][]rule)}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("faults: rule %q: want point:mode[:arg][:rate]", part)
		}
		point := strings.TrimSpace(fields[0])
		if point == "" {
			return nil, fmt.Errorf("faults: rule %q: empty point", part)
		}
		r := rule{rate: 1}
		switch strings.TrimSpace(fields[1]) {
		case "error":
			r.mode = modeError
			if len(fields) > 3 {
				return nil, fmt.Errorf("faults: rule %q: error takes at most a rate", part)
			}
			if len(fields) == 3 {
				rate, err := parseRate(fields[2])
				if err != nil {
					return nil, fmt.Errorf("faults: rule %q: %v", part, err)
				}
				r.rate = rate
			}
		case "corrupt":
			r.mode = modeCorrupt
			if len(fields) > 3 {
				return nil, fmt.Errorf("faults: rule %q: corrupt takes at most a rate", part)
			}
			if len(fields) == 3 {
				rate, err := parseRate(fields[2])
				if err != nil {
					return nil, fmt.Errorf("faults: rule %q: %v", part, err)
				}
				r.rate = rate
			}
		case "panic":
			r.mode = modePanic
			if len(fields) > 3 {
				return nil, fmt.Errorf("faults: rule %q: panic takes at most a rate", part)
			}
			if len(fields) == 3 {
				rate, err := parseRate(fields[2])
				if err != nil {
					return nil, fmt.Errorf("faults: rule %q: %v", part, err)
				}
				r.rate = rate
			}
		case "latency":
			r.mode = modeLatency
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("faults: rule %q: latency wants a duration and an optional rate", part)
			}
			d, err := time.ParseDuration(strings.TrimSpace(fields[2]))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: rule %q: bad duration %q", part, fields[2])
			}
			r.latency = d
			if len(fields) == 4 {
				rate, err := parseRate(fields[3])
				if err != nil {
					return nil, fmt.Errorf("faults: rule %q: %v", part, err)
				}
				r.rate = rate
			}
		default:
			return nil, fmt.Errorf("faults: rule %q: unknown mode %q (want error, corrupt, panic or latency)", part, fields[1])
		}
		inj.rules[point] = append(inj.rules[point], r)
	}
	return inj, nil
}

func parseRate(s string) (float64, error) {
	rate, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || rate < 0 || rate > 1 {
		return 0, fmt.Errorf("bad rate %q (want 0..1)", s)
	}
	return rate, nil
}

// current is the installed injector; nil (the default) disables everything.
// One atomic load gates every Check call.
var current atomic.Pointer[Injector]

// Enable installs an injector process-wide (nil is equivalent to Disable).
// Tests pair it with t.Cleanup(faults.Disable) so injection never leaks into
// neighbouring tests.
func Enable(inj *Injector) {
	if inj != nil && len(inj.rules) == 0 {
		inj = nil
	}
	current.Store(inj)
}

// Disable removes any installed injector.
func Disable() { current.Store(nil) }

// Active reports whether any injector is installed.
func Active() bool { return current.Load() != nil }

// Check consults the injection point: it returns ErrInjected (error mode),
// panics (panic mode), sleeps (latency mode), or — with no injector
// installed, or no rule for the point, or the rate not triggering — returns
// nil having done nothing.  The disabled fast path is one atomic load.
func Check(point string) error {
	inj := current.Load()
	if inj == nil {
		return nil
	}
	return inj.check(nil, point)
}

// CheckCtx is Check with context-aware latency injection: an injected sleep
// aborts early (returning ctx.Err()) when the context is cancelled, so
// latency injection can never hold a cancelled execution hostage.
func CheckCtx(ctx context.Context, point string) error {
	inj := current.Load()
	if inj == nil {
		return nil
	}
	return inj.check(ctx, point)
}

func (inj *Injector) check(ctx context.Context, point string) error {
	for _, r := range inj.rules[point] {
		if r.rate < 1 && rand.Float64() >= r.rate {
			continue
		}
		switch r.mode {
		case modeError:
			return fmt.Errorf("faults: %s: %w", point, ErrInjected)
		case modeCorrupt:
			return fmt.Errorf("faults: %s: %w", point, ErrCorrupted)
		case modePanic:
			panic(fmt.Sprintf("faults: injected panic at %s", point))
		case modeLatency:
			if ctx == nil {
				time.Sleep(r.latency)
				continue
			}
			t := time.NewTimer(r.latency)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
	}
	return nil
}
