package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestParseEmpty(t *testing.T) {
	inj, err := Parse("")
	if err != nil || inj != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", inj, err)
	}
	inj, err = Parse("   ")
	if err != nil || inj != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", inj, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"store.put",                  // missing mode
		":error",                     // empty point
		"store.put:explode",          // unknown mode
		"store.put:error:2",          // rate out of range
		"store.put:error:-0.1",       // negative rate
		"store.put:error:abc",        // non-numeric rate
		"store.put:error:0.5:0.5",    // error takes one arg
		"sim.run:latency",            // latency needs a duration
		"sim.run:latency:nope",       // bad duration
		"sim.run:latency:-5ms",       // negative duration
		"sim.run:latency:5ms:7",      // rate out of range
		"sim.run:latency:5ms:0.5:oh", // too many args
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestParseMultiRule(t *testing.T) {
	inj, err := Parse("store.put:error:0.5, sim.run:latency:10ms:0.1 ,store.put:panic")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := len(inj.rules[StorePut]); got != 2 {
		t.Fatalf("store.put rules = %d, want 2", got)
	}
	if got := len(inj.rules[SimRun]); got != 1 {
		t.Fatalf("sim.run rules = %d, want 1", got)
	}
}

func TestDisabledFastPath(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active() with no injector")
	}
	if err := Check(StorePut); err != nil {
		t.Fatalf("Check with no injector: %v", err)
	}
	if err := CheckCtx(context.Background(), SimRun); err != nil {
		t.Fatalf("CheckCtx with no injector: %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	inj, err := Parse("store.put:error")
	if err != nil {
		t.Fatal(err)
	}
	Enable(inj)
	t.Cleanup(Disable)

	if !Active() {
		t.Fatal("Active() = false with injector installed")
	}
	err = Check(StorePut)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Check(store.put) = %v, want ErrInjected", err)
	}
	// Other points are unaffected.
	if err := Check(StoreGet); err != nil {
		t.Fatalf("Check(store.get) = %v, want nil", err)
	}
}

func TestPanicMode(t *testing.T) {
	inj, err := Parse("sim.run:panic")
	if err != nil {
		t.Fatal(err)
	}
	Enable(inj)
	t.Cleanup(Disable)

	defer func() {
		if recover() == nil {
			t.Fatal("Check(sim.run) did not panic")
		}
	}()
	_ = Check(SimRun)
}

func TestZeroRateNeverFires(t *testing.T) {
	inj, err := Parse("store.put:error:0")
	if err != nil {
		t.Fatal(err)
	}
	Enable(inj)
	t.Cleanup(Disable)

	for i := 0; i < 1000; i++ {
		if err := Check(StorePut); err != nil {
			t.Fatalf("rate-0 rule fired: %v", err)
		}
	}
}

func TestPartialRateFiresSometimes(t *testing.T) {
	inj, err := Parse("store.put:error:0.5")
	if err != nil {
		t.Fatal(err)
	}
	Enable(inj)
	t.Cleanup(Disable)

	var hits int
	for i := 0; i < 2000; i++ {
		if Check(StorePut) != nil {
			hits++
		}
	}
	// P(hits outside [1,1999]) at p=0.5 is astronomically small.
	if hits == 0 || hits == 2000 {
		t.Fatalf("rate-0.5 rule fired %d/2000 times", hits)
	}
}

func TestLatencyMode(t *testing.T) {
	inj, err := Parse("exec.latency:latency:30ms")
	if err != nil {
		t.Fatal(err)
	}
	Enable(inj)
	t.Cleanup(Disable)

	start := time.Now()
	if err := Check(ExecLatency); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency injection slept %v, want >= 30ms", d)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	inj, err := Parse("exec.latency:latency:10s")
	if err != nil {
		t.Fatal(err)
	}
	Enable(inj)
	t.Cleanup(Disable)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = CheckCtx(ctx, ExecLatency)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CheckCtx = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled latency injection still slept %v", d)
	}
}

func TestEnableEmptyIsDisable(t *testing.T) {
	Enable(&Injector{rules: map[string][]rule{}})
	if Active() {
		t.Fatal("empty injector should normalize to disabled")
	}
}
