package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// payload is a representative structured value for round-trip tests.
type payload struct {
	Name  string    `json:"name"`
	Value float64   `json:"value"`
	Runs  []int64   `json:"runs"`
	Sub   *struct { // pointer field, like sim.Result.Stats
		X int `json:"x"`
	} `json:"sub,omitempty"`
}

func testPayload(i int) payload {
	return payload{
		Name:  fmt.Sprintf("payload-%d", i),
		Value: float64(i) * 1.5,
		Runs:  []int64{int64(i), int64(i * i)},
	}
}

func open(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) string { return fmt.Sprintf("%032x", i) }

func TestRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})

	want := testPayload(7)
	if err := s.Put(KindCell, key(7), want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var got payload
	if !s.Get(KindCell, key(7), &got) {
		t.Fatal("Get missed a just-put key")
	}
	if got.Name != want.Name || got.Value != want.Value || len(got.Runs) != 2 {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}

	// Kinds are separate namespaces: the same key under KindSweep is a miss.
	if s.Get(KindSweep, key(7), &got) {
		t.Fatal("kinds share a namespace")
	}
	// Unknown keys miss without error.
	if s.Get(KindCell, key(8), &got) {
		t.Fatal("Get hit an absent key")
	}

	st := s.Stats()
	if st.CellHits != 1 || st.CellMisses != 1 || st.SweepMisses != 1 {
		t.Errorf("stats = %+v, want 1 cell hit, 1 cell miss, 1 sweep miss", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats = %+v, want 1 entry with positive bytes", st)
	}
}

func TestRestartSurvival(t *testing.T) {
	dir := t.TempDir()

	s1 := open(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s1.Put(KindCell, key(i), testPayload(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := s1.Put(KindSweep, key(100), testPayload(100)); err != nil {
		t.Fatalf("Put sweep: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh store over the same directory serves every blob.
	s2 := open(t, dir, Options{})
	if got := s2.Stats().Entries; got != 6 {
		t.Fatalf("reopened store indexes %d blobs, want 6", got)
	}
	for i := 0; i < 5; i++ {
		var got payload
		if !s2.Get(KindCell, key(i), &got) {
			t.Fatalf("cell %d lost across restart", i)
		}
		if got.Name != testPayload(i).Name {
			t.Fatalf("cell %d decoded as %+v", i, got)
		}
	}
	var sweepGot payload
	if !s2.Get(KindSweep, key(100), &sweepGot) {
		t.Fatal("sweep blob lost across restart")
	}
}

// TestRestartWithoutIndex verifies the index is a cache, not a source of
// truth: deleting it leaves every blob reachable after reopen.
func TestRestartWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, Options{})
	if err := s1.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if err := os.Remove(filepath.Join(dir, "v1", "index.json")); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	var got payload
	if !s2.Get(KindCell, key(1), &got) {
		t.Fatal("blob unreachable after index deletion")
	}
}

func TestCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCell, key(2), testPayload(2)); err != nil {
		t.Fatal(err)
	}

	// Flip payload bytes inside blob 1 (checksum mismatch) and truncate
	// blob 2 (parse failure).
	p1 := filepath.Join(dir, "v1", "cells", key(1)[:2], key(1)+".json")
	data, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(data), "payload-1", "payload-X", 1)
	if corrupted == string(data) {
		t.Fatal("test setup: payload marker not found in blob")
	}
	if err := os.WriteFile(p1, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "v1", "cells", key(2)[:2], key(2)+".json")
	if err := os.WriteFile(p2, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen so the memory front does not mask the corruption.
	s.Close()
	s = open(t, dir, Options{})
	var got payload
	if s.Get(KindCell, key(1), &got) {
		t.Error("checksum-corrupted blob served as a hit")
	}
	if s.Get(KindCell, key(2), &got) {
		t.Error("truncated blob served as a hit")
	}
	st := s.Stats()
	if st.Quarantined != 2 {
		t.Errorf("quarantined = %d, want 2", st.Quarantined)
	}
	if st.Entries != 0 {
		t.Errorf("entries = %d after quarantine, want 0", st.Entries)
	}
	// The evidence is preserved, not deleted.
	q, err := os.ReadDir(filepath.Join(dir, "v1", "quarantine"))
	if err != nil || len(q) != 2 {
		t.Errorf("quarantine dir holds %d files (err %v), want 2", len(q), err)
	}
	// A corrupted key is writable again and then served intact.
	if err := s.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatal(err)
	}
	if !s.Get(KindCell, key(1), &got) || got.Name != "payload-1" {
		t.Errorf("re-put after quarantine not served: %+v", got)
	}
}

func TestEvictionUnderByteBudget(t *testing.T) {
	dir := t.TempDir()
	// Measure one blob's size, then budget for about three.
	probe := open(t, t.TempDir(), Options{})
	if err := probe.Put(KindCell, key(0), testPayload(0)); err != nil {
		t.Fatal(err)
	}
	blobBytes := probe.Stats().Bytes
	if blobBytes <= 0 {
		t.Fatal("probe blob has no size")
	}

	s := open(t, dir, Options{MaxBytes: 3*blobBytes + blobBytes/2})
	for i := 0; i < 10; i++ {
		if err := s.Put(KindCell, key(i), testPayload(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Bytes > 3*blobBytes+blobBytes/2 {
		t.Errorf("store holds %d bytes, budget %d", st.Bytes, 3*blobBytes+blobBytes/2)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded under a tight budget")
	}
	// The most recent keys survive; the oldest are gone from disk too.
	var got payload
	if !s.Get(KindCell, key(9), &got) {
		t.Error("most recent key evicted")
	}
	if s.Get(KindCell, key(0), &got) {
		t.Error("oldest key survived a 3-blob budget over 10 puts")
	}
	if _, err := os.Stat(filepath.Join(dir, "v1", "cells", key(0)[:2], key(0)+".json")); !os.IsNotExist(err) {
		t.Errorf("evicted blob still on disk (err %v)", err)
	}

	// LRU, not FIFO: touching the oldest survivor protects it, so the next
	// evictions take the colder (though later-inserted) keys instead.
	if !s.Get(KindCell, key(7), &got) {
		t.Fatal("key 7 unexpectedly evicted")
	}
	for i := 20; i < 22; i++ {
		if err := s.Put(KindCell, key(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Get(KindCell, key(7), &got) {
		t.Error("recently touched key evicted before colder ones")
	}
	if s.Get(KindCell, key(8), &got) {
		t.Error("cold key survived while the budget was exceeded")
	}
}

// TestOversizedBlobStillPersists verifies a single blob larger than the
// budget is kept (the store never evicts its way to uselessness).
func TestOversizedBlobStillPersists(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxBytes: 16})
	if err := s.Put(KindSweep, key(1), testPayload(1)); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Get(KindSweep, key(1), &got) {
		t.Fatal("oversized blob not retained")
	}
}

func TestRejectsUnsafeKeys(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for _, bad := range []string{"", "../escape", "a/b", "a b", ".hidden"} {
		if err := s.Put(KindCell, bad, testPayload(1)); err == nil {
			t.Errorf("Put accepted unsafe key %q", bad)
		}
		var got payload
		if s.Get(KindCell, bad, &got) {
			t.Errorf("Get hit unsafe key %q", bad)
		}
	}
	if err := s.Put(Kind("elsewhere"), key(1), testPayload(1)); err == nil {
		t.Error("Put accepted an unknown kind")
	}
}

// TestConcurrentReadersWriters hammers the store from many goroutines; run
// with -race.  Readers and writers overlap on the same keys, and every
// completed Get must decode to the exact payload some Put wrote.
func TestConcurrentReadersWriters(t *testing.T) {
	s := open(t, t.TempDir(), Options{MemEntries: 4})

	const (
		workers = 8
		keys    = 16
		iters   = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := key((w + i) % keys)
				if i%2 == 0 {
					if err := s.Put(KindCell, k, testPayload((w+i)%keys)); err != nil {
						t.Errorf("worker %d: Put: %v", w, err)
						return
					}
				} else {
					var got payload
					if s.Get(KindCell, k, &got) {
						if want := testPayload((w + i) % keys); got.Name != want.Name {
							t.Errorf("worker %d: got %q, want %q", w, got.Name, want.Name)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Fatalf("Close after stress: %v", err)
	}
	// The index written under concurrency must reopen cleanly.
	s2 := open(t, s.Dir(), Options{})
	if s2.Stats().Entries == 0 {
		t.Error("no entries survived the concurrent stress")
	}
}

// TestIndexIsValidJSON pins the on-disk index format.  Index writes are
// batched, so Close (which always writes it) comes first.
func TestIndexIsValidJSON(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "v1", "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Version int `json:"version"`
		Entries []struct {
			Kind  string `json:"kind"`
			Key   string `json:"key"`
			Bytes int64  `json:"bytes"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatalf("index is not valid JSON: %v", err)
	}
	if idx.Version != Version || len(idx.Entries) != 1 || idx.Entries[0].Kind != "cells" {
		t.Errorf("index = %+v", idx)
	}
}

// TestRankedEviction pins priority-aware eviction: under byte pressure,
// high-rank (background-class) blobs evict before low-rank (interactive)
// ones regardless of recency, LRU within a rank, and the by-rank counters
// record who went.
func TestRankedEviction(t *testing.T) {
	probe := open(t, t.TempDir(), Options{})
	if err := probe.Put(KindCell, key(0), testPayload(0)); err != nil {
		t.Fatal(err)
	}
	blobBytes := probe.Stats().Bytes

	s := open(t, t.TempDir(), Options{MaxBytes: 3*blobBytes + blobBytes/2})
	// The interactive blob is the OLDEST — pure LRU would evict it first.
	if err := s.PutRanked(KindCell, key(1), 0, testPayload(1)); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 5; i++ {
		if err := s.PutRanked(KindCell, key(i), 2, testPayload(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	var got payload
	if !s.Get(KindCell, key(1), &got) {
		t.Error("old interactive-rank blob evicted while background-rank blobs remained")
	}
	if s.Get(KindCell, key(2), &got) {
		t.Error("oldest background-rank blob survived byte pressure")
	}
	st := s.Stats()
	if st.Evictions == 0 || st.EvictionsByRank[2] != st.Evictions {
		t.Errorf("evictions = %d, by rank = %v; want all charged to rank 2", st.Evictions, st.EvictionsByRank)
	}
	if st.EvictionsByRank[0] != 0 {
		t.Errorf("rank-0 evictions = %d, want 0", st.EvictionsByRank[0])
	}

	// Within one rank, LRU still applies: touch the older surviving rank-2
	// blob and the next put evicts the colder one.
	if !s.Get(KindCell, key(4), &got) {
		t.Fatal("key 4 unexpectedly evicted")
	}
	if err := s.PutRanked(KindCell, key(6), 2, testPayload(6)); err != nil {
		t.Fatal(err)
	}
	if !s.Get(KindCell, key(4), &got) {
		t.Error("recently touched rank-2 blob evicted before colder sibling")
	}
	if s.Get(KindCell, key(5), &got) {
		t.Error("cold rank-2 blob survived while the budget was exceeded")
	}
}

// TestRankSurvivesRestart verifies ranks round-trip through the index: a
// reopened store still evicts high-rank blobs first.
func TestRankSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	probe := open(t, t.TempDir(), Options{})
	if err := probe.Put(KindCell, key(0), testPayload(0)); err != nil {
		t.Fatal(err)
	}
	blobBytes := probe.Stats().Bytes

	s1 := open(t, dir, Options{MaxBytes: 100 * blobBytes})
	if err := s1.PutRanked(KindCell, key(1), 0, testPayload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s1.PutRanked(KindCell, key(2), 2, testPayload(2)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{MaxBytes: 2*blobBytes + blobBytes/2})
	// Opening does not evict; the next put triggers the budget check and the
	// rank-2 blob must go first even though the rank-0 one is older.
	if err := s2.PutRanked(KindCell, key(3), 1, testPayload(3)); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s2.Get(KindCell, key(1), &got) {
		t.Error("rank-0 blob evicted after restart while a rank-2 blob remained")
	}
	if s2.Get(KindCell, key(2), &got) {
		t.Error("rank-2 blob survived after restart under byte pressure")
	}
}
