// Package store is a durable, content-addressed result store.  It persists
// JSON payloads keyed at two granularities — whole sweeps (by
// sweep.Options.Key) and individual simulation cells (by
// sweep.CellKey.Hash) — as versioned, checksummed blobs under a data
// directory:
//
//	<dir>/v1/sweeps/<k[:2]>/<key>.json
//	<dir>/v1/cells/<k[:2]>/<key>.json
//	<dir>/v1/quarantine/<...>.json   (blobs that failed verification)
//	<dir>/v1/index.json              (sizes + LRU access order)
//
// Every blob is written atomically (temp file + rename) and wrapped in an
// envelope carrying the format version, its kind and key, and a SHA-256
// checksum of the payload.  A blob that fails any of those checks on read is
// moved to the quarantine directory rather than deleted, so a corrupted
// store degrades to cache misses without losing evidence.
//
// The disk footprint is bounded by an LRU-bytes budget: when a put pushes
// the total past the budget, blobs are deleted until it fits — highest
// eviction rank first (PutRanked; the sweep service maps scheduling classes
// to ranks so interactive-class results outlive background ones), least
// recently used within a rank.  An in-memory front keeps recently used
// payloads decoded-free (raw bytes) so repeated lookups of hot keys skip the
// filesystem.
//
// The store is safe for concurrent use by multiple goroutines of one
// process.  It does not coordinate between processes: run one server per
// data directory.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"refrint/internal/faults"
	"refrint/internal/sim"
	"refrint/internal/sweep"
)

// Version is the on-disk format version.  Blobs and index files written by
// a different major version are ignored (left untouched on disk), so a
// downgrade never destroys data it does not understand.
const Version = 1

// versionDir is the directory namespace of the current format.
const versionDir = "v1"

// Kind namespaces keys: whole-sweep results and per-simulation cells.
type Kind string

// Blob kinds.
const (
	KindSweep Kind = "sweeps"
	KindCell  Kind = "cells"
)

func (k Kind) valid() bool { return k == KindSweep || k == KindCell }

// NumRanks is how many eviction ranks the store tracks counters for.  Ranks
// are small non-negative integers; higher ranks evict first.  Rank 0 (the
// plain Put default, and what blobs written before ranks existed load as) is
// the most retained.
const NumRanks = 3

// Options tunes a Store.  The zero value is usable.
type Options struct {
	// MaxBytes bounds the total size of blobs kept on disk (default 1 GiB).
	// Least-recently-used blobs are evicted past the budget.
	MaxBytes int64
	// MemEntries bounds the in-memory payload front (default 128 entries).
	MemEntries int
	// MemBytes bounds the in-memory payload front by size (default 64 MiB):
	// whole-sweep blobs are large, and the front must not silently pin an
	// unbounded multiple of what the disk budget allows.
	MemBytes int64
	// Logf, when set, receives one line per quarantine and eviction.
	Logf func(format string, args ...any)

	// WriteRetries bounds how many times a transient blob-write failure
	// (ENOSPC, EIO, ...) is retried before the put is declared failed
	// (default 3 retries after the initial attempt).  Permanent failures
	// (bad permissions, invalid paths) are never retried.
	WriteRetries int
	// RetryBase is the base of the capped, jittered exponential backoff
	// between write retries (default 10ms; capped at 500ms per wait).
	RetryBase time.Duration
	// DegradeAfter is the number of consecutive failed puts after which the
	// store stops touching the disk and enters degraded (memory-only) mode
	// instead of spamming errors (default 3).  A background probe re-enables
	// disk writes once the disk recovers; see Degraded.
	DegradeAfter int
	// ProbeInterval is how often a degraded store probes the disk for
	// recovery (default 2s).
	ProbeInterval time.Duration
	// Sleep is the retry-backoff sleeper (default time.Sleep; injectable so
	// tests exercise the retry loop without real waits).
	Sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 30
	}
	if o.MemEntries <= 0 {
		o.MemEntries = 128
	}
	if o.MemBytes <= 0 {
		o.MemBytes = 64 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.WriteRetries <= 0 {
		o.WriteRetries = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Entries and Bytes describe what is currently on disk.
	Entries int
	Bytes   int64
	// Hits and misses, per kind, since the store was opened.
	SweepHits   int64
	SweepMisses int64
	CellHits    int64
	CellMisses  int64
	// Quarantined counts blobs moved aside after failing verification.
	Quarantined int64
	// Evictions counts blobs deleted by the LRU-bytes budget;
	// EvictionsByRank splits them by eviction rank (ranks beyond NumRanks-1
	// fold into the last bucket).
	Evictions       int64
	EvictionsByRank [NumRanks]int64
	// Degraded reports memory-only mode: enough consecutive puts failed that
	// the store stopped touching the disk (DegradedCause holds the last
	// write error).  Reads still serve everything cached in memory or
	// already intact on disk; a background probe flips the store back once
	// the disk recovers.
	Degraded      bool
	DegradedCause string
	// WriteRetries counts transient blob-write failures that were retried;
	// DegradedPuts counts puts served memory-only while degraded.
	WriteRetries int64
	DegradedPuts int64
}

// envelope is the on-disk form of one blob.
type envelope struct {
	Version  int             `json:"version"`
	Kind     Kind            `json:"kind"`
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"` // "sha256:<hex>" of Payload
	Payload  json.RawMessage `json:"payload"`
}

// entry is the in-memory index record of one on-disk blob.
type entry struct {
	kind   Kind
	key    string
	bytes  int64
	access int64 // logical LRU clock; higher = more recent
	rank   int   // eviction rank; higher ranks evict first
}

// Store is a persistent result store.  Open one with Open; it must not be
// copied.
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	entries map[string]*entry // composite kind/key -> entry
	bytes   int64
	clock   int64
	dirty   int // index mutations since the last index write
	stats   Stats

	mem      map[string][]byte // composite key -> payload bytes (hot front)
	memOrder []string          // composite keys, oldest first
	memBytes int64             // total payload bytes held by the front

	// Degradation state: after DegradeAfter consecutive put failures the
	// store goes memory-only and probeLoop (probeWG-tracked, stopped via
	// probeStop) watches for disk recovery.
	degraded      bool
	degradedCause string
	consecFails   int
	probeStop     chan struct{}
	probeWG       sync.WaitGroup
}

// Open opens (creating if necessary) the store rooted at dir.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	s := &Store{
		dir:     dir,
		opt:     opt,
		entries: make(map[string]*entry),
		mem:     make(map[string][]byte),
	}
	for _, sub := range []string{
		filepath.Join(dir, versionDir, string(KindSweep)),
		filepath.Join(dir, versionDir, string(KindCell)),
		filepath.Join(dir, versionDir, "quarantine"),
	} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", sub, err)
		}
	}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close persists the index (access order included), stops the recovery
// probe if one is running, and releases the in-memory front.  The store must
// not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.probeStop != nil {
		close(s.probeStop)
		s.probeStop = nil
	}
	s.mu.Unlock()
	s.probeWG.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem = make(map[string][]byte)
	s.memOrder = nil
	s.memBytes = 0
	return s.writeIndexLocked()
}

// Degraded reports whether the store is in memory-only degraded mode, and —
// when it is — the write error that sent it there.  /healthz surfaces this.
func (s *Store) Degraded() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.degradedCause
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

// Put persists payload under (kind, key) at rank 0 (most retained).  See
// PutRanked.
func (s *Store) Put(kind Kind, key string, payload any) error {
	return s.PutRanked(kind, key, 0, payload)
}

// PutRanked persists payload under (kind, key), replacing any previous blob,
// and evicts blobs if the byte budget is exceeded — highest rank first,
// least recently used within a rank, so low-rank (urgent-class) results
// outlive high-rank ones under byte pressure regardless of recency.  The key
// must be non-empty and path-safe (content hashes are).  The file write
// happens outside the store mutex; concurrent puts of one key are safe
// because keys are content-addressed — both writers carry identical bytes.
func (s *Store) PutRanked(kind Kind, key string, rank int, payload any) error {
	if !kind.valid() {
		return fmt.Errorf("store: unknown kind %q", kind)
	}
	if err := validKey(key); err != nil {
		return err
	}
	if rank < 0 {
		rank = 0
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: encoding %s/%s: %w", kind, key, err)
	}
	env := envelope{
		Version:  Version,
		Kind:     kind,
		Key:      key,
		Checksum: checksum(raw),
		Payload:  raw,
	}
	blob, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: encoding envelope %s/%s: %w", kind, key, err)
	}
	ck := compositeKey(kind, key)

	// Degraded mode: serve the put from memory without touching the disk.
	// The result stays readable (Get's front serves entries with no index
	// record) until the probe re-enables writes; it is simply not durable.
	s.mu.Lock()
	if s.degraded {
		s.memPutLocked(ck, raw)
		s.stats.DegradedPuts++
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	if err := s.writeBlob(kind, key, blob); err != nil {
		return s.putFailed(kind, key, ck, raw, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecFails = 0
	if old, ok := s.entries[ck]; ok {
		s.bytes -= old.bytes
	}
	s.clock++
	s.entries[ck] = &entry{kind: kind, key: key, bytes: int64(len(blob)), access: s.clock, rank: rank}
	s.bytes += int64(len(blob))
	s.memPutLocked(ck, raw)
	s.evictLocked(ck)
	return s.maybeWriteIndexLocked()
}

// writeBlob lands one blob on disk, retrying transient failures (disk full,
// I/O errors) with capped exponential backoff + jitter.  Permanent failures
// return immediately.
func (s *Store) writeBlob(kind Kind, key string, blob []byte) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = s.writeAttempt(s.blobPath(kind, key), blob)
		if err == nil || !transientWriteError(err) || attempt >= s.opt.WriteRetries {
			return err
		}
		s.mu.Lock()
		s.stats.WriteRetries++
		s.mu.Unlock()
		s.opt.Sleep(retryBackoff(s.opt.RetryBase, attempt))
	}
}

// writeAttempt is one try at landing a blob, behind the store.put fault
// injection point.
func (s *Store) writeAttempt(path string, blob []byte) error {
	if err := faults.Check(faults.StorePut); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicWrite(path, blob)
}

// putFailed handles a put whose write retries ran out: the failure counts
// toward the degradation threshold, and crossing it flips the store into
// memory-only mode (starting the recovery probe) — in which case this put is
// absorbed into the memory front and reported as success, exactly as if it
// had arrived a moment later.  Below the threshold the error goes back to
// the caller.
func (s *Store) putFailed(kind Kind, key, ck string, raw []byte, err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecFails++
	if !s.degraded && s.consecFails >= s.opt.DegradeAfter {
		s.enterDegradedLocked(err)
	}
	if s.degraded {
		s.memPutLocked(ck, raw)
		s.stats.DegradedPuts++
		return nil
	}
	return fmt.Errorf("store: writing %s/%s: %w", kind, key, err)
}

// transientWriteError classifies write failures: disk-pressure and I/O
// errnos are worth retrying, anything else (permissions, bad paths) is
// permanent.  Injected faults count as transient so the chaos suite drives
// the retry and degradation paths.
func transientWriteError(err error) bool {
	if errors.Is(err, faults.ErrInjected) {
		return true
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch errno {
		case syscall.ENOSPC, syscall.EIO, syscall.EAGAIN, syscall.EINTR, syscall.EBUSY:
			return true
		}
	}
	return false
}

// retryBackoff is the wait before retry attempt+1: base<<attempt with full
// jitter, capped at 500ms so a handful of retries never stalls a put for
// seconds.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	const maxWait = 500 * time.Millisecond
	d := base << uint(min(attempt, 16))
	if d <= 0 || d > maxWait {
		d = maxWait
	}
	return d/2 + rand.N(d/2+1)
}

// enterDegradedLocked flips the store into memory-only mode and starts the
// background recovery probe.
func (s *Store) enterDegradedLocked(cause error) {
	s.degraded = true
	s.degradedCause = cause.Error()
	s.stats.Degraded = true
	s.stats.DegradedCause = s.degradedCause
	s.opt.Logf("store: degraded to memory-only after %d consecutive write failures: %v", s.consecFails, cause)
	stop := make(chan struct{})
	s.probeStop = stop
	s.probeWG.Add(1)
	go s.probeLoop(stop)
}

// exitDegradedLocked re-enables disk writes and stops the probe.
func (s *Store) exitDegradedLocked() {
	if !s.degraded {
		return
	}
	s.degraded = false
	s.degradedCause = ""
	s.stats.Degraded = false
	s.stats.DegradedCause = ""
	s.consecFails = 0
	if s.probeStop != nil {
		close(s.probeStop)
		s.probeStop = nil
	}
	s.opt.Logf("store: disk recovered, leaving degraded mode")
}

// probeLoop periodically test-writes the disk while the store is degraded
// and flips it back to normal on the first success.  It goes through the
// same injected write path as real puts, so recovery is only observed once
// the underlying failure (or fault injection) actually stops.
func (s *Store) probeLoop(stop chan struct{}) {
	defer s.probeWG.Done()
	t := time.NewTicker(s.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := s.probeOnce(); err == nil {
				s.mu.Lock()
				s.exitDegradedLocked()
				s.mu.Unlock()
				return
			}
		}
	}
}

// probeOnce attempts one small probe write (temp file + rename, like a real
// blob) under the version directory, removing it on success.
func (s *Store) probeOnce() error {
	path := filepath.Join(s.dir, versionDir, probeFile)
	if err := s.writeAttempt(path, []byte("probe")); err != nil {
		return err
	}
	return os.Remove(path)
}

// probeFile is the scratch file the degraded-mode recovery probe writes.
// Dot-prefixed, so loadIndex's blob scan never adopts it.
const probeFile = ".probe"

// Get loads the blob under (kind, key) into out (a pointer, as for
// json.Unmarshal) and reports whether it was found intact.  Corrupted blobs
// are quarantined and reported as misses.  Disk reads and decoding happen
// outside the store mutex, so a slow read of one blob never stalls other
// readers or writers.
func (s *Store) Get(kind Kind, key string, out any) bool {
	if !kind.valid() || validKey(key) != nil {
		return false
	}
	ck := compositeKey(kind, key)

	s.mu.Lock()
	raw, inMem := s.mem[ck]
	indexed := inMem
	if !inMem {
		_, indexed = s.entries[ck]
	}
	s.mu.Unlock()

	if !indexed {
		s.count(kind, false)
		return false
	}
	if !inMem {
		var err error
		raw, err = s.readBlob(kind, key)
		if err != nil {
			// An injected read fault is a synthetic miss: the blob on disk is
			// fine, so quarantining it would punish real data for a test.
			if errors.Is(err, faults.ErrInjected) {
				s.count(kind, false)
				return false
			}
			// Corrupted — unless the blob was concurrently evicted, which
			// quarantine() detects and turns into a plain miss.
			s.quarantine(kind, key, err)
			s.count(kind, false)
			return false
		}
	}
	if err := json.Unmarshal(raw, out); err != nil {
		// The payload does not fit the caller's type; treat as a miss
		// without blaming the disk blob.
		s.count(kind, false)
		return false
	}

	s.mu.Lock()
	if inMem {
		s.memTouchLocked(ck)
	} else if _, still := s.entries[ck]; still {
		s.memPutLocked(ck, raw)
	}
	s.touchLocked(ck)
	s.hit(kind)
	s.mu.Unlock()
	return true
}

// count records a hit or miss under the mutex.
func (s *Store) count(kind Kind, hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.hit(kind)
	} else {
		s.miss(kind)
	}
}

// CellHooks returns the sweep cell-cache hooks backed by this store at rank
// 0.  See CellHooksRanked.
func (s *Store) CellHooks(logf func(format string, args ...any)) (lookup func(sweep.CellKey) (sim.Result, bool), put func(sweep.CellKey, sim.Result)) {
	return s.CellHooksRanked(0, logf)
}

// CellHooksRanked returns the sweep cell-cache hooks backed by this store,
// ready to install as sweep.Options.CellLookup and CellPut: lookups read
// (and verify) persisted cells, puts persist fresh ones at the given
// eviction rank, and put errors are reported to logf (nil for silent) rather
// than failing the sweep.
func (s *Store) CellHooksRanked(rank int, logf func(format string, args ...any)) (lookup func(sweep.CellKey) (sim.Result, bool), put func(sweep.CellKey, sim.Result)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	lookup = func(k sweep.CellKey) (sim.Result, bool) {
		var cell sweep.CellResult
		if s.Get(KindCell, k.Hash(), &cell) {
			return cell.Result, true
		}
		return sim.Result{}, false
	}
	put = func(k sweep.CellKey, res sim.Result) {
		if err := s.PutRanked(KindCell, k.Hash(), rank, sweep.CellResult{Key: k, Result: res}); err != nil {
			logf("store: persisting cell %s: %v", k.Hash(), err)
		}
	}
	return lookup, put
}

// Contains reports whether an intact-looking blob is indexed under
// (kind, key), without reading or verifying it.
func (s *Store) Contains(kind Kind, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[compositeKey(kind, key)]
	return ok
}

// Len returns the number of indexed blobs of one kind.
func (s *Store) Len(kind Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.entries {
		if e.kind == kind {
			n++
		}
	}
	return n
}

func (s *Store) hit(kind Kind) {
	if kind == KindSweep {
		s.stats.SweepHits++
	} else {
		s.stats.CellHits++
	}
}

func (s *Store) miss(kind Kind) {
	if kind == KindSweep {
		s.stats.SweepMisses++
	} else {
		s.stats.CellMisses++
	}
}

// readBlob reads and verifies one blob, returning its payload bytes.  It
// takes no lock: blobs are written atomically, so a reader sees either the
// previous complete blob or the new one.
func (s *Store) readBlob(kind Kind, key string) ([]byte, error) {
	if err := faults.Check(faults.StoreGet); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.blobPath(kind, key))
	if err != nil {
		return nil, fmt.Errorf("reading blob: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("parsing blob: %w", err)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("blob version %d, want %d", env.Version, Version)
	}
	if env.Kind != kind || env.Key != key {
		return nil, fmt.Errorf("blob identifies as %s/%s, want %s/%s", env.Kind, env.Key, kind, key)
	}
	if got := checksum(env.Payload); got != env.Checksum {
		return nil, fmt.Errorf("checksum %s, want %s", got, env.Checksum)
	}
	return env.Payload, nil
}

// quarantine moves a failed blob aside unless it is no longer indexed (a
// concurrent eviction explains the failed read; that is a plain miss).
func (s *Store) quarantine(kind Kind, key string, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[compositeKey(kind, key)]
	if !ok {
		return
	}
	s.quarantineLocked(e, cause)
}

// quarantineLocked moves a failed blob aside and drops it from the index.
func (s *Store) quarantineLocked(e *entry, cause error) {
	src := s.blobPath(e.kind, e.key)
	dst := filepath.Join(s.dir, versionDir, "quarantine", string(e.kind)+"-"+e.key+".json")
	for i := 1; ; i++ {
		//refrint:allow lockcheck -- the store mutex guards an on-disk structure; quarantine must move the blob before any reader can re-open it
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, versionDir, "quarantine",
			fmt.Sprintf("%s-%s.%d.json", e.kind, e.key, i))
	}
	//refrint:allow lockcheck -- atomic same-directory rename, bounded work under the store mutex by design
	if err := os.Rename(src, dst); err != nil {
		// Renaming failed (e.g. the file vanished); removing the index entry
		// still turns the blob into a plain miss.
		s.opt.Logf("store: quarantine of %s/%s failed: %v (cause: %v)", e.kind, e.key, err, cause)
	} else {
		s.opt.Logf("store: quarantined %s/%s: %v", e.kind, e.key, cause)
	}
	s.dropLocked(e)
	s.stats.Quarantined++
	_ = s.writeIndexLocked()
}

// dropLocked removes an entry from the index and the memory front.
func (s *Store) dropLocked(e *entry) {
	ck := compositeKey(e.kind, e.key)
	if cur, ok := s.entries[ck]; ok && cur == e {
		delete(s.entries, ck)
		s.bytes -= e.bytes
	}
	if raw, ok := s.mem[ck]; ok {
		s.memBytes -= int64(len(raw))
		delete(s.mem, ck)
		for i, k := range s.memOrder {
			if k == ck {
				s.memOrder = append(s.memOrder[:i], s.memOrder[i+1:]...)
				break
			}
		}
	}
}

// evictLocked deletes blobs until the byte budget is met: the victim is the
// highest-rank entry (background-class results go first), least recently
// used within that rank.  The blob named by keep (the one just written) is
// evicted last, so a single oversized blob still persists.
func (s *Store) evictLocked(keep string) {
	for s.bytes > s.opt.MaxBytes && len(s.entries) > 1 {
		var victim *entry
		for ck, e := range s.entries {
			if ck == keep {
				continue
			}
			if victim == nil || e.rank > victim.rank ||
				(e.rank == victim.rank && e.access < victim.access) {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		//refrint:allow lockcheck -- eviction must unlink the blob before the index entry is dropped, or a concurrent lookup could resurrect it
		if err := os.Remove(s.blobPath(victim.kind, victim.key)); err != nil && !os.IsNotExist(err) {
			s.opt.Logf("store: evicting %s/%s: %v", victim.kind, victim.key, err)
		}
		s.dropLocked(victim)
		s.stats.Evictions++
		s.stats.EvictionsByRank[min(victim.rank, NumRanks-1)]++
		s.opt.Logf("store: evicted %s/%s (rank %d, %d bytes)", victim.kind, victim.key, victim.rank, victim.bytes)
	}
	// Deleted files leave the on-disk index stale until the next batched
	// write (reconcile-on-open heals a crash in that window); rewriting it
	// per eviction would make every over-budget Put pay a full index
	// rewrite.  The victim scan is O(entries) per eviction — fine at the
	// store's scale; revisit with an access-ordered structure if entry
	// counts grow past ~10^5.
}

// touchLocked records an access for LRU purposes.
func (s *Store) touchLocked(ck string) {
	if e, ok := s.entries[ck]; ok {
		s.clock++
		e.access = s.clock
	}
}

// memTouchLocked moves a hit key to the most-recently-used end of the
// front's order, so hot payloads are not evicted in insertion order.
func (s *Store) memTouchLocked(ck string) {
	for i, k := range s.memOrder {
		if k == ck {
			s.memOrder = append(s.memOrder[:i], s.memOrder[i+1:]...)
			s.memOrder = append(s.memOrder, ck)
			return
		}
	}
}

// memPutLocked installs payload bytes in the memory front, which is
// bounded both by entry count and by total bytes (sweep blobs are large).
func (s *Store) memPutLocked(ck string, raw []byte) {
	if old, ok := s.mem[ck]; ok {
		s.memBytes -= int64(len(old))
	} else {
		s.memOrder = append(s.memOrder, ck)
	}
	s.mem[ck] = raw
	s.memBytes += int64(len(raw))
	for len(s.memOrder) > 1 &&
		(len(s.memOrder) > s.opt.MemEntries || s.memBytes > s.opt.MemBytes) {
		oldest := s.memOrder[0]
		s.memOrder = s.memOrder[1:]
		s.memBytes -= int64(len(s.mem[oldest]))
		delete(s.mem, oldest)
	}
}

// blobPath returns the on-disk path of a blob, sharded by key prefix so a
// big store does not put thousands of files in one directory.
func (s *Store) blobPath(kind Kind, key string) string {
	prefix := key
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(s.dir, versionDir, string(kind), prefix, key+".json")
}

func compositeKey(kind Kind, key string) string { return string(kind) + "/" + key }

// validKey guards against keys that would escape the data directory.  Keys
// are content hashes in practice, so anything else is a programming error.
func validKey(key string) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("store: key %q contains unsafe character %q", key, r)
		}
	}
	if strings.HasPrefix(key, ".") {
		return fmt.Errorf("store: key %q must not start with a dot", key)
	}
	return nil
}

func checksum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// atomicWrite writes data to path via a temp file + fsync + rename, so
// readers (and crashes) never observe a partial blob and a completed write
// is durable once the rename lands.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Fsync the directory so the rename itself survives power loss; without
	// it the blob's directory entry may vanish on crash even though the
	// data blocks were synced.  Best-effort: not every platform/filesystem
	// supports syncing directories.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// --- index ---

// indexFile is the serialized index: sizes and LRU order survive restarts.
type indexFile struct {
	Version int          `json:"version"`
	Clock   int64        `json:"clock"`
	Entries []indexEntry `json:"entries"`
}

type indexEntry struct {
	Kind   Kind   `json:"kind"`
	Key    string `json:"key"`
	Bytes  int64  `json:"bytes"`
	Access int64  `json:"access"`
	// Rank is the eviction rank (omitted for rank 0, so indexes written
	// before ranks existed load as most-retained).
	Rank int `json:"rank,omitempty"`
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, versionDir, "index.json") }

// indexWriteInterval batches index writes: the index is a cache of sizes
// and LRU order, not the source of truth (loadIndex reconciles against the
// blobs on disk), so persisting it on every put or eviction would only turn
// an N-cell sweep into N full index rewrites.  It is always written on
// Close and on quarantine.
const indexWriteInterval = 64

// maybeWriteIndexLocked persists the index once enough mutations have
// accumulated since the last write.
func (s *Store) maybeWriteIndexLocked() error {
	s.dirty++
	if s.dirty < indexWriteInterval {
		return nil
	}
	return s.writeIndexLocked()
}

// writeIndexLocked persists the index atomically.
func (s *Store) writeIndexLocked() error {
	idx := indexFile{Version: Version, Clock: s.clock}
	for _, e := range s.entries {
		idx.Entries = append(idx.Entries, indexEntry{Kind: e.kind, Key: e.key, Bytes: e.bytes, Access: e.access, Rank: e.rank})
	}
	sort.Slice(idx.Entries, func(i, j int) bool {
		if idx.Entries[i].Kind != idx.Entries[j].Kind {
			return idx.Entries[i].Kind < idx.Entries[j].Kind
		}
		return idx.Entries[i].Key < idx.Entries[j].Key
	})
	//refrint:allow lockcheck -- the index snapshot must be serialized under the mutex so the persisted file matches a consistent in-memory state
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding index: %w", err)
	}
	if err := atomicWrite(s.indexPath(), data); err != nil {
		return fmt.Errorf("store: writing index: %w", err)
	}
	s.dirty = 0
	return nil
}

// loadIndex populates the in-memory index from the index file, then
// reconciles it against the blobs actually on disk: files missing from the
// index are adopted (with zero access time, so they are first in line for
// eviction), index entries whose file vanished are dropped, and sizes are
// refreshed from the filesystem.
func (s *Store) loadIndex() error {
	recorded := make(map[string]indexEntry)
	if data, err := os.ReadFile(s.indexPath()); err == nil {
		var idx indexFile
		if err := json.Unmarshal(data, &idx); err == nil && idx.Version == Version {
			s.clock = idx.Clock
			for _, e := range idx.Entries {
				recorded[compositeKey(e.Kind, e.Key)] = e
			}
		} else if err != nil {
			s.opt.Logf("store: index unreadable, rebuilding: %v", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: reading index: %w", err)
	}

	for _, kind := range []Kind{KindSweep, KindCell} {
		root := filepath.Join(s.dir, versionDir, string(kind))
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") || strings.HasPrefix(d.Name(), ".") {
				return err
			}
			key := strings.TrimSuffix(d.Name(), ".json")
			if validKey(key) != nil {
				return nil
			}
			info, err := d.Info()
			if err != nil {
				return nil // vanished mid-walk; skip
			}
			ck := compositeKey(kind, key)
			e := &entry{kind: kind, key: key, bytes: info.Size()}
			if rec, ok := recorded[ck]; ok {
				e.access = rec.Access
				e.rank = max(rec.Rank, 0)
			}
			s.entries[ck] = e
			s.bytes += e.bytes
			return nil
		})
		if err != nil {
			return fmt.Errorf("store: scanning %s: %w", root, err)
		}
	}
	return nil
}
