package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"refrint/internal/faults"
)

// fastOptions keeps retry/probe waits out of test wall-clock.
func fastOptions() Options {
	return Options{
		WriteRetries:  2,
		RetryBase:     time.Millisecond,
		DegradeAfter:  2,
		ProbeInterval: 5 * time.Millisecond,
		Sleep:         func(time.Duration) {},
	}
}

// TestPutErrorReachesCaller verifies a put that exhausts its retries below
// the degradation threshold surfaces the write error to the caller.
func TestPutErrorReachesCaller(t *testing.T) {
	inj, err := faults.Parse("store.put:error")
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions()
	opt.DegradeAfter = 100 // stay below the threshold for this test
	s := open(t, t.TempDir(), opt)

	faults.Enable(inj)
	t.Cleanup(faults.Disable)
	putErr := s.Put(KindCell, key(1), testPayload(1))
	if putErr == nil {
		t.Fatal("Put succeeded through injected write failures")
	}
	if !strings.Contains(putErr.Error(), "injected fault") {
		t.Fatalf("Put error = %v, want the injected cause", putErr)
	}
	// The failed attempt was retried (initial + WriteRetries attempts).
	if got := s.Stats().WriteRetries; got != int64(opt.WriteRetries) {
		t.Fatalf("WriteRetries = %d, want %d", got, opt.WriteRetries)
	}
}

// TestTransientFailureRetriesThenSucceeds verifies the retry loop recovers
// from a failure window shorter than the retry budget: the put lands on disk
// and the caller never sees an error.
func TestTransientFailureRetriesThenSucceeds(t *testing.T) {
	var mu sync.Mutex
	fails := 2
	opt := fastOptions()
	opt.WriteRetries = 4
	// Flip injection off after two failed attempts, from the backoff hook —
	// the only code that runs between attempts.
	opt.Sleep = func(time.Duration) {
		mu.Lock()
		fails--
		if fails <= 0 {
			faults.Disable()
		}
		mu.Unlock()
	}
	s := open(t, t.TempDir(), opt)

	inj, err := faults.Parse("store.put:error")
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(inj)
	t.Cleanup(faults.Disable)

	if err := s.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatalf("Put through transient failure: %v", err)
	}
	if !s.Contains(KindCell, key(1)) {
		t.Fatal("retried put did not land on disk")
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("successful retry must not degrade the store")
	}
}

// TestDegradeAndRecover drives the full degradation lifecycle: consecutive
// put failures flip the store to memory-only mode (puts absorbed, readable
// from the front, nothing on disk), and the background probe flips it back
// once injection stops — after which puts persist again.
func TestDegradeAndRecover(t *testing.T) {
	s := open(t, t.TempDir(), fastOptions())

	inj, err := faults.Parse("store.put:error")
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(inj)
	t.Cleanup(faults.Disable)

	// DegradeAfter=2: the first failed put errors, the second trips
	// degraded mode and is absorbed.
	if err := s.Put(KindCell, key(1), testPayload(1)); err == nil {
		t.Fatal("first failing put should error")
	}
	if err := s.Put(KindCell, key(2), testPayload(2)); err != nil {
		t.Fatalf("threshold-crossing put should be absorbed, got %v", err)
	}
	deg, cause := s.Degraded()
	if !deg || !strings.Contains(cause, "injected fault") {
		t.Fatalf("Degraded() = (%v, %q), want degraded with the injected cause", deg, cause)
	}

	// Degraded puts are served from memory: readable, not on disk.
	if err := s.Put(KindCell, key(3), testPayload(3)); err != nil {
		t.Fatalf("degraded put: %v", err)
	}
	var got payload
	if !s.Get(KindCell, key(3), &got) || got.Name != testPayload(3).Name {
		t.Fatalf("degraded put unreadable from the memory front (got %+v)", got)
	}
	if s.Contains(KindCell, key(3)) {
		t.Fatal("degraded put reached the disk index")
	}
	st := s.Stats()
	if !st.Degraded || st.DegradedPuts < 2 {
		t.Fatalf("stats = %+v, want Degraded with >= 2 DegradedPuts", st)
	}

	// Recovery: stop injecting and wait for the probe to notice.
	faults.Disable()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if deg, _ := s.Degraded(); !deg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store never left degraded mode after faults stopped")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Put(KindCell, key(4), testPayload(4)); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
	if !s.Contains(KindCell, key(4)) {
		t.Fatal("post-recovery put did not reach the disk")
	}
	// The probe's scratch file must not linger.
	if _, err := os.Lstat(filepath.Join(s.Dir(), "v1", probeFile)); !os.IsNotExist(err) {
		t.Errorf("probe scratch file left behind (err=%v)", err)
	}
}

// TestInjectedGetIsPlainMiss verifies an injected read fault is a synthetic
// miss: the intact on-disk blob must not be quarantined, and the next
// uninjected read serves it.
func TestInjectedGetIsPlainMiss(t *testing.T) {
	// MemEntries cannot go below 1; use a second key to push key(1) out of
	// the memory front so Get must hit the disk.
	s := open(t, t.TempDir(), Options{MemEntries: 1})
	if err := s.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCell, key(2), testPayload(2)); err != nil {
		t.Fatal(err)
	}

	inj, err := faults.Parse("store.get:error")
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(inj)
	var got payload
	if s.Get(KindCell, key(1), &got) {
		faults.Disable()
		t.Fatal("Get hit through injected read failure")
	}
	faults.Disable()

	if got := s.Stats().Quarantined; got != 0 {
		t.Fatalf("injected read fault quarantined %d intact blobs", got)
	}
	if !s.Get(KindCell, key(1), &got) || got.Name != testPayload(1).Name {
		t.Fatalf("blob unreadable after injection stopped (got %+v)", got)
	}
}

// TestQuarantineRenameFailureStillDrops covers the quarantine fallback: when
// the corrupt blob vanishes before the rename (so the rename fails), the
// index entry is still dropped and the key becomes a plain miss.
func TestQuarantineRenameFailureStillDrops(t *testing.T) {
	var logs []string
	var logMu sync.Mutex
	s := open(t, t.TempDir(), Options{
		MemEntries: 1,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err := s.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCell, key(2), testPayload(2)); err != nil {
		t.Fatal(err) // pushes key(1) out of the memory front
	}
	// Corrupt the blob so the read fails, then arrange for the quarantine
	// rename itself to fail by deleting the file between the failed read and
	// the rename.  Simplest deterministic stand-in: remove the file and
	// corrupt nothing — readBlob fails with ENOENT, quarantine's rename of
	// the missing file fails, and the fallback must still drop the entry.
	if err := os.Remove(s.blobPath(KindCell, key(1))); err != nil {
		t.Fatal(err)
	}

	var got payload
	if s.Get(KindCell, key(1), &got) {
		t.Fatal("Get hit a deleted blob")
	}
	if s.Contains(KindCell, key(1)) {
		t.Fatal("failed quarantine left the entry indexed")
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	logMu.Lock()
	defer logMu.Unlock()
	var sawFallback bool
	for _, l := range logs {
		if strings.Contains(l, "quarantine of") && strings.Contains(l, "failed") {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Errorf("rename-failure fallback not logged; logs: %v", logs)
	}
	// A subsequent Get is a plain miss, not another quarantine.
	if s.Get(KindCell, key(1), &got) {
		t.Fatal("dropped key still hits")
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("second miss quarantined again (%d)", got)
	}
}

// TestDegradedStoreCloseStopsProbe verifies Close while degraded does not
// leak the probe goroutine (the probeWG wait would hang or race otherwise).
func TestDegradedStoreCloseStopsProbe(t *testing.T) {
	opt := fastOptions()
	opt.ProbeInterval = time.Hour // the probe must be stopped, not finish
	s, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.Parse("store.put:error")
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(inj)
	t.Cleanup(faults.Disable)
	for i := 0; i < 2; i++ {
		_ = s.Put(KindCell, key(i), testPayload(i))
	}
	if deg, _ := s.Degraded(); !deg {
		t.Fatal("store did not degrade")
	}
	faults.Disable()

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung waiting for the probe goroutine")
	}
}

// TestCorruptGetQuarantines verifies the corrupt injection mode takes the
// real quarantine path: unlike store.get:error (a synthetic transient miss),
// store.get:corrupt simulates a bad blob, so the read must quarantine it,
// drop it from the index, and degrade to a miss — mirroring what a genuine
// checksum failure does, without touching the bytes on disk.
func TestCorruptGetQuarantines(t *testing.T) {
	s := open(t, t.TempDir(), Options{MemEntries: 1})
	if err := s.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCell, key(2), testPayload(2)); err != nil {
		t.Fatal(err) // pushes key(1) out of the memory front
	}

	inj, err := faults.Parse("store.get:corrupt")
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(inj)
	t.Cleanup(faults.Disable)
	var got payload
	if s.Get(KindCell, key(1), &got) {
		t.Fatal("Get hit through an injected corruption")
	}
	faults.Disable()

	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	if s.Contains(KindCell, key(1)) {
		t.Fatal("corrupt blob still indexed")
	}
	// The blob was moved aside, not deleted: the quarantine directory keeps
	// the evidence, and the key is now a plain (recomputable) miss.
	qdir := filepath.Join(s.Dir(), "v1", "quarantine")
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if strings.Contains(e.Name(), key(1)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("quarantine dir %s has no blob for key(1)", qdir)
	}
	if s.Get(KindCell, key(1), &got) {
		t.Fatal("quarantined key still hits")
	}
	// Read-path corruption must not degrade the store: writes are fine.
	if deg, _ := s.Degraded(); deg {
		t.Error("corruption on read degraded the write path")
	}
	if err := s.Put(KindCell, key(1), testPayload(1)); err != nil {
		t.Fatalf("re-put after quarantine: %v", err)
	}
}
