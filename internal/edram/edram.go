// Package edram models the retention behaviour of eDRAM cache arrays: cell
// retention periods, the weaker Sentry bit of Section 4.1 of the paper, and
// the staggered group schedule used by the conventional Periodic refresh
// scheme.
//
// The package is purely about timing arithmetic — which lines are due for
// refresh (or have decayed) at a given cycle.  The decision of what to do
// when a line is due (refresh it, write it back, invalidate it) belongs to
// the refresh policies in package core.
package edram

import (
	"fmt"

	"refrint/internal/config"
)

// Retention describes the decay timing of an eDRAM array.
type Retention struct {
	// CellCycles is the retention period of the data cells: a line whose
	// charge is older than this has decayed and its data is lost.
	CellCycles int64
	// SentryCycles is the retention period of the per-line Sentry bit, which
	// is built to decay earlier than the data cells (guard band).
	SentryCycles int64
}

// NewRetention derives the retention parameters from a cell configuration.
func NewRetention(cell config.CellConfig) Retention {
	if !cell.Refreshable() {
		return Retention{}
	}
	return Retention{
		CellCycles:   cell.RetentionCycles,
		SentryCycles: cell.SentryRetention(),
	}
}

// Refreshable reports whether the array needs refresh at all (false for the
// SRAM baseline, for which NewRetention returns the zero value).
func (r Retention) Refreshable() bool { return r.CellCycles > 0 }

// GuardBand returns the number of cycles by which the sentry leads the cell.
func (r Retention) GuardBand() int64 { return r.CellCycles - r.SentryCycles }

// SentryDeadline returns the cycle at which the Sentry bit of a line last
// charged at `lastRefresh` decays and raises an interrupt.
func (r Retention) SentryDeadline(lastRefresh int64) int64 {
	return lastRefresh + r.SentryCycles
}

// CellDeadline returns the cycle at which the data cells of a line last
// charged at `lastRefresh` decay (data is lost at or after this cycle).
func (r Retention) CellDeadline(lastRefresh int64) int64 {
	return lastRefresh + r.CellCycles
}

// Decayed reports whether a line last charged at lastRefresh has lost its
// data by cycle now.
func (r Retention) Decayed(lastRefresh, now int64) bool {
	if !r.Refreshable() {
		return false
	}
	return now >= r.CellDeadline(lastRefresh)
}

// SentryFired reports whether the sentry bit of a line last charged at
// lastRefresh has decayed (and hence interrupted) by cycle now.
func (r Retention) SentryFired(lastRefresh, now int64) bool {
	if !r.Refreshable() {
		return false
	}
	return now >= r.SentryDeadline(lastRefresh)
}

// Validate reports whether the retention parameters are self-consistent.
func (r Retention) Validate() error {
	if !r.Refreshable() {
		return nil
	}
	if r.SentryCycles <= 0 {
		return fmt.Errorf("edram: sentry retention must be positive, got %d", r.SentryCycles)
	}
	if r.SentryCycles >= r.CellCycles {
		return fmt.Errorf("edram: sentry retention %d must be shorter than cell retention %d",
			r.SentryCycles, r.CellCycles)
	}
	return nil
}

// PeriodicSchedule is the staggered group-refresh schedule of the
// conventional Periodic scheme: the cache's lines are split into Groups
// groups; group g is refreshed at phase g*Period/Groups within every
// retention period, so the whole cache is covered exactly once per period
// with the refresh work spread evenly in time (Section 3.2).
type PeriodicSchedule struct {
	Period int64 // the cell retention period
	Groups int   // number of groups (sub-arrays per bank, from CACTI)
	Lines  int   // total lines in the bank
}

// NewPeriodicSchedule builds the schedule for a bank.
func NewPeriodicSchedule(retention Retention, groups, lines int) PeriodicSchedule {
	if groups <= 0 {
		groups = 1
	}
	return PeriodicSchedule{Period: retention.CellCycles, Groups: groups, Lines: lines}
}

// LinesPerGroup returns the number of lines refreshed in one group sweep.
func (s PeriodicSchedule) LinesPerGroup() int {
	if s.Groups <= 0 {
		return s.Lines
	}
	return (s.Lines + s.Groups - 1) / s.Groups
}

// GroupAt returns which group is scheduled at the k-th firing, and the cycle
// of that firing.  Firings are numbered from 0; firing k happens at
// (k+1)*Period/Groups so the first sweep completes exactly one period after
// reset.
func (s PeriodicSchedule) GroupAt(k int64) (group int, cycle int64) {
	if s.Groups <= 0 {
		return 0, s.Period
	}
	group = int(k % int64(s.Groups))
	interval := s.Period / int64(s.Groups)
	cycle = (k + 1) * interval
	return group, cycle
}

// FiringsUpTo returns how many group firings have deadlines at or before
// cycle `now`.
func (s PeriodicSchedule) FiringsUpTo(now int64) int64 {
	if s.Period <= 0 || s.Groups <= 0 {
		return 0
	}
	interval := s.Period / int64(s.Groups)
	if interval <= 0 {
		return 0
	}
	if now < interval {
		return 0
	}
	return now / interval
}

// GroupRange returns the [start, end) flat line-index range of a group.
func (s PeriodicSchedule) GroupRange(group int) (start, end int) {
	per := s.LinesPerGroup()
	start = group * per
	end = start + per
	if start > s.Lines {
		start = s.Lines
	}
	if end > s.Lines {
		end = s.Lines
	}
	return start, end
}

// BlockCycles returns for how many cycles a group sweep keeps the bank port
// busy: one cycle per line, pipelined (Section 5, "a line can be refreshed
// in a cycle, when done in a pipelined fashion").
func (s PeriodicSchedule) BlockCycles() int64 {
	return int64(s.LinesPerGroup())
}
