package edram

import (
	"testing"
	"testing/quick"

	"refrint/internal/config"
)

func retention50us() Retention {
	cell := config.AsEDRAM(config.FullSize(), config.PeriodicAll, config.Retention50us).Cell
	return NewRetention(cell)
}

func TestNewRetentionFromConfig(t *testing.T) {
	r := retention50us()
	if !r.Refreshable() {
		t.Fatal("eDRAM retention should be refreshable")
	}
	if r.CellCycles != 50000 {
		t.Errorf("CellCycles = %d, want 50000", r.CellCycles)
	}
	if r.SentryCycles != 50000-16384 {
		t.Errorf("SentryCycles = %d, want %d", r.SentryCycles, 50000-16384)
	}
	if r.GuardBand() != 16384 {
		t.Errorf("GuardBand = %d, want 16384", r.GuardBand())
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestSRAMRetentionIsInert(t *testing.T) {
	r := NewRetention(config.CellConfig{Tech: config.SRAM, LeakageRatio: 1})
	if r.Refreshable() {
		t.Error("SRAM should not be refreshable")
	}
	if r.Decayed(0, 1<<40) || r.SentryFired(0, 1<<40) {
		t.Error("SRAM lines must never decay")
	}
	if err := r.Validate(); err != nil {
		t.Errorf("SRAM retention should validate: %v", err)
	}
}

func TestDeadlinesAndDecay(t *testing.T) {
	r := Retention{CellCycles: 1000, SentryCycles: 800}
	if got := r.SentryDeadline(500); got != 1300 {
		t.Errorf("SentryDeadline = %d, want 1300", got)
	}
	if got := r.CellDeadline(500); got != 1500 {
		t.Errorf("CellDeadline = %d, want 1500", got)
	}
	if r.SentryFired(500, 1299) {
		t.Error("sentry fired too early")
	}
	if !r.SentryFired(500, 1300) {
		t.Error("sentry should fire at its deadline")
	}
	if r.Decayed(500, 1499) {
		t.Error("cell decayed too early")
	}
	if !r.Decayed(500, 1500) {
		t.Error("cell should decay at its deadline")
	}
}

func TestSentryAlwaysLeadsCellProperty(t *testing.T) {
	r := retention50us()
	// Property: for any charge time and observation time, if the cell has
	// decayed the sentry must have fired first (the guard band guarantees
	// the interrupt precedes data loss).
	f := func(charge uint32, delta uint32) bool {
		last := int64(charge)
		now := last + int64(delta%200000)
		if r.Decayed(last, now) && !r.SentryFired(last, now) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (Retention{CellCycles: 100, SentryCycles: 100}).Validate(); err == nil {
		t.Error("sentry == cell retention should be invalid")
	}
	if err := (Retention{CellCycles: 100, SentryCycles: 0}).Validate(); err == nil {
		t.Error("zero sentry retention should be invalid")
	}
	if err := (Retention{CellCycles: 100, SentryCycles: 50}).Validate(); err != nil {
		t.Errorf("valid retention rejected: %v", err)
	}
}

func TestPeriodicScheduleGroups(t *testing.T) {
	r := Retention{CellCycles: 4000, SentryCycles: 3000}
	s := NewPeriodicSchedule(r, 4, 1024)
	if s.LinesPerGroup() != 256 {
		t.Errorf("LinesPerGroup = %d, want 256", s.LinesPerGroup())
	}
	if s.BlockCycles() != 256 {
		t.Errorf("BlockCycles = %d, want 256", s.BlockCycles())
	}
	// Firings at 1000, 2000, 3000, 4000, ... covering groups 0..3 cyclically.
	g, cycle := s.GroupAt(0)
	if g != 0 || cycle != 1000 {
		t.Errorf("GroupAt(0) = %d,%d want 0,1000", g, cycle)
	}
	g, cycle = s.GroupAt(5)
	if g != 1 || cycle != 6000 {
		t.Errorf("GroupAt(5) = %d,%d want 1,6000", g, cycle)
	}
	if got := s.FiringsUpTo(999); got != 0 {
		t.Errorf("FiringsUpTo(999) = %d, want 0", got)
	}
	if got := s.FiringsUpTo(1000); got != 1 {
		t.Errorf("FiringsUpTo(1000) = %d, want 1", got)
	}
	if got := s.FiringsUpTo(4500); got != 4 {
		t.Errorf("FiringsUpTo(4500) = %d, want 4", got)
	}
}

func TestPeriodicScheduleCoversWholeCacheEachPeriod(t *testing.T) {
	r := Retention{CellCycles: 4000, SentryCycles: 3000}
	s := NewPeriodicSchedule(r, 4, 1000) // not divisible: last group smaller
	covered := make([]bool, 1000)
	for k := int64(0); k < int64(s.Groups); k++ {
		g, cycle := s.GroupAt(k)
		if cycle > r.CellCycles {
			t.Errorf("firing %d at cycle %d exceeds the retention period", k, cycle)
		}
		start, end := s.GroupRange(g)
		for i := start; i < end; i++ {
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("line %d not covered within one retention period", i)
		}
	}
}

func TestPeriodicScheduleGroupRangeClamped(t *testing.T) {
	r := Retention{CellCycles: 4000, SentryCycles: 3000}
	s := NewPeriodicSchedule(r, 3, 10)
	start, end := s.GroupRange(2)
	if start != 8 || end != 10 {
		t.Errorf("GroupRange(2) = [%d,%d), want [8,10)", start, end)
	}
	start, end = s.GroupRange(5)
	if start != 10 || end != 10 {
		t.Errorf("out-of-range group should clamp to empty, got [%d,%d)", start, end)
	}
}

func TestPeriodicScheduleDegenerateGroups(t *testing.T) {
	r := Retention{CellCycles: 4000, SentryCycles: 3000}
	s := NewPeriodicSchedule(r, 0, 100)
	if s.Groups != 1 {
		t.Errorf("Groups = %d, want fallback to 1", s.Groups)
	}
	if s.LinesPerGroup() != 100 {
		t.Errorf("LinesPerGroup = %d, want 100", s.LinesPerGroup())
	}
}

func TestStaggeringSpreadsFirings(t *testing.T) {
	// The schedule staggers the refresh of a full cache across a retention
	// period (Section 3.2): consecutive firings must be separated by
	// Period/Groups cycles.
	r := Retention{CellCycles: 50000, SentryCycles: 33616}
	s := NewPeriodicSchedule(r, 4, 16384)
	_, c0 := s.GroupAt(0)
	_, c1 := s.GroupAt(1)
	if c1-c0 != 12500 {
		t.Errorf("firing spacing = %d, want 12500", c1-c0)
	}
}
