// Package workload provides synthetic memory-reference generators standing
// in for the SPLASH-2 and PARSEC applications of Table 5.3.
//
// The original evaluation ran the real 16-threaded binaries inside SESC.
// The refresh policies, however, only observe the memory reference stream:
// which line is touched, by which core, read or written, and how much
// compute separates consecutive references.  Each generator here is a small
// statistical model parameterised along the two axes of Figure 3.1 —
// application footprint relative to the last-level cache, and "visibility"
// of upper-level activity at the LLC (data sharing and writeback traffic) —
// plus a read/write mix and compute intensity.  The parameters are chosen so
// every application lands in the class the paper assigns it in Table 6.1:
//
//	Class 1 (large footprint, high visibility):  FFT, FMM, Cholesky, Fluidanimate
//	Class 2 (small footprint, high visibility):  Barnes, LU, Radix, Radiosity
//	Class 3 (small footprint, low visibility):   Blackscholes, Streamcluster, Raytrace
package workload

import (
	"fmt"

	"refrint/internal/config"
)

// Class is the application class of Figure 3.1 / Table 6.1.
type Class int

// Application classes.
const (
	// ClassUnknown is returned by classification helpers when the parameters
	// do not clearly fall into one of the paper's three classes.
	ClassUnknown Class = iota
	// Class1: large footprint, high LLC visibility.
	Class1
	// Class2: small footprint, high LLC visibility.
	Class2
	// Class3: small footprint, low LLC visibility.
	Class3
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Class1:
		return "Class 1"
	case Class2:
		return "Class 2"
	case Class3:
		return "Class 3"
	default:
		return "Unknown"
	}
}

// Params is the statistical description of one application.
type Params struct {
	// Name of the benchmark (Table 5.3).
	Name string
	// Suite is "SPLASH-2" or "PARSEC".
	Suite string
	// Input is the paper's problem size (documentation only).
	Input string

	// FootprintLines is the number of distinct cache lines the application
	// touches, across all threads, at full size.  Scaled configurations
	// shrink this by the preset's scale factor.
	FootprintLines int

	// SharedFraction is the probability that a reference targets the
	// globally shared region rather than the issuing thread's private
	// region.  Sharing creates writebacks and downgrades visible at the LLC.
	SharedFraction float64

	// WriteFraction is the probability that a data reference is a store.
	WriteFraction float64

	// Locality is the probability that a reference re-touches a line from
	// the thread's recent working window instead of striding to a new line.
	// High locality keeps traffic inside L1/L2 (low LLC visibility).
	Locality float64

	// StreamBias is the probability that a "new line" reference advances
	// sequentially through its region rather than jumping to a random line.
	// Streaming applications (Class 1) have a high bias: data that has been
	// displaced from the cache is rarely revisited, which is exactly why
	// early eviction by WB(n,m) is cheap for them.  Zero means "use the
	// default" of 0.7.
	StreamBias float64

	// WorkingWindow is the number of recently-touched lines that make up a
	// thread's hot working set.
	WorkingWindow int

	// ComputePerMemOp is the mean number of non-memory instructions between
	// two memory references.
	ComputePerMemOp int

	// MemOpsPerThread is the number of memory references each thread issues
	// in one run at full size (scaled presets shrink it).
	MemOpsPerThread int64

	// InstrFetchFraction is the probability a reference is an instruction
	// fetch from the (small) code footprint.
	InstrFetchFraction float64

	// CodeLines is the number of distinct lines of code footprint.
	CodeLines int

	// PaperClass is the class Table 6.1 assigns to this application.
	PaperClass Class
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: missing name")
	}
	if p.FootprintLines <= 0 {
		return fmt.Errorf("workload %s: footprint must be positive", p.Name)
	}
	if p.SharedFraction < 0 || p.SharedFraction > 1 {
		return fmt.Errorf("workload %s: shared fraction %v out of [0,1]", p.Name, p.SharedFraction)
	}
	if p.WriteFraction < 0 || p.WriteFraction > 1 {
		return fmt.Errorf("workload %s: write fraction %v out of [0,1]", p.Name, p.WriteFraction)
	}
	if p.Locality < 0 || p.Locality > 1 {
		return fmt.Errorf("workload %s: locality %v out of [0,1]", p.Name, p.Locality)
	}
	if p.StreamBias < 0 || p.StreamBias > 1 {
		return fmt.Errorf("workload %s: stream bias %v out of [0,1]", p.Name, p.StreamBias)
	}
	if p.WorkingWindow <= 0 {
		return fmt.Errorf("workload %s: working window must be positive", p.Name)
	}
	if p.ComputePerMemOp < 0 {
		return fmt.Errorf("workload %s: compute per memop must be non-negative", p.Name)
	}
	if p.MemOpsPerThread <= 0 {
		return fmt.Errorf("workload %s: memops per thread must be positive", p.Name)
	}
	if p.InstrFetchFraction < 0 || p.InstrFetchFraction >= 1 {
		return fmt.Errorf("workload %s: ifetch fraction %v out of [0,1)", p.Name, p.InstrFetchFraction)
	}
	if p.CodeLines <= 0 {
		return fmt.Errorf("workload %s: code lines must be positive", p.Name)
	}
	return nil
}

// FootprintRatio returns the application footprint divided by the total LLC
// capacity in lines — the X axis of Figure 3.1.
func (p Params) FootprintRatio(cfg config.Config) float64 {
	return float64(p.FootprintLines) / float64(cfg.L3.TotalLines())
}

// Visibility returns a [0,1] score of how much of the upper-level activity
// the LLC can observe — the Y axis of Figure 3.1.  Sharing (which causes
// downgrades and writebacks through the L3) and a working set that spills
// out of the private caches both raise visibility.
func (p Params) Visibility(cfg config.Config) float64 {
	privateLines := float64(cfg.DL1.TotalLines() + cfg.L2.TotalLines())
	perThreadFootprint := float64(p.FootprintLines) / float64(cfg.Cores)
	spill := 0.0
	if perThreadFootprint > privateLines {
		spill = 1 - privateLines/perThreadFootprint
	}
	vis := p.SharedFraction*2 + spill
	if vis > 1 {
		vis = 1
	}
	return vis
}

// Classify places the application in Figure 3.1's plane for a given
// configuration.  The thresholds follow the paper's qualitative description:
// a footprint larger than the LLC is "large"; visibility above 0.25 is
// "high".
func (p Params) Classify(cfg config.Config) Class {
	large := p.FootprintRatio(cfg) >= 1.0
	visible := p.Visibility(cfg) >= 0.25
	switch {
	case large && visible:
		return Class1
	case !large && visible:
		return Class2
	case !large && !visible:
		return Class3
	default:
		// Large footprint with low visibility: the paper found no such
		// application (Section 3.3).
		return ClassUnknown
	}
}

// Scale returns a copy of the parameters with the footprint and per-thread
// work divided by factor (used with config.Scaled so that footprint-to-cache
// ratios stay as in the paper).
func (p Params) Scale(factor int) Params {
	if factor <= 1 {
		return p
	}
	out := p
	out.FootprintLines = maxInt(p.FootprintLines/factor, 64)
	out.MemOpsPerThread = maxInt64(p.MemOpsPerThread/int64(factor), 2000)
	out.WorkingWindow = maxInt(p.WorkingWindow/factor, 16)
	out.CodeLines = maxInt(p.CodeLines/factor, 8)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
