package workload

import (
	"fmt"
	"math/rand"

	"refrint/internal/config"
	"refrint/internal/mem"
)

// Address-space layout produced by the generators.  Each thread owns a
// private region; all threads share one shared region; a small region holds
// code.  Regions are placed far apart so they never alias.
const (
	privateRegionBase = 0x0000_0000_0000
	sharedRegionBase  = 0x1000_0000_0000
	codeRegionBase    = 0x2000_0000_0000
	privateRegionSize = 0x0100_0000_0000 // per-thread stride within the private area
)

// Generator produces the memory reference stream of one thread of an
// application.  Generators are deterministic for a given (params, thread,
// seed) triple.
type Generator struct {
	params Params
	geom   mem.LineGeometry
	thread int
	rng    *rand.Rand

	// Region sizes in lines.
	privateLines int
	sharedLines  int

	// window holds the thread's recently-touched lines (its hot working
	// set); references re-touch it with probability Locality.
	window []mem.LineAddr
	wpos   int

	// stride state for the "new line" path, giving the generator a mix of
	// streaming and random access like real array codes.
	nextPrivate int64
	nextShared  int64

	issued int64
}

// NewGenerator builds the reference generator for one thread.
func NewGenerator(p Params, cfg config.Config, thread int, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	if thread < 0 || thread >= cfg.Cores {
		panic(fmt.Sprintf("workload: thread %d out of range [0,%d)", thread, cfg.Cores))
	}
	// Split the footprint between one shared region and per-thread private
	// regions, in proportion to the shared fraction of references.
	shared := int(float64(p.FootprintLines) * p.SharedFraction)
	if shared < 1 {
		shared = 1
	}
	private := (p.FootprintLines - shared) / cfg.Cores
	if private < 1 {
		private = 1
	}
	g := &Generator{
		params:       p,
		geom:         cfg.Geometry(),
		thread:       thread,
		rng:          rand.New(rand.NewSource(seed ^ int64(thread)*0x5851F42D4C957F2D)),
		privateLines: private,
		sharedLines:  shared,
		window:       make([]mem.LineAddr, 0, p.WorkingWindow),
	}
	return g
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.params }

// Issued returns how many references have been generated so far.
func (g *Generator) Issued() int64 { return g.issued }

// Done reports whether the thread has issued its full quota of references.
func (g *Generator) Done() bool { return g.issued >= g.params.MemOpsPerThread }

// Remaining returns the number of references the thread has yet to issue.
func (g *Generator) Remaining() int64 {
	r := g.params.MemOpsPerThread - g.issued
	if r < 0 {
		return 0
	}
	return r
}

// privateLineAddr maps a line index within the thread's private region to a
// global line address.
func (g *Generator) privateLineAddr(idx int64) mem.LineAddr {
	base := mem.Addr(privateRegionBase + int64(g.thread)*privateRegionSize)
	return g.geom.LineOf(base) + mem.LineAddr(idx)
}

// sharedLineAddr maps a line index within the shared region to a global line
// address.
func (g *Generator) sharedLineAddr(idx int64) mem.LineAddr {
	return g.geom.LineOf(mem.Addr(sharedRegionBase)) + mem.LineAddr(idx)
}

// codeLineAddr maps a code line index to a global line address.
func (g *Generator) codeLineAddr(idx int64) mem.LineAddr {
	return g.geom.LineOf(mem.Addr(codeRegionBase)) + mem.LineAddr(idx)
}

// remember adds a line to the thread's working window.
func (g *Generator) remember(line mem.LineAddr) {
	if cap(g.window) == 0 {
		return
	}
	if len(g.window) < cap(g.window) {
		g.window = append(g.window, line)
		return
	}
	g.window[g.wpos] = line
	if g.wpos++; g.wpos == len(g.window) {
		g.wpos = 0
	}
}

// Next produces the thread's next memory reference.  It returns false when
// the thread has finished its quota.
func (g *Generator) Next() (mem.Access, bool) {
	if g.Done() {
		return mem.Access{}, false
	}
	g.issued++

	// Occasional instruction fetch from the small code footprint.
	if g.rng.Float64() < g.params.InstrFetchFraction {
		line := g.codeLineAddr(int64(g.rng.Intn(g.params.CodeLines)))
		return mem.Access{
			Addr: g.geom.BaseOf(line),
			Type: mem.InstrFetch,
			Core: g.thread,
			Gap:  g.computeGap(),
		}, true
	}

	stream := g.params.StreamBias
	if stream == 0 {
		stream = 0.7
	}
	var line mem.LineAddr
	shared := false
	if len(g.window) > 0 && g.rng.Float64() < g.params.Locality {
		// Re-touch the hot working set.
		line = g.window[g.rng.Intn(len(g.window))]
		shared = uint64(line) >= uint64(g.geom.LineOf(mem.Addr(sharedRegionBase)))
	} else if g.rng.Float64() < g.params.SharedFraction {
		// Touch the shared region: streaming with occasional jumps, which is
		// what creates producer/consumer traffic between cores.
		if g.rng.Float64() < stream {
			g.nextShared = (g.nextShared + 1) % int64(g.sharedLines)
		} else {
			g.nextShared = g.rng.Int63n(int64(g.sharedLines))
		}
		line = g.sharedLineAddr(g.nextShared)
		shared = true
	} else {
		// Touch the private region.
		if g.rng.Float64() < stream {
			g.nextPrivate = (g.nextPrivate + 1) % int64(g.privateLines)
		} else {
			g.nextPrivate = g.rng.Int63n(int64(g.privateLines))
		}
		line = g.privateLineAddr(g.nextPrivate)
	}
	g.remember(line)

	typ := mem.Read
	if g.rng.Float64() < g.params.WriteFraction {
		typ = mem.Write
	}
	return mem.Access{
		Addr:   g.geom.BaseOf(line),
		Type:   typ,
		Core:   g.thread,
		Gap:    g.computeGap(),
		Shared: shared,
	}, true
}

// computeGap draws the number of non-memory instructions preceding the next
// reference (geometric-ish around the configured mean).
func (g *Generator) computeGap() int64 {
	mean := g.params.ComputePerMemOp
	if mean <= 0 {
		return 0
	}
	// Uniform in [mean/2, 3*mean/2] keeps the mean while adding jitter.
	lo := mean / 2
	span := mean
	if span < 1 {
		span = 1
	}
	return int64(lo + g.rng.Intn(span+1))
}

// App bundles the per-thread generators of one application run.
type App struct {
	params config.Config
	gens   []*Generator
	p      Params
}

// NewApp builds one generator per core for the given application.
func NewApp(p Params, cfg config.Config, seed int64) *App {
	gens := make([]*Generator, cfg.Cores)
	for t := 0; t < cfg.Cores; t++ {
		gens[t] = NewGenerator(p, cfg, t, seed)
	}
	return &App{params: cfg, gens: gens, p: p}
}

// Thread returns the generator for one thread.
func (a *App) Thread(i int) *Generator { return a.gens[i] }

// Threads returns the number of threads.
func (a *App) Threads() int { return len(a.gens) }

// Params returns the application parameters.
func (a *App) Params() Params { return a.p }

// Done reports whether every thread has finished.
func (a *App) Done() bool {
	for _, g := range a.gens {
		if !g.Done() {
			return false
		}
	}
	return true
}

// TotalMemOps returns the total number of references the run will issue.
func (a *App) TotalMemOps() int64 {
	return a.p.MemOpsPerThread * int64(len(a.gens))
}
