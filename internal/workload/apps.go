package workload

import (
	"fmt"
	"sort"

	"refrint/internal/config"
)

// This file defines the statistical parameters of the eleven applications of
// Table 5.3.  Footprints, sharing degrees and locality are chosen so that
// every application lands in the class Table 6.1 assigns it (relative to the
// full-size 16 MB L3) and so that the qualitative behaviours the paper
// describes — streaming large-footprint codes, cache-resident codes with
// heavy sharing, and codes that live almost entirely in L1/L2 — are
// reproduced.  Inputs are recorded for documentation only; the generators do
// not execute the algorithms.

// The full-size L3 holds 256K lines (16 banks x 16K).  "Large footprint"
// applications exceed that; "small footprint" ones fit comfortably.
const llcLinesFullSize = 256 * 1024

// AppNames lists the applications of Table 5.3 in the paper's order.
func AppNames() []string {
	return []string{
		"FFT", "LU", "Radix", "Cholesky", "Barnes", "FMM", "Radiosity", "Raytrace",
		"Streamcluster", "Blackscholes", "Fluidanimate",
	}
}

// Apps returns the parameter set of every application keyed by name.
func Apps() map[string]Params {
	apps := map[string]Params{
		// ---- Class 1: large footprint, high visibility -------------------
		"FFT": {
			Name: "FFT", Suite: "SPLASH-2", Input: "2^20 points",
			FootprintLines:     2 * llcLinesFullSize,
			SharedFraction:     0.30,
			WriteFraction:      0.30,
			Locality:           0.90,
			StreamBias:         0.97,
			WorkingWindow:      512,
			ComputePerMemOp:    5,
			MemOpsPerThread:    600_000,
			InstrFetchFraction: 0.05,
			CodeLines:          256,
			PaperClass:         Class1,
		},
		"FMM": {
			Name: "FMM", Suite: "SPLASH-2", Input: "16K particles",
			FootprintLines:     int(1.5 * llcLinesFullSize),
			SharedFraction:     0.25,
			WriteFraction:      0.25,
			Locality:           0.92,
			StreamBias:         0.97,
			WorkingWindow:      512,
			ComputePerMemOp:    7,
			MemOpsPerThread:    500_000,
			InstrFetchFraction: 0.06,
			CodeLines:          512,
			PaperClass:         Class1,
		},
		"Cholesky": {
			Name: "Cholesky", Suite: "SPLASH-2", Input: "tk29.O",
			FootprintLines:     int(1.25 * llcLinesFullSize),
			SharedFraction:     0.35,
			WriteFraction:      0.35,
			Locality:           0.91,
			StreamBias:         0.97,
			WorkingWindow:      512,
			ComputePerMemOp:    6,
			MemOpsPerThread:    550_000,
			InstrFetchFraction: 0.05,
			CodeLines:          384,
			PaperClass:         Class1,
		},
		"Fluidanimate": {
			Name: "Fluidanimate", Suite: "PARSEC", Input: "simsmall",
			FootprintLines:     int(1.75 * llcLinesFullSize),
			SharedFraction:     0.28,
			WriteFraction:      0.40,
			Locality:           0.90,
			StreamBias:         0.97,
			WorkingWindow:      512,
			ComputePerMemOp:    5,
			MemOpsPerThread:    600_000,
			InstrFetchFraction: 0.05,
			CodeLines:          512,
			PaperClass:         Class1,
		},

		// ---- Class 2: small footprint, high visibility --------------------
		"Barnes": {
			Name: "Barnes", Suite: "SPLASH-2", Input: "16K particles",
			FootprintLines:     llcLinesFullSize / 4,
			SharedFraction:     0.40,
			WriteFraction:      0.30,
			Locality:           0.90,
			StreamBias:         0.75,
			WorkingWindow:      1024,
			ComputePerMemOp:    8,
			MemOpsPerThread:    450_000,
			InstrFetchFraction: 0.06,
			CodeLines:          512,
			PaperClass:         Class2,
		},
		"LU": {
			Name: "LU", Suite: "SPLASH-2", Input: "512x512 matrix",
			FootprintLines:     llcLinesFullSize / 8,
			SharedFraction:     0.35,
			WriteFraction:      0.40,
			Locality:           0.92,
			StreamBias:         0.75,
			WorkingWindow:      1024,
			ComputePerMemOp:    6,
			MemOpsPerThread:    500_000,
			InstrFetchFraction: 0.04,
			CodeLines:          128,
			PaperClass:         Class2,
		},
		"Radix": {
			Name: "Radix", Suite: "SPLASH-2", Input: "2M keys",
			FootprintLines:     llcLinesFullSize / 3,
			SharedFraction:     0.45,
			WriteFraction:      0.45,
			Locality:           0.88,
			StreamBias:         0.75,
			WorkingWindow:      1024,
			ComputePerMemOp:    4,
			MemOpsPerThread:    550_000,
			InstrFetchFraction: 0.03,
			CodeLines:          96,
			PaperClass:         Class2,
		},
		"Radiosity": {
			Name: "Radiosity", Suite: "SPLASH-2", Input: "batch",
			FootprintLines:     llcLinesFullSize / 5,
			SharedFraction:     0.38,
			WriteFraction:      0.30,
			Locality:           0.91,
			StreamBias:         0.75,
			WorkingWindow:      1024,
			ComputePerMemOp:    7,
			MemOpsPerThread:    450_000,
			InstrFetchFraction: 0.07,
			CodeLines:          768,
			PaperClass:         Class2,
		},

		// ---- Class 3: small footprint, low visibility ---------------------
		"Blackscholes": {
			Name: "Blackscholes", Suite: "PARSEC", Input: "simmedium",
			FootprintLines:     llcLinesFullSize / 16,
			SharedFraction:     0.02,
			WriteFraction:      0.20,
			Locality:           0.96,
			StreamBias:         0.70,
			WorkingWindow:      256,
			ComputePerMemOp:    12,
			MemOpsPerThread:    400_000,
			InstrFetchFraction: 0.04,
			CodeLines:          128,
			PaperClass:         Class3,
		},
		"Streamcluster": {
			Name: "Streamcluster", Suite: "PARSEC", Input: "simsmall",
			FootprintLines:     llcLinesFullSize / 12,
			SharedFraction:     0.05,
			WriteFraction:      0.15,
			Locality:           0.95,
			StreamBias:         0.70,
			WorkingWindow:      256,
			ComputePerMemOp:    9,
			MemOpsPerThread:    450_000,
			InstrFetchFraction: 0.03,
			CodeLines:          128,
			PaperClass:         Class3,
		},
		"Raytrace": {
			Name: "Raytrace", Suite: "SPLASH-2", Input: "teapot",
			FootprintLines:     llcLinesFullSize / 10,
			SharedFraction:     0.08,
			WriteFraction:      0.15,
			Locality:           0.95,
			StreamBias:         0.70,
			WorkingWindow:      256,
			ComputePerMemOp:    9,
			MemOpsPerThread:    450_000,
			InstrFetchFraction: 0.08,
			CodeLines:          1024,
			PaperClass:         Class3,
		},
	}
	return apps
}

// Get returns the parameters of a named application.
func Get(name string) (Params, error) {
	p, ok := Apps()[name]
	if !ok {
		return Params{}, fmt.Errorf("workload: unknown application %q (have %v)", name, AppNames())
	}
	return p, nil
}

// ForConfig returns the application parameters adjusted to a configuration:
// for the Scaled preset the footprint and run length are shrunk by the same
// factor as the caches so the footprint-to-LLC ratio is preserved.
func ForConfig(p Params, cfg config.Config) Params {
	if cfg.Name == "scaled" {
		return p.Scale(config.ScaleFactor())
	}
	return p
}

// ByClass returns the application names grouped by their paper class
// (Table 6.1), each group sorted alphabetically.
func ByClass() map[Class][]string {
	out := make(map[Class][]string)
	for name, p := range Apps() {
		out[p.PaperClass] = append(out[p.PaperClass], name)
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}
