package workload

import (
	"testing"
	"testing/quick"

	"refrint/internal/config"
	"refrint/internal/mem"
)

func TestAppsAreComplete(t *testing.T) {
	apps := Apps()
	if len(apps) != 11 {
		t.Fatalf("got %d applications, want 11 (Table 5.3)", len(apps))
	}
	for _, name := range AppNames() {
		p, ok := apps[name]
		if !ok {
			t.Errorf("application %q missing", name)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Suite != "SPLASH-2" && p.Suite != "PARSEC" {
			t.Errorf("%s: suite %q", name, p.Suite)
		}
	}
}

func TestGet(t *testing.T) {
	if _, err := Get("FFT"); err != nil {
		t.Errorf("Get(FFT) = %v", err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get of unknown app should fail")
	}
}

func TestTable61Binning(t *testing.T) {
	// Table 6.1 of the paper.
	want := map[string]Class{
		"FFT": Class1, "FMM": Class1, "Cholesky": Class1, "Fluidanimate": Class1,
		"Barnes": Class2, "LU": Class2, "Radix": Class2, "Radiosity": Class2,
		"Blackscholes": Class3, "Streamcluster": Class3, "Raytrace": Class3,
	}
	cfg := config.FullSize()
	for name, wantClass := range want {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.PaperClass != wantClass {
			t.Errorf("%s: PaperClass = %v, want %v", name, p.PaperClass, wantClass)
		}
		if got := p.Classify(cfg); got != wantClass {
			t.Errorf("%s: Classify(full-size) = %v, want %v (footprint ratio %.2f, visibility %.2f)",
				name, got, wantClass, p.FootprintRatio(cfg), p.Visibility(cfg))
		}
	}
}

func TestClassifyPreservedUnderScaling(t *testing.T) {
	full := config.FullSize()
	scaled := config.Scaled()
	factor := config.ScaleFactor()
	for name, p := range Apps() {
		fullClass := p.Classify(full)
		scaledClass := p.Scale(factor).Classify(scaled)
		if fullClass != scaledClass {
			t.Errorf("%s: class changes under scaling: %v -> %v", name, fullClass, scaledClass)
		}
	}
	_ = scaled
}

func TestByClass(t *testing.T) {
	groups := ByClass()
	if len(groups[Class1]) != 4 || len(groups[Class2]) != 4 || len(groups[Class3]) != 3 {
		t.Errorf("class sizes = %d/%d/%d, want 4/4/3",
			len(groups[Class1]), len(groups[Class2]), len(groups[Class3]))
	}
}

func TestClassString(t *testing.T) {
	if Class1.String() != "Class 1" || Class2.String() != "Class 2" || Class3.String() != "Class 3" {
		t.Error("class strings wrong")
	}
	if ClassUnknown.String() != "Unknown" {
		t.Error("unknown class string wrong")
	}
}

func TestParamsValidateErrors(t *testing.T) {
	good, _ := Get("FFT")
	cases := []func(*Params){
		func(p *Params) { p.Name = "" },
		func(p *Params) { p.FootprintLines = 0 },
		func(p *Params) { p.SharedFraction = 1.5 },
		func(p *Params) { p.WriteFraction = -0.1 },
		func(p *Params) { p.Locality = 2 },
		func(p *Params) { p.WorkingWindow = 0 },
		func(p *Params) { p.ComputePerMemOp = -1 },
		func(p *Params) { p.MemOpsPerThread = 0 },
		func(p *Params) { p.InstrFetchFraction = 1.0 },
		func(p *Params) { p.CodeLines = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "LU"), cfg)
	g1 := NewGenerator(p, cfg, 0, 42)
	g2 := NewGenerator(p, cfg, 0, 42)
	for i := 0; i < 1000; i++ {
		a1, ok1 := g1.Next()
		a2, ok2 := g2.Next()
		if ok1 != ok2 || a1 != a2 {
			t.Fatalf("generators with the same seed diverged at access %d: %+v vs %+v", i, a1, a2)
		}
	}
}

func TestGeneratorDifferentThreadsDiffer(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "LU"), cfg)
	g0 := NewGenerator(p, cfg, 0, 42)
	g1 := NewGenerator(p, cfg, 1, 42)
	same := 0
	for i := 0; i < 200; i++ {
		a0, _ := g0.Next()
		a1, _ := g1.Next()
		if a0.Addr == a1.Addr {
			same++
		}
	}
	if same > 150 {
		t.Errorf("threads produced %d/200 identical addresses; private regions should differ", same)
	}
}

func TestGeneratorQuota(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "Blackscholes"), cfg)
	g := NewGenerator(p, cfg, 3, 1)
	count := int64(0)
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		count++
	}
	if count != p.MemOpsPerThread {
		t.Errorf("issued %d references, want %d", count, p.MemOpsPerThread)
	}
	if !g.Done() || g.Remaining() != 0 {
		t.Error("generator should be done")
	}
	if _, ok := g.Next(); ok {
		t.Error("Next after quota should return false")
	}
}

func TestGeneratorFootprintBounded(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "FFT"), cfg)
	geom := cfg.Geometry()
	lines := map[mem.LineAddr]bool{}
	for thread := 0; thread < cfg.Cores; thread++ {
		g := NewGenerator(p, cfg, thread, 7)
		for i := 0; i < 5000; i++ {
			a, ok := g.Next()
			if !ok {
				break
			}
			lines[geom.LineOf(a.Addr)] = true
		}
	}
	// Distinct lines touched cannot exceed the declared footprint plus code.
	max := p.FootprintLines + p.CodeLines + cfg.Cores // rounding slack
	if len(lines) > max {
		t.Errorf("touched %d distinct lines, footprint bound %d", len(lines), max)
	}
}

func TestGeneratorWriteFractionApproximate(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "Radix"), cfg)
	g := NewGenerator(p, cfg, 0, 3)
	writes, data := 0, 0
	for i := 0; i < 20000; i++ {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Type == mem.InstrFetch {
			continue
		}
		data++
		if a.Type == mem.Write {
			writes++
		}
	}
	got := float64(writes) / float64(data)
	if got < p.WriteFraction-0.05 || got > p.WriteFraction+0.05 {
		t.Errorf("write fraction = %.3f, want about %.2f", got, p.WriteFraction)
	}
}

func TestGeneratorSharedFlagMatchesRegion(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "Barnes"), cfg)
	g := NewGenerator(p, cfg, 2, 11)
	geom := cfg.Geometry()
	sharedBase := geom.LineOf(mem.Addr(sharedRegionBase))
	codeBase := geom.LineOf(mem.Addr(codeRegionBase))
	for i := 0; i < 10000; i++ {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Type == mem.InstrFetch {
			if geom.LineOf(a.Addr) < codeBase {
				t.Fatal("instruction fetch outside the code region")
			}
			continue
		}
		line := geom.LineOf(a.Addr)
		inShared := line >= sharedBase && line < codeBase
		if a.Shared != inShared {
			t.Fatalf("access %d: Shared flag %v but address %#x in shared region %v", i, a.Shared, a.Addr, inShared)
		}
	}
}

func TestGeneratorGapWithinBounds(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "Blackscholes"), cfg)
	g := NewGenerator(p, cfg, 0, 5)
	for i := 0; i < 5000; i++ {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Gap < 0 || a.Gap > int64(2*p.ComputePerMemOp) {
			t.Fatalf("gap %d outside [0, %d]", a.Gap, 2*p.ComputePerMemOp)
		}
	}
}

func TestGeneratorPanicsOnBadThread(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "LU"), cfg)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range thread should panic")
		}
	}()
	NewGenerator(p, cfg, cfg.Cores, 1)
}

func TestAppBundle(t *testing.T) {
	cfg := config.Scaled()
	p := ForConfig(mustGet(t, "LU"), cfg)
	app := NewApp(p, cfg, 9)
	if app.Threads() != cfg.Cores {
		t.Errorf("Threads = %d, want %d", app.Threads(), cfg.Cores)
	}
	if app.Done() {
		t.Error("fresh app should not be done")
	}
	if app.TotalMemOps() != p.MemOpsPerThread*int64(cfg.Cores) {
		t.Errorf("TotalMemOps = %d", app.TotalMemOps())
	}
	if app.Params().Name != "LU" {
		t.Error("Params should round-trip")
	}
	if app.Thread(0) == nil || app.Thread(cfg.Cores-1) == nil {
		t.Error("Thread accessor broken")
	}
}

func TestScaleFloors(t *testing.T) {
	p := mustGet(t, "Blackscholes")
	scaled := p.Scale(1 << 20) // absurd factor: floors must hold
	if scaled.FootprintLines < 64 || scaled.MemOpsPerThread < 2000 || scaled.WorkingWindow < 16 || scaled.CodeLines < 8 {
		t.Errorf("Scale floors violated: %+v", scaled)
	}
	if p.Scale(1) != p {
		t.Error("Scale(1) should be the identity")
	}
}

func TestVisibilityProperty(t *testing.T) {
	cfg := config.FullSize()
	// Property: raising the shared fraction never lowers visibility.
	f := func(frac uint8) bool {
		p := mustGet(t, "Blackscholes")
		p.SharedFraction = float64(frac%100) / 100
		q := p
		q.SharedFraction = p.SharedFraction / 2
		return p.Visibility(cfg) >= q.Visibility(cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mustGet(t *testing.T, name string) Params {
	t.Helper()
	p, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
