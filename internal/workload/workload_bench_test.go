package workload

import (
	"testing"

	"refrint/internal/config"
)

// BenchmarkGeneratorNext measures the per-reference cost of the synthetic
// workload generator (the simulator's input side).
func BenchmarkGeneratorNext(b *testing.B) {
	cfg := config.Scaled()
	p, err := Get("LU")
	if err != nil {
		b.Fatal(err)
	}
	p = ForConfig(p, cfg)
	p.MemOpsPerThread = int64(b.N) + 1
	g := NewGenerator(p, cfg, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator ran dry")
		}
	}
}

// BenchmarkClassify measures the Figure 3.1 classification of every
// application (used by Table 6.1).
func BenchmarkClassify(b *testing.B) {
	cfg := config.FullSize()
	apps := Apps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range apps {
			if p.Classify(cfg) == ClassUnknown {
				b.Fatal("unknown class")
			}
		}
	}
}
