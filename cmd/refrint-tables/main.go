// Command refrint-tables prints the configuration tables of the paper
// (Tables 3.1 and 5.1-5.4) as realised by this implementation, plus the
// application classification of Figure 3.1 computed from the workload
// parameters.
package main

import (
	"flag"
	"fmt"

	"refrint"
	"refrint/internal/report"
	"refrint/internal/workload"
)

func main() {
	preset := flag.String("preset", "fullsize", "architecture preset to describe: scaled or fullsize")
	flag.Parse()

	cfg, err := refrint.Preset(*preset)
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Println(report.Table31())
	fmt.Println(report.Table51(cfg))
	fmt.Println(report.Table52())
	fmt.Println(report.Table53())
	fmt.Println(report.Table54())

	fmt.Println("Figure 3.1: application classification (from workload parameters)")
	fmt.Println("  App             Class     Footprint/LLC  Visibility")
	for _, name := range workload.AppNames() {
		p, err := workload.Get(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %-15s %-9s %12.2f  %9.2f\n",
			name, p.Classify(cfg), p.FootprintRatio(cfg), p.Visibility(cfg))
	}
}
