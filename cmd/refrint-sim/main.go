// Command refrint-sim runs a single (application, policy, retention)
// simulation and prints its statistics and energy breakdown.
//
// Examples:
//
//	refrint-sim -app FFT -policy SRAM
//	refrint-sim -app FFT -policy R.WB(32,32) -retention 50
//	refrint-sim -app Radix -policy P.all -retention 100 -preset fullsize
package main

import (
	"flag"
	"fmt"
	"os"

	"refrint"
)

func main() {
	var (
		app       = flag.String("app", "FFT", "application name (Table 5.3), or 'list' to list them")
		policy    = flag.String("policy", "R.WB(32,32)", "refresh policy label, e.g. SRAM, P.all, R.valid, R.WB(32,32)")
		retention = flag.Float64("retention", 50, "eDRAM retention time in microseconds (ignored for SRAM)")
		preset    = flag.String("preset", "scaled", "architecture preset: scaled or fullsize")
		effort    = flag.Float64("effort", 1.0, "workload length multiplier")
		seed      = flag.Int64("seed", 1, "workload random seed")
		verbose   = flag.Bool("v", false, "print raw counters as well")
	)
	flag.Parse()

	if *app == "list" {
		for _, name := range refrint.Applications() {
			fmt.Println(name)
		}
		return
	}

	res, err := refrint.Simulate(refrint.SimRequest{
		App:         *app,
		Policy:      *policy,
		RetentionUS: *retention,
		Preset:      *preset,
		EffortScale: *effort,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "refrint-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("app=%s policy=%s retention=%gus preset=%s\n", res.App, res.Policy, res.RetentionUS, *preset)
	fmt.Printf("cycles=%d  instructions=%d  memops=%d\n", res.Cycles, res.Stats.Instructions, res.Stats.MemOps)
	e := res.Energy
	fmt.Printf("memory energy  : %.4g J (L1 %.3g | L2 %.3g | L3 %.3g | DRAM %.3g)\n",
		e.MemoryHierarchy(), e.IL1+e.DL1, e.L2, e.L3, e.DRAM)
	fmt.Printf("  components   : dynamic %.3g | leakage %.3g | refresh %.3g | DRAM %.3g\n",
		e.Dynamic, e.Leakage, e.Refresh, e.DRAM)
	fmt.Printf("total energy   : %.4g J (core %.3g | noc %.3g)\n", e.Total(), e.Core, e.NoC)
	fmt.Printf("refreshes      : %d on-chip (sentry interrupts %d, periodic sweeps %d)\n",
		res.Stats.TotalOnChipRefreshes(), res.Stats.SentryInterrupts, res.Stats.PeriodicGroupScans)
	fmt.Printf("policy actions : refresh %d | writeback %d | invalidate %d\n",
		res.Stats.PolicyRefreshes, res.Stats.PolicyWritebacks, res.Stats.PolicyInvalidates)
	if *verbose {
		fmt.Println()
		fmt.Print(res.Stats.String())
	}
}
