// Command refrint-scale measures service-level throughput scaling: it runs
// the same sweep workload at a series of intra-sweep worker-pool sizes
// (sweep.Options.Workers — the same knob refrint-serve's SweepWorkers caps)
// and reports simulations per second at each point, the speedup over one
// worker, and the parallel efficiency.
//
// The output is the committed BENCH_<pr>.json trajectory: whole-service
// throughput kept regression-visible alongside the per-op benchmarks of
// bench/baseline.txt.  Each point runs the sweep -repeat times and keeps the
// best (least-interfered) time, mirroring how bench-compare reads benchstat
// minima.
//
// Examples:
//
//	refrint-scale                          # powers of two up to NumCPU
//	refrint-scale -workers 1,2,4 -repeat 1 # CI smoke sizing
//	refrint-scale -out BENCH_10.json       # write the committed trajectory
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"refrint"
)

// reportFormat identifies the JSON schema of the emitted document.
const reportFormat = "refrint/scale-report/v1"

// point is one measured worker count.
type point struct {
	Workers     int     `json:"workers"`
	Sims        int     `json:"sims"`
	BestSeconds float64 `json:"best_seconds"`
	SimsPerSec  float64 `json:"sims_per_sec"`
	Speedup     float64 `json:"speedup"`
	Efficiency  float64 `json:"efficiency"`
}

// scaleReport is the document committed as BENCH_<pr>.json.
type scaleReport struct {
	Format     string  `json:"format"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	Apps       string  `json:"apps"`
	Effort     float64 `json:"effort"`
	Seed       int64   `json:"seed"`
	Repeat     int     `json:"repeat"`
	Points     []point `json:"points"`
	PeakSims   float64 `json:"peak_sims_per_sec"`
	PeakAtWork int     `json:"peak_at_workers"`
}

func main() {
	var (
		workers = flag.String("workers", "", "comma-separated worker counts (default: powers of two up to NumCPU)")
		apps    = flag.String("apps", "", "comma-separated application names (default: the quick sweep's three)")
		effort  = flag.Float64("effort", 0.25, "workload length multiplier")
		seed    = flag.Int64("seed", 1, "workload random seed")
		repeat  = flag.Int("repeat", 3, "runs per worker count; the best time is kept")
		out     = flag.String("out", "", "write the JSON report to this file (default: stdout only prints the curve)")
	)
	flag.Parse()

	counts, err := workerCounts(*workers)
	if err != nil {
		fatal(err)
	}

	opts := refrint.QuickSweep()
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
		for i := range opts.Apps {
			opts.Apps[i] = strings.TrimSpace(opts.Apps[i])
		}
	}
	opts.EffortScale = *effort
	opts.Seed = *seed
	sims := opts.Size()

	rep := scaleReport{
		Format:    reportFormat,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Apps:      strings.Join(opts.Apps, ","),
		Effort:    *effort,
		Seed:      *seed,
		Repeat:    *repeat,
	}

	fmt.Printf("refrint-scale: %d sims per sweep (%s, effort %.2f), %d repeats, workers %v\n",
		sims, rep.Apps, *effort, *repeat, counts)

	// One untimed warm-up sweep so first-use costs (page faults, lazily
	// built tables) are not charged to the 1-worker point.
	warm := opts
	warm.Workers = counts[0]
	if _, err := refrint.RunSweepContext(context.Background(), warm, nil); err != nil {
		fatal(err)
	}

	for _, w := range counts {
		o := opts
		o.Workers = w
		best := time.Duration(0)
		for r := 0; r < *repeat; r++ {
			start := time.Now()
			if _, err := refrint.RunSweepContext(context.Background(), o, nil); err != nil {
				fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		p := point{
			Workers:     w,
			Sims:        sims,
			BestSeconds: best.Seconds(),
			SimsPerSec:  float64(sims) / best.Seconds(),
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("  workers=%-3d best=%8.3fs  sims/sec=%7.2f\n", w, p.BestSeconds, p.SimsPerSec)
	}

	base := rep.Points[0].SimsPerSec
	for i := range rep.Points {
		p := &rep.Points[i]
		p.Speedup = p.SimsPerSec / base
		p.Efficiency = p.Speedup * float64(rep.Points[0].Workers) / float64(p.Workers)
		if p.SimsPerSec > rep.PeakSims {
			rep.PeakSims = p.SimsPerSec
			rep.PeakAtWork = p.Workers
		}
	}

	fmt.Println("\nsims/sec vs workers:")
	for _, p := range rep.Points {
		bar := strings.Repeat("#", int(p.Speedup*8+0.5))
		fmt.Printf("  %3d | %-40s %.2fx (eff %.0f%%)\n", p.Workers, bar, p.Speedup, p.Efficiency*100)
	}
	fmt.Printf("peak: %.2f sims/sec at %d workers\n", rep.PeakSims, rep.PeakAtWork)

	if *out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// workerCounts parses -workers, defaulting to powers of two up to NumCPU
// (always including 1 and NumCPU itself).
func workerCounts(spec string) ([]int, error) {
	if spec == "" {
		var counts []int
		for w := 1; w < runtime.NumCPU(); w *= 2 {
			counts = append(counts, w)
		}
		return append(counts, runtime.NumCPU()), nil
	}
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("refrint-scale: bad worker count %q", f)
		}
		counts = append(counts, w)
	}
	return counts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "refrint-scale:", err)
	os.Exit(1)
}
