// Command refrint-serve runs the Refrint sweep service: an HTTP API that
// accepts sweep jobs, executes them on a bounded priority-aware
// work-stealing scheduler, caches results by canonical sweep key, and serves
// the paper's Table 6.1 and Figure 6.1-6.4 data series as JSON.
//
// Quickstart:
//
//	refrint-serve -addr :8080 -data-dir /var/lib/refrint &
//	curl -s -X POST localhost:8080/v1/sweeps \
//	     -d '{"apps":["FFT","LU"],"retention_times_us":[50],"effort_scale":0.25}'
//	curl -s localhost:8080/v1/sweeps/job-000001            # poll progress
//	curl -sN localhost:8080/v1/sweeps/job-000001/events    # stream progress (SSE)
//	curl -s localhost:8080/v1/sweeps/job-000001/figures    # figure series (job id or sweep key)
//	curl -s -X DELETE localhost:8080/v1/sweeps/job-000001  # cancel
//	curl -s -X POST localhost:8080/v1/batches \
//	     -d '{"priority":"background","client":"nightly","requests":[{"apps":["FFT"]},{"apps":["LU"]}]}'
//	curl -s localhost:8080/v1/batches/batch-000001         # aggregated batch state
//	curl -s localhost:8080/v1/sims                         # catalog
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics                         # operational counters
//
// Sweeps carry an optional priority class (interactive > batch >
// background) and client label; classes dequeue by weighted fair share
// (-class-weights), clients within a class round-robin, and idle workers
// steal queued work, so no worker idles while any queue holds sweeps.
//
// With -data-dir, completed sweeps and their individual simulation cells are
// persisted: a restarted server serves previously completed sweeps without
// re-running anything, and overlapping sweeps reuse shared cells.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"refrint/internal/sched"
	"refrint/internal/server"
	"refrint/internal/store"
)

// parseClassTriple parses a "interactive,batch,background" integer triple
// flag ("" means all defaults; positive values only).
func parseClassTriple(flagName, s string) ([sched.NumClasses]int, error) {
	var out [sched.NumClasses]int
	if s == "" {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != sched.NumClasses {
		return out, fmt.Errorf("-%s: want %d comma-separated values (interactive,batch,background), got %q", flagName, sched.NumClasses, s)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return out, fmt.Errorf("-%s: value %q must be a positive integer", flagName, p)
		}
		out[i] = n
	}
	return out, nil
}

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		shards         = flag.Int("shards", 2, "worker goroutines (concurrent sweeps)")
		queueDepth     = flag.Int("queue-depth", 8, "pending sweeps per worker per priority class (each class admits shards*queue-depth)")
		classDepths    = flag.String("class-queue-depths", "", "per-class queued-sweep bounds as interactive,batch,background (overrides -queue-depth scaling)")
		classWeights   = flag.String("class-weights", "", "weighted-fair dequeue shares as interactive,batch,background (default 16,4,1)")
		cacheEntries   = flag.Int("cache", 32, "completed sweeps kept for reuse")
		sweepWorkers   = flag.Int("sweep-workers", 0, "simulation concurrency per sweep (0 = NumCPU/shards)")
		jobHistory     = flag.Int("job-history", 1024, "finished jobs kept pollable")
		batchHistory   = flag.Int("batch-history", 256, "finished batches kept pollable")
		dataDir        = flag.String("data-dir", "", "persist results (whole sweeps and individual cells) under this directory; restarts serve completed sweeps without re-running them")
		storeMaxBytes  = flag.Int64("store-max-bytes", 1<<30, "LRU byte budget of the persistent store (with -data-dir)")
		eventHeartbeat = flag.Duration("event-heartbeat", 15*time.Second, "keepalive comment interval on SSE /events streams")
		eventBuffer    = flag.Int("event-buffer", 64, "events buffered per SSE subscriber; progress coalesces (latest wins) so slow consumers never block execution")
		eventLog       = flag.Int("event-log", 64, "published events remembered per topic for Last-Event-ID replay on SSE reconnects")
		clientRate     = flag.Float64("client-rate", 0, "per-client submission rate limit in requests/second (0 = no limit); over-quota submissions get 429 with Retry-After")
		clientBurst    = flag.Int("client-burst", 0, "per-client submission burst with -client-rate (0 = ceil(client-rate))")
		ageAfter       = flag.Duration("age-after", 0, "age a queued sweep one priority class up after waiting this long (0 = never), so interactive floods cannot starve background work forever")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "refrint-serve: ", log.LstdFlags)

	depths, err := parseClassTriple("class-queue-depths", *classDepths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "refrint-serve:", err)
		os.Exit(2)
	}
	weights, err := parseClassTriple("class-weights", *classWeights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "refrint-serve:", err)
		os.Exit(2)
	}

	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, store.Options{MaxBytes: *storeMaxBytes, Logf: logger.Printf})
		if err != nil {
			fmt.Fprintln(os.Stderr, "refrint-serve:", err)
			os.Exit(1)
		}
		defer st.Close()
		logger.Printf("store: %s (%d blobs)", *dataDir, st.Stats().Entries)
	}

	svc := server.New(server.Config{
		Shards:          *shards,
		QueueDepth:      *queueDepth,
		ClassQueueDepth: depths,
		ClassWeights:    weights,
		CacheEntries:    *cacheEntries,
		SweepWorkers:    *sweepWorkers,
		JobHistory:      *jobHistory,
		BatchHistory:    *batchHistory,
		EventHeartbeat:  *eventHeartbeat,
		EventBuffer:     *eventBuffer,
		EventLog:        *eventLog,
		ClientRate:      *clientRate,
		ClientBurst:     *clientBurst,
		AgeAfter:        *ageAfter,
		Store:           st,
		Logf:            logger.Printf,
	})
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "refrint-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}
}
