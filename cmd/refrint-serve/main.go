// Command refrint-serve runs the Refrint sweep service: an HTTP API that
// accepts sweep jobs, executes them on a bounded priority-aware
// work-stealing scheduler, caches results by canonical sweep key, and serves
// the paper's Table 6.1 and Figure 6.1-6.4 data series as JSON.
//
// Quickstart:
//
//	refrint-serve -addr :8080 -data-dir /var/lib/refrint &
//	curl -s -X POST localhost:8080/v1/sweeps \
//	     -d '{"apps":["FFT","LU"],"retention_times_us":[50],"effort_scale":0.25}'
//	curl -s localhost:8080/v1/sweeps/job-000001            # poll progress
//	curl -sN localhost:8080/v1/sweeps/job-000001/events    # stream progress (SSE)
//	curl -s localhost:8080/v1/sweeps/job-000001/figures    # figure series (job id or sweep key)
//	curl -s -X DELETE localhost:8080/v1/sweeps/job-000001  # cancel
//	curl -s -X POST localhost:8080/v1/batches \
//	     -d '{"priority":"background","client":"nightly","requests":[{"apps":["FFT"]},{"apps":["LU"]}]}'
//	curl -s localhost:8080/v1/batches/batch-000001         # aggregated batch state
//	curl -s localhost:8080/v1/sims                         # catalog
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics                         # operational counters
//
// Sweeps carry an optional priority class (interactive > batch >
// background) and client label; classes dequeue by weighted fair share
// (-class-weights), clients within a class round-robin, and idle workers
// steal queued work, so no worker idles while any queue holds sweeps.
//
// With -data-dir, completed sweeps and their individual simulation cells are
// persisted: a restarted server serves previously completed sweeps without
// re-running anything, and overlapping sweeps reuse shared cells.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"refrint/internal/faults"
	"refrint/internal/sched"
	"refrint/internal/server"
	"refrint/internal/store"
)

// newLogger builds the process logger from -log-format/-log-level.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %v", err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format: want text or json, got %q", format)
	}
}

// debugMux builds the opt-in debugging listener's handler: pprof profiles
// and expvar counters.  These are registered on a private mux served only on
// -debug-addr — never on the public API listener, so exposing the service
// does not expose heap dumps or CPU profiles.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// parseClassTriple parses a "interactive,batch,background" integer triple
// flag ("" means all defaults; positive values only).
func parseClassTriple(flagName, s string) ([sched.NumClasses]int, error) {
	var out [sched.NumClasses]int
	if s == "" {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != sched.NumClasses {
		return out, fmt.Errorf("-%s: want %d comma-separated values (interactive,batch,background), got %q", flagName, sched.NumClasses, s)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return out, fmt.Errorf("-%s: value %q must be a positive integer", flagName, p)
		}
		out[i] = n
	}
	return out, nil
}

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		shards         = flag.Int("shards", 2, "worker goroutines (concurrent sweeps)")
		queueDepth     = flag.Int("queue-depth", 8, "pending sweeps per worker per priority class (each class admits shards*queue-depth)")
		classDepths    = flag.String("class-queue-depths", "", "per-class queued-sweep bounds as interactive,batch,background (overrides -queue-depth scaling)")
		classWeights   = flag.String("class-weights", "", "weighted-fair dequeue shares as interactive,batch,background (default 16,4,1)")
		cacheEntries   = flag.Int("cache", 32, "completed sweeps kept for reuse")
		sweepWorkers   = flag.Int("sweep-workers", 0, "simulation concurrency per sweep (0 = NumCPU/shards)")
		jobHistory     = flag.Int("job-history", 1024, "finished jobs kept pollable")
		batchHistory   = flag.Int("batch-history", 256, "finished batches kept pollable")
		dataDir        = flag.String("data-dir", "", "persist results (whole sweeps and individual cells) under this directory; restarts serve completed sweeps without re-running them")
		storeMaxBytes  = flag.Int64("store-max-bytes", 1<<30, "LRU byte budget of the persistent store (with -data-dir)")
		eventHeartbeat = flag.Duration("event-heartbeat", 15*time.Second, "keepalive comment interval on SSE /events streams")
		eventBuffer    = flag.Int("event-buffer", 64, "events buffered per SSE subscriber; progress coalesces (latest wins) so slow consumers never block execution")
		eventLog       = flag.Int("event-log", 64, "published events remembered per topic for Last-Event-ID replay on SSE reconnects")
		clientRate     = flag.Float64("client-rate", 0, "per-client submission rate limit in requests/second (0 = no limit); over-quota submissions get 429 with Retry-After")
		clientBurst    = flag.Int("client-burst", 0, "per-client submission burst with -client-rate (0 = ceil(client-rate))")
		ageAfter       = flag.Duration("age-after", 0, "age a queued sweep one priority class up after waiting this long (0 = never), so interactive floods cannot starve background work forever")
		jobTimeout     = flag.Duration("job-timeout", 0, "fail any sweep execution that outlives this wall-clock bound (0 = none); a request's timeout_ms may only lower it")
		drainTimeout   = flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM/SIGINT, how long in-flight sweeps get to finish before the hard stop")
		faultSpec      = flag.String("fault-spec", "", "inject faults for chaos testing, e.g. 'store.put:error:0.5,sim.run:panic:0.01' (point:mode[:arg][:rate], comma-separated; NEVER set in production)")
		logFormat      = flag.String("log-format", "text", "structured log format: text or json")
		logLevel       = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		debugAddr      = flag.String("debug-addr", "", "serve pprof and expvar debugging endpoints on this address (e.g. localhost:6060); keep it private — it exposes profiles, never enable it on the public listener")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "refrint-serve:", err)
		os.Exit(2)
	}
	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}

	depths, err := parseClassTriple("class-queue-depths", *classDepths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "refrint-serve:", err)
		os.Exit(2)
	}
	weights, err := parseClassTriple("class-weights", *classWeights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "refrint-serve:", err)
		os.Exit(2)
	}
	if *faultSpec != "" {
		inj, err := faults.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "refrint-serve:", err)
			os.Exit(2)
		}
		faults.Enable(inj)
		logger.Warn("fault injection active — this process WILL misbehave on purpose", "spec", *faultSpec)
	}

	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, store.Options{MaxBytes: *storeMaxBytes, Logf: logf})
		if err != nil {
			fmt.Fprintln(os.Stderr, "refrint-serve:", err)
			os.Exit(1)
		}
		defer st.Close()
		logger.Info("store opened", "dir", *dataDir, "blobs", st.Stats().Entries)
	}

	svc := server.New(server.Config{
		Shards:          *shards,
		QueueDepth:      *queueDepth,
		ClassQueueDepth: depths,
		ClassWeights:    weights,
		CacheEntries:    *cacheEntries,
		SweepWorkers:    *sweepWorkers,
		JobHistory:      *jobHistory,
		BatchHistory:    *batchHistory,
		EventHeartbeat:  *eventHeartbeat,
		EventBuffer:     *eventBuffer,
		EventLog:        *eventLog,
		ClientRate:      *clientRate,
		ClientBurst:     *clientBurst,
		AgeAfter:        *ageAfter,
		JobTimeout:      *jobTimeout,
		Store:           st,
		Logger:          logger,
	})
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
		// Reap idle keep-alive connections so forgotten clients cannot pin
		// sockets forever.  WriteTimeout deliberately stays 0: SSE /events
		// responses are long-lived streams and a write deadline would sever
		// every subscriber mid-stream (slow consumers are already bounded by
		// the event bus's per-subscriber buffer instead).
		IdleTimeout: 2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			logger.Info("debug listener (pprof, expvar) up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// The debug listener is an operator convenience: its failure
				// is loud but not fatal to the service.
				logger.Error("debug listener failed", "err", err)
			}
		}()
		defer dbg.Close()
	}
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "refrint-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful drain: stop admitting (submissions 503 with Retry-After,
		// /healthz flips to "closing" so load balancers route away), give
		// in-flight sweeps -drain-timeout to finish, then hard-stop.
		logger.Info("shutting down: draining", "drain_timeout", *drainTimeout)
		svc.BeginDrain(*drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		err := svc.Drain(drainCtx)
		cancelDrain()
		if err != nil {
			logger.Warn("drain incomplete, aborting remaining sweeps", "err", err)
		}
		// Close before Shutdown: it flushes terminal events and ends the SSE
		// streams whose open responses would otherwise hold Shutdown until
		// its deadline.  Idempotent with the deferred Close above.
		svc.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}
}
