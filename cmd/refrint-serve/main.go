// Command refrint-serve runs the Refrint sweep service: an HTTP API that
// accepts sweep jobs, executes them on a bounded sharded worker pool, caches
// results by canonical sweep key, and serves the paper's Table 6.1 and
// Figure 6.1-6.4 data series as JSON.
//
// Quickstart:
//
//	refrint-serve -addr :8080 &
//	curl -s -X POST localhost:8080/v1/sweeps \
//	     -d '{"apps":["FFT","LU"],"retention_times_us":[50],"effort_scale":0.25}'
//	curl -s localhost:8080/v1/sweeps/job-000001            # poll progress
//	curl -s localhost:8080/v1/sweeps/job-000001/figures    # figure series
//	curl -s -X DELETE localhost:8080/v1/sweeps/job-000001  # cancel
//	curl -s localhost:8080/v1/sims                         # catalog
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"refrint/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		shards       = flag.Int("shards", 2, "worker shards (concurrent sweeps)")
		queueDepth   = flag.Int("queue-depth", 8, "pending sweeps per shard")
		cacheEntries = flag.Int("cache", 32, "completed sweeps kept for reuse")
		sweepWorkers = flag.Int("sweep-workers", 0, "simulation concurrency per sweep (0 = NumCPU/shards)")
		jobHistory   = flag.Int("job-history", 1024, "finished jobs kept pollable")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "refrint-serve: ", log.LstdFlags)
	svc := server.New(server.Config{
		Shards:       *shards,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		SweepWorkers: *sweepWorkers,
		JobHistory:   *jobHistory,
		Logf:         logger.Printf,
	})
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "refrint-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}
}
