// refrint-lint is the project's static-analysis suite: four custom
// analyzers (see internal/analysis/...) that machine-check invariants the
// codebase otherwise only enforces by convention or at runtime —
//
//	lockcheck   — *Locked functions are called under the mutex and never block
//	allocfree   — //refrint:alloc-free hot paths contain no allocating constructs
//	metricname  — /metrics families are well-named and HELP/TYPE registered
//	atomicfield — fields touched via sync/atomic are never accessed bare
//
// The binary speaks the unitchecker protocol, so the go command does the
// package loading and drives it exactly like go vet's own checks:
//
//	go build -o bin/refrint-lint ./cmd/refrint-lint
//	go vet -vettool=bin/refrint-lint ./...
//
// or simply `make lint`.  Run with -help for per-analyzer flags; findings
// can be waived case-by-case with `//refrint:allow <analyzer> -- reason`.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"refrint/internal/analysis/allocfree"
	"refrint/internal/analysis/atomicfield"
	"refrint/internal/analysis/lockcheck"
	"refrint/internal/analysis/metricname"
)

func main() {
	unitchecker.Main(
		lockcheck.Analyzer,
		allocfree.Analyzer,
		metricname.Analyzer,
		atomicfield.Analyzer,
	)
}
