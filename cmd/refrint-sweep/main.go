// Command refrint-sweep runs the paper's parameter sweep (Table 5.4) over
// the applications of Table 5.3 and prints the data behind Table 6.1 and
// Figures 6.1 to 6.4, normalized to the full-SRAM baseline exactly as the
// paper reports them.
//
// Examples:
//
//	refrint-sweep                       # full sweep on the scaled preset
//	refrint-sweep -quick                # 3 apps, shorter runs
//	refrint-sweep -apps FFT,LU -retentions 50 -csv figure61
//	refrint-sweep -data-dir ./results   # reuse/persist results across runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"refrint"
	"refrint/internal/config"
	"refrint/internal/report"
	"refrint/internal/store"
	"refrint/internal/sweep"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run the reduced sweep (one app per class, shorter runs)")
		apps       = flag.String("apps", "", "comma-separated application names (default: all)")
		retentions = flag.String("retentions", "", "comma-separated retention times in us (default: 50,100,200)")
		effort     = flag.Float64("effort", 0, "workload length multiplier (default 1.0, or 0.25 with -quick)")
		preset     = flag.String("preset", "scaled", "architecture preset: scaled or fullsize")
		seed       = flag.Int64("seed", 1, "workload random seed")
		workers    = flag.Int("workers", 0, "concurrent simulations (default: NumCPU)")
		csvOut     = flag.String("csv", "", "emit CSV instead of text: figure61, figure62, figure63 or figure64")
		selector   = flag.String("class", "all", "application selection for figures 6.2-6.4: all, class1, class2 or class3")
		dataDir    = flag.String("data-dir", "", "reuse and persist results (whole sweeps and individual cells) under this directory")
		storeMax   = flag.Int64("store-max-bytes", 1<<30, "LRU byte budget of the persistent store (with -data-dir); match the service's setting when sharing its data dir")
	)
	flag.Parse()

	opts := refrint.DefaultSweep()
	if *quick {
		opts = refrint.QuickSweep()
	}
	base, err := refrint.Preset(*preset)
	if err != nil {
		fatal(err)
	}
	opts.Base = base
	if *apps != "" {
		opts.Apps = splitList(*apps)
	}
	if *retentions != "" {
		opts.RetentionTimesUS = nil
		for _, r := range splitList(*retentions) {
			v, err := strconv.ParseFloat(r, 64)
			if err != nil {
				fatal(fmt.Errorf("bad retention %q: %w", r, err))
			}
			opts.RetentionTimesUS = append(opts.RetentionTimesUS, v)
		}
	}
	if *effort > 0 {
		opts.EffortScale = *effort
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	opts.Seed = *seed

	results, err := runWithStore(opts, *dataDir, *storeMax)
	if err != nil {
		fatal(err)
	}

	if *csvOut != "" {
		emitCSV(results, *csvOut, *selector)
		return
	}

	fmt.Println(report.Table54())
	fmt.Println(report.Table61(results.Table61()))
	fmt.Println(report.Figure61(results.Figure61()))
	for _, sel := range []string{"class1", "class2", "class3", "all"} {
		fmt.Println(report.Figure62(sel, results.Figure62(sel)))
	}
	for _, sel := range []string{"class1", "all"} {
		fmt.Println(report.FigureScalar("Figure 6.3: Total energy (normalized to full-SRAM system energy)", sel, results.Figure63(sel)))
		fmt.Println(report.FigureScalar("Figure 6.4: Execution time (normalized to full-SRAM execution time)", sel, results.Figure64(sel)))
	}
	printHeadline(results)
}

// runWithStore executes the sweep, reusing the persistent result store when
// a data directory is given: a sweep that was fully computed before is
// loaded outright, and otherwise only the cells the store does not already
// hold are simulated (fresh ones are persisted for next time).
func runWithStore(opts refrint.SweepOptions, dataDir string, maxBytes int64) (*refrint.SweepResults, error) {
	if dataDir == "" {
		return refrint.RunSweep(opts)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "refrint-sweep: "+format+"\n", args...)
	}
	st, err := store.Open(dataDir, store.Options{MaxBytes: maxBytes, Logf: logf})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	key := opts.Key()
	cached := &sweep.Results{}
	if st.Get(store.KindSweep, key, cached) {
		fmt.Fprintf(os.Stderr, "refrint-sweep: sweep %s loaded from %s (no simulations run)\n", key, dataDir)
		return cached, nil
	}
	opts.CellLookup, opts.CellPut = st.CellHooks(logf)
	results, err := refrint.RunSweep(opts)
	if err != nil {
		return nil, err
	}
	if err := st.Put(store.KindSweep, key, results); err != nil {
		fmt.Fprintf(os.Stderr, "refrint-sweep: persisting sweep %s: %v\n", key, err)
	}
	ss := st.Stats()
	fmt.Fprintf(os.Stderr, "refrint-sweep: store %s: %d cell hits, %d computed\n", dataDir, ss.CellHits, ss.CellMisses)
	return results, nil
}

// printHeadline prints the paper's headline comparison at 50 us.
func printHeadline(results *sweep.Results) {
	mem := results.Figure61()
	tot := results.Figure63("all")
	times := results.Figure64("all")
	pAll, ok1 := sweep.FindLevel(mem, "P.all", config.Retention50us)
	rWB, ok2 := sweep.FindLevel(mem, "R.WB(32,32)", config.Retention50us)
	if !ok1 || !ok2 {
		return
	}
	pAllT, _ := sweep.FindScalar(times, "P.all", config.Retention50us)
	rWBT, _ := sweep.FindScalar(times, "R.WB(32,32)", config.Retention50us)
	pAllE, _ := sweep.FindScalar(tot, "P.all", config.Retention50us)
	rWBE, _ := sweep.FindScalar(tot, "R.WB(32,32)", config.Retention50us)

	fmt.Println("Headline comparison at 50us (paper: P.all 50% memory / 72% system energy, 18% slowdown;")
	fmt.Println("                             R.WB(32,32) 36% memory / 61% system energy, 2% slowdown)")
	fmt.Printf("  P.all        : %.0f%% memory energy, %.0f%% system energy, %.0f%% slowdown\n",
		100*pAll.Total(), 100*pAllE.Value, 100*(pAllT.Value-1))
	fmt.Printf("  R.WB(32,32)  : %.0f%% memory energy, %.0f%% system energy, %.0f%% slowdown\n",
		100*rWB.Total(), 100*rWBE.Value, 100*(rWBT.Value-1))
}

func emitCSV(results *sweep.Results, which, selector string) {
	switch which {
	case "figure61":
		fmt.Print(report.Figure61CSV(results.Figure61()))
	case "figure62":
		fmt.Print(report.Figure62CSV(results.Figure62(selector)))
	case "figure63":
		fmt.Print(report.ScalarCSV("total_energy", results.Figure63(selector)))
	case "figure64":
		fmt.Print(report.ScalarCSV("execution_time", results.Figure64(selector)))
	default:
		fatal(fmt.Errorf("unknown -csv target %q", which))
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "refrint-sweep:", err)
	os.Exit(1)
}
