# Developer entry points.  CI runs the same targets; see .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench bench-baseline bench-compare scale-report fmt vet lint profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Project-native static analysis (internal/analysis): the *Locked contract,
# //refrint:alloc-free pins, /metrics naming/registration, and atomic-field
# discipline.  Blocking in CI; run before sending a change.
lint:
	$(GO) build -o bin/refrint-lint ./cmd/refrint-lint
	$(GO) vet -vettool=$(CURDIR)/bin/refrint-lint ./...

# Run the hot-path benchmark suite (5 iterations, with allocation counts).
bench:
	scripts/bench.sh bench/current.txt

# Regenerate the committed benchmark baseline.  Run on a quiet machine and
# commit bench/baseline.txt together with the change that moved the numbers.
bench-baseline:
	scripts/bench.sh bench/baseline.txt

# Service-level scaling study: sims/sec vs worker-pool size for the quick
# sweep workload.  Regenerates the committed throughput trajectory; run on a
# quiet machine and commit BENCH_10.json together with the change that moved
# the curve.  SCALE_WORKERS / SCALE_REPEAT / SCALE_EFFORT override defaults.
scale-report:
	scripts/scale-report.sh BENCH_10.json

# Capture a CPU profile from a running server started with
# -debug-addr $(DEBUG_ADDR) and drop it under bench/ for go tool pprof:
#   refrint-serve -debug-addr localhost:6060 &
#   make profile
#   $(GO) tool pprof bench/cpu.pprof
DEBUG_ADDR ?= localhost:6060
PROFILE_SECONDS ?= 10
profile:
	curl -sf -o bench/cpu.pprof "http://$(DEBUG_ADDR)/debug/pprof/profile?seconds=$(PROFILE_SECONDS)"
	@echo "wrote bench/cpu.pprof ($(PROFILE_SECONDS)s CPU profile from $(DEBUG_ADDR))"

# Compare the current tree against the committed baseline.  benchstat is
# fetched on demand; the comparison is advisory (machines differ), so CI
# treats regressions as warnings, not failures.
bench-compare: bench
	$(GO) run golang.org/x/perf/cmd/benchstat@latest bench/baseline.txt bench/current.txt
