# Developer entry points.  CI runs the same targets; see .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench bench-baseline bench-compare fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Run the hot-path benchmark suite (5 iterations, with allocation counts).
bench:
	scripts/bench.sh bench/current.txt

# Regenerate the committed benchmark baseline.  Run on a quiet machine and
# commit bench/baseline.txt together with the change that moved the numbers.
bench-baseline:
	scripts/bench.sh bench/baseline.txt

# Compare the current tree against the committed baseline.  benchstat is
# fetched on demand; the comparison is advisory (machines differ), so CI
# treats regressions as warnings, not failures.
bench-compare: bench
	$(GO) run golang.org/x/perf/cmd/benchstat@latest bench/baseline.txt bench/current.txt
