// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package analysisflags defines helpers for processing flags of
// analysis driver tools.
package analysisflags

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// flags common to all {single,multi,unit}checkers.
var (
	JSON    = false // -json
	Context = -1    // -c=N: if N>0, display offending line plus N lines of context
)

// Parse creates a flag for each of the analyzer's flags,
// including (in multi mode) a flag named after the analyzer,
// parses the flags, then filters and returns the list of
// analyzers enabled by flags.
//
// The result is intended to be passed to unitchecker.Run or checker.Run.
// Use in unitchecker.Run will gob.Register all fact types for the returned
// graph of analyzers but of course not the ones only reachable from
// dropped analyzers. To avoid inconsistency about which gob types are
// registered from run to run, Parse itself gob.Registers all the facts
// only reachable from dropped analyzers.
// This is not a particularly elegant API, but this is an internal package.
func Parse(analyzers []*analysis.Analyzer, multi bool) []*analysis.Analyzer {
	// Connect each analysis flag to the command line as -analysis.flag.
	enabled := make(map[*analysis.Analyzer]*triState)
	for _, a := range analyzers {
		var prefix string

		// Add -NAME flag to enable it.
		if multi {
			prefix = a.Name + "."

			enable := new(triState)
			enableUsage := "enable " + a.Name + " analysis"
			flag.Var(enable, a.Name, enableUsage)
			enabled[a] = enable
		}

		a.Flags.VisitAll(func(f *flag.Flag) {
			if !multi && flag.Lookup(f.Name) != nil {
				log.Printf("%s flag -%s would conflict with driver; skipping", a.Name, f.Name)
				return
			}

			name := prefix + f.Name
			flag.Var(f.Value, name, f.Usage)
		})
	}

	// standard flags: -flags, -V.
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	addVersionFlag()

	// flags common to all checkers
	flag.BoolVar(&JSON, "json", JSON, "emit JSON output")
	flag.IntVar(&Context, "c", Context, `display offending line with this many lines of context`)

	// Add shims for legacy vet flags to enable existing
	// scripts that run vet to continue to work.
	_ = flag.Bool("source", false, "no effect (deprecated)")
	_ = flag.Bool("v", false, "no effect (deprecated)")
	_ = flag.Bool("all", false, "no effect (deprecated)")
	_ = flag.String("tags", "", "no effect (deprecated)")
	for old, new := range vetLegacyFlags {
		newFlag := flag.Lookup(new)
		if newFlag != nil && flag.Lookup(old) == nil {
			flag.Var(newFlag.Value, old, "deprecated alias for -"+new)
		}
	}

	flag.Parse() // (ExitOnError)

	// -flags: print flags so that go vet knows which ones are legitimate.
	if *printflags {
		printFlags()
		os.Exit(0)
	}

	everything := expand(analyzers)

	// If any -NAME flag is true,  run only those analyzers. Otherwise,
	// if any -NAME flag is false, run all but those analyzers.
	if multi {
		var hasTrue, hasFalse bool
		for _, ts := range enabled {
			switch *ts {
			case setTrue:
				hasTrue = true
			case setFalse:
				hasFalse = true
			}
		}

		var keep []*analysis.Analyzer
		if hasTrue {
			for _, a := range analyzers {
				if *enabled[a] == setTrue {
					keep = append(keep, a)
				}
			}
			analyzers = keep
		} else if hasFalse {
			for _, a := range analyzers {
				if *enabled[a] != setFalse {
					keep = append(keep, a)
				}
			}
			analyzers = keep
		}
	}

	// Register fact types of skipped analyzers
	// in case we encounter them in imported files.
	kept := expand(analyzers)
	for a := range everything {
		if !kept[a] {
			for _, f := range a.FactTypes {
				gob.Register(f)
			}
		}
	}

	return analyzers
}

func expand(analyzers []*analysis.Analyzer) map[*analysis.Analyzer]bool {
	seen := make(map[*analysis.Analyzer]bool)
	var visitAll func([]*analysis.Analyzer)
	visitAll = func(analyzers []*analysis.Analyzer) {
		for _, a := range analyzers {
			if !seen[a] {
				seen[a] = true
				visitAll(a.Requires)
			}
		}
	}
	visitAll(analyzers)
	return seen
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag = nil
	flag.VisitAll(func(f *flag.Flag) {
		// Don't report {single,multi}checker debugging
		// flags or fix as these have no effect on unitchecker
		// (as invoked by 'go vet').
		switch f.Name {
		case "debug", "cpuprofile", "memprofile", "trace", "fix":
			return
		}

		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		isBool := ok && b.IsBoolFlag()
		flags = append(flags, jsonFlag{f.Name, isBool, f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// addVersionFlag registers a -V flag that, if set,
// prints the executable version and exits 0.
//
// If the -V flag already exists — for example, because it was already
// registered by a call to cmd/internal/objabi.AddVersionFlag — then
// addVersionFlag does nothing.
func addVersionFlag() {
	if flag.Lookup("V") == nil {
		flag.Var(versionFlag{}, "V", "print version and exit")
	}
}

// versionFlag minimally complies with the -V protocol required by "go vet".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() interface{} { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}

	// This replicates the minimal subset of
	// cmd/internal/objabi.AddVersionFlag, which is private to the
	// go tool yet forms part of our command-line interface.
	// TODO(adonovan): clarify the contract.

	// Print the tool version so the build system can track changes.
	// Formats:
	//   $progname version devel ... buildID=...
	//   $progname version go1.9.1
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// A triState is a boolean that knows whether
// it has been set to either true or false.
// It is used to identify whether a flag appears;
// the standard boolean flag cannot
// distinguish missing from unset.
// It also satisfies flag.Value.
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func triStateFlag(name string, value triState, usage string) *triState {
	flag.Var(&value, name, usage)
	return &value
}

// triState implements flag.Value, flag.Getter, and flag.boolFlag.
// They work like boolean flags: we can say vet -printf as well as vet -printf=true
func (ts *triState) Get() interface{} {
	return *ts == setTrue
}

func (ts triState) isTrue() bool {
	return ts == setTrue
}

func (ts *triState) Set(value string) error {
	b, err := strconv.ParseBool(value)
	if err != nil {
		// This error message looks poor but package "flag" adds
		// "invalid boolean value %q for -NAME: %s"
		return fmt.Errorf("want true or false")
	}
	if b {
		*ts = setTrue
	} else {
		*ts = setFalse
	}
	return nil
}

func (ts *triState) String() string {
	switch *ts {
	case unset:
		return "true"
	case setTrue:
		return "true"
	case setFalse:
		return "false"
	}
	panic("not reached")
}

func (ts triState) IsBoolFlag() bool {
	return true
}

// Legacy flag support

// vetLegacyFlags maps flags used by legacy vet to their corresponding
// new names. The old names will continue to work.
var vetLegacyFlags = map[string]string{
	// Analyzer name changes
	"bool":       "bools",
	"buildtags":  "buildtag",
	"methods":    "stdmethods",
	"rangeloops": "loopclosure",

	// Analyzer flags
	"compositewhitelist":  "composites.whitelist",
	"printfuncs":          "printf.funcs",
	"shadowstrict":        "shadow.strict",
	"unusedfuncs":         "unusedresult.funcs",
	"unusedstringmethods": "unusedresult.stringmethods",
}

// ---- output helpers common to all drivers ----
//
// These functions should not depend on global state (flags)!
// Really they belong in a different package.

// TODO(adonovan): don't accept an io.Writer if we don't report errors.
// Either accept a bytes.Buffer (infallible), or return a []byte.

// PrintPlain prints a diagnostic in plain text form.
// If contextLines is nonnegative, it also prints the
// offending line plus this many lines of context.
func PrintPlain(out io.Writer, fset *token.FileSet, contextLines int, diag analysis.Diagnostic) {
	posn := fset.Position(diag.Pos)
	fmt.Fprintf(out, "%s: %s\n", posn, diag.Message)

	// show offending line plus N lines of context.
	if contextLines >= 0 {
		posn := fset.Position(diag.Pos)
		end := fset.Position(diag.End)
		if !end.IsValid() {
			end = posn
		}
		data, _ := os.ReadFile(posn.Filename)
		lines := strings.Split(string(data), "\n")
		for i := posn.Line - contextLines; i <= end.Line+contextLines; i++ {
			if 1 <= i && i <= len(lines) {
				fmt.Fprintf(out, "%d\t%s\n", i, lines[i-1])
			}
		}
	}
}

// A JSONTree is a mapping from package ID to analysis name to result.
// Each result is either a jsonError or a list of JSONDiagnostic.
type JSONTree map[string]map[string]interface{}

// A TextEdit describes the replacement of a portion of a file.
// Start and End are zero-based half-open indices into the original byte
// sequence of the file, and New is the new text.
type JSONTextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

// A JSONSuggestedFix describes an edit that should be applied as a whole or not
// at all. It might contain multiple TextEdits/text_edits if the SuggestedFix
// consists of multiple non-contiguous edits.
type JSONSuggestedFix struct {
	Message string         `json:"message"`
	Edits   []JSONTextEdit `json:"edits"`
}

// A JSONDiagnostic describes the JSON schema of an analysis.Diagnostic.
//
// TODO(matloob): include End position if present.
type JSONDiagnostic struct {
	Category       string                   `json:"category,omitempty"`
	Posn           string                   `json:"posn"` // e.g. "file.go:line:column"
	Message        string                   `json:"message"`
	SuggestedFixes []JSONSuggestedFix       `json:"suggested_fixes,omitempty"`
	Related        []JSONRelatedInformation `json:"related,omitempty"`
}

// A JSONRelated describes a secondary position and message related to
// a primary diagnostic.
//
// TODO(adonovan): include End position if present.
type JSONRelatedInformation struct {
	Posn    string `json:"posn"` // e.g. "file.go:line:column"
	Message string `json:"message"`
}

// Add adds the result of analysis 'name' on package 'id'.
// The result is either a list of diagnostics or an error.
func (tree JSONTree) Add(fset *token.FileSet, id, name string, diags []analysis.Diagnostic, err error) {
	var v interface{}
	if err != nil {
		type jsonError struct {
			Err string `json:"error"`
		}
		v = jsonError{err.Error()}
	} else if len(diags) > 0 {
		diagnostics := make([]JSONDiagnostic, 0, len(diags))
		for _, f := range diags {
			var fixes []JSONSuggestedFix
			for _, fix := range f.SuggestedFixes {
				var edits []JSONTextEdit
				for _, edit := range fix.TextEdits {
					edits = append(edits, JSONTextEdit{
						Filename: fset.Position(edit.Pos).Filename,
						Start:    fset.Position(edit.Pos).Offset,
						End:      fset.Position(edit.End).Offset,
						New:      string(edit.NewText),
					})
				}
				fixes = append(fixes, JSONSuggestedFix{
					Message: fix.Message,
					Edits:   edits,
				})
			}
			var related []JSONRelatedInformation
			for _, r := range f.Related {
				related = append(related, JSONRelatedInformation{
					Posn:    fset.Position(r.Pos).String(),
					Message: r.Message,
				})
			}
			jdiag := JSONDiagnostic{
				Category:       f.Category,
				Posn:           fset.Position(f.Pos).String(),
				Message:        f.Message,
				SuggestedFixes: fixes,
				Related:        related,
			}
			diagnostics = append(diagnostics, jdiag)
		}
		v = diagnostics
	}
	if v != nil {
		m, ok := tree[id]
		if !ok {
			m = make(map[string]interface{})
			tree[id] = m
		}
		m[name] = v
	}
}

func (tree JSONTree) Print(out io.Writer) error {
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		log.Panicf("internal error: JSON marshaling failed: %v", err)
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}
