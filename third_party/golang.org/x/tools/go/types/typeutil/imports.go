// Copyright 2014 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typeutil

import "go/types"

// Dependencies returns all dependencies of the specified packages.
//
// Dependent packages appear in topological order: if package P imports
// package Q, Q appears earlier than P in the result.
// The algorithm follows import statements in the order they
// appear in the source code, so the result is a total order.
func Dependencies(pkgs ...*types.Package) []*types.Package {
	var result []*types.Package
	seen := make(map[*types.Package]bool)
	var visit func(pkgs []*types.Package)
	visit = func(pkgs []*types.Package) {
		for _, p := range pkgs {
			if !seen[p] {
				seen[p] = true
				visit(p.Imports())
				result = append(result, p)
			}
		}
	}
	visit(pkgs)
	return result
}
